/// \file check.hpp
/// \brief Internal invariant-checking macros and the library exception type.
///
/// VOODB is a simulation library: configuration errors are reported with
/// exceptions (callers can recover and fix their config), while broken
/// internal invariants abort through VOODB_DCHECK in debug builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace voodb::util {

/// Exception thrown for invalid configurations or misuse of the public API.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& message) : std::runtime_error(message) {}
};

namespace detail {
[[noreturn]] inline void ThrowCheckFailure(const char* expr, const char* file,
                                           int line, const std::string& msg) {
  std::ostringstream os;
  os << "VOODB_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace voodb::util

/// Always-on check; throws voodb::util::Error when the condition is false.
#define VOODB_CHECK(cond)                                                     \
  do {                                                                        \
    if (!(cond)) {                                                            \
      ::voodb::util::detail::ThrowCheckFailure(#cond, __FILE__, __LINE__,     \
                                               std::string());                \
    }                                                                         \
  } while (false)

/// Always-on check with a streamed message:
/// VOODB_CHECK_MSG(x > 0, "x must be positive, got " << x);
#define VOODB_CHECK_MSG(cond, stream_expr)                                    \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::ostringstream voodb_check_os_;                                     \
      voodb_check_os_ << stream_expr;                                         \
      ::voodb::util::detail::ThrowCheckFailure(#cond, __FILE__, __LINE__,     \
                                               voodb_check_os_.str());        \
    }                                                                         \
  } while (false)

#ifndef NDEBUG
#define VOODB_DCHECK(cond) VOODB_CHECK(cond)
#else
#define VOODB_DCHECK(cond) \
  do {                     \
  } while (false)
#endif
