#include "util/special_functions.hpp"

#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace voodb::util {

double LogGamma(double x) { return std::lgamma(x); }

namespace {

/// Continued fraction for the incomplete beta function (Lentz's method).
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIterations = 300;
  constexpr double kEpsilon = 3.0e-14;
  constexpr double kTiny = 1.0e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEpsilon) break;
  }
  return h;
}

}  // namespace

double RegularizedIncompleteBeta(double a, double b, double x) {
  VOODB_CHECK_MSG(a > 0.0 && b > 0.0, "beta parameters must be positive");
  VOODB_CHECK_MSG(x >= 0.0 && x <= 1.0, "x must lie in [0, 1], got " << x);
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double log_bt = LogGamma(a + b) - LogGamma(a) - LogGamma(b) +
                        a * std::log(x) + b * std::log1p(-x);
  const double bt = std::exp(log_bt);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return bt * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - bt * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double StudentTCdf(double t, double df) {
  VOODB_CHECK_MSG(df > 0.0, "degrees of freedom must be positive");
  if (t == 0.0) return 0.5;
  const double x = df / (df + t * t);
  const double tail = 0.5 * RegularizedIncompleteBeta(df / 2.0, 0.5, x);
  return t > 0.0 ? 1.0 - tail : tail;
}

double StudentTQuantile(double p, double df) {
  VOODB_CHECK_MSG(p > 0.0 && p < 1.0, "probability must lie in (0, 1)");
  VOODB_CHECK_MSG(df > 0.0, "degrees of freedom must be positive");
  if (p == 0.5) return 0.0;
  // The CDF is strictly increasing; bracket the root then bisect.
  // For p > 0.5 the quantile is positive (and symmetric for p < 0.5).
  const bool upper = p > 0.5;
  const double target = upper ? p : 1.0 - p;
  double lo = 0.0;
  double hi = 1.0;
  while (StudentTCdf(hi, df) < target) {
    hi *= 2.0;
    VOODB_CHECK_MSG(hi < 1.0e12, "StudentTQuantile failed to bracket root");
  }
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (StudentTCdf(mid, df) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1.0e-12 * (1.0 + hi)) break;
  }
  const double q = 0.5 * (lo + hi);
  return upper ? q : -q;
}

double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double NormalQuantile(double p) {
  VOODB_CHECK_MSG(p > 0.0 && p < 1.0, "probability must lie in (0, 1)");
  // Acklam's algorithm.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  const double p_high = 1.0 - p_low;
  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= p_high) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One step of Halley refinement using the exact CDF.
  const double e = NormalCdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

}  // namespace voodb::util
