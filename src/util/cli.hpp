/// \file cli.hpp
/// \brief Declarative command-line flag parsing for examples, bench
/// harnesses and the `voodb` driver.
///
/// Flags use the form `--name=value` or `--name value`.  Each `Get*` call
/// *declares* a flag (name, type, default, doc string); the declarations
/// drive two features no binary has to hand-roll:
///   * `Help()` renders the flag table for `--help`, and
///   * `RejectUnknown()` rejects undeclared flags, suggesting the nearest
///     declared name ("unknown flag --replication (did you mean
///     --replications?)") so typos do not silently fall back to defaults.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace voodb::util {

/// The candidate within edit distance <= max(2, |name|/2) of `name` that
/// is closest to it, or "" when no candidate is that close.  Shared by
/// CliArgs, the parameter registry and the scenario registry for
/// "did you mean" diagnostics.
std::string NearestMatch(const std::string& name,
                         const std::vector<std::string>& candidates);

/// Parses `--key=value` style arguments.
class CliArgs {
 public:
  /// Parses argv; throws voodb::util::Error on malformed input.  With
  /// `allow_positional`, bare words before/between flags are collected
  /// into positional() instead of being rejected (subcommand drivers);
  /// note a bare word directly after a valueless `--flag` still binds to
  /// that flag as its value.
  CliArgs(int argc, const char* const* argv, bool allow_positional = false);

  /// Declares a flag so it is accepted; returns its value or `def`.
  /// `doc` feeds the generated --help text.
  std::string GetString(const std::string& name, const std::string& def,
                        const std::string& doc = "");
  int64_t GetInt(const std::string& name, int64_t def,
                 const std::string& doc = "");
  double GetDouble(const std::string& name, double def,
                   const std::string& doc = "");
  bool GetBool(const std::string& name, bool def, const std::string& doc = "");

  /// Declares a repeatable flag and returns every occurrence in argv
  /// order (e.g. `--set a=1 --set b=2`).  Empty when absent.
  std::vector<std::string> GetList(const std::string& name,
                                   const std::string& doc = "");

  /// Bare-word arguments, in order (only with allow_positional).
  const std::vector<std::string>& positional() const { return positional_; }

  /// True when `--name` appeared in argv (with any value, any spelling).
  bool Provided(const std::string& name) const {
    return values_.count(name) != 0;
  }

  /// Throws if any provided flag was never declared via a Get* call,
  /// naming the nearest declared flag.  Call after all Get* calls.
  void RejectUnknown() const;

  /// True when `--help` / `-h` was passed.
  bool help_requested() const { return help_; }

  /// "Flags:" table generated from the declarations so far (name,
  /// value placeholder, doc, default).  Call after all Get* calls.
  std::string Help() const;

 private:
  struct Declared {
    std::string name;
    std::string placeholder;  ///< "N", "X", "S", "" (bare boolean), "S..."
    std::string doc;
    std::string def;  ///< default rendered as text; "" = none shown
  };

  void Declare(const std::string& name, const std::string& placeholder,
               const std::string& doc, const std::string& def);
  const std::vector<std::string>* FindValues(const std::string& name) const;

  std::map<std::string, std::vector<std::string>> values_;
  std::vector<Declared> declared_;
  std::vector<std::string> positional_;
  bool help_ = false;
};

}  // namespace voodb::util
