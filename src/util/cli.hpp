/// \file cli.hpp
/// \brief Minimal command-line flag parsing for examples and bench harnesses.
///
/// Flags use the form `--name=value` or `--name value`.  Unknown flags are
/// rejected so typos do not silently fall back to defaults.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace voodb::util {

/// Parses `--key=value` style arguments.
class CliArgs {
 public:
  /// Parses argv; throws voodb::util::Error on malformed input.
  CliArgs(int argc, const char* const* argv);

  /// Declares a flag so it is accepted; returns its value or `def`.
  std::string GetString(const std::string& name, const std::string& def);
  int64_t GetInt(const std::string& name, int64_t def);
  double GetDouble(const std::string& name, double def);
  bool GetBool(const std::string& name, bool def);

  /// Throws if any provided flag was never declared via a Get* call.
  /// Call after all Get* calls.
  void RejectUnknown() const;

  /// True when `--help` / `-h` was passed.
  bool help_requested() const { return help_; }

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> seen_;
  bool help_ = false;
};

}  // namespace voodb::util
