/// \file table.hpp
/// \brief Plain-text table and CSV rendering for benchmark harnesses.
///
/// Every bench binary in bench/ prints the rows/series of one paper figure
/// or table; this helper keeps the output format uniform (aligned columns
/// on stdout, optional CSV for post-processing).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace voodb::util {

/// A simple column-aligned text table.
///
/// Usage:
/// \code
///   TextTable t({"Instances", "Benchmark", "Simulation", "Ratio"});
///   t.AddRow({"500", "403.1", "395.2", "1.02"});
///   t.Print(std::cout);
/// \endcode
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` decimal digits.
  void AddNumericRow(const std::vector<double>& cells, int precision = 2);

  /// Renders with a header rule and right-aligned numeric-looking cells.
  void Print(std::ostream& os) const;

  /// Renders as RFC-4180-ish CSV (no quoting needed for our cell content).
  void PrintCsv(std::ostream& os) const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper for table rows).
std::string FormatDouble(double value, int precision = 2);

}  // namespace voodb::util
