/// \file special_functions.hpp
/// \brief Statistical special functions used by the simulation kernel.
///
/// The confidence-interval machinery of §4.2.2 of the VOODB paper needs
/// Student-t quantiles (h = t(n-1, 1-alpha/2) * sigma / sqrt(n)).  Rather
/// than hard-coding a quantile table we implement the regularized incomplete
/// beta function and derive the t CDF / quantile from it; the classic
/// textbook table is used in the unit tests as ground truth.
#pragma once

namespace voodb::util {

/// Natural log of the gamma function (thin wrapper over std::lgamma, kept
/// here so all special functions share one header).
double LogGamma(double x);

/// Regularized incomplete beta function I_x(a, b) for a, b > 0 and
/// x in [0, 1].  Continued-fraction evaluation (Lentz's algorithm).
double RegularizedIncompleteBeta(double a, double b, double x);

/// CDF of the Student-t distribution with `df` degrees of freedom.
double StudentTCdf(double t, double df);

/// Quantile (inverse CDF) of the Student-t distribution with `df` degrees
/// of freedom at probability `p` in (0, 1).  Monotone bisection on the CDF.
double StudentTQuantile(double p, double df);

/// Quantile of the standard normal distribution (Acklam's rational
/// approximation, |error| < 1.15e-9).
double NormalQuantile(double p);

/// CDF of the standard normal distribution.
double NormalCdf(double x);

}  // namespace voodb::util
