/// \file span.hpp
/// \brief A minimal non-owning view over a contiguous run of ids.
///
/// The CSR structures of the storage engine (object reference rows,
/// page->objects rows, page-adjacency rows) all hand out views into
/// their flat arrays; this is the one view type they share (pre-C++20,
/// so no std::span).  Valid as long as the owning structure is alive
/// and unmodified.
#pragma once

#include <cstddef>

namespace voodb::util {

template <typename T>
class IdSpan {
 public:
  IdSpan() = default;
  IdSpan(const T* data, size_t size) : data_(data), size_(size) {}

  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  T operator[](size_t i) const { return data_[i]; }
  T front() const { return data_[0]; }
  T back() const { return data_[size_ - 1]; }

  friend bool operator==(const IdSpan& a, const IdSpan& b) {
    if (a.size_ != b.size_) return false;
    for (size_t i = 0; i < a.size_; ++i) {
      if (a.data_[i] != b.data_[i]) return false;
    }
    return true;
  }
  friend bool operator!=(const IdSpan& a, const IdSpan& b) {
    return !(a == b);
  }

 private:
  const T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace voodb::util
