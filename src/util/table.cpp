#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace voodb::util {

std::string FormatDouble(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  VOODB_CHECK_MSG(!header_.empty(), "table must have at least one column");
}

void TextTable::AddRow(std::vector<std::string> cells) {
  VOODB_CHECK_MSG(cells.size() == header_.size(),
                  "row arity " << cells.size() << " != header arity "
                               << header_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::AddNumericRow(const std::vector<double>& cells, int precision) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (double v : cells) row.push_back(FormatDouble(v, precision));
  AddRow(std::move(row));
}

void TextTable::Print(std::ostream& os) const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(width[c]))
         << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void TextTable::PrintCsv(std::ostream& os) const {
  // RFC-4180-style quoting: cells containing a comma, quote or newline
  // are wrapped in double quotes with embedded quotes doubled.
  auto print_cell = [&](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) {
      os << cell;
      return;
    }
    os << '"';
    for (const char ch : cell) {
      if (ch == '"') os << '"';
      os << ch;
    }
    os << '"';
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      print_cell(row[c]);
    }
    os << '\n';
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace voodb::util
