#include "util/cli.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "util/check.hpp"

namespace voodb::util {

namespace {

size_t EditDistance(const std::string& a, const std::string& b) {
  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diagonal = row[0];
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      const size_t previous = row[j];
      const size_t substitution = diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitution});
      diagonal = previous;
    }
  }
  return row[b.size()];
}

}  // namespace

std::string NearestMatch(const std::string& name,
                         const std::vector<std::string>& candidates) {
  const size_t budget = std::max<size_t>(2, name.size() / 2);
  std::string best;
  size_t best_distance = budget + 1;
  for (const std::string& candidate : candidates) {
    const size_t distance = EditDistance(name, candidate);
    if (distance < best_distance) {
      best_distance = distance;
      best = candidate;
    }
  }
  return best;
}

CliArgs::CliArgs(int argc, const char* const* argv, bool allow_positional) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      if (allow_positional) {
        positional_.push_back(arg);
        continue;
      }
      VOODB_CHECK_MSG(false,
                      "expected --name=value argument, got '" << arg << "'");
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)].push_back(arg.substr(eq + 1));
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg].push_back(argv[++i]);
    } else {
      values_[arg].push_back("true");  // bare flag => boolean
    }
  }
}

void CliArgs::Declare(const std::string& name, const std::string& placeholder,
                      const std::string& doc, const std::string& def) {
  for (const Declared& flag : declared_) {
    if (flag.name == name) return;  // re-reads keep the first declaration
  }
  declared_.push_back({name, placeholder, doc, def});
}

const std::vector<std::string>* CliArgs::FindValues(
    const std::string& name) const {
  const auto it = values_.find(name);
  return it == values_.end() ? nullptr : &it->second;
}

std::string CliArgs::GetString(const std::string& name, const std::string& def,
                               const std::string& doc) {
  Declare(name, "S", doc, def);
  const auto* values = FindValues(name);
  return values == nullptr ? def : values->back();
}

int64_t CliArgs::GetInt(const std::string& name, int64_t def,
                        const std::string& doc) {
  Declare(name, "N", doc, std::to_string(def));
  const auto* values = FindValues(name);
  if (values == nullptr) return def;
  char* end = nullptr;
  const int64_t v = std::strtoll(values->back().c_str(), &end, 10);
  VOODB_CHECK_MSG(end != nullptr && *end == '\0' && !values->back().empty(),
                  "flag --" << name << " expects an integer, got '"
                            << values->back() << "'");
  return v;
}

double CliArgs::GetDouble(const std::string& name, double def,
                          const std::string& doc) {
  std::ostringstream rendered;
  rendered << def;
  Declare(name, "X", doc, rendered.str());
  const auto* values = FindValues(name);
  if (values == nullptr) return def;
  char* end = nullptr;
  const double v = std::strtod(values->back().c_str(), &end);
  VOODB_CHECK_MSG(end != nullptr && *end == '\0' && !values->back().empty(),
                  "flag --" << name << " expects a number, got '"
                            << values->back() << "'");
  return v;
}

bool CliArgs::GetBool(const std::string& name, bool def,
                      const std::string& doc) {
  Declare(name, "", doc, def ? "true" : "");
  const auto* values = FindValues(name);
  if (values == nullptr) return def;
  const std::string& v = values->back();
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  VOODB_CHECK_MSG(false, "flag --" << name << " expects a boolean, got '" << v
                                   << "'");
  return def;
}

std::vector<std::string> CliArgs::GetList(const std::string& name,
                                          const std::string& doc) {
  Declare(name, "S...", doc, "");
  const auto* values = FindValues(name);
  return values == nullptr ? std::vector<std::string>{} : *values;
}

void CliArgs::RejectUnknown() const {
  std::vector<std::string> known;
  known.reserve(declared_.size());
  for (const Declared& flag : declared_) known.push_back(flag.name);
  for (const auto& [name, values] : values_) {
    if (std::find(known.begin(), known.end(), name) != known.end()) continue;
    const std::string nearest = NearestMatch(name, known);
    VOODB_CHECK_MSG(false, "unknown flag --"
                               << name
                               << (nearest.empty()
                                       ? ""
                                       : " (did you mean --" + nearest + "?)"));
  }
}

std::string CliArgs::Help() const {
  std::ostringstream os;
  os << "Flags:\n";
  std::vector<std::string> lefts;
  size_t width = 0;
  for (const Declared& flag : declared_) {
    std::string left = "  --" + flag.name;
    if (!flag.placeholder.empty()) left += "=" + flag.placeholder;
    width = std::max(width, left.size());
    lefts.push_back(std::move(left));
  }
  for (size_t i = 0; i < declared_.size(); ++i) {
    const Declared& flag = declared_[i];
    os << lefts[i] << std::string(width - lefts[i].size() + 2, ' ')
       << flag.doc;
    if (!flag.def.empty()) {
      os << (flag.doc.empty() ? "" : " ") << "(default " << flag.def << ")";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace voodb::util
