#include "util/cli.hpp"

#include <cstdlib>

#include "util/check.hpp"

namespace voodb::util {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_ = true;
      continue;
    }
    VOODB_CHECK_MSG(arg.rfind("--", 0) == 0,
                    "expected --name=value argument, got '" << arg << "'");
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare flag => boolean
    }
  }
}

std::string CliArgs::GetString(const std::string& name,
                               const std::string& def) {
  seen_[name] = true;
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

int64_t CliArgs::GetInt(const std::string& name, int64_t def) {
  seen_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  VOODB_CHECK_MSG(end != nullptr && *end == '\0',
                  "flag --" << name << " expects an integer, got '"
                            << it->second << "'");
  return v;
}

double CliArgs::GetDouble(const std::string& name, double def) {
  seen_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  VOODB_CHECK_MSG(end != nullptr && *end == '\0',
                  "flag --" << name << " expects a number, got '" << it->second
                            << "'");
  return v;
}

bool CliArgs::GetBool(const std::string& name, bool def) {
  seen_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  VOODB_CHECK_MSG(false, "flag --" << name << " expects a boolean, got '" << v
                                   << "'");
  return def;
}

void CliArgs::RejectUnknown() const {
  for (const auto& [name, value] : values_) {
    VOODB_CHECK_MSG(seen_.count(name) != 0, "unknown flag --" << name);
  }
}

}  // namespace voodb::util
