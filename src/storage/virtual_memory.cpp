#include "storage/virtual_memory.hpp"

#include <utility>

#include "util/check.hpp"

namespace voodb::storage {

void VmParameters::Validate() const {
  VOODB_CHECK_MSG(memory_pages >= 1, "VM needs at least one frame");
}

VirtualMemoryModel::VirtualMemoryModel(VmParameters params)
    : params_(params) {
  params_.Validate();
}

AccessOutcome VirtualMemoryModel::Touch(PageId page, bool write) {
  AccessOutcome outcome;
  ++stats_.touches;
  const auto it = where_.find(page);
  if (it != where_.end() && it->second->state == State::kLoaded) {
    ++stats_.soft_hits;
    outcome.hit = true;
    it->second->dirty = it->second->dirty || write;
    MoveToFront(it->second);
    return outcome;
  }

  // Fault: the page is absent or only reserved; either way its contents
  // must come from disk.
  ++stats_.faults;
  if (it != where_.end()) {
    // Reserved -> Loaded in place.
    it->second->state = State::kLoaded;
    it->second->dirty = params_.dirty_on_load || write;
    MoveToFront(it->second);
  } else {
    AllocateFrame(page, State::kLoaded, params_.dirty_on_load || write,
                  outcome.ios);
  }
  ++stats_.reads;
  outcome.ios.push_back(PageIo{PageIo::Kind::kRead, page});
  return outcome;
}

std::vector<PageIo> VirtualMemoryModel::Reserve(PageId page) {
  std::vector<PageIo> ios;
  if (where_.count(page) != 0) return ios;  // already has a frame
  if (params_.reservations_enter_hot) {
    AllocateFrame(page, State::kReserved, /*dirty=*/false, ios);
  } else {
    // Insert cold: the reservation becomes the next eviction victim
    // unless a fault promotes it first.
    while (frames_.size() >= params_.memory_pages) EvictOne(ios);
    frames_.push_back(Frame{page, State::kReserved, false});
    where_[page] = std::prev(frames_.end());
  }
  ++stats_.reservations;
  return ios;
}

void VirtualMemoryModel::DropAll() {
  frames_.clear();
  where_.clear();
}

std::vector<PageIo> VirtualMemoryModel::Resize(uint64_t memory_pages) {
  VOODB_CHECK_MSG(memory_pages >= 1, "VM needs at least one frame");
  params_.memory_pages = memory_pages;
  std::vector<PageIo> ios;
  while (frames_.size() > params_.memory_pages) EvictOne(ios);
  return ios;
}

bool VirtualMemoryModel::IsLoaded(PageId page) const {
  const auto it = where_.find(page);
  return it != where_.end() && it->second->state == State::kLoaded;
}

void VirtualMemoryModel::EvictOne(std::vector<PageIo>& ios) {
  VOODB_CHECK_MSG(!frames_.empty(), "no frame to evict");
  const Frame victim = frames_.back();
  where_.erase(victim.page);
  frames_.pop_back();
  if (victim.state == State::kReserved) {
    ++stats_.reserved_evictions;  // nothing was loaded; no I/O
    return;
  }
  if (victim.dirty) {
    ++stats_.swap_writes;
    ios.push_back(PageIo{PageIo::Kind::kWrite, victim.page});
  }
}

void VirtualMemoryModel::AllocateFrame(PageId page, State state, bool dirty,
                                       std::vector<PageIo>& ios) {
  while (frames_.size() >= params_.memory_pages) EvictOne(ios);
  frames_.push_front(Frame{page, state, dirty});
  where_[page] = frames_.begin();
}

void VirtualMemoryModel::MoveToFront(FrameList::iterator it) {
  frames_.splice(frames_.begin(), frames_, it);
}

}  // namespace voodb::storage
