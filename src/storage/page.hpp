/// \file page.hpp
/// \brief Page identifiers and page-level I/O records.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/span.hpp"

namespace voodb::storage {

/// Identifies a disk page (0-based, dense within a database).
using PageId = uint64_t;

/// Sentinel for "no page".
inline constexpr PageId kNullPage = static_cast<PageId>(-1);

/// A non-owning view over a contiguous run of page ids (one CSR row of a
/// page-adjacency index).
using PageIdSpan = util::IdSpan<PageId>;

/// One physical I/O operation produced by the buffering layer and consumed
/// by the I/O subsystem (which assigns it a duration via the disk model).
struct PageIo {
  enum class Kind { kRead, kWrite };
  Kind kind = Kind::kRead;
  PageId page = kNullPage;
};

/// Outcome of one logical page access against a buffering layer.
struct AccessOutcome {
  /// True when the page was already resident (no read needed).
  bool hit = false;
  /// Physical operations to perform, in order (evicted-dirty write-backs
  /// first, then the read of the requested page, then prefetch reads).
  std::vector<PageIo> ios;
};

}  // namespace voodb::storage
