/// \file disk_model.hpp
/// \brief The paper's disk service-time model ("Access Disk" rule, Fig. 5).
///
/// The I/O subsystem of VOODB charges, per physical page access:
///   * search (seek) time  — skipped when the page is contiguous to the
///     previously accessed page (Fig. 5's "[Page contiguous to previously
///     loaded page]" branch),
///   * latency (rotational) time,
///   * transfer time.
/// Defaults follow Table 3 (7.4 / 4.3 / 0.5 ms); Table 4 gives the O2
/// host's values (6.3 / 2.99 / 0.7 ms).
#pragma once

#include <cstdint>

#include "storage/page.hpp"

namespace voodb::storage {

/// Scalar timing parameters of the disk (milliseconds).
struct DiskParameters {
  double search_ms = 7.4;    ///< DISKSEA
  double latency_ms = 4.3;   ///< DISKLAT
  double transfer_ms = 0.5;  ///< DISKTRA

  void Validate() const;
};

/// Stateful service-time calculator; remembers the head position so that
/// contiguous accesses skip the search time.
class DiskModel {
 public:
  explicit DiskModel(DiskParameters params = {});

  /// Service time for accessing `page`; advances the head.
  double AccessTime(PageId page);

  /// Service time for `io` (reads and writes are charged identically in
  /// the paper's model); advances the head and bumps counters.
  double IoTime(const PageIo& io);

  /// Forgets the head position (e.g. after unrelated activity).
  void ResetHead();

  uint64_t reads() const { return reads_; }
  uint64_t writes() const { return writes_; }
  uint64_t total_ios() const { return reads_ + writes_; }
  /// Accesses that were contiguous and skipped the search time.
  uint64_t sequential_hits() const { return sequential_hits_; }

  /// Stable counter addresses for metric registration (obs subsystem);
  /// valid for the model's lifetime.
  const uint64_t* reads_cell() const { return &reads_; }
  const uint64_t* writes_cell() const { return &writes_; }
  const uint64_t* sequential_hits_cell() const { return &sequential_hits_; }

  const DiskParameters& params() const { return params_; }

 private:
  DiskParameters params_;
  PageId last_page_ = kNullPage;
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
  uint64_t sequential_hits_ = 0;
};

}  // namespace voodb::storage
