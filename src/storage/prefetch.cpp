#include "storage/prefetch.hpp"

#include "util/check.hpp"

namespace voodb::storage {

SequentialPrefetcher::SequentialPrefetcher(uint32_t depth, PageId max_page)
    : depth_(depth), max_page_(max_page) {
  VOODB_CHECK_MSG(depth_ >= 1, "prefetch depth must be >= 1");
}

std::vector<PageId> SequentialPrefetcher::OnMiss(PageId missed) {
  std::vector<PageId> pages;
  pages.reserve(depth_);
  for (uint32_t i = 1; i <= depth_; ++i) {
    const PageId next = missed + i;
    if (next > max_page_) break;
    pages.push_back(next);
  }
  return pages;
}

}  // namespace voodb::storage
