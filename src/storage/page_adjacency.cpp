#include "storage/page_adjacency.hpp"

#include <algorithm>

namespace voodb::storage {

void PageAdjacency::Rebuild(const ocb::ObjectBase& base,
                            const Placement& placement) {
  // One CSR row per page, built append-only through a scratch row.
  const uint64_t num_pages = placement.NumPages();
  offsets_.clear();
  offsets_.reserve(num_pages + 1);
  pages_.clear();
  std::vector<PageId> row;
  for (PageId page = 0; page < num_pages; ++page) {
    offsets_.push_back(pages_.size());
    row.clear();
    for (ocb::Oid oid : placement.ObjectsOn(page)) {
      for (ocb::Oid ref : base.References(oid)) {
        if (ref == ocb::kNullOid) continue;
        const PageSpan span = placement.spans()[ref];
        for (uint32_t i = 0; i < span.count; ++i) row.push_back(span.first + i);
      }
    }
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
    row.erase(std::remove(row.begin(), row.end(), page), row.end());
    pages_.insert(pages_.end(), row.begin(), row.end());
  }
  offsets_.push_back(pages_.size());
}

}  // namespace voodb::storage
