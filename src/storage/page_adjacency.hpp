/// \file page_adjacency.hpp
/// \brief CSR page-adjacency index: pages referenced from each page.
///
/// For every page, the deduplicated sorted set of pages holding the
/// objects referenced by the page's objects (excluding the page
/// itself).  Drives the Texas reserve-on-swizzle behaviour in both the
/// DES Object Manager and the Texas emulator; one flat offsets[] +
/// pages[] pair, rebuilt after a relocation changes the page space.
#pragma once

#include <cstdint>
#include <vector>

#include "ocb/object_base.hpp"
#include "storage/page.hpp"
#include "storage/placement.hpp"
#include "util/check.hpp"

namespace voodb::storage {

class PageAdjacency {
 public:
  /// Rebuilds the index for `placement` over `base`'s reference graph.
  void Rebuild(const ocb::ObjectBase& base, const Placement& placement);

  /// Pages referenced from `page`.  Throws util::Error for a row outside
  /// the placement the index was built for (one compare on a path that
  /// runs per miss, not per access).
  PageIdSpan RowOf(PageId page) const {
    VOODB_CHECK_MSG(page < NumPages(),
                    "page adjacency row " << page << " out of range (index "
                                          << "covers " << NumPages()
                                          << " pages)");
    const uint64_t begin = offsets_[page];
    return PageIdSpan(pages_.data() + begin,
                      static_cast<size_t>(offsets_[page + 1] - begin));
  }

  /// Number of pages indexed.
  uint64_t NumPages() const { return offsets_.size() - 1; }

 private:
  /// CSR: row `p` is pages_[offsets_[p] .. offsets_[p+1]).
  std::vector<uint64_t> offsets_{0};
  std::vector<PageId> pages_;
};

}  // namespace voodb::storage
