/// \file virtual_memory.hpp
/// \brief OS virtual-memory model for memory-mapped stores (Texas).
///
/// Texas maps its persistent store through the operating system's virtual
/// memory and swizzles pointers at page-fault time.  Two consequences the
/// VOODB paper highlights (§4.3.2) are modelled here:
///
/// 1. **Reserve-on-swizzle.** When an object is reached, Texas reserves
///    address space (and, under Linux 2.0, page frames) for the pages of
///    every object it references *before those pages are actually
///    loaded*.  The host drives this through Reserve(): traversed
///    objects' references are mostly about to be visited anyway, but the
///    fringe beyond the traversal depth is reserved for nothing.  Once
///    the database outgrows main memory this reservation traffic evicts
///    useful pages and the fault rate grows *exponentially* as memory
///    shrinks (Figure 11), unlike the linear degradation of a plain page
///    cache (Figure 8).
/// 2. **Dirty-on-load.** Swizzling rewrites pointers inside a freshly
///    loaded page, so nearly every resident page is dirty and eviction
///    implies a swap write, roughly doubling the I/O bill while
///    thrashing.
///
/// The model is a frame pool with LRU ordering where each page is either
/// Loaded (contents present) or Reserved (frame held, contents absent).
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>
#include <vector>

#include "storage/page.hpp"

namespace voodb::storage {

/// Tunables of the virtual-memory model.
struct VmParameters {
  /// Number of physical page frames available to the store.
  uint64_t memory_pages = 2048;
  /// Pages are dirtied by pointer swizzling as they are loaded.
  bool dirty_on_load = true;
  /// Where reserved frames enter the LRU order.  `false` (default)
  /// inserts them cold (at the LRU tail): never-referenced reservations
  /// are the first frames the OS reclaims, so bursts of reservations
  /// mostly cannibalize each other and only the first few evict real
  /// pages.  `true` inserts them hot (at the MRU head), modelling a
  /// pathological kernel that treats freshly mapped pages as recently
  /// used — the worst case for thrashing (ablation knob).
  bool reservations_enter_hot = false;

  void Validate() const;
};

/// Counters exposed by the VM model.
struct VmStats {
  uint64_t touches = 0;
  uint64_t soft_hits = 0;     ///< page was Loaded
  uint64_t faults = 0;        ///< page needed a disk read
  uint64_t reads = 0;         ///< disk reads (== faults)
  uint64_t swap_writes = 0;   ///< dirty evictions
  uint64_t reservations = 0;  ///< frames handed to Reserved pages
  uint64_t reserved_evictions = 0;
};

/// The OS paging model.
class VirtualMemoryModel {
 public:
  explicit VirtualMemoryModel(VmParameters params);

  /// Touches `page` (reading or writing an object on it).  Returns the
  /// physical I/O operations implied (swap writes then the read).
  AccessOutcome Touch(PageId page, bool write);

  /// Reserves a frame for `page` without loading it (reserve-on-swizzle).
  /// No read is performed, but making room can evict dirty pages: the
  /// returned IOs are those swap writes.  No-op when `page` already has a
  /// frame.
  std::vector<PageIo> Reserve(PageId page);

  /// Discards all frames without write-back (process restart).
  void DropAll();

  /// Changes the amount of physical memory; evicts as needed.
  std::vector<PageIo> Resize(uint64_t memory_pages);

  bool IsLoaded(PageId page) const;
  uint64_t resident_frames() const { return frames_.size(); }
  /// Number of dirty loaded frames (O(frames)).
  uint64_t DirtyFrames() const {
    uint64_t n = 0;
    for (const Frame& f : frames_) n += f.dirty ? 1 : 0;
    return n;
  }
  const VmStats& stats() const { return stats_; }
  const VmParameters& params() const { return params_; }

 private:
  enum class State { kLoaded, kReserved };
  struct Frame {
    PageId page;
    State state;
    bool dirty;
  };
  using FrameList = std::list<Frame>;

  /// Evicts the LRU frame, appending a swap write when dirty.
  void EvictOne(std::vector<PageIo>& ios);
  /// Allocates a frame for `page` (evicting as needed) in `state`.
  void AllocateFrame(PageId page, State state, bool dirty,
                     std::vector<PageIo>& ios);
  void MoveToFront(FrameList::iterator it);

  VmParameters params_;
  FrameList frames_;  // MRU at front
  std::unordered_map<PageId, FrameList::iterator> where_;
  VmStats stats_;
};

}  // namespace voodb::storage
