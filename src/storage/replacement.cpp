#include "storage/replacement.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace voodb::storage {

const char* ToString(ReplacementPolicy p) {
  switch (p) {
    case ReplacementPolicy::kRandom:
      return "RANDOM";
    case ReplacementPolicy::kFifo:
      return "FIFO";
    case ReplacementPolicy::kLfu:
      return "LFU";
    case ReplacementPolicy::kLru:
      return "LRU";
    case ReplacementPolicy::kLruK:
      return "LRU-K";
    case ReplacementPolicy::kClock:
      return "CLOCK";
    case ReplacementPolicy::kGclock:
      return "GCLOCK";
  }
  return "?";
}

// --- FrameTable --------------------------------------------------------------

namespace {

uint64_t NextPowerOfTwo(uint64_t v) {
  uint64_t p = 16;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

FrameTable::FrameTable(uint64_t expected_entries) {
  // Cap the load factor at ~1/2 so probe chains stay short.
  const uint64_t capacity = NextPowerOfTwo(expected_entries * 2);
  slots_.assign(capacity, Slot{});
  mask_ = capacity - 1;
}

void FrameTable::Insert(PageId page, uint32_t frame) {
  if ((size_ + 1) * 2 > slots_.size()) Rehash(slots_.size() * 2);
  uint64_t i = Hash(page) & mask_;
  while (slots_[i].frame != kNoFrame) {
    VOODB_CHECK_MSG(slots_[i].page != page, "page already indexed");
    i = (i + 1) & mask_;
  }
  slots_[i] = Slot{page, frame};
  ++size_;
}

void FrameTable::Erase(PageId page) {
  uint64_t i = Hash(page) & mask_;
  while (slots_[i].page != page) {
    VOODB_CHECK_MSG(slots_[i].frame != kNoFrame, "erasing unindexed page");
    i = (i + 1) & mask_;
  }
  // Backward-shift deletion: keep every remaining entry reachable from
  // its home slot without tombstones.
  uint64_t hole = i;
  uint64_t j = (i + 1) & mask_;
  while (slots_[j].frame != kNoFrame) {
    const uint64_t home = Hash(slots_[j].page) & mask_;
    // Move slot j into the hole when its home position lies at or
    // before the hole (cyclically), i.e. the probe for it would pass
    // through the hole.
    const bool between = ((j - home) & mask_) >= ((j - hole) & mask_);
    if (between) {
      slots_[hole] = slots_[j];
      hole = j;
    }
    j = (j + 1) & mask_;
  }
  slots_[hole] = Slot{};
  --size_;
}

void FrameTable::Clear() {
  std::fill(slots_.begin(), slots_.end(), Slot{});
  size_ = 0;
}

void FrameTable::Rehash(uint64_t capacity) {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(capacity, Slot{});
  mask_ = capacity - 1;
  size_ = 0;
  for (const Slot& slot : old) {
    if (slot.frame != kNoFrame) Insert(slot.page, slot.frame);
  }
}

// --- ReplacementEngine -------------------------------------------------------

ReplacementEngine::ReplacementEngine(ReplacementPolicy policy,
                                     desp::RandomStream rng, uint32_t lru_k)
    : policy_(policy), rng_(rng), lru_k_(lru_k) {
  VOODB_CHECK_MSG(lru_k_ >= 1, "LRU-K needs K >= 1");
  clock_increment_on_access_ = policy == ReplacementPolicy::kGclock;
}

uint64_t* ReplacementEngine::LruKHistory(uint32_t frame) {
  const size_t need = static_cast<size_t>(frame + 1) * lru_k_;
  if (lruk_history_.size() < need) lruk_history_.resize(need, 0);
  return lruk_history_.data() + static_cast<size_t>(frame) * lru_k_;
}

void ReplacementEngine::TouchLruK(std::vector<Frame>& frames,
                                  uint32_t frame) {
  Frame& f = frames[frame];
  uint64_t* hist = LruKHistory(frame);
  // Shift the (at most K) stamps one slot toward the old end and record
  // the new one in front — "most recent first", the K-th falls off.
  const uint32_t keep = std::min(f.hist_size, lru_k_ - 1);
  for (uint32_t i = keep; i > 0; --i) hist[i] = hist[i - 1];
  hist[0] = ++lruk_clock_;
  f.hist_size = std::min(f.hist_size + 1, lru_k_);
  ++f.version;
  const bool has_k = f.hist_size >= lru_k_;
  lruk_heap_.push(HeapEntry{has_k ? 1u : 0u,
                            has_k ? hist[lru_k_ - 1] : hist[0], f.version,
                            f.page});
}

void ReplacementEngine::OnAdmit(std::vector<Frame>& frames, uint32_t frame) {
  Frame& f = frames[frame];
  switch (policy_) {
    case ReplacementPolicy::kRandom:
      f.slot = static_cast<uint32_t>(random_frames_.size());
      random_frames_.push_back(frame);
      break;
    case ReplacementPolicy::kFifo:
      fifo_queue_.push_back(f.page);
      break;
    case ReplacementPolicy::kLfu:
      f.count = 1;
      f.seq = lfu_next_seq_++;
      lfu_heap_.push(HeapEntry{f.count, f.seq, 0, f.page});
      break;
    case ReplacementPolicy::kLru:
      f.prev = kNoFrame;
      f.next = lru_head_;
      if (lru_head_ != kNoFrame) frames[lru_head_].prev = frame;
      lru_head_ = frame;
      if (lru_tail_ == kNoFrame) lru_tail_ = frame;
      break;
    case ReplacementPolicy::kLruK:
      f.hist_size = 0;
      f.version = 0;
      TouchLruK(frames, frame);
      break;
    case ReplacementPolicy::kClock:
    case ReplacementPolicy::kGclock:
      f.weight = clock_initial_weight_;
      break;
  }
}

void ReplacementEngine::OnAccess(std::vector<Frame>& frames, uint32_t frame) {
  Frame& f = frames[frame];
  switch (policy_) {
    case ReplacementPolicy::kRandom:
    case ReplacementPolicy::kFifo:
      break;
    case ReplacementPolicy::kLfu:
      ++f.count;
      lfu_heap_.push(HeapEntry{f.count, f.seq, 0, f.page});
      break;
    case ReplacementPolicy::kLru:
      if (lru_head_ == frame) break;
      // Unlink, then relink at the MRU end.
      frames[f.prev].next = f.next;
      if (f.next != kNoFrame) {
        frames[f.next].prev = f.prev;
      } else {
        lru_tail_ = f.prev;
      }
      f.prev = kNoFrame;
      f.next = lru_head_;
      frames[lru_head_].prev = frame;
      lru_head_ = frame;
      break;
    case ReplacementPolicy::kLruK:
      TouchLruK(frames, frame);
      break;
    case ReplacementPolicy::kClock:
    case ReplacementPolicy::kGclock:
      f.weight = clock_increment_on_access_
                     ? std::min(f.weight + 1, clock_max_weight_)
                     : clock_initial_weight_;
      break;
  }
}

uint32_t ReplacementEngine::PickVictim(std::vector<Frame>& frames,
                                       const FrameTable& table) {
  switch (policy_) {
    case ReplacementPolicy::kRandom: {
      VOODB_CHECK_MSG(!random_frames_.empty(), "no resident pages");
      const auto i = static_cast<size_t>(rng_.UniformInt(
          0, static_cast<int64_t>(random_frames_.size()) - 1));
      return random_frames_[i];
    }
    case ReplacementPolicy::kFifo:
      while (!fifo_queue_.empty()) {
        const uint32_t frame = table.Find(fifo_queue_.front());
        if (frame != kNoFrame) return frame;
        fifo_queue_.pop_front();  // stale entry: page left the buffer
      }
      VOODB_CHECK_MSG(false, "no resident pages");
      return kNoFrame;
    case ReplacementPolicy::kLfu:
      while (!lfu_heap_.empty()) {
        const HeapEntry top = lfu_heap_.top();
        const uint32_t frame = table.Find(top.page);
        if (frame != kNoFrame && frames[frame].count == top.key1) {
          return frame;
        }
        lfu_heap_.pop();  // stale
      }
      VOODB_CHECK_MSG(false, "no resident pages");
      return kNoFrame;
    case ReplacementPolicy::kLru:
      VOODB_CHECK_MSG(lru_tail_ != kNoFrame, "no resident pages");
      return lru_tail_;
    case ReplacementPolicy::kLruK:
      while (!lruk_heap_.empty()) {
        const HeapEntry top = lruk_heap_.top();
        const uint32_t frame = table.Find(top.page);
        if (frame != kNoFrame && frames[frame].version == top.version) {
          return frame;
        }
        lruk_heap_.pop();  // stale
      }
      VOODB_CHECK_MSG(false, "no resident pages");
      return kNoFrame;
    case ReplacementPolicy::kClock:
    case ReplacementPolicy::kGclock:
      VOODB_CHECK_MSG(table.size() > 0, "no resident pages");
      while (true) {
        if (clock_hand_ >= frames.size()) clock_hand_ = 0;
        Frame& f = frames[clock_hand_];
        if (f.page == kNullPage) {  // free frame: sweep past
          ++clock_hand_;
          continue;
        }
        if (f.weight == 0) return static_cast<uint32_t>(clock_hand_);
        --f.weight;
        ++clock_hand_;
      }
  }
  VOODB_CHECK_MSG(false, "unknown replacement policy");
  return kNoFrame;
}

void ReplacementEngine::OnEvict(std::vector<Frame>& frames, uint32_t frame) {
  Frame& f = frames[frame];
  switch (policy_) {
    case ReplacementPolicy::kRandom: {
      const uint32_t last = random_frames_.back();
      random_frames_[f.slot] = last;
      frames[last].slot = f.slot;
      random_frames_.pop_back();
      break;
    }
    case ReplacementPolicy::kFifo:
    case ReplacementPolicy::kLfu:
    case ReplacementPolicy::kLruK:
      // Lazy structures: entries for the evicted page are recognized as
      // stale at victim time (the page no longer resolves to a frame).
      break;
    case ReplacementPolicy::kLru:
      if (f.prev != kNoFrame) {
        frames[f.prev].next = f.next;
      } else {
        lru_head_ = f.next;
      }
      if (f.next != kNoFrame) {
        frames[f.next].prev = f.prev;
      } else {
        lru_tail_ = f.prev;
      }
      f.prev = f.next = kNoFrame;
      break;
    case ReplacementPolicy::kClock:
    case ReplacementPolicy::kGclock:
      break;  // the cache unbinds the frame; the sweep skips free frames
  }
}

void ReplacementEngine::Reset() {
  // Restarts the policy from a clean slate (CLOCK hand at 0, lazy
  // queues/heaps emptied).  The node-based predecessors instead carried
  // stale heap entries and a hash-map-ordered free list across a drop —
  // an unreproducible iteration-order artifact, replaced here by the
  // deterministic dense restart (verified output-identical on the
  // registered scenarios that drop mid-run).
  lru_head_ = lru_tail_ = kNoFrame;
  random_frames_.clear();
  fifo_queue_.clear();
  lfu_heap_ = {};
  lruk_heap_ = {};
  clock_hand_ = 0;
  // The monotone stamps (lfu_next_seq_, lruk_clock_) survive a reset so
  // later admissions keep globally unique sequence numbers.
}

}  // namespace voodb::storage
