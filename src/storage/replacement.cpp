#include "storage/replacement.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace voodb::storage {

const char* ToString(ReplacementPolicy p) {
  switch (p) {
    case ReplacementPolicy::kRandom:
      return "RANDOM";
    case ReplacementPolicy::kFifo:
      return "FIFO";
    case ReplacementPolicy::kLfu:
      return "LFU";
    case ReplacementPolicy::kLru:
      return "LRU";
    case ReplacementPolicy::kLruK:
      return "LRU-K";
    case ReplacementPolicy::kClock:
      return "CLOCK";
    case ReplacementPolicy::kGclock:
      return "GCLOCK";
  }
  return "?";
}

namespace {

/// RANDOM: victim drawn uniformly among resident pages.
class RandomAlgo final : public ReplacementAlgo {
 public:
  explicit RandomAlgo(desp::RandomStream rng) : rng_(rng) {}

  void OnAdmit(PageId page) override {
    index_[page] = pages_.size();
    pages_.push_back(page);
  }
  void OnAccess(PageId) override {}
  PageId PickVictim() override {
    VOODB_CHECK_MSG(!pages_.empty(), "no resident pages");
    const auto i = static_cast<size_t>(
        rng_.UniformInt(0, static_cast<int64_t>(pages_.size()) - 1));
    return pages_[i];
  }
  void OnEvict(PageId page) override {
    const auto it = index_.find(page);
    VOODB_CHECK_MSG(it != index_.end(), "evicting non-resident page");
    const size_t i = it->second;
    index_.erase(it);
    if (i + 1 != pages_.size()) {
      pages_[i] = pages_.back();
      index_[pages_[i]] = i;
    }
    pages_.pop_back();
  }

 private:
  desp::RandomStream rng_;
  std::vector<PageId> pages_;
  std::unordered_map<PageId, size_t> index_;
};

/// FIFO: victim is the oldest admitted page; accesses do not refresh.
class FifoAlgo final : public ReplacementAlgo {
 public:
  void OnAdmit(PageId page) override {
    queue_.push_back(page);
    resident_.insert({page, true});
  }
  void OnAccess(PageId) override {}
  PageId PickVictim() override {
    while (!queue_.empty()) {
      const PageId front = queue_.front();
      const auto it = resident_.find(front);
      if (it != resident_.end() && it->second) return front;
      queue_.pop_front();  // stale entry
    }
    VOODB_CHECK_MSG(false, "no resident pages");
    return kNullPage;
  }
  void OnEvict(PageId page) override {
    const auto it = resident_.find(page);
    VOODB_CHECK_MSG(it != resident_.end() && it->second,
                    "evicting non-resident page");
    resident_.erase(it);
  }

 private:
  std::deque<PageId> queue_;
  std::unordered_map<PageId, bool> resident_;
};

/// LFU: victim has the smallest access count (FIFO among ties).
/// Lazily-invalidated min-heap keyed by (count, admission seq).
class LfuAlgo final : public ReplacementAlgo {
 public:
  void OnAdmit(PageId page) override {
    Meta& m = meta_[page];
    m.count = 1;
    m.resident = true;
    m.seq = next_seq_++;
    heap_.push(Entry{m.count, m.seq, page});
  }
  void OnAccess(PageId page) override {
    Meta& m = meta_.at(page);
    ++m.count;
    heap_.push(Entry{m.count, m.seq, page});
  }
  PageId PickVictim() override {
    while (!heap_.empty()) {
      const Entry top = heap_.top();
      const auto it = meta_.find(top.page);
      if (it != meta_.end() && it->second.resident &&
          it->second.count == top.count) {
        return top.page;
      }
      heap_.pop();  // stale
    }
    VOODB_CHECK_MSG(false, "no resident pages");
    return kNullPage;
  }
  void OnEvict(PageId page) override {
    const auto it = meta_.find(page);
    VOODB_CHECK_MSG(it != meta_.end() && it->second.resident,
                    "evicting non-resident page");
    meta_.erase(it);  // forget history; re-admission restarts the count
  }

 private:
  struct Meta {
    uint64_t count = 0;
    uint64_t seq = 0;
    bool resident = false;
  };
  struct Entry {
    uint64_t count;
    uint64_t seq;
    PageId page;
    bool operator>(const Entry& o) const {
      if (count != o.count) return count > o.count;
      return seq > o.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  std::unordered_map<PageId, Meta> meta_;
  uint64_t next_seq_ = 0;
};

/// LRU-1: classic least-recently-used via an intrusive list.
class LruAlgo final : public ReplacementAlgo {
 public:
  void OnAdmit(PageId page) override {
    order_.push_front(page);
    where_[page] = order_.begin();
  }
  void OnAccess(PageId page) override {
    const auto it = where_.find(page);
    VOODB_CHECK_MSG(it != where_.end(), "access to non-resident page");
    order_.splice(order_.begin(), order_, it->second);
  }
  PageId PickVictim() override {
    VOODB_CHECK_MSG(!order_.empty(), "no resident pages");
    return order_.back();
  }
  void OnEvict(PageId page) override {
    const auto it = where_.find(page);
    VOODB_CHECK_MSG(it != where_.end(), "evicting non-resident page");
    order_.erase(it->second);
    where_.erase(it);
  }

 private:
  std::list<PageId> order_;
  std::unordered_map<PageId, std::list<PageId>::iterator> where_;
};

/// LRU-K (O'Neil et al.): victim has the largest backward-K distance,
/// i.e. the smallest K-th most recent access stamp; pages with fewer than
/// K accesses have infinite distance and are evicted first (oldest last
/// access breaking ties).  Lazily-invalidated min-heap.
class LruKAlgo final : public ReplacementAlgo {
 public:
  explicit LruKAlgo(uint32_t k) : k_(k) {
    VOODB_CHECK_MSG(k_ >= 1, "LRU-K needs K >= 1");
  }

  void OnAdmit(PageId page) override {
    Meta& m = meta_[page];
    m.resident = true;
    m.history.clear();
    Touch(page, m);
  }
  void OnAccess(PageId page) override { Touch(page, meta_.at(page)); }
  PageId PickVictim() override {
    while (!heap_.empty()) {
      const Entry top = heap_.top();
      const auto it = meta_.find(top.page);
      if (it != meta_.end() && it->second.resident &&
          it->second.version == top.version) {
        return top.page;
      }
      heap_.pop();  // stale
    }
    VOODB_CHECK_MSG(false, "no resident pages");
    return kNullPage;
  }
  void OnEvict(PageId page) override {
    const auto it = meta_.find(page);
    VOODB_CHECK_MSG(it != meta_.end() && it->second.resident,
                    "evicting non-resident page");
    meta_.erase(it);
  }

 private:
  struct Meta {
    std::deque<uint64_t> history;  // most recent first, at most K stamps
    uint64_t version = 0;
    bool resident = false;
  };
  struct Entry {
    bool has_k;          // false sorts first (infinite distance)
    uint64_t key;        // K-th stamp when has_k, else last stamp
    uint64_t version;
    PageId page;
    bool operator>(const Entry& o) const {
      if (has_k != o.has_k) return has_k && !o.has_k;
      return key > o.key;
    }
  };

  void Touch(PageId page, Meta& m) {
    m.history.push_front(++clock_);
    if (m.history.size() > k_) m.history.pop_back();
    ++m.version;
    const bool has_k = m.history.size() >= k_;
    heap_.push(Entry{has_k, has_k ? m.history.back() : m.history.front(),
                     m.version, page});
  }

  uint32_t k_;
  uint64_t clock_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  std::unordered_map<PageId, Meta> meta_;
};

/// CLOCK: second-chance sweep over a circular frame table.  With
/// `increment_on_access`, behaves as GCLOCK (reference counters instead of
/// a single reference bit).
class ClockAlgo : public ReplacementAlgo {
 public:
  explicit ClockAlgo(uint32_t initial_weight = 1,
                     bool increment_on_access = false,
                     uint32_t max_weight = 8)
      : initial_weight_(initial_weight),
        increment_on_access_(increment_on_access),
        max_weight_(max_weight) {}

  void OnAdmit(PageId page) override {
    size_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
      frames_[slot] = Frame{page, initial_weight_, true};
    } else {
      slot = frames_.size();
      frames_.push_back(Frame{page, initial_weight_, true});
    }
    where_[page] = slot;
  }
  void OnAccess(PageId page) override {
    Frame& f = frames_[where_.at(page)];
    if (increment_on_access_) {
      f.weight = std::min(f.weight + 1, max_weight_);
    } else {
      f.weight = initial_weight_;
    }
  }
  PageId PickVictim() override {
    VOODB_CHECK_MSG(frames_.size() > free_slots_.size(), "no resident pages");
    while (true) {
      if (hand_ >= frames_.size()) hand_ = 0;
      Frame& f = frames_[hand_];
      if (!f.occupied) {
        ++hand_;
        continue;
      }
      if (f.weight == 0) return f.page;
      --f.weight;
      ++hand_;
    }
  }
  void OnEvict(PageId page) override {
    const auto it = where_.find(page);
    VOODB_CHECK_MSG(it != where_.end(), "evicting non-resident page");
    frames_[it->second].occupied = false;
    free_slots_.push_back(it->second);
    where_.erase(it);
  }

 private:
  struct Frame {
    PageId page = kNullPage;
    uint32_t weight = 0;
    bool occupied = false;
  };
  uint32_t initial_weight_;
  bool increment_on_access_ = false;
  uint32_t max_weight_ = 8;
  std::vector<Frame> frames_;
  std::vector<size_t> free_slots_;
  std::unordered_map<PageId, size_t> where_;
  size_t hand_ = 0;
};

/// GCLOCK: generalized CLOCK with a reference counter per frame (the
/// sweep decrements counters; hits increment them).
class GclockAlgo final : public ClockAlgo {
 public:
  GclockAlgo() : ClockAlgo(/*initial_weight=*/1, /*increment_on_access=*/true) {}
};

}  // namespace

std::unique_ptr<ReplacementAlgo> MakeReplacementAlgo(ReplacementPolicy policy,
                                                     desp::RandomStream rng,
                                                     uint32_t lru_k) {
  switch (policy) {
    case ReplacementPolicy::kRandom:
      return std::make_unique<RandomAlgo>(rng);
    case ReplacementPolicy::kFifo:
      return std::make_unique<FifoAlgo>();
    case ReplacementPolicy::kLfu:
      return std::make_unique<LfuAlgo>();
    case ReplacementPolicy::kLru:
      return std::make_unique<LruAlgo>();
    case ReplacementPolicy::kLruK:
      return std::make_unique<LruKAlgo>(lru_k);
    case ReplacementPolicy::kClock:
      return std::make_unique<ClockAlgo>();
    case ReplacementPolicy::kGclock:
      return std::make_unique<GclockAlgo>();
  }
  VOODB_CHECK_MSG(false, "unknown replacement policy");
  return nullptr;
}

}  // namespace voodb::storage
