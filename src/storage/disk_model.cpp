#include "storage/disk_model.hpp"

#include "util/check.hpp"

namespace voodb::storage {

void DiskParameters::Validate() const {
  VOODB_CHECK_MSG(search_ms >= 0.0 && latency_ms >= 0.0 && transfer_ms >= 0.0,
                  "disk timings must be non-negative");
}

DiskModel::DiskModel(DiskParameters params) : params_(params) {
  params_.Validate();
}

double DiskModel::AccessTime(PageId page) {
  const bool contiguous = last_page_ != kNullPage &&
                          (page == last_page_ + 1 || page == last_page_);
  last_page_ = page;
  if (contiguous) {
    ++sequential_hits_;
    return params_.latency_ms + params_.transfer_ms;
  }
  return params_.search_ms + params_.latency_ms + params_.transfer_ms;
}

double DiskModel::IoTime(const PageIo& io) {
  if (io.kind == PageIo::Kind::kRead) {
    ++reads_;
  } else {
    ++writes_;
  }
  return AccessTime(io.page);
}

void DiskModel::ResetHead() { last_page_ = kNullPage; }

}  // namespace voodb::storage
