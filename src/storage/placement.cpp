#include "storage/placement.hpp"

#include <cmath>
#include <numeric>

#include "util/check.hpp"

namespace voodb::storage {

const char* ToString(PlacementPolicy p) {
  switch (p) {
    case PlacementPolicy::kSequential:
      return "SEQUENTIAL";
    case PlacementPolicy::kOptimizedSequential:
      return "OPTIMIZED_SEQUENTIAL";
    case PlacementPolicy::kReferenceDfs:
      return "REFERENCE_DFS";
  }
  return "?";
}

Placement Placement::Build(const ocb::ObjectBase& base, uint32_t page_size,
                           PlacementPolicy policy, double overhead_factor) {
  std::vector<ocb::Oid> order;
  switch (policy) {
    case PlacementPolicy::kSequential:
      order.resize(base.NumObjects());
      std::iota(order.begin(), order.end(), ocb::Oid{0});
      break;
    case PlacementPolicy::kOptimizedSequential:
      order = ClassMajorOrder(base);
      break;
    case PlacementPolicy::kReferenceDfs:
      order = DepthFirstOrder(base);
      break;
  }
  return Pack(base, page_size, order, overhead_factor);
}

Placement Placement::BuildFromOrder(const ocb::ObjectBase& base,
                                    uint32_t page_size,
                                    const std::vector<ocb::Oid>& order,
                                    double overhead_factor) {
  VOODB_CHECK_MSG(order.size() == base.NumObjects(),
                  "order must be a permutation of all OIDs");
  return Pack(base, page_size, order, overhead_factor);
}

Placement Placement::RelocateToTail(const Placement& current,
                                    const ocb::ObjectBase& base,
                                    const std::vector<ocb::Oid>& moved_order,
                                    double overhead_factor) {
  VOODB_CHECK_MSG(overhead_factor >= 1.0, "overhead factor must be >= 1");
  Placement placement;
  placement.page_size_ = current.page_size_;
  placement.spans_ = current.spans_;
  std::vector<char> moved(base.NumObjects(), 0);
  for (ocb::Oid oid : moved_order) {
    VOODB_CHECK_MSG(oid < base.NumObjects(), "oid out of range");
    VOODB_CHECK_MSG(!moved[oid], "oid " << oid << " moved twice");
    moved[oid] = 1;
  }
  // Rebuild the page rows: every existing page keeps its objects minus
  // the moved ones (holes are not reclaimed), preserving their order.
  placement.page_offsets_.clear();
  placement.page_objects_.reserve(current.page_objects_.size());
  const uint64_t old_num_pages = current.NumPages();
  for (PageId page = 0; page < old_num_pages; ++page) {
    placement.OpenPageRow();
    for (ocb::Oid oid : current.ObjectsOn(page)) {
      if (!moved[oid]) placement.page_objects_.push_back(oid);
    }
  }
  // Repack moved objects into fresh pages at the tail.
  const uint32_t page_size = placement.page_size_;
  uint64_t current_page = old_num_pages;
  uint32_t used_in_page = 0;
  bool page_open = false;
  for (ocb::Oid oid : moved_order) {
    const auto raw = static_cast<double>(base.SizeOf(oid));
    const auto stored =
        static_cast<uint64_t>(std::ceil(raw * overhead_factor));
    if (stored > page_size) {
      if (page_open) {
        ++current_page;
        page_open = false;
      }
      const auto span_pages =
          static_cast<uint32_t>((stored + page_size - 1) / page_size);
      placement.spans_[oid] = PageSpan{current_page, span_pages};
      placement.OpenPageRow();
      placement.page_objects_.push_back(oid);
      for (uint32_t extra = 1; extra < span_pages; ++extra) {
        placement.OpenPageRow();
      }
      current_page += span_pages;
      continue;
    }
    if (!page_open) {
      placement.OpenPageRow();
      page_open = true;
      used_in_page = 0;
    }
    if (used_in_page + stored > page_size) {
      ++current_page;
      placement.OpenPageRow();
      used_in_page = 0;
    }
    placement.spans_[oid] = PageSpan{current_page, 1};
    placement.page_objects_.push_back(oid);
    used_in_page += static_cast<uint32_t>(stored);
  }
  placement.page_offsets_.push_back(placement.page_objects_.size());
  return placement;
}

Placement Placement::Pack(const ocb::ObjectBase& base, uint32_t page_size,
                          const std::vector<ocb::Oid>& order,
                          double overhead_factor) {
  VOODB_CHECK_MSG(page_size >= 512, "page size must be >= 512 bytes");
  VOODB_CHECK_MSG(overhead_factor >= 1.0, "overhead factor must be >= 1");
  Placement placement;
  placement.page_size_ = page_size;
  placement.spans_.assign(base.NumObjects(), PageSpan{});
  placement.page_offsets_.clear();
  placement.page_objects_.reserve(base.NumObjects());
  std::vector<char> placed(base.NumObjects(), 0);

  uint64_t current_page = 0;
  uint32_t used_in_page = 0;
  bool page_open = false;
  auto open_page = [&]() {
    if (!page_open) {
      placement.OpenPageRow();
      page_open = true;
      used_in_page = 0;
    }
  };
  auto close_page = [&]() {
    if (page_open) {
      ++current_page;
      page_open = false;
    }
  };

  for (ocb::Oid oid : order) {
    VOODB_CHECK_MSG(oid < base.NumObjects(), "oid " << oid << " out of range");
    VOODB_CHECK_MSG(!placed[oid], "oid " << oid << " appears twice in order");
    placed[oid] = 1;
    const auto raw = static_cast<double>(base.SizeOf(oid));
    const auto stored =
        static_cast<uint64_t>(std::ceil(raw * overhead_factor));
    if (stored > page_size) {
      // Large object: dedicated contiguous span.
      close_page();
      const auto span_pages =
          static_cast<uint32_t>((stored + page_size - 1) / page_size);
      placement.spans_[oid] = PageSpan{current_page, span_pages};
      placement.OpenPageRow();
      placement.page_objects_.push_back(oid);
      for (uint32_t extra = 1; extra < span_pages; ++extra) {
        placement.OpenPageRow();
      }
      current_page += span_pages;
      continue;
    }
    open_page();
    if (used_in_page + stored > page_size) {
      close_page();
      open_page();
    }
    placement.spans_[oid] = PageSpan{current_page, 1};
    placement.page_objects_.push_back(oid);
    used_in_page += static_cast<uint32_t>(stored);
  }
  close_page();
  placement.page_offsets_.push_back(placement.page_objects_.size());
  return placement;
}

std::vector<ocb::Oid> Placement::DepthFirstOrder(const ocb::ObjectBase& base) {
  const uint64_t no = base.NumObjects();
  std::vector<ocb::Oid> order;
  order.reserve(no);
  std::vector<char> visited(no, 0);
  std::vector<ocb::Oid> stack;
  for (ocb::Oid root = 0; root < no; ++root) {
    if (visited[root]) continue;
    stack.push_back(root);
    visited[root] = 1;
    while (!stack.empty()) {
      const ocb::Oid oid = stack.back();
      stack.pop_back();
      order.push_back(oid);
      const ocb::OidSpan refs = base.References(oid);
      // Push in reverse so the first reference is visited first.
      for (size_t i = refs.size(); i > 0; --i) {
        const ocb::Oid ref = refs[i - 1];
        if (ref == ocb::kNullOid || visited[ref]) continue;
        visited[ref] = 1;
        stack.push_back(ref);
      }
    }
  }
  return order;
}

std::vector<ocb::Oid> Placement::ClassMajorOrder(const ocb::ObjectBase& base) {
  const uint64_t no = base.NumObjects();
  std::vector<ocb::Oid> order;
  order.reserve(no);
  // Class-major, instances in OID order within each class.  Round-robin
  // assignment makes this a strided walk over the dense OID space — no
  // bucketing pass needed.
  const uint32_t nc = base.schema().NumClasses();
  for (ocb::ClassId c = 0; c < nc; ++c) {
    for (ocb::Oid oid = c; oid < no; oid += nc) {
      order.push_back(oid);
    }
  }
  return order;
}

PageSpan Placement::SpanOf(ocb::Oid oid) const {
  VOODB_CHECK_MSG(oid < spans_.size(), "oid " << oid << " out of range");
  return spans_[oid];
}

ocb::OidSpan Placement::ObjectsOn(PageId page) const {
  VOODB_CHECK_MSG(page < NumPages(), "page " << page << " out of range");
  const uint64_t begin = page_offsets_[page];
  return ocb::OidSpan(page_objects_.data() + begin,
                      static_cast<size_t>(page_offsets_[page + 1] - begin));
}

}  // namespace voodb::storage
