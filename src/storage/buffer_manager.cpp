#include "storage/buffer_manager.hpp"

#include <algorithm>
#include <utility>

#include "trace/recorder.hpp"
#include "util/check.hpp"

namespace voodb::storage {

BufferManager::BufferManager(uint64_t capacity_pages, ReplacementPolicy policy,
                             desp::RandomStream rng, uint32_t lru_k)
    : capacity_(capacity_pages),
      engine_(policy, rng, lru_k),
      index_(capacity_pages) {
  VOODB_CHECK_MSG(capacity_ >= 1, "buffer capacity must be >= 1 page");
  frames_.reserve(capacity_);
}

void BufferManager::SetPrefetcher(std::unique_ptr<Prefetcher> prefetcher) {
  prefetcher_ = std::move(prefetcher);
}

AccessOutcome BufferManager::Access(PageId page, bool write) {
  AccessOutcome outcome;
  outcome.hit = AccessInto(page, write, outcome.ios);
  return outcome;
}

bool BufferManager::AccessInto(PageId page, bool write,
                               std::vector<PageIo>& ios) {
  if (recorder_ != nullptr) recorder_->OnPage(page, write);
  ++stats_.accesses;
  const uint32_t frame = index_.Find(page);
  if (frame != kNoFrame) {
    ++stats_.hits;
    Frame& f = frames_[frame];
    f.dirty = f.dirty || write;
    engine_.OnAccess(frames_, frame);
    return true;
  }
  ++stats_.misses;
  Admit(page, write, ios);
  ios.push_back(PageIo{PageIo::Kind::kRead, page});
  if (prefetcher_ != nullptr) {
    for (PageId extra : prefetcher_->OnMiss(page)) {
      if (extra == page || index_.Find(extra) != kNoFrame) continue;
      Admit(extra, /*dirty=*/false, ios);
      ios.push_back(PageIo{PageIo::Kind::kRead, extra});
      ++stats_.prefetch_reads;
    }
  }
  return false;
}

std::vector<PageIo> BufferManager::FlushAll() {
  std::vector<PageIo> ios;
  for (Frame& f : frames_) {
    if (f.page != kNullPage && f.dirty) {
      ios.push_back(PageIo{PageIo::Kind::kWrite, f.page});
      ++stats_.writebacks;
      f.dirty = false;
    }
  }
  // Ascending page order: deterministic, and sequential on the disk
  // model (contiguous writes skip the seek).
  std::sort(ios.begin(), ios.end(),
            [](const PageIo& a, const PageIo& b) { return a.page < b.page; });
  return ios;
}

void BufferManager::DropAll() {
  frames_.clear();
  free_frames_.clear();
  index_.Clear();
  engine_.Reset();
}

std::vector<PageIo> BufferManager::Resize(uint64_t capacity_pages) {
  VOODB_CHECK_MSG(capacity_pages >= 1, "buffer capacity must be >= 1 page");
  std::vector<PageIo> ios;
  capacity_ = capacity_pages;
  frames_.reserve(capacity_);
  while (index_.size() > capacity_) EvictOne(ios);
  return ios;
}

uint64_t BufferManager::DirtyPages() const {
  uint64_t n = 0;
  for (const Frame& f : frames_) n += (f.page != kNullPage && f.dirty) ? 1 : 0;
  return n;
}

void BufferManager::EvictOne(std::vector<PageIo>& ios) {
  const uint32_t victim = engine_.PickVictim(frames_, index_);
  Frame& f = frames_[victim];
  VOODB_CHECK_MSG(f.page != kNullPage, "victim frame not resident");
  if (f.dirty) {
    ios.push_back(PageIo{PageIo::Kind::kWrite, f.page});
    ++stats_.writebacks;
  }
  engine_.OnEvict(frames_, victim);
  index_.Erase(f.page);
  f.page = kNullPage;
  f.dirty = false;
  free_frames_.push_back(victim);
  ++stats_.evictions;
}

void BufferManager::Admit(PageId page, bool dirty, std::vector<PageIo>& ios) {
  while (index_.size() >= capacity_) EvictOne(ios);
  uint32_t frame;
  if (!free_frames_.empty()) {
    frame = free_frames_.back();
    free_frames_.pop_back();
  } else {
    frame = static_cast<uint32_t>(frames_.size());
    frames_.emplace_back();
  }
  Frame& f = frames_[frame];
  f.page = page;
  f.dirty = dirty;
  index_.Insert(page, frame);
  engine_.OnAdmit(frames_, frame);
}

}  // namespace voodb::storage
