#include "storage/buffer_manager.hpp"

#include <utility>

#include "util/check.hpp"

namespace voodb::storage {

BufferManager::BufferManager(uint64_t capacity_pages, ReplacementPolicy policy,
                             desp::RandomStream rng, uint32_t lru_k)
    : capacity_(capacity_pages),
      policy_(policy),
      algo_(MakeReplacementAlgo(policy, rng, lru_k)) {
  VOODB_CHECK_MSG(capacity_ >= 1, "buffer capacity must be >= 1 page");
}

void BufferManager::SetPrefetcher(std::unique_ptr<Prefetcher> prefetcher) {
  prefetcher_ = std::move(prefetcher);
}

AccessOutcome BufferManager::Access(PageId page, bool write) {
  AccessOutcome outcome;
  ++stats_.accesses;
  const auto it = resident_.find(page);
  if (it != resident_.end()) {
    ++stats_.hits;
    outcome.hit = true;
    it->second = it->second || write;
    algo_->OnAccess(page);
    return outcome;
  }
  ++stats_.misses;
  Admit(page, write, outcome.ios);
  outcome.ios.push_back(PageIo{PageIo::Kind::kRead, page});
  if (prefetcher_ != nullptr) {
    for (PageId extra : prefetcher_->OnMiss(page)) {
      if (resident_.count(extra) != 0 || extra == page) continue;
      Admit(extra, /*dirty=*/false, outcome.ios);
      outcome.ios.push_back(PageIo{PageIo::Kind::kRead, extra});
      ++stats_.prefetch_reads;
    }
  }
  return outcome;
}

std::vector<PageIo> BufferManager::FlushAll() {
  std::vector<PageIo> ios;
  for (auto& [page, dirty] : resident_) {
    if (dirty) {
      ios.push_back(PageIo{PageIo::Kind::kWrite, page});
      ++stats_.writebacks;
      dirty = false;
    }
  }
  return ios;
}

void BufferManager::DropAll() {
  for (const auto& [page, dirty] : resident_) {
    algo_->OnEvict(page);
  }
  resident_.clear();
}

std::vector<PageIo> BufferManager::Resize(uint64_t capacity_pages) {
  VOODB_CHECK_MSG(capacity_pages >= 1, "buffer capacity must be >= 1 page");
  std::vector<PageIo> ios;
  capacity_ = capacity_pages;
  while (resident_.size() > capacity_) EvictOne(ios);
  return ios;
}

void BufferManager::EvictOne(std::vector<PageIo>& ios) {
  const PageId victim = algo_->PickVictim();
  const auto it = resident_.find(victim);
  VOODB_CHECK_MSG(it != resident_.end(), "victim not resident");
  if (it->second) {
    ios.push_back(PageIo{PageIo::Kind::kWrite, victim});
    ++stats_.writebacks;
  }
  algo_->OnEvict(victim);
  resident_.erase(it);
  ++stats_.evictions;
}

void BufferManager::Admit(PageId page, bool dirty, std::vector<PageIo>& ios) {
  while (resident_.size() >= capacity_) EvictOne(ios);
  resident_.emplace(page, dirty);
  algo_->OnAdmit(page);
}

}  // namespace voodb::storage
