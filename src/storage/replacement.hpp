/// \file replacement.hpp
/// \brief Buffer page replacement policies (Table 3's PGREP parameter).
///
/// The paper lists RANDOM, FIFO, LFU, LRU-K, CLOCK and GCLOCK as the
/// interchangeable policies of the Buffering Manager; LRU-1 is the
/// default.  Each policy tracks the set of resident pages and nominates a
/// victim on demand.  Policies that would need an O(capacity) victim scan
/// (LFU, LRU-K) use lazily-invalidated heaps so all operations stay
/// O(log capacity) amortized.
#pragma once

#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "desp/random.hpp"
#include "storage/page.hpp"

namespace voodb::storage {

/// Replacement policy selector (PGREP).
enum class ReplacementPolicy {
  kRandom,
  kFifo,
  kLfu,
  kLru,    ///< LRU-1
  kLruK,   ///< LRU-K with configurable K (default 2)
  kClock,
  kGclock,
};

const char* ToString(ReplacementPolicy p);

/// Interface every replacement algorithm implements.  The BufferManager
/// guarantees: OnAdmit for non-resident pages only, OnAccess for resident
/// pages only, PickVictim only when at least one page is resident, and
/// OnEvict exactly once per evicted page.
class ReplacementAlgo {
 public:
  virtual ~ReplacementAlgo() = default;
  virtual void OnAdmit(PageId page) = 0;
  virtual void OnAccess(PageId page) = 0;
  virtual PageId PickVictim() = 0;
  virtual void OnEvict(PageId page) = 0;
};

/// Factory.  `rng` is used by kRandom; `lru_k` by kLruK.
std::unique_ptr<ReplacementAlgo> MakeReplacementAlgo(ReplacementPolicy policy,
                                                     desp::RandomStream rng,
                                                     uint32_t lru_k = 2);

}  // namespace voodb::storage
