/// \file replacement.hpp
/// \brief Buffer frames, the resident-page index and the replacement
/// policies (Table 3's PGREP parameter).
///
/// The paper lists RANDOM, FIFO, LFU, LRU-K, CLOCK and GCLOCK as the
/// interchangeable policies of the Buffering Manager; LRU-1 is the
/// default.  The buffer is data-oriented: all per-page state — the page
/// id, the dirty bit and the replacement-policy bookkeeping — lives in
/// one `Frame` record of a single flat array, and residency is resolved
/// through an open-addressing `FrameTable` that maps PageId to a frame
/// index.  A hit therefore costs one hash probe plus one cache-line
/// update (LRU relinks its intrusive chain, CLOCK bumps a weight, LFU
/// bumps a counter) and evictions recycle frames through a free list
/// without allocating.
///
/// Policies that need an ordered victim scan (LFU, LRU-K) keep
/// lazily-invalidated heaps on the side so all operations stay
/// O(log capacity) amortized; their per-page state still lives in the
/// frame record, and stale heap entries are recognized by comparing the
/// entry against the frame the page currently occupies.
#pragma once

#include <cstdint>
#include <deque>
#include <queue>
#include <vector>

#include "desp/random.hpp"
#include "storage/page.hpp"

namespace voodb::storage {

/// Replacement policy selector (PGREP).
enum class ReplacementPolicy {
  kRandom,
  kFifo,
  kLfu,
  kLru,    ///< LRU-1
  kLruK,   ///< LRU-K with configurable K (default 2)
  kClock,
  kGclock,
};

const char* ToString(ReplacementPolicy p);

/// Sentinel frame index ("no frame").
inline constexpr uint32_t kNoFrame = static_cast<uint32_t>(-1);

/// One buffer frame: the unit of the flat frame array.  Exactly the
/// state the hot path touches — identity, dirty bit and the intrusive
/// replacement-policy fields — packed into one record so an access
/// updates a single cache line.
struct Frame {
  PageId page = kNullPage;   ///< resident page; kNullPage = free frame
  uint64_t count = 0;        ///< LFU: access count
  uint64_t seq = 0;          ///< LFU: admission sequence (tie-break)
  uint64_t version = 0;      ///< LRU-K: touch version (heap staleness)
  uint32_t prev = kNoFrame;  ///< LRU chain toward the MRU end
  uint32_t next = kNoFrame;  ///< LRU chain toward the LRU end
  uint32_t slot = 0;         ///< RANDOM: index into the admission vector
  uint32_t weight = 0;       ///< CLOCK/GCLOCK: second-chance weight
  uint32_t hist_size = 0;    ///< LRU-K: stamps recorded (<= K)
  bool dirty = false;        ///< page modified since load
};

/// Open-addressing hash index PageId -> frame index (linear probing,
/// power-of-two capacity, backward-shift deletion).  The buffer's only
/// per-access lookup structure; probes touch one small flat array.
class FrameTable {
 public:
  explicit FrameTable(uint64_t expected_entries = 16);

  /// Frame holding `page`, or kNoFrame.
  uint32_t Find(PageId page) const {
    uint64_t i = Hash(page) & mask_;
    while (true) {
      const Slot& slot = slots_[i];
      if (slot.page == page) return slot.frame;
      if (slot.frame == kNoFrame) return kNoFrame;
      i = (i + 1) & mask_;
    }
  }

  /// Inserts `page -> frame`; `page` must not be present.
  void Insert(PageId page, uint32_t frame);
  /// Removes `page`; must be present.
  void Erase(PageId page);
  void Clear();

  uint64_t size() const { return size_; }

 private:
  struct Slot {
    PageId page = kNullPage;
    uint32_t frame = kNoFrame;  ///< kNoFrame = empty slot
  };

  static uint64_t Hash(PageId page) {
    // 64-bit finalizer (splitmix64): cheap and well-distributed for the
    // dense page ids placements produce.
    uint64_t x = page + 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
  }

  void Rehash(uint64_t capacity);

  std::vector<Slot> slots_;
  uint64_t mask_ = 0;
  uint64_t size_ = 0;
};

/// The replacement policies, operating intrusively on the shared frame
/// array.  The owning cache guarantees: OnAdmit for frames just bound to
/// a page, OnAccess for resident frames only, PickVictim only when at
/// least one frame is resident, and OnEvict exactly once per eviction
/// (before the frame is unbound).
class ReplacementEngine {
 public:
  /// `rng` is used by kRandom; `lru_k` by kLruK.
  ReplacementEngine(ReplacementPolicy policy, desp::RandomStream rng,
                    uint32_t lru_k = 2);

  void OnAdmit(std::vector<Frame>& frames, uint32_t frame);
  void OnAccess(std::vector<Frame>& frames, uint32_t frame);
  /// Nominates a victim frame (may rotate CLOCK weights).
  uint32_t PickVictim(std::vector<Frame>& frames, const FrameTable& table);
  void OnEvict(std::vector<Frame>& frames, uint32_t frame);

  /// Drops all policy history (buffer drop; frame array restarts empty).
  void Reset();

  ReplacementPolicy policy() const { return policy_; }

 private:
  /// Lazily-invalidated heap entry shared by LFU (key1 = count,
  /// key2 = admission seq) and LRU-K (key1 = has-K flag, key2 = stamp,
  /// validated against the frame's touch version).
  struct HeapEntry {
    uint64_t key1;
    uint64_t key2;
    uint64_t version;
    PageId page;
  };
  struct HeapGreater {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.key1 != b.key1) return a.key1 > b.key1;
      return a.key2 > b.key2;
    }
  };

  void TouchLruK(std::vector<Frame>& frames, uint32_t frame);
  uint64_t* LruKHistory(uint32_t frame);

  ReplacementPolicy policy_;
  desp::RandomStream rng_;
  uint32_t lru_k_;

  // LRU: intrusive chain endpoints (frame indices).
  uint32_t lru_head_ = kNoFrame;  ///< MRU end
  uint32_t lru_tail_ = kNoFrame;  ///< LRU end (victim)

  // RANDOM: resident frames in admission order (swap-remove on evict).
  std::vector<uint32_t> random_frames_;

  // FIFO: admission queue; entries for pages no longer resident are
  // skipped lazily at victim time.
  std::deque<PageId> fifo_queue_;

  // LFU / LRU-K: lazily-invalidated min-heaps.
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapGreater>
      lfu_heap_;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapGreater>
      lruk_heap_;
  /// LRU-K stamp history, K stamps per frame, most recent first.
  std::vector<uint64_t> lruk_history_;
  uint64_t lfu_next_seq_ = 0;
  uint64_t lruk_clock_ = 0;

  // CLOCK / GCLOCK sweep hand (frame index).
  size_t clock_hand_ = 0;
  uint32_t clock_initial_weight_ = 1;
  uint32_t clock_max_weight_ = 8;
  bool clock_increment_on_access_ = false;
};

}  // namespace voodb::storage
