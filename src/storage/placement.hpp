/// \file placement.hpp
/// \brief Object-to-page placement (Table 3's INITPL parameter).
///
/// The placement maps every OCB object to a span of disk pages.  Objects
/// never share a byte across a page boundary unless they are larger than a
/// page, in which case they occupy a dedicated contiguous span.  Three
/// initial policies are provided:
///
/// * **Sequential** — objects packed in OID (creation) order;
/// * **OptimizedSequential** — objects grouped by class, instances in OID
///   order within each class (the classic bulk-load layout: optimal for
///   class scans and set-oriented accesses, the paper's INITPL default).
///   Note this layout is *not* traversal-friendly — which is exactly what
///   leaves room for a dynamic clustering technique to win (§4.4);
/// * **ReferenceDfs** — objects packed in depth-first reference order, an
///   idealized static clustering (ablation baseline).
///
/// Clustering policies produce a new object order and call
/// `BuildFromOrder` / `RelocateToTail` to materialize the reorganization.
#pragma once

#include <cstdint>
#include <vector>

#include "ocb/object_base.hpp"
#include "storage/page.hpp"

namespace voodb::storage {

/// Initial placement policy (INITPL).
enum class PlacementPolicy {
  kSequential,
  kOptimizedSequential,
  kReferenceDfs,
};

const char* ToString(PlacementPolicy p);

/// Contiguous pages occupied by one object.
struct PageSpan {
  PageId first = kNullPage;
  uint32_t count = 0;
};

/// An immutable object→page mapping.
class Placement {
 public:
  /// Builds the initial placement.  `overhead_factor` (>= 1) inflates
  /// object sizes to model per-system storage overhead (e.g. the O2 page
  /// server stores the same base in ~28 MB where Texas needs ~21 MB).
  static Placement Build(const ocb::ObjectBase& base, uint32_t page_size,
                         PlacementPolicy policy,
                         double overhead_factor = 1.0);

  /// Builds a placement that stores objects in exactly the given order
  /// (used by clustering reorganizations).  `order` must be a permutation
  /// of all OIDs.
  static Placement BuildFromOrder(const ocb::ObjectBase& base,
                                  uint32_t page_size,
                                  const std::vector<ocb::Oid>& order,
                                  double overhead_factor = 1.0);

  /// Logical-OID reorganization: removes `moved_order`'s objects from
  /// their current pages (leaving holes) and repacks them, in the given
  /// order, into fresh pages appended after the current page space.
  /// Objects not in `moved_order` keep their pages.
  static Placement RelocateToTail(const Placement& current,
                                  const ocb::ObjectBase& base,
                                  const std::vector<ocb::Oid>& moved_order,
                                  double overhead_factor = 1.0);

  /// Pages occupied by `oid`.
  PageSpan SpanOf(ocb::Oid oid) const;
  /// First page of `oid` (the page its header lives on).  Backed by the
  /// flat Oid-indexed span array — one load, no hashing.
  PageId PageOf(ocb::Oid oid) const { return SpanOf(oid).first; }

  /// Objects whose span starts on `page`, as a CSR row view.
  ocb::OidSpan ObjectsOn(PageId page) const;

  /// The flat Oid -> page-span array (indexed by Oid); `spans()[oid].first`
  /// is the page holding the object's header.
  const std::vector<PageSpan>& spans() const { return spans_; }

  uint64_t NumPages() const { return page_offsets_.size() - 1; }
  uint32_t page_size() const { return page_size_; }
  uint64_t NumObjects() const { return spans_.size(); }

  /// Total size in bytes (NumPages * page_size).
  uint64_t TotalBytes() const { return NumPages() * page_size_; }

 private:
  static Placement Pack(const ocb::ObjectBase& base, uint32_t page_size,
                        const std::vector<ocb::Oid>& order,
                        double overhead_factor);
  /// Depth-first reference order starting from each unvisited object.
  static std::vector<ocb::Oid> DepthFirstOrder(const ocb::ObjectBase& base);
  /// Class-major order: all instances of class 0, then class 1, ...
  static std::vector<ocb::Oid> ClassMajorOrder(const ocb::ObjectBase& base);

  /// Build-side: records the start of a fresh page row.  Builders call
  /// this once per page and push the final sentinel when done, restoring
  /// the `size == NumPages()+1` invariant.
  void OpenPageRow() { page_offsets_.push_back(page_objects_.size()); }

  uint32_t page_size_ = 4096;
  std::vector<PageSpan> spans_;  // indexed by Oid
  /// CSR page -> objects index: page `p` holds
  /// page_objects_[page_offsets_[p] .. page_offsets_[p+1]).  Objects are
  /// only ever appended to the *last open* page during packing, so the
  /// rows stay contiguous without a build-side scratch structure.
  std::vector<uint64_t> page_offsets_{0};  // size NumPages()+1
  std::vector<ocb::Oid> page_objects_;
};

}  // namespace voodb::storage
