/// \file prefetch.hpp
/// \brief Prefetching policies (Table 3's PREFETCH parameter).
///
/// The paper ships PREFETCH = {None | Other}; "None" is the default for
/// both validated systems.  We provide the hook plus one concrete policy
/// (sequential read-ahead) so the ablation benches can exercise it — the
/// paper's §5 lists prefetching as a planned extension.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "storage/page.hpp"

namespace voodb::storage {

/// Decides which extra pages to load when a miss occurs.
class Prefetcher {
 public:
  virtual ~Prefetcher() = default;
  /// Returns pages to load alongside `missed` (resident ones are skipped
  /// by the buffer manager).
  virtual std::vector<PageId> OnMiss(PageId missed) = 0;
  virtual const char* name() const = 0;
};

/// Sequential read-ahead of `depth` pages, bounded by `max_page`.
class SequentialPrefetcher final : public Prefetcher {
 public:
  SequentialPrefetcher(uint32_t depth, PageId max_page);
  std::vector<PageId> OnMiss(PageId missed) override;
  const char* name() const override { return "SEQUENTIAL"; }

 private:
  uint32_t depth_;
  PageId max_page_;
};

}  // namespace voodb::storage
