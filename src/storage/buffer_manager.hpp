/// \file buffer_manager.hpp
/// \brief The Buffering Manager's page cache (knowledge model, Fig. 4).
///
/// The Buffering Manager checks whether a requested page is present in the
/// memory buffer; on a miss it asks the I/O Subsystem for the page and, if
/// the buffer is full, evicts a victim chosen by the configured
/// replacement policy (writing it back when dirty).  This class is the
/// pure cache logic — timing is applied by whoever executes the returned
/// `PageIo` operations (the DES I/O subsystem actor, or the emulators'
/// simple counters).
///
/// The cache is data-oriented: resident pages live in one flat `Frame`
/// array that holds the page id, the dirty bit and the replacement-policy
/// state intrusively, found through an open-addressing `FrameTable`
/// (PageId -> frame index).  A hit is one hash probe plus one cache-line
/// update; evictions recycle frames through a free list and never
/// allocate.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "desp/random.hpp"
#include "storage/page.hpp"
#include "storage/prefetch.hpp"
#include "storage/replacement.hpp"

namespace voodb::trace {
class Recorder;
}  // namespace voodb::trace

namespace voodb::storage {

/// Counters exposed by the buffer manager.
struct BufferStats {
  uint64_t accesses = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;
  uint64_t prefetch_reads = 0;

  double HitRate() const {
    return accesses == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(accesses);
  }
};

/// A fixed-capacity page buffer with pluggable replacement and prefetch.
class BufferManager {
 public:
  /// \param capacity_pages BUFFSIZE (Table 3); must be >= 1
  /// \param policy        PGREP
  /// \param rng           stream for the RANDOM policy
  /// \param lru_k         K for the LRU-K policy
  BufferManager(uint64_t capacity_pages, ReplacementPolicy policy,
                desp::RandomStream rng = desp::RandomStream(7),
                uint32_t lru_k = 2);

  /// Installs a prefetcher (nullptr = PREFETCH None).
  void SetPrefetcher(std::unique_ptr<Prefetcher> prefetcher);

  /// Installs an access-trace recorder (not owned; nullptr detaches).
  /// Every logical access through Access/AccessInto is reported as one
  /// page record; the recorder's append path does not allocate, so the
  /// hot path stays allocation-free while recording.
  void SetRecorder(trace::Recorder* recorder) { recorder_ = recorder; }

  /// Performs one logical page access.  The outcome lists the physical
  /// operations implied: dirty write-backs, the read of `page` when it
  /// missed, and prefetch reads.
  AccessOutcome Access(PageId page, bool write);

  /// Allocation-free variant of Access: appends the implied physical
  /// operations to `ios` (not cleared) and returns whether the access
  /// hit.  With a reused caller buffer the whole access path — hit,
  /// miss, eviction, write-back — performs no heap allocation.
  bool AccessInto(PageId page, bool write, std::vector<PageIo>& ios);

  /// True when `page` is resident.
  bool Contains(PageId page) const { return index_.Find(page) != kNoFrame; }

  /// Writes back all dirty pages (returned as write IOs, in ascending
  /// page order) and keeps the pages resident but clean.
  std::vector<PageIo> FlushAll();

  /// Discards all resident pages without write-back (used when a
  /// reorganization rebuilds the page space from scratch).  Replacement
  /// history is dropped with them.
  void DropAll();

  /// Changes the capacity; evicts (with write-back IOs) when shrinking.
  std::vector<PageIo> Resize(uint64_t capacity_pages);

  uint64_t capacity() const { return capacity_; }
  uint64_t resident_pages() const { return index_.size(); }
  /// Number of resident dirty pages (O(resident)).
  uint64_t DirtyPages() const;
  const BufferStats& stats() const { return stats_; }
  ReplacementPolicy policy() const { return engine_.policy(); }

 private:
  /// Evicts one victim, appending its write-back to `ios` when dirty.
  void EvictOne(std::vector<PageIo>& ios);
  /// Admits a non-resident page, evicting as needed.
  void Admit(PageId page, bool dirty, std::vector<PageIo>& ios);

  uint64_t capacity_;
  ReplacementEngine engine_;
  std::unique_ptr<Prefetcher> prefetcher_;
  trace::Recorder* recorder_ = nullptr;
  std::vector<Frame> frames_;
  /// Free frame indices, reused LIFO (so frame numbers stay dense and
  /// the CLOCK sweep order matches the classic frame-table formulation).
  std::vector<uint32_t> free_frames_;
  FrameTable index_;
  BufferStats stats_;
};

}  // namespace voodb::storage
