/// \file resource.hpp
/// \brief Passive resources: capacity-limited servers with waiting queues.
///
/// Table 1 of the VOODB paper lists the passive resources of the model
/// (CPU/main memory, disk controller, database scheduler).  In DESP these
/// are `Resource` instances: a client requests (P) the resource, possibly
/// waits in a queue, holds one unit for some service time, and releases
/// (V) it.  The class collects the occupancy statistics the paper reports
/// (utilization, mean queue length, mean wait).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "desp/actor.hpp"
#include "desp/scheduler.hpp"
#include "desp/stats.hpp"

namespace voodb::desp {

/// Queueing discipline for a Resource's wait queue.
enum class QueueDiscipline {
  kFifo,      ///< first come, first served
  kLifo,      ///< last come, first served
  kPriority,  ///< highest request priority first (FIFO among equals)
};

/// Returns a human-readable name ("FIFO", ...).
const char* ToString(QueueDiscipline d);

/// A capacity-limited passive resource with a waiting queue.
class Resource : public Actor {
 public:
  using Grant = std::function<void()>;

  /// \param scheduler the owning scheduler (must outlive the resource)
  /// \param name      used in statistics reports
  /// \param capacity  number of units that can be held simultaneously
  Resource(Scheduler* scheduler, std::string name, uint64_t capacity = 1,
           QueueDiscipline discipline = QueueDiscipline::kFifo);

  /// Requests one unit.  `on_grant` runs (as a scheduled event at the
  /// current time) once a unit is available; requests queue per the
  /// discipline.  `priority` is only meaningful for kPriority.
  void Acquire(Grant on_grant, double priority = 0.0);

  /// As Acquire, but takes the scheduler's small-buffer callable
  /// directly — the allocation-free variant for actor hot paths (a Grant
  /// with more than two words of capture heap-allocates on creation).
  void AcquireAction(Scheduler::Action on_grant, double priority = 0.0);

  /// Releases one unit previously granted.
  void Release();

  /// Convenience: acquire, hold for `service_time`, release, then run
  /// `on_done`.  This is the common "serve one request" pattern.
  void AcquireFor(SimTime service_time, Grant on_done, double priority = 0.0);

  const std::string& name() const { return actor_name(); }
  uint64_t capacity() const { return capacity_; }
  uint64_t busy() const { return busy_; }
  size_t QueueLength() const { return queue_.size(); }

  /// Fraction of capacity held, averaged over time (0..1).
  double Utilization() const;
  /// Time-averaged number of waiting requests.
  double MeanQueueLength() const;
  /// Mean time spent waiting before a grant (per granted request).
  const Tally& WaitTimes() const { return wait_times_; }
  /// Total number of grants so far.
  uint64_t Grants() const { return grants_; }

 private:
  /// Queued continuations use the scheduler's small-buffer callable so
  /// the grant path stays allocation-free; the public Grant type remains
  /// std::function for composability in the actors.
  struct Waiter {
    Scheduler::Action on_grant;
    double priority;
    SimTime enqueued_at;
    uint64_t seq;
    /// Ambient trace context of the requester, restored around the grant
    /// so work done under the resource is attributed to the transaction
    /// that asked for it, not to whichever event happened to release it.
    uint32_t trace;
  };

  void GrantTo(Waiter waiter);
  void PopAndGrant();
  /// Holds the unit for the service time, releases, runs `on_done`.
  void Serve(SimTime service_time, Grant on_done);
  void FinishService(Grant on_done);

  uint64_t capacity_;
  QueueDiscipline discipline_;
  uint64_t busy_ = 0;
  uint64_t grants_ = 0;
  uint64_t next_seq_ = 0;
  std::deque<Waiter> queue_;
  TimeWeighted busy_stat_;
  TimeWeighted queue_stat_;
  Tally wait_times_;
};

}  // namespace voodb::desp
