/// \file histogram.hpp
/// \brief Log-scale histogram for latency-like observations.
///
/// Response times in a DES span several orders of magnitude (a buffer
/// hit vs a recovery stall), so buckets are logarithmic: a fixed number
/// per decade between `min_value` and `max_value`.  Quantiles are
/// estimated by linear interpolation inside the containing bucket —
/// adequate for reporting p50/p95/p99 of transaction response times.
#pragma once

#include <cstdint>
#include <vector>

#include "desp/stats.hpp"

namespace voodb::desp {

/// A fixed-memory log-bucketed histogram of positive values.
class LogHistogram {
 public:
  /// \param min_value    lower edge of the first bucket (> 0)
  /// \param max_value    upper edge of the last bucket
  /// \param buckets_per_decade resolution (relative error ~ 10^(1/n) - 1)
  explicit LogHistogram(double min_value = 0.01, double max_value = 1e8,
                        uint32_t buckets_per_decade = 20);

  /// Records one observation.  Values below/above the range land in
  /// dedicated underflow/overflow buckets (still counted in moments).
  void Add(double value);

  /// Estimated q-quantile (q in (0, 1)); exact moments are tracked
  /// separately.  Returns 0 when empty.
  double Quantile(double q) const;

  uint64_t count() const { return tally_.count(); }
  double mean() const { return tally_.mean(); }
  double min() const { return tally_.min(); }
  double max() const { return tally_.max(); }
  double stddev() const { return tally_.stddev(); }
  double sum() const { return tally_.sum(); }
  uint64_t underflow() const { return underflow_; }
  uint64_t overflow() const { return overflow_; }
  const Tally& tally() const { return tally_; }
  const std::vector<uint64_t>& buckets() const { return buckets_; }

  /// True when `other` uses the same bucket edges (mergeable/subtractable).
  bool SameBucketing(const LogHistogram& other) const;

  /// Merges another histogram with identical bucketing: buckets,
  /// underflow/overflow, and the exact moments (`Tally`) all combine, so
  /// merging is usable as a deterministic parallel reduction.
  void Merge(const LogHistogram& other);

  /// Observations recorded since `start` was snapshotted from this same
  /// histogram: bucket counts, underflow/overflow, count, mean, and
  /// variance are exact; min/max report run-cumulative extrema (see
  /// `Tally::DeltaSince`).
  LogHistogram DeltaSince(const LogHistogram& start) const;

 private:
  double BucketLower(size_t index) const;
  double BucketUpper(size_t index) const;

  double log_min_;
  double log_max_;
  double buckets_per_decade_;
  std::vector<uint64_t> buckets_;
  uint64_t underflow_ = 0;
  uint64_t overflow_ = 0;
  Tally tally_;
};

}  // namespace voodb::desp
