/// \file actor.hpp
/// \brief Base class for active resources (VOODB paper, Table 2).
///
/// In the paper's "resource view", active resources are classes whose
/// functioning rules are methods activated by the scheduler.  `Actor`
/// captures that contract once: it owns the actor's name and scheduler
/// binding and provides typed scheduling helpers, so concrete actors
/// (the voodb managers, `desp::Resource`, the failure injector) schedule
/// member functions directly instead of hand-rolling `this`-capturing
/// lambdas on every hot path.  The helpers produce small POD captures
/// (object pointer + member-function pointer + bound arguments) that fit
/// the scheduler's inline callback storage, keeping the schedule path
/// allocation-free.
#pragma once

#include <string>
#include <tuple>
#include <utility>

#include "desp/scheduler.hpp"

namespace voodb::desp {

/// An active resource bound to a scheduler.
class Actor {
 public:
  Actor(Scheduler* scheduler, std::string name)
      : scheduler_(scheduler), name_(std::move(name)) {
    VOODB_CHECK_MSG(scheduler_ != nullptr,
                    "actor '" << name_ << "' needs a scheduler");
    tag_ = scheduler_->RegisterProfileTag(name_);
  }

  Actor(const Actor&) = delete;
  Actor& operator=(const Actor&) = delete;

  const std::string& actor_name() const { return name_; }
  Scheduler& scheduler() const { return *scheduler_; }

  /// Current simulated time.
  SimTime Now() const { return scheduler_->Now(); }

  /// This actor's profiling tag (interned from its name at construction);
  /// events scheduled through the Actor helpers are attributed to it.
  uint16_t profile_tag() const { return tag_; }

 protected:
  ~Actor() = default;  // not intended for polymorphic ownership

  /// Schedules `action` to run `delay` time units from now.
  EventHandle After(SimTime delay, Scheduler::Action action,
                    int priority = 0) {
    TagScope scope(scheduler_, tag_);
    return scheduler_->Schedule(delay, std::move(action), priority);
  }

  /// Schedules `action` at absolute time `when`.
  EventHandle At(SimTime when, Scheduler::Action action, int priority = 0) {
    TagScope scope(scheduler_, tag_);
    return scheduler_->ScheduleAt(when, std::move(action), priority);
  }

  /// Typed helper: schedules `(self->*method)(bound...)` to run `delay`
  /// time units from now, where `self` is this actor downcast to the
  /// concrete type naming `method`.  Bound arguments are moved into the
  /// event and moved out again when it fires.
  template <typename Self, typename... Args, typename... Bound>
  EventHandle CallIn(SimTime delay, void (Self::*method)(Args...),
                     Bound&&... bound) {
    static_assert(std::is_base_of_v<Actor, Self>,
                  "CallIn schedules methods of Actor subclasses");
    TagScope scope(scheduler_, tag_);
    return scheduler_->Schedule(
        delay, BindMethod(static_cast<Self*>(this), method,
                          std::forward<Bound>(bound)...));
  }

  /// As CallIn, with an event priority.
  template <typename Self, typename... Args, typename... Bound>
  EventHandle CallInWithPriority(SimTime delay, int priority,
                                 void (Self::*method)(Args...),
                                 Bound&&... bound) {
    static_assert(std::is_base_of_v<Actor, Self>,
                  "CallIn schedules methods of Actor subclasses");
    TagScope scope(scheduler_, tag_);
    return scheduler_->Schedule(
        delay,
        BindMethod(static_cast<Self*>(this), method,
                   std::forward<Bound>(bound)...),
        priority);
  }

 private:
  template <typename Self, typename Method, typename... Bound>
  static Scheduler::Action BindMethod(Self* self, Method method,
                                      Bound&&... bound) {
    return [self, method,
            args = std::make_tuple(std::forward<Bound>(bound)...)]() mutable {
      std::apply(
          [self, method](auto&&... unpacked) {
            (self->*method)(std::move(unpacked)...);
          },
          std::move(args));
    };
  }

  Scheduler* scheduler_;
  std::string name_;
  uint16_t tag_ = 0;
};

}  // namespace voodb::desp
