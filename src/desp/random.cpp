#include "desp/random.hpp"

#include <cmath>

#include "util/check.hpp"

namespace voodb::desp {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

RandomStream::RandomStream(uint64_t seed) : seed_(seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

RandomStream RandomStream::Derive(uint64_t purpose) const {
  uint64_t sm = seed_ ^ (0xA0761D6478BD642FULL * (purpose + 1));
  return RandomStream(SplitMix64(sm));
}

uint64_t RandomStream::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double RandomStream::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double RandomStream::Uniform(double lo, double hi) {
  VOODB_DCHECK(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

int64_t RandomStream::UniformInt(int64_t lo, int64_t hi) {
  VOODB_CHECK_MSG(lo <= hi, "UniformInt: empty range [" << lo << ", " << hi
                                                        << "]");
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(NextU64());  // full 64-bit range
  // Unbiased rejection sampling (Lemire-style threshold).
  const uint64_t threshold = (0 - range) % range;
  uint64_t r;
  do {
    r = NextU64();
  } while (r < threshold);
  return lo + static_cast<int64_t>(r % range);
}

bool RandomStream::Bernoulli(double p) {
  VOODB_DCHECK(p >= 0.0 && p <= 1.0);
  return NextDouble() < p;
}

double RandomStream::Exponential(double mean) {
  VOODB_CHECK_MSG(mean > 0.0, "Exponential mean must be positive");
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double RandomStream::Normal(double mean, double stddev) {
  VOODB_CHECK_MSG(stddev >= 0.0, "Normal stddev must be non-negative");
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

int64_t RandomStream::Zipf(int64_t n, double s) {
  VOODB_CHECK_MSG(n > 0, "Zipf support must be non-empty");
  VOODB_CHECK_MSG(s >= 0.0, "Zipf skew must be non-negative");
  if (s == 0.0) return UniformInt(0, n - 1);
  // Rejection-inversion sampling (Hörmann & Derflinger 1996), as used by
  // Apache Commons RejectionInversionZipfSampler.  Ranks are 1-based
  // internally; we return 0-based ranks.
  const double nd = static_cast<double>(n);
  auto h_integral = [s](double x) {
    if (s == 1.0) return std::log(x);
    return (std::pow(x, 1.0 - s) - 1.0) / (1.0 - s);
  };
  auto h = [s](double x) { return std::pow(x, -s); };
  auto h_integral_inverse = [s](double y) {
    if (s == 1.0) return std::exp(y);
    return std::pow(1.0 + y * (1.0 - s), 1.0 / (1.0 - s));
  };
  const double h_integral_x1 = h_integral(1.5) - 1.0;
  const double h_integral_n = h_integral(nd + 0.5);
  const double threshold =
      1.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
  while (true) {
    const double u =
        h_integral_n + NextDouble() * (h_integral_x1 - h_integral_n);
    const double x = h_integral_inverse(u);
    double k = std::floor(x + 0.5);
    if (k < 1.0) k = 1.0;
    if (k > nd) k = nd;
    if (k - x <= threshold || u >= h_integral(k + 0.5) - h(k)) {
      return static_cast<int64_t>(k) - 1;
    }
  }
}

size_t RandomStream::Discrete(const std::vector<double>& weights) {
  VOODB_CHECK_MSG(!weights.empty(), "Discrete needs at least one weight");
  double total = 0.0;
  for (double w : weights) {
    VOODB_CHECK_MSG(w >= 0.0, "Discrete weights must be non-negative");
    total += w;
  }
  VOODB_CHECK_MSG(total > 0.0, "Discrete weights must not all be zero");
  double u = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u < 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace voodb::desp
