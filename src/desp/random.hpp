/// \file random.hpp
/// \brief Random-number streams and distributions for DESP.
///
/// DESP-C++ (the simulation kernel the VOODB paper built after abandoning
/// QNAP2) bundles its own random-number machinery so that experiments are
/// reproducible across compilers and standard libraries.  We follow suit:
/// the generator is xoshiro256**, seeded through SplitMix64, and all
/// distribution sampling is implemented here rather than delegated to
/// <random> (whose distributions are not bit-stable across platforms).
///
/// Streams are cheap value types.  A simulation typically derives one
/// stream per stochastic purpose (workload choice, object selection, ...)
/// from a single replication seed via `RandomStream::Derive`, which keeps
/// the purposes statistically independent and individually reproducible.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace voodb::desp {

/// SplitMix64 step; used for seeding and stream derivation.
uint64_t SplitMix64(uint64_t& state);

/// A deterministic pseudo-random stream (xoshiro256**).
class RandomStream {
 public:
  /// Seeds the stream; two streams with the same seed are identical.
  explicit RandomStream(uint64_t seed = 0xD1B54A32D192ED03ULL);

  /// Derives an independent child stream; `purpose` distinguishes children
  /// derived from the same parent seed.
  RandomStream Derive(uint64_t purpose) const;

  /// Next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in the inclusive range [lo, hi] (unbiased).
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Bernoulli trial with success probability `p`.
  bool Bernoulli(double p);

  /// Exponential variate with the given mean (mean = 1 / rate).
  double Exponential(double mean);

  /// Normal variate (Box–Muller with caching).
  double Normal(double mean, double stddev);

  /// Zipf variate on {0, ..., n-1} with skew `s` >= 0 (s == 0 => uniform).
  /// Rank 0 is the most probable element.  Rejection-inversion sampling.
  int64_t Zipf(int64_t n, double s);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  size_t Discrete(const std::vector<double>& weights);

  /// Fisher–Yates shuffle of `values`.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (size_t i = values.size(); i > 1; --i) {
      const size_t j =
          static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(values[i - 1], values[j]);
    }
  }

  uint64_t seed() const { return seed_; }

 private:
  uint64_t seed_;
  std::array<uint64_t, 4> state_;
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace voodb::desp
