#include "desp/event_queue.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace voodb::desp {

const char* ToString(EventQueueKind kind) {
  switch (kind) {
    case EventQueueKind::kBinaryHeap:
      return "binary";
    case EventQueueKind::kQuaternaryHeap:
      return "quaternary";
    case EventQueueKind::kCalendar:
      return "calendar";
  }
  return "?";
}

EventQueueKind ParseEventQueueKind(const std::string& name) {
  if (name == "binary_heap" || name == "binary" || name == "heap" ||
      name == "0") {
    return EventQueueKind::kBinaryHeap;
  }
  if (name == "quaternary_heap" || name == "quaternary" || name == "4ary" ||
      name == "1") {
    return EventQueueKind::kQuaternaryHeap;
  }
  if (name == "calendar_queue" || name == "calendar" || name == "bucket" ||
      name == "2") {
    return EventQueueKind::kCalendar;
  }
  VOODB_CHECK_MSG(false,
                  "unknown event queue '"
                      << name
                      << "'; valid choices: binary_heap | quaternary_heap | "
                         "calendar_queue (short: binary | quaternary | "
                         "calendar; numeric: 0 | 1 | 2)");
  return EventQueueKind::kBinaryHeap;
}

namespace {

/// An implicit D-ary heap of QueuedEvents.  D=2 is the reference binary
/// heap; D=4 trades one extra comparison per level for half the depth,
/// which wins once the heap outgrows L1.
template <unsigned D>
class DaryHeapQueue final : public EventQueue {
  static_assert(D >= 2, "heap arity must be >= 2");

 public:
  const char* name() const override {
    return D == 2 ? "binary" : "quaternary";
  }

  void Push(const QueuedEvent& event) override {
    heap_.push_back(event);
    SiftUp(heap_.size() - 1);
  }

  QueuedEvent PopMin() override {
    QueuedEvent min = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) SiftDown(0);
    return min;
  }

  QueuedEvent Min() const override { return heap_.front(); }

  size_t Size() const override { return heap_.size(); }

  void Clear() override { heap_.clear(); }

  void Reserve(size_t events) override { heap_.reserve(events); }

 private:
  void SiftUp(size_t i) {
    QueuedEvent moving = heap_[i];
    while (i > 0) {
      const size_t parent = (i - 1) / D;
      if (!FiresBefore(moving.key, heap_[parent].key)) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = moving;
  }

  void SiftDown(size_t i) {
    QueuedEvent moving = heap_[i];
    const size_t n = heap_.size();
    for (;;) {
      const size_t first_child = i * D + 1;
      if (first_child >= n) break;
      const size_t last_child = std::min(first_child + D, n);
      size_t best = first_child;
      for (size_t c = first_child + 1; c < last_child; ++c) {
        if (FiresBefore(heap_[c].key, heap_[best].key)) best = c;
      }
      if (!FiresBefore(heap_[best].key, moving.key)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = moving;
  }

  std::vector<QueuedEvent> heap_;
};

/// Brown's calendar queue: an array of day buckets covering one "year"
/// of simulated time.  Push hashes an event to the bucket of its day
/// (= floor(time / width)); PopMin sweeps the calendar one day at a time
/// and only takes events whose day has arrived.  Amortized O(1) per
/// operation when the bucket count and day width track the population,
/// which Resize maintains.
///
/// Determinism: the sweep compares integer *day indices*, never
/// accumulated time thresholds, so bucket assignment and the due test
/// are computed from the same rounded quotient and can never disagree at
/// a bucket boundary.  The day index is a monotone function of time,
/// events with equal times share a bucket, and buckets are kept sorted
/// by the full key — so the (time, priority, seq) total order is
/// preserved exactly.
class CalendarQueue final : public EventQueue {
 public:
  CalendarQueue() { Reset(kMinBuckets, 1.0, 0.0); }

  const char* name() const override { return "calendar"; }

  void Push(const QueuedEvent& event) override {
    const double day = DayOf(event.key.time);
    Bucket& bucket = buckets_[IndexOf(day)];
    bucket.insert(std::upper_bound(bucket.begin(), bucket.end(), event,
                                   [](const QueuedEvent& a,
                                      const QueuedEvent& b) {
                                     return FiresBefore(a.key, b.key);
                                   }),
                  event);
    ++size_;
    // Earlier than the sweep's current day (possible right after a pop
    // advanced past an emptied day): rewind so the sweep cannot miss it.
    if (day < day_) RewindTo(day);
    if (size_ > 2 * buckets_.size()) Resize(2 * buckets_.size());
  }

  QueuedEvent PopMin() override {
    // Sweep at most one full year from the current day; a day only
    // yields events that are due (their day has arrived).
    for (size_t steps = 0; steps < buckets_.size(); ++steps) {
      Bucket& bucket = buckets_[cur_bucket_];
      if (!bucket.empty() && DayOf(bucket.front().key.time) <= day_) {
        return TakeFront(bucket);
      }
      cur_bucket_ = (cur_bucket_ + 1) % buckets_.size();
      day_ += 1.0;
    }
    // A year went by with nothing due (sparse far-future events): find
    // the global minimum directly and jump the calendar to its day.
    RewindTo(DayOf(FindMin()->key.time));
    return TakeFront(buckets_[cur_bucket_]);
  }

  QueuedEvent Min() const override {
    // Non-mutating replica of PopMin's sweep.
    size_t b = cur_bucket_;
    double day = day_;
    for (size_t steps = 0; steps < buckets_.size(); ++steps) {
      const Bucket& bucket = buckets_[b];
      if (!bucket.empty() && DayOf(bucket.front().key.time) <= day) {
        return bucket.front();
      }
      b = (b + 1) % buckets_.size();
      day += 1.0;
    }
    return *FindMin();
  }

  size_t Size() const override { return size_; }

  void Clear() override { Reset(kMinBuckets, 1.0, 0.0); }

 private:
  using Bucket = std::vector<QueuedEvent>;
  static constexpr size_t kMinBuckets = 4;

  double DayOf(SimTime time) const { return std::floor(time / width_); }

  size_t IndexOf(double day) const {
    return static_cast<size_t>(
        std::fmod(day, static_cast<double>(buckets_.size())));
  }

  /// The earliest event across all buckets (by full key).  Precondition:
  /// !Empty().
  const QueuedEvent* FindMin() const {
    const QueuedEvent* min = nullptr;
    for (const Bucket& bucket : buckets_) {
      if (!bucket.empty() &&
          (min == nullptr || FiresBefore(bucket.front().key, min->key))) {
        min = &bucket.front();
      }
    }
    return min;
  }

  QueuedEvent TakeFront(Bucket& bucket) {
    QueuedEvent event = bucket.front();
    bucket.erase(bucket.begin());
    --size_;
    if (buckets_.size() > kMinBuckets && size_ < buckets_.size() / 2) {
      Resize(buckets_.size() / 2);
    }
    return event;
  }

  /// Points the sweep at `day`.
  void RewindTo(double day) {
    day_ = day;
    cur_bucket_ = IndexOf(day);
  }

  void Reset(size_t num_buckets, double width, double start_day) {
    buckets_.assign(num_buckets, {});
    width_ = width;
    size_ = 0;
    RewindTo(start_day);
  }

  void Resize(size_t num_buckets) {
    std::vector<QueuedEvent> events;
    events.reserve(size_);
    for (Bucket& bucket : buckets_) {
      events.insert(events.end(), bucket.begin(), bucket.end());
      bucket.clear();
    }
    if (events.empty()) {  // popping the last event can shrink an empty queue
      Reset(num_buckets, width_, day_);
      return;
    }
    // Width such that a day holds a handful of events: the occupied time
    // span spread over the population, tripled (Brown's rule of thumb).
    SimTime lo = events.front().key.time;
    SimTime hi = lo;
    for (const QueuedEvent& event : events) {
      lo = std::min(lo, event.key.time);
      hi = std::max(hi, event.key.time);
    }
    double width = events.size() > 1
                       ? 3.0 * (hi - lo) / static_cast<double>(events.size())
                       : 1.0;
    if (!(width > 0.0)) width = 1.0;
    Reset(num_buckets, width, std::floor(lo / width));
    // Re-pushing cannot re-trigger Resize: a grow doubles the bucket
    // count past size/2 and a shrink halves it to above size.
    for (const QueuedEvent& event : events) Push(event);
  }

  std::vector<Bucket> buckets_;
  double width_ = 1.0;
  size_t size_ = 0;
  size_t cur_bucket_ = 0;  ///< bucket of the sweep's current day
  double day_ = 0.0;       ///< the sweep's current day index (integral)
};

}  // namespace

std::unique_ptr<EventQueue> MakeEventQueue(EventQueueKind kind) {
  switch (kind) {
    case EventQueueKind::kBinaryHeap:
      return std::make_unique<DaryHeapQueue<2>>();
    case EventQueueKind::kQuaternaryHeap:
      return std::make_unique<DaryHeapQueue<4>>();
    case EventQueueKind::kCalendar:
      return std::make_unique<CalendarQueue>();
  }
  VOODB_CHECK_MSG(false, "unknown EventQueueKind");
  return nullptr;
}

}  // namespace voodb::desp
