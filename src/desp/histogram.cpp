#include "desp/histogram.hpp"

#include <cmath>

#include "util/check.hpp"

namespace voodb::desp {

LogHistogram::LogHistogram(double min_value, double max_value,
                           uint32_t buckets_per_decade)
    : log_min_(std::log10(min_value)),
      log_max_(std::log10(max_value)),
      buckets_per_decade_(static_cast<double>(buckets_per_decade)) {
  VOODB_CHECK_MSG(min_value > 0.0, "min_value must be positive");
  VOODB_CHECK_MSG(max_value > min_value, "max_value must exceed min_value");
  VOODB_CHECK_MSG(buckets_per_decade >= 1, "need >= 1 bucket per decade");
  const double decades = log_max_ - log_min_;
  buckets_.assign(
      static_cast<size_t>(std::ceil(decades * buckets_per_decade_)) + 1, 0);
}

void LogHistogram::Add(double value) {
  tally_.Add(value);
  if (value <= 0.0 || std::log10(value) < log_min_) {
    ++underflow_;
    return;
  }
  const double offset = (std::log10(value) - log_min_) * buckets_per_decade_;
  if (offset >= static_cast<double>(buckets_.size())) {
    ++overflow_;
    return;
  }
  ++buckets_[static_cast<size_t>(offset)];
}

double LogHistogram::BucketLower(size_t index) const {
  return std::pow(10.0, log_min_ + static_cast<double>(index) /
                                       buckets_per_decade_);
}

double LogHistogram::BucketUpper(size_t index) const {
  return BucketLower(index + 1);
}

double LogHistogram::Quantile(double q) const {
  VOODB_CHECK_MSG(q > 0.0 && q < 1.0, "quantile must lie in (0, 1)");
  if (tally_.count() == 0) return 0.0;
  const double target = q * static_cast<double>(tally_.count());
  double cumulative = static_cast<double>(underflow_);
  if (cumulative >= target) return tally_.min();
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const double next = cumulative + static_cast<double>(buckets_[i]);
    if (next >= target && buckets_[i] > 0) {
      // Linear interpolation inside the bucket.
      const double fraction =
          (target - cumulative) / static_cast<double>(buckets_[i]);
      const double lo = BucketLower(i);
      const double hi = BucketUpper(i);
      return lo + fraction * (hi - lo);
    }
    cumulative = next;
  }
  return tally_.max();  // overflow region
}

void LogHistogram::Merge(const LogHistogram& other) {
  VOODB_CHECK_MSG(buckets_.size() == other.buckets_.size() &&
                      log_min_ == other.log_min_ &&
                      buckets_per_decade_ == other.buckets_per_decade_,
                  "histograms must share bucketing to merge");
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  tally_.Merge(other.tally_);
}

}  // namespace voodb::desp
