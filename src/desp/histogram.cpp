#include "desp/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace voodb::desp {

LogHistogram::LogHistogram(double min_value, double max_value,
                           uint32_t buckets_per_decade)
    : log_min_(std::log10(min_value)),
      log_max_(std::log10(max_value)),
      buckets_per_decade_(static_cast<double>(buckets_per_decade)) {
  VOODB_CHECK_MSG(min_value > 0.0, "min_value must be positive");
  VOODB_CHECK_MSG(max_value > min_value, "max_value must exceed min_value");
  VOODB_CHECK_MSG(buckets_per_decade >= 1, "need >= 1 bucket per decade");
  const double decades = log_max_ - log_min_;
  buckets_.assign(
      static_cast<size_t>(std::ceil(decades * buckets_per_decade_)) + 1, 0);
}

void LogHistogram::Add(double value) {
  tally_.Add(value);
  if (value <= 0.0 || std::log10(value) < log_min_) {
    ++underflow_;
    return;
  }
  const double offset = (std::log10(value) - log_min_) * buckets_per_decade_;
  if (offset >= static_cast<double>(buckets_.size())) {
    ++overflow_;
    return;
  }
  ++buckets_[static_cast<size_t>(offset)];
}

double LogHistogram::BucketLower(size_t index) const {
  return std::pow(10.0, log_min_ + static_cast<double>(index) /
                                       buckets_per_decade_);
}

double LogHistogram::BucketUpper(size_t index) const {
  return BucketLower(index + 1);
}

double LogHistogram::Quantile(double q) const {
  VOODB_CHECK_MSG(q > 0.0 && q < 1.0, "quantile must lie in (0, 1)");
  if (tally_.count() == 0) return 0.0;
  const double target = q * static_cast<double>(tally_.count());
  double cumulative = static_cast<double>(underflow_);
  if (cumulative >= target) return tally_.min();
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const double next = cumulative + static_cast<double>(buckets_[i]);
    if (next >= target && buckets_[i] > 0) {
      // Linear interpolation inside the bucket, clamped to the exact
      // tracked extrema (interpolation alone can overshoot them inside
      // the first/last occupied bucket, reporting e.g. p999 > max).
      const double fraction =
          (target - cumulative) / static_cast<double>(buckets_[i]);
      const double lo = BucketLower(i);
      const double hi = BucketUpper(i);
      return std::min(std::max(lo + fraction * (hi - lo), tally_.min()),
                      tally_.max());
    }
    cumulative = next;
  }
  return tally_.max();  // overflow region
}

bool LogHistogram::SameBucketing(const LogHistogram& other) const {
  return buckets_.size() == other.buckets_.size() &&
         log_min_ == other.log_min_ && log_max_ == other.log_max_ &&
         buckets_per_decade_ == other.buckets_per_decade_;
}

void LogHistogram::Merge(const LogHistogram& other) {
  VOODB_CHECK_MSG(
      SameBucketing(other),
      "cannot merge histograms with different bucketing: this has "
          << buckets_.size() << " buckets over [10^" << log_min_ << ", 10^"
          << log_max_ << "] at " << buckets_per_decade_
          << "/decade, other has " << other.buckets_.size()
          << " buckets over [10^" << other.log_min_ << ", 10^"
          << other.log_max_ << "] at " << other.buckets_per_decade_
          << "/decade");
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  tally_.Merge(other.tally_);
}

LogHistogram LogHistogram::DeltaSince(const LogHistogram& start) const {
  VOODB_CHECK_MSG(SameBucketing(start),
                  "DeltaSince needs a snapshot of this same histogram");
  LogHistogram delta = *this;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    VOODB_CHECK_MSG(buckets_[i] >= start.buckets_[i],
                    "DeltaSince start must be an earlier snapshot");
    delta.buckets_[i] = buckets_[i] - start.buckets_[i];
  }
  VOODB_CHECK_MSG(
      underflow_ >= start.underflow_ && overflow_ >= start.overflow_,
      "DeltaSince start must be an earlier snapshot");
  delta.underflow_ = underflow_ - start.underflow_;
  delta.overflow_ = overflow_ - start.overflow_;
  delta.tally_ = tally_.DeltaSince(start.tally_);
  return delta;
}

}  // namespace voodb::desp
