/// \file small_function.hpp
/// \brief A move-only callable with small-buffer optimization.
///
/// The scheduler fires millions of events per experiment; wrapping every
/// event action in a `std::function` (16-byte inline buffer in libstdc++)
/// forced a heap allocation for any capture beyond two words.  Actor
/// continuations routinely capture `this`, a `shared_ptr` state block and
/// a nested continuation, so nearly every event allocated.  SmallFunction
/// stores callables up to `kInlineBytes` in place — sized so the actors'
/// hot-path lambdas all fit — and falls back to the heap only for outsized
/// captures.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace voodb::desp {

/// Move-only `void()` callable with a large inline buffer.
class SmallFunction {
 public:
  /// Inline capture budget: a typed Actor::CallIn binding — object
  /// pointer + member-function pointer + a bound tuple of (shared_ptr
  /// state, index, std::function continuation) = 8 + 16 + (16 + 8 + 32).
  static constexpr size_t kInlineBytes = 88;

  SmallFunction() = default;
  SmallFunction(std::nullptr_t) {}  // NOLINT(runtime/explicit)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFunction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFunction(F&& f) {  // NOLINT(runtime/explicit)
    using Fn = std::decay_t<F>;
    // An empty wrapped callable (default-constructed std::function, null
    // function pointer) becomes an empty SmallFunction, so callers'
    // static_cast<bool> checks keep rejecting it at schedule time instead
    // of throwing bad_function_call when the event fires.
    if constexpr (std::is_constructible_v<bool, Fn&>) {
      if (!f) return;
    }
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buffer_)) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::ops;
    } else {
      *reinterpret_cast<Fn**>(buffer_) = new Fn(std::forward<F>(f));
      ops_ = &HeapOps<Fn>::ops;
    }
  }

  SmallFunction(SmallFunction&& other) noexcept { MoveFrom(other); }

  SmallFunction& operator=(SmallFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  SmallFunction(const SmallFunction&) = delete;
  SmallFunction& operator=(const SmallFunction&) = delete;

  ~SmallFunction() { Reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(buffer_); }

  /// Destroys the stored callable (releasing captured resources eagerly).
  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buffer_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-constructs dst from src and destroys src.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename Fn>
  struct InlineOps {
    static void Invoke(void* p) { (*static_cast<Fn*>(p))(); }
    static void Relocate(void* dst, void* src) {
      Fn* from = static_cast<Fn*>(src);
      ::new (dst) Fn(std::move(*from));
      from->~Fn();
    }
    static void Destroy(void* p) { static_cast<Fn*>(p)->~Fn(); }
    static constexpr Ops ops = {&Invoke, &Relocate, &Destroy};
  };

  template <typename Fn>
  struct HeapOps {
    static void Invoke(void* p) { (**static_cast<Fn**>(p))(); }
    static void Relocate(void* dst, void* src) {
      *static_cast<Fn**>(dst) = *static_cast<Fn**>(src);
    }
    static void Destroy(void* p) { delete *static_cast<Fn**>(p); }
    static constexpr Ops ops = {&Invoke, &Relocate, &Destroy};
  };

  void MoveFrom(SmallFunction& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buffer_, other.buffer_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buffer_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace voodb::desp
