/// \file stats.hpp
/// \brief Observation and time-weighted statistics collectors.
///
/// DESP-C++ computes confidence intervals "by default" (VOODB paper,
/// §4.2.2); these collectors are the building blocks.  `Tally` accumulates
/// independent observations (Welford's algorithm), `TimeWeighted`
/// integrates a piecewise-constant signal over simulated time (queue
/// lengths, busy servers), and `StudentConfidenceInterval` implements the
/// paper's h = t(n-1, 1-alpha/2) * sigma / sqrt(n) recipe.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace voodb::desp {

/// Accumulates independent observations; O(1) memory.
class Tally {
 public:
  /// Adds one observation.
  void Add(double value);

  /// Merges another tally into this one (parallel-combinable Welford).
  void Merge(const Tally& other);

  /// Observations recorded since `start` was snapshotted from this same
  /// tally (inverse of Merge on Chan's combining formula): count, sum, and
  /// variance are exact up to floating-point noise.  Phase extrema are not
  /// recoverable from moments, so min/max report the run-cumulative values.
  Tally DeltaSince(const Tally& start) const;

  uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Sample variance (n-1 denominator); 0 when fewer than two observations.
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return count_ == 0 ? 0.0 : mean_ * static_cast<double>(count_); }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Integrates a piecewise-constant signal over time.
///
/// Call `Update(now, v)` whenever the signal changes to value `v`; the
/// interval since the previous update is weighted by the previous value.
class TimeWeighted {
 public:
  explicit TimeWeighted(double start_time = 0.0, double start_value = 0.0);

  /// Records that the signal takes value `value` from time `now` on.
  void Update(double now, double value);

  /// Time-average of the signal over [start, now].
  double TimeAverage(double now) const;

  double current() const { return value_; }
  double max() const { return max_; }

 private:
  double start_time_;
  double last_time_;
  double value_;
  double integral_ = 0.0;
  double max_;
};

/// A two-sided confidence interval: mean ± half_width at `level`.
struct ConfidenceInterval {
  double mean = 0.0;
  double half_width = 0.0;
  double level = 0.95;

  double lower() const { return mean - half_width; }
  double upper() const { return mean + half_width; }
  /// True when `value` lies inside the interval.
  bool Contains(double value) const {
    return value >= lower() && value <= upper();
  }
};

/// Student-t confidence interval for the mean of `tally` (paper §4.2.2).
/// Requires at least one observation; a single observation yields an
/// interval with infinite half-width (zero degrees of freedom).
ConfidenceInterval StudentConfidenceInterval(const Tally& tally,
                                             double level = 0.95);

/// The paper's pilot-study rule: given a pilot of `pilot_n` replications
/// with half-width `pilot_half_width`, returns the number of *additional*
/// replications n* = n.(h/h*)^2 - n needed to reach `target_half_width`
/// (rounded up, never negative, clamped so huge h/h* ratios cannot
/// overflow; half-widths within relative 1e-12 of the target count as
/// already precise).
uint64_t AdditionalReplications(uint64_t pilot_n, double pilot_half_width,
                                double target_half_width);

}  // namespace voodb::desp
