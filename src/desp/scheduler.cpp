#include "desp/scheduler.hpp"

#include <utility>

namespace voodb::desp {

bool EventHandle::pending() const {
  return scheduler_ != nullptr && scheduler_->IsPending(slot_, generation_);
}

Scheduler::Scheduler(EventQueueKind kind) : queue_(MakeEventQueue(kind)) {}

Scheduler::Scheduler(std::unique_ptr<EventQueue> queue)
    : queue_(std::move(queue)) {
  VOODB_CHECK_MSG(queue_ != nullptr, "scheduler needs an event queue");
}

EventHandle Scheduler::Schedule(SimTime delay, Action action, int priority) {
  VOODB_CHECK_MSG(delay >= 0.0, "cannot schedule into the past (delay="
                                    << delay << ")");
  return ScheduleAt(now_ + delay, std::move(action), priority);
}

EventHandle Scheduler::ScheduleAt(SimTime when, Action action, int priority) {
  VOODB_CHECK_MSG(when >= now_, "cannot schedule into the past (when="
                                    << when << ", now=" << now_ << ")");
  VOODB_CHECK_MSG(static_cast<bool>(action), "event action must be callable");
  const uint32_t slot = AllocSlot();
  EventRecord& record = arena_[slot];
  record.key = EventKey{when, priority, next_seq_++};
  record.action = std::move(action);
  record.cancelled = false;
  record.in_queue = true;
  record.tag = current_tag_;
  queue_->Push(QueuedEvent{record.key, slot});
  ++pending_;
  EventHandle handle;
  handle.scheduler_ = this;
  handle.slot_ = slot;
  handle.generation_ = record.generation;
  return handle;
}

uint16_t Scheduler::RegisterProfileTag(const std::string& name) {
  for (size_t i = 0; i < tag_names_.size(); ++i) {
    if (tag_names_[i] == name) return static_cast<uint16_t>(i);
  }
  VOODB_CHECK_MSG(tag_names_.size() < UINT16_MAX, "profile tag space exhausted");
  tag_names_.push_back(name);
  return static_cast<uint16_t>(tag_names_.size() - 1);
}

bool Scheduler::IsPending(uint32_t slot, uint32_t generation) const {
  if (slot >= arena_.size()) return false;
  const EventRecord& record = arena_[slot];
  return record.in_queue && record.generation == generation &&
         !record.cancelled;
}

bool Scheduler::Cancel(EventHandle& handle) {
  if (handle.scheduler_ != this || !IsPending(handle.slot_,
                                              handle.generation_)) {
    return false;  // empty, fired, cancelled or moved-from: safe no-op
  }
  EventRecord& record = arena_[handle.slot_];
  record.cancelled = true;
  record.action.Reset();  // release captured resources eagerly
  --pending_;
  ++cancelled_in_queue_;
  // Lazily-deleted entries are only skimmed when they reach the front of
  // the queue; without a bound, cancel-heavy workloads (re-armed
  // timeouts) bloat the event list forever.  Rebuild it once the dead
  // entries outnumber the live ones.
  if (cancelled_in_queue_ * 2 > queue_->Size()) Compact();
  return true;
}

uint32_t Scheduler::AllocSlot() {
  if (free_head_ != kNoSlot) {
    const uint32_t slot = free_head_;
    free_head_ = arena_[slot].next_free;
    return slot;
  }
  VOODB_CHECK_MSG(arena_.size() < kNoSlot, "event arena exhausted");
  arena_.emplace_back();
  return static_cast<uint32_t>(arena_.size() - 1);
}

void Scheduler::FreeSlot(uint32_t slot) {
  EventRecord& record = arena_[slot];
  record.action.Reset();
  record.in_queue = false;
  ++record.generation;  // invalidates every outstanding handle
  record.next_free = free_head_;
  free_head_ = slot;
}

void Scheduler::Compact() {
  std::vector<QueuedEvent> live;
  live.reserve(pending_);
  while (!queue_->Empty()) {
    const QueuedEvent event = queue_->PopMin();
    if (arena_[event.slot].cancelled) {
      FreeSlot(event.slot);
    } else {
      live.push_back(event);
    }
  }
  cancelled_in_queue_ = 0;
  for (const QueuedEvent& event : live) queue_->Push(event);
}

void Scheduler::SkimCancelled() {
  while (!queue_->Empty()) {
    const QueuedEvent min = queue_->Min();
    if (!arena_[min.slot].cancelled) return;
    queue_->PopMin();
    FreeSlot(min.slot);
    --cancelled_in_queue_;
  }
}

bool Scheduler::Step() {
  for (;;) {
    if (queue_->Empty()) return false;
    const QueuedEvent event = queue_->PopMin();
    EventRecord& record = arena_[event.slot];
    if (record.cancelled) {
      FreeSlot(event.slot);
      --cancelled_in_queue_;
      continue;
    }
    --pending_;
    const SimTime advance = event.key.time - now_;
    now_ = event.key.time;
    const uint16_t tag = record.tag;
    current_tag_ = tag;  // events scheduled by the action inherit it
    Action action = std::move(record.action);
    FreeSlot(event.slot);  // the action may recycle the slot immediately
    if (trace_ != nullptr) trace_(trace_ctx_, event.key);
    if (profile_ != nullptr) profile_(profile_ctx_, tag, now_, advance);
    ++executed_;
    action();
    return true;
  }
}

void Scheduler::Run() {
  stopped_ = false;
  while (!stopped_ && Step()) {
  }
}

uint64_t Scheduler::RunWindow(SimTime end) {
  stopped_ = false;
  uint64_t executed = 0;
  while (!stopped_) {
    SkimCancelled();
    if (queue_->Empty() || queue_->Min().key.time >= end) break;
    Step();
    ++executed;
  }
  return executed;
}

bool Scheduler::HasNextEvent() {
  SkimCancelled();
  return !queue_->Empty();
}

SimTime Scheduler::NextEventTime() {
  SkimCancelled();
  VOODB_CHECK_MSG(!queue_->Empty(), "NextEventTime() on an empty event list");
  return queue_->Min().key.time;
}

void Scheduler::RunUntil(SimTime deadline) {
  stopped_ = false;
  while (!stopped_) {
    SkimCancelled();
    if (queue_->Empty()) return;
    if (queue_->Min().key.time > deadline) {
      now_ = deadline;
      return;
    }
    Step();
  }
}

}  // namespace voodb::desp
