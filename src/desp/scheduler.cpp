#include "desp/scheduler.hpp"

#include <utility>

namespace voodb::desp {

bool EventHandle::pending() const {
  return state_ != nullptr && !state_->cancelled && !state_->fired;
}

bool Scheduler::Compare::operator()(const QueueEntry& a,
                                    const QueueEntry& b) const {
  // std::priority_queue is a max-heap; we want the *smallest* time first,
  // then the highest priority, then the lowest sequence number.
  if (a.state->time != b.state->time) return a.state->time > b.state->time;
  if (a.state->priority != b.state->priority) {
    return a.state->priority < b.state->priority;
  }
  return a.state->seq > b.state->seq;
}

EventHandle Scheduler::Schedule(SimTime delay, Action action, int priority) {
  VOODB_CHECK_MSG(delay >= 0.0, "cannot schedule into the past (delay="
                                    << delay << ")");
  return ScheduleAt(now_ + delay, std::move(action), priority);
}

EventHandle Scheduler::ScheduleAt(SimTime when, Action action, int priority) {
  VOODB_CHECK_MSG(when >= now_, "cannot schedule into the past (when="
                                    << when << ", now=" << now_ << ")");
  VOODB_CHECK_MSG(static_cast<bool>(action), "event action must be callable");
  auto state = std::make_shared<EventHandle::State>();
  state->time = when;
  state->priority = priority;
  state->seq = next_seq_++;
  state->action = std::move(action);
  queue_.push(QueueEntry{state});
  ++pending_;
  EventHandle handle;
  handle.state_ = std::move(state);
  return handle;
}

bool Scheduler::Cancel(EventHandle& handle) {
  if (!handle.pending()) return false;
  handle.state_->cancelled = true;
  handle.state_->action = nullptr;  // release captured resources eagerly
  --pending_;
  return true;
}

bool Scheduler::Step() {
  while (!queue_.empty()) {
    QueueEntry entry = queue_.top();
    queue_.pop();
    if (entry.state->cancelled) continue;
    --pending_;
    now_ = entry.state->time;
    entry.state->fired = true;
    Action action = std::move(entry.state->action);
    entry.state->action = nullptr;
    ++executed_;
    action();
    return true;
  }
  return false;
}

void Scheduler::Run() {
  stopped_ = false;
  while (!stopped_ && Step()) {
  }
}

void Scheduler::RunUntil(SimTime deadline) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty()) {
    // Peek past cancelled entries.
    while (!queue_.empty() && queue_.top().state->cancelled) {
      queue_.pop();
    }
    if (queue_.empty()) break;
    if (queue_.top().state->time > deadline) {
      now_ = deadline;
      return;
    }
    Step();
  }
}

}  // namespace voodb::desp
