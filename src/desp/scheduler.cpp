#include "desp/scheduler.hpp"

#include <utility>

namespace voodb::desp {

bool EventHandle::pending() const {
  return scheduler_ != nullptr && scheduler_->IsPending(slot_, generation_);
}

Scheduler::Scheduler(EventQueueKind kind) : queue_(MakeEventQueue(kind)) {}

Scheduler::Scheduler(std::unique_ptr<EventQueue> queue)
    : queue_(std::move(queue)) {
  VOODB_CHECK_MSG(queue_ != nullptr, "scheduler needs an event queue");
}

EventHandle Scheduler::Schedule(SimTime delay, Action action, int priority) {
  VOODB_CHECK_MSG(delay >= 0.0, "cannot schedule into the past (delay="
                                    << delay << ")");
  return ScheduleAt(now_ + delay, std::move(action), priority);
}

EventHandle Scheduler::ScheduleAt(SimTime when, Action action, int priority) {
  VOODB_CHECK_MSG(when >= now_, "cannot schedule into the past (when="
                                    << when << ", now=" << now_ << ")");
  VOODB_CHECK_MSG(static_cast<bool>(action), "event action must be callable");
  const uint32_t slot = AllocSlot();
  EventRecord& record = arena_[slot];
  record.key = EventKey{when, priority, next_seq_++};
  record.action = std::move(action);
  record.cancelled = false;
  record.in_queue = true;
  record.tag = current_tag_;
  record.trace = current_trace_;
  if (lane_enabled_ && when == now_) {
    // Zero-delay fast lane: all lane entries share time == now_, so a
    // per-priority FIFO ring preserves the (time, priority, seq) order
    // without touching the O(log n) queue.  The lane drains before the
    // clock can advance (see PopNext), so the time never goes stale.
    record.in_lane = true;
    LanePush(priority, slot);
    ++stats_.lane_pushes;
  } else {
    record.in_lane = false;
    queue_->Push(QueuedEvent{record.key, slot});
    ++stats_.heap_pushes;
  }
  ++pending_;
  EventHandle handle;
  handle.scheduler_ = this;
  handle.slot_ = slot;
  handle.generation_ = record.generation;
  return handle;
}

uint16_t Scheduler::RegisterProfileTag(const std::string& name) {
  for (size_t i = 0; i < tag_names_.size(); ++i) {
    if (tag_names_[i] == name) return static_cast<uint16_t>(i);
  }
  VOODB_CHECK_MSG(tag_names_.size() < UINT16_MAX, "profile tag space exhausted");
  tag_names_.push_back(name);
  return static_cast<uint16_t>(tag_names_.size() - 1);
}

bool Scheduler::IsPending(uint32_t slot, uint32_t generation) const {
  if (slot >= arena_.size()) return false;
  const EventRecord& record = arena_[slot];
  return record.in_queue && record.generation == generation &&
         !record.cancelled;
}

bool Scheduler::Cancel(EventHandle& handle) {
  if (handle.scheduler_ != this || !IsPending(handle.slot_,
                                              handle.generation_)) {
    return false;  // empty, fired, cancelled or moved-from: safe no-op
  }
  EventRecord& record = arena_[handle.slot_];
  record.cancelled = true;
  record.action.Reset();  // release captured resources eagerly
  --pending_;
  // Lazily-deleted entries are only skimmed when they reach the front of
  // their structure; without a bound, cancel-heavy workloads (re-armed
  // timeouts) bloat the event list forever.  Rebuild whichever structure
  // holds the event once its dead entries outnumber its live ones.
  // Lane-resident events stay cancellable under the same contract: they
  // are skimmed at the ring head (LaneHead) or dropped by CompactLane,
  // never executed — and the per-structure bound keeps the documented
  // QueueEntries() < 2 * PendingEvents() + 1 invariant intact.
  if (record.in_lane) {
    ++lane_cancelled_;
    if (lane_cancelled_ * 2 > lane_size_) CompactLane();
  } else {
    ++cancelled_in_queue_;
    if (cancelled_in_queue_ * 2 > queue_->Size()) Compact();
  }
  return true;
}

uint32_t Scheduler::AllocSlot() {
  if (free_head_ != kNoSlot) {
    const uint32_t slot = free_head_;
    free_head_ = arena_[slot].next_free;
    return slot;
  }
  VOODB_CHECK_MSG(arena_.size() < kNoSlot, "event arena exhausted");
  arena_.emplace_back();
  return static_cast<uint32_t>(arena_.size() - 1);
}

void Scheduler::FreeSlot(uint32_t slot) {
  EventRecord& record = arena_[slot];
  record.action.Reset();
  record.in_queue = false;
  ++record.generation;  // invalidates every outstanding handle
  record.next_free = free_head_;
  free_head_ = slot;
}

void Scheduler::Compact() {
  std::vector<QueuedEvent> live;
  live.reserve(pending_);
  while (!queue_->Empty()) {
    const QueuedEvent event = queue_->PopMin();
    if (arena_[event.slot].cancelled) {
      FreeSlot(event.slot);
    } else {
      live.push_back(event);
    }
  }
  cancelled_in_queue_ = 0;
  for (const QueuedEvent& event : live) queue_->Push(event);
  ++stats_.compactions;
}

void Scheduler::SkimCancelled() {
  if (cancelled_in_queue_ == 0) return;  // the common, branch-only case
  while (!queue_->Empty()) {
    const QueuedEvent min = queue_->Min();
    if (!arena_[min.slot].cancelled) return;
    queue_->PopMin();
    FreeSlot(min.slot);
    --cancelled_in_queue_;
    ++stats_.skims;
  }
}

void Scheduler::LanePush(int priority, uint32_t slot) {
  LaneRing* ring = nullptr;
  for (LaneRing& candidate : lanes_) {
    if (candidate.priority == priority) {
      ring = &candidate;
      break;
    }
  }
  if (ring == nullptr) {
    // Rings stay sorted by priority descending so the first ring with a
    // live head is the lane minimum.  Workloads use a handful of
    // distinct priorities, so the linear scan stays in one cache line.
    auto it = lanes_.begin();
    while (it != lanes_.end() && it->priority > priority) ++it;
    ring = &*lanes_.insert(it, LaneRing{priority, {}, 0, 0});
  }
  if (ring->tail - ring->head == ring->slots.size()) {
    GrowRing(*ring, ring->slots.size() + 1);
  }
  ring->slots[ring->tail & (ring->slots.size() - 1)] = slot;
  ++ring->tail;
  ++lane_size_;
}

void Scheduler::GrowRing(LaneRing& ring, size_t min_capacity) {
  size_t capacity =
      ring.slots.empty() ? kLaneInitialCapacity : ring.slots.size();
  while (capacity < min_capacity) capacity *= 2;
  std::vector<uint32_t> slots(capacity);
  const size_t count = ring.tail - ring.head;
  for (size_t i = 0; i < count; ++i) {
    slots[i] = ring.slots[(ring.head + i) & (ring.slots.size() - 1)];
  }
  ring.slots = std::move(slots);
  ring.head = 0;
  ring.tail = count;
}

Scheduler::LaneRing* Scheduler::LaneHead() {
  for (LaneRing& ring : lanes_) {
    while (ring.head != ring.tail) {
      const uint32_t slot = ring.slots[ring.head & (ring.slots.size() - 1)];
      if (!arena_[slot].cancelled) return &ring;
      ++ring.head;
      --lane_size_;
      --lane_cancelled_;
      ++stats_.skims;
      FreeSlot(slot);
    }
  }
  return nullptr;
}

void Scheduler::CompactLane() {
  for (LaneRing& ring : lanes_) {
    if (ring.head == ring.tail) continue;
    const size_t mask = ring.slots.size() - 1;
    size_t out = ring.head;
    for (size_t i = ring.head; i != ring.tail; ++i) {
      const uint32_t slot = ring.slots[i & mask];
      if (arena_[slot].cancelled) {
        FreeSlot(slot);
        --lane_size_;
      } else {
        ring.slots[out & mask] = slot;  // in-place, FIFO order preserved
        ++out;
      }
    }
    ring.tail = out;
  }
  lane_cancelled_ = 0;
  ++stats_.compactions;
}

bool Scheduler::PopNext(QueuedEvent* out) {
  LaneRing* ring = lane_size_ > 0 ? LaneHead() : nullptr;
  if (ring == nullptr) {
    // Heap-only path: the pre-lane Step() loop, with lazy skimming.
    for (;;) {
      if (queue_->Empty()) return false;
      const QueuedEvent event = queue_->PopMin();
      if (arena_[event.slot].cancelled) {
        FreeSlot(event.slot);
        --cancelled_in_queue_;
        ++stats_.skims;
        continue;
      }
      ++stats_.heap_pops;
      *out = event;
      return true;
    }
  }
  // Merge: the lane head carries time == now_, so it can only lose to a
  // queue entry at the same timestamp with higher priority or lower seq.
  // Because the clock only advances through a queue event with a later
  // time — reachable only once the lane is empty — every lane entry
  // still satisfies time == now_ when it surfaces here.
  const uint32_t slot = ring->slots[ring->head & (ring->slots.size() - 1)];
  const EventKey lane_key = arena_[slot].key;
  SkimCancelled();
  if (!queue_->Empty() && FiresBefore(queue_->Min().key, lane_key)) {
    *out = queue_->PopMin();
    ++stats_.heap_pops;
    return true;
  }
  ++ring->head;
  --lane_size_;
  ++stats_.lane_pops;
  *out = QueuedEvent{lane_key, slot};
  return true;
}

bool Scheduler::PeekNextTime(SimTime* time) {
  LaneRing* ring = lane_size_ > 0 ? LaneHead() : nullptr;
  if (ring != nullptr) {
    // == Now(), which is <= every queue entry, so the lane head time is
    // the merged minimum whenever the lane is non-empty.
    *time = arena_[ring->slots[ring->head & (ring->slots.size() - 1)]].key.time;
    return true;
  }
  SkimCancelled();
  if (queue_->Empty()) return false;
  *time = queue_->Min().key.time;
  return true;
}

bool Scheduler::Step() {
  QueuedEvent event;
  if (!PopNext(&event)) return false;
  EventRecord& record = arena_[event.slot];
  --pending_;
  const SimTime advance = event.key.time - now_;
  now_ = event.key.time;
  const uint16_t tag = record.tag;
  current_tag_ = tag;  // events scheduled by the action inherit it
  current_trace_ = record.trace;  // trace context inherits the same way
  Action action = std::move(record.action);
  FreeSlot(event.slot);  // the action may recycle the slot immediately
  if (trace_ != nullptr) trace_(trace_ctx_, event.key);
  if (profile_ != nullptr) profile_(profile_ctx_, tag, now_, advance);
  ++executed_;
  action();
  return true;
}

void Scheduler::Run() {
  stopped_ = false;
  while (!stopped_ && Step()) {
  }
}

uint64_t Scheduler::RunWindow(SimTime end) {
  stopped_ = false;
  uint64_t executed = 0;
  while (!stopped_) {
    SimTime next;
    // The merged peek keeps the window contract lane-aware: lane events
    // carry time == Now(), which can sit at or past `end` when another
    // partition's earlier events defined the window — they must wait.
    if (!PeekNextTime(&next) || next >= end) break;
    Step();
    ++executed;
  }
  return executed;
}

bool Scheduler::HasNextEvent() {
  SimTime next;
  return PeekNextTime(&next);
}

SimTime Scheduler::NextEventTime() {
  SimTime next;
  VOODB_CHECK_MSG(PeekNextTime(&next),
                  "NextEventTime() on an empty event list");
  return next;
}

void Scheduler::RunUntil(SimTime deadline) {
  stopped_ = false;
  while (!stopped_) {
    SimTime next;
    if (!PeekNextTime(&next)) return;
    if (next > deadline) {
      now_ = deadline;
      return;
    }
    Step();
  }
}

void Scheduler::Reserve(size_t events) {
  arena_.reserve(events);
  queue_->Reserve(events);
  if (!lane_enabled_ || events == 0) return;
  // Pre-size the default-priority ring: a same-timestamp burst can
  // approach the full pending population (every user's decision
  // continuation lands at one instant under contention).
  size_t capacity = kLaneInitialCapacity;
  while (capacity < events) capacity *= 2;
  for (LaneRing& ring : lanes_) {
    if (ring.priority == 0) {
      if (ring.slots.size() < capacity) GrowRing(ring, capacity);
      return;
    }
  }
  auto it = lanes_.begin();
  while (it != lanes_.end() && it->priority > 0) ++it;
  lanes_.insert(it, LaneRing{0, std::vector<uint32_t>(capacity), 0, 0});
}

}  // namespace voodb::desp
