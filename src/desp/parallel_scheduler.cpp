#include "desp/parallel_scheduler.hpp"

#include <algorithm>
#include <utility>

#include "exp/executor.hpp"

namespace voodb::desp {

ParallelScheduler::ParallelScheduler(Options options)
    : explicit_window_(options.window) {
  VOODB_CHECK_MSG(options.partitions >= 1, "need at least one partition");
  VOODB_CHECK_MSG(options.window >= 0.0,
                  "window width cannot be negative (window="
                      << options.window << ")");
  schedulers_.reserve(options.partitions);
  for (size_t i = 0; i < options.partitions; ++i) {
    schedulers_.push_back(std::make_unique<Scheduler>(options.queue));
  }
  const size_t n = options.partitions;
  edge_delay_.assign(n * n, kInfinity);
  mail_.resize(n * n);
}

void ParallelScheduler::SetEdgeDelay(size_t from, size_t to,
                                     SimTime min_delay) {
  const size_t n = schedulers_.size();
  VOODB_CHECK_MSG(from < n && to < n, "edge (" << from << " -> " << to
                                               << ") out of range");
  VOODB_CHECK_MSG(from != to, "an edge to self has no lookahead to register");
  VOODB_CHECK_MSG(min_delay > 0.0,
                  "edge delay must be positive — zero lookahead admits no "
                  "conservative window (delay="
                      << min_delay << ")");
  edge_delay_[from * n + to] = min_delay;
}

void ParallelScheduler::SetUniformEdgeDelay(SimTime min_delay) {
  const size_t n = schedulers_.size();
  for (size_t from = 0; from < n; ++from) {
    for (size_t to = 0; to < n; ++to) {
      if (from != to) SetEdgeDelay(from, to, min_delay);
    }
  }
}

SimTime ParallelScheduler::Lookahead() const {
  SimTime lookahead = kInfinity;
  for (const SimTime delay : edge_delay_) {
    lookahead = std::min(lookahead, delay);
  }
  return lookahead;
}

SimTime ParallelScheduler::Window() const {
  if (explicit_window_ > 0.0) {
    VOODB_CHECK_MSG(explicit_window_ <= Lookahead(),
                    "explicit window " << explicit_window_
                                       << " exceeds the minimum edge delay "
                                       << Lookahead()
                                       << " — not conservative");
    return explicit_window_;
  }
  return Lookahead();
}

void ParallelScheduler::SendTo(size_t from, size_t to, SimTime delay,
                               Scheduler::Action action, int priority) {
  const size_t n = schedulers_.size();
  VOODB_CHECK_MSG(from < n && to < n, "SendTo(" << from << " -> " << to
                                                << ") out of range");
  if (from == to) {
    schedulers_[from]->Schedule(delay, std::move(action), priority);
    return;
  }
  const SimTime edge = edge_delay_[from * n + to];
  VOODB_CHECK_MSG(edge < kInfinity, "SendTo on unregistered edge ("
                                        << from << " -> " << to << ")");
  VOODB_CHECK_MSG(delay >= edge, "SendTo delay " << delay
                                                 << " below the registered "
                                                    "edge delay "
                                                 << edge << " (" << from
                                                 << " -> " << to << ")");
  mail_[from * n + to].push_back(Envelope{
      schedulers_[from]->Now() + delay, priority, std::move(action)});
}

void ParallelScheduler::DeliverMail() {
  const size_t n = schedulers_.size();
  std::vector<Envelope> merged;
  for (size_t to = 0; to < n; ++to) {
    merged.clear();
    for (size_t from = 0; from < n; ++from) {
      std::vector<Envelope>& box = mail_[from * n + to];
      for (Envelope& envelope : box) merged.push_back(std::move(envelope));
      box.clear();
    }
    if (merged.empty()) continue;
    // Stable: equal (time, priority) keeps source-ascending order and
    // per-edge FIFO, so the target's seq assignment — and with it the
    // whole downstream execution — is a pure function of mailbox
    // contents, not of which thread ran which partition.
    std::stable_sort(merged.begin(), merged.end(),
                     [](const Envelope& a, const Envelope& b) {
                       if (a.time != b.time) return a.time < b.time;
                       return a.priority > b.priority;
                     });
    cross_events_ += merged.size();
    for (Envelope& envelope : merged) {
      schedulers_[to]->ScheduleAt(envelope.time, std::move(envelope.action),
                                  envelope.priority);
    }
  }
}

uint64_t ParallelScheduler::Run(exp::ThreadPool* pool) {
  stop_requested_ = false;
  const size_t n = schedulers_.size();
  const SimTime window = Window();
  const uint64_t executed_before = ExecutedEvents();
  const bool parallel = pool != nullptr && n > 1 && pool->thread_count() > 1;
  while (!stop_requested_) {
    DeliverMail();
    SimTime start = kInfinity;
    for (const std::unique_ptr<Scheduler>& partition : schedulers_) {
      if (partition->HasNextEvent()) {
        start = std::min(start, partition->NextEventTime());
      }
    }
    if (start == kInfinity) break;  // drained (DeliverMail ran first)
    const SimTime end = window == kInfinity ? kInfinity : start + window;
    if (parallel) {
      for (size_t p = 0; p < n; ++p) {
        Scheduler* partition = schedulers_[p].get();
        pool->Submit([partition, end] { partition->RunWindow(end); });
      }
      pool->Wait();  // the barrier: publishes partition state to this thread
    } else {
      for (size_t p = 0; p < n; ++p) schedulers_[p]->RunWindow(end);
    }
    ++windows_;
  }
  return ExecutedEvents() - executed_before;
}

SimTime ParallelScheduler::MaxNow() const {
  SimTime now = 0.0;
  for (const std::unique_ptr<Scheduler>& partition : schedulers_) {
    now = std::max(now, partition->Now());
  }
  return now;
}

uint64_t ParallelScheduler::ExecutedEvents() const {
  uint64_t executed = 0;
  for (const std::unique_ptr<Scheduler>& partition : schedulers_) {
    executed += partition->ExecutedEvents();
  }
  return executed;
}

}  // namespace voodb::desp
