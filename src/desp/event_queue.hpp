/// \file event_queue.hpp
/// \brief Pluggable event-list data structures for the DESP scheduler.
///
/// The scheduler separates *what* an event is (an arena slot holding the
/// action, owned by `Scheduler`) from *where the next event comes from*
/// (this interface).  A queue entry is just the ordering key plus the
/// arena slot index, so backends move 32-byte PODs around instead of
/// reference-counted closures.
///
/// Every backend must produce the exact same total order — earliest time
/// first, then highest priority, then lowest insertion sequence — so that
/// simulation results are bit-identical no matter which backend runs them
/// (verified by tests/test_kernel_determinism.cpp).  Pick a backend for
/// speed, never for semantics:
///
///   * kBinaryHeap     — the reference; best for small/unknown workloads.
///   * kQuaternaryHeap — shallower tree, fewer cache misses per sift;
///                       usually fastest on schedule-heavy workloads.
///   * kCalendar       — O(1) amortized bucket queue (Brown's calendar
///                       queue); shines when event times are spread
///                       uniformly, e.g. many independent actors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace voodb::desp {

/// Simulated time.  The unit is milliseconds throughout VOODB (disk and
/// lock parameters of Table 3 are given in ms).
using SimTime = double;

/// The total-order key of a scheduled event.
struct EventKey {
  SimTime time = 0.0;
  int priority = 0;
  uint64_t seq = 0;
};

/// True when `a` must fire before `b`: smallest time, then highest
/// priority, then lowest sequence number.  Strict weak order; no two
/// scheduled events share a `seq`, so the order is total.
inline bool FiresBefore(const EventKey& a, const EventKey& b) {
  if (a.time != b.time) return a.time < b.time;
  if (a.priority != b.priority) return a.priority > b.priority;
  return a.seq < b.seq;
}

/// One queue entry: the ordering key plus the owning arena slot.
struct QueuedEvent {
  EventKey key;
  uint32_t slot = 0;
};

/// The available event-list backends.
enum class EventQueueKind {
  kBinaryHeap,
  kQuaternaryHeap,
  kCalendar,
};

/// "binary" / "quaternary" / "calendar".
const char* ToString(EventQueueKind kind);

/// Parses a backend name — canonical "binary_heap" / "quaternary_heap" /
/// "calendar_queue", short "binary" / "quaternary" ("4ary") / "calendar"
/// ("bucket"), or the numeric ordinals "0" / "1" / "2" kept for
/// back-compat with old sweep grids — and throws voodb::util::Error
/// listing the valid choices on anything else.
EventQueueKind ParseEventQueueKind(const std::string& name);

/// A priority queue of QueuedEvents ordered by FiresBefore.
class EventQueue {
 public:
  virtual ~EventQueue() = default;

  /// Backend name (matches ParseEventQueueKind spellings).
  virtual const char* name() const = 0;

  virtual void Push(const QueuedEvent& event) = 0;

  /// Removes and returns the first event.  Precondition: !Empty().
  virtual QueuedEvent PopMin() = 0;

  /// The first event without removing it.  Precondition: !Empty().
  virtual QueuedEvent Min() const = 0;

  virtual size_t Size() const = 0;
  bool Empty() const { return Size() == 0; }

  virtual void Clear() = 0;

  /// Hints that up to `events` entries will be pending at once so the
  /// backend can pre-size its storage.  Never changes ordering; the
  /// default is a no-op for backends without a useful notion of
  /// capacity (the calendar queue sizes its buckets from population).
  virtual void Reserve(size_t events) { (void)events; }
};

/// Creates a backend instance.
std::unique_ptr<EventQueue> MakeEventQueue(EventQueueKind kind);

}  // namespace voodb::desp
