#include "desp/replication.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "desp/random.hpp"
#include "util/check.hpp"

namespace voodb::desp {

void MetricSink::Observe(const std::string& name, double value) {
  VOODB_CHECK_MSG(values_.emplace(name, value).second,
                  "metric '" << name << "' observed twice in one replication");
}

const Tally& ReplicationResult::Metric(const std::string& name) const {
  const auto it = tallies_.find(name);
  VOODB_CHECK_MSG(it != tallies_.end(), "unknown metric '" << name << "'");
  return it->second;
}

bool ReplicationResult::HasMetric(const std::string& name) const {
  return tallies_.count(name) != 0;
}

std::vector<std::string> ReplicationResult::MetricNames() const {
  std::vector<std::string> names;
  names.reserve(tallies_.size());
  for (const auto& [name, tally] : tallies_) names.push_back(name);
  return names;
}

ConfidenceInterval ReplicationResult::Interval(const std::string& name,
                                               double level) const {
  return StudentConfidenceInterval(Metric(name), level);
}

ReplicationRunner::ReplicationRunner(Model model, uint64_t base_seed)
    : model_(std::move(model)), base_seed_(base_seed) {
  VOODB_CHECK_MSG(static_cast<bool>(model_), "model must be callable");
}

ReplicationResult ReplicationRunner::Run(uint64_t n) const {
  VOODB_CHECK_MSG(n >= 1, "need at least one replication");
  ReplicationResult result;
  uint64_t sm = base_seed_;
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t seed = SplitMix64(sm);
    MetricSink sink;
    model_(seed, sink);
    for (const auto& [name, value] : sink.values()) {
      result.tallies_[name].Add(value);
    }
    ++result.replications_;
  }
  return result;
}

ReplicationResult ReplicationRunner::RunToPrecision(const std::string& metric,
                                                    double relative_precision,
                                                    uint64_t pilot_n,
                                                    uint64_t max_n,
                                                    double level) const {
  VOODB_CHECK_MSG(relative_precision > 0.0,
                  "relative precision must be positive");
  VOODB_CHECK_MSG(pilot_n >= 2 && pilot_n <= max_n,
                  "need 2 <= pilot_n <= max_n");
  const ReplicationResult pilot = Run(pilot_n);
  const ConfidenceInterval ci = pilot.Interval(metric, level);
  const double target = relative_precision * std::abs(ci.mean);
  uint64_t n = pilot_n;
  if (target > 0.0 && ci.half_width > target) {
    n = pilot_n + AdditionalReplications(pilot_n, ci.half_width, target);
  }
  n = std::min(n, max_n);
  // Re-run from scratch so the final estimate uses independent seeds in a
  // single pass (the paper likewise reports the full-run statistics).
  return Run(n);
}

}  // namespace voodb::desp
