#include "desp/replication.hpp"

#include <utility>

#include "exp/farm.hpp"
#include "util/check.hpp"

namespace voodb::desp {

void MetricSink::Observe(const std::string& name, double value) {
  VOODB_CHECK_MSG(values_.emplace(name, value).second,
                  "metric '" << name << "' observed twice in one replication");
}

void MetricSink::ObserveHistogram(const std::string& name,
                                  const LogHistogram& histogram) {
  VOODB_CHECK_MSG(
      histograms_.emplace(name, histogram).second,
      "histogram '" << name << "' observed twice in one replication");
}

const Tally& ReplicationResult::Metric(const std::string& name) const {
  const auto it = tallies_.find(name);
  VOODB_CHECK_MSG(it != tallies_.end(), "unknown metric '" << name << "'");
  return it->second;
}

bool ReplicationResult::HasMetric(const std::string& name) const {
  return tallies_.count(name) != 0;
}

std::vector<std::string> ReplicationResult::MetricNames() const {
  std::vector<std::string> names;
  names.reserve(tallies_.size());
  for (const auto& [name, tally] : tallies_) names.push_back(name);
  return names;
}

ConfidenceInterval ReplicationResult::Interval(const std::string& name,
                                               double level) const {
  return StudentConfidenceInterval(Metric(name), level);
}

const LogHistogram& ReplicationResult::Histogram(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  VOODB_CHECK_MSG(it != histograms_.end(),
                  "unknown histogram metric '" << name << "'");
  return it->second;
}

bool ReplicationResult::HasHistogram(const std::string& name) const {
  return histograms_.count(name) != 0;
}

std::vector<std::string> ReplicationResult::HistogramNames() const {
  std::vector<std::string> names;
  names.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) names.push_back(name);
  return names;
}

ReplicationRunner::ReplicationRunner(Model model, uint64_t base_seed)
    : model_(std::move(model)), base_seed_(base_seed) {
  VOODB_CHECK_MSG(static_cast<bool>(model_), "model must be callable");
}

ReplicationResult ReplicationRunner::Run(uint64_t n) const {
  exp::FarmOptions options;
  options.threads = 1;  // serial semantics on the calling thread
  options.base_seed = base_seed_;
  return exp::ReplicationFarm(model_, options).Run(n);
}

ReplicationResult ReplicationRunner::RunToPrecision(const std::string& metric,
                                                    double relative_precision,
                                                    uint64_t pilot_n,
                                                    uint64_t max_n,
                                                    double level) const {
  exp::FarmOptions options;
  options.threads = 1;
  options.base_seed = base_seed_;
  return exp::ReplicationFarm(model_, options)
      .RunToPrecision(metric, relative_precision, pilot_n, max_n, level);
}

}  // namespace voodb::desp
