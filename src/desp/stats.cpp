#include "desp/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/special_functions.hpp"

namespace voodb::desp {

void Tally::Add(double value) {
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Tally::Merge(const Tally& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Tally Tally::DeltaSince(const Tally& start) const {
  VOODB_CHECK_MSG(count_ >= start.count_,
                  "DeltaSince start must be an earlier snapshot (start count "
                      << start.count_ << " > current " << count_ << ")");
  if (start.count_ == 0) return *this;
  Tally delta;
  delta.count_ = count_ - start.count_;
  if (delta.count_ == 0) return delta;
  const double na = static_cast<double>(start.count_);
  const double nb = static_cast<double>(delta.count_);
  const double n = static_cast<double>(count_);
  delta.mean_ = (mean_ * n - start.mean_ * na) / nb;
  const double shift = delta.mean_ - start.mean_;
  delta.m2_ = m2_ - start.m2_ - shift * shift * na * nb / n;
  if (delta.m2_ < 0.0) delta.m2_ = 0.0;  // FP cancellation guard
  delta.min_ = min_;
  delta.max_ = max_;
  return delta;
}

double Tally::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Tally::stddev() const { return std::sqrt(variance()); }

TimeWeighted::TimeWeighted(double start_time, double start_value)
    : start_time_(start_time),
      last_time_(start_time),
      value_(start_value),
      max_(start_value) {}

void TimeWeighted::Update(double now, double value) {
  VOODB_CHECK_MSG(now >= last_time_,
                  "TimeWeighted updates must be chronological");
  integral_ += value_ * (now - last_time_);
  last_time_ = now;
  value_ = value;
  max_ = std::max(max_, value);
}

double TimeWeighted::TimeAverage(double now) const {
  const double elapsed = now - start_time_;
  if (elapsed <= 0.0) return value_;
  const double total = integral_ + value_ * (now - last_time_);
  return total / elapsed;
}

ConfidenceInterval StudentConfidenceInterval(const Tally& tally,
                                             double level) {
  VOODB_CHECK_MSG(tally.count() >= 1,
                  "confidence interval needs at least 1 observation");
  VOODB_CHECK_MSG(level > 0.0 && level < 1.0,
                  "confidence level must lie in (0, 1)");
  if (tally.count() == 1) {
    // A single observation carries no precision information: the Student-t
    // quantile has zero degrees of freedom, so the honest interval is the
    // whole real line.
    ConfidenceInterval ci;
    ci.mean = tally.mean();
    ci.half_width = std::numeric_limits<double>::infinity();
    ci.level = level;
    return ci;
  }
  const double n = static_cast<double>(tally.count());
  const double alpha = 1.0 - level;
  const double t =
      util::StudentTQuantile(1.0 - alpha / 2.0, n - 1.0);
  ConfidenceInterval ci;
  ci.mean = tally.mean();
  ci.half_width = t * tally.stddev() / std::sqrt(n);
  ci.level = level;
  return ci;
}

uint64_t AdditionalReplications(uint64_t pilot_n, double pilot_half_width,
                                double target_half_width) {
  VOODB_CHECK_MSG(pilot_n >= 2, "pilot study needs at least 2 replications");
  VOODB_CHECK_MSG(target_half_width > 0.0 && std::isfinite(target_half_width),
                  "target half-width must be positive and finite");
  VOODB_CHECK_MSG(pilot_half_width >= 0.0 && std::isfinite(pilot_half_width),
                  "pilot half-width must be non-negative and finite");
  // A hair above the target is measurement noise, not a mandate for an
  // extra replication.
  if (pilot_half_width <= target_half_width * (1.0 + 1e-12)) return 0;
  const double ratio = pilot_half_width / target_half_width;
  const double total = static_cast<double>(pilot_n) * ratio * ratio;
  // Clamp before the integer cast: a tiny target makes `total` overflow
  // uint64_t, and casting an out-of-range double is undefined behaviour.
  constexpr double kMaxTotal = 9.0e15;  // far past any feasible run
  if (!(total < kMaxTotal)) {
    return static_cast<uint64_t>(kMaxTotal) - pilot_n;
  }
  const double extra = std::ceil(total - static_cast<double>(pilot_n));
  return extra <= 0.0 ? 0 : static_cast<uint64_t>(extra);
}

}  // namespace voodb::desp
