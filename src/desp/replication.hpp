/// \file replication.hpp
/// \brief Independent-replication experiment runner (paper §4.2.2).
///
/// The VOODB paper runs every experiment as 100 independent replications
/// and reports the sample mean with a 95 % Student-t confidence interval,
/// after a pilot study of n = 10 sized via n* = n.(h/h*)^2.  This runner
/// packages that protocol: a *model* is any callable that maps a
/// replication seed to a set of named metric observations.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "desp/histogram.hpp"
#include "desp/stats.hpp"

namespace voodb::exp {
class ReplicationFarm;
}  // namespace voodb::exp

namespace voodb::desp {

/// Collects named scalar and distribution observations from one replication.
class MetricSink {
 public:
  /// Records one value for `name` (one call per replication per metric).
  void Observe(const std::string& name, double value);

  /// Records one full distribution for `name` (one call per replication per
  /// name).  Histograms of the same name are merged bucket-by-bucket across
  /// replications, so their bucketing must match.
  void ObserveHistogram(const std::string& name, const LogHistogram& histogram);

  const std::map<std::string, double>& values() const { return values_; }
  const std::map<std::string, LogHistogram>& histograms() const {
    return histograms_;
  }

 private:
  std::map<std::string, double> values_;
  std::map<std::string, LogHistogram> histograms_;
};

/// Aggregated results of a replicated experiment.
class ReplicationResult {
 public:
  /// Per-metric tallies across replications.
  const Tally& Metric(const std::string& name) const;
  bool HasMetric(const std::string& name) const;
  std::vector<std::string> MetricNames() const;

  /// Student-t CI for a metric at `level`.
  ConfidenceInterval Interval(const std::string& name,
                              double level = 0.95) const;

  /// Distribution metrics merged across replications (bucket counts and
  /// moments combine exactly, so the merged histogram is bit-identical at
  /// any thread count).
  const LogHistogram& Histogram(const std::string& name) const;
  bool HasHistogram(const std::string& name) const;
  std::vector<std::string> HistogramNames() const;

  uint64_t replications() const { return replications_; }

 private:
  friend class ReplicationRunner;
  friend class exp::ReplicationFarm;
  std::map<std::string, Tally> tallies_;
  std::map<std::string, LogHistogram> histograms_;
  uint64_t replications_ = 0;
};

/// Runs a model for n independent replications with derived seeds.
///
/// This is the serial adapter over `exp::ReplicationFarm`: it executes the
/// same seed-derivation and ordered reduction on the calling thread.  Use
/// the farm directly to run replications concurrently — results are
/// bit-identical at any thread count.
class ReplicationRunner {
 public:
  /// A model maps (seed, sink) to observations; it must be deterministic
  /// in the seed.
  using Model = std::function<void(uint64_t seed, MetricSink& sink)>;

  explicit ReplicationRunner(Model model, uint64_t base_seed = 42);

  /// Runs `n` replications (seeds derived from base_seed) and aggregates.
  ReplicationResult Run(uint64_t n) const;

  /// The paper's protocol: pilot of `pilot_n`, then enough additional
  /// replications that `metric`'s CI half-width is within
  /// `relative_precision` of its mean (e.g. 0.05 for "within 5 % of the
  /// sample mean with 95 % confidence"), capped at `max_n`.
  ReplicationResult RunToPrecision(const std::string& metric,
                                   double relative_precision,
                                   uint64_t pilot_n = 10,
                                   uint64_t max_n = 100,
                                   double level = 0.95) const;

 private:
  Model model_;
  uint64_t base_seed_;
};

}  // namespace voodb::desp
