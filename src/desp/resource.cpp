#include "desp/resource.hpp"

#include <algorithm>
#include <utility>

namespace voodb::desp {

const char* ToString(QueueDiscipline d) {
  switch (d) {
    case QueueDiscipline::kFifo:
      return "FIFO";
    case QueueDiscipline::kLifo:
      return "LIFO";
    case QueueDiscipline::kPriority:
      return "PRIORITY";
  }
  return "?";
}

Resource::Resource(Scheduler* scheduler, std::string name, uint64_t capacity,
                   QueueDiscipline discipline)
    : Actor(scheduler, std::move(name)),
      capacity_(capacity),
      discipline_(discipline),
      busy_stat_(Now(), 0.0),
      queue_stat_(Now(), 0.0) {
  VOODB_CHECK_MSG(capacity_ >= 1, "resource '" << this->name()
                                               << "' needs capacity >= 1");
}

void Resource::Acquire(Grant on_grant, double priority) {
  // AcquireAction validates; SmallFunction preserves emptiness of a
  // wrapped std::function, so no separate check is needed here.
  AcquireAction(std::move(on_grant), priority);
}

void Resource::AcquireAction(Scheduler::Action on_grant, double priority) {
  VOODB_CHECK_MSG(static_cast<bool>(on_grant),
                  "Acquire needs a grant continuation");
  Waiter w{std::move(on_grant), priority, Now(), next_seq_++,
           scheduler().current_trace()};
  if (busy_ < capacity_) {
    GrantTo(std::move(w));
    return;
  }
  queue_.push_back(std::move(w));
  queue_stat_.Update(Now(), static_cast<double>(queue_.size()));
}

void Resource::Release() {
  VOODB_CHECK_MSG(busy_ > 0, "Release on idle resource '" << name() << "'");
  --busy_;
  busy_stat_.Update(Now(), static_cast<double>(busy_));
  if (!queue_.empty()) PopAndGrant();
}

void Resource::AcquireFor(SimTime service_time, Grant on_done,
                          double priority) {
  VOODB_CHECK_MSG(service_time >= 0.0, "service time must be non-negative");
  AcquireAction(
      [this, service_time, on_done = std::move(on_done)]() mutable {
        Serve(service_time, std::move(on_done));
      },
      priority);
}

void Resource::Serve(SimTime service_time, Grant on_done) {
  CallIn(service_time, &Resource::FinishService, std::move(on_done));
}

void Resource::FinishService(Grant on_done) {
  Release();
  if (on_done) on_done();
}

double Resource::Utilization() const {
  return busy_stat_.TimeAverage(Now()) / static_cast<double>(capacity_);
}

double Resource::MeanQueueLength() const {
  return queue_stat_.TimeAverage(Now());
}

void Resource::GrantTo(Waiter waiter) {
  ++busy_;
  ++grants_;
  busy_stat_.Update(Now(), static_cast<double>(busy_));
  wait_times_.Add(Now() - waiter.enqueued_at);
  // Run the continuation as an event so grants never grow the call stack.
  // The grant event carries the *requester's* trace context: without the
  // scope it would inherit the releasing event's context (a grant fired
  // from another transaction's Release would be misattributed).
  TraceScope trace(&scheduler(), waiter.trace);
  After(0.0, std::move(waiter.on_grant));
}

void Resource::PopAndGrant() {
  auto it = queue_.begin();
  switch (discipline_) {
    case QueueDiscipline::kFifo:
      break;
    case QueueDiscipline::kLifo:
      it = std::prev(queue_.end());
      break;
    case QueueDiscipline::kPriority:
      it = std::max_element(queue_.begin(), queue_.end(),
                            [](const Waiter& a, const Waiter& b) {
                              if (a.priority != b.priority) {
                                return a.priority < b.priority;
                              }
                              return a.seq > b.seq;  // FIFO among equals
                            });
      break;
  }
  Waiter w = std::move(*it);
  queue_.erase(it);
  queue_stat_.Update(Now(), static_cast<double>(queue_.size()));
  GrantTo(std::move(w));
}

}  // namespace voodb::desp
