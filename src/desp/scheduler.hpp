/// \file scheduler.hpp
/// \brief The discrete-event scheduler at the heart of DESP.
///
/// The kernel follows the "resource view" of Table 2 in the VOODB paper:
/// active resources are classes whose functioning rules are methods; the
/// scheduler merely orders their activations on the simulated time axis.
/// Events are closures; ties are broken by (priority desc, insertion seq),
/// which makes runs fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace voodb::desp {

/// Simulated time.  The unit is milliseconds throughout VOODB (disk and
/// lock parameters of Table 3 are given in ms).
using SimTime = double;

/// A scheduled activation.  Obtained from Scheduler::Schedule*; can be
/// cancelled as long as it has not fired.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if the event is still pending (not fired, not cancelled).
  bool pending() const;

 private:
  friend class Scheduler;
  struct State;
  std::shared_ptr<State> state_;
};

/// Discrete-event scheduler: event list + simulation clock.
class Scheduler {
 public:
  using Action = std::function<void()>;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Schedules `action` to run `delay` time units from now.
  /// Higher `priority` fires first among simultaneous events.
  EventHandle Schedule(SimTime delay, Action action, int priority = 0);

  /// Schedules `action` at absolute time `when` (>= Now()).
  EventHandle ScheduleAt(SimTime when, Action action, int priority = 0);

  /// Cancels a pending event; returns false if it already fired or was
  /// already cancelled.
  bool Cancel(EventHandle& handle);

  /// Current simulated time.
  SimTime Now() const { return now_; }

  /// Executes the next event.  Returns false when the event list is empty.
  bool Step();

  /// Runs until the event list drains or Stop() is called.
  void Run();

  /// Runs until the clock would pass `deadline` (events at exactly
  /// `deadline` are executed), the list drains, or Stop() is called.
  void RunUntil(SimTime deadline);

  /// Makes Run()/RunUntil() return after the current event completes.
  void Stop() { stopped_ = true; }

  /// Number of pending (non-cancelled) events.
  size_t PendingEvents() const { return pending_; }

  /// Total number of events executed since construction.
  uint64_t ExecutedEvents() const { return executed_; }

 private:
  struct QueueEntry;
  struct Compare {
    bool operator()(const QueueEntry& a, const QueueEntry& b) const;
  };

  SimTime now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  size_t pending_ = 0;
  bool stopped_ = false;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, Compare> queue_;
};

struct EventHandle::State {
  SimTime time = 0.0;
  int priority = 0;
  uint64_t seq = 0;
  Scheduler::Action action;
  bool cancelled = false;
  bool fired = false;
};

struct Scheduler::QueueEntry {
  std::shared_ptr<EventHandle::State> state;
};

}  // namespace voodb::desp
