/// \file scheduler.hpp
/// \brief The discrete-event scheduler at the heart of DESP.
///
/// The kernel follows the "resource view" of Table 2 in the VOODB paper:
/// active resources are classes whose functioning rules are methods; the
/// scheduler merely orders their activations on the simulated time axis.
/// Events are callables; ties are broken by (priority desc, insertion
/// seq), which makes runs fully deterministic.
///
/// The schedule/fire hot path is allocation-free: event records live in a
/// pooled slab arena and are referenced by intrusive, generation-counted
/// `EventHandle`s (no per-event `shared_ptr`), the action is a
/// small-buffer-optimized callable (no `std::function` heap spill for
/// actor-sized captures), and the event list itself is a pluggable
/// `EventQueue` moving 32-byte (key, slot) entries.  All queue backends
/// produce bit-identical simulations; pick one with the `kind`
/// constructor argument (`VoodbConfig::event_queue` at the system level,
/// `--event-queue=` on the benches).
///
/// On top of the pluggable queue sits a *zero-delay fast lane* (a
/// calendar-queue-style "now bucket"): events scheduled at exactly
/// `Now()` — the dominant pattern once every object access under a
/// cc::Protocol fires a same-timestamp decision continuation — go into
/// per-priority FIFO rings instead of the O(log n) heap.  Because every
/// lane entry shares `time == Now()`, FIFO order within a ring *is* seq
/// order, ring priority order breaks the priority tie, and `Step()`
/// merges the lane head against the heap head with the full
/// (time, priority desc, seq) comparison — so execution order is
/// bit-identical with the lane on or off (see SetLaneEnabled).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "desp/event_queue.hpp"
#include "desp/small_function.hpp"
#include "util/check.hpp"

namespace voodb::desp {

class Scheduler;

/// A scheduled activation.  Obtained from Scheduler::Schedule*; can be
/// cancelled as long as it has not fired.  A handle is a weak intrusive
/// reference (arena slot + generation): it never owns the event, copying
/// is free, and Cancel / pending() on a fired, cancelled, moved-from or
/// default-constructed handle are safe no-ops.  Handles must not outlive
/// their scheduler.
class EventHandle {
 public:
  EventHandle() = default;
  EventHandle(const EventHandle&) = default;
  EventHandle& operator=(const EventHandle&) = default;
  /// Moving transfers the reference and resets the source to "no event".
  EventHandle(EventHandle&& other) noexcept
      : scheduler_(other.scheduler_),
        slot_(other.slot_),
        generation_(other.generation_) {
    other.scheduler_ = nullptr;
  }
  EventHandle& operator=(EventHandle&& other) noexcept {
    scheduler_ = other.scheduler_;
    slot_ = other.slot_;
    generation_ = other.generation_;
    if (&other != this) other.scheduler_ = nullptr;
    return *this;
  }

  /// True if the event is still pending (not fired, not cancelled).
  bool pending() const;

 private:
  friend class Scheduler;
  Scheduler* scheduler_ = nullptr;
  uint32_t slot_ = 0;
  uint32_t generation_ = 0;
};

/// Cheap per-scheduler event-list operation counters, exposed so the
/// observability layer can register them without adding any hot-path
/// indirection (each is one `uint64_t` increment).
struct QueueStats {
  uint64_t heap_pushes = 0;   ///< entries pushed into the pluggable queue
  uint64_t heap_pops = 0;     ///< live entries popped from the queue
  uint64_t lane_pushes = 0;   ///< zero-delay entries taken by the fast lane
  uint64_t lane_pops = 0;     ///< live entries popped from the fast lane
  uint64_t skims = 0;         ///< lazily-deleted entries dropped at a head
  uint64_t compactions = 0;   ///< queue/lane rebuilds triggered by Cancel
};

/// Discrete-event scheduler: pluggable event list + slab arena + clock.
class Scheduler {
 public:
  using Action = SmallFunction;

  explicit Scheduler(EventQueueKind kind = EventQueueKind::kBinaryHeap);
  explicit Scheduler(std::unique_ptr<EventQueue> queue);
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Schedules `action` to run `delay` time units from now.
  /// Higher `priority` fires first among simultaneous events.
  EventHandle Schedule(SimTime delay, Action action, int priority = 0);

  /// Schedules `action` at absolute time `when` (>= Now()).
  EventHandle ScheduleAt(SimTime when, Action action, int priority = 0);

  /// Cancels a pending event; returns false (a safe no-op) if it already
  /// fired, was already cancelled, or the handle is empty/moved-from.
  bool Cancel(EventHandle& handle);

  /// Current simulated time.
  SimTime Now() const { return now_; }

  /// Executes the next event.  Returns false when the event list is empty.
  bool Step();

  /// Runs until the event list drains or Stop() is called.
  void Run();

  /// Runs until the clock would pass `deadline` (events at exactly
  /// `deadline` are executed), the list drains, or Stop() is called.
  void RunUntil(SimTime deadline);

  /// Executes every event with time strictly below `end` (or until the
  /// list drains or Stop() is called) and returns the number executed.
  /// Unlike RunUntil, the clock is left at the last executed event — it
  /// is *not* advanced to `end` — so consecutive windows compose without
  /// perturbing timestamps.  This is the per-partition primitive of the
  /// conservative parallel protocol (see parallel_scheduler.hpp).
  uint64_t RunWindow(SimTime end);

  /// True if a live (non-cancelled) event is queued.  Skims lazily-
  /// deleted entries, so it is non-const.
  bool HasNextEvent();

  /// Time of the next live event; HasNextEvent() must be true.
  SimTime NextEventTime();

  /// Makes Run()/RunUntil() return after the current event completes.
  void Stop() { stopped_ = true; }

  /// Number of pending (non-cancelled) events.
  size_t PendingEvents() const { return pending_; }

  /// Total number of events executed since construction.
  uint64_t ExecutedEvents() const { return executed_; }

  /// Event-list entries (queue + fast lane) including lazily-deleted
  /// cancelled ones.  The scheduler compacts each structure whenever its
  /// cancelled entries outnumber its live ones, so
  /// QueueEntries() < 2 * PendingEvents() + 1 always holds after a
  /// Cancel.  Exposed for tests and diagnostics.
  size_t QueueEntries() const { return queue_->Size() + lane_size_; }

  /// Fast-lane entries including lazily-deleted cancelled ones.
  /// Exposed for tests and diagnostics.
  size_t LaneEntries() const { return lane_size_; }

  /// The active event-list backend's name ("binary", ...).
  const char* queue_name() const { return queue_->name(); }

  /// Enables or disables the zero-delay fast lane (default: enabled).
  /// A pure performance knob: execution order is bit-identical either
  /// way.  Disabling routes future schedules through the pluggable
  /// queue; events already in the lane drain normally, so the toggle is
  /// safe at any time.
  void SetLaneEnabled(bool enabled) { lane_enabled_ = enabled; }
  bool lane_enabled() const { return lane_enabled_; }

  /// Pre-sizes the slab arena, the queue backend, and the fast lane for
  /// roughly `events` concurrently pending events, so steady-state runs
  /// never reallocate on the schedule/fire hot path.  Purely a capacity
  /// hint; never changes behavior.
  void Reserve(size_t events);

  /// Capacity of the slab arena (for tests of Reserve).
  size_t ArenaCapacity() const { return arena_.capacity(); }

  /// Event-list operation counters (see QueueStats).  The cells are
  /// stable for the scheduler's lifetime, so observability code can
  /// register pointers to them.
  const QueueStats& queue_stats() const { return stats_; }

  /// Observes every fired event's key, in execution order, before its
  /// action runs.  Used by the kernel bit-identity tests to diff event
  /// traces across queue backends; null (the default) disables tracing.
  using TraceFn = void (*)(void* ctx, const EventKey& key);
  void SetTraceHook(TraceFn fn, void* ctx) {
    trace_ = fn;
    trace_ctx_ = ctx;
  }

  // --- Profiling tags ------------------------------------------------------
  //
  // Every event carries a 16-bit tag stamped at schedule time from the
  // scheduler's ambient "current tag" (tag 0 = "untagged").  Actors set the
  // ambient tag around their scheduling calls, and Step() restores it to the
  // fired event's tag before running the action, so events scheduled *inside*
  // an action inherit the attribution of the actor that caused them.  The
  // whole mechanism costs one uint16 store per schedule and one branch per
  // dispatch when no profile hook is installed.

  /// Interns `name` as a profiling tag and returns its id; registering the
  /// same name twice returns the same id.  Tag 0 is always "untagged".
  uint16_t RegisterProfileTag(const std::string& name);

  /// Names of all registered tags, indexed by tag id.
  const std::vector<std::string>& profile_tag_names() const {
    return tag_names_;
  }

  /// Replaces the ambient tag stamped onto newly scheduled events; returns
  /// the previous tag so callers can scope the change (see `TagScope`).
  uint16_t SetCurrentTag(uint16_t tag) {
    const uint16_t previous = current_tag_;
    current_tag_ = tag;
    return previous;
  }
  uint16_t current_tag() const { return current_tag_; }

  // --- Trace context -------------------------------------------------------
  //
  // Alongside the profiling tag, every event carries a 32-bit trace context
  // (0 = "untraced") stamped from the scheduler's ambient context at
  // schedule time and restored by Step() before the action runs.  The span
  // tracer (obs/spans.hpp) uses it to attribute work performed by shared
  // actors (disk, network) back to the transaction that caused it, across
  // arbitrarily deep event chains.  Like the tag it is pure metadata: it
  // never influences ordering, timing, or random streams.

  /// Replaces the ambient trace context stamped onto newly scheduled
  /// events; returns the previous context so callers can scope the change.
  uint32_t SetCurrentTrace(uint32_t trace) {
    const uint32_t previous = current_trace_;
    current_trace_ = trace;
    return previous;
  }
  uint32_t current_trace() const { return current_trace_; }

  /// Observes every dispatched event: its tag, the new clock value, and the
  /// simulated time the clock advanced to reach it (0 for simultaneous
  /// events).  Null (the default) disables profiling at the cost of a single
  /// predictable branch per dispatch.
  using ProfileFn = void (*)(void* ctx, uint16_t tag, SimTime now,
                             SimTime advance);
  void SetProfileHook(ProfileFn fn, void* ctx) {
    profile_ = fn;
    profile_ctx_ = ctx;
  }

 private:
  struct EventRecord {
    EventKey key;
    Action action;
    uint32_t generation = 0;
    bool cancelled = false;
    bool in_queue = false;   ///< queued (live or lazily-deleted)
    bool in_lane = false;    ///< resident in the fast lane, not the queue
    uint16_t tag = 0;        ///< profiling tag (ambient at schedule time)
    uint32_t trace = 0;      ///< trace context (ambient at schedule time)
    uint32_t next_free = 0;  ///< free-list link when not allocated
  };

  /// One FIFO ring of same-priority fast-lane entries.  `slots` has
  /// power-of-two capacity; `head`/`tail` are free-running counters
  /// masked on access, so FIFO position — and therefore seq order, since
  /// all lane entries share `time == now_` — is preserved across wraps.
  struct LaneRing {
    int priority = 0;
    std::vector<uint32_t> slots;
    size_t head = 0;
    size_t tail = 0;
  };

  uint32_t AllocSlot();
  void FreeSlot(uint32_t slot);
  bool IsPending(uint32_t slot, uint32_t generation) const;
  /// Rebuilds the pluggable queue keeping only live entries.
  void Compact();
  /// Pops lazily-deleted entries off the front of the queue.
  void SkimCancelled();
  /// Appends `slot` to the ring for `priority`, creating/growing it.
  void LanePush(int priority, uint32_t slot);
  /// The ring holding the lane's next live event — the first non-empty
  /// ring in priority-descending order — skimming lazily-deleted heads
  /// on the way.  Null when the lane is empty.
  LaneRing* LaneHead();
  /// Grows `ring` to a power-of-two capacity >= `min_capacity`,
  /// preserving FIFO order.
  static void GrowRing(LaneRing& ring, size_t min_capacity);
  /// Rewrites every ring in place keeping only live entries (FIFO order
  /// preserved; the lane analogue of Compact()).
  void CompactLane();
  /// Removes and returns the merged (lane vs queue) minimum into `out`;
  /// false when no live event remains.
  bool PopNext(QueuedEvent* out);
  /// Time of the merged next live event; false when none remains.
  bool PeekNextTime(SimTime* time);

  friend class EventHandle;

  static constexpr uint32_t kNoSlot = UINT32_MAX;
  static constexpr size_t kLaneInitialCapacity = 8;

  SimTime now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  size_t pending_ = 0;
  size_t cancelled_in_queue_ = 0;
  bool stopped_ = false;
  bool lane_enabled_ = true;
  std::vector<LaneRing> lanes_;  ///< sorted by priority descending
  size_t lane_size_ = 0;         ///< lane entries incl. lazily-deleted
  size_t lane_cancelled_ = 0;
  QueueStats stats_;
  std::unique_ptr<EventQueue> queue_;
  std::vector<EventRecord> arena_;
  uint32_t free_head_ = kNoSlot;
  TraceFn trace_ = nullptr;
  void* trace_ctx_ = nullptr;
  uint16_t current_tag_ = 0;
  uint32_t current_trace_ = 0;
  std::vector<std::string> tag_names_{"untagged"};
  ProfileFn profile_ = nullptr;
  void* profile_ctx_ = nullptr;
};

/// RAII scope that sets the scheduler's ambient profiling tag and restores
/// the previous one on destruction.
class TagScope {
 public:
  TagScope(Scheduler* scheduler, uint16_t tag)
      : scheduler_(scheduler), previous_(scheduler->SetCurrentTag(tag)) {}
  TagScope(const TagScope&) = delete;
  TagScope& operator=(const TagScope&) = delete;
  ~TagScope() { scheduler_->SetCurrentTag(previous_); }

 private:
  Scheduler* scheduler_;
  uint16_t previous_;
};

/// RAII scope that sets the scheduler's ambient trace context and restores
/// the previous one on destruction (the tracing analogue of TagScope).
class TraceScope {
 public:
  TraceScope(Scheduler* scheduler, uint32_t trace)
      : scheduler_(scheduler), previous_(scheduler->SetCurrentTrace(trace)) {}
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;
  ~TraceScope() { scheduler_->SetCurrentTrace(previous_); }

 private:
  Scheduler* scheduler_;
  uint32_t previous_;
};

}  // namespace voodb::desp
