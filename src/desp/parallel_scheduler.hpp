/// \file parallel_scheduler.hpp
/// \brief Conservative parallel discrete-event execution over partitioned
/// schedulers.
///
/// One big VOODB run is a single event-ordered stream, so it cannot be
/// farmed out the way replications are.  What it *can* exploit is the
/// model's fixed latency constants: every cross-partition interaction
/// (shipping a page between storage servers, a remote sub-transaction
/// request) takes at least the disk-service + network-transfer time that
/// the configuration pins down.  That minimum is guaranteed *lookahead*
/// in the Chandy–Misra sense, and it licenses a window protocol:
///
///   1. Let T be the earliest pending event across all partitions and W
///      the minimum cross-partition delay.  No partition can receive a
///      new event with time < T + W.
///   2. Every partition therefore executes its events with time in
///      [T, T+W) independently — on worker threads, no locks on the hot
///      path.
///   3. Cross-partition sends are buffered in per-edge mailboxes during
///      the window and delivered at the barrier, in a fixed order
///      (target ascending, then stable (time, priority) with per-edge
///      FIFO preserved), before the next window starts.
///
/// Because each partition's intra-window execution is the ordinary serial
/// `Scheduler` (deterministic by `(time, priority, seq)`), and barrier
/// delivery order depends only on mailbox *contents* — never on thread
/// timing — the execution is bit-identical to a 1-thread run at any
/// thread count: same event keys, same clocks, same per-partition seq
/// assignment.  The farm's identity contract extends to single runs.
///
/// The scheduler's zero-delay fast lane composes with the protocol
/// unchanged: `NextEventTime`/`RunWindow` are lane-aware, and a lane
/// event whose timestamp sits at or past a window's `end` (possible when
/// another partition's earlier events defined the window start) waits
/// for a window that strictly covers it — exactly as a queued event
/// would.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "desp/scheduler.hpp"

namespace voodb::exp {
class ThreadPool;
}  // namespace voodb::exp

namespace voodb::desp {

/// N partitioned Schedulers executed under a conservative time-window
/// protocol.  Partitions share nothing on the hot path: each keeps its
/// own event queue, slab arena, clock, and seq counter.
class ParallelScheduler {
 public:
  struct Options {
    size_t partitions = 1;
    /// Event-list backend for every partition.
    EventQueueKind queue = EventQueueKind::kBinaryHeap;
    /// Explicit window width; 0 derives it from the minimum registered
    /// edge delay.  An explicit window must not exceed that minimum, or
    /// the protocol would no longer be conservative.
    SimTime window = 0.0;
  };

  explicit ParallelScheduler(Options options);

  size_t partitions() const { return schedulers_.size(); }
  Scheduler& partition(size_t index) { return *schedulers_[index]; }
  const Scheduler& partition(size_t index) const { return *schedulers_[index]; }

  /// Registers the minimum simulated delay of any `from` → `to` send —
  /// the edge's lookahead, e.g. disk service + network transfer time of
  /// one page.  Must be > 0 and must be registered before Run(); SendTo
  /// on an unregistered edge is an error.
  void SetEdgeDelay(size_t from, size_t to, SimTime min_delay);

  /// Registers `min_delay` on every ordered pair of distinct partitions.
  void SetUniformEdgeDelay(SimTime min_delay);

  /// Minimum registered edge delay; +inf when no edges are registered
  /// (fully independent partitions).
  SimTime Lookahead() const;

  /// Effective window width: the explicit `Options::window` if set,
  /// otherwise Lookahead().
  SimTime Window() const;

  /// Sends `action` to partition `to`, firing `delay` after partition
  /// `from`'s current clock.  Must be called from code executing inside
  /// partition `from` (its thread owns the mailbox row during a window).
  /// `delay` must be >= the registered edge delay, which keeps delivery
  /// outside the current window.  `from == to` degenerates to a local
  /// Schedule().
  void SendTo(size_t from, size_t to, SimTime delay, Scheduler::Action action,
              int priority = 0);

  /// Runs windows until every partition drains and no mail is pending,
  /// or Stop() was requested.  With a null `pool` (or a single
  /// partition) windows execute serially on the calling thread —
  /// bit-identical to the pooled run.  Returns the number of events
  /// executed.  The pool must be dedicated to this call (Wait() is the
  /// barrier).
  uint64_t Run(exp::ThreadPool* pool = nullptr);

  /// Makes Run() return at the next barrier.
  void Stop() { stop_requested_ = true; }

  /// Max partition clock — how far simulated time has advanced.
  SimTime MaxNow() const;

  uint64_t ExecutedEvents() const;
  /// Number of windows (barriers) executed by Run() calls so far.
  uint64_t Windows() const { return windows_; }
  /// Number of cross-partition events delivered through mailboxes.
  uint64_t CrossEvents() const { return cross_events_; }

 private:
  struct Envelope {
    SimTime time;  ///< absolute delivery time
    int priority;
    Scheduler::Action action;
  };

  /// Drains every mailbox into its target partition, in deterministic
  /// order.  Single-threaded (between windows).
  void DeliverMail();

  static constexpr SimTime kInfinity = std::numeric_limits<SimTime>::infinity();

  std::vector<std::unique_ptr<Scheduler>> schedulers_;
  /// Dense n*n matrices indexed [from * n + to].
  std::vector<SimTime> edge_delay_;    ///< +inf = unregistered
  std::vector<std::vector<Envelope>> mail_;
  SimTime explicit_window_ = 0.0;
  uint64_t windows_ = 0;
  uint64_t cross_events_ = 0;
  bool stop_requested_ = false;
};

}  // namespace voodb::desp
