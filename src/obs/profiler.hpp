/// \file profiler.hpp
/// \brief Simulation-time profiler: where does simulated time go?
///
/// Hooks the `desp::Scheduler` dispatch path (one branch per event when
/// disabled — see `Scheduler::SetProfileHook`) and attributes every clock
/// advance to the profiling tag of the event that caused it, i.e. to the
/// actor that scheduled it (tags propagate to events scheduled from inside
/// an action, so a continuation chain stays attributed to its originator).
/// The result is a per-actor breakdown of simulated time and event counts,
/// plus an optional span timeline exportable as Chrome-trace JSON
/// (load it at chrome://tracing or https://ui.perfetto.dev).
///
/// One profiler can observe several schedulers at once — the partitions of
/// a `desp::ParallelScheduler` attach individually, each recording into its
/// own arrays (a partition runs on exactly one thread per window, so the
/// hot path stays lock-free), and the reports merge per-tag-name in
/// deterministic name order regardless of thread count.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "desp/scheduler.hpp"
#include "util/table.hpp"

namespace voodb::obs {

/// Per-actor attribution of scheduler dispatches.
class SimProfiler {
 public:
  /// \param capture_spans  also record one timeline span per clock advance
  ///                       (needed for Chrome-trace export; bounded memory)
  /// \param max_spans      per-attachment span-buffer cap; further spans are
  ///                       counted as dropped, aggregates stay exact
  explicit SimProfiler(bool capture_spans = false,
                       size_t max_spans = 1 << 20);

  /// Installs this profiler as `scheduler`'s profile hook.  May be called
  /// once per partition; each attachment records independently (safe under
  /// the parallel kernel's one-thread-per-partition windows).  `name`
  /// labels the partition in the Chrome trace; empty is fine for
  /// single-scheduler use.  The profiler must outlive the attachments; the
  /// schedulers must outlive the profiler's report calls (tag names live
  /// in the scheduler).
  void Attach(desp::Scheduler* scheduler, std::string name = std::string());

  /// Removes the hook from every attached scheduler (safe if never
  /// attached).  Recorded data is kept.
  void Detach();

  struct TagStat {
    std::string name;
    uint64_t events = 0;      ///< dispatches attributed to this tag
    double sim_time = 0.0;    ///< simulated time advanced by those events
  };

  /// Per-tag breakdown merged across every attached scheduler by tag
  /// name, sorted by ascending name — a deterministic order whatever the
  /// partition or thread count; tags that never fired are omitted.
  std::vector<TagStat> Stats() const;

  uint64_t total_events() const;
  double total_sim_time() const;
  uint64_t dropped_spans() const;

  /// Renders Stats() as an aligned text table with share-of-total columns.
  util::TextTable Table() const;

  /// Chrome-trace ("Trace Event Format") JSON of the captured spans: one
  /// "X" duration event per clock advance on a per-tag track, plus
  /// thread-name metadata.  Each attached scheduler becomes its own pid
  /// (partition name in the process_name metadata when given).  Timestamps
  /// are simulated milliseconds emitted as microseconds so the viewer's
  /// units read naturally.
  std::string ChromeTraceJson() const;

  /// Writes ChromeTraceJson() to `path`.
  void WriteChromeTrace(const std::string& path) const;

 private:
  struct Span {
    double start = 0.0;
    double duration = 0.0;
    uint16_t tag = 0;
  };

  /// One attached scheduler's private accumulation state.  Stable address
  /// (unique_ptr) because the scheduler holds it as hook context.
  struct Attachment {
    desp::Scheduler* scheduler = nullptr;
    std::string name;
    const SimProfiler* owner = nullptr;
    std::vector<uint64_t> events;   ///< indexed by tag
    std::vector<double> sim_time;   ///< indexed by tag
    uint64_t total_events = 0;
    double total_sim_time = 0.0;
    uint64_t dropped_spans = 0;
    std::vector<Span> spans;
  };

  static void Hook(void* ctx, uint16_t tag, desp::SimTime now,
                   desp::SimTime advance);

  std::vector<std::unique_ptr<Attachment>> attachments_;
  bool capture_spans_;
  size_t max_spans_;
};

}  // namespace voodb::obs
