/// \file profiler.hpp
/// \brief Simulation-time profiler: where does simulated time go?
///
/// Hooks the `desp::Scheduler` dispatch path (one branch per event when
/// disabled — see `Scheduler::SetProfileHook`) and attributes every clock
/// advance to the profiling tag of the event that caused it, i.e. to the
/// actor that scheduled it (tags propagate to events scheduled from inside
/// an action, so a continuation chain stays attributed to its originator).
/// The result is a per-actor breakdown of simulated time and event counts,
/// plus an optional span timeline exportable as Chrome-trace JSON
/// (load it at chrome://tracing or https://ui.perfetto.dev).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "desp/scheduler.hpp"
#include "util/table.hpp"

namespace voodb::obs {

/// Per-actor attribution of scheduler dispatches.
class SimProfiler {
 public:
  /// \param capture_spans  also record one timeline span per clock advance
  ///                       (needed for Chrome-trace export; bounded memory)
  /// \param max_spans      span-buffer cap; further spans are counted as
  ///                       dropped, aggregates stay exact
  explicit SimProfiler(bool capture_spans = false,
                       size_t max_spans = 1 << 20);

  /// Installs this profiler as the scheduler's profile hook.  The profiler
  /// must outlive the attachment; the scheduler must outlive the profiler's
  /// report calls (tag names live in the scheduler).
  void Attach(desp::Scheduler* scheduler);

  /// Removes the hook (safe if never attached).
  void Detach();

  struct TagStat {
    std::string name;
    uint64_t events = 0;      ///< dispatches attributed to this tag
    double sim_time = 0.0;    ///< simulated time advanced by those events
  };

  /// Per-tag breakdown, sorted by descending simulated time (ties by
  /// name); tags that never fired are omitted.
  std::vector<TagStat> Stats() const;

  uint64_t total_events() const { return total_events_; }
  double total_sim_time() const { return total_sim_time_; }
  uint64_t dropped_spans() const { return dropped_spans_; }

  /// Renders Stats() as an aligned text table with share-of-total columns.
  util::TextTable Table() const;

  /// Chrome-trace ("Trace Event Format") JSON of the captured spans: one
  /// "X" duration event per clock advance on a per-tag track, plus
  /// thread-name metadata.  Timestamps are simulated milliseconds emitted
  /// as microseconds so the viewer's units read naturally.
  std::string ChromeTraceJson() const;

  /// Writes ChromeTraceJson() to `path`.
  void WriteChromeTrace(const std::string& path) const;

 private:
  static void Hook(void* ctx, uint16_t tag, desp::SimTime now,
                   desp::SimTime advance);
  void Record(uint16_t tag, desp::SimTime now, desp::SimTime advance);

  struct Span {
    double start = 0.0;
    double duration = 0.0;
    uint16_t tag = 0;
  };

  desp::Scheduler* scheduler_ = nullptr;
  std::vector<uint64_t> events_;    ///< indexed by tag
  std::vector<double> sim_time_;    ///< indexed by tag
  uint64_t total_events_ = 0;
  double total_sim_time_ = 0.0;
  bool capture_spans_;
  size_t max_spans_;
  uint64_t dropped_spans_ = 0;
  std::vector<Span> spans_;
};

}  // namespace voodb::obs
