#include "obs/metrics.hpp"

#include <utility>

#include "exp/report.hpp"
#include "util/check.hpp"

namespace voodb::obs {

void MetricSnapshot::Merge(const MetricSnapshot& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, tally] : other.gauges) gauges[name].Merge(tally);
  for (const auto& [name, histogram] : other.histograms) {
    const auto it = histograms.find(name);
    if (it == histograms.end()) {
      histograms.emplace(name, histogram);
    } else {
      it->second.Merge(histogram);
    }
  }
}

std::string MetricSnapshot::ToJson() const {
  exp::JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, value] : counters) w.Key(name).Value(value);
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, tally] : gauges) {
    w.Key(name).BeginObject();
    w.Key("mean").Value(tally.mean());
    w.Key("min").Value(tally.min());
    w.Key("max").Value(tally.max());
    w.Key("count").Value(tally.count());
    w.EndObject();
  }
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, histogram] : histograms) {
    w.Key(name).BeginObject();
    w.Key("count").Value(histogram.count());
    w.Key("mean").Value(histogram.mean());
    w.Key("min").Value(histogram.min());
    w.Key("max").Value(histogram.max());
    if (histogram.count() > 0) {
      w.Key("p50").Value(histogram.Quantile(0.5));
      w.Key("p95").Value(histogram.Quantile(0.95));
      w.Key("p99").Value(histogram.Quantile(0.99));
      w.Key("p999").Value(histogram.Quantile(0.999));
    }
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.str();
}

void MetricRegistry::RegisterCounter(const std::string& name,
                                     const uint64_t* cell) {
  VOODB_CHECK_MSG(cell != nullptr, "counter '" << name << "' needs a cell");
  VOODB_CHECK_MSG(counters_.emplace(name, cell).second,
                  "metric '" << name << "' registered twice");
  VOODB_CHECK_MSG(gauges_.count(name) == 0 && histograms_.count(name) == 0,
                  "metric '" << name << "' registered with two kinds");
}

void MetricRegistry::RegisterGauge(const std::string& name,
                                   std::function<double()> probe) {
  VOODB_CHECK_MSG(static_cast<bool>(probe),
                  "gauge '" << name << "' needs a probe");
  VOODB_CHECK_MSG(gauges_.emplace(name, std::move(probe)).second,
                  "metric '" << name << "' registered twice");
  VOODB_CHECK_MSG(counters_.count(name) == 0 && histograms_.count(name) == 0,
                  "metric '" << name << "' registered with two kinds");
}

void MetricRegistry::RegisterHistogram(const std::string& name,
                                       const desp::LogHistogram* histogram) {
  VOODB_CHECK_MSG(histogram != nullptr,
                  "histogram '" << name << "' needs a cell");
  VOODB_CHECK_MSG(histograms_.emplace(name, histogram).second,
                  "metric '" << name << "' registered twice");
  VOODB_CHECK_MSG(counters_.count(name) == 0 && gauges_.count(name) == 0,
                  "metric '" << name << "' registered with two kinds");
}

MetricSnapshot MetricRegistry::Snapshot() const {
  MetricSnapshot snapshot;
  for (const auto& [name, cell] : counters_) snapshot.counters[name] = *cell;
  for (const auto& [name, probe] : gauges_) snapshot.gauges[name].Add(probe());
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.emplace(name, *histogram);
  }
  return snapshot;
}

}  // namespace voodb::obs
