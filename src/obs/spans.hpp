/// \file spans.hpp
/// \brief Causal per-transaction tracing: span trees, critical-path
/// attribution, and tail exemplars.
///
/// Every (sampled) transaction owns a slab-pooled span tree covering its
/// whole lifetime — admission, each attempt, per-access concurrency-control
/// waits, buffer/disk work, network round-trips, commit — built from three
/// sources:
///
///  1. the Transaction Manager opens/closes the structural spans (txn
///     root, attempts, buffer accesses, backoffs) by explicit trace id;
///  2. shared actors (disk, network) emit leaf spans against the
///     scheduler's *ambient* trace context (desp::Scheduler::current_trace),
///     which events inherit exactly like profiling tags, so work performed
///     on behalf of a transaction deep inside an event chain is attributed
///     without those actors knowing anything about transactions;
///  3. concurrency-control protocols annotate the open attempt with the
///     abort cause at decision time.
///
/// On commit the tree is folded into a **critical path**: an exclusive
/// per-component decomposition (lock wait, IO, network, CPU, abort/retry,
/// other) whose fixed-order sum equals the recorded response time exactly
/// (enforced), aggregated into mergeable bit-deterministic LogHistograms.
/// The K slowest transactions additionally retain their full span trees as
/// **exemplars**, exportable as Perfetto/Chrome-trace JSON (`voodb
/// explain`).  Cross-shard sub-transactions carry the parent's 64-bit
/// global trace id and stitch into one distributed trace via flow events.
///
/// The tracer is pure metadata: it never schedules events, draws random
/// numbers, or influences simulation state — traced and untraced runs are
/// bit-identical in every simulation output.  Sampling is a deterministic
/// hash of the transaction id (not an RNG stream), so partial sampling is
/// reproducible and stream-neutral too.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "desp/histogram.hpp"
#include "desp/scheduler.hpp"
#include "util/check.hpp"

namespace voodb::obs {

/// What a span measures.  kTxn is the root (admission to retirement),
/// kAttempt one execution attempt; everything else is nested work.
enum class SpanKind : uint8_t {
  kTxn = 0,  ///< root: admission -> commit retirement
  kAttempt,  ///< one execution attempt (aborted ones carry a cause)
  kCcWait,   ///< concurrency-control grant wait for one object access
  kBuffer,   ///< buffer-manager object access (disk IO nests inside)
  kIo,       ///< one physical disk IO (queueing + service)
  kNet,      ///< one network transfer (queueing + wire time)
  kCpu,      ///< CPU resource usage (queueing + service)
  kCommit,   ///< commit-time lock release / bookkeeping CPU
  kBackoff,  ///< randomized restart backoff between attempts
  kAdmission,  ///< db-scheduler (multiprogramming level) admission wait
};

const char* ToString(SpanKind kind);

/// Why an attempt aborted; annotated by the protocol at decision time.
enum class AbortCause : uint8_t {
  kNone = 0,       ///< attempt committed (or annotation unavailable)
  kNoWait,         ///< no-wait 2PL: lock busy
  kWaitDie,        ///< wait-die: younger requester died
  kDeadlock,       ///< deadlock detection: cycle victim
  kWriteConflict,  ///< MVCC first-committer-wins write conflict
  kValidation,     ///< OCC/MVCC backward validation failure
};

const char* ToString(AbortCause cause);

/// Exclusive per-component decomposition of one committed transaction's
/// response time, in ms.  `other_ms` is defined as the exact floating-point
/// remainder so that Sum() == response holds bit-exactly (see Finalize).
struct CriticalPath {
  double lock_wait_ms = 0.0;  ///< cc grant waits (committed attempt)
  double io_ms = 0.0;         ///< buffer + disk work (committed attempt)
  double net_ms = 0.0;        ///< network transfers (committed attempt)
  double cpu_ms = 0.0;        ///< CPU service + queueing (committed attempt)
  double retry_ms = 0.0;      ///< aborted attempts + restart backoffs
  double other_ms = 0.0;      ///< exact remainder (scheduling gaps)

  /// Adds the components in a fixed left-to-right order; after Finalize
  /// this equals the response time exactly.
  double Sum() const;

  /// Sets other_ms so Sum() == response_ms bit-exactly (bounded fix-up of
  /// floating-point rounding); VOODB_CHECKs success and non-negativity up
  /// to rounding noise.
  void Finalize(double response_ms);
};

/// Mergeable per-component response-time histograms (ms).  One Add per
/// committed sampled transaction per component (zeros land in the
/// underflow bucket, so counts match across components).
struct ComponentHistograms {
  desp::LogHistogram lock_wait;
  desp::LogHistogram io;
  desp::LogHistogram net;
  desp::LogHistogram cpu;
  desp::LogHistogram retry;
  desp::LogHistogram other;

  void Add(const CriticalPath& path);
  void Merge(const ComponentHistograms& other_histograms);
  /// Subtracts a baseline snapshot (bucket-exact; see LogHistogram).
  ComponentHistograms DeltaSince(const ComponentHistograms& baseline) const;
};

/// One retained span, flattened in preorder with its tree depth.
struct ExemplarSpan {
  double begin_ms = 0.0;
  double end_ms = 0.0;
  uint64_t label = 0;  ///< oid for accesses, attempt number for attempts
  SpanKind kind = SpanKind::kTxn;
  AbortCause abort_cause = AbortCause::kNone;
  uint8_t depth = 0;
};

/// A retained slow transaction: its identity, critical path, and full
/// span tree (preorder).
struct Exemplar {
  uint64_t global_id = 0;         ///< shard << 48 | first attempt txn id
  uint64_t parent_global_id = 0;  ///< 0, or the cross-shard parent trace
  double admitted_at_ms = 0.0;
  double response_ms = 0.0;
  CriticalPath path;
  std::vector<ExemplarSpan> spans;
};

/// Deterministic exemplar order: slowest first, ties by lower global id.
bool ExemplarBefore(const Exemplar& a, const Exemplar& b);

/// Merges already-sorted exemplar lists (e.g. one per shard, folded in
/// shard order) keeping the `k` slowest; deterministic.
std::vector<Exemplar> MergeExemplars(std::vector<Exemplar> a,
                                     const std::vector<Exemplar>& b, size_t k);

/// The per-system span tracer.  All storage is slab-pooled: span nodes and
/// trace slots are recycled on commit, so steady-state tracing performs no
/// allocation (exemplar retention copies out at most K trees).
class SpanTracer {
 public:
  struct Options {
    uint64_t sample_seed = 0;     ///< hash seed (the system seed)
    double sample_rate = 1.0;     ///< fraction of transactions traced
    uint32_t exemplars = 8;       ///< K slowest span trees retained
    uint64_t global_id_base = 0;  ///< OR-ed onto txn ids (shard << 48)
  };

  SpanTracer(desp::Scheduler* scheduler, Options options);

  SpanTracer(const SpanTracer&) = delete;
  SpanTracer& operator=(const SpanTracer&) = delete;

  /// Pre-sizes the trace and span slabs (n concurrent traces).
  void Reserve(size_t traces);

  /// Deterministic sampling decision: stable hash of (seed, txn_id)
  /// against the rate — no RNG stream is consumed.
  static bool Sampled(uint64_t seed, uint64_t txn_id, double rate);

  // --- Lifecycle (driven by the Transaction Manager) ---------------------

  /// Starts a trace for a newly admitted transaction; opens the kTxn root
  /// at `admitted_at`.  Returns the trace context id to stamp into the
  /// scheduler (0 = not sampled: every later call on id 0 is a no-op).
  /// Consumes a pending cross-shard parent set via SetPendingParent.
  uint32_t BeginTrace(uint64_t txn_id, double admitted_at);

  /// Declares the next BeginTrace a sub-transaction of `parent_global_id`
  /// (a remote shard's trace); used by cross-shard drivers.
  void SetPendingParent(uint64_t parent_global_id);

  /// Takes (and clears) the pending parent.  The Transaction Manager
  /// claims it at Submit time and re-sets it just before BeginTrace, so a
  /// sub-transaction queued at the db scheduler cannot leak its parent to
  /// whatever other transaction is admitted first.
  uint64_t TakePendingParent() {
    const uint64_t parent = pending_parent_;
    pending_parent_ = 0;
    return parent;
  }

  // The per-access hot path (Open/Close/Leaf and the Resolve/slab helpers
  // below) is defined inline: at full sampling these run a few times per
  // object access, and the <3% overhead gate leaves no room for a
  // cross-TU call per span.

  /// Opens a child span under the innermost open span.
  void Open(uint32_t trace, SpanKind kind, uint64_t label, double at) {
    Trace* t = Resolve(trace);
    if (t == nullptr) return;
    t->open = AppendChild(*t, kind, label, at);
  }

  /// Closes the innermost open span.
  void Close(uint32_t trace, double at) {
    Trace* t = Resolve(trace);
    if (t == nullptr) return;
    VOODB_CHECK_MSG(t->open != kNone && t->open != t->root,
                    "span close without a matching open");
    Span& span = spans_[t->open];
    span.end = at;
    t->open = span.parent;
  }

  /// Adds an already-closed child span under the innermost open span.
  /// Back-to-back leaves of the same kind and label (e.g. consecutive CPU
  /// slices with nothing between them in simulated time) extend the
  /// previous sibling instead of allocating a new span: component sums are
  /// unchanged, trees stay readable, and full-rate tracing stays cheap.
  void Leaf(uint32_t trace, SpanKind kind, uint64_t label, double begin,
            double end) {
    Trace* t = Resolve(trace);
    if (t == nullptr) return;
    if (t->open != kNone) {
      const uint32_t last = spans_[t->open].last_child;
      if (last != kNone) {
        Span& prev = spans_[last];
        if (prev.kind == kind && prev.label == label && prev.end == begin &&
            prev.first_child == kNone) {
          prev.end = end;
          return;
        }
      }
    }
    const uint32_t index = AppendChild(*t, kind, label, begin);
    spans_[index].end = end;
  }

  /// Annotates the innermost open kAttempt span with an abort cause.
  void NoteAbort(uint32_t trace, AbortCause cause);
  /// Same, against the scheduler's ambient trace context (for protocols,
  /// whose decision sites run inside the requester's event).
  void NoteAbortAmbient(AbortCause cause);

  /// Ambient-context leaf (for shared actors: disk, network).
  void AmbientLeaf(SpanKind kind, uint64_t label, double begin, double end) {
    const uint32_t trace = scheduler_->current_trace();
    if (trace != 0) Leaf(trace, kind, label, begin, end);
  }

  /// Commit retirement: closes any open spans, folds the tree into the
  /// component histograms (Sum()==response enforced), retains the tree as
  /// an exemplar when it ranks among the K slowest, recycles the slab
  /// nodes.  `end` is the retirement time; response = end - admitted_at
  /// as computed by the caller (passed in to match its rounding exactly).
  void FinishCommitted(uint32_t trace, double response_ms, double end);

  /// The global (cross-shard) id for a live trace.
  uint64_t GlobalId(uint32_t trace) const;
  /// Global id of the most recently finished trace (for drivers that
  /// stitch follow-up work to the transaction that just committed).
  uint64_t last_finished_global_id() const {
    return last_finished_global_id_;
  }

  // --- Results -----------------------------------------------------------

  const ComponentHistograms& components() const { return components_; }
  /// Slowest-first, at most Options::exemplars entries.
  const std::vector<Exemplar>& exemplars() const { return exemplars_; }
  uint64_t traces_started() const { return traces_started_; }
  uint64_t traces_finished() const { return traces_finished_; }
  const Options& options() const { return options_; }

  // --- Export ------------------------------------------------------------

  /// Chrome-trace ("Perfetto") JSON: one thread lane per exemplar, "X"
  /// duration events per span (ms rendered as µs timestamps), flow events
  /// stitching cross-shard sub-transactions to their parents.
  static std::string PerfettoJson(const std::vector<Exemplar>& exemplars);

  /// Human-readable breakdown of one exemplar (indented span tree plus
  /// the critical-path components) to `os`.
  static void WriteBreakdown(std::ostream& os, const Exemplar& exemplar);

 private:
  static constexpr uint32_t kNone = UINT32_MAX;

  struct Span {
    double begin = 0.0;
    double end = 0.0;
    uint64_t label = 0;
    uint32_t parent = kNone;
    uint32_t first_child = kNone;
    uint32_t last_child = kNone;
    uint32_t next_sibling = kNone;
    SpanKind kind = SpanKind::kTxn;
    AbortCause cause = AbortCause::kNone;
  };

  struct Trace {
    uint32_t root = kNone;
    uint32_t open = kNone;  ///< innermost open span (chain via parent)
    uint32_t next_free = kNone;
    uint32_t generation = 0;  ///< survives slot reuse; part of the ctx id
    bool live = false;
    uint64_t txn_id = 0;
    uint64_t parent_global_id = 0;
    double admitted_at = 0.0;
  };

  uint32_t AllocSpan() {
    if (span_free_head_ != kNone) {
      const uint32_t span = span_free_head_;
      span_free_head_ = spans_[span].first_child;  // free-list link (FreeTree)
      return span;
    }
    spans_.emplace_back();
    return static_cast<uint32_t>(spans_.size() - 1);
  }

  void FreeTree(uint32_t span);

  uint32_t AppendChild(Trace& t, SpanKind kind, uint64_t label, double begin) {
    const uint32_t index = AllocSpan();
    Span& span = spans_[index];
    span = Span{};
    span.begin = begin;
    span.kind = kind;
    span.label = label;
    span.parent = t.open;
    if (t.open != kNone) {
      Span& parent = spans_[t.open];
      if (parent.last_child == kNone) {
        parent.first_child = index;
      } else {
        spans_[parent.last_child].next_sibling = index;
      }
      parent.last_child = index;
    }
    return index;
  }

  Trace* Resolve(uint32_t trace) {
    if (trace == 0) return nullptr;
    const uint32_t index = (trace & 0xFFFFu) - 1u;
    const uint32_t generation = trace >> 16;
    if (index >= traces_.size()) return nullptr;
    Trace& t = traces_[index];
    if (!t.live || t.generation != generation) return nullptr;
    return &t;
  }
  /// Exclusive critical-path walk of a committed attempt subtree.
  void WalkExclusive(uint32_t span, CriticalPath* path) const;
  void FoldTrace(const Trace& t, double response_ms, CriticalPath* path) const;
  void MaybeRetain(const Trace& t, double response_ms,
                   const CriticalPath& path);
  void Flatten(uint32_t span, uint8_t depth,
               std::vector<ExemplarSpan>* out) const;

  desp::Scheduler* scheduler_;
  Options options_;
  std::vector<Span> spans_;
  uint32_t span_free_head_ = kNone;
  std::vector<Trace> traces_;
  uint32_t trace_free_head_ = kNone;
  uint64_t pending_parent_ = 0;
  uint64_t last_finished_global_id_ = 0;
  uint64_t traces_started_ = 0;
  uint64_t traces_finished_ = 0;
  ComponentHistograms components_;
  std::vector<Exemplar> exemplars_;  ///< kept sorted (ExemplarBefore)
};

}  // namespace voodb::obs
