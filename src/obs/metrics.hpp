/// \file metrics.hpp
/// \brief Run-wide metric registry: named counters, gauges, and histograms.
///
/// Observability without touching the hot path: actors keep updating their
/// own plain member counters and `desp::LogHistogram`s exactly as before
/// (an inline `++member` — no hashing, no indirection, no allocation), and
/// merely *register* pointers to those cells here at construction time.
/// A `Snapshot()` then reads every registered cell at once, producing a
/// deterministic, name-sorted view that can be merged across replications
/// bit-identically (counters add exactly, gauges combine through
/// `desp::Tally::Merge`, histograms through `desp::LogHistogram::Merge`).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "desp/histogram.hpp"
#include "desp/stats.hpp"

namespace voodb::obs {

/// A deterministic point-in-time view of every registered metric.
///
/// Merging snapshots from independent replications is order-deterministic:
/// the maps iterate in name order and each value type has an exact (or
/// parallel-combinable) merge, so reducing N snapshots in replication order
/// yields bit-identical results at any thread count.
struct MetricSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, desp::Tally> gauges;  ///< one observation per snapshot
  std::map<std::string, desp::LogHistogram> histograms;

  /// Folds `other` into this snapshot (counters add, gauges and histograms
  /// merge).  Metric sets need not match; missing entries are inserted.
  void Merge(const MetricSnapshot& other);

  /// Serializes the snapshot as a JSON object: counters as integers,
  /// gauges as {mean, min, max, count}, histograms as
  /// {count, mean, min, max, p50, p95, p99, p999}.
  std::string ToJson() const;
};

/// Registry of named metric handles.
///
/// Registration stores *pointers* into the owning actor; the actor's update
/// path is untouched (zero overhead).  Cells must outlive the registry use:
/// actors and the registry share the owning system's lifetime.
class MetricRegistry {
 public:
  /// Registers a monotonic counter read through `cell`.
  void RegisterCounter(const std::string& name, const uint64_t* cell);

  /// Registers a gauge sampled by calling `probe` at snapshot time (for
  /// derived or non-integer values: utilizations, ratios, clock readings).
  void RegisterGauge(const std::string& name, std::function<double()> probe);

  /// Registers a full distribution read through `histogram`.
  void RegisterHistogram(const std::string& name,
                         const desp::LogHistogram* histogram);

  /// Reads every registered cell; deterministic (name-sorted) contents.
  MetricSnapshot Snapshot() const;

  size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

 private:
  std::map<std::string, const uint64_t*> counters_;
  std::map<std::string, std::function<double()>> gauges_;
  std::map<std::string, const desp::LogHistogram*> histograms_;
};

}  // namespace voodb::obs
