#include "obs/profiler.hpp"

#include <algorithm>
#include <map>

#include "exp/report.hpp"
#include "util/check.hpp"

namespace voodb::obs {

SimProfiler::SimProfiler(bool capture_spans, size_t max_spans)
    : capture_spans_(capture_spans), max_spans_(max_spans) {}

void SimProfiler::Attach(desp::Scheduler* scheduler, std::string name) {
  VOODB_CHECK_MSG(scheduler != nullptr, "profiler needs a scheduler");
  for (const std::unique_ptr<Attachment>& attachment : attachments_) {
    VOODB_CHECK_MSG(attachment->scheduler != scheduler,
                    "scheduler already attached to this profiler");
  }
  auto attachment = std::make_unique<Attachment>();
  attachment->scheduler = scheduler;
  attachment->name = std::move(name);
  attachment->owner = this;
  scheduler->SetProfileHook(&SimProfiler::Hook, attachment.get());
  attachments_.push_back(std::move(attachment));
}

void SimProfiler::Detach() {
  for (const std::unique_ptr<Attachment>& attachment : attachments_) {
    attachment->scheduler->SetProfileHook(nullptr, nullptr);
  }
}

void SimProfiler::Hook(void* ctx, uint16_t tag, desp::SimTime now,
                       desp::SimTime advance) {
  // ctx is the per-scheduler attachment: partitions running on different
  // worker threads record into disjoint state, no synchronization needed.
  auto* attachment = static_cast<Attachment*>(ctx);
  if (tag >= attachment->events.size()) {
    attachment->events.resize(tag + 1, 0);
    attachment->sim_time.resize(tag + 1, 0.0);
  }
  ++attachment->events[tag];
  attachment->sim_time[tag] += advance;
  ++attachment->total_events;
  attachment->total_sim_time += advance;
  if (attachment->owner->capture_spans_) {
    if (attachment->spans.size() < attachment->owner->max_spans_) {
      attachment->spans.push_back(Span{now - advance, advance, tag});
    } else {
      ++attachment->dropped_spans;
    }
  }
}

std::vector<SimProfiler::TagStat> SimProfiler::Stats() const {
  VOODB_CHECK_MSG(!attachments_.empty(), "profiler was never attached");
  // Merge by tag *name*: the same actor name may intern to different tag
  // ids on different partitions.  std::map iteration gives the ascending
  // name order the report promises.
  std::map<std::string, TagStat> merged;
  for (const std::unique_ptr<Attachment>& attachment : attachments_) {
    const std::vector<std::string>& names =
        attachment->scheduler->profile_tag_names();
    for (size_t tag = 0; tag < attachment->events.size(); ++tag) {
      if (attachment->events[tag] == 0) continue;
      const std::string& name =
          tag < names.size() ? names[tag] : std::string("unknown");
      TagStat& stat = merged[name];
      stat.name = name;
      stat.events += attachment->events[tag];
      stat.sim_time += attachment->sim_time[tag];
    }
  }
  std::vector<TagStat> stats;
  stats.reserve(merged.size());
  for (auto& entry : merged) stats.push_back(std::move(entry.second));
  return stats;
}

uint64_t SimProfiler::total_events() const {
  uint64_t total = 0;
  for (const std::unique_ptr<Attachment>& a : attachments_) {
    total += a->total_events;
  }
  return total;
}

double SimProfiler::total_sim_time() const {
  double total = 0.0;
  for (const std::unique_ptr<Attachment>& a : attachments_) {
    total += a->total_sim_time;
  }
  return total;
}

uint64_t SimProfiler::dropped_spans() const {
  uint64_t total = 0;
  for (const std::unique_ptr<Attachment>& a : attachments_) {
    total += a->dropped_spans;
  }
  return total;
}

util::TextTable SimProfiler::Table() const {
  util::TextTable table(
      {"Actor", "Events", "Events %", "Sim time (ms)", "Time %"});
  const uint64_t events_total = total_events();
  const double time_total = total_sim_time();
  for (const TagStat& stat : Stats()) {
    const double event_share =
        events_total == 0
            ? 0.0
            : 100.0 * static_cast<double>(stat.events) /
                  static_cast<double>(events_total);
    const double time_share =
        time_total <= 0.0 ? 0.0 : 100.0 * stat.sim_time / time_total;
    table.AddRow({stat.name, std::to_string(stat.events),
                  util::FormatDouble(event_share, 1),
                  util::FormatDouble(stat.sim_time, 3),
                  util::FormatDouble(time_share, 1)});
  }
  return table;
}

std::string SimProfiler::ChromeTraceJson() const {
  VOODB_CHECK_MSG(!attachments_.empty(), "profiler was never attached");
  exp::JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit").Value("ms");
  w.Key("traceEvents").BeginArray();
  for (size_t i = 0; i < attachments_.size(); ++i) {
    const Attachment& attachment = *attachments_[i];
    const uint64_t pid = i + 1;
    const std::vector<std::string>& names =
        attachment.scheduler->profile_tag_names();
    if (!attachment.name.empty()) {
      w.BeginObject();
      w.Key("ph").Value("M");
      w.Key("name").Value("process_name");
      w.Key("pid").Value(pid);
      w.Key("args").BeginObject();
      w.Key("name").Value(attachment.name);
      w.EndObject();
      w.EndObject();
    }
    for (size_t tag = 0; tag < attachment.events.size(); ++tag) {
      if (attachment.events[tag] == 0) continue;
      w.BeginObject();
      w.Key("ph").Value("M");
      w.Key("name").Value("thread_name");
      w.Key("pid").Value(pid);
      w.Key("tid").Value(static_cast<uint64_t>(tag));
      w.Key("args").BeginObject();
      w.Key("name").Value(tag < names.size() ? names[tag] : "unknown");
      w.EndObject();
      w.EndObject();
    }
    for (const Span& span : attachment.spans) {
      w.BeginObject();
      w.Key("ph").Value("X");
      w.Key("name").Value(span.tag < names.size() ? names[span.tag]
                                                  : "unknown");
      w.Key("pid").Value(pid);
      w.Key("tid").Value(static_cast<uint64_t>(span.tag));
      // Simulated milliseconds emitted as trace microseconds.
      w.Key("ts").Value(span.start * 1000.0);
      w.Key("dur").Value(span.duration * 1000.0);
      w.EndObject();
    }
  }
  w.EndArray();
  w.Key("otherData").BeginObject();
  w.Key("total_events").Value(total_events());
  w.Key("total_sim_time_ms").Value(total_sim_time());
  w.Key("dropped_spans").Value(dropped_spans());
  w.EndObject();
  w.EndObject();
  return w.str();
}

void SimProfiler::WriteChromeTrace(const std::string& path) const {
  exp::WriteFile(path, ChromeTraceJson());
}

}  // namespace voodb::obs
