#include "obs/profiler.hpp"

#include <algorithm>

#include "exp/report.hpp"
#include "util/check.hpp"

namespace voodb::obs {

SimProfiler::SimProfiler(bool capture_spans, size_t max_spans)
    : capture_spans_(capture_spans), max_spans_(max_spans) {}

void SimProfiler::Attach(desp::Scheduler* scheduler) {
  VOODB_CHECK_MSG(scheduler != nullptr, "profiler needs a scheduler");
  scheduler_ = scheduler;
  scheduler_->SetProfileHook(&SimProfiler::Hook, this);
}

void SimProfiler::Detach() {
  if (scheduler_ != nullptr) scheduler_->SetProfileHook(nullptr, nullptr);
}

void SimProfiler::Hook(void* ctx, uint16_t tag, desp::SimTime now,
                       desp::SimTime advance) {
  static_cast<SimProfiler*>(ctx)->Record(tag, now, advance);
}

void SimProfiler::Record(uint16_t tag, desp::SimTime now,
                         desp::SimTime advance) {
  if (tag >= events_.size()) {
    events_.resize(tag + 1, 0);
    sim_time_.resize(tag + 1, 0.0);
  }
  ++events_[tag];
  sim_time_[tag] += advance;
  ++total_events_;
  total_sim_time_ += advance;
  if (capture_spans_) {
    if (spans_.size() < max_spans_) {
      spans_.push_back(Span{now - advance, advance, tag});
    } else {
      ++dropped_spans_;
    }
  }
}

std::vector<SimProfiler::TagStat> SimProfiler::Stats() const {
  VOODB_CHECK_MSG(scheduler_ != nullptr, "profiler was never attached");
  const std::vector<std::string>& names = scheduler_->profile_tag_names();
  std::vector<TagStat> stats;
  for (size_t tag = 0; tag < events_.size(); ++tag) {
    if (events_[tag] == 0) continue;
    TagStat stat;
    stat.name = tag < names.size() ? names[tag] : "unknown";
    stat.events = events_[tag];
    stat.sim_time = sim_time_[tag];
    stats.push_back(std::move(stat));
  }
  std::sort(stats.begin(), stats.end(),
            [](const TagStat& a, const TagStat& b) {
              if (a.sim_time != b.sim_time) return a.sim_time > b.sim_time;
              return a.name < b.name;
            });
  return stats;
}

util::TextTable SimProfiler::Table() const {
  util::TextTable table(
      {"Actor", "Events", "Events %", "Sim time (ms)", "Time %"});
  for (const TagStat& stat : Stats()) {
    const double event_share =
        total_events_ == 0
            ? 0.0
            : 100.0 * static_cast<double>(stat.events) /
                  static_cast<double>(total_events_);
    const double time_share =
        total_sim_time_ <= 0.0 ? 0.0 : 100.0 * stat.sim_time / total_sim_time_;
    table.AddRow({stat.name, std::to_string(stat.events),
                  util::FormatDouble(event_share, 1),
                  util::FormatDouble(stat.sim_time, 3),
                  util::FormatDouble(time_share, 1)});
  }
  return table;
}

std::string SimProfiler::ChromeTraceJson() const {
  VOODB_CHECK_MSG(scheduler_ != nullptr, "profiler was never attached");
  const std::vector<std::string>& names = scheduler_->profile_tag_names();
  exp::JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit").Value("ms");
  w.Key("traceEvents").BeginArray();
  for (size_t tag = 0; tag < events_.size(); ++tag) {
    if (events_[tag] == 0) continue;
    w.BeginObject();
    w.Key("ph").Value("M");
    w.Key("name").Value("thread_name");
    w.Key("pid").Value(1);
    w.Key("tid").Value(static_cast<uint64_t>(tag));
    w.Key("args").BeginObject();
    w.Key("name").Value(tag < names.size() ? names[tag] : "unknown");
    w.EndObject();
    w.EndObject();
  }
  for (const Span& span : spans_) {
    w.BeginObject();
    w.Key("ph").Value("X");
    w.Key("name").Value(span.tag < names.size() ? names[span.tag]
                                                : "unknown");
    w.Key("pid").Value(1);
    w.Key("tid").Value(static_cast<uint64_t>(span.tag));
    // Simulated milliseconds emitted as trace microseconds.
    w.Key("ts").Value(span.start * 1000.0);
    w.Key("dur").Value(span.duration * 1000.0);
    w.EndObject();
  }
  w.EndArray();
  w.Key("otherData").BeginObject();
  w.Key("total_events").Value(total_events_);
  w.Key("total_sim_time_ms").Value(total_sim_time_);
  w.Key("dropped_spans").Value(dropped_spans_);
  w.EndObject();
  w.EndObject();
  return w.str();
}

void SimProfiler::WriteChromeTrace(const std::string& path) const {
  exp::WriteFile(path, ChromeTraceJson());
}

}  // namespace voodb::obs
