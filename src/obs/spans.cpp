#include "obs/spans.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <utility>

#include "util/check.hpp"

namespace voodb::obs {

namespace {

/// SplitMix64: a stateless, well-mixed 64-bit hash.  Used for the sampling
/// decision so tracing never touches the simulation's RandomStream state.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

enum class Component { kLockWait, kIo, kNet, kCpu, kRetry, kOther };

Component ComponentOf(SpanKind kind) {
  switch (kind) {
    case SpanKind::kCcWait:
      return Component::kLockWait;
    case SpanKind::kBuffer:
    case SpanKind::kIo:
      return Component::kIo;
    case SpanKind::kNet:
      return Component::kNet;
    case SpanKind::kCpu:
    case SpanKind::kCommit:
      return Component::kCpu;
    case SpanKind::kBackoff:
      return Component::kRetry;
    case SpanKind::kTxn:
    case SpanKind::kAttempt:
    case SpanKind::kAdmission:
      return Component::kOther;
  }
  return Component::kOther;
}

void AddTo(CriticalPath* path, Component component, double ms) {
  switch (component) {
    case Component::kLockWait:
      path->lock_wait_ms += ms;
      break;
    case Component::kIo:
      path->io_ms += ms;
      break;
    case Component::kNet:
      path->net_ms += ms;
      break;
    case Component::kCpu:
      path->cpu_ms += ms;
      break;
    case Component::kRetry:
      path->retry_ms += ms;
      break;
    case Component::kOther:
      break;  // the remainder; computed by Finalize
  }
}

std::string Num(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f", value);
  return buffer;
}

}  // namespace

const char* ToString(SpanKind kind) {
  switch (kind) {
    case SpanKind::kTxn:
      return "txn";
    case SpanKind::kAttempt:
      return "attempt";
    case SpanKind::kCcWait:
      return "cc_wait";
    case SpanKind::kBuffer:
      return "buffer";
    case SpanKind::kIo:
      return "disk_io";
    case SpanKind::kNet:
      return "net";
    case SpanKind::kCpu:
      return "cpu";
    case SpanKind::kCommit:
      return "commit";
    case SpanKind::kBackoff:
      return "backoff";
    case SpanKind::kAdmission:
      return "admission";
  }
  return "?";
}

const char* ToString(AbortCause cause) {
  switch (cause) {
    case AbortCause::kNone:
      return "none";
    case AbortCause::kNoWait:
      return "no_wait";
    case AbortCause::kWaitDie:
      return "wait_die";
    case AbortCause::kDeadlock:
      return "deadlock";
    case AbortCause::kWriteConflict:
      return "write_conflict";
    case AbortCause::kValidation:
      return "validation";
  }
  return "?";
}

double CriticalPath::Sum() const {
  // The exact order Finalize used; do not reassociate.
  return ((((lock_wait_ms + io_ms) + net_ms) + cpu_ms) + retry_ms) + other_ms;
}

void CriticalPath::Finalize(double response_ms) {
  const double rest = (((lock_wait_ms + io_ms) + net_ms) + cpu_ms) + retry_ms;
  other_ms = response_ms - rest;
  // rest + other need not round back to response exactly; nudge other by
  // the residual until it does (converges in <= a couple of steps because
  // every component is a sub-interval of the response).
  for (int i = 0; i < 4 && rest + other_ms != response_ms; ++i) {
    other_ms += response_ms - (rest + other_ms);
  }
  VOODB_CHECK_MSG(Sum() == response_ms,
                  "critical-path components failed to sum to the response ("
                      << Sum() << " vs " << response_ms << " ms)");
  VOODB_CHECK_MSG(other_ms >= -1e-6 * std::max(1.0, response_ms),
                  "critical-path components exceed the response time (other="
                      << other_ms << " ms of " << response_ms << " ms)");
}

void ComponentHistograms::Add(const CriticalPath& path) {
  lock_wait.Add(path.lock_wait_ms);
  io.Add(path.io_ms);
  net.Add(path.net_ms);
  cpu.Add(path.cpu_ms);
  retry.Add(path.retry_ms);
  other.Add(path.other_ms);
}

void ComponentHistograms::Merge(const ComponentHistograms& other_histograms) {
  lock_wait.Merge(other_histograms.lock_wait);
  io.Merge(other_histograms.io);
  net.Merge(other_histograms.net);
  cpu.Merge(other_histograms.cpu);
  retry.Merge(other_histograms.retry);
  other.Merge(other_histograms.other);
}

ComponentHistograms ComponentHistograms::DeltaSince(
    const ComponentHistograms& baseline) const {
  ComponentHistograms delta;
  delta.lock_wait = lock_wait.DeltaSince(baseline.lock_wait);
  delta.io = io.DeltaSince(baseline.io);
  delta.net = net.DeltaSince(baseline.net);
  delta.cpu = cpu.DeltaSince(baseline.cpu);
  delta.retry = retry.DeltaSince(baseline.retry);
  delta.other = other.DeltaSince(baseline.other);
  return delta;
}

bool ExemplarBefore(const Exemplar& a, const Exemplar& b) {
  if (a.response_ms != b.response_ms) return a.response_ms > b.response_ms;
  return a.global_id < b.global_id;
}

std::vector<Exemplar> MergeExemplars(std::vector<Exemplar> a,
                                     const std::vector<Exemplar>& b,
                                     size_t k) {
  a.insert(a.end(), b.begin(), b.end());
  std::stable_sort(a.begin(), a.end(), ExemplarBefore);
  if (a.size() > k) a.resize(k);
  return a;
}

SpanTracer::SpanTracer(desp::Scheduler* scheduler, Options options)
    : scheduler_(scheduler), options_(options) {
  VOODB_CHECK_MSG(scheduler_ != nullptr, "span tracer needs a scheduler");
  if (options_.exemplars > 0) exemplars_.reserve(options_.exemplars + 1);
}

void SpanTracer::Reserve(size_t traces) {
  traces_.reserve(traces);
  // A transaction's chain keeps only a handful of spans open at once, but
  // closed leaves accumulate until retirement: size generously.
  spans_.reserve(traces * 16);
}

bool SpanTracer::Sampled(uint64_t seed, uint64_t txn_id, double rate) {
  if (rate >= 1.0) return true;
  if (rate <= 0.0) return false;
  const uint64_t hash = SplitMix64(seed ^ (txn_id * 0xD1B54A32D192ED03ULL));
  // Compare the hash against rate * 2^64 without overflowing: use the top
  // 53 bits as a uniform double in [0, 1).
  const double u =
      static_cast<double>(hash >> 11) * (1.0 / 9007199254740992.0);
  return u < rate;
}

uint32_t SpanTracer::BeginTrace(uint64_t txn_id, double admitted_at) {
  const uint64_t parent = pending_parent_;
  pending_parent_ = 0;
  if (!Sampled(options_.sample_seed, txn_id, options_.sample_rate)) return 0;
  uint32_t index;
  if (trace_free_head_ != kNone) {
    index = trace_free_head_;
    trace_free_head_ = traces_[index].next_free;
  } else {
    VOODB_CHECK_MSG(traces_.size() < 0xFFFE,
                    "span tracer: too many concurrent traces");
    index = static_cast<uint32_t>(traces_.size());
    traces_.emplace_back();
  }
  Trace& t = traces_[index];
  const uint32_t generation = (t.generation + 1u) & 0xFFFFu;
  t = Trace{};
  t.generation = generation;
  t.live = true;
  t.txn_id = txn_id;
  t.parent_global_id = parent;
  t.admitted_at = admitted_at;
  const uint32_t ctx = (generation << 16) | (index + 1u);
  ++traces_started_;
  // Open the root span; attempts are opened by the Transaction Manager.
  const uint32_t root = AllocSpan();
  Span& span = spans_[root];
  span = Span{};
  span.begin = admitted_at;
  span.kind = SpanKind::kTxn;
  span.label = txn_id;
  t.root = root;
  t.open = root;
  return ctx;
}

void SpanTracer::SetPendingParent(uint64_t parent_global_id) {
  pending_parent_ = parent_global_id;
}

void SpanTracer::FreeTree(uint32_t span) {
  uint32_t child = spans_[span].first_child;
  while (child != kNone) {
    const uint32_t next = spans_[child].next_sibling;
    FreeTree(child);
    child = next;
  }
  spans_[span].first_child = span_free_head_;  // reuse as next_free link
  span_free_head_ = span;
}

void SpanTracer::NoteAbort(uint32_t trace, AbortCause cause) {
  Trace* t = Resolve(trace);
  if (t == nullptr) return;
  // Annotate the innermost open attempt (the open chain runs root-ward).
  for (uint32_t s = t->open; s != kNone; s = spans_[s].parent) {
    if (spans_[s].kind == SpanKind::kAttempt) {
      spans_[s].cause = cause;
      return;
    }
  }
}

void SpanTracer::NoteAbortAmbient(AbortCause cause) {
  NoteAbort(scheduler_->current_trace(), cause);
}

uint64_t SpanTracer::GlobalId(uint32_t trace) const {
  // Resolve is non-const only because it returns a mutable Trace.
  SpanTracer* self = const_cast<SpanTracer*>(this);
  const Trace* t = self->Resolve(trace);
  if (t == nullptr) return 0;
  return options_.global_id_base | t->txn_id;
}

void SpanTracer::WalkExclusive(uint32_t span, CriticalPath* path) const {
  const Span& s = spans_[span];
  double child_sum = 0.0;
  for (uint32_t child = s.first_child; child != kNone;
       child = spans_[child].next_sibling) {
    child_sum += spans_[child].end - spans_[child].begin;
    WalkExclusive(child, path);
  }
  const double exclusive = std::max(0.0, (s.end - s.begin) - child_sum);
  AddTo(path, ComponentOf(s.kind), exclusive);
}

void SpanTracer::FoldTrace(const Trace& t, double response_ms,
                           CriticalPath* path) const {
  (void)response_ms;
  const Span& root = spans_[t.root];
  for (uint32_t child = root.first_child; child != kNone;
       child = spans_[child].next_sibling) {
    const Span& s = spans_[child];
    const double duration = s.end - s.begin;
    if (s.kind == SpanKind::kAttempt && s.cause != AbortCause::kNone) {
      // A whole aborted attempt is wasted work: everything it did —
      // waits, IO, CPU — is redo cost, not useful-path time.
      path->retry_ms += std::max(0.0, duration);
    } else if (s.kind == SpanKind::kBackoff) {
      path->retry_ms += std::max(0.0, duration);
    } else {
      WalkExclusive(child, path);
    }
  }
}

void SpanTracer::MaybeRetain(const Trace& t, double response_ms,
                             const CriticalPath& path) {
  if (options_.exemplars == 0) return;
  Exemplar exemplar;
  exemplar.global_id = options_.global_id_base | t.txn_id;
  exemplar.parent_global_id = t.parent_global_id;
  exemplar.admitted_at_ms = t.admitted_at;
  exemplar.response_ms = response_ms;
  exemplar.path = path;
  if (exemplars_.size() >= options_.exemplars &&
      !ExemplarBefore(exemplar, exemplars_.back())) {
    return;
  }
  Flatten(t.root, 0, &exemplar.spans);
  const auto position = std::upper_bound(
      exemplars_.begin(), exemplars_.end(), exemplar, ExemplarBefore);
  exemplars_.insert(position, std::move(exemplar));
  if (exemplars_.size() > options_.exemplars) exemplars_.pop_back();
}

void SpanTracer::Flatten(uint32_t span, uint8_t depth,
                         std::vector<ExemplarSpan>* out) const {
  const Span& s = spans_[span];
  ExemplarSpan flat;
  flat.begin_ms = s.begin;
  flat.end_ms = s.end;
  flat.label = s.label;
  flat.kind = s.kind;
  flat.abort_cause = s.cause;
  flat.depth = depth;
  out->push_back(flat);
  for (uint32_t child = s.first_child; child != kNone;
       child = spans_[child].next_sibling) {
    Flatten(child, static_cast<uint8_t>(depth + 1), out);
  }
}

void SpanTracer::FinishCommitted(uint32_t trace, double response_ms,
                                 double end) {
  if (trace == 0) {
    // An unsampled transaction retired: clear the stitch anchor so a
    // cross-shard driver never attaches a sub-transaction to an older,
    // unrelated trace.
    last_finished_global_id_ = 0;
    return;
  }
  Trace* t = Resolve(trace);
  if (t == nullptr) return;
  // Close anything still open (normally just the root; the committed
  // attempt is closed by the Transaction Manager before retirement).
  while (t->open != kNone) {
    spans_[t->open].end = end;
    t->open = spans_[t->open].parent;
  }
  CriticalPath path;
  FoldTrace(*t, response_ms, &path);
  path.Finalize(response_ms);
  components_.Add(path);
  MaybeRetain(*t, response_ms, path);
  last_finished_global_id_ = options_.global_id_base | t->txn_id;
  ++traces_finished_;
  FreeTree(t->root);
  t->live = false;
  t->root = kNone;
  const uint32_t index = (trace & 0xFFFFu) - 1u;
  t->next_free = trace_free_head_;
  trace_free_head_ = index;
}

/// "txn 17" on a single server, "shard 2 txn 17" with shard<<48 bases.
static std::string GlobalIdText(uint64_t global_id) {
  const uint64_t shard = global_id >> 48;
  const uint64_t txn = global_id & ((uint64_t{1} << 48) - 1);
  if (shard == 0) return "txn " + std::to_string(txn);
  return "shard " + std::to_string(shard) + " txn " + std::to_string(txn);
}

std::string SpanTracer::PerfettoJson(const std::vector<Exemplar>& exemplars) {
  std::string json;
  json.reserve(4096);
  json += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  json +=
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"name\":\"voodb tail exemplars\"}}";
  for (size_t i = 0; i < exemplars.size(); ++i) {
    const Exemplar& e = exemplars[i];
    const uint64_t pid = e.global_id >> 48;
    const uint64_t tid = i + 1;
    json += ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" +
            std::to_string(pid) + ",\"tid\":" + std::to_string(tid) +
            ",\"args\":{\"name\":\"" + GlobalIdText(e.global_id) + " (" +
            Num(e.response_ms) + " ms)\"}}";
    for (const ExemplarSpan& s : e.spans) {
      json += ",\n{\"name\":\"" + std::string(ToString(s.kind)) +
              "\",\"cat\":\"span\",\"ph\":\"X\",\"pid\":" +
              std::to_string(pid) + ",\"tid\":" + std::to_string(tid) +
              ",\"ts\":" + Num(s.begin_ms * 1000.0) +
              ",\"dur\":" + Num((s.end_ms - s.begin_ms) * 1000.0) +
              ",\"args\":{\"label\":" + std::to_string(s.label) +
              ",\"abort_cause\":\"" + ToString(s.abort_cause) + "\"}}";
    }
    // Flow events stitch cross-shard sub-transactions: every exemplar
    // publishes its own id; sub-transactions bind to their parent's.
    json += ",\n{\"name\":\"xshard\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":" +
            std::to_string(e.global_id) + ",\"pid\":" + std::to_string(pid) +
            ",\"tid\":" + std::to_string(tid) +
            ",\"ts\":" + Num(e.admitted_at_ms * 1000.0) + "}";
    if (e.parent_global_id != 0) {
      json +=
          ",\n{\"name\":\"xshard\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":"
          "\"e\",\"id\":" +
          std::to_string(e.parent_global_id) +
          ",\"pid\":" + std::to_string(pid) +
          ",\"tid\":" + std::to_string(tid) +
          ",\"ts\":" + Num(e.admitted_at_ms * 1000.0) + "}";
    }
  }
  json += "\n]}\n";
  return json;
}

void SpanTracer::WriteBreakdown(std::ostream& os, const Exemplar& exemplar) {
  os << GlobalIdText(exemplar.global_id) << ": response "
     << Num(exemplar.response_ms) << " ms";
  if (exemplar.parent_global_id != 0) {
    os << " (sub-transaction of " << GlobalIdText(exemplar.parent_global_id)
       << ")";
  }
  os << "\n  critical path: lock_wait " << Num(exemplar.path.lock_wait_ms)
     << " | io " << Num(exemplar.path.io_ms) << " | net "
     << Num(exemplar.path.net_ms) << " | cpu " << Num(exemplar.path.cpu_ms)
     << " | retry " << Num(exemplar.path.retry_ms) << " | other "
     << Num(exemplar.path.other_ms) << "  (ms)\n";
  for (const ExemplarSpan& s : exemplar.spans) {
    os << "  ";
    for (uint8_t d = 0; d < s.depth; ++d) os << "  ";
    os << ToString(s.kind);
    if (s.kind == SpanKind::kCcWait || s.kind == SpanKind::kBuffer ||
        s.kind == SpanKind::kIo) {
      os << " oid=" << s.label;
    } else if (s.kind == SpanKind::kAttempt ||
               s.kind == SpanKind::kBackoff) {
      os << " #" << s.label;
    }
    os << "  [" << Num(s.begin_ms - exemplar.admitted_at_ms) << " .. "
       << Num(s.end_ms - exemplar.admitted_at_ms) << "] "
       << Num(s.end_ms - s.begin_ms) << " ms";
    if (s.abort_cause != AbortCause::kNone) {
      os << "  aborted: " << ToString(s.abort_cause);
    }
    os << "\n";
  }
}

}  // namespace voodb::obs
