/// \file o2_emulator.hpp
/// \brief Direct-execution emulator of the O2 page server.
///
/// Stand-in for the real O2 v5.0 installation of the paper's validation
/// experiments (§4.2.1) — see DESIGN.md for the substitution rationale.
/// The emulator *executes* the OCB workload against a functional page
/// server: logical OIDs resolved through the placement, a server page
/// cache with LRU replacement, and a disk that only counts I/Os (the
/// "Benchmark" series of Figures 6-8 reports mean numbers of I/Os, not
/// times).  No discrete-event machinery is involved; this is the
/// reference the VOODB simulation is validated against.
#pragma once

#include <cstdint>
#include <memory>

#include "desp/random.hpp"
#include "ocb/object_base.hpp"
#include "ocb/workload.hpp"
#include "storage/buffer_manager.hpp"
#include "storage/placement.hpp"
#include "trace/recorder.hpp"
#include "voodb/metrics.hpp"

namespace voodb::obs {
class MetricRegistry;
}  // namespace voodb::obs

namespace voodb::emu {

/// Configuration of the emulated O2 server.
struct O2Config {
  uint32_t page_size = 4096;
  uint64_t cache_pages = 3840;  ///< 16 MB server cache (default install)
  storage::ReplacementPolicy replacement = storage::ReplacementPolicy::kLru;
  storage::PlacementPolicy placement =
      storage::PlacementPolicy::kOptimizedSequential;
  /// O2's storage overhead (the NC=50/NO=20000 base occupies ~28 MB).
  double storage_overhead = 1.33;
};

/// The emulated O2 server.
class O2Emulator {
 public:
  O2Emulator(O2Config config, const ocb::ObjectBase* base, uint64_t seed);

  /// Executes `n` transactions from `workload`; returns the phase's
  /// counters (sim_time_ms is always 0 — the emulator does not model
  /// time).
  core::PhaseMetrics RunTransactions(ocb::WorkloadSource& workload,
                                     uint64_t n);
  core::PhaseMetrics RunTransactionsOfKind(ocb::WorkloadSource& workload,
                                           ocb::TransactionKind kind,
                                           uint64_t n);

  /// Installs an access-trace recorder (not owned; nullptr detaches):
  /// transaction markers and object accesses from the drive loop, page
  /// accesses from the server cache's AccessInto.
  void SetRecorder(trace::Recorder* recorder);

  /// The recording run's cache counters for the trace header.
  trace::TraceCounters TraceCountersNow() const;

  /// Database size on disk.
  uint64_t NumPages() const { return placement_.NumPages(); }
  const storage::BufferManager& cache() const { return *cache_; }

  /// Registers the emulator counters with `registry` (obs subsystem).
  void RegisterMetrics(obs::MetricRegistry& registry) const;

 private:
  core::PhaseMetrics Drive(ocb::WorkloadSource& workload,
                           const ocb::TransactionKind* forced, uint64_t n);
  void AccessObject(ocb::Oid oid, bool write);

  O2Config config_;
  const ocb::ObjectBase* base_;
  storage::Placement placement_;
  std::unique_ptr<storage::BufferManager> cache_;
  trace::Recorder* recorder_ = nullptr;
  /// Reused I/O scratch buffer (the access path never allocates).
  std::vector<storage::PageIo> scratch_ios_;
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
  uint64_t accesses_ = 0;
};

}  // namespace voodb::emu
