#include "emu/o2_emulator.hpp"

#include "obs/metrics.hpp"
#include "trace/counters.hpp"
#include "util/check.hpp"

namespace voodb::emu {

O2Emulator::O2Emulator(O2Config config, const ocb::ObjectBase* base,
                       uint64_t seed)
    : config_(config),
      base_(base),
      placement_(storage::Placement::Build(*base, config.page_size,
                                           config.placement,
                                           config.storage_overhead)) {
  VOODB_CHECK_MSG(base_ != nullptr, "emulator needs an object base");
  cache_ = std::make_unique<storage::BufferManager>(
      config_.cache_pages, config_.replacement, desp::RandomStream(seed));
}

core::PhaseMetrics O2Emulator::RunTransactions(ocb::WorkloadSource& workload,
                                               uint64_t n) {
  return Drive(workload, nullptr, n);
}

core::PhaseMetrics O2Emulator::RunTransactionsOfKind(
    ocb::WorkloadSource& workload, ocb::TransactionKind kind, uint64_t n) {
  return Drive(workload, &kind, n);
}

void O2Emulator::SetRecorder(trace::Recorder* recorder) {
  recorder_ = recorder;
  cache_->SetRecorder(recorder);
}

trace::TraceCounters O2Emulator::TraceCountersNow() const {
  return trace::CountersFrom(cache_->stats());
}

core::PhaseMetrics O2Emulator::Drive(ocb::WorkloadSource& workload,
                                     const ocb::TransactionKind* forced,
                                     uint64_t n) {
  const storage::BufferStats before = cache_->stats();
  const uint64_t reads_before = reads_;
  const uint64_t writes_before = writes_;
  const uint64_t accesses_before = accesses_;
  core::PhaseMetrics m;
  for (uint64_t i = 0; i < n; ++i) {
    const ocb::Transaction txn = forced != nullptr
                                     ? workload.NextOfKind(*forced)
                                     : workload.Next();
    if (recorder_ != nullptr) {
      recorder_->OnTxnBegin(static_cast<uint64_t>(txn.kind));
    }
    for (const ocb::ObjectAccess& access : txn.accesses) {
      AccessObject(access.oid, access.is_write);
    }
    if (recorder_ != nullptr) recorder_->OnTxnEnd();
    ++m.transactions;
  }
  const storage::BufferStats after = cache_->stats();
  m.object_accesses = accesses_ - accesses_before;
  m.reads = reads_ - reads_before;
  m.writes = writes_ - writes_before;
  m.total_ios = m.reads + m.writes;
  m.buffer_hits = after.hits - before.hits;
  m.buffer_requests = after.accesses - before.accesses;
  return m;
}

void O2Emulator::AccessObject(ocb::Oid oid, bool write) {
  ++accesses_;
  if (recorder_ != nullptr) recorder_->OnObject(oid, write);
  // Flat span-array lookup + allocation-free cache probe: the emulator
  // hot path touches only dense arrays.
  const storage::PageSpan span = placement_.spans()[oid];
  for (uint32_t i = 0; i < span.count; ++i) {
    scratch_ios_.clear();
    cache_->AccessInto(span.first + i, write, scratch_ios_);
    for (const storage::PageIo& io : scratch_ios_) {
      if (io.kind == storage::PageIo::Kind::kRead) {
        ++reads_;
      } else {
        ++writes_;
      }
    }
  }
}


void O2Emulator::RegisterMetrics(obs::MetricRegistry& registry) const {
  registry.RegisterCounter("emu.reads", &reads_);
  registry.RegisterCounter("emu.writes", &writes_);
  registry.RegisterCounter("emu.accesses", &accesses_);
}

}  // namespace voodb::emu
