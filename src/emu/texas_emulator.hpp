/// \file texas_emulator.hpp
/// \brief Direct-execution emulator of the Texas persistent store (+DSTC).
///
/// Stand-in for the paper's Texas v0.5 prototype on Linux 2.0.30 (§4.2.1);
/// see DESIGN.md for the substitution rationale.  Three Texas-specific
/// behaviours the paper's analysis relies on are emulated:
///
/// * the store lives on **OS virtual memory** (no database buffer): page
///   faults and swap writes are the I/Os of Figures 9-11;
/// * **reserve-on-swizzle**: faulting a page reserves frames for every
///   page it references, which makes degradation *exponential* once the
///   base outgrows memory (Figure 11);
/// * **physical OIDs**: DSTC's reorganization moves objects, so their
///   OIDs change and *the whole database must be scanned and every page
///   holding a reference to a moved object rewritten* — the source of the
///   ~36x clustering-overhead gap between the real system and the
///   logical-OID simulation (Table 6).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/policy.hpp"
#include "desp/random.hpp"
#include "ocb/object_base.hpp"
#include "ocb/workload.hpp"
#include "storage/page_adjacency.hpp"
#include "storage/placement.hpp"
#include "storage/virtual_memory.hpp"
#include "trace/recorder.hpp"
#include "voodb/metrics.hpp"

namespace voodb::obs {
class MetricRegistry;
}  // namespace voodb::obs

namespace voodb::emu {

/// Configuration of the emulated Texas store.
struct TexasConfig {
  uint32_t page_size = 4096;
  /// Page frames the OS grants the store's mapping (0.8 * physical RAM in
  /// the validation experiments).
  uint64_t memory_pages = 13107;  // 64 MB host
  bool reserve_references = true;
  bool dirty_on_load = true;
  /// Reserved frames enter the LRU hot (Linux 2.0 behaviour).
  bool reservations_enter_hot = true;
  storage::PlacementPolicy placement =
      storage::PlacementPolicy::kOptimizedSequential;
  double storage_overhead = 1.0;

  /// Frames for `memory_mb` megabytes of physical RAM.
  static uint64_t FramesForMemory(double memory_mb, uint32_t page_size);
};

/// Result of a DSTC reorganization inside Texas.
struct TexasClusteringMetrics {
  bool reorganized = false;
  uint64_t num_clusters = 0;
  double mean_cluster_size = 0.0;
  /// Total overhead I/Os = scan reads + reference-patch writes + cluster
  /// writes (physical OIDs!).
  uint64_t overhead_ios = 0;
  uint64_t scan_reads = 0;
  uint64_t patch_writes = 0;
  uint64_t cluster_writes = 0;
};

/// The emulated Texas store.
class TexasEmulator {
 public:
  TexasEmulator(TexasConfig config, const ocb::ObjectBase* base,
                uint64_t seed);

  /// Installs a clustering policy that observes subsequent transactions
  /// (DSTC is "integrated in Texas as a collection of new modules").
  void SetClusteringPolicy(std::unique_ptr<cluster::ClusteringPolicy> policy);

  core::PhaseMetrics RunTransactions(ocb::WorkloadSource& workload,
                                     uint64_t n);
  core::PhaseMetrics RunTransactionsOfKind(ocb::WorkloadSource& workload,
                                           ocb::TransactionKind kind,
                                           uint64_t n);

  /// Installs an access-trace recorder (not owned; nullptr detaches):
  /// transaction markers and object accesses from the drive loop, page
  /// accesses from the VM touch loop.
  void SetRecorder(trace::Recorder* recorder) { recorder_ = recorder; }

  /// Runs the installed policy's reorganization with physical-OID cost
  /// accounting (full scan + reference patching).
  TexasClusteringMetrics PerformClustering();

  /// Drops all frames (process restart between phases).
  void DropMemory() { vm_->DropAll(); }

  uint64_t NumPages() const { return placement_->NumPages(); }
  const storage::VirtualMemoryModel& vm() const { return *vm_; }
  const cluster::ClusteringPolicy* policy() const { return policy_.get(); }

  /// Registers the emulator counters with `registry` (obs subsystem).
  void RegisterMetrics(obs::MetricRegistry& registry) const;

 private:
  core::PhaseMetrics Drive(ocb::WorkloadSource& workload,
                           const ocb::TransactionKind* forced, uint64_t n);
  void AccessObject(ocb::Oid oid, bool write);
  void CountIos(const std::vector<storage::PageIo>& ios);
  void RebuildAdjacency();

  TexasConfig config_;
  const ocb::ObjectBase* base_;
  std::unique_ptr<storage::Placement> placement_;
  storage::PageAdjacency adjacency_;
  std::unique_ptr<storage::VirtualMemoryModel> vm_;
  std::unique_ptr<cluster::ClusteringPolicy> policy_;
  trace::Recorder* recorder_ = nullptr;
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
  uint64_t accesses_ = 0;
};

}  // namespace voodb::emu
