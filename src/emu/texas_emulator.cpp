#include "emu/texas_emulator.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace voodb::emu {

uint64_t TexasConfig::FramesForMemory(double memory_mb, uint32_t page_size) {
  VOODB_CHECK_MSG(memory_mb > 0.0, "memory must be positive");
  const double frames =
      memory_mb * 1024.0 * 1024.0 * 0.8 / static_cast<double>(page_size);
  return frames < 16.0 ? 16 : static_cast<uint64_t>(frames);
}

TexasEmulator::TexasEmulator(TexasConfig config, const ocb::ObjectBase* base,
                             uint64_t /*seed*/)
    : config_(config), base_(base) {
  VOODB_CHECK_MSG(base_ != nullptr, "emulator needs an object base");
  placement_ = std::make_unique<storage::Placement>(storage::Placement::Build(
      *base, config_.page_size, config_.placement, config_.storage_overhead));
  RebuildAdjacency();
  storage::VmParameters vm_params;
  vm_params.memory_pages = config_.memory_pages;
  vm_params.dirty_on_load = config_.dirty_on_load;
  vm_params.reservations_enter_hot = config_.reservations_enter_hot;
  vm_ = std::make_unique<storage::VirtualMemoryModel>(vm_params);
}

void TexasEmulator::SetClusteringPolicy(
    std::unique_ptr<cluster::ClusteringPolicy> policy) {
  policy_ = std::move(policy);
}

core::PhaseMetrics TexasEmulator::RunTransactions(
    ocb::WorkloadSource& workload, uint64_t n) {
  return Drive(workload, nullptr, n);
}

core::PhaseMetrics TexasEmulator::RunTransactionsOfKind(
    ocb::WorkloadSource& workload, ocb::TransactionKind kind, uint64_t n) {
  return Drive(workload, &kind, n);
}

core::PhaseMetrics TexasEmulator::Drive(ocb::WorkloadSource& workload,
                                        const ocb::TransactionKind* forced,
                                        uint64_t n) {
  const storage::VmStats before = vm_->stats();
  const uint64_t reads_before = reads_;
  const uint64_t writes_before = writes_;
  const uint64_t accesses_before = accesses_;
  core::PhaseMetrics m;
  for (uint64_t i = 0; i < n; ++i) {
    const ocb::Transaction txn = forced != nullptr
                                     ? workload.NextOfKind(*forced)
                                     : workload.Next();
    if (recorder_ != nullptr) {
      recorder_->OnTxnBegin(static_cast<uint64_t>(txn.kind));
    }
    if (policy_ != nullptr) policy_->OnTransactionStart();
    for (const ocb::ObjectAccess& access : txn.accesses) {
      if (policy_ != nullptr) policy_->OnObjectAccess(access.oid,
                                                      access.is_write);
      AccessObject(access.oid, access.is_write);
    }
    if (policy_ != nullptr) policy_->OnTransactionEnd();
    if (recorder_ != nullptr) recorder_->OnTxnEnd();
    ++m.transactions;
  }
  const storage::VmStats after = vm_->stats();
  m.object_accesses = accesses_ - accesses_before;
  m.reads = reads_ - reads_before;
  m.writes = writes_ - writes_before;
  m.total_ios = m.reads + m.writes;
  m.buffer_hits = after.soft_hits - before.soft_hits;
  m.buffer_requests = after.touches - before.touches;
  return m;
}

void TexasEmulator::CountIos(const std::vector<storage::PageIo>& ios) {
  for (const storage::PageIo& io : ios) {
    if (io.kind == storage::PageIo::Kind::kRead) {
      ++reads_;
    } else {
      ++writes_;
    }
  }
}

void TexasEmulator::AccessObject(ocb::Oid oid, bool write) {
  ++accesses_;
  if (recorder_ != nullptr) recorder_->OnObject(oid, write);
  // Flat span-array lookup (Oid -> pages without the checked accessor).
  const storage::PageSpan span = placement_->spans()[oid];
  for (uint32_t i = 0; i < span.count; ++i) {
    const storage::PageId page = span.first + i;
    if (recorder_ != nullptr) recorder_->OnPage(page, write);
    const storage::AccessOutcome outcome = vm_->Touch(page, write);
    CountIos(outcome.ios);
    if (!outcome.hit && config_.reserve_references) {
      // The fault swizzled every pointer in the page: frames are
      // reserved for all pages referenced from it.
      for (storage::PageId ref : adjacency_.RowOf(page)) {
        CountIos(vm_->Reserve(ref));
      }
    }
  }
}

TexasClusteringMetrics TexasEmulator::PerformClustering() {
  VOODB_CHECK_MSG(policy_ != nullptr, "no clustering policy installed");
  TexasClusteringMetrics metrics;
  cluster::ClusteringOutcome outcome =
      policy_->Recluster(*base_, *placement_);
  metrics.reorganized = outcome.reorganized;
  metrics.num_clusters = outcome.NumClusters();
  metrics.mean_cluster_size = outcome.MeanClusterSize();
  if (!outcome.reorganized) return metrics;

  // Mark moved objects (their physical OIDs change).
  std::vector<char> moved(base_->NumObjects(), 0);
  for (ocb::Oid oid : outcome.moved_objects) moved[oid] = 1;

  const uint64_t pages_before = placement_->NumPages();

  // Physical-OID consistency: the whole database is scanned and every
  // reference toward a moved object is updated (paper §4.4).  Under
  // Texas the scan itself loads pages through the swizzling fault
  // handler, which dirties them, so every scanned page is written back;
  // without dirty-on-load only the pages actually holding a patched
  // reference (or losing a moved object) are rewritten.
  for (storage::PageId page = 0; page < pages_before; ++page) {
    ++metrics.scan_reads;
    bool must_patch = config_.dirty_on_load;
    for (ocb::Oid oid : placement_->ObjectsOn(page)) {
      if (must_patch) break;
      if (moved[oid]) {
        must_patch = true;  // the page loses an object: slot map rewritten
        break;
      }
      for (ocb::Oid ref : base_->References(oid)) {
        if (ref != ocb::kNullOid && moved[ref]) {
          must_patch = true;
          break;
        }
      }
    }
    if (must_patch) ++metrics.patch_writes;
  }

  // Relocate the cluster fragments into fresh pages and write them.
  placement_ = std::make_unique<storage::Placement>(
      storage::Placement::RelocateToTail(*placement_, *base_,
                                         outcome.moved_objects,
                                         config_.storage_overhead));
  metrics.cluster_writes = placement_->NumPages() - pages_before;
  metrics.overhead_ios =
      metrics.scan_reads + metrics.patch_writes + metrics.cluster_writes;
  reads_ += metrics.scan_reads;
  writes_ += metrics.patch_writes + metrics.cluster_writes;

  // The page space changed: rebuild adjacency and restart the mapping.
  RebuildAdjacency();
  vm_->DropAll();
  return metrics;
}

void TexasEmulator::RebuildAdjacency() {
  adjacency_.Rebuild(*base_, *placement_);
}


void TexasEmulator::RegisterMetrics(obs::MetricRegistry& registry) const {
  registry.RegisterCounter("emu.reads", &reads_);
  registry.RegisterCounter("emu.writes", &writes_);
  registry.RegisterCounter("emu.accesses", &accesses_);
}

}  // namespace voodb::emu
