/// \file writer.hpp
/// \brief Streaming columnar trace writer.
///
/// The writer emits the version-1 format of format.hpp onto any
/// *seekable* std::ostream (a binary file, a stringstream): header
/// first, then one chunk per `WriteChunk` call; `Finish` patches the
/// header in place with the stream summary and the recorded run's
/// buffer counters.  Encoding scratch buffers are reserved once, so
/// writing a chunk performs no allocation in steady state.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "trace/format.hpp"

namespace voodb::trace {

class Writer {
 public:
  /// Writes the header onto `os` (not owned; must be seekable and
  /// outlive the writer).  `header` carries the recorded configuration;
  /// its summary fields are ignored and rewritten by Finish.
  Writer(std::ostream* os, const Header& header);

  /// Convenience: opens `path` as a binary file (throws util::Error on
  /// failure) and writes the header.
  Writer(const std::string& path, const Header& header);

  /// Encodes one columnar chunk from parallel record arrays.
  /// `kinds`/`ids`/`flags` are parallel, `count` records long.
  void WriteChunk(const uint8_t* kinds, const uint64_t* ids,
                  const uint8_t* flags, uint32_t count);

  /// Sets additional header flag bits discovered during recording
  /// (e.g. kFlagBufferDrop); must precede Finish.
  void AddFlags(uint32_t flags);

  /// Patches the header with the stream summary and `counters`, then
  /// flushes.  Idempotent; no chunks may be written afterwards.
  void Finish(const TraceCounters& counters);

  /// True once Finish has run.
  bool finished() const { return finished_; }

  const Header& header() const { return header_; }

 private:
  /// Shared constructor body: normalizes the header, writes it, reserves
  /// the encoding scratch.
  void Init();

  std::unique_ptr<std::ofstream> owned_file_;
  std::ostream* os_ = nullptr;
  Header header_;
  bool finished_ = false;
  /// Reused chunk encoding buffer (id varints + flag bits).
  std::vector<uint8_t> scratch_;
};

}  // namespace voodb::trace
