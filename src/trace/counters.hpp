/// \file counters.hpp
/// \brief The one place buffering-layer statistics become trace
/// counters.
///
/// Every recording surface (the DES Buffering Manager, the O2 emulator,
/// the Texas emulator) finishes its trace with the same conversion;
/// keeping it here means extending the verified counter set — and
/// `ReplayStats::Matches` — touches one site, not three.
#pragma once

#include "storage/buffer_manager.hpp"
#include "storage/virtual_memory.hpp"
#include "trace/format.hpp"

namespace voodb::trace {

inline TraceCounters CountersFrom(const storage::BufferStats& s) {
  TraceCounters c;
  c.accesses = s.accesses;
  c.hits = s.hits;
  c.misses = s.misses;
  c.evictions = s.evictions;
  c.writebacks = s.writebacks;
  return c;
}

/// VM-model runs report touches/faults as accesses/misses; write-backs
/// are swap writes.
inline TraceCounters CountersFrom(const storage::VmStats& s) {
  TraceCounters c;
  c.accesses = s.touches;
  c.hits = s.soft_hits;
  c.misses = s.faults;
  c.evictions = s.reserved_evictions;
  c.writebacks = s.swap_writes;
  return c;
}

}  // namespace voodb::trace
