/// \file recorder.hpp
/// \brief Zero-allocation access-trace recorder.
///
/// The recorder is the hook the hot paths call: the buffer manager's
/// `AccessInto` reports page accesses, the Object Manager reports object
/// resolutions, and the workload drivers report transaction boundaries.
/// Records accumulate in fixed, pre-reserved SoA buffers (one kind byte,
/// one id, one flag byte per record) and are handed to the writer a
/// chunk at a time — the per-record cost is three array stores and a
/// counter bump, with no heap allocation anywhere on the recording path.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/format.hpp"
#include "trace/writer.hpp"

namespace voodb::trace {

class Recorder {
 public:
  /// `writer` is not owned and must outlive the recorder.
  explicit Recorder(Writer* writer);

  /// Marks a transaction boundary; `user` identifies the issuing user so
  /// concurrent/sharded recordings replay as per-user streams (format
  /// v2: the id column packs `(user << 8) | kind`).
  void OnTxnBegin(uint64_t kind, uint32_t user = 0) {
    Append(RecordKind::kTxnBegin, PackTxnBegin(kind, user), false);
  }
  void OnTxnEnd() { Append(RecordKind::kTxnEnd, 0, false); }
  /// Marks a concurrency-control abort of the in-flight attempt (v3).
  void OnTxnAbort() { Append(RecordKind::kTxnAbort, 0, false); }
  void OnObject(uint64_t oid, bool write) {
    Append(RecordKind::kObject, oid, write);
  }
  void OnPage(uint64_t page, bool write) {
    Append(RecordKind::kPage, page, write);
  }

  /// Flushes the partial chunk to the writer (called before
  /// Writer::Finish; safe to call repeatedly).
  void Flush();

  /// Records appended so far (flushed or not).
  uint64_t records() const { return total_records_; }

 private:
  void Append(RecordKind kind, uint64_t id, bool flag) {
    const uint32_t i = fill_++;
    kinds_[i] = static_cast<uint8_t>(kind);
    ids_[i] = id;
    flags_[i] = flag ? 1 : 0;
    ++total_records_;
    if (fill_ == kChunkRecords) Flush();
  }

  Writer* writer_;
  uint32_t fill_ = 0;
  uint64_t total_records_ = 0;
  std::vector<uint8_t> kinds_;
  std::vector<uint64_t> ids_;
  std::vector<uint8_t> flags_;
};

}  // namespace voodb::trace
