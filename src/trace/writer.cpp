#include "trace/writer.hpp"

#include <cstring>

#include "util/check.hpp"

namespace voodb::trace {

namespace {

/// Appends the LEB128 varint of `value` to `out`.
void AppendVarint(std::vector<uint8_t>& out, uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<uint8_t>(value));
}

uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

}  // namespace

Writer::Writer(std::ostream* os, const Header& header)
    : os_(os), header_(header) {
  VOODB_CHECK_MSG(os_ != nullptr && os_->good(), "trace writer needs a stream");
  Init();
}

Writer::Writer(const std::string& path, const Header& header)
    : owned_file_(std::make_unique<std::ofstream>(
          path, std::ios::binary | std::ios::trunc)),
      os_(owned_file_.get()),
      header_(header) {
  VOODB_CHECK_MSG(owned_file_->is_open(),
                  "cannot open trace file '" << path << "' for writing");
  Init();
}

void Writer::Init() {
  header_.magic = kMagic;
  header_.version = kFormatVersion;
  header_.flags &= ~static_cast<uint32_t>(kFlagFinished);
  header_.num_chunks = 0;
  header_.num_records = 0;
  header_.txn_records = 0;
  header_.object_records = 0;
  header_.page_records = 0;
  header_.counters = TraceCounters{};
  os_->write(reinterpret_cast<const char*>(&header_), sizeof(header_));
  VOODB_CHECK_MSG(os_->good(), "trace header write failed");
  scratch_.reserve(kChunkRecords * 10 + kChunkRecords / 8 + 16);
}

void Writer::WriteChunk(const uint8_t* kinds, const uint64_t* ids,
                        const uint8_t* flags, uint32_t count) {
  VOODB_CHECK_MSG(!finished_, "trace writer already finished");
  if (count == 0) return;
  scratch_.clear();
  // Id column: zigzag varint deltas, previous id starting at 0 per chunk.
  uint64_t prev = 0;
  for (uint32_t i = 0; i < count; ++i) {
    AppendVarint(scratch_, ZigZag(static_cast<int64_t>(ids[i] - prev)));
    prev = ids[i];
  }
  const size_t id_bytes = scratch_.size();
  // Flag column: one bit per record, LSB-first.
  const size_t flag_bytes = (count + 7) / 8;
  const size_t flag_begin = scratch_.size();
  scratch_.resize(flag_begin + flag_bytes, 0);
  for (uint32_t i = 0; i < count; ++i) {
    if (flags[i] != 0) scratch_[flag_begin + i / 8] |= 1u << (i % 8);
  }
  const uint32_t payload =
      static_cast<uint32_t>(count + id_bytes + flag_bytes);
  os_->write(reinterpret_cast<const char*>(&count), sizeof(count));
  os_->write(reinterpret_cast<const char*>(&payload), sizeof(payload));
  os_->write(reinterpret_cast<const char*>(kinds), count);
  os_->write(reinterpret_cast<const char*>(scratch_.data()),
             static_cast<std::streamsize>(scratch_.size()));
  VOODB_CHECK_MSG(os_->good(), "trace chunk write failed");
  ++header_.num_chunks;
  header_.num_records += count;
  for (uint32_t i = 0; i < count; ++i) {
    switch (static_cast<RecordKind>(kinds[i])) {
      case RecordKind::kTxnBegin:
        ++header_.txn_records;
        break;
      case RecordKind::kObject:
        ++header_.object_records;
        break;
      case RecordKind::kPage:
        ++header_.page_records;
        break;
      default:
        break;
    }
  }
}

void Writer::AddFlags(uint32_t flags) {
  VOODB_CHECK_MSG(!finished_, "trace writer already finished");
  header_.flags |= flags;
}

void Writer::Finish(const TraceCounters& counters) {
  if (finished_) return;
  finished_ = true;
  header_.counters = counters;
  header_.flags |= kFlagFinished;
  const std::ostream::pos_type end = os_->tellp();
  os_->seekp(0);
  os_->write(reinterpret_cast<const char*>(&header_), sizeof(header_));
  os_->seekp(end);
  os_->flush();
  VOODB_CHECK_MSG(os_->good(), "trace header patch failed");
}

}  // namespace voodb::trace
