#include "trace/reader.hpp"

#include <cstring>

#include "util/check.hpp"

namespace voodb::trace {

namespace {

int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

}  // namespace

Reader::Reader(std::istream* is) : is_(is) {
  VOODB_CHECK_MSG(is_ != nullptr && is_->good(), "trace reader needs a stream");
  Validate();
}

Reader::Reader(const std::string& path)
    : owned_file_(std::make_unique<std::ifstream>(path, std::ios::binary)),
      is_(owned_file_.get()) {
  VOODB_CHECK_MSG(owned_file_->is_open(),
                  "cannot open trace file '" << path << "'");
  Validate();
}

void Reader::Validate() {
  is_->read(reinterpret_cast<char*>(&header_), sizeof(header_));
  VOODB_CHECK_MSG(is_->gcount() == static_cast<std::streamsize>(sizeof(header_)),
                  "trace header truncated (" << is_->gcount() << " of "
                                             << sizeof(header_) << " bytes)");
  VOODB_CHECK_MSG(header_.magic == kMagic,
                  "not a VOODB trace (bad magic 0x" << std::hex
                                                    << header_.magic << ")");
  VOODB_CHECK_MSG(header_.version >= kMinFormatVersion &&
                      header_.version <= kFormatVersion,
                  "unsupported trace version "
                      << header_.version << " (supported: "
                      << kMinFormatVersion << ".." << kFormatVersion << ")");
  VOODB_CHECK_MSG(header_.flags & kFlagFinished,
                  "trace is unfinished (recording was interrupted before "
                  "Writer::Finish)");
}

bool Reader::LoadChunk() {
  if (chunks_read_ == header_.num_chunks) {
    // Clean end: every declared chunk was decoded.
    return false;
  }
  uint32_t count = 0;
  uint32_t payload = 0;
  is_->read(reinterpret_cast<char*>(&count), sizeof(count));
  VOODB_CHECK_MSG(is_->gcount() == static_cast<std::streamsize>(sizeof(count)),
                  "trace truncated at chunk " << chunks_read_ << " of "
                                              << header_.num_chunks);
  is_->read(reinterpret_cast<char*>(&payload), sizeof(payload));
  // 64-bit arithmetic: a crafted count near 2^32 must fail this check,
  // not wrap it past the payload bound.
  const uint64_t min_payload = static_cast<uint64_t>(count) +
                               (static_cast<uint64_t>(count) + 7) / 8;
  VOODB_CHECK_MSG(
      is_->gcount() == static_cast<std::streamsize>(sizeof(payload)) &&
          count >= 1 && static_cast<uint64_t>(payload) >= min_payload,
      "corrupt chunk header at chunk " << chunks_read_);
  payload_.resize(payload);
  is_->read(reinterpret_cast<char*>(payload_.data()), payload);
  VOODB_CHECK_MSG(static_cast<uint32_t>(is_->gcount()) == payload,
                  "trace truncated inside chunk " << chunks_read_);

  kinds_.assign(payload_.begin(), payload_.begin() + count);
  const size_t flag_bytes = (count + 7) / 8;
  const uint8_t* p = payload_.data() + count;
  const uint8_t* id_end = payload_.data() + payload - flag_bytes;
  ids_.resize(count);
  uint64_t prev = 0;
  for (uint32_t i = 0; i < count; ++i) {
    uint64_t v = 0;
    int shift = 0;
    while (true) {
      VOODB_CHECK_MSG(p < id_end && shift < 64,
                      "corrupt id column in chunk " << chunks_read_);
      const uint8_t byte = *p++;
      v |= static_cast<uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
    }
    prev += static_cast<uint64_t>(UnZigZag(v));
    ids_[i] = prev;
  }
  VOODB_CHECK_MSG(p == id_end,
                  "id column length mismatch in chunk " << chunks_read_);
  flags_.assign(id_end, id_end + flag_bytes);
  chunk_size_ = count;
  cursor_ = 0;
  ++chunks_read_;
  return true;
}

bool Reader::Next(Record& record) {
  if (cursor_ >= chunk_size_) {
    if (!LoadChunk()) return false;
  }
  const uint32_t i = cursor_++;
  // kTxnAbort exists from format v3 on; in older traces the value is
  // corruption, not a record.
  const uint8_t max_kind = static_cast<uint8_t>(
      header_.version >= 3 ? RecordKind::kTxnAbort : RecordKind::kPage);
  VOODB_CHECK_MSG(kinds_[i] <= max_kind,
                  "corrupt record kind " << static_cast<int>(kinds_[i]));
  record.kind = static_cast<RecordKind>(kinds_[i]);
  record.id = ids_[i];
  record.user = 0;
  if (record.kind == RecordKind::kTxnBegin && header_.version >= 2) {
    // v2 packs (user << 8 | kind); normalize so callers never branch on
    // the format version.  v1 markers carry the bare kind (user 0).
    record.user = static_cast<uint32_t>(record.id >> kTxnUserShift);
    record.id &= kTxnKindMask;
  }
  record.write = (flags_[i / 8] >> (i % 8)) & 1u;
  ++records_read_;
  return true;
}

void Reader::Rewind() {
  is_->clear();
  is_->seekg(static_cast<std::istream::off_type>(sizeof(Header)),
             std::ios::beg);
  VOODB_CHECK_MSG(is_->good(), "trace rewind failed");
  records_read_ = 0;
  chunks_read_ = 0;
  chunk_size_ = 0;
  cursor_ = 0;
}

}  // namespace voodb::trace
