/// \file workload.hpp
/// \brief A recorded trace as a workload source.
///
/// Reconstructs the transaction stream of a recorded run from its
/// transaction markers and object records and feeds it back through any
/// driver that consumes `ocb::WorkloadSource` — the DES system (set
/// `workload_source=trace`), either emulator, or a bare storage engine.
/// Replay is deterministic: the same trace yields the same transaction
/// stream on every run, so a recorded workload can be re-executed under
/// every buffer size and replacement policy without re-rolling the
/// stochastic generator.
///
/// Transaction grouping assumes the markers are properly nested, which
/// holds for every serial recording (the emulators, and DES runs with
/// one user — the `voodb trace record` default).  Traces recorded under
/// concurrent users interleave markers and are rejected.
#pragma once

#include <memory>
#include <string>

#include "ocb/workload.hpp"
#include "trace/reader.hpp"

namespace voodb::trace {

class TraceWorkload : public ocb::WorkloadSource {
 public:
  /// Opens `path` and positions at the first transaction.  Throws
  /// util::Error when the trace holds no transaction records.
  explicit TraceWorkload(const std::string& path);

  /// Reads from an externally owned stream (tests).
  explicit TraceWorkload(std::istream* is);

  /// The next recorded transaction; wraps around to the start of the
  /// trace when the stream is exhausted (so a replay can run longer than
  /// the recording).
  ocb::Transaction Next() override;

  /// Trace replay reproduces the recorded stream; the forced kind is
  /// ignored by design.
  ocb::Transaction NextOfKind(ocb::TransactionKind) override { return Next(); }

  const Header& header() const { return reader_->header(); }

  /// Transactions handed out so far (across wrap-arounds).
  uint64_t transactions_replayed() const { return replayed_; }

 private:
  std::unique_ptr<Reader> reader_;
  uint64_t replayed_ = 0;
};

}  // namespace voodb::trace
