/// \file mrc.hpp
/// \brief One-pass miss-ratio-curve analytics (Mattson stack distances).
///
/// For the LRU family of stack algorithms, whether an access hits in a
/// cache of c pages depends only on its *stack distance* — the number of
/// distinct pages touched since the previous access to the same page,
/// plus one.  An access with stack distance d hits every LRU cache of
/// capacity >= d and misses every smaller one (Mattson et al., 1970), so
/// a single pass that histograms stack distances yields the exact LRU
/// hit count for *every* cache size at once: hits(c) = Σ_{d<=c} hist[d].
/// A cache-size sweep like the paper's Figure 8 therefore costs one
/// trace pass instead of one full simulation per buffer size.
///
/// Stack distances are computed with a Fenwick (binary indexed) tree
/// over access positions holding a 1 at each page's *last* access
/// position.  Only W distinct pages can have a 1 simultaneously, so the
/// tree is periodically compacted onto dense positions and never grows
/// beyond O(W); the whole analysis is O(N log W) time and O(W) space for
/// N accesses over a working set of W pages.
///
/// Alongside the curve the analyzer collects the locality statistics a
/// workload study wants: the reuse-distance histogram itself, the
/// working-set size, and the per-class access skew of the object stream.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/reader.hpp"

namespace voodb::trace {

/// The result of one analysis pass.
struct MrcResult {
  uint64_t page_accesses = 0;
  uint64_t object_accesses = 0;
  uint64_t transactions = 0;
  /// Distinct pages touched (the working-set size; also the cold-miss
  /// count at every cache size).
  uint64_t working_set_pages = 0;
  /// reuse_histogram[d] = accesses with stack distance d (d >= 1;
  /// index 0 is unused).  Size working_set_pages + 1.
  std::vector<uint64_t> reuse_histogram;
  /// Per-class object access counts (empty when the trace carries no
  /// object records or the header no class count).
  std::vector<uint64_t> class_accesses;

  /// Exact LRU hit count for a cache of `pages` frames.
  uint64_t HitsAt(uint64_t pages) const;
  /// Exact LRU hit ratio for a cache of `pages` frames.
  double HitRatioAt(uint64_t pages) const;
  /// Misses = cold misses (working set) + reuses beyond the cache.
  uint64_t MissesAt(uint64_t pages) const {
    return page_accesses - HitsAt(pages);
  }
  /// Mean finite stack distance (reused accesses only; 0 when none).
  double MeanReuseDistance() const;
  /// Smallest cache size whose hit ratio reaches `ratio` (in [0, 1]);
  /// returns working_set_pages when even a full-size cache stays below.
  uint64_t CacheForHitRatio(double ratio) const;

 private:
  friend class MrcAnalyzer;
  /// hits_prefix_[d] = Σ_{k<=d} reuse_histogram[k]; size of
  /// reuse_histogram.
  std::vector<uint64_t> hits_prefix_;
};

/// Incremental one-pass analyzer.  Feed accesses (directly or from a
/// Reader) and call Finish once.
class MrcAnalyzer {
 public:
  /// \param num_classes class count for the access-skew histogram
  ///   (0 disables per-class counting)
  explicit MrcAnalyzer(uint32_t num_classes = 0);

  void OnPage(uint64_t page);
  void OnObject(uint64_t oid);
  void OnTxnBegin() { ++transactions_; }

  /// Consumes every record of `reader` (positioned at the stream start).
  void Consume(Reader& reader);

  /// Finalizes the histogram prefix sums and returns the result.
  MrcResult Finish();

 private:
  uint64_t RangeCount(uint64_t from, uint64_t to) const;
  void FenwickAdd(uint64_t pos, int64_t delta);
  /// Remaps live last-access positions onto 0..W-1 and rebuilds the
  /// Fenwick tree so its size stays O(working set).
  void Compact();

  uint64_t num_classes_ = 0;
  uint64_t transactions_ = 0;
  uint64_t object_accesses_ = 0;
  uint64_t page_accesses_ = 0;

  /// Position of each page's most recent access; kNoPos = never seen.
  static constexpr uint64_t kNoPos = static_cast<uint64_t>(-1);
  std::vector<uint64_t> last_pos_;   ///< indexed by page id (dense)
  std::vector<uint64_t> live_page_;  ///< position -> page (for Compact)
  std::vector<int64_t> fenwick_;     ///< 1-based Fenwick tree
  uint64_t next_pos_ = 0;            ///< next access position
  uint64_t distinct_ = 0;

  std::vector<uint64_t> histogram_;  ///< histogram_[d], d >= 1
  std::vector<uint64_t> class_accesses_;
};

}  // namespace voodb::trace
