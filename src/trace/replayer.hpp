/// \file replayer.hpp
/// \brief Deterministic replay of a recorded page stream through the
/// storage engine.
///
/// The logical page-access stream of a run is independent of the buffer
/// configuration — which pages a transaction touches never depends on
/// whether they hit — so one recorded stream can be replayed through a
/// `storage::BufferManager` under *any* replacement policy and *any*
/// capacity.  Replay is bit-deterministic: replaying under the recorded
/// configuration reproduces the recording run's hit/miss/eviction/
/// write-back counters exactly (the RANDOM policy reseeds from the
/// header's stored seed), and a sweep over policies or sizes costs one
/// cache probe per record instead of one full simulation per point.
#pragma once

#include <cstdint>
#include <string>

#include "storage/replacement.hpp"
#include "trace/reader.hpp"

namespace voodb::trace {

/// Overrides for a replay; zero/default members mean "use the recorded
/// configuration from the trace header".
struct ReplayConfig {
  uint64_t buffer_pages = 0;  ///< 0 = header.buffer_pages
  /// -1 = header.replacement_policy, else a
  /// storage::ReplacementPolicy ordinal.
  int policy = -1;
  uint32_t lru_k = 0;  ///< 0 = header.lru_k
  /// Install the recorded sequential prefetcher when the header says one
  /// was active (required for counter verification of such runs).
  bool match_prefetch = true;
};

/// Counters of one replay (mirrors storage::BufferStats plus the I/O
/// split).
struct ReplayStats {
  uint64_t accesses = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;

  double HitRate() const {
    return accesses == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(accesses);
  }

  /// True when this replay reproduced `c` (the recorded run's counters).
  bool Matches(const TraceCounters& c) const {
    return accesses == c.accesses && hits == c.hits && misses == c.misses &&
           evictions == c.evictions && writebacks == c.writebacks;
  }
};

/// Replays every page record of `reader` (which must be positioned at
/// the stream start) through a fresh BufferManager built from the header
/// plus `config` overrides.  Counter verification via
/// `ReplayStats::Matches(header.counters)` is meaningful only when
/// `ReplayVerifiable(header.flags)` holds (a plain database-buffer
/// recording — no VM model, commit-time flushes, or crash drops, whose
/// buffer events are outside the page stream) and the replay uses the
/// recorded configuration; the page stream itself is a valid workload
/// for any buffer.
ReplayStats ReplayPages(Reader& reader, const ReplayConfig& config = {});

}  // namespace voodb::trace
