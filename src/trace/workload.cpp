#include "trace/workload.hpp"

#include "util/check.hpp"

namespace voodb::trace {

TraceWorkload::TraceWorkload(const std::string& path)
    : reader_(std::make_unique<Reader>(path)) {
  VOODB_CHECK_MSG(reader_->header().txn_records > 0,
                  "trace has no transaction records; it cannot drive a "
                  "workload replay");
}

TraceWorkload::TraceWorkload(std::istream* is)
    : reader_(std::make_unique<Reader>(is)) {
  VOODB_CHECK_MSG(reader_->header().txn_records > 0,
                  "trace has no transaction records; it cannot drive a "
                  "workload replay");
}

ocb::Transaction TraceWorkload::Next() {
  ocb::Transaction txn;
  bool in_txn = false;
  Record record;
  while (true) {
    if (!reader_->Next(record)) {
      VOODB_CHECK_MSG(!in_txn,
                      "trace ends inside a transaction (interleaved or "
                      "truncated markers)");
      reader_->Rewind();
      continue;
    }
    switch (record.kind) {
      case RecordKind::kTxnBegin:
        VOODB_CHECK_MSG(!in_txn,
                        "nested transaction markers: the trace was recorded "
                        "under concurrent users and cannot be replayed as a "
                        "serial workload");
        in_txn = true;
        txn.kind = static_cast<ocb::TransactionKind>(record.id);
        break;
      case RecordKind::kObject:
        if (in_txn) {
          if (txn.accesses.empty()) txn.root = record.id;
          txn.accesses.push_back(ocb::ObjectAccess{record.id, record.write});
        }
        break;
      case RecordKind::kTxnEnd:
        if (in_txn) {
          ++replayed_;
          return txn;
        }
        break;
      case RecordKind::kTxnAbort:
        // The attempt recorded so far was discarded by concurrency
        // control; the retry re-records its accesses, so the replayed
        // transaction keeps only the attempt that committed.
        if (in_txn) {
          txn.accesses.clear();
          txn.root = 0;
        }
        break;
      case RecordKind::kPage:
        break;  // physical stream; irrelevant to the logical workload
    }
  }
}

}  // namespace voodb::trace
