/// \file format.hpp
/// \brief The VOODB access-trace binary format (version 2).
///
/// A trace is one versioned fixed-size header followed by a stream of
/// self-describing chunks.  Records are stored *columnar* inside each
/// chunk — one kind column, one id column, one flag column — so the
/// decoder touches homogeneous arrays and the id column compresses well
/// (zigzag varint deltas between consecutive ids).  The header carries
/// the recorded run's configuration (enough to rebuild an identical
/// buffer manager for bit-exact replay) and, once `Writer::Finish` has
/// patched it, the run's own hit/miss/eviction counters so a replay can
/// verify it reproduced the recording.
///
/// Layout (all integers little-endian):
///
///   Header   (fixed size, see `Header`)
///   Chunk*   each: u32 record_count, u32 payload_bytes, then
///            kinds[record_count] (u8), ids (zigzag varint deltas),
///            flags (record_count bits, LSB-first)
///
/// The format is append-only except for the single header patch at
/// `Finish`; a trace whose header still has `kFlagFinished` clear was
/// truncated mid-recording and is rejected by the reader.
#pragma once

#include <cstdint>

namespace voodb::trace {

/// "VTRC" little-endian.
inline constexpr uint32_t kMagic = 0x43525456u;

/// Version 2 packs the issuing user's id into kTxnBegin's id column —
/// `(user << kTxnUserShift) | kind` — so traces of concurrent or
/// sharded runs replay as per-user transaction streams.  The zigzag
/// varint delta coding absorbs the widened ids.  Version 3 adds the
/// kTxnAbort marker (concurrency-control aborts/restarts), so
/// contention runs replay as full transaction streams including the
/// discarded attempts.  The reader still accepts version-1 and -2
/// traces (v1 markers decode as user 0; pre-v3 traces simply contain
/// no abort markers).
inline constexpr uint32_t kFormatVersion = 3;
inline constexpr uint32_t kMinFormatVersion = 1;

/// kTxnBegin id column layout (format v2): low byte = transaction kind
/// ordinal, upper bits = user id.
inline constexpr uint32_t kTxnUserShift = 8;
inline constexpr uint64_t kTxnKindMask = (1u << kTxnUserShift) - 1;

/// Packs a kTxnBegin id (format v2).
inline constexpr uint64_t PackTxnBegin(uint64_t kind, uint32_t user) {
  return (static_cast<uint64_t>(user) << kTxnUserShift) |
         (kind & kTxnKindMask);
}

/// Header flag bits.  The bits above kFlagFinished mark recordings
/// whose buffer behaviour a bare page-stream replay cannot reproduce
/// (replay verification refuses them; MRC analytics and workload replay
/// still apply).
enum : uint32_t {
  kFlagFinished = 1u << 0,       ///< Finish() ran; counters are valid
  kFlagVirtualMemory = 1u << 1,  ///< recorded under the VM model (Texas)
  /// Recorded with flush_on_commit: commit-time FlushAll write-backs
  /// are in the counters but not in the page stream.
  kFlagCommitFlush = 1u << 2,
  /// Recorded with the crash hazard armed: crashes drop the buffer
  /// outside the page stream.
  kFlagCrashHazard = 1u << 3,
  /// The buffer was dropped mid-recording (clustering reorganization,
  /// an explicit DropBuffer between phases) — an event the page stream
  /// does not carry.
  kFlagBufferDrop = 1u << 4,
};

/// True when a page-stream replay under the recorded configuration can
/// reproduce `flags`' recording counter-for-counter.
inline bool ReplayVerifiable(uint32_t flags) {
  return (flags & (kFlagVirtualMemory | kFlagCommitFlush |
                   kFlagCrashHazard | kFlagBufferDrop)) == 0;
}

/// Record kinds.  Transaction markers carry the transaction kind in the
/// id column; object/page records carry the OID / PageId and use the
/// flag column for the write bit.
enum class RecordKind : uint8_t {
  kTxnBegin = 0,
  kTxnEnd = 1,
  kObject = 2,
  kPage = 3,
  /// The in-flight attempt was aborted by concurrency control and will
  /// be retried: accesses recorded since the enclosing kTxnBegin belong
  /// to the discarded attempt (format v3+).
  kTxnAbort = 4,
};

/// One decoded trace record.  The reader normalizes kTxnBegin across
/// format versions: `id` is always the bare TransactionKind ordinal and
/// `user` the issuing user (0 for version-1 traces).
struct Record {
  RecordKind kind = RecordKind::kPage;
  uint64_t id = 0;    ///< OID, PageId, or TransactionKind ordinal
  bool write = false;
  uint32_t user = 0;  ///< issuing user id (kTxnBegin only)
};

/// Counters of the recorded run's buffering layer, embedded in the
/// header by `Writer::Finish` so replays can verify bit-exact
/// reproduction.
struct TraceCounters {
  uint64_t accesses = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;
};

/// The fixed-size trace header.  Plain trivially-copyable struct written
/// and read as bytes; `static_assert`s below pin the layout.
struct Header {
  uint32_t magic = kMagic;
  uint32_t version = kFormatVersion;
  uint32_t flags = 0;
  uint32_t page_size = 0;

  // --- recorded system configuration (for bit-exact replay) ---------------
  uint64_t buffer_pages = 0;
  uint8_t replacement_policy = 0;  ///< storage::ReplacementPolicy ordinal
  uint8_t prefetch_policy = 0;     ///< core::PrefetchPolicy ordinal
  uint8_t reserved0 = 0;
  uint8_t reserved1 = 0;
  uint32_t lru_k = 2;
  uint32_t prefetch_depth = 0;
  uint32_t num_classes = 0;
  uint64_t num_objects = 0;
  uint64_t num_pages = 0;
  uint64_t seed = 0;

  // --- stream summary (patched by Finish) ----------------------------------
  uint64_t num_chunks = 0;
  uint64_t num_records = 0;
  uint64_t txn_records = 0;     ///< kTxnBegin count
  uint64_t object_records = 0;
  uint64_t page_records = 0;
  TraceCounters counters;
};

static_assert(sizeof(TraceCounters) == 40, "TraceCounters layout changed");
static_assert(sizeof(Header) == 144, "trace Header layout changed");

/// Records per chunk: large enough to amortize the chunk header, small
/// enough that the recorder's fixed buffers stay cache-friendly.
inline constexpr uint32_t kChunkRecords = 4096;

}  // namespace voodb::trace
