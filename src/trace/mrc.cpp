#include "trace/mrc.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace voodb::trace {

uint64_t MrcResult::HitsAt(uint64_t pages) const {
  if (hits_prefix_.empty() || pages == 0) return 0;
  const uint64_t d = std::min<uint64_t>(pages, hits_prefix_.size() - 1);
  return hits_prefix_[d];
}

double MrcResult::HitRatioAt(uint64_t pages) const {
  return page_accesses == 0 ? 0.0
                            : static_cast<double>(HitsAt(pages)) /
                                  static_cast<double>(page_accesses);
}

double MrcResult::MeanReuseDistance() const {
  uint64_t reuses = 0;
  uint64_t sum = 0;
  for (size_t d = 1; d < reuse_histogram.size(); ++d) {
    reuses += reuse_histogram[d];
    sum += reuse_histogram[d] * d;
  }
  return reuses == 0 ? 0.0
                     : static_cast<double>(sum) / static_cast<double>(reuses);
}

uint64_t MrcResult::CacheForHitRatio(double ratio) const {
  const double target = ratio * static_cast<double>(page_accesses);
  for (size_t d = 1; d < hits_prefix_.size(); ++d) {
    if (static_cast<double>(hits_prefix_[d]) >= target) return d;
  }
  return working_set_pages;
}

MrcAnalyzer::MrcAnalyzer(uint32_t num_classes)
    : num_classes_(num_classes), class_accesses_(num_classes, 0) {
  constexpr uint64_t kInitialCapacity = 1024;
  fenwick_.assign(kInitialCapacity + 1, 0);
  live_page_.assign(kInitialCapacity, 0);
  histogram_.assign(1, 0);
}

void MrcAnalyzer::FenwickAdd(uint64_t pos, int64_t delta) {
  for (uint64_t i = pos + 1; i < fenwick_.size(); i += i & (~i + 1)) {
    fenwick_[i] += delta;
  }
}

uint64_t MrcAnalyzer::RangeCount(uint64_t from, uint64_t to) const {
  if (from > to) return 0;
  auto prefix = [this](uint64_t pos_inclusive) {
    int64_t sum = 0;
    for (uint64_t i = pos_inclusive + 1; i > 0; i -= i & (~i + 1)) {
      sum += fenwick_[i];
    }
    return sum;
  };
  const int64_t upper = prefix(to);
  const int64_t lower = from == 0 ? 0 : prefix(from - 1);
  return static_cast<uint64_t>(upper - lower);
}

void MrcAnalyzer::Compact() {
  // Live positions (one per distinct page) are remapped onto 0..W-1 in
  // access order; the tree only ever holds W ones, so its size stays
  // proportional to the working set, not the trace length.
  uint64_t capacity = live_page_.size();
  while (distinct_ * 2 > capacity) capacity *= 2;
  std::vector<uint64_t> new_live(capacity, 0);
  fenwick_.assign(capacity + 1, 0);
  uint64_t next = 0;
  for (uint64_t pos = 0; pos < live_page_.size(); ++pos) {
    const uint64_t page = live_page_[pos];
    if (page < last_pos_.size() && last_pos_[page] == pos) {
      last_pos_[page] = next;
      new_live[next] = page;
      FenwickAdd(next, 1);
      ++next;
    }
  }
  VOODB_CHECK_MSG(next == distinct_, "MRC compaction lost a live page");
  live_page_ = std::move(new_live);
  next_pos_ = next;
}

void MrcAnalyzer::OnPage(uint64_t page) {
  ++page_accesses_;
  if (page >= last_pos_.size()) {
    last_pos_.resize(std::max<uint64_t>(page + 1, last_pos_.size() * 2),
                     kNoPos);
  }
  if (next_pos_ == live_page_.size()) Compact();
  const uint64_t pos = next_pos_++;
  const uint64_t lp = last_pos_[page];
  if (lp != kNoPos) {
    // Stack distance: distinct pages whose most recent access lies
    // strictly between the two accesses to `page`, plus `page` itself.
    const uint64_t d = RangeCount(lp + 1, pos - 1) + 1;
    if (d >= histogram_.size()) histogram_.resize(d + 1, 0);
    ++histogram_[d];
    FenwickAdd(lp, -1);
  } else {
    ++distinct_;
  }
  FenwickAdd(pos, 1);
  last_pos_[page] = pos;
  live_page_[pos] = page;
}

void MrcAnalyzer::OnObject(uint64_t oid) {
  ++object_accesses_;
  if (num_classes_ > 0) ++class_accesses_[oid % num_classes_];
}

void MrcAnalyzer::Consume(Reader& reader) {
  Record record;
  while (reader.Next(record)) {
    switch (record.kind) {
      case RecordKind::kPage:
        OnPage(record.id);
        break;
      case RecordKind::kObject:
        OnObject(record.id);
        break;
      case RecordKind::kTxnBegin:
        OnTxnBegin();
        break;
      case RecordKind::kTxnEnd:
      case RecordKind::kTxnAbort:
        break;
    }
  }
}

MrcResult MrcAnalyzer::Finish() {
  MrcResult result;
  result.page_accesses = page_accesses_;
  result.object_accesses = object_accesses_;
  result.transactions = transactions_;
  result.working_set_pages = distinct_;
  histogram_.resize(distinct_ + 1, 0);
  result.reuse_histogram = histogram_;
  result.class_accesses = class_accesses_;
  result.hits_prefix_.assign(result.reuse_histogram.size(), 0);
  uint64_t running = 0;
  for (size_t d = 1; d < result.reuse_histogram.size(); ++d) {
    running += result.reuse_histogram[d];
    result.hits_prefix_[d] = running;
  }
  return result;
}

}  // namespace voodb::trace
