#include "trace/replayer.hpp"

#include <memory>
#include <vector>

#include "storage/buffer_manager.hpp"
#include "storage/prefetch.hpp"
#include "util/check.hpp"

namespace voodb::trace {

ReplayStats ReplayPages(Reader& reader, const ReplayConfig& config) {
  const Header& h = reader.header();
  const uint64_t capacity =
      config.buffer_pages != 0 ? config.buffer_pages : h.buffer_pages;
  VOODB_CHECK_MSG(capacity >= 1, "replay needs a buffer of >= 1 page");
  const auto policy =
      config.policy >= 0
          ? static_cast<storage::ReplacementPolicy>(config.policy)
          : static_cast<storage::ReplacementPolicy>(h.replacement_policy);
  const uint32_t lru_k = config.lru_k != 0 ? config.lru_k : h.lru_k;
  // The recorded run seeded the RANDOM policy (and nothing else) from
  // the buffering manager's derived stream; the header stores that seed
  // so the default-config replay is bit-exact.
  storage::BufferManager buffer(capacity, policy, desp::RandomStream(h.seed),
                                lru_k);
  if (config.match_prefetch && h.prefetch_policy != 0 && h.num_pages > 0) {
    buffer.SetPrefetcher(std::make_unique<storage::SequentialPrefetcher>(
        h.prefetch_depth, h.num_pages - 1));
  }

  ReplayStats stats;
  std::vector<storage::PageIo> ios;
  ios.reserve(64);
  Record record;
  while (reader.Next(record)) {
    if (record.kind != RecordKind::kPage) continue;
    ios.clear();
    buffer.AccessInto(record.id, record.write, ios);
    for (const storage::PageIo& io : ios) {
      if (io.kind == storage::PageIo::Kind::kRead) {
        ++stats.reads;
      } else {
        ++stats.writes;
      }
    }
  }
  const storage::BufferStats& bs = buffer.stats();
  stats.accesses = bs.accesses;
  stats.hits = bs.hits;
  stats.misses = bs.misses;
  stats.evictions = bs.evictions;
  stats.writebacks = bs.writebacks;
  return stats;
}

}  // namespace voodb::trace
