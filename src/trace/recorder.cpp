#include "trace/recorder.hpp"

#include "util/check.hpp"

namespace voodb::trace {

Recorder::Recorder(Writer* writer)
    : writer_(writer),
      kinds_(kChunkRecords),
      ids_(kChunkRecords),
      flags_(kChunkRecords) {
  VOODB_CHECK_MSG(writer_ != nullptr, "recorder needs a writer");
}

void Recorder::Flush() {
  if (fill_ == 0) return;
  writer_->WriteChunk(kinds_.data(), ids_.data(), flags_.data(), fill_);
  fill_ = 0;
}

}  // namespace voodb::trace
