/// \file reader.hpp
/// \brief Streaming trace reader with header and integrity validation.
///
/// Rejects wrong-magic / wrong-version / truncated headers up front and
/// unfinished or truncated chunk streams as they are encountered, so a
/// half-written trace can never silently replay as a shorter run.
/// Decoding buffers are reused across chunks; `Next` hands out records
/// one at a time without allocating.
#pragma once

#include <cstdint>
#include <fstream>
#include <istream>
#include <memory>
#include <string>
#include <vector>

#include "trace/format.hpp"

namespace voodb::trace {

class Reader {
 public:
  /// Reads and validates the header from `is` (not owned).  Throws
  /// util::Error on a malformed or unfinished trace.
  explicit Reader(std::istream* is);

  /// Convenience: opens `path` as a binary file.
  explicit Reader(const std::string& path);

  const Header& header() const { return header_; }

  /// Decodes the next record into `record`; false at end of stream.
  /// Throws util::Error when the stream ends inside a chunk.
  bool Next(Record& record);

  /// Rewinds to the first chunk (used by looping workload replay).
  void Rewind();

  /// Records decoded so far.
  uint64_t records_read() const { return records_read_; }

 private:
  void Validate();
  /// Loads and decodes the next chunk; false at a clean end of stream.
  bool LoadChunk();

  std::unique_ptr<std::ifstream> owned_file_;
  std::istream* is_ = nullptr;
  Header header_;
  uint64_t records_read_ = 0;
  uint64_t chunks_read_ = 0;

  // Decoded current chunk (SoA, reused).
  std::vector<uint8_t> kinds_;
  std::vector<uint64_t> ids_;
  std::vector<uint8_t> flags_;  ///< packed bits
  std::vector<uint8_t> payload_;
  uint32_t chunk_size_ = 0;
  uint32_t cursor_ = 0;
};

}  // namespace voodb::trace
