#include "exp/report.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/check.hpp"

namespace voodb::exp {

namespace {

/// Round-trippable double formatting (shortest of %.15g/%.17g that
/// survives a parse round trip); NaN/Inf have no JSON form.
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.15g", v);
  if (std::strtod(buf, nullptr) != v) {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

}  // namespace

std::string JsonWriter::Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::Separate() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (comma_stack_.back()) out_ += ",";
  comma_stack_.back() = true;
}

JsonWriter& JsonWriter::BeginObject() {
  Separate();
  out_ += "{";
  comma_stack_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  VOODB_CHECK_MSG(comma_stack_.size() > 1 && !after_key_,
                  "unbalanced EndObject");
  comma_stack_.pop_back();
  out_ += "}";
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  Separate();
  out_ += "[";
  comma_stack_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  VOODB_CHECK_MSG(comma_stack_.size() > 1 && !after_key_,
                  "unbalanced EndArray");
  comma_stack_.pop_back();
  out_ += "]";
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& name) {
  VOODB_CHECK_MSG(!after_key_, "Key after Key without a value");
  Separate();
  out_ += "\"" + Escape(name) + "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(const std::string& v) {
  Separate();
  out_ += "\"" + Escape(v) + "\"";
  return *this;
}

JsonWriter& JsonWriter::Value(const char* v) {
  return Value(std::string(v));
}

JsonWriter& JsonWriter::Value(double v) {
  Separate();
  out_ += JsonNumber(v);
  return *this;
}

JsonWriter& JsonWriter::Value(uint64_t v) {
  Separate();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t v) {
  Separate();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Value(bool v) {
  Separate();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  Separate();
  out_ += "null";
  return *this;
}

namespace {

void ManifestJson(JsonWriter& w, const RunManifest& m) {
  w.Key("name").Value(m.name);
  w.Key("base_seed").Value(m.base_seed);
  w.Key("replications").Value(m.replications);
  w.Key("threads").Value(static_cast<uint64_t>(m.threads));
  w.Key("wall_clock_ms").Value(m.wall_clock_ms);
  w.Key("ci_level").Value(m.ci_level);
  if (!m.notes.empty()) {
    w.Key("notes").BeginObject();
    for (const auto& [key, value] : m.notes) w.Key(key).Value(value);
    w.EndObject();
  }
}

}  // namespace

namespace detail {

void MetricsJson(JsonWriter& w, const desp::ReplicationResult& result,
                 double ci_level) {
  w.BeginObject();
  for (const std::string& name : result.MetricNames()) {
    const desp::Tally& tally = result.Metric(name);
    w.Key(name).BeginObject();
    w.Key("count").Value(tally.count());
    w.Key("mean").Value(tally.mean());
    if (tally.count() >= 1) {
      w.Key("ci_half_width")
          .Value(desp::StudentConfidenceInterval(tally, ci_level).half_width);
    } else {
      w.Key("ci_half_width").Null();
    }
    w.Key("stddev").Value(tally.stddev());
    w.Key("min").Value(tally.min());
    w.Key("max").Value(tally.max());
    w.EndObject();
  }
  w.EndObject();
}

}  // namespace detail

std::string ResultToJson(const RunManifest& manifest,
                         const desp::ReplicationResult& result) {
  JsonWriter w;
  w.BeginObject();
  ManifestJson(w, manifest);
  w.Key("metrics");
  detail::MetricsJson(w, result, manifest.ci_level);
  w.EndObject();
  return w.str();
}

std::string GridToJson(const RunManifest& manifest,
                       const std::vector<GridCell>& cells) {
  JsonWriter w;
  w.BeginObject();
  ManifestJson(w, manifest);
  w.Key("cells").BeginArray();
  for (const GridCell& cell : cells) {
    w.BeginObject();
    w.Key("index").Value(static_cast<uint64_t>(cell.point.index));
    w.Key("label").Value(cell.point.Label());
    w.Key("coords").BeginObject();
    for (const auto& [axis, value] : cell.point.coords) {
      w.Key(axis).Value(value);
    }
    w.EndObject();
    w.Key("metrics");
    detail::MetricsJson(w, cell.result, manifest.ci_level);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

std::string GridToCsv(const std::vector<GridCell>& cells, double ci_level) {
  std::ostringstream os;
  if (cells.empty()) return "";
  for (const auto& [axis, value] : cells.front().point.coords) {
    os << axis << ",";
  }
  os << "metric,count,mean,ci_half_width,stddev,min,max\n";
  os.precision(std::numeric_limits<double>::max_digits10);
  for (const GridCell& cell : cells) {
    for (const std::string& name : cell.result.MetricNames()) {
      const desp::Tally& tally = cell.result.Metric(name);
      for (const auto& [axis, value] : cell.point.coords) {
        os << value << ",";
      }
      const double half_width =
          tally.count() >= 1
              ? desp::StudentConfidenceInterval(tally, ci_level).half_width
              : std::numeric_limits<double>::quiet_NaN();
      os << name << "," << tally.count() << "," << tally.mean() << ","
         << half_width << "," << tally.stddev() << "," << tally.min() << ","
         << tally.max() << "\n";
    }
  }
  return os.str();
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  VOODB_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  out << content;
  out.flush();
  VOODB_CHECK_MSG(out.good(), "failed writing '" << path << "'");
}

}  // namespace voodb::exp
