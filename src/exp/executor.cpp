#include "exp/executor.hpp"

#include <utility>

#include "util/check.hpp"

namespace voodb::exp {

size_t ThreadPool::HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

ThreadPool::ThreadPool(ExecutorOptions options)
    : queue_capacity_(options.queue_capacity) {
  VOODB_CHECK_MSG(queue_capacity_ >= 1, "queue capacity must be >= 1");
  const size_t n = options.threads == 0 ? HardwareThreads() : options.threads;
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (std::thread& w : workers_) w.join();
}

bool ThreadPool::Submit(std::function<void()> task) {
  VOODB_CHECK_MSG(static_cast<bool>(task), "task must be callable");
  {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [this] {
      return cancelled_ || stop_ || queue_.size() < queue_capacity_;
    });
    if (cancelled_ || stop_) return false;
    queue_.push_back(std::move(task));
  }
  not_empty_.notify_one();
  return true;
}

void ThreadPool::Cancel() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    cancelled_ = true;
    queue_.clear();
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  idle_.notify_all();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

bool ThreadPool::cancelled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cancelled_;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    not_full_.notify_one();
    task();  // tasks handle their own exceptions (see ReplicationFarm)
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace voodb::exp
