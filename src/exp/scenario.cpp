#include "exp/scenario.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/cli.hpp"
#include "voodb/param_registry.hpp"

namespace voodb::exp {

ScenarioRegistry& ScenarioRegistry::Instance() {
  static ScenarioRegistry registry;
  return registry;
}

void ScenarioRegistry::Register(Scenario scenario) {
  VOODB_CHECK_MSG(!scenario.name.empty(), "scenario needs a name");
  VOODB_CHECK_MSG(static_cast<bool>(scenario.run),
                  "scenario '" << scenario.name << "' needs a run hook");
  VOODB_CHECK_MSG(index_.count(scenario.name) == 0,
                  "duplicate scenario '" << scenario.name << "'");
  index_.emplace(scenario.name, scenarios_.size());
  scenarios_.push_back(std::move(scenario));
}

bool ScenarioRegistry::Contains(const std::string& name) const {
  return index_.count(name) != 0;
}

const Scenario* ScenarioRegistry::Find(const std::string& name) const {
  const auto it = index_.find(name);
  return it == index_.end() ? nullptr : &scenarios_[it->second];
}

const Scenario& ScenarioRegistry::At(const std::string& name) const {
  const Scenario* scenario = Find(name);
  if (scenario == nullptr) {
    const std::string nearest = util::NearestMatch(name, Names());
    VOODB_CHECK_MSG(false, "unknown scenario '"
                               << name << "'"
                               << (nearest.empty()
                                       ? ""
                                       : " (did you mean '" + nearest + "'?)")
                               << "; run `voodb list` for the catalog");
  }
  return *scenario;
}

std::vector<std::string> ScenarioRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(scenarios_.size());
  for (const Scenario& scenario : scenarios_) names.push_back(scenario.name);
  return names;
}

ScenarioResult RunScenario(const Scenario& scenario,
                           const ScenarioOptions& options,
                           const std::vector<ParamOverride>& overrides) {
  VOODB_CHECK_MSG(static_cast<bool>(scenario.run),
                  "scenario '" << scenario.name << "' has no run hook");
  ScenarioContext ctx;
  ctx.scenario = &scenario;
  ctx.config = scenario.base;
  ctx.options = options;
  const core::ParamRegistry& registry = core::ParamRegistry::Instance();
  for (const auto& [name, value] : overrides) {
    const core::ParamDescriptor& descriptor = registry.At(name);
    VOODB_CHECK_MSG(
        std::find(scenario.swept.begin(), scenario.swept.end(), name) ==
            scenario.swept.end(),
        "parameter '" << name << "' is swept by scenario '" << scenario.name
                      << "' itself; --set cannot override it");
    VOODB_CHECK_MSG(
        scenario.system_config_used ||
            descriptor.domain == core::ParamDomain::kWorkload,
        "scenario '" << scenario.name
                     << "' runs the direct-execution emulator only; system "
                        "parameter '"
                     << name << "' would be ignored");
    registry.Set(core::ParamTarget{&ctx.config.system, &ctx.config.workload},
                 name, value);
  }
  ctx.overrides = overrides;
  ctx.config.replications = options.replications;
  ctx.config.base_seed = options.seed;
  ctx.config.threads = options.threads;
  // Replicated runs build one system per replication — possibly
  // concurrently on the farm — and every one of them would truncate the
  // same trace_path.  Recording is a single-run affair.
  VOODB_CHECK_MSG(!ctx.config.system.trace_record || options.replications <= 1,
                  "parameter 'trace_record' conflicts with --replications="
                      << options.replications
                      << ": every replication records into the same "
                         "trace_path; drop --replications (or pass "
                         "--replications=1), or record a single fixed-seed "
                         "run with `voodb trace record`");
  VOODB_CHECK_MSG(
      ctx.config.system.profile_path.empty() || options.replications <= 1,
      "parameter 'profile_path' conflicts with --replications="
          << options.replications
          << ": every replication writes the same Chrome-trace file; drop "
             "--replications (or pass --replications=1), or profile a "
             "single fixed-seed run with `voodb profile`");
  ctx.config.system.Validate();
  ctx.config.workload.Validate();
  return scenario.run(ctx);
}

}  // namespace voodb::exp
