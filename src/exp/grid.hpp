/// \file grid.hpp
/// \brief Declarative cartesian parameter-sweep grids.
///
/// Darmont et al.'s benchmark methodology runs every figure/table as a
/// parameterized scenario grid (number of instances, memory budget,
/// multiprogramming level, ...).  `SweepGrid` names the axes once and
/// enumerates the cartesian product in a fixed row-major order (first axis
/// slowest), so a grid cell has a stable index and label across runs.
///
/// `RunGrid` executes (point × replication) work items on one shared
/// thread pool with the same determinism contract as the farm; every cell
/// uses the *same* replication-seed chain (common random numbers), so a
/// cell is bit-identical to a standalone `ReplicationFarm::Run` of that
/// point's model with the same base seed — and cross-point comparisons
/// have lower variance.
///
/// `RunExperimentGrid` binds axes by name to `core::VoodbConfig` /
/// `ocb::OcbParameters` fields (see `ApplyAxis`) and farms a full VOODB
/// experiment per cell.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "desp/replication.hpp"
#include "exp/farm.hpp"
#include "voodb/experiment.hpp"

namespace voodb::exp {

/// One cell of the cartesian product.
struct GridPoint {
  size_t index = 0;  ///< row-major rank in the grid
  /// (axis name, value) in axis-declaration order.
  std::vector<std::pair<std::string, double>> coords;

  /// Value of axis `name`; throws on unknown axis.
  double Get(const std::string& name) const;
  bool Has(const std::string& name) const;
  /// "axis1=v1 axis2=v2" — stable, suitable for table rows and file names.
  std::string Label() const;
};

/// A named-axis cartesian sweep specification.
class SweepGrid {
 public:
  /// Declares an axis; values must be non-empty, names unique.
  SweepGrid& Axis(std::string name, std::vector<double> values);

  size_t NumAxes() const { return axes_.size(); }
  /// Product of axis sizes; 1 for an axis-less grid (a single empty point).
  size_t NumPoints() const;

  /// The `index`-th point in row-major order (first axis slowest).
  GridPoint Point(size_t index) const;
  std::vector<GridPoint> Points() const;

  const std::vector<std::pair<std::string, std::vector<double>>>& axes()
      const {
    return axes_;
  }

 private:
  std::vector<std::pair<std::string, std::vector<double>>> axes_;
};

/// One evaluated grid cell.
struct GridCell {
  GridPoint point;
  desp::ReplicationResult result;
};

/// Builds the replication model for one grid point.
using PointModelFactory =
    std::function<desp::ReplicationRunner::Model(const GridPoint&)>;

/// Runs `replications` of every grid point concurrently on one pool.
/// Work items are (point, replication) pairs, so the pool stays busy even
/// when points have unequal cost.  Results are reduced per point in
/// replication order (see farm.hpp for the determinism contract).
std::vector<GridCell> RunGrid(const SweepGrid& grid,
                              const PointModelFactory& make_model,
                              uint64_t replications,
                              const FarmOptions& options);

/// Applies a named axis value to an experiment config.  Axes resolve
/// through `core::ParamRegistry`, so *every* registered parameter of
/// `VoodbConfig` (including its disk timings) and `OcbParameters` is a
/// valid axis — numeric fields take their value directly, booleans take
/// 0/1, and enums (e.g. "system_class", "page_replacement",
/// "event_queue") take their enumerator ordinal.  Values are range- and
/// integrality-checked; errors name the parameter and suggest the
/// nearest name.  Run `voodb params` for the full axis list.
void ApplyAxis(core::ExperimentConfig& config, const std::string& axis,
               double value);

/// True when `axis` is a workload (OCB) parameter, i.e. the object base
/// must be regenerated for cells along it.  Throws on unknown axes.
bool IsWorkloadAxis(const std::string& axis);

/// Farms a full VOODB experiment per grid cell.  `base_config` provides
/// every parameter not named by an axis, plus `replications` and
/// `base_seed`.  Object bases are generated once and shared across cells
/// unless the grid has a workload axis, in which case each distinct cell
/// gets its own base.
std::vector<GridCell> RunExperimentGrid(
    const core::ExperimentConfig& base_config, const SweepGrid& grid,
    size_t threads = 0);

}  // namespace voodb::exp
