/// \file executor.hpp
/// \brief Thread-pool executor for the experiment farm.
///
/// The VOODB protocol (paper §4.2.2) runs every experiment as ~100
/// independent replications; they are embarrassingly parallel, so the farm
/// schedules them on this pool.  The pool is deliberately small and boring:
/// a fixed set of workers, a bounded FIFO queue (submission blocks instead
/// of buffering unbounded closures), and cooperative cancellation that
/// drops queued-but-unstarted tasks.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace voodb::exp {

/// Configuration of a ThreadPool.
struct ExecutorOptions {
  /// Number of worker threads; 0 means ThreadPool::HardwareThreads().
  size_t threads = 0;
  /// Maximum queued-but-unstarted tasks; Submit blocks while full.
  size_t queue_capacity = 1024;
};

/// A fixed-size thread pool with a bounded task queue and cancellation.
class ThreadPool {
 public:
  explicit ThreadPool(ExecutorOptions options = {});
  /// Drains: finishes every queued and running task, then joins the
  /// workers.  Call Cancel() first to abandon queued work instead.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task`; blocks while the queue is at capacity.  Returns
  /// false (and drops the task) when the pool has been cancelled.
  bool Submit(std::function<void()> task);

  /// Drops every queued-but-unstarted task and rejects new submissions.
  /// Tasks already running are left to finish.
  void Cancel();

  /// Blocks until the queue is empty and no task is running.
  void Wait();

  size_t thread_count() const { return workers_.size(); }
  bool cancelled() const;

  /// std::thread::hardware_concurrency with a floor of 1.
  static size_t HardwareThreads();

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable not_full_;   // signalled when queue space frees up
  std::condition_variable not_empty_;  // signalled when work (or stop) arrives
  std::condition_variable idle_;       // signalled when the pool drains
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t queue_capacity_;
  size_t active_ = 0;    // tasks currently executing
  bool stop_ = false;    // destructor: exit once the queue drains
  bool cancelled_ = false;
};

}  // namespace voodb::exp
