/// \file farm.hpp
/// \brief Parallel, bit-deterministic replication engine.
///
/// `ReplicationFarm` is the concurrent counterpart of
/// `desp::ReplicationRunner` (which is now a thin serial adapter over this
/// class).  Determinism contract:
///
///  1. Replication seeds are derived exactly as the serial runner always
///     did — a SplitMix64 chain from the base seed — *before* any task is
///     scheduled, so replication i sees the same seed at any thread count.
///  2. Each replication records its `desp::MetricSink` observations into a
///     slot indexed by its replication number.
///  3. After all replications finish, per-metric results are reduced in
///     replication order via the parallel-combinable `Tally::Merge`.
///
/// Scheduling order therefore never influences the result: a run with one
/// thread and a run with N threads produce bit-identical
/// `desp::ReplicationResult`s (every metric's count, mean, variance,
/// min and max).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "desp/replication.hpp"

namespace voodb::exp {

/// Configuration of a farm run.
struct FarmOptions {
  /// Worker threads; 0 means "all hardware threads", 1 runs inline on the
  /// calling thread (no pool is created).
  size_t threads = 0;
  /// Base seed of the SplitMix64 replication-seed chain.
  uint64_t base_seed = 42;
};

/// Runs a replication model concurrently with deterministic results.
class ReplicationFarm {
 public:
  using Model = desp::ReplicationRunner::Model;

  explicit ReplicationFarm(Model model, FarmOptions options = {});

  /// Runs `n` replications on the pool and reduces deterministically.
  /// Exceptions thrown by the model are rethrown here (first one wins;
  /// outstanding replications are cancelled).
  desp::ReplicationResult Run(uint64_t n) const;

  /// The paper's pilot-study protocol (§4.2.2), identical to
  /// `desp::ReplicationRunner::RunToPrecision` but with the pilot and the
  /// final pass both farmed out.
  desp::ReplicationResult RunToPrecision(const std::string& metric,
                                         double relative_precision,
                                         uint64_t pilot_n = 10,
                                         uint64_t max_n = 100,
                                         double level = 0.95) const;

  /// The per-replication seed chain (SplitMix64 from `base_seed`); exposed
  /// so callers and tests can cross-check the serial derivation.
  static std::vector<uint64_t> DeriveSeeds(uint64_t base_seed, uint64_t n);

  /// Order-deterministic reduction: merges per-replication observations
  /// (slot i = replication i) into a result, in replication order.
  static desp::ReplicationResult Reduce(
      const std::vector<std::map<std::string, double>>& per_replication);

  /// As above, but reduces full sinks: scalar observations into tallies and
  /// histogram observations into merged histograms, both in replication
  /// order (slot i = replication i), so thread count never matters.
  static desp::ReplicationResult Reduce(
      const std::vector<desp::MetricSink>& per_replication);

  const FarmOptions& options() const { return options_; }

 private:
  Model model_;
  FarmOptions options_;
};

}  // namespace voodb::exp
