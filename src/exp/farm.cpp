#include "exp/farm.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <exception>
#include <mutex>
#include <utility>

#include "desp/random.hpp"
#include "desp/stats.hpp"
#include "exp/executor.hpp"
#include "util/check.hpp"

namespace voodb::exp {

ReplicationFarm::ReplicationFarm(Model model, FarmOptions options)
    : model_(std::move(model)), options_(options) {
  VOODB_CHECK_MSG(static_cast<bool>(model_), "model must be callable");
}

std::vector<uint64_t> ReplicationFarm::DeriveSeeds(uint64_t base_seed,
                                                   uint64_t n) {
  std::vector<uint64_t> seeds;
  seeds.reserve(n);
  uint64_t sm = base_seed;
  for (uint64_t i = 0; i < n; ++i) seeds.push_back(desp::SplitMix64(sm));
  return seeds;
}

desp::ReplicationResult ReplicationFarm::Reduce(
    const std::vector<std::map<std::string, double>>& per_replication) {
  desp::ReplicationResult result;
  for (const auto& observations : per_replication) {
    for (const auto& [name, value] : observations) {
      desp::Tally single;
      single.Add(value);
      result.tallies_[name].Merge(single);
    }
    ++result.replications_;
  }
  return result;
}

desp::ReplicationResult ReplicationFarm::Reduce(
    const std::vector<desp::MetricSink>& per_replication) {
  desp::ReplicationResult result;
  for (const desp::MetricSink& sink : per_replication) {
    for (const auto& [name, value] : sink.values()) {
      desp::Tally single;
      single.Add(value);
      result.tallies_[name].Merge(single);
    }
    for (const auto& [name, histogram] : sink.histograms()) {
      const auto it = result.histograms_.find(name);
      if (it == result.histograms_.end()) {
        result.histograms_.emplace(name, histogram);
      } else {
        it->second.Merge(histogram);
      }
    }
    ++result.replications_;
  }
  return result;
}

desp::ReplicationResult ReplicationFarm::Run(uint64_t n) const {
  VOODB_CHECK_MSG(n >= 1, "need at least one replication");
  const std::vector<uint64_t> seeds = DeriveSeeds(options_.base_seed, n);
  std::vector<desp::MetricSink> observations(n);

  const size_t hw =
      options_.threads == 0 ? ThreadPool::HardwareThreads() : options_.threads;
  const size_t threads = std::min<size_t>(hw, n);

  auto run_one = [&](uint64_t i) {
    desp::MetricSink sink;
    model_(seeds[i], sink);
    observations[i] = std::move(sink);
  };

  if (threads <= 1) {
    for (uint64_t i = 0; i < n; ++i) run_one(i);
    return Reduce(observations);
  }

  // Self-scheduling workers: each claims the next replication index until
  // the range is exhausted.  Results land in index-addressed slots, so the
  // claim order is irrelevant to the reduction.
  std::atomic<uint64_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex error_mu;
  std::exception_ptr first_error;
  {
    ThreadPool pool({threads, /*queue_capacity=*/threads});
    for (size_t w = 0; w < threads; ++w) {
      pool.Submit([&] {
        for (;;) {
          const uint64_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= n || failed.load(std::memory_order_relaxed)) return;
          try {
            run_one(i);
          } catch (...) {
            failed.store(true, std::memory_order_relaxed);
            std::lock_guard<std::mutex> lock(error_mu);
            if (!first_error) first_error = std::current_exception();
            return;
          }
        }
      });
    }
    pool.Wait();
  }
  if (first_error) std::rethrow_exception(first_error);
  return Reduce(observations);
}

desp::ReplicationResult ReplicationFarm::RunToPrecision(
    const std::string& metric, double relative_precision, uint64_t pilot_n,
    uint64_t max_n, double level) const {
  VOODB_CHECK_MSG(relative_precision > 0.0,
                  "relative precision must be positive");
  VOODB_CHECK_MSG(pilot_n >= 2 && pilot_n <= max_n,
                  "need 2 <= pilot_n <= max_n");
  const desp::ReplicationResult pilot = Run(pilot_n);
  const desp::ConfidenceInterval ci = pilot.Interval(metric, level);
  const double target = relative_precision * std::abs(ci.mean);
  uint64_t n = pilot_n;
  if (target > 0.0 && ci.half_width > target) {
    n = pilot_n + desp::AdditionalReplications(pilot_n, ci.half_width, target);
  }
  n = std::min(n, max_n);
  // Re-run from scratch so the final estimate uses independent seeds in a
  // single pass (the paper likewise reports the full-run statistics).
  return Run(n);
}

}  // namespace voodb::exp
