#include "exp/grid.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <exception>
#include <memory>
#include <mutex>
#include <sstream>

#include "exp/executor.hpp"
#include "util/check.hpp"
#include "util/table.hpp"
#include "voodb/param_registry.hpp"

namespace voodb::exp {

double GridPoint::Get(const std::string& name) const {
  for (const auto& [axis, value] : coords) {
    if (axis == name) return value;
  }
  VOODB_CHECK_MSG(false, "grid point has no axis '" << name << "'");
  return 0.0;
}

bool GridPoint::Has(const std::string& name) const {
  for (const auto& [axis, value] : coords) {
    if (axis == name) return true;
  }
  return false;
}

std::string GridPoint::Label() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [axis, value] : coords) {
    if (!first) os << " ";
    first = false;
    // Integral values print without a trailing ".00".
    if (value == std::floor(value) && std::abs(value) < 1e15) {
      os << axis << "=" << static_cast<int64_t>(value);
    } else {
      os << axis << "=" << util::FormatDouble(value, 4);
    }
  }
  return os.str();
}

SweepGrid& SweepGrid::Axis(std::string name, std::vector<double> values) {
  VOODB_CHECK_MSG(!name.empty(), "axis name must be non-empty");
  VOODB_CHECK_MSG(!values.empty(),
                  "axis '" << name << "' needs at least one value");
  for (const auto& [existing, vs] : axes_) {
    VOODB_CHECK_MSG(existing != name, "duplicate axis '" << name << "'");
  }
  axes_.emplace_back(std::move(name), std::move(values));
  return *this;
}

size_t SweepGrid::NumPoints() const {
  size_t product = 1;
  for (const auto& [name, values] : axes_) {
    VOODB_CHECK_MSG(product <= SIZE_MAX / values.size(),
                    "grid is too large (point count overflows)");
    product *= values.size();
  }
  return product;
}

GridPoint SweepGrid::Point(size_t index) const {
  VOODB_CHECK_MSG(index < NumPoints(), "grid point index out of range");
  GridPoint point;
  point.index = index;
  point.coords.reserve(axes_.size());
  // Row-major: the last axis varies fastest.
  size_t stride = NumPoints();
  size_t rest = index;
  for (const auto& [name, values] : axes_) {
    stride /= values.size();
    point.coords.emplace_back(name, values[rest / stride]);
    rest %= stride;
  }
  return point;
}

std::vector<GridPoint> SweepGrid::Points() const {
  std::vector<GridPoint> points;
  const size_t n = NumPoints();
  points.reserve(n);
  for (size_t i = 0; i < n; ++i) points.push_back(Point(i));
  return points;
}

std::vector<GridCell> RunGrid(const SweepGrid& grid,
                              const PointModelFactory& make_model,
                              uint64_t replications,
                              const FarmOptions& options) {
  VOODB_CHECK_MSG(static_cast<bool>(make_model), "model factory required");
  VOODB_CHECK_MSG(replications >= 1, "need at least one replication");
  const std::vector<GridPoint> points = grid.Points();
  const size_t num_points = points.size();

  // Instantiate models serially in point order (factories may share state).
  std::vector<desp::ReplicationRunner::Model> models;
  models.reserve(num_points);
  for (const GridPoint& point : points) {
    models.push_back(make_model(point));
    VOODB_CHECK_MSG(static_cast<bool>(models.back()),
                    "factory returned a null model for " << point.Label());
  }

  // Every point reuses the same seed chain: common random numbers across
  // cells, and each cell matches a standalone farm run of its model.
  const std::vector<uint64_t> seeds =
      ReplicationFarm::DeriveSeeds(options.base_seed, replications);
  std::vector<std::vector<std::map<std::string, double>>> observations(
      num_points,
      std::vector<std::map<std::string, double>>(replications));

  auto run_one = [&](size_t p, uint64_t i) {
    desp::MetricSink sink;
    models[p](seeds[i], sink);
    observations[p][i] = sink.values();
  };

  VOODB_CHECK_MSG(num_points <= SIZE_MAX / replications,
                  "grid work-item count overflows");
  const uint64_t total = num_points * replications;
  const size_t hw =
      options.threads == 0 ? ThreadPool::HardwareThreads() : options.threads;
  const size_t threads = static_cast<size_t>(
      std::min<uint64_t>(hw, total));

  if (threads <= 1) {
    for (uint64_t t = 0; t < total; ++t) {
      run_one(t / replications, t % replications);
    }
  } else {
    std::atomic<uint64_t> next{0};
    std::atomic<bool> failed{false};
    std::mutex error_mu;
    std::exception_ptr first_error;
    {
      ThreadPool pool({threads, /*queue_capacity=*/threads});
      for (size_t w = 0; w < threads; ++w) {
        pool.Submit([&] {
          for (;;) {
            const uint64_t t = next.fetch_add(1, std::memory_order_relaxed);
            if (t >= total || failed.load(std::memory_order_relaxed)) return;
            try {
              run_one(t / replications, t % replications);
            } catch (...) {
              failed.store(true, std::memory_order_relaxed);
              std::lock_guard<std::mutex> lock(error_mu);
              if (!first_error) first_error = std::current_exception();
              return;
            }
          }
        });
      }
      pool.Wait();
    }
    if (first_error) std::rethrow_exception(first_error);
  }

  std::vector<GridCell> cells;
  cells.reserve(num_points);
  for (size_t p = 0; p < num_points; ++p) {
    cells.push_back({points[p], ReplicationFarm::Reduce(observations[p])});
  }
  return cells;
}

bool IsWorkloadAxis(const std::string& axis) {
  return core::ParamRegistry::Instance().At(axis).domain ==
         core::ParamDomain::kWorkload;
}

void ApplyAxis(core::ExperimentConfig& config, const std::string& axis,
               double value) {
  // Thin wrapper over the parameter registry: every registered parameter
  // — numeric, boolean or enum — is a sweepable axis, with range and
  // integrality checks (silent truncation would skew a sweep) and errors
  // that name the parameter.
  core::ParamRegistry::Instance().Set(
      core::ParamTarget{&config.system, &config.workload}, axis, value);
}

std::vector<GridCell> RunExperimentGrid(
    const core::ExperimentConfig& base_config, const SweepGrid& grid,
    size_t threads) {
  const std::vector<GridPoint> points = grid.Points();
  std::vector<core::ExperimentConfig> configs;
  configs.reserve(points.size());
  bool varies_workload = false;
  for (const GridPoint& point : points) {
    core::ExperimentConfig config = base_config;
    for (const auto& [axis, value] : point.coords) {
      ApplyAxis(config, axis, value);
      varies_workload = varies_workload || IsWorkloadAxis(axis);
    }
    configs.push_back(std::move(config));
  }

  // Generate object bases serially up-front (deterministic order); cells
  // share one base unless a workload axis forces per-cell regeneration.
  std::vector<std::shared_ptr<const ocb::ObjectBase>> bases;
  bases.reserve(points.size());
  if (varies_workload) {
    for (const core::ExperimentConfig& config : configs) {
      bases.push_back(std::make_shared<const ocb::ObjectBase>(
          ocb::ObjectBase::Generate(config.workload)));
    }
  } else {
    const auto shared = std::make_shared<const ocb::ObjectBase>(
        ocb::ObjectBase::Generate(base_config.workload));
    bases.assign(points.size(), shared);
  }

  FarmOptions options;
  options.threads = threads;
  options.base_seed = base_config.base_seed;
  return RunGrid(
      grid,
      [&](const GridPoint& point) {
        return core::Experiment::MakeModel(configs[point.index],
                                           bases[point.index].get());
      },
      base_config.replications, options);
}

}  // namespace voodb::exp
