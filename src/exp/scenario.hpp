/// \file scenario.hpp
/// \brief Named, declarative experiment scenarios.
///
/// Darmont's benchmark-methodology line of work insists that an
/// experiment's value is its parameterization surface: every figure,
/// table and ablation is just the generic model steered by a different
/// parameter set.  A `Scenario` captures one such experiment as a value —
/// name, description, base `ExperimentConfig`, sweep grid, and a run
/// hook — and the `ScenarioRegistry` makes the whole catalog addressable
/// by name from one driver (`voodb list | describe | run`).
///
/// `RunScenario` resolves `--set key=value` overrides through the
/// parameter registry before invoking the scenario, so *every*
/// `VoodbConfig` / `OcbParameters` field can be overridden per run
/// without a bespoke flag.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "exp/grid.hpp"
#include "voodb/experiment.hpp"

namespace voodb::exp {

/// Per-invocation knobs of the experiment protocol (how long / how wide
/// to run), as opposed to model parameters (which live in the scenario's
/// `ExperimentConfig` and are overridden via `--set`).
struct ScenarioOptions {
  uint64_t replications = 10;   ///< the paper used 100
  uint64_t transactions = 1000; ///< measured transactions per replication
  uint64_t seed = 42;           ///< base RNG seed
  size_t threads = 0;           ///< farm workers; 0 = all hardware threads
  bool csv = false;             ///< CSV instead of aligned tables
};

struct Scenario;

/// What a scenario run hands back: a flat "section/x/series/stat" ->
/// value map mirroring the BENCH_<name>.json structure, so callers (the
/// driver, parity tests) can compare runs without scraping stdout.
using ScenarioResult = std::map<std::string, double>;

/// A `--set` style override, e.g. {"buffer_pages", "2048"} or
/// {"system_class", "page_server"}.
using ParamOverride = std::pair<std::string, std::string>;

/// The resolved inputs a scenario runs with.
struct ScenarioContext {
  const Scenario* scenario = nullptr;
  /// Scenario base config after `--set` overrides; `replications`,
  /// `base_seed` and `threads` mirror `options`.
  core::ExperimentConfig config;
  ScenarioOptions options;
  /// The raw overrides, already applied to `config`.  Run hooks that
  /// build additional configs beyond `config` (e.g. a preset per table
  /// row) re-apply these so `--set` reaches every leg of the scenario.
  std::vector<ParamOverride> overrides;
};

using ScenarioRunner = std::function<ScenarioResult(const ScenarioContext&)>;

/// One named experiment: a paper figure/table, an ablation, or any
/// user-defined parameter study.
struct Scenario {
  std::string name;         ///< catalog key ("fig08", "ablation_sysclass")
  std::string title;        ///< one-line heading for `voodb list`
  std::string description;  ///< paragraph for `voodb describe`
  /// Defaults for every model parameter; `--set` overrides resolve into
  /// a copy of this through the parameter registry.
  core::ExperimentConfig base;
  /// The scenario's sweep axes (empty for single-point experiments).
  /// Axis names are scenario-defined labels interpreted by the run hook
  /// — usually registry parameter names ("num_objects"), but a scenario
  /// spanning surfaces beyond the registry may use its own (fig08's
  /// "memory_mb" drives both the emulator's cache in MB and the
  /// catalog-rescaled simulation buffer).  Do not feed this grid to
  /// `RunExperimentGrid` unless every axis is a registry parameter.
  SweepGrid grid;
  /// Registry parameters the run hook itself varies (its compared /
  /// swept knobs, e.g. `system_class` for the SYSCLASS ablation, or
  /// `buffer_pages` for a memory sweep).  `--set` of one of these is
  /// rejected up-front instead of being silently overwritten.
  std::vector<std::string> swept;
  /// False for scenarios that run only the direct-execution emulator:
  /// system-domain `--set` overrides would be silently ignored, so they
  /// are rejected (workload overrides still apply).
  bool system_config_used = true;
  ScenarioRunner run;
};

/// Name -> Scenario catalog.  Registration order is preserved (the paper
/// figures read in order); lookups by name throw with a nearest-name
/// suggestion.
class ScenarioRegistry {
 public:
  static ScenarioRegistry& Instance();

  /// Registers a scenario; throws voodb::util::Error on a duplicate or
  /// empty name or a missing run hook.
  void Register(Scenario scenario);

  bool Contains(const std::string& name) const;
  const Scenario* Find(const std::string& name) const;
  /// Throws voodb::util::Error with a nearest-name suggestion.
  const Scenario& At(const std::string& name) const;
  /// Scenario names in registration order.
  std::vector<std::string> Names() const;
  const std::vector<Scenario>& scenarios() const { return scenarios_; }

 private:
  std::vector<Scenario> scenarios_;
  std::map<std::string, size_t> index_;
};

/// Runs `scenario`: copies its base config, applies `overrides` through
/// the parameter registry (values may be enum names), mirrors `options`
/// into the config, validates, and invokes the run hook.
ScenarioResult RunScenario(const Scenario& scenario,
                           const ScenarioOptions& options,
                           const std::vector<ParamOverride>& overrides = {});

}  // namespace voodb::exp
