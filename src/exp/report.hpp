/// \file report.hpp
/// \brief Machine-readable experiment results: run manifests, JSON, CSV.
///
/// Darmont's benchmark-methodology line of work stresses reproducible
/// protocols: a result is only comparable when the parameters that
/// produced it travel with it.  `RunManifest` carries those parameters
/// (name, seed, replication count, thread count, wall clock, free-form
/// notes); the emitters below serialize a manifest plus per-metric
/// statistics so the bench harnesses can drop `BENCH_<name>.json` files
/// that downstream tooling diffs across PRs.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "desp/replication.hpp"
#include "exp/grid.hpp"

namespace voodb::exp {

/// A minimal JSON emitter (objects, arrays, scalars; string escaping;
/// NaN/Inf serialize as null).  No external dependencies.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  /// Object key; must be followed by a value or Begin*.
  JsonWriter& Key(const std::string& name);
  JsonWriter& Value(const std::string& v);
  JsonWriter& Value(const char* v);
  JsonWriter& Value(double v);
  JsonWriter& Value(uint64_t v);
  JsonWriter& Value(int64_t v);
  JsonWriter& Value(int v) { return Value(static_cast<int64_t>(v)); }
  JsonWriter& Value(bool v);
  JsonWriter& Null();

  const std::string& str() const { return out_; }

  static std::string Escape(const std::string& s);

 private:
  void Separate();
  std::string out_;
  // true = a value was already emitted at this nesting depth.
  std::vector<bool> comma_stack_{false};
  bool after_key_ = false;
};

/// Identifies one run for the record.
struct RunManifest {
  std::string name;           ///< experiment / bench identifier
  uint64_t base_seed = 0;
  uint64_t replications = 0;  ///< requested replications per point
  size_t threads = 0;         ///< 0 = all hardware threads
  double wall_clock_ms = 0.0;
  double ci_level = 0.95;
  /// Free-form (key, value) pairs, e.g. {"transactions", "1000"}.
  std::vector<std::pair<std::string, std::string>> notes;
};

/// Serializes a replicated result: manifest + one entry per metric with
/// count, mean, ci_half_width (null when undefined), stddev, min, max.
std::string ResultToJson(const RunManifest& manifest,
                         const desp::ReplicationResult& result);

/// Serializes a sweep-grid run: manifest + one entry per cell (axis
/// coordinates, label, per-metric statistics).
std::string GridToJson(const RunManifest& manifest,
                       const std::vector<GridCell>& cells);

/// CSV flattening of a grid: one row per (cell, metric) with columns
/// <axis...>, metric, count, mean, ci_half_width, stddev, min, max.
std::string GridToCsv(const std::vector<GridCell>& cells, double ci_level);

/// Writes `content` to `path` (throws voodb::util::Error on failure).
void WriteFile(const std::string& path, const std::string& content);

namespace detail {
/// Appends the per-metric statistics object for `result` to `w` (callers
/// bracket it with Key/Begin as needed).
void MetricsJson(JsonWriter& w, const desp::ReplicationResult& result,
                 double ci_level);
}  // namespace detail

}  // namespace voodb::exp
