/// \file schema.hpp
/// \brief OCB schema: classes, inheritance and typed reference attributes.
#pragma once

#include <cstdint>
#include <vector>

#include "desp/random.hpp"
#include "ocb/parameters.hpp"
#include "ocb/types.hpp"

namespace voodb::ocb {

/// One reference attribute of a class.
struct ReferenceAttribute {
  ClassId target_class = 0;
  /// OCB reference type tag in [0, NREFT); clustering policies may weight
  /// reference types differently.
  uint32_t type = 0;
};

/// One class of the generated schema.
struct ClassDef {
  ClassId id = 0;
  /// Superclass, or kNoParent for roots of the inheritance forest.
  ClassId parent = kNoParent;
  /// Size in bytes of one instance of this class.
  uint32_t instance_size = 0;
  /// Reference attributes every instance of this class carries.
  std::vector<ReferenceAttribute> references;

  static constexpr ClassId kNoParent = static_cast<ClassId>(-1);
};

/// The generated schema: a dense vector of classes forming an inheritance
/// forest plus a typed reference graph.
class Schema {
 public:
  /// Generates a schema from the OCB parameters.  Deterministic in
  /// `stream`'s seed.
  static Schema Generate(const OcbParameters& params,
                         desp::RandomStream stream);

  const std::vector<ClassDef>& classes() const { return classes_; }
  const ClassDef& Class(ClassId id) const;
  uint32_t NumClasses() const { return static_cast<uint32_t>(classes_.size()); }

  /// Mean instance size over classes (bytes).
  double MeanInstanceSize() const;

 private:
  std::vector<ClassDef> classes_;
};

}  // namespace voodb::ocb
