/// \file parameters.hpp
/// \brief The OCB parameter block (the benchmark's "thorough set of
/// parameters", VOODB paper §3.3).
#pragma once

#include <cstdint>

namespace voodb::ocb {

/// Distribution used to pick reference targets and roots.
enum class Distribution {
  kUniform,  ///< uniform over the candidate range
  kZipf,     ///< Zipf-skewed (hot objects / hot classes)
  kNormal,   ///< gaussian around the source (locality window)
};

const char* ToString(Distribution d);

/// All tunables of the OCB object base and workload.
///
/// Database-structure parameters mirror the OCB publication (NC, MAXNREF,
/// BASESIZE, NO, NREFT, locality windows); workload parameters mirror
/// Table 5 of the VOODB paper (COLDN, HOTN, PSET/SETDEPTH,
/// PSIMPLE/SIMDEPTH, PHIER/HIEDEPTH, PSTOCH/STODEPTH).  Defaults are the
/// paper's defaults wherever the paper states them.
struct OcbParameters {
  // --- Database structure -------------------------------------------------
  /// NC: number of classes in the schema.
  uint32_t num_classes = 50;
  /// MAXNREF: maximum number of reference attributes per class.  The
  /// actual count for a class is drawn uniformly in [1, MAXNREF].
  uint32_t max_refs_per_class = 10;
  /// BASESIZE: base instance size in bytes.  The instance size of class c
  /// is BASESIZE * (1 + c) when `class_size_growth` is set (so schemas
  /// with more classes hold larger objects).  The default is calibrated
  /// so the paper's reference base (NC=50, NO=20000) occupies ~21 MB in
  /// Texas and ~28 MB in O2, as §4.3 reports; see DESIGN.md.
  uint32_t base_instance_size = 32;
  /// Whether instance size grows linearly with the class index.
  bool class_size_growth = true;
  /// NO: number of object instances in the base.
  uint64_t num_objects = 20000;
  /// NREFT: number of reference types (inheritance, aggregation, ...).
  uint32_t num_reference_types = 4;
  /// CLOCREF: class locality window — a class's reference attributes
  /// point to classes within this distance of it (wraps around).
  uint32_t class_locality = 50;
  /// OLOCREF: object locality window — an object's references point to
  /// objects within this distance of it (wraps around).
  uint64_t object_locality = 100;
  /// Distribution of reference targets inside the locality window.
  Distribution reference_distribution = Distribution::kUniform;
  /// Zipf skew used when a distribution above is kZipf.
  double zipf_skew = 0.8;

  // --- Workload ------------------------------------------------------------
  /// COLDN: transactions executed before measurements start.
  uint32_t cold_transactions = 0;
  /// HOTN: measured transactions.
  uint32_t hot_transactions = 1000;
  /// PSET / SETDEPTH: set-oriented access probability and depth.
  double p_set = 0.25;
  uint32_t set_depth = 3;
  /// PSIMPLE / SIMDEPTH: simple traversal probability and depth.
  double p_simple = 0.25;
  uint32_t simple_depth = 3;
  /// PHIER / HIEDEPTH: hierarchy traversal probability and depth.
  double p_hierarchy = 0.25;
  uint32_t hierarchy_depth = 5;
  /// PSTOCH / STODEPTH: stochastic traversal probability and depth.
  double p_stochastic = 0.25;
  uint32_t stochastic_depth = 50;
  /// PRAND / RANDOMN: random-access probability and accesses per
  /// transaction (independent uniform draws over the whole base).
  double p_random_access = 0.0;
  uint32_t random_access_count = 25;
  /// PSCAN / SCANMAX: sequential class-scan probability and instance cap
  /// (0 = scan every instance of the chosen class).
  double p_scan = 0.0;
  uint64_t scan_max_instances = 0;
  /// Probability that an individual object access is an update.
  double p_update = 0.0;
  /// Distribution of transaction root objects.
  Distribution root_distribution = Distribution::kUniform;
  /// Roots are drawn from a fixed *hot set* of `root_region` objects
  /// spread evenly across the base (0 = roots may be any object).  A
  /// small hot set concentrates the workload on a few neighbourhoods and
  /// makes the same traversals repeat — the "favorable conditions" of the
  /// paper's DSTC experiment (§4.4).
  uint64_t root_region = 0;
  /// Mean think time between a user's transactions (ms, exponential).
  double think_time_ms = 0.0;
  /// Whether hierarchy traversals visit each object at most once
  /// (set semantics) or once per path (bag semantics).
  bool traversal_visits_once = true;

  // --- YCSB-style zipfian mix (workload_source = ycsb_zipf) ----------------
  /// Zipf exponent of the per-access key draw over the whole base
  /// (0 = uniform; YCSB's classic hotspot regime is ~0.99).  Rank 0 —
  /// the lowest OIDs — is hottest.
  double ycsb_skew = 0.99;
  /// Probability an individual access is a read; the rest write.
  double ycsb_read_pct = 0.95;
  /// Independent object accesses per YCSB transaction.
  uint32_t ycsb_ops_per_txn = 8;

  /// Base RNG seed for object-base generation (workload streams are
  /// derived per replication by the experiment runner).
  uint64_t seed = 1999;

  /// Throws voodb::util::Error when a value is out of range (negative
  /// probabilities, probabilities not summing to 1, zero sizes, ...).
  void Validate() const;
};

}  // namespace voodb::ocb
