/// \file ycsb.hpp
/// \brief YCSB-style zipfian read/write-mix workload source.
///
/// The OCB traversals exercise the object graph; what they cannot express
/// is the cloud-serving access pattern the concurrency-control literature
/// sweeps — independent point accesses with a tunable hotspot.  This
/// source brings that half in: every transaction is `ycsb_ops_per_txn`
/// point accesses whose targets follow a Zipf law over the whole object
/// base and whose read/write mix is a coin flip per access.  Select it
/// with `workload_source = ycsb_zipf`; `VoodbSystem::Drive` substitutes
/// it for the caller's generator exactly like trace replay, so every
/// scenario (cc_abyss included) gains the axis without touching its run
/// hook.
#pragma once

#include "desp/random.hpp"
#include "ocb/object_base.hpp"
#include "ocb/types.hpp"
#include "ocb/workload.hpp"

namespace voodb::ocb {

/// Deterministic (seeded) YCSB-style stream over an OCB object base.
/// Tunables (`ycsb_skew`, `ycsb_read_pct`, `ycsb_ops_per_txn`) come from
/// the OcbParameters the base was generated with, so sweeps drive them
/// through the ordinary parameter registry.
class YcsbZipfWorkload : public WorkloadSource {
 public:
  YcsbZipfWorkload(const ObjectBase* base, desp::RandomStream stream);

  /// The next transaction: ops_per_txn zipfian point accesses.
  Transaction Next() override;

  /// The stream has no transaction kinds to force; the request is
  /// ignored (documented no-op) and the next transaction is returned.
  Transaction NextOfKind(TransactionKind kind) override;

 private:
  const ObjectBase* base_;
  desp::RandomStream stream_;
};

}  // namespace voodb::ocb
