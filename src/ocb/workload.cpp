#include "ocb/workload.hpp"

#include <cmath>
#include <deque>

#include "util/check.hpp"

namespace voodb::ocb {

const char* ToString(TransactionKind kind) {
  switch (kind) {
    case TransactionKind::kSetOriented:
      return "SET_ORIENTED";
    case TransactionKind::kSimpleTraversal:
      return "SIMPLE_TRAVERSAL";
    case TransactionKind::kHierarchyTraversal:
      return "HIERARCHY_TRAVERSAL";
    case TransactionKind::kStochasticTraversal:
      return "STOCHASTIC_TRAVERSAL";
    case TransactionKind::kRandomAccess:
      return "RANDOM_ACCESS";
    case TransactionKind::kSequentialScan:
      return "SEQUENTIAL_SCAN";
  }
  return "?";
}

WorkloadGenerator::WorkloadGenerator(const ObjectBase* base,
                                     desp::RandomStream stream)
    : base_(base), stream_(stream) {
  VOODB_CHECK_MSG(base_ != nullptr, "workload needs an object base");
  visit_stamp_.assign(base_->NumObjects(), 0);
}

Transaction WorkloadGenerator::Next() {
  const OcbParameters& p = base_->params();
  const double u = stream_.NextDouble();
  TransactionKind kind;
  double cumulative = p.p_set;
  if (u < cumulative) {
    kind = TransactionKind::kSetOriented;
  } else if (u < (cumulative += p.p_simple)) {
    kind = TransactionKind::kSimpleTraversal;
  } else if (u < (cumulative += p.p_hierarchy)) {
    kind = TransactionKind::kHierarchyTraversal;
  } else if (u < (cumulative += p.p_stochastic)) {
    kind = TransactionKind::kStochasticTraversal;
  } else if (u < (cumulative += p.p_random_access)) {
    kind = TransactionKind::kRandomAccess;
  } else {
    kind = TransactionKind::kSequentialScan;
  }
  return NextOfKind(kind);
}

Transaction WorkloadGenerator::NextOfKind(TransactionKind kind) {
  const OcbParameters& p = base_->params();
  Transaction txn;
  txn.kind = kind;
  txn.root = PickRoot();
  ++visit_epoch_;
  switch (kind) {
    case TransactionKind::kSetOriented:
      GenerateSetOriented(txn, p.set_depth);
      break;
    case TransactionKind::kSimpleTraversal:
      GenerateSimple(txn, p.simple_depth);
      break;
    case TransactionKind::kHierarchyTraversal:
      GenerateHierarchy(txn, p.hierarchy_depth);
      break;
    case TransactionKind::kStochasticTraversal:
      GenerateStochastic(txn, p.stochastic_depth);
      break;
    case TransactionKind::kRandomAccess:
      GenerateRandomAccess(txn, p.random_access_count);
      break;
    case TransactionKind::kSequentialScan:
      GenerateSequentialScan(txn, p.scan_max_instances);
      break;
  }
  generated_accesses_ += txn.accesses.size();
  return txn;
}

Oid WorkloadGenerator::PickRoot() {
  const OcbParameters& p = base_->params();
  const auto full = static_cast<int64_t>(base_->NumObjects());
  auto no = full;
  int64_t stride = 1;
  if (p.root_region > 0 && static_cast<int64_t>(p.root_region) < full) {
    // Hot set: `root_region` objects strided evenly across the base.
    no = static_cast<int64_t>(p.root_region);
    stride = full / no;
  }
  int64_t index = 0;
  switch (p.root_distribution) {
    case Distribution::kUniform:
      index = stream_.UniformInt(0, no - 1);
      break;
    case Distribution::kZipf:
      index = stream_.Zipf(no, p.zipf_skew);
      break;
    case Distribution::kNormal: {
      const double raw =
          stream_.Normal(static_cast<double>(no) / 2.0,
                         static_cast<double>(no) / 6.0);
      index = static_cast<int64_t>(std::llround(raw));
      if (index < 0) index = 0;
      if (index >= no) index = no - 1;
      break;
    }
  }
  return static_cast<Oid>(index * stride);
}

bool WorkloadGenerator::MaybeWrite() {
  const double p = base_->params().p_update;
  return p > 0.0 && stream_.Bernoulli(p);
}

void WorkloadGenerator::AppendAccess(Transaction& txn, Oid oid) {
  txn.accesses.push_back(ObjectAccess{oid, MaybeWrite()});
}

bool WorkloadGenerator::MarkVisited(Oid oid) {
  if (visit_stamp_[oid] == visit_epoch_) return false;
  visit_stamp_[oid] = visit_epoch_;
  return true;
}

void WorkloadGenerator::GenerateSetOriented(Transaction& txn, uint32_t depth) {
  // Breadth-first set access: every distinct object within `depth` levels.
  std::deque<std::pair<Oid, uint32_t>> frontier;
  MarkVisited(txn.root);
  AppendAccess(txn, txn.root);
  frontier.emplace_back(txn.root, 0);
  while (!frontier.empty()) {
    const auto [oid, level] = frontier.front();
    frontier.pop_front();
    if (level >= depth) continue;
    for (Oid ref : base_->References(oid)) {
      if (ref == kNullOid || !MarkVisited(ref)) continue;
      AppendAccess(txn, ref);
      frontier.emplace_back(ref, level + 1);
    }
  }
}

Oid WorkloadGenerator::PickLiveReference(Oid from) {
  // Uniform draw over the non-null slots of `from`'s CSR row, without
  // materializing them.  This is the single dangling-reference filter all
  // random traversals share: a kNullOid slot is skipped exactly as if the
  // slot did not exist (same rule the deterministic traversals apply
  // inline), so every traversal kind treats sparse bases identically.
  const OidSpan refs = base_->References(from);
  size_t live = 0;
  for (Oid r : refs) {
    if (r != kNullOid) ++live;
  }
  if (live == 0) return kNullOid;
  int64_t index = stream_.UniformInt(0, static_cast<int64_t>(live) - 1);
  for (Oid r : refs) {
    if (r == kNullOid) continue;
    if (index-- == 0) return r;
  }
  return kNullOid;  // unreachable
}

void WorkloadGenerator::GenerateSimple(Transaction& txn, uint32_t depth) {
  Oid current = txn.root;
  AppendAccess(txn, current);
  for (uint32_t level = 0; level < depth; ++level) {
    const Oid next = PickLiveReference(current);
    if (next == kNullOid) break;  // leaf
    current = next;
    AppendAccess(txn, current);
  }
}

void WorkloadGenerator::GenerateHierarchy(Transaction& txn, uint32_t depth) {
  MarkVisited(txn.root);
  AppendAccess(txn, txn.root);
  HierarchyVisit(txn, txn.root, depth);
}

void WorkloadGenerator::HierarchyVisit(Transaction& txn, Oid oid,
                                       uint32_t remaining) {
  if (remaining == 0) return;
  const bool visit_once = base_->params().traversal_visits_once;
  for (Oid ref : base_->References(oid)) {
    if (ref == kNullOid) continue;
    if (visit_once) {
      if (!MarkVisited(ref)) continue;
    }
    AppendAccess(txn, ref);
    HierarchyVisit(txn, ref, remaining - 1);
  }
}

void WorkloadGenerator::GenerateRandomAccess(Transaction& txn,
                                             uint32_t count) {
  // The root was already chosen; it counts as the first access.  The
  // remaining draws are independent and uniform over the whole base
  // (ignoring the hot-root restriction: random accesses model index or
  // dictionary lookups).
  AppendAccess(txn, txn.root);
  const auto no = static_cast<int64_t>(base_->NumObjects());
  for (uint32_t i = 1; i < count; ++i) {
    AppendAccess(txn, static_cast<Oid>(stream_.UniformInt(0, no - 1)));
  }
}

void WorkloadGenerator::GenerateSequentialScan(Transaction& txn,
                                               uint64_t max_instances) {
  // Scan every instance of the root's class in OID order (instances of
  // class c are the OIDs congruent to c modulo NC, by construction).
  const ClassId cls = base_->ClassOf(txn.root);
  const uint64_t nc = base_->schema().NumClasses();
  uint64_t scanned = 0;
  for (Oid oid = cls; oid < base_->NumObjects(); oid += nc) {
    if (max_instances > 0 && scanned >= max_instances) break;
    AppendAccess(txn, oid);
    ++scanned;
  }
}

void WorkloadGenerator::GenerateStochastic(Transaction& txn, uint32_t steps) {
  Oid current = txn.root;
  AppendAccess(txn, current);
  for (uint32_t step = 0; step < steps; ++step) {
    const Oid next = PickLiveReference(current);
    if (next == kNullOid) break;
    current = next;
    AppendAccess(txn, current);
  }
}

}  // namespace voodb::ocb
