/// \file types.hpp
/// \brief Fundamental identifiers and access records of the OCB workload.
///
/// OCB (Object Clustering Benchmark, Darmont et al., EDBT '98) is the
/// workload model the VOODB paper plugs into its simulation model.  The
/// benchmark manipulates a generic object base: `NC` classes linked by
/// typed references, `NO` instances whose reference graph mirrors the
/// schema, and four kinds of transactions (set-oriented accesses plus
/// simple / hierarchical / stochastic traversals).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/span.hpp"

namespace voodb::ocb {

/// Identifies a class of the schema (0-based, dense).
using ClassId = uint32_t;

/// Logical object identifier (0-based, dense).  Physical OIDs, when a
/// system uses them (Texas), live in the storage layer, not here.
using Oid = uint64_t;

/// Sentinel for "no object" (dangling reference slot).
inline constexpr Oid kNullOid = static_cast<Oid>(-1);

/// A non-owning view over a contiguous run of OIDs (one CSR row of the
/// object-base reference graph, or the objects stored on one page).
using OidSpan = util::IdSpan<Oid>;

/// The OCB transaction kinds.  The four traversal kinds are the paper's
/// Table 5 mix; random accesses and sequential class scans complete the
/// OCB operation set (they default to probability 0 in the mix).
enum class TransactionKind {
  kSetOriented,         ///< breadth-first set access, depth SETDEPTH
  kSimpleTraversal,     ///< single random path, depth SIMDEPTH
  kHierarchyTraversal,  ///< depth-first traversal of all refs, HIEDEPTH
  kStochasticTraversal, ///< random walk of STODEPTH steps
  kRandomAccess,        ///< RANDOMN independent uniform object accesses
  kSequentialScan,      ///< all instances of one class, in OID order
};

/// Human-readable transaction-kind name.
const char* ToString(TransactionKind kind);

/// One object-level operation inside a transaction.
struct ObjectAccess {
  Oid oid = kNullOid;
  bool is_write = false;
};

/// A generated transaction: a root plus the object accesses the
/// Transaction Manager will perform, in order.
struct Transaction {
  TransactionKind kind = TransactionKind::kSetOriented;
  Oid root = kNullOid;
  std::vector<ObjectAccess> accesses;
};

}  // namespace voodb::ocb
