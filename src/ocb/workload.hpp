/// \file workload.hpp
/// \brief The OCB transaction generator (paper Table 5 workload).
#pragma once

#include <cstdint>
#include <vector>

#include "desp/random.hpp"
#include "ocb/object_base.hpp"
#include "ocb/types.hpp"

namespace voodb::ocb {

/// Anything that can supply the transaction stream of a run.  The
/// synthetic OCB generator below is the default implementation; the
/// trace subsystem provides a deterministic replay source
/// (`trace::TraceWorkload`) so one recorded run can be re-executed under
/// any system configuration.  The drivers (VoodbSystem, both emulators)
/// consume this interface.
class WorkloadSource {
 public:
  virtual ~WorkloadSource() = default;

  /// Supplies the next transaction.
  virtual Transaction Next() = 0;

  /// Supplies a transaction of a forced kind (sources that replay a
  /// fixed stream may ignore the request and document doing so).
  virtual Transaction NextOfKind(TransactionKind kind) = 0;
};

/// Generates the OCB transaction stream over a given object base.
///
/// Each call to Next() draws a transaction kind from the PSET / PSIMPLE /
/// PHIER / PSTOCH mix, a root object, and materializes the ordered list of
/// object accesses the transaction performs:
///
/// * **set-oriented access** — all objects reachable from the root within
///   SETDEPTH levels, breadth-first, each at most once;
/// * **simple traversal** — one random reference followed per level,
///   SIMDEPTH levels deep;
/// * **hierarchy traversal** — depth-first traversal of *all* references
///   down to HIEDEPTH (each object visited once when
///   `traversal_visits_once`, else once per path);
/// * **stochastic traversal** — a random walk of STODEPTH steps.
///
/// The generator is deterministic in its RandomStream seed and never
/// mutates the object base.
class WorkloadGenerator : public WorkloadSource {
 public:
  WorkloadGenerator(const ObjectBase* base, desp::RandomStream stream);

  /// Generates the next transaction.
  Transaction Next() override;

  /// Generates a transaction of a forced kind (used by the DSTC
  /// experiments, which run pure depth-3 hierarchy traversals).
  Transaction NextOfKind(TransactionKind kind) override;

  /// Total object accesses generated so far (all transactions).
  uint64_t GeneratedAccesses() const { return generated_accesses_; }

 private:
  Oid PickRoot();
  /// Uniform draw among the non-null reference slots of `from`
  /// (kNullOid when every slot dangles).  The shared dangling-slot
  /// filter of the random traversals.
  Oid PickLiveReference(Oid from);
  bool MaybeWrite();
  void AppendAccess(Transaction& txn, Oid oid);
  void GenerateSetOriented(Transaction& txn, uint32_t depth);
  void GenerateSimple(Transaction& txn, uint32_t depth);
  void GenerateHierarchy(Transaction& txn, uint32_t depth);
  void GenerateStochastic(Transaction& txn, uint32_t steps);
  void GenerateRandomAccess(Transaction& txn, uint32_t count);
  void GenerateSequentialScan(Transaction& txn, uint64_t max_instances);
  void HierarchyVisit(Transaction& txn, Oid oid, uint32_t remaining);
  bool MarkVisited(Oid oid);

  const ObjectBase* base_;
  desp::RandomStream stream_;
  uint64_t generated_accesses_ = 0;
  // Epoch-stamped visited set: O(1) reset per transaction.
  std::vector<uint32_t> visit_stamp_;
  uint32_t visit_epoch_ = 0;
};

}  // namespace voodb::ocb
