#include "ocb/parameters.hpp"

#include <cmath>

#include "util/check.hpp"
#include "voodb/param_registry.hpp"

namespace voodb::ocb {

const char* ToString(Distribution d) {
  switch (d) {
    case Distribution::kUniform:
      return "UNIFORM";
    case Distribution::kZipf:
      return "ZIPF";
    case Distribution::kNormal:
      return "NORMAL";
  }
  return "?";
}

void OcbParameters::Validate() const {
  // Per-field ranges come from the parameter registry, so every error
  // names the offending parameter; only the cross-field constraint (the
  // transaction mix must be a probability distribution) lives here.
  core::ParamRegistry::Instance().ValidateWorkload(*this);
  const double total = p_set + p_simple + p_hierarchy + p_stochastic +
                       p_random_access + p_scan;
  VOODB_CHECK_MSG(std::fabs(total - 1.0) < 1e-9,
                  "transaction probabilities must sum to 1, got " << total);
}

}  // namespace voodb::ocb
