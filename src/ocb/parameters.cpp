#include "ocb/parameters.hpp"

#include <cmath>

#include "util/check.hpp"

namespace voodb::ocb {

const char* ToString(Distribution d) {
  switch (d) {
    case Distribution::kUniform:
      return "UNIFORM";
    case Distribution::kZipf:
      return "ZIPF";
    case Distribution::kNormal:
      return "NORMAL";
  }
  return "?";
}

void OcbParameters::Validate() const {
  VOODB_CHECK_MSG(num_classes >= 1, "NC must be >= 1");
  VOODB_CHECK_MSG(max_refs_per_class >= 1, "MAXNREF must be >= 1");
  VOODB_CHECK_MSG(base_instance_size >= 1, "BASESIZE must be >= 1");
  VOODB_CHECK_MSG(num_objects >= 1, "NO must be >= 1");
  VOODB_CHECK_MSG(num_reference_types >= 1, "NREFT must be >= 1");
  VOODB_CHECK_MSG(class_locality >= 1, "CLOCREF must be >= 1");
  VOODB_CHECK_MSG(object_locality >= 1, "OLOCREF must be >= 1");
  VOODB_CHECK_MSG(zipf_skew >= 0.0, "Zipf skew must be >= 0");
  auto probability = [](double p) { return p >= 0.0 && p <= 1.0; };
  VOODB_CHECK_MSG(probability(p_set) && probability(p_simple) &&
                      probability(p_hierarchy) && probability(p_stochastic) &&
                      probability(p_random_access) && probability(p_scan),
                  "transaction probabilities must lie in [0, 1]");
  const double total = p_set + p_simple + p_hierarchy + p_stochastic +
                       p_random_access + p_scan;
  VOODB_CHECK_MSG(std::fabs(total - 1.0) < 1e-9,
                  "transaction probabilities must sum to 1, got " << total);
  VOODB_CHECK_MSG(probability(p_update), "PUPDATE must lie in [0, 1]");
  VOODB_CHECK_MSG(think_time_ms >= 0.0, "think time must be >= 0");
  VOODB_CHECK_MSG(set_depth >= 1 && simple_depth >= 1 &&
                      hierarchy_depth >= 1 && stochastic_depth >= 1,
                  "traversal depths must be >= 1");
  VOODB_CHECK_MSG(random_access_count >= 1, "RANDOMN must be >= 1");
}

}  // namespace voodb::ocb
