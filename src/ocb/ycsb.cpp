#include "ocb/ycsb.hpp"

#include "util/check.hpp"

namespace voodb::ocb {

YcsbZipfWorkload::YcsbZipfWorkload(const ObjectBase* base,
                                   desp::RandomStream stream)
    : base_(base), stream_(stream) {
  VOODB_CHECK_MSG(base_ != nullptr, "ycsb workload needs an object base");
  VOODB_CHECK_MSG(base_->NumObjects() > 0,
                  "ycsb workload needs a non-empty object base");
}

Transaction YcsbZipfWorkload::Next() {
  const OcbParameters& params = base_->params();
  Transaction txn;
  // Point accesses with no graph structure: kRandomAccess is the OCB
  // kind with the same semantics, so downstream accounting (per-kind
  // metrics, trace markers) stays meaningful.
  txn.kind = TransactionKind::kRandomAccess;
  txn.accesses.reserve(params.ycsb_ops_per_txn);
  for (uint32_t i = 0; i < params.ycsb_ops_per_txn; ++i) {
    ObjectAccess access;
    access.oid = static_cast<Oid>(
        stream_.Zipf(static_cast<int64_t>(base_->NumObjects()),
                     params.ycsb_skew));
    access.is_write = !stream_.Bernoulli(params.ycsb_read_pct);
    txn.accesses.push_back(access);
  }
  txn.root = txn.accesses.empty() ? kNullOid : txn.accesses.front().oid;
  return txn;
}

Transaction YcsbZipfWorkload::NextOfKind(TransactionKind) { return Next(); }

}  // namespace voodb::ocb
