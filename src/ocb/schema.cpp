#include "ocb/schema.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace voodb::ocb {

Schema Schema::Generate(const OcbParameters& params,
                        desp::RandomStream stream) {
  params.Validate();
  Schema schema;
  schema.classes_.resize(params.num_classes);
  const auto nc = static_cast<int64_t>(params.num_classes);
  for (ClassId c = 0; c < params.num_classes; ++c) {
    ClassDef& def = schema.classes_[c];
    def.id = c;
    // Inheritance forest: each non-root class picks a superclass among the
    // classes generated before it, so the graph is acyclic by construction.
    if (c > 0 && stream.Bernoulli(0.5)) {
      def.parent =
          static_cast<ClassId>(stream.UniformInt(0, static_cast<int64_t>(c) - 1));
    }
    def.instance_size = params.class_size_growth
                            ? params.base_instance_size * (1 + c)
                            : params.base_instance_size;
    const auto nref = static_cast<uint32_t>(
        stream.UniformInt(1, params.max_refs_per_class));
    def.references.resize(nref);
    for (auto& ref : def.references) {
      // Reference targets respect the CLOCREF locality window around the
      // source class (wrapping), drawn per the configured distribution.
      const int64_t window =
          std::min<int64_t>(params.class_locality, nc);
      int64_t offset = 0;
      switch (params.reference_distribution) {
        case Distribution::kUniform:
          offset = stream.UniformInt(0, window - 1);
          break;
        case Distribution::kZipf:
          offset = stream.Zipf(window, params.zipf_skew);
          break;
        case Distribution::kNormal: {
          const double raw =
              stream.Normal(0.0, static_cast<double>(window) / 4.0);
          offset = static_cast<int64_t>(std::llround(std::fabs(raw))) %
                   window;
          break;
        }
      }
      ref.target_class =
          static_cast<ClassId>((static_cast<int64_t>(c) + offset) % nc);
      ref.type = static_cast<uint32_t>(
          stream.UniformInt(0, params.num_reference_types - 1));
    }
  }
  return schema;
}

const ClassDef& Schema::Class(ClassId id) const {
  VOODB_CHECK_MSG(id < classes_.size(), "class id " << id << " out of range");
  return classes_[id];
}

double Schema::MeanInstanceSize() const {
  if (classes_.empty()) return 0.0;
  double total = 0.0;
  for (const auto& c : classes_) total += c.instance_size;
  return total / static_cast<double>(classes_.size());
}

}  // namespace voodb::ocb
