/// \file object_base.hpp
/// \brief The OCB object base: instances and their reference graph.
#pragma once

#include <cstdint>
#include <vector>

#include "desp/random.hpp"
#include "ocb/parameters.hpp"
#include "ocb/schema.hpp"
#include "ocb/types.hpp"

namespace voodb::ocb {

/// One object instance.
struct ObjectDef {
  Oid id = kNullOid;
  ClassId cls = 0;
  uint32_t size = 0;
  /// Reference slots; parallel to the class's reference attributes.
  /// Slots may be kNullOid (dangling).
  std::vector<Oid> references;
};

/// The generated object base (schema + instances).
///
/// Instances are assigned to classes round-robin so every class is
/// populated; reference targets respect the OLOCREF locality window and
/// point to instances of the slot's target class wherever possible.
class ObjectBase {
 public:
  /// Generates a base; deterministic in `params.seed`.
  static ObjectBase Generate(const OcbParameters& params);

  const Schema& schema() const { return schema_; }
  const std::vector<ObjectDef>& objects() const { return objects_; }
  const ObjectDef& Object(Oid oid) const;
  uint64_t NumObjects() const { return objects_.size(); }

  /// Sum of instance sizes (bytes), i.e. the payload size of the base.
  uint64_t TotalBytes() const { return total_bytes_; }

  /// Number of instances of class `c`.
  uint64_t InstancesOf(ClassId c) const;

  /// Mean number of non-null references per object.
  double MeanFanout() const;

  const OcbParameters& params() const { return params_; }

 private:
  OcbParameters params_;
  Schema schema_;
  std::vector<ObjectDef> objects_;
  std::vector<uint64_t> instances_per_class_;
  uint64_t total_bytes_ = 0;
};

}  // namespace voodb::ocb
