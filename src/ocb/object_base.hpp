/// \file object_base.hpp
/// \brief The OCB object base: instances and their reference graph.
///
/// The base is stored data-oriented: instance attributes live in
/// structure-of-arrays form (one dense array per attribute, indexed by
/// OID) and the reference graph is CSR — one `ref_offsets_` array of
/// NO+1 row boundaries plus one flat `ref_targets_` array, instead of a
/// `std::vector<Oid>` per object.  Traversals iterate a CSR row as one
/// contiguous span, so the workload generator and the clustering
/// policies touch exactly the cache lines holding the data.
#pragma once

#include <cstdint>
#include <vector>

#include "desp/random.hpp"
#include "ocb/parameters.hpp"
#include "ocb/schema.hpp"
#include "ocb/types.hpp"

namespace voodb::ocb {

/// Lightweight view of one object instance (valid while the owning
/// ObjectBase is alive).  `references` is the object's CSR row; slots are
/// parallel to the class's reference attributes and may be kNullOid.
struct ObjectDef {
  Oid id = kNullOid;
  ClassId cls = 0;
  uint32_t size = 0;
  OidSpan references;
};

/// The generated object base (schema + instances).
///
/// Instances are assigned to classes round-robin so every class is
/// populated; reference targets respect the OLOCREF locality window and
/// point to instances of the slot's target class wherever possible.
class ObjectBase {
 public:
  /// Generates a base; deterministic in `params.seed`.
  static ObjectBase Generate(const OcbParameters& params);

  const Schema& schema() const { return schema_; }
  /// View of object `oid` (bounds-checked).
  ObjectDef Object(Oid oid) const;
  uint64_t NumObjects() const { return num_objects_; }

  /// Class of `oid` (unchecked fast path; round-robin assignment).
  ClassId ClassOf(Oid oid) const {
    return static_cast<ClassId>(oid % num_classes_);
  }
  /// Instance size of `oid` in bytes (unchecked fast path).
  uint32_t SizeOf(Oid oid) const { return class_sizes_[ClassOf(oid)]; }
  /// Reference slots of `oid` as a CSR row (unchecked fast path).
  OidSpan References(Oid oid) const {
    const uint64_t begin = ref_offsets_[oid];
    return OidSpan(ref_targets_.data() + begin,
                   static_cast<size_t>(ref_offsets_[oid + 1] - begin));
  }

  /// Sum of instance sizes (bytes), i.e. the payload size of the base.
  uint64_t TotalBytes() const { return total_bytes_; }

  /// Number of instances of class `c`.
  uint64_t InstancesOf(ClassId c) const;

  /// Mean number of non-null references per object.
  double MeanFanout() const;

  const OcbParameters& params() const { return params_; }

 private:
  OcbParameters params_;
  Schema schema_;
  uint64_t num_objects_ = 0;
  uint32_t num_classes_ = 1;
  /// Instance size per class (instances of a class all share one size).
  std::vector<uint32_t> class_sizes_;
  /// CSR reference graph: row `oid` is
  /// ref_targets_[ref_offsets_[oid] .. ref_offsets_[oid+1]).
  std::vector<uint64_t> ref_offsets_;
  std::vector<Oid> ref_targets_;
  std::vector<uint64_t> instances_per_class_;
  uint64_t total_bytes_ = 0;
};

}  // namespace voodb::ocb
