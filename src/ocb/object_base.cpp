#include "ocb/object_base.hpp"

#include <cmath>

#include "util/check.hpp"

namespace voodb::ocb {

ObjectBase ObjectBase::Generate(const OcbParameters& params) {
  params.Validate();
  ObjectBase base;
  base.params_ = params;
  desp::RandomStream root_stream(params.seed);
  base.schema_ = Schema::Generate(params, root_stream.Derive(1));
  desp::RandomStream ref_stream = root_stream.Derive(2);

  const uint64_t no = params.num_objects;
  const uint32_t nc = params.num_classes;
  base.objects_.resize(no);
  base.instances_per_class_.assign(nc, 0);

  // Instances are assigned to classes round-robin: object i belongs to
  // class (i mod NC).  This populates every class evenly and — because a
  // class's instances all share one residue — lets reference generation
  // snap a locality-window candidate to the demanded target class in O(1).
  for (Oid i = 0; i < no; ++i) {
    ObjectDef& obj = base.objects_[i];
    obj.id = i;
    obj.cls = static_cast<ClassId>(i % nc);
    const ClassDef& cls = base.schema_.Class(obj.cls);
    obj.size = cls.instance_size;
    base.total_bytes_ += obj.size;
    ++base.instances_per_class_[obj.cls];
    obj.references.assign(cls.references.size(), kNullOid);
  }

  const auto window_limit = static_cast<int64_t>(
      std::min<uint64_t>(params.object_locality, no));
  for (Oid i = 0; i < no; ++i) {
    ObjectDef& obj = base.objects_[i];
    const ClassDef& cls = base.schema_.Class(obj.cls);
    for (size_t slot = 0; slot < obj.references.size(); ++slot) {
      const ClassId target_class = cls.references[slot].target_class;
      if (base.instances_per_class_[target_class] == 0) continue;  // dangling
      int64_t offset = 0;
      switch (params.reference_distribution) {
        case Distribution::kUniform:
          offset = ref_stream.UniformInt(0, window_limit - 1);
          break;
        case Distribution::kZipf:
          offset = ref_stream.Zipf(window_limit, params.zipf_skew);
          break;
        case Distribution::kNormal: {
          const double raw = ref_stream.Normal(
              0.0, static_cast<double>(window_limit) / 4.0);
          offset = static_cast<int64_t>(std::llround(std::fabs(raw))) %
                   window_limit;
          break;
        }
      }
      // Candidate inside the locality window, snapped to the residue of
      // the demanded class (round-robin assignment, see above).
      const uint64_t candidate = (i + static_cast<uint64_t>(offset)) % no;
      uint64_t snapped =
          candidate - (candidate % nc) + target_class;
      if (snapped >= no) {
        snapped = target_class;  // wrap to the first instance of the class
      }
      obj.references[slot] = snapped;
    }
  }
  return base;
}

const ObjectDef& ObjectBase::Object(Oid oid) const {
  VOODB_CHECK_MSG(oid < objects_.size(), "oid " << oid << " out of range");
  return objects_[oid];
}

uint64_t ObjectBase::InstancesOf(ClassId c) const {
  VOODB_CHECK_MSG(c < instances_per_class_.size(),
                  "class id " << c << " out of range");
  return instances_per_class_[c];
}

double ObjectBase::MeanFanout() const {
  if (objects_.empty()) return 0.0;
  uint64_t refs = 0;
  for (const auto& obj : objects_) {
    for (Oid r : obj.references) {
      if (r != kNullOid) ++refs;
    }
  }
  return static_cast<double>(refs) / static_cast<double>(objects_.size());
}

}  // namespace voodb::ocb
