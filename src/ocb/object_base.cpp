#include "ocb/object_base.hpp"

#include <cmath>

#include "util/check.hpp"

namespace voodb::ocb {

ObjectBase ObjectBase::Generate(const OcbParameters& params) {
  params.Validate();
  ObjectBase base;
  base.params_ = params;
  desp::RandomStream root_stream(params.seed);
  base.schema_ = Schema::Generate(params, root_stream.Derive(1));
  desp::RandomStream ref_stream = root_stream.Derive(2);

  const uint64_t no = params.num_objects;
  const uint32_t nc = params.num_classes;
  base.num_objects_ = no;
  base.num_classes_ = nc;
  base.instances_per_class_.assign(nc, 0);
  base.class_sizes_.resize(nc);
  for (ClassId c = 0; c < nc; ++c) {
    base.class_sizes_[c] = base.schema_.Class(c).instance_size;
  }

  // Instances are assigned to classes round-robin: object i belongs to
  // class (i mod NC).  This populates every class evenly and — because a
  // class's instances all share one residue — lets reference generation
  // snap a locality-window candidate to the demanded target class in O(1).
  // The round-robin rule also makes class and size pure functions of the
  // OID, so the SoA layout needs no per-object class/size arrays at all.
  base.ref_offsets_.resize(no + 1);
  uint64_t total_slots = 0;
  for (Oid i = 0; i < no; ++i) {
    const ClassId cls = static_cast<ClassId>(i % nc);
    base.ref_offsets_[i] = total_slots;
    total_slots += base.schema_.Class(cls).references.size();
    base.total_bytes_ += base.class_sizes_[cls];
    ++base.instances_per_class_[cls];
  }
  base.ref_offsets_[no] = total_slots;
  base.ref_targets_.assign(total_slots, kNullOid);

  const auto window_limit = static_cast<int64_t>(
      std::min<uint64_t>(params.object_locality, no));
  for (Oid i = 0; i < no; ++i) {
    const ClassDef& cls = base.schema_.Class(base.ClassOf(i));
    Oid* row = base.ref_targets_.data() + base.ref_offsets_[i];
    for (size_t slot = 0; slot < cls.references.size(); ++slot) {
      const ClassId target_class = cls.references[slot].target_class;
      if (base.instances_per_class_[target_class] == 0) continue;  // dangling
      int64_t offset = 0;
      switch (params.reference_distribution) {
        case Distribution::kUniform:
          offset = ref_stream.UniformInt(0, window_limit - 1);
          break;
        case Distribution::kZipf:
          offset = ref_stream.Zipf(window_limit, params.zipf_skew);
          break;
        case Distribution::kNormal: {
          const double raw = ref_stream.Normal(
              0.0, static_cast<double>(window_limit) / 4.0);
          offset = static_cast<int64_t>(std::llround(std::fabs(raw))) %
                   window_limit;
          break;
        }
      }
      // Candidate inside the locality window, snapped to the residue of
      // the demanded class (round-robin assignment, see above).
      const uint64_t candidate = (i + static_cast<uint64_t>(offset)) % no;
      uint64_t snapped =
          candidate - (candidate % nc) + target_class;
      if (snapped >= no) {
        snapped = target_class;  // wrap to the first instance of the class
      }
      row[slot] = snapped;
    }
  }
  return base;
}

ObjectDef ObjectBase::Object(Oid oid) const {
  VOODB_CHECK_MSG(oid < num_objects_, "oid " << oid << " out of range");
  ObjectDef view;
  view.id = oid;
  view.cls = ClassOf(oid);
  view.size = class_sizes_[view.cls];
  view.references = References(oid);
  return view;
}

uint64_t ObjectBase::InstancesOf(ClassId c) const {
  VOODB_CHECK_MSG(c < instances_per_class_.size(),
                  "class id " << c << " out of range");
  return instances_per_class_[c];
}

double ObjectBase::MeanFanout() const {
  if (num_objects_ == 0) return 0.0;
  uint64_t refs = 0;
  for (Oid target : ref_targets_) {
    if (target != kNullOid) ++refs;
  }
  return static_cast<double>(refs) / static_cast<double>(num_objects_);
}

}  // namespace voodb::ocb
