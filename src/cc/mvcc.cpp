#include "cc/mvcc.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "obs/spans.hpp"

namespace voodb::cc {

Mvcc::Mvcc(desp::Scheduler* scheduler) : Protocol(scheduler) {}

void Mvcc::Begin(uint64_t txn, uint64_t age) {
  (void)age;  // snapshots order by begin timestamp, not wait-die age
  TxnState& state = table_.Begin(txn);
  state.begin_ts = next_ts_++;
  ++stats_.begins;
}

size_t Mvcc::VersionChainLength(ocb::Oid oid) const {
  const auto it = versions_.find(oid);
  return 1 + (it == versions_.end() ? 0 : it->second.size());
}

void Mvcc::Access(uint64_t txn, ocb::Oid oid, bool write, Action granted,
                  Action aborted) {
  TxnState& state = table_.At(txn);
  ++stats_.requests;
  if (!write) {
    // Snapshot read: always granted; sample the chain the reader walks.
    ++stats_.immediate_grants;
    stats_.version_chain.Add(
        static_cast<double>(VersionChainLength(oid)));
    stats_.wait_times.Add(0.0);
    stats_.wait_histogram.Add(0.0);
    Fire(std::move(granted));
    return;
  }
  const auto [it, inserted] = intents_.emplace(oid, txn);
  if (!inserted && it->second != txn) {
    // Another active transaction already intends to write this object:
    // under first-committer-wins one of them must lose — abort the later
    // writer now instead of letting it run to a doomed validation.
    ++stats_.aborts_write_conflict;
    NoteAbort(obs::AbortCause::kWriteConflict);
    Fire(std::move(aborted));
    return;
  }
  if (inserted) state.writes.push_back(oid);
  ++stats_.immediate_grants;
  stats_.wait_times.Add(0.0);
  stats_.wait_histogram.Add(0.0);
  Fire(std::move(granted));
}

bool Mvcc::ValidateCommit(uint64_t txn) {
  const TxnState& state = table_.At(txn);
  for (ocb::Oid oid : state.writes) {
    const auto it = versions_.find(oid);
    if (it != versions_.end() && !it->second.empty() &&
        it->second.back() > state.begin_ts) {
      // First committer wins: someone installed a version after our
      // snapshot; committing ours would silently overwrite it.
      ++stats_.validation_failures;
      NoteAbort(obs::AbortCause::kValidation);
      return false;
    }
  }
  return true;
}

uint64_t Mvcc::OldestActiveSnapshot(uint64_t except) const {
  uint64_t oldest = std::numeric_limits<uint64_t>::max();
  table_.ForEach([&](uint64_t txn, const TxnState& state) {
    if (txn != except && state.begin_ts < oldest) oldest = state.begin_ts;
  });
  return oldest;
}

void Mvcc::Commit(uint64_t txn) {
  TxnState& state = table_.At(txn);
  ++stats_.commits;
  const uint64_t commit_ts = next_ts_++;
  const uint64_t horizon = OldestActiveSnapshot(txn);
  for (ocb::Oid oid : state.writes) {
    std::vector<uint64_t>& chain = versions_[oid];
    chain.push_back(commit_ts);
    ++stats_.versions_installed;
    intents_.erase(oid);
    // Prune: every active snapshot reads the newest version at or below
    // it, so anything older than the newest version <= horizon is
    // invisible to everyone present and future.
    size_t keep_from = 0;
    for (size_t i = 0; i < chain.size(); ++i) {
      if (chain[i] <= horizon) keep_from = i;
    }
    if (keep_from > 0) {
      chain.erase(chain.begin(),
                  chain.begin() + static_cast<ptrdiff_t>(keep_from));
      stats_.versions_pruned += keep_from;
    }
  }
  table_.End(txn);
}

void Mvcc::Abort(uint64_t txn) {
  TxnState& state = table_.At(txn);
  for (ocb::Oid oid : state.writes) intents_.erase(oid);
  table_.End(txn);
}

}  // namespace voodb::cc
