/// \file two_phase.hpp
/// \brief The three 2PL protocol variants: no-wait, wait-die, and
/// waits-for cycle detection.
///
/// All three share the object-granularity S/X lock table shape of
/// core::LockManager; they differ only in what happens on conflict:
///
///  - **NoWait2pl** aborts the requester immediately — no queue at all,
///    the cheapest table and the highest abort rate under contention.
///  - **WaitDie2pl** *wraps* the existing core::LockManager verbatim, so
///    the pre-subsystem behavior (and its event stream, bit for bit) is
///    one protocol among peers rather than special-cased in the
///    Transaction Manager.
///  - **DeadlockDetect2pl** lets every conflicting request wait FIFO and
///    runs a waits-for cycle search at enqueue time, aborting the
///    requester only when parking it would actually close a cycle —
///    fewer aborts than wait-die, at the cost of the graph walk.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cc/protocol.hpp"
#include "voodb/lock_manager.hpp"

namespace voodb::cc {

/// 2PL that never queues: any conflict aborts the requester immediately.
class NoWait2pl final : public Protocol {
 public:
  explicit NoWait2pl(desp::Scheduler* scheduler);

  ProtocolKind kind() const override { return ProtocolKind::kNoWait; }
  void Begin(uint64_t txn, uint64_t age) override;
  void Access(uint64_t txn, ocb::Oid oid, bool write, Action granted,
              Action aborted) override;
  bool ValidateCommit(uint64_t txn) override { return true; }
  void Commit(uint64_t txn) override;
  void Abort(uint64_t txn) override;
  size_t ActiveTransactions() const override { return table_.active(); }
  size_t PoolCapacity() const { return table_.capacity(); }

 private:
  struct Holder {
    uint64_t txn;
    core::LockMode mode;
  };
  struct Entry {
    std::vector<Holder> holders;
  };
  struct TxnState {
    std::vector<ocb::Oid> held;  // may contain duplicates for upgrades
    void Recycle() { held.clear(); }
  };

  bool Holds(uint64_t txn, ocb::Oid oid, core::LockMode mode) const;
  bool Compatible(const Entry& entry, uint64_t txn,
                  core::LockMode mode) const;
  void Grant(Entry& entry, uint64_t txn, core::LockMode mode);
  void ReleaseAll(uint64_t txn);

  std::unordered_map<ocb::Oid, Entry> locks_;
  TxnTable<TxnState> table_;
};

/// 2PL wait-die: delegation to the pre-subsystem core::LockManager, so
/// existing runs under the default protocol stay byte-identical.
class WaitDie2pl final : public Protocol {
 public:
  explicit WaitDie2pl(desp::Scheduler* scheduler);

  ProtocolKind kind() const override { return ProtocolKind::kWaitDie; }
  void Begin(uint64_t txn, uint64_t age) override;
  void Access(uint64_t txn, ocb::Oid oid, bool write, Action granted,
              Action aborted) override;
  bool ValidateCommit(uint64_t txn) override { return true; }
  void Commit(uint64_t txn) override;
  void Abort(uint64_t txn) override;
  size_t ActiveTransactions() const override {
    return lock_manager_.ActiveTransactions();
  }
  const desp::LogHistogram& wait_histogram() const override {
    return lock_manager_.stats().wait_histogram;
  }
  const core::LockManager* lock_manager() const override {
    return &lock_manager_;
  }
  /// Registers the wrapped manager's `lock.*` metrics (the pre-subsystem
  /// set, unchanged) plus `cc.*` aliases over the same cells.
  void RegisterMetrics(obs::MetricRegistry& registry) const override;

 private:
  core::LockManager lock_manager_;
};

/// 2PL with FIFO waiting and waits-for cycle detection at enqueue time.
class DeadlockDetect2pl final : public Protocol {
 public:
  explicit DeadlockDetect2pl(desp::Scheduler* scheduler);

  ProtocolKind kind() const override {
    return ProtocolKind::kDeadlockDetect;
  }
  void Begin(uint64_t txn, uint64_t age) override;
  void Access(uint64_t txn, ocb::Oid oid, bool write, Action granted,
              Action aborted) override;
  bool ValidateCommit(uint64_t txn) override { return true; }
  void Commit(uint64_t txn) override;
  void Abort(uint64_t txn) override;
  size_t ActiveTransactions() const override { return table_.active(); }
  size_t PoolCapacity() const { return table_.capacity(); }

 private:
  struct Holder {
    uint64_t txn;
    core::LockMode mode;
  };
  struct Waiter {
    uint64_t txn;
    core::LockMode mode;
    double enqueued_at;
    Action granted;
  };
  struct Entry {
    std::vector<Holder> holders;
    std::deque<Waiter> waiters;
  };
  struct TxnState {
    std::vector<ocb::Oid> held;  // may contain duplicates for upgrades
    /// The oid this transaction is parked on (the Transaction Manager
    /// issues accesses strictly one at a time, so at most one).
    bool waiting = false;
    ocb::Oid waiting_on = 0;
    /// Cycle-search stamp: search ids strictly increase, so a stale mark
    /// never matches and needs no reset on recycle.
    uint64_t visit_mark = 0;
    void Recycle() {
      held.clear();
      waiting = false;
    }
  };

  bool Holds(uint64_t txn, ocb::Oid oid, core::LockMode mode) const;
  bool Compatible(const Entry& entry, uint64_t txn,
                  core::LockMode mode) const;
  void Grant(Entry& entry, uint64_t txn, core::LockMode mode);
  void WakeWaiters(ocb::Oid oid);
  void ReleaseAll(uint64_t txn);
  /// True when parking `txn` on `oid` (either at the queue front, for
  /// upgrades, or at the back) would close a waits-for cycle.  Edges are
  /// derived on the fly from the current table: a parked waiter waits on
  /// every conflicting holder and every conflicting waiter ahead of it.
  bool WouldDeadlock(uint64_t txn, ocb::Oid oid, core::LockMode mode,
                     bool front);
  /// DFS helper: true when `target` (a parked or about-to-park txn) can
  /// reach `origin` through waits-for edges.
  bool Reaches(uint64_t target, uint64_t origin);

  std::unordered_map<ocb::Oid, Entry> locks_;
  TxnTable<TxnState> table_;
  std::vector<uint64_t> dfs_stack_;  // reused across cycle searches
  uint64_t dfs_search_ = 0;          // current search id (visit stamps)
};

}  // namespace voodb::cc
