/// \file occ.hpp
/// \brief Optimistic concurrency control with backward validation.
///
/// The classic Kung–Robinson scheme adapted to the DES: transactions run
/// with no locks at all, recording read and write sets; at commit the
/// read set is validated against the write sets of every transaction
/// that committed after this one began (backward validation).  Any
/// overlap means a read may be stale — the attempt aborts and restarts.
/// Commits are serial inside the simulation (events are), so the
/// validate-then-apply step is atomic by construction.
///
/// The committed-write-set log is truncated below the oldest active
/// transaction's start point, bounding memory by the degree of
/// concurrency rather than the run length.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "cc/protocol.hpp"

namespace voodb::cc {

class Occ final : public Protocol {
 public:
  explicit Occ(desp::Scheduler* scheduler);

  ProtocolKind kind() const override { return ProtocolKind::kOcc; }
  void Begin(uint64_t txn, uint64_t age) override;
  void Access(uint64_t txn, ocb::Oid oid, bool write, Action granted,
              Action aborted) override;
  bool ValidateCommit(uint64_t txn) override;
  void Commit(uint64_t txn) override;
  void Abort(uint64_t txn) override;
  size_t ActiveTransactions() const override { return table_.active(); }
  size_t PoolCapacity() const { return table_.capacity(); }

  /// Committed write sets currently retained for validation —
  /// test/diagnostic hook for the truncation logic.
  size_t RetainedCommits() const { return log_.size(); }

 private:
  struct TxnState {
    uint64_t start_index = 0;  // committed-log position at Begin
    std::vector<ocb::Oid> reads;
    std::vector<ocb::Oid> writes;
    void Recycle() {
      reads.clear();
      writes.clear();
    }
  };

  /// Oldest start index among active transactions except `except`
  /// (end-of-log when none) — the truncation horizon.
  uint64_t OldestActiveStart(uint64_t except) const;

  /// Committed write sets, sorted and deduplicated, in commit order.
  /// log_[i] holds the writes of the (log_base_ + i)-th commit.
  std::deque<std::vector<ocb::Oid>> log_;
  uint64_t log_base_ = 0;
  TxnTable<TxnState> table_;
};

}  // namespace voodb::cc
