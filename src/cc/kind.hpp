/// \file kind.hpp
/// \brief The concurrency-control protocol enumeration.
///
/// Split from protocol.hpp so VoodbConfig can name a protocol without
/// pulling the scheduler/histogram headers into every config user.
#pragma once

#include <cstdint>

namespace voodb::cc {

/// The protocol families of the classic "Staring into the Abyss"
/// many-core concurrency-control study (DBx1000 lineage), at object
/// granularity inside the VOODB discrete-event model.
enum class ProtocolKind : uint8_t {
  kNoWait = 0,          ///< 2PL, abort immediately on any conflict
  kWaitDie = 1,         ///< 2PL, wait-die (the paper's §5 extension)
  kDeadlockDetect = 2,  ///< 2PL, waits-for cycle detection at enqueue
  kMvcc = 3,            ///< multiversion timestamps, first-committer-wins
  kOcc = 4,             ///< optimistic, backward validation at commit
};

const char* ToString(ProtocolKind k);

}  // namespace voodb::cc
