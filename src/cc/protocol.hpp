/// \file protocol.hpp
/// \brief The pluggable concurrency-control protocol interface.
///
/// The paper's §5 multi-user extension hardwires one scheme: object-level
/// 2PL with wait-die (voodb::core::LockManager).  This subsystem makes the
/// protocol a first-class axis: the Transaction Manager talks to a
/// `cc::Protocol` — register a transaction attempt, decide each object
/// access, validate at commit, release on commit/abort — and the concrete
/// scheme behind it is swept like any other parameter (`cc_protocol`).
///
/// Five implementations cover the classic protocol families of the
/// many-core concurrency-control literature (DBx1000 lineage): 2PL
/// no-wait, 2PL wait-die (wrapping today's LockManager, so the current
/// behavior is one protocol among peers), 2PL with waits-for cycle
/// detection, multiversion timestamp ordering with first-committer-wins
/// writes, and optimistic validate-at-commit with backward validation.
///
/// Determinism contract: a protocol may interact with the run only
/// through its scheduler (decisions fire as zero-delay scheduled events,
/// exactly like the LockManager's grants) and must never iterate an
/// unordered container where the order can leak into event order — the
/// whole subsystem stays bit-identical at any `sim_threads`.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cc/kind.hpp"
#include "desp/histogram.hpp"
#include "desp/scheduler.hpp"
#include "desp/stats.hpp"
#include "ocb/types.hpp"
#include "util/check.hpp"

namespace voodb::obs {
class MetricRegistry;
class SpanTracer;
enum class AbortCause : uint8_t;
}  // namespace voodb::obs

namespace voodb::core {
class LockManager;
}  // namespace voodb::core

namespace voodb::cc {

/// Counters every protocol exposes (`cc.*` in the metric registry).
/// Abort causes are disjoint: a restarted attempt increments exactly one.
struct CcStats {
  uint64_t begins = 0;    ///< transaction attempts registered
  uint64_t requests = 0;  ///< access decisions requested
  uint64_t immediate_grants = 0;
  uint64_t waits = 0;  ///< requests that had to park
  uint64_t commits = 0;
  // --- aborts by cause -----------------------------------------------------
  uint64_t aborts_no_wait = 0;         ///< no-wait conflict aborts
  uint64_t aborts_wait_die = 0;        ///< wait-die "die" decisions
  uint64_t aborts_deadlock = 0;        ///< waits-for cycles detected
  uint64_t aborts_write_conflict = 0;  ///< MVCC write-intent collisions
  uint64_t validation_failures = 0;    ///< commit-time validation aborts
  // --- MVCC version bookkeeping --------------------------------------------
  uint64_t versions_installed = 0;
  uint64_t versions_pruned = 0;
  /// Queueing time per access decision (immediate grants count as 0, so
  /// percentiles cover every acquisition — LockManager semantics).
  desp::Tally wait_times;
  desp::LogHistogram wait_histogram;
  /// Version-chain length sampled at every MVCC read.
  desp::LogHistogram version_chain;

  /// Aborts across every cause (wait-die parity: LockStats counted them
  /// all as deadlock_aborts).
  uint64_t TotalAborts() const {
    return aborts_no_wait + aborts_wait_die + aborts_deadlock +
           aborts_write_conflict + validation_failures;
  }
};

/// Pooled per-transaction state: a slab of `State` slots recycled through
/// a free list, so per-attempt registration reuses the previous attempt's
/// vector capacities instead of allocating (the kernel's zero-allocation
/// discipline applied to protocol bookkeeping).  `State::Recycle()` must
/// clear the slot for reuse while keeping capacity.
template <typename State>
class TxnTable {
 public:
  State& Begin(uint64_t txn) {
    uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      slot = static_cast<uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    const auto [it, inserted] = index_.emplace(txn, slot);
    (void)it;
    VOODB_CHECK_MSG(inserted, "transaction " << txn << " already active");
    return slots_[slot];
  }

  State* Find(uint64_t txn) {
    const auto it = index_.find(txn);
    return it == index_.end() ? nullptr : &slots_[it->second];
  }
  const State* Find(uint64_t txn) const {
    const auto it = index_.find(txn);
    return it == index_.end() ? nullptr : &slots_[it->second];
  }

  State& At(uint64_t txn) {
    State* s = Find(txn);
    VOODB_CHECK_MSG(s != nullptr, "transaction " << txn << " not active");
    return *s;
  }

  /// Recycles the slot (keeps its heap capacity for the next Begin).
  void End(uint64_t txn) {
    const auto it = index_.find(txn);
    VOODB_CHECK_MSG(it != index_.end(),
                    "transaction " << txn << " not active");
    slots_[it->second].Recycle();
    free_.push_back(it->second);
    index_.erase(it);
  }

  /// Applies `fn(txn_id, state)` to every active transaction.  Iteration
  /// order is unspecified — use only for order-insensitive reductions
  /// (minima, counts), never for anything that can reach the scheduler.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [txn, slot] : index_) fn(txn, slots_[slot]);
  }

  size_t active() const { return index_.size(); }
  /// Slots ever constructed — bounded by peak concurrency, not by the
  /// number of transactions run (the pooling witness micro_cc asserts).
  size_t capacity() const { return slots_.size(); }

 private:
  std::unordered_map<uint64_t, uint32_t> index_;
  std::vector<State> slots_;
  std::vector<uint32_t> free_;
};

/// The protocol interface the Transaction Manager drives.
class Protocol {
 public:
  /// Continuation type, matching the LockManager's callback style (the
  /// scheduler's SmallFunction absorbs it without allocation for small
  /// captures).
  using Action = std::function<void()>;

  explicit Protocol(desp::Scheduler* scheduler);
  virtual ~Protocol();

  Protocol(const Protocol&) = delete;
  Protocol& operator=(const Protocol&) = delete;

  virtual ProtocolKind kind() const = 0;
  const char* name() const { return ToString(kind()); }

  /// Registers a transaction attempt.  `age` is the attempt-invariant
  /// age stamp (kept across restarts, wait-die's no-starvation lever);
  /// `txn` is fresh per attempt.
  virtual void Begin(uint64_t txn, uint64_t age) = 0;

  /// Decides one object access.  Exactly one continuation fires, always
  /// as a scheduled event: `granted` once the access may proceed
  /// (possibly after waiting), `aborted` if the protocol kills the
  /// attempt (the caller releases with Abort() and retries).
  virtual void Access(uint64_t txn, ocb::Oid oid, bool write,
                      Action granted, Action aborted) = 0;

  /// Commit-time validation.  True: the caller must go on to Commit().
  /// False: the attempt failed validation (counted in the stats); the
  /// caller must Abort() and retry.  Pure decision — never schedules.
  virtual bool ValidateCommit(uint64_t txn) = 0;

  /// Commits: releases locks / installs versions, wakes waiters, forgets
  /// the transaction.
  virtual void Commit(uint64_t txn) = 0;

  /// Aborts: releases everything, wakes waiters, forgets the transaction
  /// (Begin() again to retry).
  virtual void Abort(uint64_t txn) = 0;

  /// Transactions currently registered (0 when idle — leak witness).
  virtual size_t ActiveTransactions() const = 0;

  const CcStats& stats() const { return stats_; }

  /// The wait-time distribution feeding PhaseMetrics' lock-wait
  /// histogram (overridden by the wait-die wrap to expose the
  /// LockManager's own histogram).
  virtual const desp::LogHistogram& wait_histogram() const {
    return stats_.wait_histogram;
  }

  /// The wrapped LockManager (wait-die only; nullptr otherwise) — keeps
  /// the pre-subsystem accessor paths alive for tests and diagnostics.
  virtual const core::LockManager* lock_manager() const { return nullptr; }

  /// Registers the `cc.*` counters and histograms with `registry`.
  virtual void RegisterMetrics(obs::MetricRegistry& registry) const;

  /// Attaches the span tracer (may be null).  Protocols annotate the
  /// requester's open attempt span with the abort cause at decision time
  /// — pure metadata, never visible to the simulation.
  void SetTracer(obs::SpanTracer* tracer) { tracer_ = tracer; }

 protected:
  /// Annotates the ambient trace (the requester's, at decision sites)
  /// with `cause`; no-op without a tracer.
  void NoteAbort(obs::AbortCause cause);
  /// Fires a decision continuation as a zero-delay event (the
  /// LockManager's grant idiom — decisions never run inline, so event
  /// order is independent of the protocol's internal control flow).
  void Fire(Action action) { scheduler_->Schedule(0.0, std::move(action)); }

  desp::Scheduler* scheduler_;
  CcStats stats_;
  obs::SpanTracer* tracer_ = nullptr;
};

/// Builds the protocol selected by `kind` on `scheduler`.
std::unique_ptr<Protocol> MakeProtocol(ProtocolKind kind,
                                       desp::Scheduler* scheduler);

}  // namespace voodb::cc
