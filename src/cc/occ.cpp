#include "cc/occ.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "obs/spans.hpp"

namespace voodb::cc {
namespace {

void SortUnique(std::vector<ocb::Oid>& oids) {
  std::sort(oids.begin(), oids.end());
  oids.erase(std::unique(oids.begin(), oids.end()), oids.end());
}

/// Any common element between two sorted ranges?
bool Intersects(const std::vector<ocb::Oid>& a,
                const std::vector<ocb::Oid>& b) {
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      return true;
    }
  }
  return false;
}

}  // namespace

Occ::Occ(desp::Scheduler* scheduler) : Protocol(scheduler) {}

void Occ::Begin(uint64_t txn, uint64_t age) {
  (void)age;  // validation order is commit order, not age
  TxnState& state = table_.Begin(txn);
  state.start_index = log_base_ + log_.size();
  ++stats_.begins;
}

void Occ::Access(uint64_t txn, ocb::Oid oid, bool write, Action granted,
                 Action aborted) {
  (void)aborted;  // optimistic: accesses never fail, only validation does
  TxnState& state = table_.At(txn);
  ++stats_.requests;
  ++stats_.immediate_grants;
  (write ? state.writes : state.reads).push_back(oid);
  stats_.wait_times.Add(0.0);
  stats_.wait_histogram.Add(0.0);
  Fire(std::move(granted));
}

bool Occ::ValidateCommit(uint64_t txn) {
  TxnState& state = table_.At(txn);
  SortUnique(state.reads);
  // Backward validation: our reads against the write set of every commit
  // since we began.  Writes need no check — they are applied atomically
  // here at commit, after everyone earlier has fully committed.
  for (uint64_t index = state.start_index;
       index < log_base_ + log_.size(); ++index) {
    if (Intersects(state.reads, log_[index - log_base_])) {
      ++stats_.validation_failures;
      NoteAbort(obs::AbortCause::kValidation);
      return false;
    }
  }
  return true;
}

uint64_t Occ::OldestActiveStart(uint64_t except) const {
  uint64_t oldest = log_base_ + log_.size();
  table_.ForEach([&](uint64_t txn, const TxnState& state) {
    if (txn != except && state.start_index < oldest) {
      oldest = state.start_index;
    }
  });
  return oldest;
}

void Occ::Commit(uint64_t txn) {
  TxnState& state = table_.At(txn);
  ++stats_.commits;
  SortUnique(state.writes);
  if (!state.writes.empty()) {
    log_.push_back(std::move(state.writes));
    state.writes.clear();  // moved-from: make the recycle state explicit
  } else {
    log_.emplace_back();  // keep commit indices dense
  }
  table_.End(txn);
  // Truncate write sets no active transaction can still validate against.
  const uint64_t horizon = OldestActiveStart(txn);
  while (log_base_ < horizon && !log_.empty()) {
    log_.pop_front();
    ++log_base_;
  }
}

void Occ::Abort(uint64_t txn) { table_.End(txn); }

}  // namespace voodb::cc
