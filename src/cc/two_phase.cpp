#include "cc/two_phase.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/spans.hpp"

namespace voodb::cc {
namespace {

bool Conflicting(core::LockMode a, core::LockMode b) {
  return a == core::LockMode::kExclusive || b == core::LockMode::kExclusive;
}

core::LockMode ModeOf(bool write) {
  return write ? core::LockMode::kExclusive : core::LockMode::kShared;
}

}  // namespace

// ---------------------------------------------------------------------------
// NoWait2pl
// ---------------------------------------------------------------------------

NoWait2pl::NoWait2pl(desp::Scheduler* scheduler) : Protocol(scheduler) {}

void NoWait2pl::Begin(uint64_t txn, uint64_t age) {
  (void)age;  // no-wait never compares ages
  table_.Begin(txn);
  ++stats_.begins;
}

bool NoWait2pl::Holds(uint64_t txn, ocb::Oid oid,
                      core::LockMode mode) const {
  const auto entry_it = locks_.find(oid);
  if (entry_it == locks_.end()) return false;
  for (const Holder& h : entry_it->second.holders) {
    if (h.txn != txn) continue;
    return mode == core::LockMode::kShared ||
           h.mode == core::LockMode::kExclusive;
  }
  return false;
}

bool NoWait2pl::Compatible(const Entry& entry, uint64_t txn,
                           core::LockMode mode) const {
  for (const Holder& h : entry.holders) {
    if (h.txn == txn) continue;  // own locks never conflict
    if (Conflicting(mode, h.mode)) return false;
  }
  return true;
}

void NoWait2pl::Grant(Entry& entry, uint64_t txn, core::LockMode mode) {
  for (Holder& h : entry.holders) {
    if (h.txn == txn) {
      if (mode == core::LockMode::kExclusive) h.mode = mode;  // upgrade
      return;
    }
  }
  entry.holders.push_back(Holder{txn, mode});
}

void NoWait2pl::Access(uint64_t txn, ocb::Oid oid, bool write,
                       Action granted, Action aborted) {
  TxnState& state = table_.At(txn);
  const core::LockMode mode = ModeOf(write);
  ++stats_.requests;
  if (Holds(txn, oid, mode)) {
    ++stats_.immediate_grants;
    Fire(std::move(granted));
    return;
  }
  Entry& entry = locks_[oid];
  if (!Compatible(entry, txn, mode)) {
    // The defining move: conflicts are never waited out.
    ++stats_.aborts_no_wait;
    NoteAbort(obs::AbortCause::kNoWait);
    Fire(std::move(aborted));
    return;
  }
  Grant(entry, txn, mode);
  state.held.push_back(oid);
  ++stats_.immediate_grants;
  stats_.wait_times.Add(0.0);
  stats_.wait_histogram.Add(0.0);
  Fire(std::move(granted));
}

void NoWait2pl::ReleaseAll(uint64_t txn) {
  TxnState& state = table_.At(txn);
  std::sort(state.held.begin(), state.held.end());
  state.held.erase(std::unique(state.held.begin(), state.held.end()),
                   state.held.end());
  for (ocb::Oid oid : state.held) {
    const auto entry_it = locks_.find(oid);
    if (entry_it == locks_.end()) continue;
    auto& holders = entry_it->second.holders;
    holders.erase(
        std::remove_if(holders.begin(), holders.end(),
                       [txn](const Holder& h) { return h.txn == txn; }),
        holders.end());
    if (holders.empty()) locks_.erase(entry_it);
  }
}

void NoWait2pl::Commit(uint64_t txn) {
  ++stats_.commits;
  ReleaseAll(txn);
  table_.End(txn);
}

void NoWait2pl::Abort(uint64_t txn) {
  ReleaseAll(txn);
  table_.End(txn);
}

// ---------------------------------------------------------------------------
// WaitDie2pl
// ---------------------------------------------------------------------------

WaitDie2pl::WaitDie2pl(desp::Scheduler* scheduler)
    : Protocol(scheduler), lock_manager_(scheduler) {
  // A die decision can fire from another transaction's release (the
  // manager's wait-die re-enforcement); the manager invokes the hook
  // under the victim's trace context at both decision sites, so the
  // cause lands on the victim's open attempt.  No-op without a tracer.
  lock_manager_.SetDieHook([this] { NoteAbort(obs::AbortCause::kWaitDie); });
}

void WaitDie2pl::Begin(uint64_t txn, uint64_t age) {
  ++stats_.begins;
  lock_manager_.BeginTransaction(txn, static_cast<double>(age));
}

void WaitDie2pl::Access(uint64_t txn, ocb::Oid oid, bool write,
                        Action granted, Action aborted) {
  // Pure delegation: the wrapped manager makes exactly the calls the
  // Transaction Manager used to make, so the event stream is unchanged.
  // Abort causes are annotated by the manager's die hook (see the
  // constructor), not by wrapping the continuation here — a per-access
  // std::function wrap costs an allocation on the uncontended path.
  lock_manager_.Acquire(txn, oid, ModeOf(write), std::move(granted),
                        std::move(aborted));
}

void WaitDie2pl::Commit(uint64_t txn) {
  ++stats_.commits;
  lock_manager_.ReleaseAll(txn);
}

void WaitDie2pl::Abort(uint64_t txn) { lock_manager_.ReleaseAll(txn); }

void WaitDie2pl::RegisterMetrics(obs::MetricRegistry& registry) const {
  // The pre-subsystem `lock.*` metric set, unchanged...
  lock_manager_.RegisterMetrics(registry);
  // ...plus the protocol-neutral `cc.*` names.  Counters the wrapped
  // manager already tracks are aliased onto its cells rather than
  // counted twice.
  const core::LockStats& lm = lock_manager_.stats();
  registry.RegisterCounter("cc.begins", &stats_.begins);
  registry.RegisterCounter("cc.requests", &lm.requests);
  registry.RegisterCounter("cc.immediate_grants", &lm.immediate_grants);
  registry.RegisterCounter("cc.waits", &lm.waits);
  registry.RegisterCounter("cc.commits", &stats_.commits);
  registry.RegisterCounter("cc.aborts.no_wait", &stats_.aborts_no_wait);
  registry.RegisterCounter("cc.aborts.wait_die", &lm.deadlock_aborts);
  registry.RegisterCounter("cc.aborts.deadlock", &stats_.aborts_deadlock);
  registry.RegisterCounter("cc.aborts.write_conflict",
                           &stats_.aborts_write_conflict);
  registry.RegisterCounter("cc.validation_failures",
                           &stats_.validation_failures);
  registry.RegisterCounter("cc.versions.installed",
                           &stats_.versions_installed);
  registry.RegisterCounter("cc.versions.pruned", &stats_.versions_pruned);
  registry.RegisterHistogram("cc.wait_ms", &lm.wait_histogram);
  registry.RegisterHistogram("cc.version_chain", &stats_.version_chain);
}

// ---------------------------------------------------------------------------
// DeadlockDetect2pl
// ---------------------------------------------------------------------------

DeadlockDetect2pl::DeadlockDetect2pl(desp::Scheduler* scheduler)
    : Protocol(scheduler) {}

void DeadlockDetect2pl::Begin(uint64_t txn, uint64_t age) {
  (void)age;  // deadlock detection needs no age ordering
  table_.Begin(txn);
  ++stats_.begins;
}

bool DeadlockDetect2pl::Holds(uint64_t txn, ocb::Oid oid,
                              core::LockMode mode) const {
  const auto entry_it = locks_.find(oid);
  if (entry_it == locks_.end()) return false;
  for (const Holder& h : entry_it->second.holders) {
    if (h.txn != txn) continue;
    return mode == core::LockMode::kShared ||
           h.mode == core::LockMode::kExclusive;
  }
  return false;
}

bool DeadlockDetect2pl::Compatible(const Entry& entry, uint64_t txn,
                                   core::LockMode mode) const {
  for (const Holder& h : entry.holders) {
    if (h.txn == txn) continue;
    if (Conflicting(mode, h.mode)) return false;
  }
  return true;
}

void DeadlockDetect2pl::Grant(Entry& entry, uint64_t txn,
                              core::LockMode mode) {
  for (Holder& h : entry.holders) {
    if (h.txn == txn) {
      if (mode == core::LockMode::kExclusive) h.mode = mode;  // upgrade
      return;
    }
  }
  entry.holders.push_back(Holder{txn, mode});
}

bool DeadlockDetect2pl::Reaches(uint64_t start, uint64_t origin) {
  // Iterative DFS over the waits-for graph derived on the fly: a parked
  // transaction waits on every conflicting holder of its oid and every
  // conflicting waiter ahead of it in that queue.  Push order follows
  // holder-vector then queue order, so the walk is deterministic.
  dfs_stack_.clear();
  dfs_stack_.push_back(start);
  ++dfs_search_;
  while (!dfs_stack_.empty()) {
    const uint64_t txn = dfs_stack_.back();
    dfs_stack_.pop_back();
    if (txn == origin) return true;
    TxnState* state = table_.Find(txn);
    if (state == nullptr || state->visit_mark == dfs_search_) continue;
    state->visit_mark = dfs_search_;
    if (!state->waiting) continue;
    const auto entry_it = locks_.find(state->waiting_on);
    if (entry_it == locks_.end()) continue;
    const Entry& entry = entry_it->second;
    core::LockMode mode = core::LockMode::kShared;
    for (const Waiter& w : entry.waiters) {
      if (w.txn == txn) {
        mode = w.mode;
        break;
      }
    }
    for (const Holder& h : entry.holders) {
      if (h.txn != txn && Conflicting(mode, h.mode)) {
        dfs_stack_.push_back(h.txn);
      }
    }
    for (const Waiter& w : entry.waiters) {
      if (w.txn == txn) break;  // only waiters ahead are wait targets
      if (Conflicting(mode, w.mode)) dfs_stack_.push_back(w.txn);
    }
  }
  return false;
}

bool DeadlockDetect2pl::WouldDeadlock(uint64_t txn, ocb::Oid oid,
                                      core::LockMode mode, bool front) {
  const auto entry_it = locks_.find(oid);
  if (entry_it == locks_.end()) return false;
  const Entry& entry = entry_it->second;
  // The prospective wait targets of `txn`: conflicting holders, plus —
  // for back-of-queue requests — every conflicting waiter already parked
  // (they would all be ahead of us).
  std::vector<uint64_t> targets;
  for (const Holder& h : entry.holders) {
    if (h.txn != txn && Conflicting(mode, h.mode)) targets.push_back(h.txn);
  }
  if (!front) {
    for (const Waiter& w : entry.waiters) {
      if (w.txn != txn && Conflicting(mode, w.mode)) {
        targets.push_back(w.txn);
      }
    }
  }
  for (uint64_t target : targets) {
    if (target == txn || Reaches(target, txn)) return true;
    // Front insertion (upgrade) adds edges *into* us from every parked
    // waiter we would overtake; a path ending at such a waiter also
    // closes a cycle.
    if (front) {
      for (const Waiter& w : entry.waiters) {
        if (w.txn == txn || !Conflicting(mode, w.mode)) continue;
        if (target == w.txn || Reaches(target, w.txn)) return true;
      }
    }
  }
  return false;
}

void DeadlockDetect2pl::Access(uint64_t txn, ocb::Oid oid, bool write,
                               Action granted, Action aborted) {
  TxnState& state = table_.At(txn);
  const core::LockMode mode = ModeOf(write);
  ++stats_.requests;
  if (Holds(txn, oid, mode)) {
    ++stats_.immediate_grants;
    Fire(std::move(granted));
    return;
  }
  Entry& entry = locks_[oid];
  bool is_upgrade = false;
  for (const Holder& h : entry.holders) {
    if (h.txn == txn) {
      is_upgrade = true;
      break;
    }
  }
  // Same queue discipline as the wait-die manager: fresh requests never
  // overtake parked waiters; upgrades jump to the queue front (or the
  // classic upgrade starvation arises).
  const bool may_grant_now =
      Compatible(entry, txn, mode) && (is_upgrade || entry.waiters.empty());
  if (may_grant_now) {
    Grant(entry, txn, mode);
    state.held.push_back(oid);
    ++stats_.immediate_grants;
    stats_.wait_times.Add(0.0);
    stats_.wait_histogram.Add(0.0);
    Fire(std::move(granted));
    return;
  }
  if (WouldDeadlock(txn, oid, mode, is_upgrade)) {
    ++stats_.aborts_deadlock;
    NoteAbort(obs::AbortCause::kDeadlock);
    Fire(std::move(aborted));
    return;
  }
  ++stats_.waits;
  state.waiting = true;
  state.waiting_on = oid;
  Waiter waiter{txn, mode, scheduler_->Now(), std::move(granted)};
  if (is_upgrade) {
    entry.waiters.push_front(std::move(waiter));
  } else {
    entry.waiters.push_back(std::move(waiter));
  }
}

void DeadlockDetect2pl::WakeWaiters(ocb::Oid oid) {
  const auto entry_it = locks_.find(oid);
  if (entry_it == locks_.end()) return;
  Entry& entry = entry_it->second;
  // FIFO wake-up: grant the head while it is compatible (several shared
  // requests may be granted together).  No re-validation is needed: the
  // waits-for graph only loses edges on release/grant, so a queue that
  // was cycle-free at enqueue time stays cycle-free.
  while (!entry.waiters.empty()) {
    Waiter& head = entry.waiters.front();
    TxnState* waiter_state = table_.Find(head.txn);
    if (waiter_state == nullptr) {
      entry.waiters.pop_front();  // waiter's transaction is gone
      continue;
    }
    if (!Compatible(entry, head.txn, head.mode)) break;
    Grant(entry, head.txn, head.mode);
    waiter_state->held.push_back(oid);
    waiter_state->waiting = false;
    stats_.wait_times.Add(scheduler_->Now() - head.enqueued_at);
    stats_.wait_histogram.Add(scheduler_->Now() - head.enqueued_at);
    Fire(std::move(head.granted));
    entry.waiters.pop_front();
  }
  if (entry.holders.empty() && entry.waiters.empty()) {
    locks_.erase(entry_it);
  }
}

void DeadlockDetect2pl::ReleaseAll(uint64_t txn) {
  TxnState& state = table_.At(txn);
  std::sort(state.held.begin(), state.held.end());
  state.held.erase(std::unique(state.held.begin(), state.held.end()),
                   state.held.end());
  for (ocb::Oid oid : state.held) {
    const auto entry_it = locks_.find(oid);
    if (entry_it == locks_.end()) continue;
    auto& holders = entry_it->second.holders;
    holders.erase(
        std::remove_if(holders.begin(), holders.end(),
                       [txn](const Holder& h) { return h.txn == txn; }),
        holders.end());
    WakeWaiters(oid);
  }
  // A parked request may still be queued (abort decided elsewhere): purge
  // it and re-evaluate that queue — the purged head may have been the
  // only thing parking compatible waiters behind it.
  if (state.waiting) {
    const ocb::Oid oid = state.waiting_on;
    state.waiting = false;
    const auto entry_it = locks_.find(oid);
    if (entry_it != locks_.end()) {
      auto& waiters = entry_it->second.waiters;
      waiters.erase(
          std::remove_if(waiters.begin(), waiters.end(),
                         [txn](const Waiter& w) { return w.txn == txn; }),
          waiters.end());
      WakeWaiters(oid);
    }
  }
}

void DeadlockDetect2pl::Commit(uint64_t txn) {
  ++stats_.commits;
  ReleaseAll(txn);
  table_.End(txn);
}

void DeadlockDetect2pl::Abort(uint64_t txn) {
  ReleaseAll(txn);
  table_.End(txn);
}

}  // namespace voodb::cc
