#include "cc/protocol.hpp"

#include "cc/mvcc.hpp"
#include "cc/occ.hpp"
#include "cc/two_phase.hpp"
#include "obs/metrics.hpp"
#include "obs/spans.hpp"

namespace voodb::cc {

const char* ToString(ProtocolKind k) {
  switch (k) {
    case ProtocolKind::kNoWait:
      return "no_wait";
    case ProtocolKind::kWaitDie:
      return "wait_die";
    case ProtocolKind::kDeadlockDetect:
      return "deadlock_detect";
    case ProtocolKind::kMvcc:
      return "mvcc";
    case ProtocolKind::kOcc:
      return "occ";
  }
  return "?";
}

Protocol::Protocol(desp::Scheduler* scheduler) : scheduler_(scheduler) {
  VOODB_CHECK_MSG(scheduler_ != nullptr, "cc::Protocol needs a scheduler");
}

Protocol::~Protocol() = default;

void Protocol::NoteAbort(obs::AbortCause cause) {
  if (tracer_ != nullptr) tracer_->NoteAbortAmbient(cause);
}

void Protocol::RegisterMetrics(obs::MetricRegistry& registry) const {
  registry.RegisterCounter("cc.begins", &stats_.begins);
  registry.RegisterCounter("cc.requests", &stats_.requests);
  registry.RegisterCounter("cc.immediate_grants", &stats_.immediate_grants);
  registry.RegisterCounter("cc.waits", &stats_.waits);
  registry.RegisterCounter("cc.commits", &stats_.commits);
  registry.RegisterCounter("cc.aborts.no_wait", &stats_.aborts_no_wait);
  registry.RegisterCounter("cc.aborts.wait_die", &stats_.aborts_wait_die);
  registry.RegisterCounter("cc.aborts.deadlock", &stats_.aborts_deadlock);
  registry.RegisterCounter("cc.aborts.write_conflict",
                           &stats_.aborts_write_conflict);
  registry.RegisterCounter("cc.validation_failures",
                           &stats_.validation_failures);
  registry.RegisterCounter("cc.versions.installed",
                           &stats_.versions_installed);
  registry.RegisterCounter("cc.versions.pruned", &stats_.versions_pruned);
  registry.RegisterHistogram("cc.wait_ms", &stats_.wait_histogram);
  registry.RegisterHistogram("cc.version_chain", &stats_.version_chain);
}

std::unique_ptr<Protocol> MakeProtocol(ProtocolKind kind,
                                       desp::Scheduler* scheduler) {
  switch (kind) {
    case ProtocolKind::kNoWait:
      return std::make_unique<NoWait2pl>(scheduler);
    case ProtocolKind::kWaitDie:
      return std::make_unique<WaitDie2pl>(scheduler);
    case ProtocolKind::kDeadlockDetect:
      return std::make_unique<DeadlockDetect2pl>(scheduler);
    case ProtocolKind::kMvcc:
      return std::make_unique<Mvcc>(scheduler);
    case ProtocolKind::kOcc:
      return std::make_unique<Occ>(scheduler);
  }
  VOODB_CHECK_MSG(false, "unknown cc protocol kind "
                             << static_cast<int>(kind));
  return nullptr;
}

}  // namespace voodb::cc
