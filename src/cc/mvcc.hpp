/// \file mvcc.hpp
/// \brief Multiversion timestamp concurrency control.
///
/// Each committed write appends a version timestamp to the object's
/// chain; a transaction reads the snapshot as of its begin timestamp
/// (reads are always granted — the snapshot is never invalidated, the
/// paper's fixed object-access cost already charges the lookup).
/// Writes take an in-memory write intent: two concurrent writers of the
/// same object conflict immediately and the later one aborts.  At
/// commit, first-committer-wins validation re-checks every written
/// object: if someone committed a newer version after our snapshot, the
/// attempt fails validation and restarts.  Committed versions below the
/// oldest active snapshot are pruned, keeping chains short.
///
/// Timestamps are drawn from a protocol-local counter — simulation
/// determinism carries over untouched.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cc/protocol.hpp"

namespace voodb::cc {

class Mvcc final : public Protocol {
 public:
  explicit Mvcc(desp::Scheduler* scheduler);

  ProtocolKind kind() const override { return ProtocolKind::kMvcc; }
  void Begin(uint64_t txn, uint64_t age) override;
  void Access(uint64_t txn, ocb::Oid oid, bool write, Action granted,
              Action aborted) override;
  bool ValidateCommit(uint64_t txn) override;
  void Commit(uint64_t txn) override;
  void Abort(uint64_t txn) override;
  size_t ActiveTransactions() const override { return table_.active(); }
  size_t PoolCapacity() const { return table_.capacity(); }

  /// Committed (unpruned) versions of `oid`, counting the implicit
  /// initial version — test/diagnostic hook.
  size_t VersionChainLength(ocb::Oid oid) const;

 private:
  struct TxnState {
    uint64_t begin_ts = 0;
    std::vector<ocb::Oid> writes;  // oids with our write intent, no dups
    void Recycle() { writes.clear(); }
  };

  /// Oldest snapshot among active transactions except `except`
  /// (UINT64_MAX when none) — the pruning horizon.
  uint64_t OldestActiveSnapshot(uint64_t except) const;

  /// Ascending commit timestamps per object; absent chain = only the
  /// implicit initial version.
  std::unordered_map<ocb::Oid, std::vector<uint64_t>> versions_;
  std::unordered_map<ocb::Oid, uint64_t> intents_;  // oid -> writing txn
  TxnTable<TxnState> table_;
  uint64_t next_ts_ = 1;
};

}  // namespace voodb::cc
