#include "voodb/param_registry.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <type_traits>

#include "util/check.hpp"
#include "util/cli.hpp"

namespace voodb::core {

namespace {

/// "Unbounded" sentinels, far outside any meaningful parameter value.
constexpr double kNoMin = -1e300;
constexpr double kNoMax = 1e300;

std::string Lower(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

template <typename T>
constexpr ParamType TypeOf() {
  if constexpr (std::is_same_v<T, bool>) {
    return ParamType::kBool;
  } else if constexpr (std::is_enum_v<T>) {
    return ParamType::kEnum;
  } else if constexpr (std::is_integral_v<T>) {
    return ParamType::kInt;
  } else {
    static_assert(std::is_floating_point_v<T>, "unsupported field type");
    return ParamType::kReal;
  }
}

template <typename T>
double FieldToDouble(const T& value) {
  return static_cast<double>(value);
}

template <typename T>
void FieldFromDouble(T& field, double value) {
  if constexpr (std::is_same_v<T, bool>) {
    field = value != 0.0;
  } else if constexpr (std::is_enum_v<T>) {
    field = static_cast<T>(static_cast<int64_t>(value));
  } else {
    field = static_cast<T>(value);
  }
}

}  // namespace

const char* ToString(ParamType t) {
  switch (t) {
    case ParamType::kBool:
      return "bool";
    case ParamType::kInt:
      return "int";
    case ParamType::kReal:
      return "real";
    case ParamType::kEnum:
      return "enum";
    case ParamType::kString:
      return "string";
  }
  return "?";
}

const char* ToString(ParamDomain d) {
  switch (d) {
    case ParamDomain::kSystem:
      return "system";
    case ParamDomain::kDisk:
      return "disk";
    case ParamDomain::kWorkload:
      return "workload";
  }
  return "?";
}

const std::string& ParamDescriptor::EnumName(size_t ordinal) const {
  VOODB_CHECK_MSG(ordinal < enum_values.size(),
                  "parameter '" << name << "' has no enumerator " << ordinal);
  return enum_values[ordinal].front();
}

std::string ParamDescriptor::RangeText() const {
  std::ostringstream os;
  if (type == ParamType::kString) return "any string";
  if (type == ParamType::kBool) return "true | false";
  if (type == ParamType::kEnum) {
    for (size_t i = 0; i < enum_values.size(); ++i) {
      if (i > 0) os << " | ";
      os << enum_values[i].front();
    }
    return os.str();
  }
  const bool has_min = min_value > kNoMin;
  const bool has_max = max_value < kNoMax && !max_is_type_limit;
  if (has_min && has_max) {
    os << (max_exclusive ? "[" : "[") << min_value << ", " << max_value
       << (max_exclusive ? ")" : "]");
  } else if (has_min) {
    os << ">= " << min_value;
  } else if (has_max) {
    os << (max_exclusive ? "< " : "<= ") << max_value;
  } else {
    os << "any";
  }
  return os.str();
}

void ParamDescriptor::CheckValue(double value) const {
  VOODB_CHECK_MSG(type != ParamType::kString,
                  "parameter '" << name
                                << "' is a string; it has no numeric value");
  VOODB_CHECK_MSG(std::isfinite(value),
                  "parameter '" << name << "' needs a finite value");
  if (integral()) {
    VOODB_CHECK_MSG(value == std::floor(value),
                    "parameter '" << name << "' needs an integer, got "
                                  << value);
  }
  const bool above_min = value >= min_value;
  const bool below_max = max_exclusive ? value < max_value
                                       : value <= max_value;
  if (!(above_min && below_max)) {
    // Name the true numeric bounds even when RangeText elides a
    // type-width maximum.
    std::ostringstream bounds;
    if (type == ParamType::kBool || type == ParamType::kEnum) {
      bounds << RangeText();
    } else if (max_value < kNoMax) {
      bounds << (max_exclusive ? "[" : "[") << min_value << ", " << max_value
             << (max_exclusive ? ")" : "]");
    } else {
      bounds << ">= " << min_value;
    }
    VOODB_CHECK_MSG(false, "parameter '" << name << "' = " << value
                                         << " out of range "
                                         << bounds.str());
  }
}

const ParamRegistry& ParamRegistry::Instance() {
  static const ParamRegistry registry;
  return registry;
}

std::vector<std::string> ParamRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(descriptors_.size());
  for (const ParamDescriptor& d : descriptors_) names.push_back(d.name);
  return names;
}

const ParamDescriptor* ParamRegistry::Find(const std::string& name) const {
  const auto it = index_.find(name);
  return it == index_.end() ? nullptr : &descriptors_[it->second];
}

const ParamDescriptor& ParamRegistry::At(const std::string& name) const {
  const ParamDescriptor* d = Find(name);
  if (d == nullptr) {
    const std::string nearest = util::NearestMatch(name, Names());
    VOODB_CHECK_MSG(false, "unknown parameter '"
                               << name << "'"
                               << (nearest.empty()
                                       ? ""
                                       : " (did you mean '" + nearest + "'?)")
                               << "; run `voodb params` for the full list");
  }
  return *d;
}

double ParamRegistry::Get(const ConstParamTarget& target,
                          const std::string& name) const {
  const ParamDescriptor& d = At(name);
  VOODB_CHECK_MSG(d.type != ParamType::kString,
                  "parameter '" << name
                                << "' is a string; use GetText instead");
  return d.getter(target);
}

void ParamRegistry::Set(const ParamTarget& target, const std::string& name,
                        double value) const {
  const ParamDescriptor& d = At(name);
  d.CheckValue(value);
  d.setter(target, value);
}

void ParamRegistry::Set(const ParamTarget& target, const std::string& name,
                        const std::string& value) const {
  const ParamDescriptor& d = At(name);
  if (d.type == ParamType::kString) {
    d.text_setter(target, value);
    return;
  }
  Set(target, name, ParseValue(name, value));
}

std::string ParamRegistry::GetText(const ConstParamTarget& target,
                                   const std::string& name) const {
  const ParamDescriptor& d = At(name);
  if (d.type == ParamType::kString) return d.text_getter(target);
  return FormatValue(name, d.getter(target));
}

std::string ParamRegistry::DefaultText(const ParamDescriptor& d) const {
  if (d.type == ParamType::kString) return d.default_text;
  return FormatValue(d.name, d.default_value);
}

bool ParamRegistry::IsDefault(const ConstParamTarget& target,
                              const ParamDescriptor& d) const {
  if (d.type == ParamType::kString) {
    return d.text_getter(target) == d.default_text;
  }
  return d.getter(target) == d.default_value;
}

double ParamRegistry::ParseValue(const std::string& name,
                                 const std::string& text) const {
  const ParamDescriptor& d = At(name);
  VOODB_CHECK_MSG(d.type != ParamType::kString,
                  "parameter '" << name
                                << "' is a string; it has no numeric value");
  const std::string lower = Lower(text);
  if (d.type == ParamType::kEnum) {
    for (size_t ordinal = 0; ordinal < d.enum_values.size(); ++ordinal) {
      for (const std::string& spelling : d.enum_values[ordinal]) {
        if (Lower(spelling) == lower) return static_cast<double>(ordinal);
      }
    }
  }
  if (d.type == ParamType::kBool) {
    if (lower == "true" || lower == "yes" || lower == "on") return 1.0;
    if (lower == "false" || lower == "no" || lower == "off") return 0.0;
  }
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (!text.empty() && end != nullptr && *end == '\0') return v;
  // A misspelled enum value gets a did-you-mean over every accepted
  // spelling, matching the unknown-parameter diagnostic in At().
  std::string hint;
  if (d.type == ParamType::kEnum) {
    std::vector<std::string> spellings;
    for (const auto& value_spellings : d.enum_values) {
      spellings.insert(spellings.end(), value_spellings.begin(),
                       value_spellings.end());
    }
    const std::string nearest = util::NearestMatch(text, spellings);
    if (!nearest.empty()) hint = " (did you mean '" + nearest + "'?)";
  }
  VOODB_CHECK_MSG(false, "parameter '" << name << "' (" << ToString(d.type)
                                       << ") got '" << text << "'" << hint
                                       << "; valid: " << d.RangeText());
  return 0.0;
}

std::string ParamRegistry::FormatValue(const std::string& name,
                                       double value) const {
  const ParamDescriptor& d = At(name);
  switch (d.type) {
    case ParamType::kBool:
      return value != 0.0 ? "true" : "false";
    case ParamType::kEnum:
      return d.EnumName(static_cast<size_t>(value));
    case ParamType::kInt: {
      std::ostringstream os;
      os << static_cast<int64_t>(value);
      return os.str();
    }
    case ParamType::kReal: {
      std::ostringstream os;
      os << value;
      return os.str();
    }
    case ParamType::kString:
      VOODB_CHECK_MSG(false, "parameter '" << name
                                           << "' is a string; use GetText");
  }
  return "?";
}

void ParamRegistry::ValidateSystem(const VoodbConfig& config) const {
  const ConstParamTarget target{&config, nullptr};
  for (const ParamDescriptor& d : descriptors_) {
    if (d.domain == ParamDomain::kWorkload || d.type == ParamType::kString) {
      continue;  // strings carry no range
    }
    d.CheckValue(d.getter(target));
  }
}

void ParamRegistry::ValidateWorkload(const ocb::OcbParameters& workload) const {
  const ConstParamTarget target{nullptr, &workload};
  for (const ParamDescriptor& d : descriptors_) {
    if (d.domain != ParamDomain::kWorkload || d.type == ParamType::kString) {
      continue;
    }
    d.CheckValue(d.getter(target));
  }
}

namespace {

/// Fluent builder used only during registry construction.
class Builder {
 public:
  explicit Builder(std::vector<ParamDescriptor>* out) : out_(out) {}

  template <typename T>
  Builder& System(const char* name, T VoodbConfig::*field, const char* doc) {
    ParamDescriptor d = Base<T>(name, ParamDomain::kSystem, doc);
    d.getter = [name, field](const ConstParamTarget& t) {
      RequireSystem(t.system, name);
      return FieldToDouble(t.system->*field);
    };
    d.setter = [name, field](const ParamTarget& t, double v) {
      RequireSystem(t.system, name);
      FieldFromDouble(t.system->*field, v);
    };
    d.default_value = FieldToDouble(VoodbConfig{}.*field);
    return Push(std::move(d));
  }

  /// String-typed VoodbConfig field; travels through the text accessors.
  Builder& SystemString(const char* name, std::string VoodbConfig::*field,
                        const char* doc) {
    ParamDescriptor d;
    d.name = name;
    d.type = ParamType::kString;
    d.domain = ParamDomain::kSystem;
    d.doc = doc;
    d.text_getter = [name, field](const ConstParamTarget& t) {
      RequireSystem(t.system, name);
      return t.system->*field;
    };
    d.text_setter = [name, field](const ParamTarget& t,
                                  const std::string& v) {
      RequireSystem(t.system, name);
      t.system->*field = v;
    };
    d.default_text = VoodbConfig{}.*field;
    return Push(std::move(d));
  }

  template <typename T>
  Builder& Disk(const char* name, T storage::DiskParameters::*field,
                const char* doc) {
    ParamDescriptor d = Base<T>(name, ParamDomain::kDisk, doc);
    d.getter = [name, field](const ConstParamTarget& t) {
      RequireSystem(t.system, name);
      return FieldToDouble(t.system->disk.*field);
    };
    d.setter = [name, field](const ParamTarget& t, double v) {
      RequireSystem(t.system, name);
      FieldFromDouble(t.system->disk.*field, v);
    };
    d.default_value = FieldToDouble(storage::DiskParameters{}.*field);
    return Push(std::move(d));
  }

  template <typename T>
  Builder& Workload(const char* name, T ocb::OcbParameters::*field,
                    const char* doc) {
    ParamDescriptor d = Base<T>(name, ParamDomain::kWorkload, doc);
    d.getter = [name, field](const ConstParamTarget& t) {
      RequireWorkload(t.workload, name);
      return FieldToDouble(t.workload->*field);
    };
    d.setter = [name, field](const ParamTarget& t, double v) {
      RequireWorkload(t.workload, name);
      FieldFromDouble(t.workload->*field, v);
    };
    d.default_value = FieldToDouble(ocb::OcbParameters{}.*field);
    return Push(std::move(d));
  }

  /// Raises the lower bound of the most recent descriptor (integral
  /// descriptors keep their field-width upper bound).
  Builder& Range(double min_value) {
    Last().min_value = min_value;
    return *this;
  }

  /// Sets both inclusive bounds.
  Builder& Range(double min_value, double max_value) {
    Last().min_value = min_value;
    Last().max_value = max_value;
    Last().max_is_type_limit = false;
    return *this;
  }

  /// [min, max) — e.g. probabilities that must stay below 1.
  Builder& RangeExclusiveMax(double min_value, double max_value) {
    Last().min_value = min_value;
    Last().max_value = max_value;
    Last().max_exclusive = true;
    Last().max_is_type_limit = false;
    return *this;
  }

  /// Spellings per enumerator; first spelling is canonical.
  Builder& Enum(std::vector<std::vector<std::string>> values) {
    ParamDescriptor& d = Last();
    VOODB_CHECK_MSG(d.type == ParamType::kEnum,
                    "Enum() on non-enum parameter '" << d.name << "'");
    d.min_value = 0.0;
    d.max_value = static_cast<double>(values.size() - 1);
    d.enum_values = std::move(values);
    return *this;
  }

 private:
  template <typename T>
  static void RequireSystem(T* system, const char* name) {
    VOODB_CHECK_MSG(system != nullptr,
                    "parameter '" << name
                                  << "' needs a system config target");
  }
  template <typename T>
  static void RequireWorkload(T* workload, const char* name) {
    VOODB_CHECK_MSG(workload != nullptr,
                    "parameter '" << name << "' needs a workload target");
  }

  template <typename T>
  ParamDescriptor Base(const char* name, ParamDomain domain, const char* doc) {
    ParamDescriptor d;
    d.name = name;
    d.type = TypeOf<T>();
    d.domain = domain;
    d.doc = doc;
    switch (d.type) {
      case ParamType::kBool:
        d.min_value = 0.0;
        d.max_value = 1.0;
        break;
      case ParamType::kInt:
        // Cap at the field width so a --set/axis value can never wrap or
        // hit UB in the double -> unsigned cast; 2^53 bounds 64-bit
        // fields because larger integers are not exact in a double.
        if constexpr (std::is_integral_v<T>) {
          d.min_value = static_cast<double>(std::numeric_limits<T>::min());
          d.max_value =
              std::min(static_cast<double>(std::numeric_limits<T>::max()),
                       9007199254740992.0 /* 2^53 */);
          d.max_is_type_limit = true;
        }
        break;
      default:
        d.min_value = kNoMin;
        d.max_value = kNoMax;
        break;
    }
    return d;
  }

  Builder& Push(ParamDescriptor d) {
    out_->push_back(std::move(d));
    return *this;
  }

  ParamDescriptor& Last() { return out_->back(); }

  std::vector<ParamDescriptor>* out_;
};

}  // namespace

// When a field is added to VoodbConfig, DiskParameters or OcbParameters,
// these asserts fail until its descriptor is added below (and the counts
// in tests/test_param_registry.cpp are updated) — the registry is the
// single source of truth for parameter names and must stay complete.
#if defined(__x86_64__) && defined(__linux__)
static_assert(sizeof(storage::DiskParameters) == 24,
              "DiskParameters changed: update the parameter registry");
static_assert(sizeof(VoodbConfig) == 336,
              "VoodbConfig changed: update the parameter registry");
static_assert(sizeof(ocb::OcbParameters) == 232,
              "OcbParameters changed: update the parameter registry");
#endif

ParamRegistry::ParamRegistry() {
  Builder b(&descriptors_);

  // --- System (VoodbConfig, paper Table 3 + §5 extensions) ------------------
  b.System("system_class", &VoodbConfig::system_class,
           "SYSCLASS: architecture the generic model is instantiated as")
      .Enum({{"centralized"},
             {"object_server"},
             {"page_server"},
             {"db_server"}});
  b.System("network_throughput_mbps", &VoodbConfig::network_throughput_mbps,
           "NETTHRU in MB/s; <= 0 means infinite (no network delay)");
  b.System("event_queue", &VoodbConfig::event_queue,
           "kernel event-list backend; metrics are bit-identical across "
           "backends (pure perf knob)")
      .Enum({{"binary_heap", "binary", "heap"},
             {"quaternary_heap", "quaternary", "4ary"},
             {"calendar_queue", "calendar", "bucket"}});
  b.System("fast_lane", &VoodbConfig::fast_lane,
           "kernel zero-delay fast lane (now bucket); execution order is "
           "bit-identical on or off (pure perf knob)");
  b.System("page_size", &VoodbConfig::page_size,
           "PGSIZE: disk page size in bytes")
      .Range(512);
  b.System("buffer_pages", &VoodbConfig::buffer_pages,
           "BUFFSIZE: buffer (or VM frame) count in pages")
      .Range(1);
  b.System("page_replacement", &VoodbConfig::page_replacement,
           "PGREP: buffer page replacement strategy")
      .Enum({{"random"},
             {"fifo"},
             {"lfu"},
             {"lru"},
             {"lru_k", "lruk"},
             {"clock"},
             {"gclock"}});
  b.System("lru_k", &VoodbConfig::lru_k,
           "K when page_replacement is lru_k")
      .Range(1);
  b.System("prefetch", &VoodbConfig::prefetch,
           "PREFETCH: prefetching policy")
      .Enum({{"none"}, {"sequential"}});
  // Depth 0 stays legal while prefetching is disabled; the >= 1
  // requirement under an active policy is the cross-field check in
  // VoodbConfig::Validate.
  b.System("prefetch_depth", &VoodbConfig::prefetch_depth,
           "pages read ahead per sequential prefetch (>= 1 when prefetch "
           "is enabled)");
  b.System("initial_placement", &VoodbConfig::initial_placement,
           "INITPL: initial object placement policy")
      .Enum({{"sequential"},
             {"optimized_sequential"},
             {"reference_dfs"}});
  b.System("auto_clustering", &VoodbConfig::auto_clustering,
           "Clustering Manager evaluates its trigger at transaction "
           "boundaries");
  b.System("clustering_stat_cpu_ms", &VoodbConfig::clustering_stat_cpu_ms,
           "CPU ms charged per object access for clustering statistics")
      .Range(0.0);
  b.System("multiprogramming_level", &VoodbConfig::multiprogramming_level,
           "MULTILVL: concurrent transactions admitted")
      .Range(1);
  b.System("get_lock_ms", &VoodbConfig::get_lock_ms,
           "GETLOCK: lock acquisition ms per object access")
      .Range(0.0);
  b.System("release_lock_ms", &VoodbConfig::release_lock_ms,
           "RELLOCK: lock release ms per held lock")
      .Range(0.0);
  b.System("flush_on_commit", &VoodbConfig::flush_on_commit,
           "force policy: write dirty pages to disk at commit");
  b.System("use_lock_manager", &VoodbConfig::use_lock_manager,
           "real object-level 2PL with wait-die instead of the fixed "
           "GETLOCK delay");
  b.System("cc_protocol", &VoodbConfig::cc_protocol,
           "concurrency-control protocol when use_lock_manager is on")
      .Enum({{"no_wait", "nowait"},
             {"wait_die", "waitdie"},
             {"deadlock_detect", "detect"},
             {"mvcc"},
             {"occ"}});
  b.System("restart_backoff_ms", &VoodbConfig::restart_backoff_ms,
           "mean exponential restart backoff ms after a CC abort")
      .Range(0.0);
  b.System("failure_mtbf_ms", &VoodbConfig::failure_mtbf_ms,
           "mean time between crashes ms; 0 disables the hazard process")
      .Range(0.0);
  b.System("recovery_base_ms", &VoodbConfig::recovery_base_ms,
           "fixed restart cost ms after a crash")
      .Range(0.0);
  b.System("recovery_per_dirty_page_ms",
           &VoodbConfig::recovery_per_dirty_page_ms,
           "log-replay cost ms per dirty page lost in a crash")
      .Range(0.0);
  b.System("disk_fault_prob", &VoodbConfig::disk_fault_prob,
           "per-I/O transient fault probability; 0 disables")
      .RangeExclusiveMax(0.0, 1.0);
  b.System("disk_fault_retry_ms", &VoodbConfig::disk_fault_retry_ms,
           "retry penalty ms per transient fault")
      .Range(0.0);
  b.System("disk_fault_max_retries", &VoodbConfig::disk_fault_max_retries,
           "retries before a transient fault clears");
  b.System("num_users", &VoodbConfig::num_users, "NUSERS: concurrent users")
      .Range(1);
  b.System("storage_overhead", &VoodbConfig::storage_overhead,
           "storage overhead factor when packing objects into pages")
      .Range(1.0);
  b.System("use_virtual_memory", &VoodbConfig::use_virtual_memory,
           "OS virtual-memory model instead of a database buffer (Texas)");
  b.System("vm_reserve_references", &VoodbConfig::vm_reserve_references,
           "Texas reserve-on-swizzle behaviour (with use_virtual_memory)");
  b.System("vm_reservations_enter_hot",
           &VoodbConfig::vm_reservations_enter_hot,
           "reserved frames enter the LRU order hot (Linux 2.0 behaviour)");
  b.System("vm_dirty_on_load", &VoodbConfig::vm_dirty_on_load,
           "pages dirtied by pointer swizzling at load time");
  b.System("object_cpu_ms", &VoodbConfig::object_cpu_ms,
           "CPU ms per in-memory object operation")
      .Range(0.0);
  b.System("trace_record", &VoodbConfig::trace_record,
           "record the run's access trace (txn markers, object and page "
           "accesses) to trace_path");
  b.System("workload_source", &VoodbConfig::workload_source,
           "transaction stream source: the synthetic OCB generator, a "
           "recorded trace replayed from trace_path, or YCSB-style "
           "zipfian point accesses (ycsb_* workload params)")
      .Enum({{"synthetic"}, {"trace"}, {"ycsb_zipf", "ycsb"}});
  b.SystemString("trace_path", &VoodbConfig::trace_path,
                 "trace file path: output for trace_record, input for "
                 "workload_source=trace");
  b.System("shards", &VoodbConfig::shards,
           "independent storage-server shards hash-partitioned over the "
           "object base (1 = the single-server model)")
      .Range(1);
  b.System("sim_threads", &VoodbConfig::sim_threads,
           "worker threads executing scheduler partitions inside one run; "
           "results are bit-identical at any value (pure perf knob)")
      .Range(1);
  b.System("sim_window", &VoodbConfig::sim_window,
           "explicit conservative-window width ms; 0 derives it from the "
           "minimum cross-shard delay")
      .Range(0.0);
  b.System("multi_partition_pct", &VoodbConfig::multi_partition_pct,
           "fraction of transactions that run a sub-transaction on a "
           "second shard through the network actor")
      .Range(0.0, 1.0);
  b.System("observe", &VoodbConfig::observe,
           "attach the simulation-time profiler (per-actor sim-time and "
           "event attribution)");
  b.SystemString("profile_path", &VoodbConfig::profile_path,
                 "Chrome-trace (chrome://tracing) output path; non-empty "
                 "implies observe and enables span capture");
  b.System("trace_spans", &VoodbConfig::trace_spans,
           "causal per-transaction tracing: span trees, critical-path "
           "component histograms, tail exemplars (voodb explain)");
  b.System("trace_sample_rate", &VoodbConfig::trace_sample_rate,
           "fraction of transactions traced, chosen by a deterministic "
           "txn-id hash (consumes no RNG stream)")
      .Range(0.0, 1.0);
  b.System("trace_exemplars", &VoodbConfig::trace_exemplars,
           "slowest-K committed transactions whose full span trees are "
           "retained for voodb explain")
      .Range(0);

  // --- Disk (storage::DiskParameters) ---------------------------------------
  b.Disk("disk_search_ms", &storage::DiskParameters::search_ms,
         "DISKSEA: disk search (seek) time ms")
      .Range(0.0);
  b.Disk("disk_latency_ms", &storage::DiskParameters::latency_ms,
         "DISKLAT: disk rotational latency ms")
      .Range(0.0);
  b.Disk("disk_transfer_ms", &storage::DiskParameters::transfer_ms,
         "DISKTRA: disk page transfer time ms")
      .Range(0.0);

  // --- Workload (ocb::OcbParameters: OCB structure + Table 5) ---------------
  b.Workload("num_classes", &ocb::OcbParameters::num_classes,
             "NC: classes in the schema")
      .Range(1);
  b.Workload("max_refs_per_class", &ocb::OcbParameters::max_refs_per_class,
             "MAXNREF: max reference attributes per class")
      .Range(1);
  b.Workload("base_instance_size", &ocb::OcbParameters::base_instance_size,
             "BASESIZE: base instance size in bytes")
      .Range(1);
  b.Workload("class_size_growth", &ocb::OcbParameters::class_size_growth,
             "instance size grows linearly with the class index");
  b.Workload("num_objects", &ocb::OcbParameters::num_objects,
             "NO: object instances in the base")
      .Range(1);
  b.Workload("num_reference_types", &ocb::OcbParameters::num_reference_types,
             "NREFT: reference types (inheritance, aggregation, ...)")
      .Range(1);
  b.Workload("class_locality", &ocb::OcbParameters::class_locality,
             "CLOCREF: class locality window for reference targets")
      .Range(1);
  b.Workload("object_locality", &ocb::OcbParameters::object_locality,
             "OLOCREF: object locality window for reference targets")
      .Range(1);
  b.Workload("reference_distribution",
             &ocb::OcbParameters::reference_distribution,
             "distribution of reference targets inside the locality window")
      .Enum({{"uniform"}, {"zipf"}, {"normal"}});
  b.Workload("zipf_skew", &ocb::OcbParameters::zipf_skew,
             "Zipf skew used by zipf distributions")
      .Range(0.0);
  b.Workload("cold_transactions", &ocb::OcbParameters::cold_transactions,
             "COLDN: transactions before measurement starts");
  b.Workload("hot_transactions", &ocb::OcbParameters::hot_transactions,
             "HOTN: measured transactions");
  b.Workload("p_set", &ocb::OcbParameters::p_set,
             "PSET: set-oriented access probability")
      .Range(0.0, 1.0);
  b.Workload("set_depth", &ocb::OcbParameters::set_depth,
             "SETDEPTH: set-oriented access depth")
      .Range(1);
  b.Workload("p_simple", &ocb::OcbParameters::p_simple,
             "PSIMPLE: simple traversal probability")
      .Range(0.0, 1.0);
  b.Workload("simple_depth", &ocb::OcbParameters::simple_depth,
             "SIMDEPTH: simple traversal depth")
      .Range(1);
  b.Workload("p_hierarchy", &ocb::OcbParameters::p_hierarchy,
             "PHIER: hierarchy traversal probability")
      .Range(0.0, 1.0);
  b.Workload("hierarchy_depth", &ocb::OcbParameters::hierarchy_depth,
             "HIEDEPTH: hierarchy traversal depth")
      .Range(1);
  b.Workload("p_stochastic", &ocb::OcbParameters::p_stochastic,
             "PSTOCH: stochastic traversal probability")
      .Range(0.0, 1.0);
  b.Workload("stochastic_depth", &ocb::OcbParameters::stochastic_depth,
             "STODEPTH: stochastic traversal depth")
      .Range(1);
  b.Workload("p_random_access", &ocb::OcbParameters::p_random_access,
             "PRAND: random-access probability")
      .Range(0.0, 1.0);
  b.Workload("random_access_count", &ocb::OcbParameters::random_access_count,
             "RANDOMN: random accesses per transaction")
      .Range(1);
  b.Workload("p_scan", &ocb::OcbParameters::p_scan,
             "PSCAN: sequential class-scan probability")
      .Range(0.0, 1.0);
  b.Workload("scan_max_instances", &ocb::OcbParameters::scan_max_instances,
             "SCANMAX: instance cap per scan (0 = whole class)");
  b.Workload("p_update", &ocb::OcbParameters::p_update,
             "probability an object access is an update")
      .Range(0.0, 1.0);
  b.Workload("root_distribution", &ocb::OcbParameters::root_distribution,
             "distribution of transaction root objects")
      .Enum({{"uniform"}, {"zipf"}, {"normal"}});
  b.Workload("root_region", &ocb::OcbParameters::root_region,
             "hot-set size roots are drawn from (0 = any object)");
  b.Workload("think_time_ms", &ocb::OcbParameters::think_time_ms,
             "mean think time ms between a user's transactions")
      .Range(0.0);
  b.Workload("traversal_visits_once",
             &ocb::OcbParameters::traversal_visits_once,
             "hierarchy traversals visit each object at most once");
  b.Workload("ycsb_skew", &ocb::OcbParameters::ycsb_skew,
             "Zipf exponent of ycsb_zipf key draws over the whole base "
             "(0 = uniform)")
      .Range(0.0);
  b.Workload("ycsb_read_pct", &ocb::OcbParameters::ycsb_read_pct,
             "probability a ycsb_zipf access is a read (rest write)")
      .Range(0.0, 1.0);
  b.Workload("ycsb_ops_per_txn", &ocb::OcbParameters::ycsb_ops_per_txn,
             "independent object accesses per ycsb_zipf transaction")
      .Range(1);
  b.Workload("seed", &ocb::OcbParameters::seed,
             "base RNG seed for object-base generation");

  for (size_t i = 0; i < descriptors_.size(); ++i) {
    const auto [it, inserted] = index_.emplace(descriptors_[i].name, i);
    VOODB_CHECK_MSG(inserted,
                    "duplicate parameter '" << descriptors_[i].name << "'");
    if (descriptors_[i].type != ParamType::kString) {
      descriptors_[i].CheckValue(descriptors_[i].default_value);
    }
  }
}

}  // namespace voodb::core
