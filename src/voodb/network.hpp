/// \file network.hpp
/// \brief The network between clients and server (Client-Server classes).
///
/// Models NETTHRU (Table 3) as a capacity-1 link whose service time is
/// bytes / throughput.  A non-positive throughput means "infinite"
/// (Table 4 sets NETTHRU = +inf for the O2 experiments, which measured
/// server-side I/Os only) and transfers complete immediately.
#pragma once

#include <cstdint>
#include <functional>

#include "desp/actor.hpp"
#include "desp/resource.hpp"
#include "desp/scheduler.hpp"

namespace voodb::obs {
class MetricRegistry;
class SpanTracer;
}  // namespace voodb::obs

namespace voodb::core {

/// The network actor.
class NetworkActor : public desp::Actor {
 public:
  /// \param throughput_mbps NETTHRU in MB/s; <= 0 => infinite.
  NetworkActor(desp::Scheduler* scheduler, double throughput_mbps);

  /// Transfers `bytes` and then calls `done`.
  void Transfer(uint64_t bytes, std::function<void()> done);

  /// Time to move `bytes` (ms), ignoring queueing.
  double TransferTime(uint64_t bytes) const;

  uint64_t bytes_transferred() const { return bytes_transferred_; }
  bool infinite() const { return throughput_mbps_ <= 0.0; }

  /// Registers the link counter and utilization gauge with `registry`.
  void RegisterMetrics(obs::MetricRegistry& registry) const;

  /// Attaches/detaches (nullptr) the span tracer: each transfer emits a
  /// network leaf (queueing + wire time) against the ambient trace
  /// context.  Infinite links transfer in zero time and emit nothing.
  void SetTracer(obs::SpanTracer* tracer) { tracer_ = tracer; }

 private:
  desp::Resource link_;
  double throughput_mbps_;
  uint64_t bytes_transferred_ = 0;
  obs::SpanTracer* tracer_ = nullptr;
};

}  // namespace voodb::core
