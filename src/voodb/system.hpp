/// \file system.hpp
/// \brief VoodbSystem — one instantiated VOODB evaluation model.
///
/// Wires the active resources of the knowledge model (Fig. 4) over one
/// OCB object base:
///
///   Users -> Transaction Manager -> Object Manager -> Buffering Manager
///         -> I/O Subsystem, with the Clustering Manager observing every
///   object operation and the network crossing client/server boundaries
///   for the Client-Server system classes.
///
/// The system persists across workload phases, which is how the DSTC
/// experiments run: usage phase, external clustering trigger, usage phase
/// again on the reorganized base (paper §4.4).
#pragma once

#include <cstdint>
#include <memory>

#include "cluster/policy.hpp"
#include "desp/random.hpp"
#include "desp/scheduler.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/spans.hpp"
#include "ocb/object_base.hpp"
#include "ocb/workload.hpp"
#include "ocb/ycsb.hpp"
#include "trace/recorder.hpp"
#include "trace/workload.hpp"
#include "trace/writer.hpp"
#include "voodb/buffering_manager.hpp"
#include "voodb/clustering_manager.hpp"
#include "voodb/config.hpp"
#include "voodb/failure_injector.hpp"
#include "voodb/io_subsystem.hpp"
#include "voodb/metrics.hpp"
#include "voodb/network.hpp"
#include "voodb/object_manager.hpp"
#include "voodb/transaction_manager.hpp"

namespace voodb::core {

/// A fully wired instance of the generic evaluation model.
class VoodbSystem {
 public:
  /// \param config     Table 3 parameters (validated here)
  /// \param base       the OCB object base (not owned; must outlive us)
  /// \param policy     CLUSTP module (nullptr = None)
  /// \param seed       replication seed (drives RANDOM replacement, think
  ///                   times, and any other stochastic system behaviour)
  /// \param scheduler  event scheduler to ride on (not owned; must outlive
  ///                   us).  Null — the default — makes the system own a
  ///                   private serial scheduler.  A `ShardedVoodb` passes
  ///                   one partition of its `desp::ParallelScheduler` so N
  ///                   independent stacks advance under the conservative
  ///                   window protocol.
  /// \param trace_global_id_base  OR-ed onto transaction ids to form
  ///                   cross-shard-unique trace identities (shard << 48);
  ///                   0 for the ordinary single-server model.
  VoodbSystem(VoodbConfig config, const ocb::ObjectBase* base,
              std::unique_ptr<cluster::ClusteringPolicy> policy,
              uint64_t seed, desp::Scheduler* scheduler = nullptr,
              uint64_t trace_global_id_base = 0);

  /// Finalizes an in-progress access trace (see FinishTrace).
  ~VoodbSystem();

  /// Runs `n` transactions drawn from `workload` across NUSERS users and
  /// returns this phase's metrics.  Reusable: state (buffer contents,
  /// clustering statistics, placement) carries over between calls.
  /// With `workload_source = trace` the system replays its recorded
  /// trace instead and `workload` is ignored.
  PhaseMetrics RunTransactions(ocb::WorkloadSource& workload, uint64_t n);

  /// Same, but every transaction is of the forced kind (the DSTC
  /// experiments run pure depth-3 hierarchy traversals).
  PhaseMetrics RunTransactionsOfKind(ocb::WorkloadSource& workload,
                                     ocb::TransactionKind kind, uint64_t n);

  /// Flushes and finalizes the access trace (no-op unless trace_record);
  /// called automatically on destruction.  The trace header receives the
  /// buffering layer's counters so replays can verify bit-exact
  /// reproduction.
  void FinishTrace();

  /// External clustering trigger (knowledge model: "Clustering Demand"
  /// from the Users).  Blocks until the reorganization I/O completes.
  ClusteringMetrics TriggerClustering();

  /// Empties the page buffer (cold restart between phases).
  void DropBuffer() { buffering_->Drop(); }

  /// Writes the Chrome-trace timeline to `profile_path` (no-op unless a
  /// profile path is configured); called automatically on destruction.
  void FinishProfile();

  // --- component access (benches, tests) -----------------------------------
  const VoodbConfig& config() const { return config_; }
  desp::Scheduler& scheduler() { return *scheduler_; }
  ObjectManagerActor& object_manager() { return *object_manager_; }
  BufferingManagerActor& buffering_manager() { return *buffering_; }
  ClusteringManagerActor& clustering_manager() { return *clustering_; }
  TransactionManagerActor& transaction_manager() { return *tm_; }
  IoSubsystemActor& io_subsystem() { return *io_; }
  NetworkActor& network() { return *network_; }
  /// The hazard process (nullptr unless failure_mtbf_ms > 0).
  FailureInjectorActor* failure_injector() { return failures_.get(); }

  // --- observability --------------------------------------------------------
  /// Every actor's counters/gauges/histograms, registered at construction
  /// (zero overhead on the actors' update paths — see obs::MetricRegistry).
  const obs::MetricRegistry& metric_registry() const { return metrics_; }
  /// The simulation-time profiler (nullptr unless `observe` or a
  /// `profile_path` is configured).
  obs::SimProfiler* profiler() { return profiler_.get(); }
  /// The causal span tracer (nullptr unless `trace_spans`); exemplars and
  /// component histograms for `voodb explain` and the sweep tables.
  obs::SpanTracer* span_tracer() { return tracer_.get(); }
  const obs::SpanTracer* span_tracer() const { return tracer_.get(); }

  /// Counter snapshot for computing phase deltas.  Public so external
  /// drivers (ShardedVoodb) can frame their own phases without going
  /// through RunTransactions.
  struct Snapshot {
    uint64_t ios = 0;
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t hits = 0;
    uint64_t requests = 0;
    uint64_t committed = 0;
    uint64_t operations = 0;
    uint64_t restarts = 0;
    uint64_t net_bytes = 0;
    uint64_t response_count = 0;
    double response_sum = 0.0;
    double time = 0.0;
    desp::LogHistogram response_histogram;
    desp::LogHistogram lock_wait_histogram;
    desp::LogHistogram disk_service_histogram;
    obs::ComponentHistograms component_histograms;
  };
  Snapshot Take() const;
  PhaseMetrics Delta(const Snapshot& before) const;

  /// Frames the marker stream and, for sharded drivers, per-user
  /// attribution: the trace's kTxnBegin id column packs (user, kind).
  void RecordTxnBegin(ocb::TransactionKind kind, uint32_t user);
  void RecordTxnEnd();

 private:
  PhaseMetrics Drive(ocb::WorkloadSource& workload,
                     const ocb::TransactionKind* forced_kind, uint64_t n);
  /// Builds the metric registry from every actor's cells.
  void RegisterMetrics();

  VoodbConfig config_;
  const ocb::ObjectBase* base_;
  std::unique_ptr<desp::Scheduler> owned_scheduler_;  ///< null if external
  desp::Scheduler* scheduler_;
  desp::RandomStream rng_;
  std::unique_ptr<ObjectManagerActor> object_manager_;
  std::unique_ptr<IoSubsystemActor> io_;
  std::unique_ptr<NetworkActor> network_;
  std::unique_ptr<BufferingManagerActor> buffering_;
  std::unique_ptr<ClusteringManagerActor> clustering_;
  std::unique_ptr<TransactionManagerActor> tm_;
  std::unique_ptr<FailureInjectorActor> failures_;

  // --- observability (obs subsystem) ----------------------------------------
  obs::MetricRegistry metrics_;
  std::unique_ptr<obs::SimProfiler> profiler_;
  std::unique_ptr<obs::SpanTracer> tracer_;
  bool profile_written_ = false;

  // --- access tracing (trace subsystem) -------------------------------------
  std::unique_ptr<trace::Writer> trace_writer_;      ///< trace_record
  std::unique_ptr<trace::Recorder> trace_recorder_;  ///< trace_record
  std::unique_ptr<trace::TraceWorkload> trace_workload_;  ///< source=trace
  std::unique_ptr<ocb::YcsbZipfWorkload> ycsb_workload_;  ///< source=ycsb_zipf
};

}  // namespace voodb::core
