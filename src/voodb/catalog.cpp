#include "voodb/catalog.hpp"

#include "util/check.hpp"

namespace voodb::core {

VoodbConfig SystemCatalog::O2() {
  VoodbConfig cfg;
  cfg.system_class = SystemClass::kPageServer;
  cfg.network_throughput_mbps = 0.0;  // +inf in Table 4 (no network delay)
  cfg.page_size = 4096;
  cfg.buffer_pages = 3840;  // 15.7 MB default server cache
  cfg.page_replacement = storage::ReplacementPolicy::kLru;
  cfg.prefetch = PrefetchPolicy::kNone;
  cfg.initial_placement = storage::PlacementPolicy::kOptimizedSequential;
  cfg.disk = storage::DiskParameters{6.3, 2.99, 0.7};
  cfg.multiprogramming_level = 10;
  cfg.get_lock_ms = 0.5;
  cfg.release_lock_ms = 0.5;
  cfg.num_users = 1;
  cfg.storage_overhead = 1.33;
  cfg.use_virtual_memory = false;
  return cfg;
}

VoodbConfig SystemCatalog::Texas() {
  VoodbConfig cfg;
  cfg.system_class = SystemClass::kCentralized;
  cfg.network_throughput_mbps = 0.0;  // N/A for a centralized system
  cfg.page_size = 4096;
  // Frames available to the store's mapping on the 64 MB host.  Table 4
  // prints "3275 pages", but that figure cannot reproduce Figures 10-11
  // (the ~21 MB = ~5400-page base shows *no* thrashing at 64 MB), so we
  // derive frames from physical memory instead; see DESIGN.md.
  cfg.buffer_pages = 13107;  // 0.8 * 64 MB / 4 KB
  cfg.page_replacement = storage::ReplacementPolicy::kLru;
  cfg.prefetch = PrefetchPolicy::kNone;
  cfg.initial_placement = storage::PlacementPolicy::kOptimizedSequential;
  cfg.disk = storage::DiskParameters{7.4, 4.3, 0.5};
  cfg.multiprogramming_level = 1;
  cfg.get_lock_ms = 0.0;
  cfg.release_lock_ms = 0.0;
  cfg.num_users = 1;
  cfg.storage_overhead = 1.0;
  cfg.use_virtual_memory = true;
  cfg.vm_reserve_references = true;
  cfg.vm_dirty_on_load = true;
  return cfg;
}

VoodbConfig SystemCatalog::TexasWithMemory(double memory_mb) {
  VoodbConfig cfg = Texas();
  SetTexasMemory(cfg, memory_mb);
  return cfg;
}

VoodbConfig SystemCatalog::O2WithCache(double cache_mb) {
  VoodbConfig cfg = O2();
  SetO2Cache(cfg, cache_mb);
  return cfg;
}

void SystemCatalog::SetTexasMemory(VoodbConfig& config, double memory_mb) {
  VOODB_CHECK_MSG(memory_mb > 0.0, "memory must be positive");
  // Linux 2.0 on the paper's PC leaves roughly 80 % of physical memory to
  // the store's mapping (kernel + daemons take the rest).
  const double frames = memory_mb * 1024.0 * 1024.0 * 0.8 /
                        static_cast<double>(config.page_size);
  config.buffer_pages = static_cast<uint64_t>(frames);
  if (config.buffer_pages < 16) config.buffer_pages = 16;
}

void SystemCatalog::SetO2Cache(VoodbConfig& config, double cache_mb) {
  VOODB_CHECK_MSG(cache_mb > 0.0, "cache must be positive");
  config.buffer_pages = static_cast<uint64_t>(
      cache_mb * 1024.0 * 1024.0 / static_cast<double>(config.page_size));
  if (config.buffer_pages < 16) config.buffer_pages = 16;
}

}  // namespace voodb::core
