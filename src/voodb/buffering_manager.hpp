/// \file buffering_manager.hpp
/// \brief The Buffering Manager active resource (knowledge model, Fig. 4).
///
/// "Access Page(s)": checks the memory buffer and, on a miss, requests the
/// page from the I/O Subsystem.  Depending on the configuration this actor
/// fronts either a database page buffer (BufferManager, with the PGREP
/// replacement policy) or the OS virtual-memory model (Texas).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "desp/actor.hpp"
#include "desp/random.hpp"
#include "desp/scheduler.hpp"
#include "ocb/types.hpp"
#include "storage/buffer_manager.hpp"
#include "trace/recorder.hpp"
#include "storage/virtual_memory.hpp"
#include "voodb/config.hpp"
#include "voodb/io_subsystem.hpp"
#include "voodb/object_manager.hpp"

namespace voodb::obs {
class MetricRegistry;
}  // namespace voodb::obs

namespace voodb::core {

/// The Buffering Manager actor.
class BufferingManagerActor : public desp::Actor {
 public:
  BufferingManagerActor(desp::Scheduler* scheduler, const VoodbConfig& config,
                        ObjectManagerActor* object_manager,
                        IoSubsystemActor* io, desp::RandomStream rng);

  /// Accesses object `oid` (every page of its span in order, plus the
  /// reserve-on-swizzle reservations when the Texas VM model is active),
  /// then calls `done`.
  void AccessObject(ocb::Oid oid, bool write, std::function<void()> done);

  /// Accesses every page of `span` in order, then calls `done`.
  void AccessSpan(storage::PageSpan span, bool write,
                  std::function<void()> done);

  /// Accesses a single page, then calls `done`.
  void AccessPage(storage::PageId page, bool write,
                  std::function<void()> done);

  /// Installs an access-trace recorder (not owned; nullptr detaches).
  /// Database-buffer configurations record inside
  /// BufferManager::AccessInto; the VM model records here in AccessPage
  /// (its Touch path is the same logical page stream).
  void SetRecorder(trace::Recorder* recorder);

  /// The recording run's buffer counters for the trace header (VM runs
  /// report touches/faults as accesses/misses; write-backs are swap
  /// writes).
  trace::TraceCounters TraceCountersNow() const;

  /// True when Drop() ran while a recorder was attached — a buffer
  /// event the page stream does not carry, which disqualifies the trace
  /// from bit-exact replay verification (trace::kFlagBufferDrop).
  bool DroppedWhileRecording() const { return dropped_while_recording_; }

  /// Forgets all buffered pages (no write-back).
  void Drop();

  /// Writes all dirty pages back through the I/O subsystem, then calls
  /// `done` (no-op completion for the VM-backed configuration, which has
  /// no force point).
  void Flush(std::function<void()> done);

  /// True when `page`'s contents are memory-resident.
  bool Contains(storage::PageId page) const;

  /// Resident dirty pages (the redo work a crash would leave behind).
  uint64_t DirtyPages() const;

  uint64_t requests() const { return requests_; }
  uint64_t hits() const { return hits_; }
  double HitRate() const {
    return requests_ == 0
               ? 0.0
               : static_cast<double>(hits_) / static_cast<double>(requests_);
  }
  bool uses_virtual_memory() const { return vm_ != nullptr; }

  /// Registers the buffer counters and derived gauges with `registry`.
  void RegisterMetrics(obs::MetricRegistry& registry) const;

 private:
  void AccessSpanStep(storage::PageSpan span, uint32_t index, bool write,
                      std::function<void()> done);

  ObjectManagerActor* object_manager_;
  IoSubsystemActor* io_;
  std::unique_ptr<storage::BufferManager> buffer_;
  std::unique_ptr<storage::VirtualMemoryModel> vm_;
  trace::Recorder* recorder_ = nullptr;  ///< VM-model page recording
  bool dropped_while_recording_ = false;
  bool vm_reserve_references_ = false;
  uint64_t requests_ = 0;
  uint64_t hits_ = 0;
};

}  // namespace voodb::core
