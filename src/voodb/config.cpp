#include "voodb/config.hpp"

#include "util/check.hpp"
#include "voodb/param_registry.hpp"

namespace voodb::core {

const char* ToString(SystemClass s) {
  switch (s) {
    case SystemClass::kCentralized:
      return "CENTRALIZED";
    case SystemClass::kObjectServer:
      return "OBJECT_SERVER";
    case SystemClass::kPageServer:
      return "PAGE_SERVER";
    case SystemClass::kDbServer:
      return "DB_SERVER";
  }
  return "?";
}

const char* ToString(PrefetchPolicy p) {
  switch (p) {
    case PrefetchPolicy::kNone:
      return "NONE";
    case PrefetchPolicy::kSequential:
      return "SEQUENTIAL";
  }
  return "?";
}

const char* ToString(WorkloadSourceKind s) {
  switch (s) {
    case WorkloadSourceKind::kSynthetic:
      return "SYNTHETIC";
    case WorkloadSourceKind::kTrace:
      return "TRACE";
    case WorkloadSourceKind::kYcsbZipf:
      return "YCSB_ZIPF";
  }
  return "?";
}

void VoodbConfig::Validate() const {
  // Per-field ranges come from the parameter registry, so every error
  // names the offending parameter; only cross-field constraints live
  // here.
  ParamRegistry::Instance().ValidateSystem(*this);
  VOODB_CHECK_MSG(prefetch == PrefetchPolicy::kNone || prefetch_depth >= 1,
                  "parameter 'prefetch_depth' must be >= 1 when prefetch "
                  "is enabled");
  VOODB_CHECK_MSG(!trace_record || !trace_path.empty(),
                  "parameter 'trace_path' must be set when trace_record "
                  "is enabled");
  VOODB_CHECK_MSG(workload_source != WorkloadSourceKind::kTrace ||
                      !trace_path.empty(),
                  "parameter 'trace_path' must name a recorded trace when "
                  "workload_source is trace");
  // Both directions share the one trace_path field, so recording while
  // replaying would truncate the very trace being read.
  VOODB_CHECK_MSG(!(trace_record &&
                    workload_source == WorkloadSourceKind::kTrace),
                  "parameter 'trace_record' cannot be combined with "
                  "workload_source=trace: trace_path would be both the "
                  "replay input and the recording output");
  // A sharded run records per-shard interleavings the single trace_path
  // cannot hold, and trace replay is a serial transaction stream.
  VOODB_CHECK_MSG(shards == 1 || (!trace_record &&
                                  workload_source ==
                                      WorkloadSourceKind::kSynthetic),
                  "parameter 'shards' > 1 cannot be combined with trace "
                  "recording or trace replay");
  disk.Validate();
}

}  // namespace voodb::core
