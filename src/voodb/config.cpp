#include "voodb/config.hpp"

#include "util/check.hpp"
#include "voodb/param_registry.hpp"

namespace voodb::core {

const char* ToString(SystemClass s) {
  switch (s) {
    case SystemClass::kCentralized:
      return "CENTRALIZED";
    case SystemClass::kObjectServer:
      return "OBJECT_SERVER";
    case SystemClass::kPageServer:
      return "PAGE_SERVER";
    case SystemClass::kDbServer:
      return "DB_SERVER";
  }
  return "?";
}

const char* ToString(PrefetchPolicy p) {
  switch (p) {
    case PrefetchPolicy::kNone:
      return "NONE";
    case PrefetchPolicy::kSequential:
      return "SEQUENTIAL";
  }
  return "?";
}

void VoodbConfig::Validate() const {
  // Per-field ranges come from the parameter registry, so every error
  // names the offending parameter; only cross-field constraints live
  // here.
  ParamRegistry::Instance().ValidateSystem(*this);
  VOODB_CHECK_MSG(prefetch == PrefetchPolicy::kNone || prefetch_depth >= 1,
                  "parameter 'prefetch_depth' must be >= 1 when prefetch "
                  "is enabled");
  disk.Validate();
}

}  // namespace voodb::core
