#include "voodb/config.hpp"

#include "util/check.hpp"

namespace voodb::core {

const char* ToString(SystemClass s) {
  switch (s) {
    case SystemClass::kCentralized:
      return "CENTRALIZED";
    case SystemClass::kObjectServer:
      return "OBJECT_SERVER";
    case SystemClass::kPageServer:
      return "PAGE_SERVER";
    case SystemClass::kDbServer:
      return "DB_SERVER";
  }
  return "?";
}

const char* ToString(PrefetchPolicy p) {
  switch (p) {
    case PrefetchPolicy::kNone:
      return "NONE";
    case PrefetchPolicy::kSequential:
      return "SEQUENTIAL";
  }
  return "?";
}

void VoodbConfig::Validate() const {
  VOODB_CHECK_MSG(page_size >= 512, "PGSIZE must be >= 512");
  VOODB_CHECK_MSG(buffer_pages >= 1, "BUFFSIZE must be >= 1");
  VOODB_CHECK_MSG(multiprogramming_level >= 1, "MULTILVL must be >= 1");
  VOODB_CHECK_MSG(num_users >= 1, "NUSERS must be >= 1");
  VOODB_CHECK_MSG(get_lock_ms >= 0.0 && release_lock_ms >= 0.0,
                  "lock times must be >= 0");
  VOODB_CHECK_MSG(storage_overhead >= 1.0, "storage overhead must be >= 1");
  VOODB_CHECK_MSG(clustering_stat_cpu_ms >= 0.0 && object_cpu_ms >= 0.0,
                  "CPU costs must be >= 0");
  VOODB_CHECK_MSG(prefetch == PrefetchPolicy::kNone || prefetch_depth >= 1,
                  "prefetch depth must be >= 1");
  VOODB_CHECK_MSG(restart_backoff_ms >= 0.0,
                  "restart backoff must be >= 0");
  VOODB_CHECK_MSG(failure_mtbf_ms >= 0.0, "MTBF must be >= 0");
  VOODB_CHECK_MSG(recovery_base_ms >= 0.0 && recovery_per_dirty_page_ms >= 0.0,
                  "recovery costs must be >= 0");
  VOODB_CHECK_MSG(disk_fault_prob >= 0.0 && disk_fault_prob < 1.0,
                  "disk fault probability must lie in [0, 1)");
  VOODB_CHECK_MSG(disk_fault_retry_ms >= 0.0, "retry penalty must be >= 0");
  disk.Validate();
}

}  // namespace voodb::core
