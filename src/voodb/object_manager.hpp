/// \file object_manager.hpp
/// \brief The Object Manager active resource (knowledge model, Fig. 4).
///
/// "Extract Page(s)": resolves logical OIDs into the disk pages holding
/// the object.  The Object Manager owns the placement — the simulation
/// model always uses *logical* OIDs (paper §4.4: "our simulation models
/// ... necessarily use logical OIDs"), so a clustering reorganization only
/// rewrites the placement table and the moved pages, never the
/// references inside other objects.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "desp/actor.hpp"
#include "ocb/object_base.hpp"
#include "storage/page_adjacency.hpp"
#include "storage/placement.hpp"
#include "trace/recorder.hpp"

namespace voodb::obs {
class MetricRegistry;
}  // namespace voodb::obs

namespace voodb::core {

/// The Object Manager actor.  It resolves OIDs synchronously (placement
/// lookups cost no simulated time), so it never schedules events itself —
/// but as an active resource of the knowledge model it sits on the same
/// Actor base as its peers.
class ObjectManagerActor : public desp::Actor {
 public:
  ObjectManagerActor(desp::Scheduler* scheduler, const ocb::ObjectBase* base,
                     uint32_t page_size,
                     storage::PlacementPolicy initial_placement,
                     double overhead_factor);

  /// Pages holding `oid` — one load from the placement's flat
  /// Oid-indexed span array (OIDs from generated transactions are dense
  /// and always in range).
  storage::PageSpan SpanOf(ocb::Oid oid) const {
    return placement_->spans()[oid];
  }

  /// SpanOf plus access-trace recording: the Buffering Manager resolves
  /// every object access through here, so an attached recorder sees the
  /// object stream in execution order.
  storage::PageSpan Resolve(ocb::Oid oid, bool write) {
    if (recorder_ != nullptr) recorder_->OnObject(oid, write);
    return placement_->spans()[oid];
  }

  /// Installs an access-trace recorder (not owned; nullptr detaches).
  void SetRecorder(trace::Recorder* recorder) { recorder_ = recorder; }

  const storage::Placement& placement() const { return *placement_; }
  const ocb::ObjectBase& base() const { return *base_; }
  uint64_t NumPages() const { return placement_->NumPages(); }

  /// Applies a logical-OID reorganization: relocates `moved_order`'s
  /// objects into fresh tail pages.  Returns the old pages the moved
  /// objects came from (to be read) and the new pages written.
  struct RelocationIo {
    std::vector<storage::PageId> pages_to_read;
    std::vector<storage::PageId> pages_to_write;
  };
  RelocationIo ApplyRelocation(const std::vector<ocb::Oid>& moved_order);

  /// Pages holding the objects referenced from any object on `page`
  /// (deduplicated, excluding `page` itself).  Drives the VM model's
  /// page-granular reserve-on-swizzle behaviour; lazily rebuilt after a
  /// relocation changes the page space.  Returned as a CSR row view into
  /// the flat adjacency index (valid until the next relocation).
  storage::PageIdSpan ReferencedPages(storage::PageId page);

  /// Registers the placement gauges with `registry`.
  void RegisterMetrics(obs::MetricRegistry& registry) const;

 private:
  const ocb::ObjectBase* base_;
  uint32_t page_size_;
  double overhead_factor_;
  trace::Recorder* recorder_ = nullptr;
  std::unique_ptr<storage::Placement> placement_;
  storage::PageAdjacency adjacency_;
  bool adjacency_valid_ = false;
};

}  // namespace voodb::core
