/// \file param_registry.hpp
/// \brief The single source of truth for VOODB parameter names.
///
/// VOODB's whole point (paper §3.2, Table 3; OCB's Table 5) is that one
/// generic model, steered purely by parameters, reproduces many OODB
/// architectures and experiments.  The registry makes that
/// parameterization surface a first-class API: every field of
/// `core::VoodbConfig` (including its embedded `storage::DiskParameters`)
/// and `ocb::OcbParameters` has exactly one descriptor carrying its name,
/// type, doc string, valid range, typed accessors, and string <-> enum
/// mapping.  Everything that addresses a parameter by name resolves
/// through here: sweep-grid axes (`exp::ApplyAxis`), the `voodb run
/// --set key=value` driver, config validation (range errors name the
/// offending parameter), and the generated parameter table (`voodb
/// params`, README).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ocb/parameters.hpp"
#include "voodb/config.hpp"

namespace voodb::core {

/// Value category of a parameter.  Every value travels through the
/// registry as a double: bools as 0/1, enums as their ordinal.
enum class ParamType {
  kBool,
  kInt,
  kReal,
  kEnum,
  /// Free-form text (e.g. a trace file path).  String parameters travel
  /// through the dedicated text accessors — they have no numeric value,
  /// cannot be sweep axes, and carry no range.
  kString,
};

const char* ToString(ParamType t);

/// Which parameter struct a descriptor addresses.
enum class ParamDomain {
  kSystem,    ///< VoodbConfig (paper Table 3 + extensions)
  kDisk,      ///< storage::DiskParameters inside VoodbConfig
  kWorkload,  ///< ocb::OcbParameters (OCB structure + Table 5 workload)
};

const char* ToString(ParamDomain d);

/// Mutable view over the structs a descriptor can address.  A null
/// pointer means "that domain is not available here" (e.g. validating a
/// bare VoodbConfig); touching a parameter of an absent domain throws.
struct ParamTarget {
  VoodbConfig* system = nullptr;
  ocb::OcbParameters* workload = nullptr;
};

/// Read-only counterpart of ParamTarget.
struct ConstParamTarget {
  const VoodbConfig* system = nullptr;
  const ocb::OcbParameters* workload = nullptr;
};

/// One named parameter: metadata plus typed get/set accessors.
struct ParamDescriptor {
  std::string name;
  ParamType type = ParamType::kReal;
  ParamDomain domain = ParamDomain::kSystem;
  std::string doc;
  double min_value = 0.0;        ///< inclusive lower bound
  double max_value = 0.0;        ///< upper bound (see max_exclusive)
  bool max_exclusive = false;    ///< e.g. disk_fault_prob in [0, 1)
  /// True when max_value is just the storage type's width (not a
  /// semantic bound); RangeText omits it, CheckValue still enforces it
  /// (a double that overflows the field must error, not wrap).
  bool max_is_type_limit = false;
  double default_value = 0.0;    ///< value in a default-constructed struct
  /// For kEnum: one entry per enumerator, each a non-empty list of
  /// accepted spellings whose first element is the canonical name.
  /// Matched case-insensitively; the ordinal doubles as a numeric
  /// spelling for back-compat.
  std::vector<std::vector<std::string>> enum_values;

  std::function<double(const ConstParamTarget&)> getter;
  std::function<void(const ParamTarget&, double)> setter;
  /// kString only: text accessors (the numeric pair above stays null).
  std::function<std::string(const ConstParamTarget&)> text_getter;
  std::function<void(const ParamTarget&, const std::string&)> text_setter;
  /// kString only: value in a default-constructed struct.
  std::string default_text;

  bool integral() const {
    return type != ParamType::kReal && type != ParamType::kString;
  }
  /// Canonical spelling of enumerator `ordinal`.
  const std::string& EnumName(size_t ordinal) const;
  /// "512 <= value", "[0, 1]", "0..2", ... for tables and errors.
  std::string RangeText() const;
  /// Throws voodb::util::Error naming this parameter when `value` is
  /// fractional-for-integral or out of range.
  void CheckValue(double value) const;
};

/// The global descriptor table.  Immutable after construction.
class ParamRegistry {
 public:
  static const ParamRegistry& Instance();

  const std::vector<ParamDescriptor>& descriptors() const {
    return descriptors_;
  }
  /// All parameter names, in declaration (struct) order.
  std::vector<std::string> Names() const;

  const ParamDescriptor* Find(const std::string& name) const;
  /// Throws voodb::util::Error with a nearest-name suggestion.
  const ParamDescriptor& At(const std::string& name) const;

  double Get(const ConstParamTarget& target, const std::string& name) const;
  /// Range-checks then writes; errors name the parameter.  Rejects
  /// string parameters (they have no numeric value — this is also what
  /// keeps them out of sweep grids).
  void Set(const ParamTarget& target, const std::string& name,
           double value) const;
  /// String-aware Set: `value` may be an enum/bool spelling, a number,
  /// or — for string parameters — the text itself.
  void Set(const ParamTarget& target, const std::string& name,
           const std::string& value) const;

  /// Current value rendered as text: FormatValue for numeric
  /// parameters, the raw text for string ones.
  std::string GetText(const ConstParamTarget& target,
                      const std::string& name) const;
  /// Default value rendered as text.
  std::string DefaultText(const ParamDescriptor& d) const;
  /// True when `d`'s value in `target` equals its default.
  bool IsDefault(const ConstParamTarget& target,
                 const ParamDescriptor& d) const;

  /// Parses `text` as a value for `name` (enum names, true/false/on/off,
  /// plain numbers); throws listing the valid choices.
  double ParseValue(const std::string& name, const std::string& text) const;
  /// Renders `value` for `name`: canonical enum name, true/false,
  /// integer or shortest real.
  std::string FormatValue(const std::string& name, double value) const;

  /// Per-field range validation of a VoodbConfig (kSystem + kDisk
  /// domains); error messages name the offending parameter.
  /// Cross-field constraints stay in VoodbConfig::Validate.
  void ValidateSystem(const VoodbConfig& config) const;
  /// Per-field range validation of an OcbParameters (kWorkload domain).
  void ValidateWorkload(const ocb::OcbParameters& workload) const;

 private:
  ParamRegistry();

  std::vector<ParamDescriptor> descriptors_;
  std::map<std::string, size_t> index_;
};

}  // namespace voodb::core
