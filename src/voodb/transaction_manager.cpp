#include "voodb/transaction_manager.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "trace/recorder.hpp"
#include "util/check.hpp"

namespace voodb::core {

namespace {
/// Size of a request message on the wire (bytes).
constexpr uint64_t kRequestBytes = 128;
}  // namespace

TransactionManagerActor::TransactionManagerActor(
    desp::Scheduler* scheduler, const VoodbConfig& config,
    ObjectManagerActor* object_manager, BufferingManagerActor* buffering,
    ClusteringManagerActor* clustering, NetworkActor* network)
    : Actor(scheduler, "transaction-manager"),
      config_(config),
      object_manager_(object_manager),
      buffering_(buffering),
      clustering_(clustering),
      network_(network),
      db_scheduler_(scheduler, "db-scheduler", config.multiprogramming_level),
      cpu_(scheduler, "cpu", /*capacity=*/1),
      backoff_rng_(0xBAC0FF) {
  VOODB_CHECK_MSG(object_manager_ && buffering_ && clustering_ && network_,
                  "transaction manager needs its peers");
  if (config_.use_lock_manager) {
    protocol_ = cc::MakeProtocol(config_.cc_protocol, scheduler);
  }
}

TransactionManagerActor::Handle TransactionManagerActor::AllocInFlight() {
  uint32_t index;
  if (!free_slots_.empty()) {
    index = free_slots_.back();
    free_slots_.pop_back();
  } else {
    index = static_cast<uint32_t>(pool_.size());
    pool_.emplace_back();
  }
  Slot& slot = pool_[index];
  slot.live = true;
  ++pool_live_;
  return Handle{index, slot.generation};
}

TransactionManagerActor::InFlight& TransactionManagerActor::At(Handle h) {
  VOODB_CHECK_MSG(h.index < pool_.size(), "bad in-flight handle");
  Slot& slot = pool_[h.index];
  VOODB_CHECK_MSG(slot.live && slot.generation == h.generation,
                  "stale in-flight handle (slot recycled)");
  return slot.state;
}

void TransactionManagerActor::FreeInFlight(Handle h) {
  Slot& slot = pool_[h.index];
  VOODB_CHECK_MSG(slot.live && slot.generation == h.generation,
                  "double free of in-flight handle");
  // Recycle keeping heap capacity (txn access vector, done target).
  slot.state.txn.accesses.clear();
  slot.state.next_access = 0;
  slot.state.response_bytes = 0;
  slot.state.attempts = 0;
  slot.state.done = nullptr;
  slot.live = false;
  ++slot.generation;  // invalidate any still-outstanding handle
  --pool_live_;
  free_slots_.push_back(h.index);
}

void TransactionManagerActor::Submit(ocb::Transaction txn,
                                     std::function<void()> done) {
  VOODB_CHECK_MSG(static_cast<bool>(done), "Submit needs a continuation");
  const Handle h = AllocInFlight();
  InFlight& state = At(h);
  state.txn = std::move(txn);
  state.done = std::move(done);
  const double submitted_at = Now();
  db_scheduler_.AcquireAction([this, h, submitted_at]() {
    InFlight& s = At(h);
    s.admitted_at = submitted_at;  // response time includes queueing
    if (protocol_ != nullptr) {
      s.txn_id = next_txn_id_++;
      s.age_stamp = next_age_stamp_++;
      s.attempts = 1;
      protocol_->Begin(s.txn_id, s.age_stamp);
    }
    clustering_->OnTransactionStart();
    if (config_.system_class == SystemClass::kDbServer) {
      // The whole query ships to the server up front.
      network_->Transfer(kRequestBytes, [this, h]() { ProcessNext(h); });
    } else {
      ProcessNext(h);
    }
  });
}

void TransactionManagerActor::ProcessNext(Handle h) {
  InFlight& state = At(h);
  if (state.next_access >= state.txn.accesses.size()) {
    Commit(h);
    return;
  }
  // GETLOCK: lock acquisition for this object operation, on the CPU.
  double cpu_cost = config_.get_lock_ms + config_.object_cpu_ms;
  if (clustering_->enabled()) cpu_cost += config_.clustering_stat_cpu_ms;
  if (cpu_cost > 0.0) {
    cpu_.AcquireFor(cpu_cost, [this, h]() { AccessObject(h); });
  } else {
    AccessObject(h);
  }
}

void TransactionManagerActor::AccessObject(Handle h) {
  InFlight& state = At(h);
  const ocb::ObjectAccess access = state.txn.accesses[state.next_access];
  ++state.next_access;
  if (protocol_ != nullptr) {
    protocol_->Access(
        state.txn_id, access.oid, access.is_write,
        [this, h, access]() { PerformAccess(h, access); },
        [this, h]() { Restart(h); });
    return;
  }
  PerformAccess(h, access);
}

void TransactionManagerActor::Restart(Handle h) {
  // Concurrency-control abort (wait-die "die", no-wait conflict,
  // deadlock, write conflict, or failed validation): release everything,
  // back off, retry from the start with a fresh protocol identity but
  // the original age stamp (so under wait-die the transaction eventually
  // becomes the oldest and cannot starve).
  InFlight& state = At(h);
  ++restarts_;
  protocol_->Abort(state.txn_id);
  if (recorder_ != nullptr) recorder_->OnTxnAbort();
  state.next_access = 0;
  state.response_bytes = 0;
  const double backoff = config_.restart_backoff_ms > 0.0
                             ? backoff_rng_.Exponential(
                                   config_.restart_backoff_ms)
                             : 0.0;
  CallIn(backoff, &TransactionManagerActor::Reattempt, h);
}

void TransactionManagerActor::Reattempt(Handle h) {
  InFlight& state = At(h);
  state.txn_id = next_txn_id_++;
  ++state.attempts;
  protocol_->Begin(state.txn_id, state.age_stamp);
  ProcessNext(h);
}

void TransactionManagerActor::PerformAccess(Handle h,
                                            ocb::ObjectAccess access) {
  ++object_operations_;
  clustering_->OnObjectAccess(access.oid, access.is_write);
  const storage::PageSpan span = object_manager_->SpanOf(access.oid);
  const uint64_t object_bytes = object_manager_->base().SizeOf(access.oid);
  buffering_->AccessObject(
      access.oid, access.is_write, [this, h, span, object_bytes]() {
        // Client-Server shipping once the data is server-resident.
        switch (config_.system_class) {
          case SystemClass::kCentralized:
            ProcessNext(h);
            break;
          case SystemClass::kPageServer:
            ShipAndContinue(h,
                            kRequestBytes + static_cast<uint64_t>(span.count) *
                                                config_.page_size);
            break;
          case SystemClass::kObjectServer:
            ShipAndContinue(h, kRequestBytes + object_bytes);
            break;
          case SystemClass::kDbServer:
            // Results accumulate and ship at commit.
            At(h).response_bytes += object_bytes;
            ProcessNext(h);
            break;
        }
      });
}

void TransactionManagerActor::ShipAndContinue(Handle h, uint64_t bytes) {
  network_->Transfer(bytes, [this, h]() { ProcessNext(h); });
}

void TransactionManagerActor::Commit(Handle h) {
  InFlight& state = At(h);
  // Commit-time validation (OCC backward validation, MVCC first
  // committer): a failed attempt restarts like any other abort.
  if (protocol_ != nullptr && !protocol_->ValidateCommit(state.txn_id)) {
    Restart(h);
    return;
  }
  // RELLOCK: every lock acquired by the transaction is released.
  const double release_cost =
      config_.release_lock_ms *
      static_cast<double>(state.txn.accesses.size());
  auto finish = [this, h]() {
    auto complete = [this, h]() {
      auto retire = [this, h]() {
        InFlight& s = At(h);
        if (protocol_ != nullptr) {
          protocol_->Commit(s.txn_id);  // strict 2PL release / install
          retry_histogram_.Add(static_cast<double>(s.attempts - 1));
        }
        clustering_->OnTransactionEnd();
        db_scheduler_.Release();
        ++committed_;
        const double response = Now() - s.admitted_at;
        response_times_.Add(response);
        response_histogram_.Add(response);
        auto done = std::move(s.done);
        FreeInFlight(h);
        done();
      };
      if (config_.flush_on_commit) {
        buffering_->Flush(std::move(retire));
      } else {
        retire();
      }
    };
    if (config_.system_class == SystemClass::kDbServer &&
        At(h).response_bytes > 0) {
      network_->Transfer(At(h).response_bytes, std::move(complete));
    } else {
      complete();
    }
  };
  if (release_cost > 0.0) {
    cpu_.AcquireFor(release_cost, std::move(finish));
  } else {
    finish();
  }
}


void TransactionManagerActor::RegisterMetrics(
    obs::MetricRegistry& registry) const {
  registry.RegisterCounter("txn.committed", &committed_);
  registry.RegisterCounter("txn.object_operations", &object_operations_);
  registry.RegisterCounter("txn.restarts", &restarts_);
  registry.RegisterHistogram("txn.response_ms", &response_histogram_);
  registry.RegisterGauge("txn.scheduler_utilization",
                         [this] { return SchedulerUtilization(); });
  if (protocol_ != nullptr) {
    protocol_->RegisterMetrics(registry);
    registry.RegisterHistogram("cc.retries", &retry_histogram_);
  }
}

}  // namespace voodb::core
