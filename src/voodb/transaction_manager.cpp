#include "voodb/transaction_manager.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "obs/spans.hpp"
#include "trace/recorder.hpp"
#include "util/check.hpp"

namespace voodb::core {

namespace {
/// Size of a request message on the wire (bytes).
constexpr uint64_t kRequestBytes = 128;
}  // namespace

TransactionManagerActor::TransactionManagerActor(
    desp::Scheduler* scheduler, const VoodbConfig& config,
    ObjectManagerActor* object_manager, BufferingManagerActor* buffering,
    ClusteringManagerActor* clustering, NetworkActor* network)
    : Actor(scheduler, "transaction-manager"),
      config_(config),
      object_manager_(object_manager),
      buffering_(buffering),
      clustering_(clustering),
      network_(network),
      db_scheduler_(scheduler, "db-scheduler", config.multiprogramming_level),
      cpu_(scheduler, "cpu", /*capacity=*/1),
      backoff_rng_(0xBAC0FF) {
  VOODB_CHECK_MSG(object_manager_ && buffering_ && clustering_ && network_,
                  "transaction manager needs its peers");
  if (config_.use_lock_manager) {
    protocol_ = cc::MakeProtocol(config_.cc_protocol, scheduler);
  }
}

TransactionManagerActor::Handle TransactionManagerActor::AllocInFlight() {
  uint32_t index;
  if (!free_slots_.empty()) {
    index = free_slots_.back();
    free_slots_.pop_back();
  } else {
    index = static_cast<uint32_t>(pool_.size());
    pool_.emplace_back();
  }
  Slot& slot = pool_[index];
  slot.live = true;
  ++pool_live_;
  return Handle{index, slot.generation};
}

TransactionManagerActor::InFlight& TransactionManagerActor::At(Handle h) {
  VOODB_CHECK_MSG(h.index < pool_.size(), "bad in-flight handle");
  Slot& slot = pool_[h.index];
  VOODB_CHECK_MSG(slot.live && slot.generation == h.generation,
                  "stale in-flight handle (slot recycled)");
  return slot.state;
}

void TransactionManagerActor::FreeInFlight(Handle h) {
  Slot& slot = pool_[h.index];
  VOODB_CHECK_MSG(slot.live && slot.generation == h.generation,
                  "double free of in-flight handle");
  // Recycle keeping heap capacity (txn access vector, done target).
  slot.state.txn.accesses.clear();
  slot.state.next_access = 0;
  slot.state.response_bytes = 0;
  slot.state.attempts = 0;
  slot.state.trace = 0;
  slot.state.backoff_started = 0.0;
  slot.state.done = nullptr;
  slot.live = false;
  ++slot.generation;  // invalidate any still-outstanding handle
  --pool_live_;
  free_slots_.push_back(h.index);
}

void TransactionManagerActor::Submit(ocb::Transaction txn,
                                     std::function<void()> done) {
  VOODB_CHECK_MSG(static_cast<bool>(done), "Submit needs a continuation");
  const Handle h = AllocInFlight();
  InFlight& state = At(h);
  state.txn = std::move(txn);
  state.done = std::move(done);
  const double submitted_at = Now();
  // Claim any cross-shard parent now: admission may queue behind other
  // submissions, and the stitch belongs to THIS transaction.
  const uint64_t trace_parent =
      tracer_ != nullptr ? tracer_->TakePendingParent() : 0;
  db_scheduler_.AcquireAction([this, h, submitted_at, trace_parent]() {
    InFlight& s = At(h);
    s.admitted_at = submitted_at;  // response time includes queueing
    s.txn_id = next_txn_id_++;
    s.attempts = 1;
    if (protocol_ != nullptr) {
      s.age_stamp = next_age_stamp_++;
      protocol_->Begin(s.txn_id, s.age_stamp);
    }
    if (tracer_ != nullptr) {
      if (trace_parent != 0) tracer_->SetPendingParent(trace_parent);
      s.trace = tracer_->BeginTrace(s.txn_id, submitted_at);
      if (s.trace != 0) {
        if (Now() > submitted_at) {
          tracer_->Leaf(s.trace, obs::SpanKind::kAdmission, 0, submitted_at,
                        Now());
        }
        tracer_->Open(s.trace, obs::SpanKind::kAttempt, s.attempts, Now());
      }
    }
    // Events scheduled below inherit the trace context (network request,
    // CPU grants, ...), attributing their work to this transaction.
    desp::TraceScope trace_scope(&scheduler(), s.trace);
    clustering_->OnTransactionStart();
    if (config_.system_class == SystemClass::kDbServer) {
      // The whole query ships to the server up front.
      network_->Transfer(kRequestBytes, [this, h]() { ProcessNext(h); });
    } else {
      ProcessNext(h);
    }
  });
}

void TransactionManagerActor::ProcessNext(Handle h) {
  InFlight& state = At(h);
  desp::TraceScope trace_scope(&scheduler(), state.trace);
  if (state.next_access >= state.txn.accesses.size()) {
    Commit(h);
    return;
  }
  // GETLOCK: lock acquisition for this object operation, on the CPU.
  double cpu_cost = config_.get_lock_ms + config_.object_cpu_ms;
  if (clustering_->enabled()) cpu_cost += config_.clustering_stat_cpu_ms;
  if (cpu_cost > 0.0) {
    const double cpu_start = Now();
    cpu_.AcquireFor(cpu_cost,
                    [this, h, cpu_start]() { OnCpuReady(h, cpu_start); });
  } else {
    AccessObject(h);
  }
}

void TransactionManagerActor::OnCpuReady(Handle h, double cpu_start) {
  InFlight& state = At(h);
  desp::TraceScope trace_scope(&scheduler(), state.trace);
  if (tracer_ != nullptr && state.trace != 0 && Now() > cpu_start) {
    tracer_->Leaf(state.trace, obs::SpanKind::kCpu, 0, cpu_start, Now());
  }
  AccessObject(h);
}

void TransactionManagerActor::AccessObject(Handle h) {
  InFlight& state = At(h);
  desp::TraceScope trace_scope(&scheduler(), state.trace);
  const ocb::ObjectAccess access = state.txn.accesses[state.next_access];
  ++state.next_access;
  if (protocol_ != nullptr) {
    const double wait_start = Now();
    protocol_->Access(
        state.txn_id, access.oid, access.is_write,
        [this, h, access, wait_start]() {
          OnAccessGranted(h, access, wait_start);
        },
        [this, h]() { Restart(h); });
    return;
  }
  PerformAccess(h, access);
}

void TransactionManagerActor::OnAccessGranted(Handle h,
                                              ocb::ObjectAccess access,
                                              double wait_start) {
  InFlight& state = At(h);
  desp::TraceScope trace_scope(&scheduler(), state.trace);
  // Zero-width waits (the uncontended grant) carry no time and would only
  // clutter the exemplar trees — skip them.
  if (tracer_ != nullptr && state.trace != 0 && Now() > wait_start) {
    tracer_->Leaf(state.trace, obs::SpanKind::kCcWait, access.oid, wait_start,
                  Now());
  }
  PerformAccess(h, access);
}

void TransactionManagerActor::Restart(Handle h) {
  // Concurrency-control abort (wait-die "die", no-wait conflict,
  // deadlock, write conflict, or failed validation): release everything,
  // back off, retry from the start with a fresh protocol identity but
  // the original age stamp (so under wait-die the transaction eventually
  // becomes the oldest and cannot starve).
  InFlight& state = At(h);
  desp::TraceScope trace_scope(&scheduler(), state.trace);
  ++restarts_;
  protocol_->Abort(state.txn_id);
  if (recorder_ != nullptr) recorder_->OnTxnAbort();
  if (tracer_ != nullptr && state.trace != 0) {
    // The abort cause was annotated at decision time (protocol); only the
    // attempt span is open here (cc waits and buffer accesses are closed
    // before control can reach an abort).
    tracer_->Close(state.trace, Now());
    state.backoff_started = Now();
  }
  state.next_access = 0;
  state.response_bytes = 0;
  const double backoff = config_.restart_backoff_ms > 0.0
                             ? backoff_rng_.Exponential(
                                   config_.restart_backoff_ms)
                             : 0.0;
  CallIn(backoff, &TransactionManagerActor::Reattempt, h);
}

void TransactionManagerActor::Reattempt(Handle h) {
  InFlight& state = At(h);
  desp::TraceScope trace_scope(&scheduler(), state.trace);
  state.txn_id = next_txn_id_++;
  ++state.attempts;
  if (tracer_ != nullptr && state.trace != 0) {
    tracer_->Leaf(state.trace, obs::SpanKind::kBackoff, state.attempts - 1,
                  state.backoff_started, Now());
    tracer_->Open(state.trace, obs::SpanKind::kAttempt, state.attempts, Now());
  }
  protocol_->Begin(state.txn_id, state.age_stamp);
  ProcessNext(h);
}

void TransactionManagerActor::PerformAccess(Handle h,
                                            ocb::ObjectAccess access) {
  InFlight& state = At(h);
  desp::TraceScope trace_scope(&scheduler(), state.trace);
  ++object_operations_;
  clustering_->OnObjectAccess(access.oid, access.is_write);
  const storage::PageSpan span = object_manager_->SpanOf(access.oid);
  const uint64_t object_bytes = object_manager_->base().SizeOf(access.oid);
  // No span wraps the buffer access: a hit is free in simulated time, and
  // a miss's cost IS the disk IO — which the IO actor records against the
  // ambient trace context as a kIo leaf (queueing + service, page label)
  // under the open attempt.  One leaf per miss instead of two bracketing
  // calls per access keeps full-rate tracing cheap.
  buffering_->AccessObject(
      access.oid, access.is_write, [this, h, span, object_bytes]() {
        InFlight& s = At(h);
        desp::TraceScope ts(&scheduler(), s.trace);
        // Client-Server shipping once the data is server-resident.
        switch (config_.system_class) {
          case SystemClass::kCentralized:
            ProcessNext(h);
            break;
          case SystemClass::kPageServer:
            ShipAndContinue(h,
                            kRequestBytes + static_cast<uint64_t>(span.count) *
                                                config_.page_size);
            break;
          case SystemClass::kObjectServer:
            ShipAndContinue(h, kRequestBytes + object_bytes);
            break;
          case SystemClass::kDbServer:
            // Results accumulate and ship at commit.
            At(h).response_bytes += object_bytes;
            ProcessNext(h);
            break;
        }
      });
}

void TransactionManagerActor::ShipAndContinue(Handle h, uint64_t bytes) {
  network_->Transfer(bytes, [this, h]() { ProcessNext(h); });
}

void TransactionManagerActor::Commit(Handle h) {
  InFlight& state = At(h);
  desp::TraceScope trace_scope(&scheduler(), state.trace);
  // Commit-time validation (OCC backward validation, MVCC first
  // committer): a failed attempt restarts like any other abort.
  if (protocol_ != nullptr && !protocol_->ValidateCommit(state.txn_id)) {
    Restart(h);
    return;
  }
  if (tracer_ != nullptr && state.trace != 0) {
    // Covers lock release CPU, the result shipment, and any commit flush
    // (their IO/network leaves nest inside).
    tracer_->Open(state.trace, obs::SpanKind::kCommit, 0, Now());
  }
  // RELLOCK: every lock acquired by the transaction is released.
  const double release_cost =
      config_.release_lock_ms *
      static_cast<double>(state.txn.accesses.size());
  auto finish = [this, h]() {
    auto complete = [this, h]() {
      auto retire = [this, h]() {
        InFlight& s = At(h);
        {
          desp::TraceScope ts(&scheduler(), s.trace);
          if (protocol_ != nullptr) {
            protocol_->Commit(s.txn_id);  // strict 2PL release / install
            retry_histogram_.Add(static_cast<double>(s.attempts - 1));
          }
          clustering_->OnTransactionEnd();
          db_scheduler_.Release();
          ++committed_;
          const double response = Now() - s.admitted_at;
          response_times_.Add(response);
          response_histogram_.Add(response);
          if (tracer_ != nullptr) {
            if (s.trace != 0) {
              tracer_->Close(s.trace, Now());  // kCommit
              tracer_->Close(s.trace, Now());  // the committed kAttempt
            }
            // With trace == 0 this clears the cross-shard stitch anchor.
            tracer_->FinishCommitted(s.trace, response, Now());
          }
        }
        // The continuation is the driver's, not this transaction's: run
        // it (and schedule its events) outside the trace context.
        desp::TraceScope clear(&scheduler(), 0);
        auto done = std::move(s.done);
        FreeInFlight(h);
        done();
      };
      if (config_.flush_on_commit) {
        buffering_->Flush(std::move(retire));
      } else {
        retire();
      }
    };
    if (config_.system_class == SystemClass::kDbServer &&
        At(h).response_bytes > 0) {
      network_->Transfer(At(h).response_bytes, std::move(complete));
    } else {
      complete();
    }
  };
  if (release_cost > 0.0) {
    cpu_.AcquireFor(release_cost, std::move(finish));
  } else {
    finish();
  }
}

void TransactionManagerActor::SetTracer(obs::SpanTracer* tracer) {
  tracer_ = tracer;
  if (protocol_ != nullptr) protocol_->SetTracer(tracer);
}

void TransactionManagerActor::SetNextTraceParent(uint64_t parent_global_id) {
  if (tracer_ != nullptr) tracer_->SetPendingParent(parent_global_id);
}


void TransactionManagerActor::RegisterMetrics(
    obs::MetricRegistry& registry) const {
  registry.RegisterCounter("txn.committed", &committed_);
  registry.RegisterCounter("txn.object_operations", &object_operations_);
  registry.RegisterCounter("txn.restarts", &restarts_);
  registry.RegisterHistogram("txn.response_ms", &response_histogram_);
  registry.RegisterGauge("txn.scheduler_utilization",
                         [this] { return SchedulerUtilization(); });
  if (protocol_ != nullptr) {
    protocol_->RegisterMetrics(registry);
    registry.RegisterHistogram("cc.retries", &retry_histogram_);
  }
}

}  // namespace voodb::core
