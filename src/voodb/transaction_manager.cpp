#include "voodb/transaction_manager.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace voodb::core {

namespace {
/// Size of a request message on the wire (bytes).
constexpr uint64_t kRequestBytes = 128;
}  // namespace

TransactionManagerActor::TransactionManagerActor(
    desp::Scheduler* scheduler, const VoodbConfig& config,
    ObjectManagerActor* object_manager, BufferingManagerActor* buffering,
    ClusteringManagerActor* clustering, NetworkActor* network)
    : Actor(scheduler, "transaction-manager"),
      config_(config),
      object_manager_(object_manager),
      buffering_(buffering),
      clustering_(clustering),
      network_(network),
      db_scheduler_(scheduler, "db-scheduler", config.multiprogramming_level),
      cpu_(scheduler, "cpu", /*capacity=*/1),
      backoff_rng_(0xBAC0FF) {
  VOODB_CHECK_MSG(object_manager_ && buffering_ && clustering_ && network_,
                  "transaction manager needs its peers");
  if (config_.use_lock_manager) {
    lock_manager_ = std::make_unique<LockManager>(scheduler);
  }
}

void TransactionManagerActor::Submit(ocb::Transaction txn,
                                     std::function<void()> done) {
  VOODB_CHECK_MSG(static_cast<bool>(done), "Submit needs a continuation");
  auto state = std::make_shared<InFlight>();
  state->txn = std::move(txn);
  state->done = std::move(done);
  const double submitted_at = Now();
  db_scheduler_.AcquireAction([this, state, submitted_at]() {
    state->admitted_at = submitted_at;  // response time includes queueing
    if (lock_manager_ != nullptr) {
      state->txn_id = next_txn_id_++;
      state->age_stamp = next_age_stamp_++;
      lock_manager_->BeginTransaction(state->txn_id,
                                      static_cast<double>(state->age_stamp));
    }
    clustering_->OnTransactionStart();
    if (config_.system_class == SystemClass::kDbServer) {
      // The whole query ships to the server up front.
      network_->Transfer(kRequestBytes,
                         [this, state]() { ProcessNext(state); });
    } else {
      ProcessNext(state);
    }
  });
}

void TransactionManagerActor::ProcessNext(std::shared_ptr<InFlight> state) {
  if (state->next_access >= state->txn.accesses.size()) {
    Commit(std::move(state));
    return;
  }
  // GETLOCK: lock acquisition for this object operation, on the CPU.
  double cpu_cost = config_.get_lock_ms + config_.object_cpu_ms;
  if (clustering_->enabled()) cpu_cost += config_.clustering_stat_cpu_ms;
  if (cpu_cost > 0.0) {
    cpu_.AcquireFor(cpu_cost,
                    [this, state = std::move(state)]() mutable {
                      AccessObject(std::move(state));
                    });
  } else {
    AccessObject(std::move(state));
  }
}

void TransactionManagerActor::AccessObject(std::shared_ptr<InFlight> state) {
  const ocb::ObjectAccess access = state->txn.accesses[state->next_access];
  ++state->next_access;
  if (lock_manager_ != nullptr) {
    const LockMode mode =
        access.is_write ? LockMode::kExclusive : LockMode::kShared;
    lock_manager_->Acquire(
        state->txn_id, access.oid, mode,
        [this, state, access]() mutable {
          PerformAccess(std::move(state), access);
        },
        [this, state]() mutable { Restart(std::move(state)); });
    return;
  }
  PerformAccess(std::move(state), access);
}

void TransactionManagerActor::Restart(std::shared_ptr<InFlight> state) {
  // Wait-die abort: release everything, back off, retry from the start
  // with a fresh lock identity but the original age stamp (so the
  // transaction eventually becomes the oldest and cannot starve).
  ++restarts_;
  lock_manager_->ReleaseAll(state->txn_id);
  state->next_access = 0;
  state->response_bytes = 0;
  const double backoff = config_.restart_backoff_ms > 0.0
                             ? backoff_rng_.Exponential(
                                   config_.restart_backoff_ms)
                             : 0.0;
  CallIn(backoff, &TransactionManagerActor::Reattempt, std::move(state));
}

void TransactionManagerActor::Reattempt(std::shared_ptr<InFlight> state) {
  state->txn_id = next_txn_id_++;
  lock_manager_->BeginTransaction(state->txn_id,
                                  static_cast<double>(state->age_stamp));
  ProcessNext(std::move(state));
}

void TransactionManagerActor::PerformAccess(std::shared_ptr<InFlight> state,
                                            ocb::ObjectAccess access) {
  ++object_operations_;
  clustering_->OnObjectAccess(access.oid, access.is_write);
  const storage::PageSpan span = object_manager_->SpanOf(access.oid);
  const uint64_t object_bytes = object_manager_->base().SizeOf(access.oid);
  buffering_->AccessObject(
      access.oid, access.is_write,
      [this, state = std::move(state), span, object_bytes]() mutable {
        // Client-Server shipping once the data is server-resident.
        switch (config_.system_class) {
          case SystemClass::kCentralized:
            ProcessNext(std::move(state));
            break;
          case SystemClass::kPageServer:
            ShipAndContinue(std::move(state),
                            kRequestBytes + static_cast<uint64_t>(span.count) *
                                                config_.page_size);
            break;
          case SystemClass::kObjectServer:
            ShipAndContinue(std::move(state), kRequestBytes + object_bytes);
            break;
          case SystemClass::kDbServer:
            // Results accumulate and ship at commit.
            state->response_bytes += object_bytes;
            ProcessNext(std::move(state));
            break;
        }
      });
}

void TransactionManagerActor::ShipAndContinue(std::shared_ptr<InFlight> state,
                                              uint64_t bytes) {
  network_->Transfer(bytes, [this, state = std::move(state)]() mutable {
    ProcessNext(std::move(state));
  });
}

void TransactionManagerActor::Commit(std::shared_ptr<InFlight> state) {
  // RELLOCK: every lock acquired by the transaction is released.
  const double release_cost =
      config_.release_lock_ms *
      static_cast<double>(state->txn.accesses.size());
  auto finish = [this, state]() mutable {
    auto complete = [this, state]() mutable {
      auto retire = [this, state]() mutable {
        if (lock_manager_ != nullptr) {
          lock_manager_->ReleaseAll(state->txn_id);  // strict 2PL
        }
        clustering_->OnTransactionEnd();
        db_scheduler_.Release();
        ++committed_;
        const double response = Now() - state->admitted_at;
        response_times_.Add(response);
        response_histogram_.Add(response);
        auto done = std::move(state->done);
        state.reset();
        done();
      };
      if (config_.flush_on_commit) {
        buffering_->Flush(std::move(retire));
      } else {
        retire();
      }
    };
    if (config_.system_class == SystemClass::kDbServer &&
        state->response_bytes > 0) {
      network_->Transfer(state->response_bytes, std::move(complete));
    } else {
      complete();
    }
  };
  if (release_cost > 0.0) {
    cpu_.AcquireFor(release_cost, std::move(finish));
  } else {
    finish();
  }
}


void TransactionManagerActor::RegisterMetrics(
    obs::MetricRegistry& registry) const {
  registry.RegisterCounter("txn.committed", &committed_);
  registry.RegisterCounter("txn.object_operations", &object_operations_);
  registry.RegisterCounter("txn.restarts", &restarts_);
  registry.RegisterHistogram("txn.response_ms", &response_histogram_);
  registry.RegisterGauge("txn.scheduler_utilization",
                         [this] { return SchedulerUtilization(); });
  if (lock_manager_ != nullptr) lock_manager_->RegisterMetrics(registry);
}

}  // namespace voodb::core
