#include "voodb/clustering_manager.hpp"

#include <string_view>
#include <utility>

#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace voodb::core {

ClusteringManagerActor::ClusteringManagerActor(
    desp::Scheduler* scheduler,
    std::unique_ptr<cluster::ClusteringPolicy> policy,
    ObjectManagerActor* object_manager, BufferingManagerActor* buffering,
    IoSubsystemActor* io)
    : Actor(scheduler, "clustering-manager"),
      policy_(std::move(policy)),
      object_manager_(object_manager),
      buffering_(buffering),
      io_(io) {
  if (policy_ == nullptr) {
    policy_ = std::make_unique<cluster::NoClustering>();
  }
}

bool ClusteringManagerActor::enabled() const {
  return std::string_view(policy_->name()) != "NONE";
}

void ClusteringManagerActor::OnTransactionStart() {
  policy_->OnTransactionStart();
}

void ClusteringManagerActor::OnObjectAccess(ocb::Oid oid, bool is_write) {
  policy_->OnObjectAccess(oid, is_write);
}

void ClusteringManagerActor::OnTransactionEnd() { policy_->OnTransactionEnd(); }

bool ClusteringManagerActor::ShouldTrigger() const {
  return policy_->ShouldTrigger();
}

void ClusteringManagerActor::PerformClustering(
    std::function<void(ClusteringMetrics)> done) {
  VOODB_CHECK_MSG(static_cast<bool>(done), "needs a continuation");
  const double started = Now();
  cluster::ClusteringOutcome outcome = policy_->Recluster(
      object_manager_->base(), object_manager_->placement());
  ClusteringMetrics metrics;
  metrics.reorganized = outcome.reorganized;
  metrics.num_clusters = outcome.NumClusters();
  metrics.mean_cluster_size = outcome.MeanClusterSize();
  if (!outcome.reorganized) {
    done(metrics);
    return;
  }

  const ObjectManagerActor::RelocationIo relocation =
      object_manager_->ApplyRelocation(outcome.moved_objects);
  std::vector<storage::PageIo> ios;
  ios.reserve(relocation.pages_to_read.size() +
              relocation.pages_to_write.size());
  for (storage::PageId page : relocation.pages_to_read) {
    // Source pages already buffered need no physical read; the hot pages
    // being clustered usually are (this is why the simulated overhead is
    // small even before the logical/physical OID asymmetry).
    if (buffering_->Contains(page)) continue;
    ios.push_back(storage::PageIo{storage::PageIo::Kind::kRead, page});
  }
  for (storage::PageId page : relocation.pages_to_write) {
    ios.push_back(storage::PageIo{storage::PageIo::Kind::kWrite, page});
  }
  // The buffer's view of relocated objects is stale; drop it so the next
  // phase starts from disk, exactly like a post-reorganization restart.
  buffering_->Drop();

  metrics.overhead_ios = ios.size();
  total_overhead_ios_ += ios.size();
  ++reorganizations_;
  io_->Execute(std::move(ios),
               [this, metrics, started, done = std::move(done)]() mutable {
                 metrics.duration_ms = Now() - started;
                 done(metrics);
               });
}


void ClusteringManagerActor::RegisterMetrics(
    obs::MetricRegistry& registry) const {
  registry.RegisterCounter("cluster.overhead_ios", &total_overhead_ios_);
  registry.RegisterCounter("cluster.reorganizations", &reorganizations_);
}

}  // namespace voodb::core
