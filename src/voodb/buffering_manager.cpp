#include "voodb/buffering_manager.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "trace/counters.hpp"
#include "util/check.hpp"

namespace voodb::core {

BufferingManagerActor::BufferingManagerActor(desp::Scheduler* scheduler,
                                             const VoodbConfig& config,
                                             ObjectManagerActor* object_manager,
                                             IoSubsystemActor* io,
                                             desp::RandomStream rng)
    : Actor(scheduler, "buffering-manager"),
      object_manager_(object_manager),
      io_(io) {
  VOODB_CHECK_MSG(object_manager_ != nullptr && io_ != nullptr,
                  "buffering manager needs its peers");
  if (config.use_virtual_memory) {
    storage::VmParameters vm_params;
    vm_params.memory_pages = config.buffer_pages;
    vm_params.dirty_on_load = config.vm_dirty_on_load;
    vm_params.reservations_enter_hot = config.vm_reservations_enter_hot;
    vm_reserve_references_ = config.vm_reserve_references;
    vm_ = std::make_unique<storage::VirtualMemoryModel>(vm_params);
  } else {
    buffer_ = std::make_unique<storage::BufferManager>(
        config.buffer_pages, config.page_replacement, rng, config.lru_k);
    if (config.prefetch == PrefetchPolicy::kSequential) {
      // max_page is refreshed lazily: the prefetcher is rebuilt after a
      // relocation grows the page space (see AccessPage).
      buffer_->SetPrefetcher(std::make_unique<storage::SequentialPrefetcher>(
          config.prefetch_depth, object_manager_->NumPages() - 1));
    }
  }
}

void BufferingManagerActor::AccessObject(ocb::Oid oid, bool write,
                                         std::function<void()> done) {
  AccessSpan(object_manager_->Resolve(oid, write), write, std::move(done));
}

void BufferingManagerActor::AccessSpan(storage::PageSpan span, bool write,
                                       std::function<void()> done) {
  VOODB_CHECK_MSG(span.count >= 1, "empty page span");
  AccessSpanStep(span, 0, write, std::move(done));
}

void BufferingManagerActor::AccessSpanStep(storage::PageSpan span,
                                           uint32_t index, bool write,
                                           std::function<void()> done) {
  if (index >= span.count) {
    done();
    return;
  }
  AccessPage(span.first + index, write,
             [this, span, index, write, done = std::move(done)]() mutable {
               AccessSpanStep(span, index + 1, write, std::move(done));
             });
}

void BufferingManagerActor::SetRecorder(trace::Recorder* recorder) {
  recorder_ = recorder;
  if (buffer_ != nullptr) buffer_->SetRecorder(recorder);
}

trace::TraceCounters BufferingManagerActor::TraceCountersNow() const {
  return vm_ != nullptr ? trace::CountersFrom(vm_->stats())
                        : trace::CountersFrom(buffer_->stats());
}

void BufferingManagerActor::AccessPage(storage::PageId page, bool write,
                                       std::function<void()> done) {
  ++requests_;
  // The database buffer records inside AccessInto; the VM model has no
  // recorder hook of its own, so the actor reports its page stream.
  if (vm_ != nullptr && recorder_ != nullptr) {
    recorder_->OnPage(page, write);
  }
  storage::AccessOutcome outcome = vm_ != nullptr
                                       ? vm_->Touch(page, write)
                                       : buffer_->Access(page, write);
  if (outcome.hit) {
    ++hits_;
    done();
    return;
  }
  if (vm_ != nullptr && vm_reserve_references_) {
    // Texas faulted the page in: swizzling its pointers reserves frames
    // for every page referenced from it; evictions caused by the
    // reservations produce swap writes the disk must absorb.
    for (storage::PageId ref : object_manager_->ReferencedPages(page)) {
      for (storage::PageIo& io : vm_->Reserve(ref)) {
        outcome.ios.push_back(io);
      }
    }
  }
  io_->Execute(std::move(outcome.ios), std::move(done));
}

void BufferingManagerActor::Flush(std::function<void()> done) {
  if (vm_ != nullptr) {
    done();
    return;
  }
  io_->Execute(buffer_->FlushAll(), std::move(done));
}

bool BufferingManagerActor::Contains(storage::PageId page) const {
  return vm_ != nullptr ? vm_->IsLoaded(page) : buffer_->Contains(page);
}

uint64_t BufferingManagerActor::DirtyPages() const {
  return vm_ != nullptr ? vm_->DirtyFrames() : buffer_->DirtyPages();
}

void BufferingManagerActor::Drop() {
  if (recorder_ != nullptr) dropped_while_recording_ = true;
  if (vm_ != nullptr) {
    vm_->DropAll();
  } else {
    buffer_->DropAll();
  }
}


void BufferingManagerActor::RegisterMetrics(
    obs::MetricRegistry& registry) const {
  registry.RegisterCounter("buffer.requests", &requests_);
  registry.RegisterCounter("buffer.hits", &hits_);
  registry.RegisterGauge("buffer.hit_rate", [this] { return HitRate(); });
  registry.RegisterGauge("buffer.dirty_pages", [this] {
    return static_cast<double>(DirtyPages());
  });
}

}  // namespace voodb::core
