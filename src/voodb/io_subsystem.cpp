#include "voodb/io_subsystem.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "obs/spans.hpp"
#include "util/check.hpp"

namespace voodb::core {

IoSubsystemActor::IoSubsystemActor(desp::Scheduler* scheduler,
                                   storage::DiskParameters disk_params)
    : Actor(scheduler, "io-subsystem"),
      disk_(scheduler, "disk", /*capacity=*/1),
      disk_model_(disk_params) {}

void IoSubsystemActor::Execute(std::vector<storage::PageIo> ios,
                               std::function<void()> done) {
  VOODB_CHECK_MSG(static_cast<bool>(done), "Execute needs a continuation");
  if (ios.empty()) {
    done();
    return;
  }
  auto shared = std::make_shared<std::vector<storage::PageIo>>(std::move(ios));
  ExecuteNext(std::move(shared), 0, std::move(done));
}

void IoSubsystemActor::ExecuteNext(
    std::shared_ptr<std::vector<storage::PageIo>> ios, size_t index,
    std::function<void()> done) {
  if (index >= ios->size()) {
    done();
    return;
  }
  const double requested_at = Now();
  disk_.AcquireAction([this, ios = std::move(ios), index,
                       done = std::move(done), requested_at]() mutable {
    // Service time is computed at grant time so the head position
    // reflects the actual execution order under contention.
    const double service = disk_model_.IoTime((*ios)[index]) + FaultPenalty();
    service_histogram_.Add(service);
    if (tracer_ != nullptr) {
      // The grant runs in the requester's trace context (the resource
      // restores it), so the leaf lands on the right transaction.
      tracer_->AmbientLeaf(obs::SpanKind::kIo, (*ios)[index].page,
                           requested_at, Now() + service);
    }
    CallIn(service, &IoSubsystemActor::FinishIo, std::move(ios), index,
           std::move(done));
  });
}

void IoSubsystemActor::FinishIo(
    std::shared_ptr<std::vector<storage::PageIo>> ios, size_t index,
    std::function<void()> done) {
  disk_.Release();
  ExecuteNext(std::move(ios), index + 1, std::move(done));
}

void IoSubsystemActor::Seize(double duration_ms, std::function<void()> done) {
  VOODB_CHECK_MSG(duration_ms >= 0.0, "seize duration must be >= 0");
  disk_.AcquireFor(duration_ms, std::move(done));
}

void IoSubsystemActor::SetFaultModel(double fault_prob,
                                     double retry_penalty_ms,
                                     uint32_t max_retries,
                                     desp::RandomStream rng) {
  VOODB_CHECK_MSG(fault_prob >= 0.0 && fault_prob < 1.0,
                  "fault probability must lie in [0, 1)");
  VOODB_CHECK_MSG(retry_penalty_ms >= 0.0, "retry penalty must be >= 0");
  faults_enabled_ = fault_prob > 0.0;
  fault_prob_ = fault_prob;
  retry_penalty_ms_ = retry_penalty_ms;
  max_retries_ = max_retries;
  fault_rng_ = rng;
}

double IoSubsystemActor::FaultPenalty() {
  if (!faults_enabled_) return 0.0;
  double penalty = 0.0;
  for (uint32_t attempt = 0; attempt < max_retries_; ++attempt) {
    if (!fault_rng_.Bernoulli(fault_prob_)) break;
    ++transient_faults_;
    penalty += retry_penalty_ms_;
  }
  return penalty;
}

void IoSubsystemActor::RegisterMetrics(obs::MetricRegistry& registry) const {
  registry.RegisterCounter("io.reads", disk_model_.reads_cell());
  registry.RegisterCounter("io.writes", disk_model_.writes_cell());
  registry.RegisterCounter("io.sequential_hits",
                           disk_model_.sequential_hits_cell());
  registry.RegisterCounter("io.transient_faults", &transient_faults_);
  registry.RegisterHistogram("io.service_ms", &service_histogram_);
  registry.RegisterGauge("io.disk_utilization",
                         [this] { return DiskUtilization(); });
}

}  // namespace voodb::core
