/// \file experiment.hpp
/// \brief Replicated VOODB experiments with confidence intervals.
///
/// Packages the paper's experimental protocol (§4.2.2): an experiment is
/// (system config, OCB workload, clustering module) run as n independent
/// replications; every metric is reported as a sample mean with a 95 %
/// Student-t confidence interval.  The object base is generated once from
/// the OCB seed (the paper benchmarks a fixed database with random
/// transactions); per-replication randomness drives the workload stream
/// and any stochastic system behaviour.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "cluster/policy.hpp"
#include "desp/replication.hpp"
#include "ocb/object_base.hpp"
#include "ocb/parameters.hpp"
#include "voodb/config.hpp"
#include "voodb/metrics.hpp"
#include "voodb/system.hpp"

namespace voodb::core {

/// Creates the CLUSTP module for one replication (nullptr factory or a
/// factory returning nullptr both mean "None").
using ClusteringFactory =
    std::function<std::unique_ptr<cluster::ClusteringPolicy>()>;

/// One experiment definition.
struct ExperimentConfig {
  VoodbConfig system;
  ocb::OcbParameters workload;
  ClusteringFactory make_policy;  ///< optional; must be thread-safe when
                                  ///< threads > 1 (called once per
                                  ///< replication, possibly concurrently)
  uint64_t replications = 10;     ///< the paper uses 100
  uint64_t base_seed = 42;
  /// Worker threads for the replication farm: 1 runs serially on the
  /// calling thread, 0 uses all hardware threads.  Results are
  /// bit-identical at any setting (see exp/farm.hpp).
  size_t threads = 1;
};

/// Runs replicated experiments over a shared object base.
class Experiment {
 public:
  /// Metric names observed per replication:
  /// "total_ios", "reads", "writes", "hit_rate", "mean_response_ms",
  /// "throughput_tps", "sim_time_ms", "object_accesses".
  /// The run executes COLDN unmeasured then HOTN measured transactions.
  static desp::ReplicationResult Run(const ExperimentConfig& config);

  /// Like Run but reuses an already generated object base (sweeps that
  /// vary only system parameters share the base across points).
  static desp::ReplicationResult RunOnBase(const ExperimentConfig& config,
                                           const ocb::ObjectBase& base);

  /// Convenience: the mean of "total_ios" from Run (the paper's headline
  /// "mean number of I/Os" metric).
  static double MeanTotalIos(const ExperimentConfig& config);

  /// The per-replication model behind Run/RunOnBase: builds a VoodbSystem
  /// for the seed, runs COLDN + HOTN transactions, observes the metrics
  /// listed on Run.  `config` is captured by value; `base` must outlive
  /// the returned model.  Exposed so the exp layer (farm / sweep grids)
  /// can schedule experiment replications itself.
  static desp::ReplicationRunner::Model MakeModel(ExperimentConfig config,
                                                  const ocb::ObjectBase* base);
};

}  // namespace voodb::core
