/// \file sharded.hpp
/// \brief ShardedVoodb — N independent VOODB stacks on one parallel kernel.
///
/// The multi-shard harness the conservative parallel kernel
/// (`desp::ParallelScheduler`) was built to drive: `shards` complete
/// ObjectManager/BufferManager/TransactionManager stacks, each over its
/// own hash-partition of the OCB object base, each riding one scheduler
/// partition.  Shards are fully independent except for *multi-partition
/// transactions*: a configurable fraction of each user's transactions
/// runs a sub-transaction on a second shard, shipped through the home
/// shard's network actor and delivered across the partition boundary by
/// the kernel's mailbox protocol.
///
/// The cross-shard lookahead is physical: a remote request cannot arrive
/// before one network page transfer completes (or, under an infinite
/// network, before the disk could service a page), so the window the
/// kernel derives from these edge delays never reorders causally related
/// events — and the run is bit-identical at any `sim_threads`.
///
/// Determinism contract: `Run()` produces byte-identical `PhaseMetrics`
/// (and trace-hook digests) for any `sim_threads` value, including the
/// serial `sim_threads = 1` path.  `shard_scale` in the scenario catalog
/// enforces this every run.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "desp/parallel_scheduler.hpp"
#include "desp/random.hpp"
#include "ocb/object_base.hpp"
#include "ocb/workload.hpp"
#include "voodb/config.hpp"
#include "voodb/metrics.hpp"
#include "voodb/system.hpp"

namespace voodb::exp {
class ThreadPool;
}  // namespace voodb::exp

namespace voodb::core {

/// N hash-partitioned VOODB stacks under the conservative window protocol.
class ShardedVoodb {
 public:
  /// \param config  Table 3 parameters; `config.shards` stacks are built,
  ///                each holding every `oid % shards == shard` object of
  ///                `base` (the hash partition), with `buffer_pages`
  ///                split evenly across shards so the aggregate memory
  ///                budget matches a single-server run.
  /// \param base    the full OCB object base (not owned; must outlive us)
  /// \param seed    replication seed; each shard derives an independent
  ///                stream, so metrics depend on (config, base, seed)
  ///                only — never on thread scheduling.
  ShardedVoodb(VoodbConfig config, const ocb::ObjectBase* base,
               uint64_t seed);
  ~ShardedVoodb();

  /// Runs `n` transactions per shard (each shard's users draw from its
  /// own deterministic generator) and returns the merged phase metrics,
  /// reduced in shard order.  `config.multi_partition_pct` of the
  /// transactions additionally run a forced-kind sub-transaction on a
  /// deterministic remote shard and wait for its ack before the issuing
  /// user continues.  Executes on `pool` when given (sim_threads > 1),
  /// serially otherwise — bit-identical either way.
  PhaseMetrics Run(uint64_t n, exp::ThreadPool* pool = nullptr);

  /// Per-shard metrics of the last Run() (shard order).
  const std::vector<PhaseMetrics>& shard_metrics() const {
    return shard_metrics_;
  }

  /// FNV-1a digest over every shard's executed-event keys of the last
  /// Run(), folded in shard order — the bit-identity witness the
  /// `shard_scale` scenario compares across `sim_threads` values.
  uint64_t TraceDigest() const { return trace_digest_; }

  /// Multi-partition sub-transactions completed (all Run() calls).
  uint64_t remote_subtxns() const { return remote_subtxns_; }

  /// Every shard's metric registry snapshotted and merged, in shard
  /// order — deterministic at any `sim_threads`.
  obs::MetricSnapshot MergedMetrics() const;

  /// Every shard's tail exemplars merged in shard order, keeping the
  /// `trace_exemplars` slowest — deterministic at any `sim_threads`.
  /// Empty unless `trace_spans`.
  std::vector<obs::Exemplar> MergedExemplars() const;

  /// The profiler spanning every partition (nullptr unless `observe` or
  /// a `profile_path` is configured); its Table()/Stats() merge
  /// per-partition attribution by tag name.
  obs::SimProfiler* profiler() { return profiler_.get(); }

  desp::ParallelScheduler& kernel() { return *kernel_; }
  VoodbSystem& shard(size_t i) { return *shards_[i]; }
  size_t shards() const { return shards_.size(); }

 private:
  struct ShardDriver;

  /// The conservative lookahead of one cross-shard request: the network
  /// transfer of one page under finite NETTHRU, else one full-page disk
  /// service (search + latency + transfer) — both strictly positive.
  double CrossShardDelayMs() const;

  VoodbConfig config_;
  const ocb::ObjectBase* base_;
  desp::RandomStream rng_;
  std::unique_ptr<desp::ParallelScheduler> kernel_;
  std::vector<std::unique_ptr<VoodbSystem>> shards_;
  /// Per-shard sub-bases: shard i owns the `oid % shards == i` slice,
  /// re-indexed densely so each stack sees a contiguous object space.
  std::vector<ocb::ObjectBase> partitions_;
  /// Per-shard generators persist across Run() calls (phase state
  /// carries over, mirroring VoodbSystem).
  std::vector<std::unique_ptr<ocb::WorkloadGenerator>> generators_;
  std::vector<std::unique_ptr<ShardDriver>> drivers_;
  std::unique_ptr<obs::SimProfiler> profiler_;
  std::vector<PhaseMetrics> shard_metrics_;
  uint64_t trace_digest_ = 0;
  uint64_t remote_subtxns_ = 0;
};

}  // namespace voodb::core
