/// \file io_subsystem.hpp
/// \brief The I/O Subsystem active resource (knowledge model, Fig. 4/5).
///
/// Owns the disk (a capacity-1 passive resource: the "server disk
/// controller and secondary storage" of Table 1) and the disk service-time
/// model.  Other actors hand it batches of `PageIo` operations; it
/// executes them sequentially on the disk resource and fires a completion
/// continuation.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "desp/actor.hpp"
#include "desp/histogram.hpp"
#include "desp/random.hpp"
#include "desp/resource.hpp"
#include "desp/scheduler.hpp"
#include "storage/disk_model.hpp"
#include "storage/page.hpp"

namespace voodb::obs {
class MetricRegistry;
class SpanTracer;
}  // namespace voodb::obs

namespace voodb::core {

/// The I/O Subsystem actor.
class IoSubsystemActor : public desp::Actor {
 public:
  IoSubsystemActor(desp::Scheduler* scheduler,
                   storage::DiskParameters disk_params);

  /// Executes `ios` in order (each waits for the disk resource, holds it
  /// for the modelled service time, releases) and then calls `done`.
  /// Calls `done` immediately when `ios` is empty.
  void Execute(std::vector<storage::PageIo> ios, std::function<void()> done);

  /// Occupies the disk exclusively for `duration_ms` (recovery scans,
  /// log replay), then calls `done`.  Queued I/O waits behind it.
  void Seize(double duration_ms, std::function<void()> done);

  /// Enables the transient-fault model (paper §5 "benign failures"):
  /// each physical I/O independently fails with probability `fault_prob`
  /// and is retried (up to `max_retries` times, `retry_penalty_ms` each)
  /// before succeeding.
  void SetFaultModel(double fault_prob, double retry_penalty_ms,
                     uint32_t max_retries, desp::RandomStream rng);

  uint64_t total_ios() const { return disk_model_.total_ios(); }
  uint64_t reads() const { return disk_model_.reads(); }
  uint64_t writes() const { return disk_model_.writes(); }
  /// Transient faults injected so far.
  uint64_t transient_faults() const { return transient_faults_; }
  double DiskUtilization() const { return disk_.Utilization(); }
  const storage::DiskModel& disk_model() const { return disk_model_; }
  /// Full per-I/O service-time distribution (ms, fault penalties
  /// included) since construction.
  const desp::LogHistogram& service_histogram() const {
    return service_histogram_;
  }

  /// Registers the disk counters and service-time histogram with
  /// `registry`.
  void RegisterMetrics(obs::MetricRegistry& registry) const;

  /// Attaches/detaches (nullptr) the span tracer: each physical I/O emits
  /// a disk-IO leaf (queueing + service) against the ambient trace
  /// context, so the transaction that caused it gets the attribution
  /// without this actor knowing about transactions.
  void SetTracer(obs::SpanTracer* tracer) { tracer_ = tracer; }

 private:
  void ExecuteNext(std::shared_ptr<std::vector<storage::PageIo>> ios,
                   size_t index, std::function<void()> done);
  /// Completion of one physical I/O: release the disk, run the next.
  void FinishIo(std::shared_ptr<std::vector<storage::PageIo>> ios,
                size_t index, std::function<void()> done);
  double FaultPenalty();

  desp::Resource disk_;
  storage::DiskModel disk_model_;
  bool faults_enabled_ = false;
  double fault_prob_ = 0.0;
  double retry_penalty_ms_ = 0.0;
  uint32_t max_retries_ = 0;
  uint64_t transient_faults_ = 0;
  desp::RandomStream fault_rng_{0};
  desp::LogHistogram service_histogram_;
  obs::SpanTracer* tracer_ = nullptr;
};

}  // namespace voodb::core
