#include "voodb/lock_manager.hpp"

#include <algorithm>
#include <ostream>
#include <utility>

#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace voodb::core {

const char* ToString(LockMode m) {
  return m == LockMode::kShared ? "S" : "X";
}

LockManager::LockManager(desp::Scheduler* scheduler)
    : scheduler_(scheduler) {
  VOODB_CHECK_MSG(scheduler_ != nullptr, "lock manager needs a scheduler");
}

void LockManager::BeginTransaction(uint64_t txn, double timestamp) {
  auto [it, inserted] = transactions_.emplace(txn, TxnState{timestamp, {}});
  VOODB_CHECK_MSG(inserted, "transaction " << txn << " already active");
}

bool LockManager::Compatible(const LockEntry& entry, uint64_t txn,
                             LockMode mode) const {
  for (const Holder& h : entry.holders) {
    if (h.txn == txn) continue;  // own locks never conflict
    if (mode == LockMode::kExclusive || h.mode == LockMode::kExclusive) {
      return false;
    }
  }
  return true;
}

bool LockManager::MayWait(const LockEntry& entry, uint64_t txn,
                          LockMode mode, size_t ahead_count) const {
  const auto requester = transactions_.find(txn);
  VOODB_CHECK_MSG(requester != transactions_.end(),
                  "unknown transaction " << txn);
  const double ts = requester->second.timestamp;
  auto conflicting = [mode](LockMode other) {
    return mode == LockMode::kExclusive || other == LockMode::kExclusive;
  };
  for (const Holder& h : entry.holders) {
    if (h.txn == txn || !conflicting(h.mode)) continue;
    const auto holder = transactions_.find(h.txn);
    VOODB_CHECK_MSG(holder != transactions_.end(), "holder vanished");
    // Wait-die: the requester may wait only for *younger* holders.
    if (ts >= holder->second.timestamp) {
      return false;  // requester is younger (or tied): it dies
    }
  }
  size_t position = 0;
  for (const Waiter& w : entry.waiters) {
    if (position++ >= ahead_count) break;
    if (w.txn == txn || !conflicting(w.mode)) continue;
    const auto ahead = transactions_.find(w.txn);
    if (ahead == transactions_.end()) continue;  // stale entry
    if (ts >= ahead->second.timestamp) {
      return false;  // would queue behind an older conflicting waiter
    }
  }
  return true;
}

void LockManager::Grant(LockEntry& entry, uint64_t txn, LockMode mode) {
  for (Holder& h : entry.holders) {
    if (h.txn == txn) {
      // Upgrade in place when needed.
      if (mode == LockMode::kExclusive && h.mode == LockMode::kShared) {
        h.mode = LockMode::kExclusive;
        ++stats_.upgrades;
      }
      return;
    }
  }
  entry.holders.push_back(Holder{txn, mode});
}

void LockManager::Acquire(uint64_t txn, ocb::Oid oid, LockMode mode,
                          std::function<void()> granted,
                          std::function<void()> died) {
  VOODB_CHECK_MSG(static_cast<bool>(granted) && static_cast<bool>(died),
                  "Acquire needs both continuations");
  const auto txn_it = transactions_.find(txn);
  VOODB_CHECK_MSG(txn_it != transactions_.end(),
                  "transaction " << txn << " not begun");
  ++stats_.requests;
  LockEntry& entry = table_[oid];

  if (Holds(txn, oid, mode)) {
    ++stats_.immediate_grants;
    scheduler_->Schedule(0.0, std::move(granted));
    return;
  }
  // An upgrade request comes from a transaction already holding the lock
  // in S mode.  Upgrades must bypass the FIFO queue (they go to its
  // front) or the classic upgrade deadlock arises: an X-waiter blocked
  // by our S hold would sit ahead of us forever while we sit behind it.
  bool is_upgrade = false;
  for (const Holder& h : entry.holders) {
    if (h.txn == txn) {
      is_upgrade = true;
      break;
    }
  }
  // Fresh requests may not overtake parked waiters even when currently
  // compatible (S requests slipping past a queued X would both starve
  // the X and let an older holder sneak in behind a queued upgrade,
  // recreating the deadlock wait-die cannot see).
  const bool may_grant_now =
      Compatible(entry, txn, mode) && (is_upgrade || entry.waiters.empty());
  if (may_grant_now) {
    const bool strengthened = is_upgrade && mode == LockMode::kExclusive;
    Grant(entry, txn, mode);
    txn_it->second.held.push_back(oid);
    ++stats_.immediate_grants;
    stats_.wait_times.Add(0.0);
    stats_.wait_histogram.Add(0.0);
    scheduler_->Schedule(0.0, std::move(granted));
    if (strengthened) EnforceWaitDie(oid);  // S->X may newly conflict
    return;
  }
  // Fresh requests queue at the back, so every current waiter is ahead;
  // upgrades jump to the front, but must still be older than every
  // conflicting parked waiter (they overtake the whole queue).
  if (!MayWait(entry, txn, mode, entry.waiters.size())) {
    ++stats_.deadlock_aborts;
    if (die_hook_) die_hook_();  // ambient context is the requester's
    scheduler_->Schedule(0.0, std::move(died));
    return;
  }
  ++stats_.waits;
  Waiter waiter{txn, mode, scheduler_->Now(), std::move(granted),
                std::move(died), scheduler_->current_trace()};
  if (is_upgrade) {
    entry.waiters.push_front(std::move(waiter));
  } else {
    entry.waiters.push_back(std::move(waiter));
  }
}

void LockManager::ReleaseAll(uint64_t txn) {
  const auto txn_it = transactions_.find(txn);
  VOODB_CHECK_MSG(txn_it != transactions_.end(),
                  "transaction " << txn << " not active");
  std::vector<ocb::Oid> held = std::move(txn_it->second.held);
  transactions_.erase(txn_it);
  std::sort(held.begin(), held.end());
  held.erase(std::unique(held.begin(), held.end()), held.end());
  for (ocb::Oid oid : held) {
    const auto entry_it = table_.find(oid);
    if (entry_it == table_.end()) continue;
    auto& holders = entry_it->second.holders;
    holders.erase(std::remove_if(holders.begin(), holders.end(),
                                 [txn](const Holder& h) {
                                   return h.txn == txn;
                                 }),
                  holders.end());
    WakeWaiters(oid);
    if (entry_it->second.holders.empty() &&
        entry_it->second.waiters.empty()) {
      table_.erase(entry_it);
    }
  }
  // Remove any waiting requests this transaction still has queued (it may
  // release while a request of its is parked — e.g. external abort), and
  // re-evaluate those queues: a purged head may have been the only thing
  // parking compatible waiters behind it.
  std::vector<ocb::Oid> purged;
  for (auto& [other_oid, entry] : table_) {
    auto& waiters = entry.waiters;
    const size_t before = waiters.size();
    waiters.erase(std::remove_if(waiters.begin(), waiters.end(),
                                 [txn](const Waiter& w) {
                                   return w.txn == txn;
                                 }),
                  waiters.end());
    if (waiters.size() != before) purged.push_back(other_oid);
  }
  for (ocb::Oid oid : purged) WakeWaiters(oid);
}

void LockManager::WakeWaiters(ocb::Oid oid) {
  const auto entry_it = table_.find(oid);
  if (entry_it == table_.end()) return;
  LockEntry& entry = entry_it->second;
  // FIFO wake-up: grant the head while it is compatible (several shared
  // requests may be granted together).
  bool granted_any = false;
  while (!entry.waiters.empty()) {
    Waiter& head = entry.waiters.front();
    const auto txn_it = transactions_.find(head.txn);
    if (txn_it == transactions_.end()) {
      entry.waiters.pop_front();  // waiter's transaction is gone
      continue;
    }
    if (!Compatible(entry, head.txn, head.mode)) break;
    Grant(entry, head.txn, head.mode);
    txn_it->second.held.push_back(oid);
    stats_.wait_times.Add(scheduler_->Now() - head.enqueued_at);
    stats_.wait_histogram.Add(scheduler_->Now() - head.enqueued_at);
    {
      // Wake-ups fire from the releasing transaction's event; restore the
      // waiter's trace context so downstream work is attributed to it.
      desp::TraceScope trace(scheduler_, head.trace);
      scheduler_->Schedule(0.0, std::move(head.granted));
    }
    entry.waiters.pop_front();
    granted_any = true;
  }
  if (granted_any) EnforceWaitDie(oid);
}

void LockManager::EnforceWaitDie(ocb::Oid oid) {
  const auto entry_it = table_.find(oid);
  if (entry_it == table_.end()) return;
  LockEntry& entry = entry_it->second;
  auto& waiters = entry.waiters;
  size_t position = 0;
  for (auto it = waiters.begin(); it != waiters.end();) {
    const auto txn_it = transactions_.find(it->txn);
    if (txn_it == transactions_.end()) {
      it = waiters.erase(it);
      continue;
    }
    // Each waiter is re-checked against the holders and the waiters
    // still ahead of it.
    if (MayWait(entry, it->txn, it->mode, position)) {
      ++it;
      ++position;
      continue;
    }
    // An older conflicting holder/waiter appeared ahead: the waiter dies.
    ++stats_.deadlock_aborts;
    {
      desp::TraceScope trace(scheduler_, it->trace);
      if (die_hook_) die_hook_();
      scheduler_->Schedule(0.0, std::move(it->died));
    }
    it = waiters.erase(it);
  }
}

size_t LockManager::HeldLocks(uint64_t txn) const {
  const auto it = transactions_.find(txn);
  if (it == transactions_.end()) return 0;
  std::vector<ocb::Oid> held = it->second.held;
  std::sort(held.begin(), held.end());
  held.erase(std::unique(held.begin(), held.end()), held.end());
  return held.size();
}

void LockManager::DebugDump(std::ostream& os) const {
  os << "lock table: " << table_.size() << " entries, "
     << transactions_.size() << " active txns\n";
  for (const auto& [txn, state] : transactions_) {
    os << "  txn " << txn << " age=" << state.timestamp << " held="
       << state.held.size() << "\n";
  }
  for (const auto& [oid, entry] : table_) {
    if (entry.waiters.empty()) continue;
    os << "  oid " << oid << " holders:";
    for (const Holder& h : entry.holders) {
      os << " " << h.txn << ToString(h.mode);
    }
    os << " | waiters:";
    for (const Waiter& w : entry.waiters) {
      os << " " << w.txn << ToString(w.mode);
    }
    os << "\n";
  }
}

bool LockManager::Holds(uint64_t txn, ocb::Oid oid, LockMode mode) const {
  const auto entry_it = table_.find(oid);
  if (entry_it == table_.end()) return false;
  for (const Holder& h : entry_it->second.holders) {
    if (h.txn != txn) continue;
    return mode == LockMode::kShared || h.mode == LockMode::kExclusive;
  }
  return false;
}


void LockManager::RegisterMetrics(obs::MetricRegistry& registry) const {
  registry.RegisterCounter("lock.requests", &stats_.requests);
  registry.RegisterCounter("lock.immediate_grants", &stats_.immediate_grants);
  registry.RegisterCounter("lock.waits", &stats_.waits);
  registry.RegisterCounter("lock.deadlock_aborts", &stats_.deadlock_aborts);
  registry.RegisterCounter("lock.upgrades", &stats_.upgrades);
  registry.RegisterHistogram("lock.wait_ms", &stats_.wait_histogram);
}

}  // namespace voodb::core
