#include "voodb/network.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "obs/spans.hpp"
#include "util/check.hpp"

namespace voodb::core {

NetworkActor::NetworkActor(desp::Scheduler* scheduler, double throughput_mbps)
    : Actor(scheduler, "network"),
      link_(scheduler, "network-link", /*capacity=*/1),
      throughput_mbps_(throughput_mbps) {}

double NetworkActor::TransferTime(uint64_t bytes) const {
  if (infinite()) return 0.0;
  // MB/s -> bytes/ms: 1 MB/s = 1e6 B / 1e3 ms = 1000 B/ms.
  return static_cast<double>(bytes) / (throughput_mbps_ * 1000.0);
}

void NetworkActor::Transfer(uint64_t bytes, std::function<void()> done) {
  VOODB_CHECK_MSG(static_cast<bool>(done), "Transfer needs a continuation");
  bytes_transferred_ += bytes;
  if (infinite()) {
    done();
    return;
  }
  if (tracer_ != nullptr) {
    const double requested_at = Now();
    link_.AcquireFor(TransferTime(bytes),
                     [this, bytes, requested_at, done = std::move(done)]() {
                       // Runs in the requester's trace context (resource
                       // grants restore it; the service wait inherits).
                       tracer_->AmbientLeaf(obs::SpanKind::kNet, bytes,
                                            requested_at, Now());
                       done();
                     });
    return;
  }
  link_.AcquireFor(TransferTime(bytes), std::move(done));
}


void NetworkActor::RegisterMetrics(obs::MetricRegistry& registry) const {
  registry.RegisterCounter("net.bytes", &bytes_transferred_);
  registry.RegisterGauge("net.utilization",
                         [this] { return link_.Utilization(); });
}

}  // namespace voodb::core
