/// \file config.hpp
/// \brief The VOODB evaluation-model parameters (paper Table 3).
#pragma once

#include <cstdint>
#include <string>

#include "cc/kind.hpp"
#include "desp/event_queue.hpp"
#include "storage/disk_model.hpp"
#include "storage/placement.hpp"
#include "storage/replacement.hpp"

namespace voodb::core {

/// SYSCLASS: the architecture the generic model is instantiated as.
enum class SystemClass {
  kCentralized,   ///< single host (e.g. Texas)
  kObjectServer,  ///< objects shipped to clients (e.g. ORION, ONTOS)
  kPageServer,    ///< pages shipped to clients (e.g. ObjectStore, O2)
  kDbServer,      ///< queries shipped to the server (database server)
};

const char* ToString(SystemClass s);

/// PREFETCH: the prefetching policy ({None | Other}).
enum class PrefetchPolicy {
  kNone,
  kSequential,  ///< the "Other" slot: sequential read-ahead
};

const char* ToString(PrefetchPolicy p);

/// Where the transaction stream of a run comes from.
enum class WorkloadSourceKind {
  kSynthetic,  ///< the stochastic OCB generator (the paper's protocol)
  kTrace,      ///< deterministic replay of a recorded trace (trace_path)
  kYcsbZipf,   ///< YCSB-style zipfian point accesses (ocb::YcsbZipfWorkload)
};

const char* ToString(WorkloadSourceKind s);

/// All Table 3 parameters plus the system-level extras the validation
/// experiments need (storage overhead factor, Texas' VM behaviour).
struct VoodbConfig {
  // --- System --------------------------------------------------------------
  SystemClass system_class = SystemClass::kPageServer;  ///< SYSCLASS
  /// NETTHRU in MB/s; <= 0 means infinite throughput (no network delay).
  double network_throughput_mbps = 1.0;
  /// Event-list backend of the simulation kernel.  A pure performance
  /// knob: results are bit-identical under every backend (sweep it with
  /// bench_micro_scheduler or the "event_queue" grid axis).
  desp::EventQueueKind event_queue = desp::EventQueueKind::kBinaryHeap;
  /// Zero-delay fast lane of the simulation kernel (the "now bucket"):
  /// events scheduled at exactly the current simulated time bypass the
  /// event queue through per-priority FIFO rings.  Like event_queue, a
  /// pure performance knob — execution order is bit-identical either
  /// way (tests/test_scheduler_lane.cpp holds it to that).
  bool fast_lane = true;

  // --- Buffering Manager ---------------------------------------------------
  uint32_t page_size = 4096;       ///< PGSIZE
  uint64_t buffer_pages = 500;     ///< BUFFSIZE
  storage::ReplacementPolicy page_replacement =
      storage::ReplacementPolicy::kLru;  ///< PGREP (default LRU-1)
  uint32_t lru_k = 2;                    ///< K when PGREP is LRU-K
  PrefetchPolicy prefetch = PrefetchPolicy::kNone;  ///< PREFETCH
  uint32_t prefetch_depth = 2;

  // --- Clustering Manager --------------------------------------------------
  /// INITPL: initial object placement.
  storage::PlacementPolicy initial_placement =
      storage::PlacementPolicy::kOptimizedSequential;
  /// Whether the Clustering Manager evaluates its trigger automatically
  /// at transaction boundaries (knowledge model "Automatic triggering");
  /// external triggering via VoodbSystem::TriggerClustering is always
  /// available.
  bool auto_clustering = false;
  /// CPU time charged per object access for statistics collection when a
  /// clustering policy is installed (ms).
  double clustering_stat_cpu_ms = 0.02;

  // --- I/O Subsystem -------------------------------------------------------
  storage::DiskParameters disk;  ///< DISKSEA / DISKLAT / DISKTRA

  // --- Transaction Manager -------------------------------------------------
  uint32_t multiprogramming_level = 10;  ///< MULTILVL
  double get_lock_ms = 0.5;              ///< GETLOCK (per object access)
  double release_lock_ms = 0.5;          ///< RELLOCK (per held lock)
  /// Force policy: write all dirty buffer pages to disk at transaction
  /// commit.  Off by default (the paper's model counts write-backs only
  /// at eviction); irrelevant for the VM-backed (Texas) configuration,
  /// which has no transactional force point.
  bool flush_on_commit = false;
  /// Concurrency-control extension (paper §5): acquire real object-level
  /// S/X two-phase locks through the LockManager instead of charging the
  /// fixed GETLOCK delay alone.  Wait-die resolves deadlocks; aborted
  /// transactions restart after an exponential backoff.
  bool use_lock_manager = false;
  /// Concurrency-control protocol driven by the Transaction Manager when
  /// use_lock_manager is on (wait_die reproduces the pre-subsystem
  /// LockManager behavior bit for bit).
  cc::ProtocolKind cc_protocol = cc::ProtocolKind::kWaitDie;
  /// Mean of the exponential restart backoff (ms) after a CC abort.
  double restart_backoff_ms = 20.0;

  // --- Random hazards (paper §5 extension) ----------------------------------
  /// Mean time between system crashes (ms); 0 disables the hazard process.
  double failure_mtbf_ms = 0.0;
  /// Fixed restart cost after a crash (ms).
  double recovery_base_ms = 500.0;
  /// Log-replay cost per dirty page lost in a crash (ms).
  double recovery_per_dirty_page_ms = 2.0;
  /// Per-I/O transient fault probability (benign failures); 0 disables.
  double disk_fault_prob = 0.0;
  /// Retry penalty per transient fault (ms).
  double disk_fault_retry_ms = 30.0;
  /// Retries before a transient fault clears.
  uint32_t disk_fault_max_retries = 3;

  // --- Users ---------------------------------------------------------------
  uint32_t num_users = 1;  ///< NUSERS

  // --- System-level extras (Table 4 calibration) ---------------------------
  /// Storage overhead factor applied when packing objects into pages
  /// (O2's page server stores the OCB base in ~28 MB where Texas needs
  /// ~21 MB; >= 1).
  double storage_overhead = 1.0;
  /// Use the OS virtual-memory model instead of a database buffer
  /// (Texas).  BUFFSIZE is then the number of page frames.
  bool use_virtual_memory = false;
  /// Texas reserve-on-swizzle behaviour (only with use_virtual_memory).
  bool vm_reserve_references = true;
  /// Reserved frames enter the LRU order hot (MRU head) — the Linux 2.0
  /// behaviour the paper measured; false inserts them cold (ablation).
  bool vm_reservations_enter_hot = true;
  /// Pages dirtied by pointer swizzling at load time (only with
  /// use_virtual_memory).
  bool vm_dirty_on_load = true;
  /// CPU time per in-memory object operation (ms).
  double object_cpu_ms = 0.005;

  // --- Access tracing (trace subsystem) -------------------------------------
  /// Record the run's access trace — transaction markers, object
  /// resolutions and buffer page accesses — to `trace_path`.  Recording
  /// is per system instance: replicated runs sharing one path would
  /// clobber each other, so record single runs (`voodb trace record`).
  bool trace_record = false;
  /// Transaction stream source; kTrace replays the trace at `trace_path`
  /// instead of the synthetic OCB generator (wrapping around when the
  /// run outlives the recording).
  WorkloadSourceKind workload_source = WorkloadSourceKind::kSynthetic;
  /// Trace file path: output for `trace_record`, input for
  /// `workload_source = trace`.
  std::string trace_path;

  // --- Parallel kernel / sharding (desp::ParallelScheduler) ------------------
  /// Storage-server shards: N independent ObjectManager/BufferManager/
  /// TransactionManager stacks hash-partitioned over the object base,
  /// driven by `ShardedVoodb` on one scheduler partition each.  1 = the
  /// ordinary single-server model (every existing scenario).
  uint32_t shards = 1;
  /// Worker threads executing scheduler partitions inside ONE run (the
  /// conservative window protocol; results are bit-identical at any
  /// value).  1 = serial execution on the calling thread.
  uint32_t sim_threads = 1;
  /// Explicit window width (ms) for the conservative protocol; 0 derives
  /// it from the minimum cross-shard delay (disk service + network
  /// transfer of one page).  Must not exceed that minimum.
  double sim_window = 0.0;
  /// Fraction of transactions that touch a second shard: after the home
  /// shard commits, a request ships through the network actor to a
  /// deterministic remote shard, which runs a sub-transaction and acks.
  double multi_partition_pct = 0.0;

  // --- Observability (obs subsystem) ----------------------------------------
  /// Attach the simulation-time profiler: per-actor attribution of
  /// simulated time and event counts (`voodb profile` sets this).  Off by
  /// default — the disabled scheduler hook costs one branch per event.
  bool observe = false;
  /// Chrome-trace (chrome://tracing) JSON output path; non-empty implies
  /// `observe` and enables span capture.  Per system instance like
  /// trace_path, so profile single fixed-seed runs (`voodb profile`).
  std::string profile_path;
  /// Causal per-transaction tracing (obs/spans.hpp): span trees,
  /// critical-path component histograms, tail exemplars.  Pure metadata —
  /// simulation results are bit-identical with tracing on or off.
  bool trace_spans = true;
  /// Fraction of transactions traced, decided by a deterministic hash of
  /// the transaction id (no RNG stream is consumed, so any rate leaves
  /// the simulation untouched).
  double trace_sample_rate = 1.0;
  /// Slowest-K committed transactions whose full span trees are retained
  /// and exported by `voodb explain`.
  uint32_t trace_exemplars = 8;

  void Validate() const;
};

}  // namespace voodb::core
