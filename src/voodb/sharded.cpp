#include "voodb/sharded.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "util/check.hpp"

namespace voodb::core {

namespace {

/// FNV-1a over the raw bytes of every executed event's key — the
/// cheapest order-sensitive witness of "same events, same order, same
/// clocks".
struct Digest {
  uint64_t h = 0xcbf29ce484222325ull;

  void Fold(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xFF;
      h *= 0x100000001b3ull;
    }
  }

  static void Hook(void* ctx, const desp::EventKey& key) {
    auto* d = static_cast<Digest*>(ctx);
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(key.time), "SimTime is not 64-bit");
    std::memcpy(&bits, &key.time, sizeof(bits));
    d->Fold(bits);
    d->Fold(static_cast<uint64_t>(static_cast<int64_t>(key.priority)));
    d->Fold(key.seq);
  }
};

/// Shard-order reduction of per-shard phase metrics: counters sum,
/// simulated time is the slowest shard's (shards advance concurrently),
/// the mean response is transaction-weighted, distributions merge
/// bucket-exactly.
PhaseMetrics MergeShardMetrics(const std::vector<PhaseMetrics>& per_shard) {
  PhaseMetrics m;
  double response_weighted = 0.0;
  for (const PhaseMetrics& s : per_shard) {
    m.transactions += s.transactions;
    m.object_accesses += s.object_accesses;
    m.transaction_restarts += s.transaction_restarts;
    m.total_ios += s.total_ios;
    m.reads += s.reads;
    m.writes += s.writes;
    m.buffer_hits += s.buffer_hits;
    m.buffer_requests += s.buffer_requests;
    m.network_bytes += s.network_bytes;
    m.sim_time_ms = std::max(m.sim_time_ms, s.sim_time_ms);
    response_weighted +=
        s.mean_response_ms * static_cast<double>(s.transactions);
    m.response_histogram.Merge(s.response_histogram);
    m.lock_wait_histogram.Merge(s.lock_wait_histogram);
    m.disk_service_histogram.Merge(s.disk_service_histogram);
    m.component_histograms.Merge(s.component_histograms);
  }
  m.mean_response_ms = m.transactions == 0
                           ? 0.0
                           : response_weighted /
                                 static_cast<double>(m.transactions);
  m.max_response_ms = m.response_histogram.max();
  return m;
}

}  // namespace

/// One shard's Users active resource.  Mirrors VoodbSystem's internal
/// driver, plus the multi-partition leg: a committed transaction may ship
/// a request to a remote shard (through the home network actor and the
/// kernel's mailbox edge) and the issuing user blocks until the remote
/// sub-transaction's ack returns.  All state is touched only from events
/// executing on this shard's partition — except `served_remote`, which
/// the *owning* shard's partition increments when serving, and which is
/// read only after the kernel drains.
struct ShardedVoodb::ShardDriver {
  ShardedVoodb* owner = nullptr;
  size_t shard = 0;
  VoodbSystem* sys = nullptr;
  ocb::WorkloadGenerator* gen = nullptr;
  uint64_t to_issue = 0;
  uint64_t outstanding = 0;
  desp::RandomStream think_rng;
  desp::RandomStream mp_rng;  ///< multi-partition coin + remote pick
  double think_time_ms = 0.0;
  uint64_t served_remote = 0;  ///< sub-transactions run on this shard

  void UserLoop(uint32_t user) {
    if (to_issue == 0) return;  // natural drain ends the phase
    --to_issue;
    ++outstanding;
    ocb::Transaction txn = gen->Next();
    sys->RecordTxnBegin(txn.kind, user);
    auto submit = [this, user, txn = std::move(txn)]() mutable {
      sys->transaction_manager().Submit(
          std::move(txn), [this, user] { AfterCommit(user); });
    };
    if (think_time_ms > 0.0) {
      sys->scheduler().Schedule(think_rng.Exponential(think_time_ms),
                                std::move(submit));
    } else {
      submit();
    }
  }

  void AfterCommit(uint32_t user) {
    sys->RecordTxnEnd();
    const size_t n = owner->shards_.size();
    if (n > 1 && owner->config_.multi_partition_pct > 0.0 &&
        mp_rng.Bernoulli(owner->config_.multi_partition_pct)) {
      // The multi-partition leg: ship one page's worth of request bytes
      // through the home network, then cross the partition boundary with
      // the registered lookahead.  The user stays outstanding until the
      // remote ack lands back home.
      const size_t remote =
          (shard + 1 +
           static_cast<size_t>(mp_rng.UniformInt(
               0, static_cast<int64_t>(n) - 2))) %
          n;
      const double hop = owner->CrossShardDelayMs();
      // The global trace id of the transaction that just committed (0 if
      // it was not sampled): the remote sub-transaction stitches to it.
      const uint64_t parent =
          sys->span_tracer() != nullptr
              ? sys->span_tracer()->last_finished_global_id()
              : 0;
      sys->network().Transfer(
          owner->config_.page_size, [this, user, remote, hop, parent] {
            owner->kernel_->SendTo(shard, remote, hop,
                                   [this, user, remote, hop, parent] {
                                     owner->drivers_[remote]->ServeRemote(
                                         shard, user, hop, parent);
                                   });
          });
      return;
    }
    FinishTxn(user);
  }

  /// Runs on the *remote* shard's partition: a forced-kind
  /// sub-transaction through its own Transaction Manager, acked back to
  /// the requesting shard when it commits.
  void ServeRemote(size_t home, uint32_t user, double hop, uint64_t parent) {
    ++served_remote;
    ocb::Transaction sub =
        gen->NextOfKind(ocb::TransactionKind::kSimpleTraversal);
    if (parent != 0) {
      sys->transaction_manager().SetNextTraceParent(parent);
    }
    sys->transaction_manager().Submit(
        std::move(sub), [this, home, user, hop] {
          owner->kernel_->SendTo(shard, home, hop, [this, home, user] {
            owner->drivers_[home]->FinishTxn(user);
          });
        });
  }

  void FinishTxn(uint32_t user) {
    --outstanding;
    if (sys->config().auto_clustering &&
        sys->clustering_manager().ShouldTrigger()) {
      sys->clustering_manager().PerformClustering(
          [this, user](ClusteringMetrics) { UserLoop(user); });
      return;
    }
    UserLoop(user);
  }
};

ShardedVoodb::ShardedVoodb(VoodbConfig config, const ocb::ObjectBase* base,
                           uint64_t seed)
    : config_(config), base_(base), rng_(seed) {
  config_.Validate();
  VOODB_CHECK_MSG(base_ != nullptr, "sharded system needs an object base");
  VOODB_CHECK_MSG(config_.shards >= 1, "parameter 'shards' must be >= 1");
  VOODB_CHECK_MSG(config_.failure_mtbf_ms <= 0.0 || config_.shards == 1,
                  "the crash hazard re-arms forever, which would keep the "
                  "parallel kernel from draining: 'failure_mtbf_ms' "
                  "requires shards=1");
  const size_t n = config_.shards;

  desp::ParallelScheduler::Options kernel_options;
  kernel_options.partitions = n;
  kernel_options.queue = config_.event_queue;
  kernel_options.window = config_.sim_window;
  kernel_ = std::make_unique<desp::ParallelScheduler>(kernel_options);
  if (n > 1) kernel_->SetUniformEdgeDelay(CrossShardDelayMs());

  // The hash partition oid % shards == s, re-indexed densely: shard s
  // owns |{oid : oid % n == s}| objects, generated as an independent
  // deterministic sub-base (sizes and classes are functions of the dense
  // index, exactly as in the full base's round-robin assignment).
  partitions_.reserve(n);
  shards_.reserve(n);
  for (size_t s = 0; s < n; ++s) {
    ocb::OcbParameters p = base_->params();
    p.num_objects = base_->NumObjects() / n +
                    (s < base_->NumObjects() % n ? 1 : 0);
    VOODB_CHECK_MSG(p.num_objects >= p.num_classes,
                    "shard " << s << " would hold fewer objects ("
                             << p.num_objects << ") than classes ("
                             << p.num_classes
                             << "); lower 'shards' or grow the base");
    // The registry bounds 'seed' to exactly-representable doubles
    // (< 2^53); fold the derived 64-bit stream id down into that range.
    p.seed = rng_.Derive(0x5AAD0000 + s).seed() & ((1ull << 53) - 1);
    partitions_.push_back(ocb::ObjectBase::Generate(p));
  }
  for (size_t s = 0; s < n; ++s) {
    VoodbConfig shard_config = config_;
    shard_config.shards = 1;
    shard_config.sim_threads = 1;
    shard_config.sim_window = 0.0;
    shard_config.multi_partition_pct = 0.0;
    // The aggregate buffer budget matches a single-server run.
    shard_config.buffer_pages =
        std::max<uint64_t>(1, config_.buffer_pages / n);
    // Observability is owned here (one profiler spanning every
    // partition), not per shard.
    shard_config.observe = false;
    shard_config.profile_path.clear();
    shards_.push_back(std::make_unique<VoodbSystem>(
        shard_config, &partitions_[s], nullptr,
        rng_.Derive(0x57AC0000 + s).seed(), &kernel_->partition(s),
        /*trace_global_id_base=*/static_cast<uint64_t>(s) << 48));
  }
  if (config_.observe || !config_.profile_path.empty()) {
    profiler_ = std::make_unique<obs::SimProfiler>(
        /*capture_spans=*/!config_.profile_path.empty());
    for (size_t s = 0; s < n; ++s) {
      profiler_->Attach(&kernel_->partition(s), "shard" + std::to_string(s));
    }
  }
}

ShardedVoodb::~ShardedVoodb() {
  if (profiler_ != nullptr && !config_.profile_path.empty()) {
    profiler_->WriteChromeTrace(config_.profile_path);
  }
}

double ShardedVoodb::CrossShardDelayMs() const {
  // Finite network: one page on the wire (NetworkActor::TransferTime's
  // formula: MB/s -> 1000 bytes/ms).  Infinite network: the request
  // still cannot outrun one full-page disk service at the home shard.
  const double wire =
      config_.network_throughput_mbps > 0.0
          ? static_cast<double>(config_.page_size) /
                (config_.network_throughput_mbps * 1000.0)
          : 0.0;
  const double disk = config_.disk.search_ms + config_.disk.latency_ms +
                      config_.disk.transfer_ms;
  const double delay = wire > 0.0 ? wire : disk;
  VOODB_CHECK_MSG(delay > 0.0,
                  "cross-shard lookahead degenerated to zero: configure a "
                  "finite network throughput or non-zero disk timings");
  return delay;
}

PhaseMetrics ShardedVoodb::Run(uint64_t n, exp::ThreadPool* pool) {
  const size_t num_shards = shards_.size();

  std::vector<VoodbSystem::Snapshot> before;
  before.reserve(num_shards);
  for (auto& shard : shards_) before.push_back(shard->Take());

  // Fresh drivers per phase, their streams derived from committed counts
  // so consecutive phases draw fresh-but-deterministic randomness
  // (mirrors VoodbSystem::Drive).
  drivers_.clear();
  for (size_t s = 0; s < num_shards; ++s) {
    auto driver = std::make_unique<ShardDriver>();
    driver->owner = this;
    driver->shard = s;
    driver->sys = shards_[s].get();
    driver->gen = generators_.size() > s ? generators_[s].get() : nullptr;
    driver->to_issue = n;
    driver->think_rng = rng_.Derive(
        0x7817 + s * 0x1000 + shards_[s]->transaction_manager().committed());
    driver->mp_rng = rng_.Derive(
        0x3417 + s * 0x1000 + shards_[s]->transaction_manager().committed());
    driver->think_time_ms = partitions_[s].params().think_time_ms;
    drivers_.push_back(std::move(driver));
  }
  if (generators_.empty()) {
    for (size_t s = 0; s < num_shards; ++s) {
      generators_.push_back(std::make_unique<ocb::WorkloadGenerator>(
          &partitions_[s], rng_.Derive(0x6E40000 + s)));
    }
    for (size_t s = 0; s < num_shards; ++s) {
      drivers_[s]->gen = generators_[s].get();
    }
  }

  // Per-partition digests folded in shard order after the drain: the
  // bit-identity witness across sim_threads values.
  std::vector<Digest> digests(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    kernel_->partition(s).SetTraceHook(&Digest::Hook, &digests[s]);
  }

  for (size_t s = 0; s < num_shards; ++s) {
    const uint32_t active_users = static_cast<uint32_t>(
        std::min<uint64_t>(config_.num_users, n));
    for (uint32_t u = 0; u < active_users; ++u) drivers_[s]->UserLoop(u);
  }
  kernel_->Run(pool);

  for (size_t s = 0; s < num_shards; ++s) {
    kernel_->partition(s).SetTraceHook(nullptr, nullptr);
    VOODB_CHECK_MSG(
        drivers_[s]->to_issue == 0 && drivers_[s]->outstanding == 0,
        "shard " << s << " ended the phase with unfinished work");
    remote_subtxns_ += drivers_[s]->served_remote;
  }

  trace_digest_ = 0xcbf29ce484222325ull;
  shard_metrics_.clear();
  for (size_t s = 0; s < num_shards; ++s) {
    shard_metrics_.push_back(shards_[s]->Delta(before[s]));
    Digest fold;
    fold.h = trace_digest_;
    fold.Fold(digests[s].h);
    trace_digest_ = fold.h;
  }
  return MergeShardMetrics(shard_metrics_);
}

obs::MetricSnapshot ShardedVoodb::MergedMetrics() const {
  obs::MetricSnapshot merged;
  for (const auto& shard : shards_) {
    merged.Merge(shard->metric_registry().Snapshot());
  }
  return merged;
}

std::vector<obs::Exemplar> ShardedVoodb::MergedExemplars() const {
  std::vector<obs::Exemplar> merged;
  for (const auto& shard : shards_) {
    const obs::SpanTracer* tracer = shard->span_tracer();
    if (tracer == nullptr) continue;
    merged = obs::MergeExemplars(std::move(merged), tracer->exemplars(),
                                 config_.trace_exemplars);
  }
  return merged;
}

}  // namespace voodb::core
