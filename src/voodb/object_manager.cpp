#include "voodb/object_manager.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace voodb::core {

ObjectManagerActor::ObjectManagerActor(
    desp::Scheduler* scheduler, const ocb::ObjectBase* base,
    uint32_t page_size, storage::PlacementPolicy initial_placement,
    double overhead_factor)
    : Actor(scheduler, "object-manager"),
      base_(base),
      page_size_(page_size),
      overhead_factor_(overhead_factor) {
  VOODB_CHECK_MSG(base_ != nullptr, "object manager needs an object base");
  placement_ = std::make_unique<storage::Placement>(storage::Placement::Build(
      *base_, page_size_, initial_placement, overhead_factor_));
}

ObjectManagerActor::RelocationIo ObjectManagerActor::ApplyRelocation(
    const std::vector<ocb::Oid>& moved_order) {
  RelocationIo io;
  // Old pages of the moved objects, deduplicated.
  for (ocb::Oid oid : moved_order) {
    const storage::PageSpan span = placement_->SpanOf(oid);
    for (uint32_t i = 0; i < span.count; ++i) {
      io.pages_to_read.push_back(span.first + i);
    }
  }
  std::sort(io.pages_to_read.begin(), io.pages_to_read.end());
  io.pages_to_read.erase(
      std::unique(io.pages_to_read.begin(), io.pages_to_read.end()),
      io.pages_to_read.end());

  const uint64_t old_num_pages = placement_->NumPages();
  placement_ = std::make_unique<storage::Placement>(
      storage::Placement::RelocateToTail(*placement_, *base_, moved_order,
                                         overhead_factor_));
  for (storage::PageId p = old_num_pages; p < placement_->NumPages(); ++p) {
    io.pages_to_write.push_back(p);
  }
  adjacency_valid_ = false;
  return io;
}

storage::PageIdSpan ObjectManagerActor::ReferencedPages(
    storage::PageId page) {
  if (!adjacency_valid_) {
    adjacency_.Rebuild(*base_, *placement_);
    adjacency_valid_ = true;
  }
  VOODB_CHECK_MSG(page < adjacency_.NumPages(), "page out of range");
  return adjacency_.RowOf(page);
}


void ObjectManagerActor::RegisterMetrics(obs::MetricRegistry& registry) const {
  registry.RegisterGauge("om.num_pages", [this] {
    return static_cast<double>(NumPages());
  });
}

}  // namespace voodb::core
