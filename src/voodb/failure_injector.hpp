/// \file failure_injector.hpp
/// \brief Random hazards: system failures and recovery (paper §5).
///
/// "VOODB could also take into account random hazards, like benign or
/// serious system failures, in order to observe how the studied OODB
/// behaves and recovers in critical conditions."  This module implements
/// the *serious* failures (crashes); the *benign* ones (transient disk
/// errors) live in IoSubsystemActor::SetFaultModel.
///
/// Crash model: crashes arrive as a Poisson process with mean inter-
/// arrival `mtbf_ms`.  A crash (1) discards the volatile buffer — every
/// unwritten update is lost and must be redone — and (2) occupies the
/// disk exclusively for the recovery time
///   recovery_base_ms + recovery_per_dirty_page_ms * dirty_pages,
/// modelling the restart plus log replay proportional to the lost dirty
/// set.  In-flight transactions are not aborted; they stall behind the
/// recovery scan and their response times absorb the outage (a warm
/// restart with strict redo, no undo — the simple ARIES-style story).
#pragma once

#include <cstdint>

#include "desp/actor.hpp"
#include "desp/random.hpp"
#include "desp/scheduler.hpp"
#include "desp/stats.hpp"
#include "voodb/buffering_manager.hpp"
#include "voodb/io_subsystem.hpp"

namespace voodb::core {

/// Crash-model tunables.
struct FailureParameters {
  /// Mean time between system failures (ms); <= 0 disables crashes.
  double mtbf_ms = 0.0;
  /// Fixed restart cost (process restart, log open).
  double recovery_base_ms = 500.0;
  /// Redo cost per dirty page lost in the crash.
  double recovery_per_dirty_page_ms = 2.0;

  void Validate() const;
};

/// Counters exposed by the injector.
struct FailureStats {
  uint64_t crashes = 0;
  double total_recovery_ms = 0.0;
  uint64_t dirty_pages_lost = 0;
  desp::Tally recovery_times;
};

/// Schedules crashes and performs the recovery protocol.
class FailureInjectorActor : public desp::Actor {
 public:
  FailureInjectorActor(desp::Scheduler* scheduler, FailureParameters params,
                       BufferingManagerActor* buffering, IoSubsystemActor* io,
                       desp::RandomStream rng);

  /// Schedules the first crash (no-op when mtbf <= 0).  Crashes then
  /// re-arm themselves indefinitely; pending crash events survive phase
  /// boundaries (the system driver stops on work completion, not on an
  /// empty event list).
  void Arm();

  /// Cancels the pending crash, if any.
  void Disarm();

  bool armed() const;
  const FailureStats& stats() const { return stats_; }

 private:
  void ScheduleNext();
  void Crash();

  FailureParameters params_;
  BufferingManagerActor* buffering_;
  IoSubsystemActor* io_;
  desp::RandomStream rng_;
  desp::EventHandle pending_;
  FailureStats stats_;
};

}  // namespace voodb::core
