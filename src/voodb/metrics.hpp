/// \file metrics.hpp
/// \brief Metrics reported by one workload phase of a VOODB run.
#pragma once

#include <cstdint>

#include "desp/histogram.hpp"
#include "obs/spans.hpp"

namespace voodb::core {

/// Counters accumulated during one phase (a cold run, a hot run, or a
/// clustering reorganization).  The paper's headline metric is
/// `total_ios` — "mean number of I/Os necessary to perform the
/// transactions".
struct PhaseMetrics {
  uint64_t transactions = 0;
  uint64_t object_accesses = 0;
  /// Wait-die restarts (0 unless the lock-manager extension is enabled).
  uint64_t transaction_restarts = 0;
  uint64_t total_ios = 0;   ///< reads + writes at the disk
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t buffer_hits = 0;
  uint64_t buffer_requests = 0;
  uint64_t network_bytes = 0;
  double sim_time_ms = 0.0;        ///< simulated wall-clock of the phase
  double mean_response_ms = 0.0;   ///< mean transaction response time
  /// Largest response observed (sourced from the response histogram's
  /// tracked maximum; run-cumulative when the phase is a delta).
  double max_response_ms = 0.0;

  /// Full distributions for this phase (bucket-exact deltas between the
  /// phase-end and phase-start snapshots); mergeable across replications.
  desp::LogHistogram response_histogram;      ///< per-transaction (ms)
  desp::LogHistogram lock_wait_histogram;     ///< per lock grant (ms)
  desp::LogHistogram disk_service_histogram;  ///< per physical I/O (ms)
  /// Critical-path decomposition of the phase's committed (sampled)
  /// transactions: per-component response-time histograms whose per-txn
  /// values sum exactly to the response time (obs::CriticalPath).  Empty
  /// unless trace_spans is on.
  obs::ComponentHistograms component_histograms;

  /// Response-time percentile (ms); 0 when no transaction committed.
  double ResponseQuantileMs(double q) const {
    return response_histogram.Quantile(q);
  }

  double HitRate() const {
    return buffer_requests == 0 ? 0.0
                                : static_cast<double>(buffer_hits) /
                                      static_cast<double>(buffer_requests);
  }
  double IosPerTransaction() const {
    return transactions == 0 ? 0.0
                             : static_cast<double>(total_ios) /
                                   static_cast<double>(transactions);
  }
  double ThroughputTps() const {
    return sim_time_ms <= 0.0 ? 0.0
                              : static_cast<double>(transactions) * 1000.0 /
                                    sim_time_ms;
  }
};

/// Result of one clustering reorganization.
struct ClusteringMetrics {
  bool reorganized = false;
  uint64_t num_clusters = 0;
  double mean_cluster_size = 0.0;
  uint64_t overhead_ios = 0;  ///< I/Os charged by the reorganization
  double duration_ms = 0.0;   ///< simulated time spent reorganizing
};

}  // namespace voodb::core
