/// \file clustering_manager.hpp
/// \brief The Clustering Manager active resource (knowledge model, Fig. 4).
///
/// "Perform treatment related to clustering (statistics collection)" after
/// every object operation, and "Perform Clustering" when triggered —
/// automatically after a transaction, or externally by the Users.  The
/// reorganization is charged as disk I/O through the I/O Subsystem: moved
/// objects' source pages are read (unless buffered) and the fresh cluster
/// pages are written.  The simulation model uses logical OIDs, so no
/// reference-patching scan is needed (paper §4.4 — this is precisely why
/// the simulated clustering overhead is ~36x smaller than the measured
/// one on Texas, which uses physical OIDs).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "cluster/policy.hpp"
#include "desp/actor.hpp"
#include "desp/scheduler.hpp"
#include "voodb/buffering_manager.hpp"
#include "voodb/io_subsystem.hpp"
#include "voodb/metrics.hpp"
#include "voodb/object_manager.hpp"

namespace voodb::obs {
class MetricRegistry;
}  // namespace voodb::obs

namespace voodb::core {

/// The Clustering Manager actor.
class ClusteringManagerActor : public desp::Actor {
 public:
  ClusteringManagerActor(desp::Scheduler* scheduler,
                         std::unique_ptr<cluster::ClusteringPolicy> policy,
                         ObjectManagerActor* object_manager,
                         BufferingManagerActor* buffering,
                         IoSubsystemActor* io);

  /// Observation hooks (driven by the Transaction Manager).
  void OnTransactionStart();
  void OnObjectAccess(ocb::Oid oid, bool is_write);
  void OnTransactionEnd();

  /// Automatic-trigger test.
  bool ShouldTrigger() const;

  /// Runs the reclustering; `done` receives the metrics once the
  /// reorganization I/O has completed on the disk.
  void PerformClustering(std::function<void(ClusteringMetrics)> done);

  const cluster::ClusteringPolicy& policy() const { return *policy_; }
  bool enabled() const;

  /// Totals across all reorganizations so far.
  uint64_t total_overhead_ios() const { return total_overhead_ios_; }
  uint64_t reorganizations() const { return reorganizations_; }

  /// Registers the reorganization counters with `registry`.
  void RegisterMetrics(obs::MetricRegistry& registry) const;

 private:
  std::unique_ptr<cluster::ClusteringPolicy> policy_;
  ObjectManagerActor* object_manager_;
  BufferingManagerActor* buffering_;
  IoSubsystemActor* io_;
  uint64_t total_overhead_ios_ = 0;
  uint64_t reorganizations_ = 0;
};

}  // namespace voodb::core
