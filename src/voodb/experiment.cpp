#include "voodb/experiment.hpp"

#include <utility>

#include "desp/random.hpp"
#include "exp/farm.hpp"
#include "ocb/workload.hpp"
#include "util/check.hpp"

namespace voodb::core {

desp::ReplicationResult Experiment::Run(const ExperimentConfig& config) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(config.workload);
  return RunOnBase(config, base);
}

desp::ReplicationRunner::Model Experiment::MakeModel(
    ExperimentConfig config, const ocb::ObjectBase* base) {
  VOODB_CHECK_MSG(base != nullptr, "object base required");
  return [config = std::move(config), base](uint64_t seed,
                                            desp::MetricSink& sink) {
    std::unique_ptr<cluster::ClusteringPolicy> policy;
    if (config.make_policy) policy = config.make_policy();
    VoodbSystem system(config.system, base, std::move(policy), seed);
    ocb::WorkloadGenerator workload(base, desp::RandomStream(seed).Derive(1));
    if (config.workload.cold_transactions > 0) {
      system.RunTransactions(workload, config.workload.cold_transactions);
    }
    const PhaseMetrics hot =
        system.RunTransactions(workload, config.workload.hot_transactions);
    sink.Observe("total_ios", static_cast<double>(hot.total_ios));
    sink.Observe("reads", static_cast<double>(hot.reads));
    sink.Observe("writes", static_cast<double>(hot.writes));
    sink.Observe("hit_rate", hot.HitRate());
    sink.Observe("mean_response_ms", hot.mean_response_ms);
    sink.Observe("throughput_tps", hot.ThroughputTps());
    sink.Observe("sim_time_ms", hot.sim_time_ms);
    sink.Observe("object_accesses",
                 static_cast<double>(hot.object_accesses));
  };
}

desp::ReplicationResult Experiment::RunOnBase(const ExperimentConfig& config,
                                              const ocb::ObjectBase& base) {
  VOODB_CHECK_MSG(config.replications >= 1, "need at least one replication");
  exp::FarmOptions options;
  options.threads = config.threads;
  options.base_seed = config.base_seed;
  return exp::ReplicationFarm(MakeModel(config, &base), options)
      .Run(config.replications);
}

double Experiment::MeanTotalIos(const ExperimentConfig& config) {
  return Run(config).Metric("total_ios").mean();
}

}  // namespace voodb::core
