/// \file catalog.hpp
/// \brief Ready-made VoodbConfig presets (paper Table 4).
///
/// Table 4 of the paper lists the parameter values that make the generic
/// model behave like the two validated systems: the O2 page server (IBM
/// RS/6000, AIX 4) and the Texas persistent store (PC, Linux 2.0.30).
#pragma once

#include "voodb/config.hpp"

namespace voodb::core {

/// Preset catalog for the validated systems.
class SystemCatalog {
 public:
  /// O2 v5.0 as configured in Table 4: page server, infinite network
  /// (server-side measurement), 4 KB pages, 3840-page LRU server cache,
  /// no prefetch, optimized-sequential placement, 6.3/2.99/0.7 ms disk,
  /// MULTILVL 10, 0.5 ms locks, 1 user.  The ~1.33 storage overhead makes
  /// the NC=50/NO=20000 OCB base occupy ~28 MB as the paper reports.
  static VoodbConfig O2();

  /// Texas v0.5 as configured in Table 4: centralized, 4 KB pages,
  /// 3275-frame memory, LRU, 7.4/4.3/0.5 ms disk, no locks, 1 user,
  /// OS virtual memory with Texas' reserve-on-swizzle loading policy.
  static VoodbConfig Texas();

  /// Texas with `memory_mb` of RAM available to the store (Figure 11's
  /// sweep); frames = memory_mb MB / page size.
  static VoodbConfig TexasWithMemory(double memory_mb);

  /// O2 with `cache_mb` of server cache (Figure 8's sweep).
  static VoodbConfig O2WithCache(double cache_mb);

  /// Rewrites `config.buffer_pages` for a Texas host with `memory_mb`
  /// of physical memory (~80 % of it available to the store's mapping).
  /// `TexasWithMemory(m)` == `Texas()` + `SetTexasMemory(cfg, m)`;
  /// exposed so memory sweeps can rescale an arbitrary base config.
  static void SetTexasMemory(VoodbConfig& config, double memory_mb);

  /// Rewrites `config.buffer_pages` for an O2 server cache of
  /// `cache_mb`.  `O2WithCache(m)` == `O2()` + `SetO2Cache(cfg, m)`.
  static void SetO2Cache(VoodbConfig& config, double cache_mb);
};

}  // namespace voodb::core
