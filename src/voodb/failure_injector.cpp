#include "voodb/failure_injector.hpp"

#include "util/check.hpp"

namespace voodb::core {

void FailureParameters::Validate() const {
  VOODB_CHECK_MSG(recovery_base_ms >= 0.0, "recovery base must be >= 0");
  VOODB_CHECK_MSG(recovery_per_dirty_page_ms >= 0.0,
                  "per-page recovery cost must be >= 0");
}

FailureInjectorActor::FailureInjectorActor(desp::Scheduler* scheduler,
                                           FailureParameters params,
                                           BufferingManagerActor* buffering,
                                           IoSubsystemActor* io,
                                           desp::RandomStream rng)
    : Actor(scheduler, "failure-injector"),
      params_(params),
      buffering_(buffering),
      io_(io),
      rng_(rng) {
  params_.Validate();
  VOODB_CHECK_MSG(buffering_ && io_, "failure injector needs its peers");
}

void FailureInjectorActor::Arm() {
  if (params_.mtbf_ms <= 0.0 || pending_.pending()) return;
  ScheduleNext();
}

void FailureInjectorActor::Disarm() { scheduler().Cancel(pending_); }

bool FailureInjectorActor::armed() const { return pending_.pending(); }

void FailureInjectorActor::ScheduleNext() {
  pending_ = CallIn(rng_.Exponential(params_.mtbf_ms),
                    &FailureInjectorActor::Crash);
}

void FailureInjectorActor::Crash() {
  ++stats_.crashes;
  const uint64_t dirty = buffering_->DirtyPages();
  stats_.dirty_pages_lost += dirty;
  const double recovery =
      params_.recovery_base_ms +
      params_.recovery_per_dirty_page_ms * static_cast<double>(dirty);
  stats_.total_recovery_ms += recovery;
  stats_.recovery_times.Add(recovery);
  // The volatile buffer is gone; the disk is busy replaying the log.
  buffering_->Drop();
  io_->Seize(recovery, [this] {
    // System back up: the hazard process continues.
    ScheduleNext();
  });
}

}  // namespace voodb::core
