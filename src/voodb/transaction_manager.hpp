/// \file transaction_manager.hpp
/// \brief The Transaction Manager active resource (knowledge model, Fig. 4).
///
/// Admits transactions against the database scheduler (a passive resource
/// of capacity MULTILVL, Table 1: "concurrent access is managed by a
/// scheduler that applies a transaction scheduling policy that depends on
/// the multiprogramming level"), acquires a lock per object operation
/// (GETLOCK on the CPU), asks the Object Manager for the object's pages,
/// the Buffering Manager for those pages, the network for shipping
/// (Client-Server classes), and releases locks at commit (RELLOCK).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "desp/actor.hpp"
#include "desp/histogram.hpp"
#include "desp/random.hpp"
#include "desp/resource.hpp"
#include "desp/scheduler.hpp"
#include "desp/stats.hpp"
#include "ocb/types.hpp"
#include "voodb/buffering_manager.hpp"
#include "voodb/clustering_manager.hpp"
#include "voodb/config.hpp"
#include "voodb/lock_manager.hpp"
#include "voodb/network.hpp"
#include "voodb/object_manager.hpp"

namespace voodb::obs {
class MetricRegistry;
}  // namespace voodb::obs

namespace voodb::core {

/// The Transaction Manager actor.
class TransactionManagerActor : public desp::Actor {
 public:
  TransactionManagerActor(desp::Scheduler* scheduler,
                          const VoodbConfig& config,
                          ObjectManagerActor* object_manager,
                          BufferingManagerActor* buffering,
                          ClusteringManagerActor* clustering,
                          NetworkActor* network);

  /// Executes `txn` to commit, then calls `done`.  Transactions beyond
  /// the multiprogramming level queue at the database scheduler.
  void Submit(ocb::Transaction txn, std::function<void()> done);

  uint64_t committed() const { return committed_; }
  uint64_t object_operations() const { return object_operations_; }
  /// Wait-die restarts (0 unless use_lock_manager).
  uint64_t restarts() const { return restarts_; }
  const desp::Tally& response_times() const { return response_times_; }
  /// Full response-time distribution (ms) since construction; use
  /// Quantile(0.5/0.95/0.99) for percentile reporting.
  const desp::LogHistogram& response_histogram() const {
    return response_histogram_;
  }
  double SchedulerUtilization() const { return db_scheduler_.Utilization(); }
  /// The lock manager (nullptr unless use_lock_manager).
  const LockManager* lock_manager() const { return lock_manager_.get(); }

  /// Registers this actor's counters/histograms (and the lock manager's,
  /// when enabled) with `registry` — pointer handles, no update overhead.
  void RegisterMetrics(obs::MetricRegistry& registry) const;

 private:
  struct InFlight {
    ocb::Transaction txn;
    size_t next_access = 0;
    double admitted_at = 0.0;
    uint64_t response_bytes = 0;  // DbServer: result shipped at commit
    uint64_t txn_id = 0;          // lock-manager identity (per attempt)
    uint64_t age_stamp = 0;       // wait-die age (kept across restarts)
    std::function<void()> done;
  };

  void ProcessNext(std::shared_ptr<InFlight> state);
  void AccessObject(std::shared_ptr<InFlight> state);
  void PerformAccess(std::shared_ptr<InFlight> state,
                     ocb::ObjectAccess access);
  void Restart(std::shared_ptr<InFlight> state);
  /// Backoff elapsed: re-register with the lock manager and retry.
  void Reattempt(std::shared_ptr<InFlight> state);
  void ShipAndContinue(std::shared_ptr<InFlight> state, uint64_t bytes);
  void Commit(std::shared_ptr<InFlight> state);

  const VoodbConfig config_;
  ObjectManagerActor* object_manager_;
  BufferingManagerActor* buffering_;
  ClusteringManagerActor* clustering_;
  NetworkActor* network_;
  desp::Resource db_scheduler_;  ///< capacity = MULTILVL
  desp::Resource cpu_;           ///< server CPU (locks, object ops, stats)
  std::unique_ptr<LockManager> lock_manager_;  ///< §5 extension
  desp::RandomStream backoff_rng_;
  uint64_t next_txn_id_ = 1;
  uint64_t next_age_stamp_ = 1;
  uint64_t committed_ = 0;
  uint64_t object_operations_ = 0;
  uint64_t restarts_ = 0;
  desp::Tally response_times_;
  desp::LogHistogram response_histogram_;
};

}  // namespace voodb::core
