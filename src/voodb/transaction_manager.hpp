/// \file transaction_manager.hpp
/// \brief The Transaction Manager active resource (knowledge model, Fig. 4).
///
/// Admits transactions against the database scheduler (a passive resource
/// of capacity MULTILVL, Table 1: "concurrent access is managed by a
/// scheduler that applies a transaction scheduling policy that depends on
/// the multiprogramming level"), acquires a lock per object operation
/// (GETLOCK on the CPU), asks the Object Manager for the object's pages,
/// the Buffering Manager for those pages, the network for shipping
/// (Client-Server classes), and releases locks at commit (RELLOCK).
///
/// Concurrency control is delegated to a pluggable `cc::Protocol`
/// (selected by VoodbConfig::cc_protocol when use_lock_manager is on):
/// the manager registers each attempt, routes every object operation
/// through the protocol's access decision, validates at commit, and
/// restarts aborted attempts after a randomized backoff — identically
/// for lock-based, multiversion, and optimistic schemes.
///
/// In-flight transaction state lives in a generation-counted slot pool
/// (the DES arena discipline): continuations capture an 8-byte handle,
/// not a `shared_ptr`, so the steady-state hot path performs no
/// allocation per attempt and the pool size is bounded by the
/// multiprogramming level, not the run length.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cc/protocol.hpp"
#include "desp/actor.hpp"
#include "desp/histogram.hpp"
#include "desp/random.hpp"
#include "desp/resource.hpp"
#include "desp/scheduler.hpp"
#include "desp/stats.hpp"
#include "ocb/types.hpp"
#include "voodb/buffering_manager.hpp"
#include "voodb/clustering_manager.hpp"
#include "voodb/config.hpp"
#include "voodb/lock_manager.hpp"
#include "voodb/network.hpp"
#include "voodb/object_manager.hpp"

namespace voodb::obs {
class MetricRegistry;
class SpanTracer;
}  // namespace voodb::obs

namespace voodb::trace {
class Recorder;
}  // namespace voodb::trace

namespace voodb::core {

/// The Transaction Manager actor.
class TransactionManagerActor : public desp::Actor {
 public:
  TransactionManagerActor(desp::Scheduler* scheduler,
                          const VoodbConfig& config,
                          ObjectManagerActor* object_manager,
                          BufferingManagerActor* buffering,
                          ClusteringManagerActor* clustering,
                          NetworkActor* network);

  /// Executes `txn` to commit, then calls `done`.  Transactions beyond
  /// the multiprogramming level queue at the database scheduler.
  void Submit(ocb::Transaction txn, std::function<void()> done);

  uint64_t committed() const { return committed_; }
  uint64_t object_operations() const { return object_operations_; }
  /// Concurrency-control restarts (0 unless use_lock_manager).
  uint64_t restarts() const { return restarts_; }
  const desp::Tally& response_times() const { return response_times_; }
  /// Full response-time distribution (ms) since construction; use
  /// Quantile(0.5/0.95/0.99) for percentile reporting.
  const desp::LogHistogram& response_histogram() const {
    return response_histogram_;
  }
  double SchedulerUtilization() const { return db_scheduler_.Utilization(); }
  /// The wait-die lock manager (nullptr unless the active protocol wraps
  /// one, i.e. cc_protocol=wait_die) — pre-subsystem accessor, kept for
  /// tests and diagnostics.
  const LockManager* lock_manager() const {
    return protocol_ == nullptr ? nullptr : protocol_->lock_manager();
  }
  /// The concurrency-control protocol (nullptr unless use_lock_manager).
  const cc::Protocol* cc_protocol() const { return protocol_.get(); }

  /// In-flight slot-pool occupancy/capacity — the capacity is bounded by
  /// the concurrency in flight, never by transactions run (micro_cc
  /// asserts this).
  size_t inflight_pool_live() const { return pool_live_; }
  size_t inflight_pool_capacity() const { return pool_.size(); }

  /// Attaches/detaches (nullptr) a trace recorder; aborted attempts are
  /// recorded as kTxnAbort markers so contention runs replay as full
  /// transaction streams.
  void SetRecorder(trace::Recorder* recorder) { recorder_ = recorder; }

  /// Attaches/detaches (nullptr) the span tracer; the manager emits the
  /// structural spans (root, attempts, cc waits, buffer accesses, commit,
  /// backoffs) and shares the tracer with the protocol for abort-cause
  /// annotation.  Pure metadata: simulation results are unchanged.
  void SetTracer(obs::SpanTracer* tracer);

  /// Declares the next submitted transaction a cross-shard sub-transaction
  /// of `parent_global_id`, stitching its trace to the parent's.
  void SetNextTraceParent(uint64_t parent_global_id);

  /// Registers this actor's counters/histograms (and the protocol's,
  /// when enabled) with `registry` — pointer handles, no update overhead.
  void RegisterMetrics(obs::MetricRegistry& registry) const;

 private:
  struct InFlight {
    ocb::Transaction txn;
    size_t next_access = 0;
    double admitted_at = 0.0;
    uint64_t response_bytes = 0;  // DbServer: result shipped at commit
    uint64_t txn_id = 0;          // protocol identity (per attempt)
    uint64_t age_stamp = 0;       // wait-die age (kept across restarts)
    uint64_t attempts = 0;        // 1 + restarts of this transaction
    uint32_t trace = 0;           // span-tracer context (0 = untraced)
    double backoff_started = 0.0;  // restart backoff span begin
    std::function<void()> done;
  };
  /// Generation-counted reference into the slot pool.  Continuations
  /// capture this by value and re-resolve on fire, so pool growth never
  /// invalidates an outstanding callback and a stale handle is caught by
  /// the generation check instead of corrupting a recycled slot.
  struct Handle {
    uint32_t index = 0;
    uint32_t generation = 0;
  };
  struct Slot {
    InFlight state;
    uint32_t generation = 0;
    bool live = false;
  };

  Handle AllocInFlight();
  InFlight& At(Handle h);
  void FreeInFlight(Handle h);

  void ProcessNext(Handle h);
  /// CPU slice for the access bookkeeping done: emit the span, go on.
  void OnCpuReady(Handle h, double cpu_start);
  void AccessObject(Handle h);
  /// Protocol granted the access: emit the cc-wait span, perform it.
  void OnAccessGranted(Handle h, ocb::ObjectAccess access, double wait_start);
  void PerformAccess(Handle h, ocb::ObjectAccess access);
  void Restart(Handle h);
  /// Backoff elapsed: re-register with the protocol and retry.
  void Reattempt(Handle h);
  void ShipAndContinue(Handle h, uint64_t bytes);
  void Commit(Handle h);

  const VoodbConfig config_;
  ObjectManagerActor* object_manager_;
  BufferingManagerActor* buffering_;
  ClusteringManagerActor* clustering_;
  NetworkActor* network_;
  desp::Resource db_scheduler_;  ///< capacity = MULTILVL
  desp::Resource cpu_;           ///< server CPU (locks, object ops, stats)
  std::unique_ptr<cc::Protocol> protocol_;  ///< §5 extension, pluggable
  trace::Recorder* recorder_ = nullptr;
  obs::SpanTracer* tracer_ = nullptr;
  desp::RandomStream backoff_rng_;
  std::vector<Slot> pool_;
  std::vector<uint32_t> free_slots_;
  size_t pool_live_ = 0;
  uint64_t next_txn_id_ = 1;
  uint64_t next_age_stamp_ = 1;
  uint64_t committed_ = 0;
  uint64_t object_operations_ = 0;
  uint64_t restarts_ = 0;
  desp::Tally response_times_;
  desp::LogHistogram response_histogram_;
  /// Restarts per committed transaction (cc.retries) when a protocol is
  /// active.
  desp::LogHistogram retry_histogram_;
};

}  // namespace voodb::core
