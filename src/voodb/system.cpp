#include "voodb/system.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace voodb::core {

VoodbSystem::VoodbSystem(VoodbConfig config, const ocb::ObjectBase* base,
                         std::unique_ptr<cluster::ClusteringPolicy> policy,
                         uint64_t seed, desp::Scheduler* scheduler,
                         uint64_t trace_global_id_base)
    : config_(config),
      base_(base),
      owned_scheduler_(scheduler == nullptr
                           ? std::make_unique<desp::Scheduler>(
                                 config.event_queue)
                           : nullptr),
      scheduler_(scheduler == nullptr ? owned_scheduler_.get() : scheduler),
      rng_(seed) {
  config_.Validate();
  VOODB_CHECK_MSG(base_ != nullptr, "system needs an object base");
  // Derived once: seeds the Buffering Manager's stream AND, when
  // recording, the trace header — bit-exact replay of the RANDOM policy
  // depends on the two staying the same stream.
  const desp::RandomStream buffer_rng = rng_.Derive(0xB0FF);
  object_manager_ = std::make_unique<ObjectManagerActor>(
      scheduler_, base_, config_.page_size, config_.initial_placement,
      config_.storage_overhead);
  io_ = std::make_unique<IoSubsystemActor>(scheduler_, config_.disk);
  network_ = std::make_unique<NetworkActor>(scheduler_,
                                            config_.network_throughput_mbps);
  buffering_ = std::make_unique<BufferingManagerActor>(
      scheduler_, config_, object_manager_.get(), io_.get(), buffer_rng);
  clustering_ = std::make_unique<ClusteringManagerActor>(
      scheduler_, std::move(policy), object_manager_.get(), buffering_.get(),
      io_.get());
  tm_ = std::make_unique<TransactionManagerActor>(
      scheduler_, config_, object_manager_.get(), buffering_.get(),
      clustering_.get(), network_.get());
  if (config_.trace_spans) {
    obs::SpanTracer::Options topts;
    topts.sample_seed = seed;
    topts.sample_rate = config_.trace_sample_rate;
    topts.exemplars = config_.trace_exemplars;
    topts.global_id_base = trace_global_id_base;
    tracer_ = std::make_unique<obs::SpanTracer>(scheduler_, topts);
    // At most MULTILVL transactions are admitted (and thus traced) at
    // once; pre-size the slabs so steady-state tracing never allocates.
    tracer_->Reserve(config_.multiprogramming_level + 4);
    tm_->SetTracer(tracer_.get());
    io_->SetTracer(tracer_.get());
    network_->SetTracer(tracer_.get());
  }
  scheduler_->SetLaneEnabled(config_.fast_lane);
  // Pre-size the kernel for the steady-state event population so
  // contention-scale runs never reallocate on the schedule/fire hot
  // path: each user keeps a few events pending (think timer, submit
  // continuation, I/O completion, hazard timeout) and each pooled
  // inflight transaction can hold a same-timestamp cc decision
  // continuation.
  scheduler_->Reserve(static_cast<size_t>(config_.num_users) * 4 +
                      tm_->inflight_pool_capacity() * 2 + 64);
  if (config_.disk_fault_prob > 0.0) {
    io_->SetFaultModel(config_.disk_fault_prob, config_.disk_fault_retry_ms,
                       config_.disk_fault_max_retries, rng_.Derive(0xFA17));
  }
  if (config_.failure_mtbf_ms > 0.0) {
    FailureParameters fp;
    fp.mtbf_ms = config_.failure_mtbf_ms;
    fp.recovery_base_ms = config_.recovery_base_ms;
    fp.recovery_per_dirty_page_ms = config_.recovery_per_dirty_page_ms;
    failures_ = std::make_unique<FailureInjectorActor>(
        scheduler_, fp, buffering_.get(), io_.get(), rng_.Derive(0xC7A5));
    failures_->Arm();
  }
  if (config_.workload_source == WorkloadSourceKind::kTrace) {
    trace_workload_ =
        std::make_unique<trace::TraceWorkload>(config_.trace_path);
  }
  if (config_.workload_source == WorkloadSourceKind::kYcsbZipf) {
    // Seeded from the replication stream like the buffer RNG, so every
    // replication draws an independent but reproducible key sequence.
    ycsb_workload_ = std::make_unique<ocb::YcsbZipfWorkload>(
        base_, rng_.Derive(0x59C5B));
  }
  if (config_.trace_record) {
    trace::Header header;
    header.page_size = config_.page_size;
    header.buffer_pages = config_.buffer_pages;
    header.replacement_policy =
        static_cast<uint8_t>(config_.page_replacement);
    header.prefetch_policy = static_cast<uint8_t>(config_.prefetch);
    header.lru_k = config_.lru_k;
    header.prefetch_depth = config_.prefetch_depth;
    header.num_classes = base_->params().num_classes;
    header.num_objects = base_->NumObjects();
    header.num_pages = object_manager_->NumPages();
    // The exact stream the buffer manager's RANDOM policy was seeded
    // with, so replays are bit-exact.
    header.seed = buffer_rng.seed();
    if (config_.use_virtual_memory) header.flags |= trace::kFlagVirtualMemory;
    if (config_.flush_on_commit) header.flags |= trace::kFlagCommitFlush;
    if (config_.failure_mtbf_ms > 0.0) {
      header.flags |= trace::kFlagCrashHazard;
    }
    trace_writer_ =
        std::make_unique<trace::Writer>(config_.trace_path, header);
    trace_recorder_ = std::make_unique<trace::Recorder>(trace_writer_.get());
    buffering_->SetRecorder(trace_recorder_.get());
    object_manager_->SetRecorder(trace_recorder_.get());
    tm_->SetRecorder(trace_recorder_.get());
  }
  RegisterMetrics();
  if (config_.observe || !config_.profile_path.empty()) {
    // Span capture (for the Chrome trace) only when a path asks for it:
    // the aggregate per-actor totals alone need no per-event storage.
    profiler_ = std::make_unique<obs::SimProfiler>(
        /*capture_spans=*/!config_.profile_path.empty());
    profiler_->Attach(scheduler_);
  }
}

VoodbSystem::~VoodbSystem() {
  FinishTrace();
  FinishProfile();
}

void VoodbSystem::FinishProfile() {
  if (profiler_ == nullptr || config_.profile_path.empty()) return;
  if (profile_written_) return;
  profile_written_ = true;
  profiler_->WriteChromeTrace(config_.profile_path);
}

void VoodbSystem::RegisterMetrics() {
  tm_->RegisterMetrics(metrics_);  // also registers the lock manager
  buffering_->RegisterMetrics(metrics_);
  object_manager_->RegisterMetrics(metrics_);
  clustering_->RegisterMetrics(metrics_);
  io_->RegisterMetrics(metrics_);
  network_->RegisterMetrics(metrics_);
  metrics_.RegisterGauge("sim.now_ms", [this] { return scheduler_->Now(); });
  metrics_.RegisterGauge("sim.executed_events", [this] {
    return static_cast<double>(scheduler_->ExecutedEvents());
  });
  // Kernel event-list counters: the scheduler already increments these
  // cells on its hot path, so registering pointers costs nothing.  Note
  // the heap/lane split is a per-scheduler performance detail — sharded
  // runs route differently than serial ones — so identity checks compare
  // simulation state (digests, actor metrics), never sim.queue.*.
  const desp::QueueStats& qs = scheduler_->queue_stats();
  metrics_.RegisterCounter("sim.queue.heap_pushes", &qs.heap_pushes);
  metrics_.RegisterCounter("sim.queue.heap_pops", &qs.heap_pops);
  metrics_.RegisterCounter("sim.queue.lane_pushes", &qs.lane_pushes);
  metrics_.RegisterCounter("sim.queue.lane_pops", &qs.lane_pops);
  metrics_.RegisterCounter("sim.queue.skims", &qs.skims);
  metrics_.RegisterCounter("sim.queue.compactions", &qs.compactions);
}

void VoodbSystem::FinishTrace() {
  if (trace_writer_ == nullptr || trace_writer_->finished()) return;
  // Detach first: the system stays usable after the trace is finalized,
  // and a dangling recorder would throw (and overrun its chunk buffer)
  // on the next flush.
  buffering_->SetRecorder(nullptr);
  object_manager_->SetRecorder(nullptr);
  tm_->SetRecorder(nullptr);
  trace_recorder_->Flush();
  if (buffering_->DroppedWhileRecording()) {
    trace_writer_->AddFlags(trace::kFlagBufferDrop);
  }
  trace_writer_->Finish(buffering_->TraceCountersNow());
}

PhaseMetrics VoodbSystem::RunTransactions(ocb::WorkloadSource& workload,
                                          uint64_t n) {
  return Drive(workload, nullptr, n);
}

PhaseMetrics VoodbSystem::RunTransactionsOfKind(ocb::WorkloadSource& workload,
                                                ocb::TransactionKind kind,
                                                uint64_t n) {
  return Drive(workload, &kind, n);
}

PhaseMetrics VoodbSystem::Drive(ocb::WorkloadSource& external_workload,
                                const ocb::TransactionKind* forced_kind,
                                uint64_t n) {
  // workload_source = trace / ycsb_zipf substitutes the configured
  // stream for whatever generator the caller handed in; every scenario
  // gains trace replay and the YCSB axis without touching its run hook.
  ocb::WorkloadSource& workload =
      trace_workload_ != nullptr
          ? static_cast<ocb::WorkloadSource&>(*trace_workload_)
      : ycsb_workload_ != nullptr
          ? static_cast<ocb::WorkloadSource&>(*ycsb_workload_)
          : external_workload;
  const Snapshot before = Take();
  if (n == 0) return Delta(before);

  // The Users active resource: NUSERS independent users draw transactions
  // from the shared generator, think, submit, and repeat until the phase's
  // n transactions have been issued.
  struct UsersDriver {
    VoodbSystem* sys;
    ocb::WorkloadSource* workload;
    const ocb::TransactionKind* forced_kind;
    uint64_t to_issue;
    uint64_t outstanding = 0;
    desp::RandomStream think_rng;
    double think_time_ms;

    void UserLoop(uint32_t user) {
      if (to_issue == 0) {
        // Phase exhausted; the user retires.  Once the last in-flight
        // transaction commits, the phase ends — even if hazard events
        // are still armed on the scheduler.
        if (outstanding == 0) sys->scheduler_->Stop();
        return;
      }
      --to_issue;
      ++outstanding;
      ocb::Transaction txn = forced_kind != nullptr
                                 ? workload->NextOfKind(*forced_kind)
                                 : workload->Next();
      // Transaction markers frame the object stream the Object Manager
      // records, carrying the issuing user's id (format v2) so
      // concurrent runs replay as per-user transaction streams.
      sys->RecordTxnBegin(txn.kind, user);
      auto submit = [this, user, txn = std::move(txn)]() mutable {
        sys->tm_->Submit(std::move(txn), [this, user]() { AfterCommit(user); });
      };
      if (think_time_ms > 0.0) {
        sys->scheduler_->Schedule(think_rng.Exponential(think_time_ms),
                                 std::move(submit));
      } else {
        submit();
      }
    }

    void AfterCommit(uint32_t user) {
      --outstanding;
      sys->RecordTxnEnd();
      // Automatic triggering happens at transaction boundaries.
      if (sys->config_.auto_clustering &&
          sys->clustering_->ShouldTrigger()) {
        sys->clustering_->PerformClustering(
            [this, user](ClusteringMetrics) { UserLoop(user); });
        return;
      }
      UserLoop(user);
    }
  };

  UsersDriver driver{this,
                     &workload,
                     forced_kind,
                     n,
                     0,
                     rng_.Derive(0x7817 + tm_->committed()),
                     base_->params().think_time_ms};
  const uint32_t active_users =
      static_cast<uint32_t>(std::min<uint64_t>(config_.num_users, n));
  for (uint32_t u = 0; u < active_users; ++u) driver.UserLoop(u);
  scheduler_->Run();
  VOODB_CHECK_MSG(driver.to_issue == 0 && driver.outstanding == 0,
                  "phase ended with unfinished work");
  return Delta(before);
}

void VoodbSystem::RecordTxnBegin(ocb::TransactionKind kind, uint32_t user) {
  if (trace_recorder_ == nullptr) return;
  trace_recorder_->OnTxnBegin(static_cast<uint64_t>(kind), user);
}

void VoodbSystem::RecordTxnEnd() {
  if (trace_recorder_ != nullptr) trace_recorder_->OnTxnEnd();
}

ClusteringMetrics VoodbSystem::TriggerClustering() {
  ClusteringMetrics metrics;
  bool finished = false;
  clustering_->PerformClustering([&](ClusteringMetrics m) {
    metrics = m;
    finished = true;
  });
  // Step (don't drain): armed hazard events may outlive the
  // reorganization.
  while (!finished && scheduler_->Step()) {
  }
  VOODB_CHECK_MSG(finished, "clustering did not complete");
  return metrics;
}

VoodbSystem::Snapshot VoodbSystem::Take() const {
  Snapshot s;
  s.ios = io_->total_ios();
  s.reads = io_->reads();
  s.writes = io_->writes();
  s.hits = buffering_->hits();
  s.requests = buffering_->requests();
  s.committed = tm_->committed();
  s.operations = tm_->object_operations();
  s.restarts = tm_->restarts();
  s.net_bytes = network_->bytes_transferred();
  s.response_count = tm_->response_times().count();
  s.response_sum = tm_->response_times().sum();
  s.time = scheduler_->Now();
  s.response_histogram = tm_->response_histogram();
  if (tm_->cc_protocol() != nullptr) {
    // Under wait_die this reads the wrapped LockManager's histogram —
    // the pre-subsystem series, unchanged.
    s.lock_wait_histogram = tm_->cc_protocol()->wait_histogram();
  }
  s.disk_service_histogram = io_->service_histogram();
  if (tracer_ != nullptr) s.component_histograms = tracer_->components();
  return s;
}

PhaseMetrics VoodbSystem::Delta(const Snapshot& before) const {
  const Snapshot after = Take();
  PhaseMetrics m;
  m.transactions = after.committed - before.committed;
  m.object_accesses = after.operations - before.operations;
  m.transaction_restarts = after.restarts - before.restarts;
  m.total_ios = after.ios - before.ios;
  m.reads = after.reads - before.reads;
  m.writes = after.writes - before.writes;
  m.buffer_hits = after.hits - before.hits;
  m.buffer_requests = after.requests - before.requests;
  m.network_bytes = after.net_bytes - before.net_bytes;
  m.sim_time_ms = after.time - before.time;
  const uint64_t responses = after.response_count - before.response_count;
  m.mean_response_ms =
      responses == 0
          ? 0.0
          : (after.response_sum - before.response_sum) /
                static_cast<double>(responses);
  m.response_histogram =
      after.response_histogram.DeltaSince(before.response_histogram);
  m.lock_wait_histogram =
      after.lock_wait_histogram.DeltaSince(before.lock_wait_histogram);
  m.disk_service_histogram =
      after.disk_service_histogram.DeltaSince(before.disk_service_histogram);
  m.component_histograms =
      after.component_histograms.DeltaSince(before.component_histograms);
  // The histogram's tracked max is authoritative (run-cumulative: the
  // per-bucket counts are exact deltas, min/max carry over — see
  // desp::LogHistogram::DeltaSince).
  m.max_response_ms = m.response_histogram.max();
  return m;
}

}  // namespace voodb::core
