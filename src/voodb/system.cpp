#include "voodb/system.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace voodb::core {

VoodbSystem::VoodbSystem(VoodbConfig config, const ocb::ObjectBase* base,
                         std::unique_ptr<cluster::ClusteringPolicy> policy,
                         uint64_t seed)
    : config_(config),
      base_(base),
      scheduler_(config.event_queue),
      rng_(seed) {
  config_.Validate();
  VOODB_CHECK_MSG(base_ != nullptr, "system needs an object base");
  object_manager_ = std::make_unique<ObjectManagerActor>(
      &scheduler_, base_, config_.page_size, config_.initial_placement,
      config_.storage_overhead);
  io_ = std::make_unique<IoSubsystemActor>(&scheduler_, config_.disk);
  network_ = std::make_unique<NetworkActor>(&scheduler_,
                                            config_.network_throughput_mbps);
  buffering_ = std::make_unique<BufferingManagerActor>(
      &scheduler_, config_, object_manager_.get(), io_.get(),
      rng_.Derive(0xB0FF));
  clustering_ = std::make_unique<ClusteringManagerActor>(
      &scheduler_, std::move(policy), object_manager_.get(), buffering_.get(),
      io_.get());
  tm_ = std::make_unique<TransactionManagerActor>(
      &scheduler_, config_, object_manager_.get(), buffering_.get(),
      clustering_.get(), network_.get());
  if (config_.disk_fault_prob > 0.0) {
    io_->SetFaultModel(config_.disk_fault_prob, config_.disk_fault_retry_ms,
                       config_.disk_fault_max_retries, rng_.Derive(0xFA17));
  }
  if (config_.failure_mtbf_ms > 0.0) {
    FailureParameters fp;
    fp.mtbf_ms = config_.failure_mtbf_ms;
    fp.recovery_base_ms = config_.recovery_base_ms;
    fp.recovery_per_dirty_page_ms = config_.recovery_per_dirty_page_ms;
    failures_ = std::make_unique<FailureInjectorActor>(
        &scheduler_, fp, buffering_.get(), io_.get(), rng_.Derive(0xC7A5));
    failures_->Arm();
  }
}

PhaseMetrics VoodbSystem::RunTransactions(ocb::WorkloadGenerator& workload,
                                          uint64_t n) {
  return Drive(workload, nullptr, n);
}

PhaseMetrics VoodbSystem::RunTransactionsOfKind(ocb::WorkloadGenerator& workload,
                                                ocb::TransactionKind kind,
                                                uint64_t n) {
  return Drive(workload, &kind, n);
}

PhaseMetrics VoodbSystem::Drive(ocb::WorkloadGenerator& workload,
                                const ocb::TransactionKind* forced_kind,
                                uint64_t n) {
  const Snapshot before = Take();
  if (n == 0) return Delta(before);

  // The Users active resource: NUSERS independent users draw transactions
  // from the shared generator, think, submit, and repeat until the phase's
  // n transactions have been issued.
  struct UsersDriver {
    VoodbSystem* sys;
    ocb::WorkloadGenerator* workload;
    const ocb::TransactionKind* forced_kind;
    uint64_t to_issue;
    uint64_t outstanding = 0;
    desp::RandomStream think_rng;
    double think_time_ms;

    void UserLoop() {
      if (to_issue == 0) {
        // Phase exhausted; the user retires.  Once the last in-flight
        // transaction commits, the phase ends — even if hazard events
        // are still armed on the scheduler.
        if (outstanding == 0) sys->scheduler_.Stop();
        return;
      }
      --to_issue;
      ++outstanding;
      ocb::Transaction txn = forced_kind != nullptr
                                 ? workload->NextOfKind(*forced_kind)
                                 : workload->Next();
      auto submit = [this, txn = std::move(txn)]() mutable {
        sys->tm_->Submit(std::move(txn), [this]() { AfterCommit(); });
      };
      if (think_time_ms > 0.0) {
        sys->scheduler_.Schedule(think_rng.Exponential(think_time_ms),
                                 std::move(submit));
      } else {
        submit();
      }
    }

    void AfterCommit() {
      --outstanding;
      // Automatic triggering happens at transaction boundaries.
      if (sys->config_.auto_clustering &&
          sys->clustering_->ShouldTrigger()) {
        sys->clustering_->PerformClustering(
            [this](ClusteringMetrics) { UserLoop(); });
        return;
      }
      UserLoop();
    }
  };

  UsersDriver driver{this,
                     &workload,
                     forced_kind,
                     n,
                     0,
                     rng_.Derive(0x7817 + tm_->committed()),
                     base_->params().think_time_ms};
  const uint32_t active_users =
      static_cast<uint32_t>(std::min<uint64_t>(config_.num_users, n));
  for (uint32_t u = 0; u < active_users; ++u) driver.UserLoop();
  scheduler_.Run();
  VOODB_CHECK_MSG(driver.to_issue == 0 && driver.outstanding == 0,
                  "phase ended with unfinished work");
  return Delta(before);
}

ClusteringMetrics VoodbSystem::TriggerClustering() {
  ClusteringMetrics metrics;
  bool finished = false;
  clustering_->PerformClustering([&](ClusteringMetrics m) {
    metrics = m;
    finished = true;
  });
  // Step (don't drain): armed hazard events may outlive the
  // reorganization.
  while (!finished && scheduler_.Step()) {
  }
  VOODB_CHECK_MSG(finished, "clustering did not complete");
  return metrics;
}

VoodbSystem::Snapshot VoodbSystem::Take() const {
  Snapshot s;
  s.ios = io_->total_ios();
  s.reads = io_->reads();
  s.writes = io_->writes();
  s.hits = buffering_->hits();
  s.requests = buffering_->requests();
  s.committed = tm_->committed();
  s.operations = tm_->object_operations();
  s.restarts = tm_->restarts();
  s.net_bytes = network_->bytes_transferred();
  s.response_count = tm_->response_times().count();
  s.response_sum = tm_->response_times().sum();
  s.time = scheduler_.Now();
  return s;
}

PhaseMetrics VoodbSystem::Delta(const Snapshot& before) const {
  const Snapshot after = Take();
  PhaseMetrics m;
  m.transactions = after.committed - before.committed;
  m.object_accesses = after.operations - before.operations;
  m.transaction_restarts = after.restarts - before.restarts;
  m.total_ios = after.ios - before.ios;
  m.reads = after.reads - before.reads;
  m.writes = after.writes - before.writes;
  m.buffer_hits = after.hits - before.hits;
  m.buffer_requests = after.requests - before.requests;
  m.network_bytes = after.net_bytes - before.net_bytes;
  m.sim_time_ms = after.time - before.time;
  const uint64_t responses = after.response_count - before.response_count;
  m.mean_response_ms =
      responses == 0
          ? 0.0
          : (after.response_sum - before.response_sum) /
                static_cast<double>(responses);
  m.max_response_ms = tm_->response_times().max();
  return m;
}

}  // namespace voodb::core
