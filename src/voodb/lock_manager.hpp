/// \file lock_manager.hpp
/// \brief Object-level two-phase locking with wait-die deadlock handling.
///
/// The paper's §5 lists concurrency control among the aspects "VOODB
/// could even be extended to take into account".  This module implements
/// that extension: when VoodbConfig::use_lock_manager is set, the
/// Transaction Manager acquires real shared/exclusive locks per object
/// operation instead of charging the fixed GETLOCK delay alone.
///
/// Deadlocks are prevented with the classic **wait-die** scheme: lock
/// requests carry the transaction's start timestamp; an older transaction
/// may wait for a younger holder, a younger requester conflicting with an
/// older holder is aborted ("dies") and restarted by the Transaction
/// Manager after a randomized backoff.  Wait-die is deterministic inside
/// the simulation (no timers, no cycle search) and guarantees progress.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <unordered_map>
#include <vector>

#include "desp/histogram.hpp"
#include "desp/scheduler.hpp"
#include "desp/stats.hpp"
#include "ocb/types.hpp"

namespace voodb::obs {
class MetricRegistry;
}  // namespace voodb::obs

namespace voodb::core {

/// Lock compatibility: shared (read) and exclusive (write).
enum class LockMode { kShared, kExclusive };

const char* ToString(LockMode m);

/// Counters exposed by the lock manager.
struct LockStats {
  uint64_t requests = 0;
  uint64_t immediate_grants = 0;
  uint64_t waits = 0;          ///< requests that had to queue
  uint64_t deadlock_aborts = 0;  ///< wait-die "die" decisions
  uint64_t upgrades = 0;       ///< S -> X upgrades
  desp::Tally wait_times;      ///< queueing time per granted request
  /// Full wait-time distribution (ms) per granted request — immediate
  /// grants count as 0 waits, so percentiles cover every acquisition.
  desp::LogHistogram wait_histogram;
};

/// An object-granularity 2PL lock table.
class LockManager {
 public:
  explicit LockManager(desp::Scheduler* scheduler);

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Registers a transaction with its start timestamp (wait-die age).
  /// Restarted transactions keep their original timestamp so they
  /// eventually become the oldest and cannot die forever (no livelock).
  void BeginTransaction(uint64_t txn, double timestamp);

  /// Requests a lock on `oid`.  Exactly one of the continuations fires:
  /// `granted` once the lock is held (possibly immediately), or `died`
  /// if wait-die aborts the requester.  Re-requesting a held lock in the
  /// same or weaker mode grants immediately; requesting X while holding
  /// S performs an upgrade (subject to wait-die against other holders).
  void Acquire(uint64_t txn, ocb::Oid oid, LockMode mode,
               std::function<void()> granted, std::function<void()> died);

  /// Releases every lock `txn` holds and wakes compatible waiters; the
  /// transaction is forgotten (call BeginTransaction again to restart).
  void ReleaseAll(uint64_t txn);

  /// Called at each wait-die abort decision, under the victim's trace
  /// context (observability seam: annotates the victim's span tree with
  /// the abort cause without wrapping every request's continuation).
  void SetDieHook(std::function<void()> hook) { die_hook_ = std::move(hook); }

  /// Locks currently held by `txn`.
  size_t HeldLocks(uint64_t txn) const;
  /// True when `txn` holds a lock on `oid` in at least `mode`.
  bool Holds(uint64_t txn, ocb::Oid oid, LockMode mode) const;

  const LockStats& stats() const { return stats_; }
  size_t ActiveTransactions() const { return transactions_.size(); }

  /// Registers the lock counters and wait-time histogram with `registry`.
  void RegisterMetrics(obs::MetricRegistry& registry) const;

  /// Writes the lock table (entries with waiters, plus every active
  /// transaction's age and held-lock count) to `os` — diagnostic aid.
  void DebugDump(std::ostream& os) const;

 private:
  struct Holder {
    uint64_t txn;
    LockMode mode;
  };
  struct Waiter {
    uint64_t txn;
    LockMode mode;
    double enqueued_at;
    std::function<void()> granted;
    std::function<void()> died;
    /// Requester's ambient trace context, restored around wake/die fires
    /// so they are attributed to the waiter, not the releasing event.
    uint32_t trace = 0;
  };
  struct LockEntry {
    std::vector<Holder> holders;
    std::deque<Waiter> waiters;
  };
  struct TxnState {
    double timestamp = 0.0;
    std::vector<ocb::Oid> held;  // may contain duplicates for upgrades
  };

  /// True when `mode` can be granted on `entry` for `txn` right now.
  bool Compatible(const LockEntry& entry, uint64_t txn, LockMode mode) const;
  /// Wait-die: true when `txn` (requester) is older than every
  /// conflicting holder *and* every conflicting waiter among the first
  /// `ahead_count` queue entries.  Queue positions are wait targets too:
  /// ignoring them lets cycles form through FIFO ordering (an old
  /// holder-wait plus a young queue-wait), which holder-only wait-die
  /// cannot see.
  bool MayWait(const LockEntry& entry, uint64_t txn, LockMode mode,
               size_t ahead_count) const;
  void Grant(LockEntry& entry, uint64_t txn, LockMode mode);
  void WakeWaiters(ocb::Oid oid);
  /// Re-enforces the wait-die invariant after the holder set of `oid`
  /// changed: every parked waiter that now conflicts with an *older*
  /// holder dies.  Without this, a waiter granted from the queue can
  /// become an older holder in front of younger waiters and an old-young
  /// wait cycle forms that enqueue-time wait-die cannot see.
  void EnforceWaitDie(ocb::Oid oid);

  desp::Scheduler* scheduler_;
  std::unordered_map<ocb::Oid, LockEntry> table_;
  std::unordered_map<uint64_t, TxnState> transactions_;
  LockStats stats_;
  std::function<void()> die_hook_;
};

}  // namespace voodb::core
