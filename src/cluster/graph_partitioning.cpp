#include "cluster/graph_partitioning.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "util/check.hpp"

namespace voodb::cluster {

namespace {

/// Union-find with per-root byte accounting.
class UnionFind {
 public:
  UnionFind(uint64_t n) : parent_(n), bytes_(n, 0) {
    for (uint64_t i = 0; i < n; ++i) parent_[i] = i;
  }
  uint64_t Find(uint64_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }
  /// Merges the sets of a and b when their combined bytes fit `budget`.
  bool TryUnion(uint64_t a, uint64_t b, uint64_t budget) {
    const uint64_t ra = Find(a);
    const uint64_t rb = Find(b);
    if (ra == rb) return false;
    if (bytes_[ra] + bytes_[rb] > budget) return false;
    parent_[rb] = ra;
    bytes_[ra] += bytes_[rb];
    return true;
  }
  void SetBytes(uint64_t x, uint64_t bytes) { bytes_[x] = bytes; }

 private:
  std::vector<uint64_t> parent_;
  std::vector<uint64_t> bytes_;
};

}  // namespace

void GraphPartitioningParameters::Validate() const {
  VOODB_CHECK_MSG(observation_period >= 1, "observation period must be >= 1");
  VOODB_CHECK_MSG(min_edge_weight >= 1, "min edge weight must be >= 1");
}

GraphPartitioningPolicy::GraphPartitioningPolicy(
    GraphPartitioningParameters params)
    : params_(params) {
  params_.Validate();
}

void GraphPartitioningPolicy::OnTransactionStart() {
  previous_in_txn_ = ocb::kNullOid;
}

void GraphPartitioningPolicy::OnObjectAccess(ocb::Oid oid, bool /*is_write*/) {
  stats_.AddAccess(oid);
  if (previous_in_txn_ != ocb::kNullOid && previous_in_txn_ != oid) {
    stats_.AddEdge(previous_in_txn_, oid);
  }
  previous_in_txn_ = oid;
}

void GraphPartitioningPolicy::OnTransactionEnd() {
  previous_in_txn_ = ocb::kNullOid;
  ++transactions_since_eval_;
}

bool GraphPartitioningPolicy::ShouldTrigger() const {
  if (transactions_since_eval_ < params_.observation_period) return false;
  return stats_.AnyLinkAtLeast(params_.min_edge_weight);
}

ClusteringOutcome GraphPartitioningPolicy::Recluster(
    const ocb::ObjectBase& base, const storage::Placement& current) {
  const uint64_t budget = params_.partition_byte_budget > 0
                              ? params_.partition_byte_budget
                              : current.page_size();

  // Surviving edges, heaviest first (ties by the (a, b) endpoint pair for
  // determinism; DenseStats stores undirected edges smaller-first).
  struct Edge {
    uint32_t weight;
    ocb::Oid a;
    ocb::Oid b;
  };
  std::vector<Edge> sorted;
  sorted.reserve(stats_.TrackedLinks());
  stats_.ForEachLink([&](ocb::Oid a, ocb::Oid b, uint32_t weight) {
    if (weight >= params_.min_edge_weight) sorted.push_back(Edge{weight, a, b});
  });
  std::sort(sorted.begin(), sorted.end(), [](const Edge& x, const Edge& y) {
    if (x.weight != y.weight) return x.weight > y.weight;
    if (x.a != y.a) return x.a < y.a;
    return x.b < y.b;
  });

  // Greedy edge merge under the byte budget.
  UnionFind uf(base.NumObjects());
  for (ocb::Oid oid = 0; oid < base.NumObjects(); ++oid) {
    uf.SetBytes(oid, base.SizeOf(oid));
  }
  for (const Edge& e : sorted) {
    uf.TryUnion(e.a, e.b, budget);
  }
  // Collect partitions over the touched objects only.
  std::unordered_map<uint64_t, std::vector<ocb::Oid>> groups;
  for (ocb::Oid oid : stats_.TouchedObjects()) {
    groups[uf.Find(oid)].push_back(oid);
  }

  // Order each partition by BFS over the co-access graph from its
  // hottest member; build the adjacency restricted to the partition.
  std::vector<std::vector<ocb::Oid>> clusters;
  for (auto& [root, members] : groups) {
    if (members.size() < 2) continue;
    std::sort(members.begin(), members.end(),
              [this](ocb::Oid a, ocb::Oid b) {
                const uint32_t fa = stats_.Frequency(a);
                const uint32_t fb = stats_.Frequency(b);
                if (fa != fb) return fa > fb;
                return a < b;
              });
    std::unordered_map<ocb::Oid, std::vector<ocb::Oid>> adjacency;
    for (const Edge& e : sorted) {
      if (uf.Find(e.a) != root || uf.Find(e.b) != root) continue;
      adjacency[e.a].push_back(e.b);
      adjacency[e.b].push_back(e.a);
    }
    std::vector<ocb::Oid> ordered;
    std::unordered_map<ocb::Oid, bool> visited;
    std::deque<ocb::Oid> frontier;
    frontier.push_back(members.front());
    visited[members.front()] = true;
    while (!frontier.empty()) {
      const ocb::Oid cur = frontier.front();
      frontier.pop_front();
      ordered.push_back(cur);
      const auto it = adjacency.find(cur);
      if (it == adjacency.end()) continue;
      for (ocb::Oid next : it->second) {
        if (visited[next]) continue;
        visited[next] = true;
        frontier.push_back(next);
      }
    }
    // Unconnected members (merged through other edges) keep heat order.
    for (ocb::Oid m : members) {
      if (!visited[m]) ordered.push_back(m);
    }
    if (ordered.size() >= 2) clusters.push_back(std::move(ordered));
  }
  // Deterministic cluster order: by first member's OID.
  std::sort(clusters.begin(), clusters.end(),
            [](const auto& a, const auto& b) { return a[0] < b[0]; });

  ClusteringOutcome outcome =
      FinalizeOutcome(std::move(clusters), base, current);
  Reset();
  return outcome;
}

void GraphPartitioningPolicy::Reset() {
  stats_.Clear();
  previous_in_txn_ = ocb::kNullOid;
  transactions_since_eval_ = 0;
}

}  // namespace voodb::cluster
