/// \file gay_gruenwald.hpp
/// \brief A structural dynamic clustering policy after Gay & Gruenwald.
///
/// The VOODB paper's future work (§5) plans to evaluate "the clustering
/// strategy proposed by [Gay97]" (Gay & Gruenwald, DEXA '97) as a second
/// interchangeable Clustering Manager module.  This implementation follows
/// the technique's published outline: it keeps only *per-object* access
/// heat (much cheaper to maintain than DSTC's pairwise transition
/// statistics) and groups a hot object with the objects it structurally
/// references, breadth-first, assuming traversals will follow the schema's
/// reference graph.  Where the original leaves details open we choose the
/// simplest deterministic variant and document it here:
///
/// * seeds are hot objects in decreasing heat order;
/// * expansion follows reference slots in declaration order, admitting
///   only targets whose heat reaches `min_heat`;
/// * fragments are BFS-ordered and capped at `max_cluster_size`.
#pragma once

#include <cstdint>

#include "cluster/dense_stats.hpp"
#include "cluster/policy.hpp"

namespace voodb::cluster {

/// Tunables of the Gay-Gruenwald-style policy.
struct GayGruenwaldParameters {
  /// Transactions between trigger evaluations.
  uint32_t observation_period = 100;
  /// Minimum access count for an object to seed or join a cluster.
  uint32_t min_heat = 2;
  /// Maximum objects per cluster.
  uint32_t max_cluster_size = 32;

  void Validate() const;
};

/// Heat-based structural clustering (see file comment).
class GayGruenwaldPolicy final : public ClusteringPolicy {
 public:
  explicit GayGruenwaldPolicy(GayGruenwaldParameters params = {});

  const char* name() const override { return "GAY_GRUENWALD"; }

  void OnObjectAccess(ocb::Oid oid, bool is_write) override;
  void OnTransactionEnd() override;

  bool ShouldTrigger() const override;

  ClusteringOutcome Recluster(const ocb::ObjectBase& base,
                              const storage::Placement& current) override;

  void Reset() override;

  uint64_t TrackedObjects() const { return heat_.TrackedObjects(); }
  const GayGruenwaldParameters& params() const { return params_; }

 private:
  GayGruenwaldParameters params_;
  /// Dense per-object heat (access counts); links are unused here.
  DenseStats heat_;
  uint64_t transactions_since_eval_ = 0;
};

}  // namespace voodb::cluster
