#include "cluster/dstc.hpp"

#include <algorithm>
#include <queue>

#include "util/check.hpp"

namespace voodb::cluster {

void DstcParameters::Validate() const {
  VOODB_CHECK_MSG(observation_period >= 1, "observation period must be >= 1");
  VOODB_CHECK_MSG(min_object_frequency >= 1, "Tfa must be >= 1");
  VOODB_CHECK_MSG(min_link_weight >= 1, "Tfc must be >= 1");
  VOODB_CHECK_MSG(extension_threshold >= min_link_weight,
                  "Tfe must be >= Tfc");
  VOODB_CHECK_MSG(max_cluster_size >= 2, "max cluster size must be >= 2");
}

DstcPolicy::DstcPolicy(DstcParameters params) : params_(params) {
  params_.Validate();
}

void DstcPolicy::OnTransactionStart() {
  in_transaction_ = true;
  previous_in_txn_ = ocb::kNullOid;
}

void DstcPolicy::OnObjectAccess(ocb::Oid oid, bool /*is_write*/) {
  ++observed_accesses_;
  stats_.AddAccess(oid);
  if (in_transaction_ && previous_in_txn_ != ocb::kNullOid &&
      previous_in_txn_ != oid) {
    stats_.AddLink(previous_in_txn_, oid);
  }
  previous_in_txn_ = oid;
}

void DstcPolicy::OnTransactionEnd() {
  in_transaction_ = false;
  previous_in_txn_ = ocb::kNullOid;
  ++observed_transactions_;
  ++transactions_since_eval_;
}

bool DstcPolicy::ShouldTrigger() const {
  if (transactions_since_eval_ < params_.observation_period) return false;
  // Cheap test: enough strong links collected to justify a reorganization.
  return stats_.CountLinksAtLeast(params_.min_link_weight) >=
         params_.trigger_min_links;
}

DstcPolicy::SelectedLinks DstcPolicy::SelectLinks(uint64_t num_objects) const {
  SelectedLinks selected;
  selected.row_of.assign(num_objects, SelectedLinks::kNoRow);
  stats_.ForEachLink([&](ocb::Oid from, ocb::Oid to, uint32_t weight) {
    if (weight < params_.min_link_weight) return;
    if (stats_.Frequency(from) < params_.min_object_frequency ||
        stats_.Frequency(to) < params_.min_object_frequency) {
      return;
    }
    uint32_t row = selected.row_of[from];
    if (row == SelectedLinks::kNoRow) {
      row = static_cast<uint32_t>(selected.rows.size());
      selected.row_of[from] = row;
      selected.sources.push_back(from);
      selected.rows.emplace_back();
    }
    selected.rows[row].push_back(Candidate{to, weight});
  });
  // Deterministic strongest-first order (ties by OID).
  for (std::vector<Candidate>& row : selected.rows) {
    std::sort(row.begin(), row.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.weight != b.weight) return a.weight > b.weight;
                return a.target < b.target;
              });
  }
  return selected;
}

ClusteringOutcome DstcPolicy::Recluster(const ocb::ObjectBase& base,
                                        const storage::Placement& current) {
  const SelectedLinks selected = SelectLinks(base.NumObjects());

  // Seed order: hottest objects first (deterministic; ties by OID).
  std::vector<std::pair<ocb::Oid, uint32_t>> seeds;
  seeds.reserve(stats_.TrackedObjects());
  for (ocb::Oid oid : stats_.TouchedObjects()) {
    const uint32_t freq = stats_.Frequency(oid);
    if (freq >= params_.min_object_frequency) seeds.emplace_back(oid, freq);
  }
  std::sort(seeds.begin(), seeds.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });

  std::vector<char> clustered(base.NumObjects(), 0);
  std::vector<std::vector<ocb::Oid>> clusters;
  for (const auto& [seed, freq] : seeds) {
    if (clustered[seed]) continue;
    // Grow a fragment by repeatedly absorbing the strongest surviving link
    // out of *any* fragment member (DSTC builds its clustering units from
    // the whole web of links around the seed, not a single chain).
    std::vector<ocb::Oid> fragment;
    fragment.push_back(seed);
    clustered[seed] = 1;
    // Max-heap of frontier links: (weight, -order stability via seq).
    struct Frontier {
      uint32_t weight;
      uint64_t seq;
      ocb::Oid target;
      bool operator<(const Frontier& o) const {
        if (weight != o.weight) return weight < o.weight;
        return seq > o.seq;  // earlier-pushed first among equals
      }
    };
    std::priority_queue<Frontier> frontier;
    uint64_t seq = 0;
    auto push_links = [&](ocb::Oid from) {
      const std::vector<Candidate>* row = selected.RowOf(from);
      if (row == nullptr) return;
      for (const Candidate& c : *row) {
        if (c.weight < params_.extension_threshold) break;  // sorted desc
        if (!clustered[c.target]) {
          frontier.push(Frontier{c.weight, seq++, c.target});
        }
      }
    };
    push_links(seed);
    while (fragment.size() < params_.max_cluster_size && !frontier.empty()) {
      const Frontier f = frontier.top();
      frontier.pop();
      if (clustered[f.target]) continue;  // claimed since it was pushed
      fragment.push_back(f.target);
      clustered[f.target] = 1;
      push_links(f.target);
    }
    if (fragment.size() >= 2) {
      clusters.push_back(std::move(fragment));
    } else {
      clustered[seed] = 0;  // singleton: stays where it is
    }
  }

  ClusteringOutcome outcome = FinalizeOutcome(std::move(clusters), base,
                                              current);
  // Statistics are consumed: a new observation phase starts.
  Reset();
  return outcome;
}

void DstcPolicy::Reset() {
  stats_.Clear();
  previous_in_txn_ = ocb::kNullOid;
  in_transaction_ = false;
  transactions_since_eval_ = 0;
}

}  // namespace voodb::cluster
