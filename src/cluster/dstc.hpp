/// \file dstc.hpp
/// \brief DSTC — Dynamic, Statistical and Tunable Clustering.
///
/// Re-implementation of the clustering technique of Bullat & Schneider,
/// "Dynamic Clustering in Object Database Exploiting Effective Use of
/// Relationships Between Objects" (ECOOP '96), the algorithm the VOODB
/// paper uses for its clustering experiments (§4.4, Tables 6-8).
///
/// DSTC works in phases:
///
/// 1. **Observation** — during an observation period of `observation_period`
///    transactions, the policy counts per-object access frequencies and
///    *inter-object transition statistics*: an ordered pair (a, b) is
///    strengthened every time b is accessed right after a inside one
///    transaction (that order is exactly how a traversal would like the
///    two objects laid out on disk).
/// 2. **Selection** — statistics are filtered: objects accessed fewer than
///    `min_object_frequency` times and links weaker than
///    `min_link_weight` are discarded (the Tfa / Tfc thresholds of the
///    original publication).
/// 3. **Cluster construction** — cluster fragments are grown greedily:
///    starting from the hottest unclustered object, the strongest
///    surviving link (with weight >= `extension_threshold`) is followed
///    repeatedly, producing an *ordered* fragment of at most
///    `max_cluster_size` objects.  Fragments of size 1 are dropped.
/// 4. **Reorganization** — fragments are written contiguously; the host
///    system charges the corresponding I/O (and, with physical OIDs, the
///    full reference-patching scan).
///
/// Statistics are consumed by Recluster(); a fresh observation phase then
/// begins, as in the original design where flushing the statistics frees
/// the collection structures.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/dense_stats.hpp"
#include "cluster/policy.hpp"

namespace voodb::cluster {

/// DSTC tunables (the paper's future work asks for "the right value for
/// DSTC's parameters in various conditions" — the ablation bench sweeps
/// these).
struct DstcParameters {
  /// Observation period Tobs: transactions between trigger evaluations.
  uint32_t observation_period = 100;
  /// Tfa: minimum access count for an object to join a cluster.
  uint32_t min_object_frequency = 2;
  /// Tfc: minimum transition count for a link to survive selection.
  uint32_t min_link_weight = 2;
  /// Tfe: minimum link weight to *extend* a fragment (>= Tfc).
  uint32_t extension_threshold = 2;
  /// Maximum objects per cluster fragment.
  uint32_t max_cluster_size = 16;
  /// Minimum number of surviving links for automatic triggering.
  uint32_t trigger_min_links = 1;

  void Validate() const;
};

/// The DSTC policy.
class DstcPolicy final : public ClusteringPolicy {
 public:
  explicit DstcPolicy(DstcParameters params = {});

  const char* name() const override { return "DSTC"; }

  void OnTransactionStart() override;
  void OnObjectAccess(ocb::Oid oid, bool is_write) override;
  void OnTransactionEnd() override;

  bool ShouldTrigger() const override;

  ClusteringOutcome Recluster(const ocb::ObjectBase& base,
                              const storage::Placement& current) override;

  void Reset() override;

  // --- Introspection (tests / ablation benches) ---------------------------
  uint64_t ObservedTransactions() const { return observed_transactions_; }
  uint64_t ObservedAccesses() const { return observed_accesses_; }
  uint64_t TrackedObjects() const { return stats_.TrackedObjects(); }
  uint64_t TrackedLinks() const { return stats_.TrackedLinks(); }
  const DstcParameters& params() const { return params_; }

 private:
  /// Links surviving the Tfc filter, grouped by source object.
  struct Candidate {
    ocb::Oid target;
    uint32_t weight;
  };
  /// Surviving candidates per source, strongest first.  `rows` is
  /// parallel to `sources`; `row_of` is a dense Oid-indexed lookup
  /// (one O(base) assign per selection — selection runs once per
  /// reorganization, not per access).
  struct SelectedLinks {
    std::vector<ocb::Oid> sources;  ///< sources with >= 1 candidate
    std::vector<std::vector<Candidate>> rows;  ///< parallel to sources
    std::vector<uint32_t> row_of;  ///< dense Oid -> row index (or kNoRow)
    static constexpr uint32_t kNoRow = static_cast<uint32_t>(-1);

    const std::vector<Candidate>* RowOf(ocb::Oid oid) const {
      if (oid >= row_of.size() || row_of[oid] == kNoRow) return nullptr;
      return &rows[row_of[oid]];
    }
  };
  SelectedLinks SelectLinks(uint64_t num_objects) const;

  DstcParameters params_;
  /// Dense access-frequency and directed-transition statistics.
  DenseStats stats_;
  ocb::Oid previous_in_txn_ = ocb::kNullOid;
  bool in_transaction_ = false;
  uint64_t observed_transactions_ = 0;
  uint64_t observed_accesses_ = 0;
  uint64_t transactions_since_eval_ = 0;
};

}  // namespace voodb::cluster
