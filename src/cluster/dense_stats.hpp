/// \file dense_stats.hpp
/// \brief Dense per-Oid observation statistics shared by the clustering
/// policies.
///
/// Every clustering technique in this module observes the same two kinds
/// of statistics: per-object access frequencies (DSTC's Tfa filter,
/// Gay-Gruenwald's heat) and pairwise transition counts (DSTC's directed
/// links, graph partitioning's undirected edges).  The collection hot
/// path runs on *every object access* of the simulation, so instead of
/// an `unordered_map<Oid, ...>` per statistic the state lives in dense
/// Oid-indexed arrays:
///
/// * `freq_[oid]` — access count, grown on demand (OIDs are dense);
/// * a pooled adjacency list for links: `head_[oid]` chains into one
///   flat `links_` pool of {target, weight, next} records, so counting a
///   transition is one array walk over the source's (short) chain and at
///   most one pool append — no hashing, no per-node allocation.
///
/// Touched objects are tracked in first-touch order so iteration and
/// `Clear()` cost O(touched), not O(base).
#pragma once

#include <cstdint>
#include <vector>

#include "ocb/types.hpp"

namespace voodb::cluster {

/// Dense frequency + link statistics (see file comment).
class DenseStats {
 public:
  /// Counts one access of `oid`.
  void AddAccess(ocb::Oid oid) {
    Grow(oid);
    if (freq_[oid]++ == 0) touched_.push_back(oid);
  }

  /// Strengthens the directed link `from -> to` by one.
  void AddLink(ocb::Oid from, ocb::Oid to) {
    Grow(from);
    Grow(to);
    for (uint32_t i = head_[from]; i != kNoLink; i = links_[i].next) {
      if (links_[i].target == to) {
        ++links_[i].weight;
        return;
      }
    }
    if (head_[from] == kNoLink) source_of_.push_back(from);
    links_.push_back(Link{to, head_[from], 1});
    head_[from] = static_cast<uint32_t>(links_.size() - 1);
  }

  /// Strengthens the undirected edge {a, b} (stored with the smaller
  /// endpoint as the source).
  void AddEdge(ocb::Oid a, ocb::Oid b) {
    if (a > b) {
      AddLink(b, a);
    } else {
      AddLink(a, b);
    }
  }

  /// Access count of `oid` (0 when never seen).
  uint32_t Frequency(ocb::Oid oid) const {
    return oid < freq_.size() ? freq_[oid] : 0;
  }

  /// Objects accessed at least once, in first-touch order.
  const std::vector<ocb::Oid>& TouchedObjects() const { return touched_; }

  /// Number of distinct objects observed.
  uint64_t TrackedObjects() const { return touched_.size(); }
  /// Number of distinct links observed.
  uint64_t TrackedLinks() const { return links_.size(); }

  /// Calls `fn(from, to, weight)` for every link, grouped by source in
  /// first-link order (link order within a source is most-recent-first).
  template <typename Fn>
  void ForEachLink(Fn fn) const {
    for (ocb::Oid from : source_of_) {
      for (uint32_t i = head_[from]; i != kNoLink; i = links_[i].next) {
        fn(from, links_[i].target, links_[i].weight);
      }
    }
  }

  /// True when some link's weight reaches `threshold`.
  bool AnyLinkAtLeast(uint32_t threshold) const {
    for (const Link& link : links_) {
      if (link.weight >= threshold) return true;
    }
    return false;
  }

  /// Links whose weight reaches `threshold`.
  uint64_t CountLinksAtLeast(uint32_t threshold) const {
    uint64_t n = 0;
    for (const Link& link : links_) n += link.weight >= threshold ? 1 : 0;
    return n;
  }

  /// Drops all statistics; keeps the arrays' capacity (sparse clear:
  /// O(touched objects + links)).
  void Clear() {
    for (ocb::Oid oid : touched_) freq_[oid] = 0;
    for (ocb::Oid from : source_of_) head_[from] = kNoLink;
    touched_.clear();
    source_of_.clear();
    links_.clear();
  }

 private:
  static constexpr uint32_t kNoLink = static_cast<uint32_t>(-1);

  struct Link {
    ocb::Oid target;
    uint32_t next;    ///< next link of the same source, or kNoLink
    uint32_t weight;
  };

  void Grow(ocb::Oid oid) {
    if (oid >= freq_.size()) {
      freq_.resize(oid + 1, 0);
      head_.resize(oid + 1, kNoLink);
    }
  }

  std::vector<uint32_t> freq_;       ///< access count per Oid
  std::vector<uint32_t> head_;       ///< first link per source Oid
  std::vector<Link> links_;          ///< pooled adjacency records
  std::vector<ocb::Oid> touched_;    ///< first-touch order
  std::vector<ocb::Oid> source_of_;  ///< sources in first-link order
};

}  // namespace voodb::cluster
