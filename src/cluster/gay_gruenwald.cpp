#include "cluster/gay_gruenwald.hpp"

#include <algorithm>
#include <deque>

#include "util/check.hpp"

namespace voodb::cluster {

void GayGruenwaldParameters::Validate() const {
  VOODB_CHECK_MSG(observation_period >= 1, "observation period must be >= 1");
  VOODB_CHECK_MSG(min_heat >= 1, "min heat must be >= 1");
  VOODB_CHECK_MSG(max_cluster_size >= 2, "max cluster size must be >= 2");
}

GayGruenwaldPolicy::GayGruenwaldPolicy(GayGruenwaldParameters params)
    : params_(params) {
  params_.Validate();
}

void GayGruenwaldPolicy::OnObjectAccess(ocb::Oid oid, bool /*is_write*/) {
  ++heat_[oid];
}

void GayGruenwaldPolicy::OnTransactionEnd() { ++transactions_since_eval_; }

bool GayGruenwaldPolicy::ShouldTrigger() const {
  if (transactions_since_eval_ < params_.observation_period) return false;
  for (const auto& [oid, h] : heat_) {
    if (h >= params_.min_heat) return true;
  }
  return false;
}

ClusteringOutcome GayGruenwaldPolicy::Recluster(
    const ocb::ObjectBase& base, const storage::Placement& current) {
  std::vector<std::pair<ocb::Oid, uint32_t>> seeds;
  seeds.reserve(heat_.size());
  for (const auto& [oid, h] : heat_) {
    if (h >= params_.min_heat) seeds.emplace_back(oid, h);
  }
  std::sort(seeds.begin(), seeds.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });

  auto heat_of = [this](ocb::Oid oid) -> uint32_t {
    const auto it = heat_.find(oid);
    return it == heat_.end() ? 0 : it->second;
  };

  std::vector<char> clustered(base.NumObjects(), 0);
  std::vector<std::vector<ocb::Oid>> clusters;
  for (const auto& [seed, h] : seeds) {
    if (clustered[seed]) continue;
    std::vector<ocb::Oid> fragment;
    std::deque<ocb::Oid> frontier;
    fragment.push_back(seed);
    clustered[seed] = 1;
    frontier.push_back(seed);
    while (!frontier.empty() &&
           fragment.size() < params_.max_cluster_size) {
      const ocb::Oid cursor = frontier.front();
      frontier.pop_front();
      for (ocb::Oid ref : base.Object(cursor).references) {
        if (ref == ocb::kNullOid || clustered[ref]) continue;
        if (heat_of(ref) < params_.min_heat) continue;
        fragment.push_back(ref);
        clustered[ref] = 1;
        frontier.push_back(ref);
        if (fragment.size() >= params_.max_cluster_size) break;
      }
    }
    if (fragment.size() >= 2) {
      clusters.push_back(std::move(fragment));
    } else {
      clustered[seed] = 0;
    }
  }

  ClusteringOutcome outcome =
      FinalizeOutcome(std::move(clusters), base, current);
  Reset();
  return outcome;
}

void GayGruenwaldPolicy::Reset() {
  heat_.clear();
  transactions_since_eval_ = 0;
}

}  // namespace voodb::cluster
