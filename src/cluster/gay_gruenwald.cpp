#include "cluster/gay_gruenwald.hpp"

#include <algorithm>
#include <deque>

#include "util/check.hpp"

namespace voodb::cluster {

void GayGruenwaldParameters::Validate() const {
  VOODB_CHECK_MSG(observation_period >= 1, "observation period must be >= 1");
  VOODB_CHECK_MSG(min_heat >= 1, "min heat must be >= 1");
  VOODB_CHECK_MSG(max_cluster_size >= 2, "max cluster size must be >= 2");
}

GayGruenwaldPolicy::GayGruenwaldPolicy(GayGruenwaldParameters params)
    : params_(params) {
  params_.Validate();
}

void GayGruenwaldPolicy::OnObjectAccess(ocb::Oid oid, bool /*is_write*/) {
  heat_.AddAccess(oid);
}

void GayGruenwaldPolicy::OnTransactionEnd() { ++transactions_since_eval_; }

bool GayGruenwaldPolicy::ShouldTrigger() const {
  if (transactions_since_eval_ < params_.observation_period) return false;
  for (ocb::Oid oid : heat_.TouchedObjects()) {
    if (heat_.Frequency(oid) >= params_.min_heat) return true;
  }
  return false;
}

ClusteringOutcome GayGruenwaldPolicy::Recluster(
    const ocb::ObjectBase& base, const storage::Placement& current) {
  std::vector<std::pair<ocb::Oid, uint32_t>> seeds;
  seeds.reserve(heat_.TrackedObjects());
  for (ocb::Oid oid : heat_.TouchedObjects()) {
    const uint32_t h = heat_.Frequency(oid);
    if (h >= params_.min_heat) seeds.emplace_back(oid, h);
  }
  std::sort(seeds.begin(), seeds.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });

  std::vector<char> clustered(base.NumObjects(), 0);
  std::vector<std::vector<ocb::Oid>> clusters;
  for (const auto& [seed, h] : seeds) {
    if (clustered[seed]) continue;
    std::vector<ocb::Oid> fragment;
    std::deque<ocb::Oid> frontier;
    fragment.push_back(seed);
    clustered[seed] = 1;
    frontier.push_back(seed);
    while (!frontier.empty() &&
           fragment.size() < params_.max_cluster_size) {
      const ocb::Oid cursor = frontier.front();
      frontier.pop_front();
      // Dangling slots are skipped exactly like the workload traversals
      // skip them: a kNullOid slot simply does not exist.
      for (ocb::Oid ref : base.References(cursor)) {
        if (ref == ocb::kNullOid || clustered[ref]) continue;
        if (heat_.Frequency(ref) < params_.min_heat) continue;
        fragment.push_back(ref);
        clustered[ref] = 1;
        frontier.push_back(ref);
        if (fragment.size() >= params_.max_cluster_size) break;
      }
    }
    if (fragment.size() >= 2) {
      clusters.push_back(std::move(fragment));
    } else {
      clustered[seed] = 0;
    }
  }

  ClusteringOutcome outcome =
      FinalizeOutcome(std::move(clusters), base, current);
  Reset();
  return outcome;
}

void GayGruenwaldPolicy::Reset() {
  heat_.Clear();
  transactions_since_eval_ = 0;
}

}  // namespace voodb::cluster
