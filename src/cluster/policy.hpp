/// \file policy.hpp
/// \brief The Clustering Manager's pluggable policy interface.
///
/// In the VOODB knowledge model (Fig. 4) the Clustering Manager is the
/// *only* component that changes when two clustering algorithms are
/// compared.  This interface captures its three functioning rules:
///
/// * "Perform treatment related to clustering (statistics collection)" —
///   the On* observation callbacks, invoked after each object operation;
/// * automatic / external triggering — ShouldTrigger();
/// * "Perform Clustering" — Recluster(), which computes a new object
///   order.  The *cost* of applying that order is charged by the host
///   system (the DES model or an emulator), because it depends on the
///   host's OID scheme: logical OIDs touch only moved pages, physical
///   OIDs force a full database scan to patch references (paper §4.4).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ocb/object_base.hpp"
#include "ocb/types.hpp"
#include "storage/placement.hpp"

namespace voodb::cluster {

/// Result of one reorganization decision.
struct ClusteringOutcome {
  /// False when the policy found nothing worth moving.
  bool reorganized = false;
  /// The cluster fragments built (ordered object sequences, size >= 2).
  std::vector<std::vector<ocb::Oid>> clusters;
  /// Complete new storage order: clusters first, then remaining objects
  /// in their previous order.  A permutation of all OIDs.
  std::vector<ocb::Oid> new_order;
  /// Objects that changed position w.r.t. the previous placement.
  std::vector<ocb::Oid> moved_objects;

  uint64_t NumClusters() const { return clusters.size(); }
  double MeanClusterSize() const;
};

/// Interface of a clustering technique (Table 3's CLUSTP parameter).
class ClusteringPolicy {
 public:
  virtual ~ClusteringPolicy() = default;

  virtual const char* name() const = 0;

  /// Observation callbacks, driven by the Transaction Manager.
  virtual void OnTransactionStart() {}
  virtual void OnObjectAccess(ocb::Oid oid, bool is_write) = 0;
  virtual void OnTransactionEnd() {}

  /// Automatic triggering: true when collected statistics warrant a
  /// reorganization.  The Users may also trigger externally by calling
  /// Recluster() directly (knowledge model: "External triggering").
  virtual bool ShouldTrigger() const = 0;

  /// Computes the reorganization against the current placement.
  /// Consumes the collected statistics (a new observation phase starts).
  virtual ClusteringOutcome Recluster(const ocb::ObjectBase& base,
                                      const storage::Placement& current) = 0;

  /// Drops all collected statistics.
  virtual void Reset() {}
};

/// CLUSTP = None: observes nothing, never triggers.
class NoClustering final : public ClusteringPolicy {
 public:
  const char* name() const override { return "NONE"; }
  void OnObjectAccess(ocb::Oid, bool) override {}
  bool ShouldTrigger() const override { return false; }
  ClusteringOutcome Recluster(const ocb::ObjectBase&,
                              const storage::Placement&) override {
    return ClusteringOutcome{};
  }
};

/// Helper shared by policies: completes `clusters` into a full storage
/// order (clusters first, then every unclustered object in its current
/// placement order) and computes the moved set.
ClusteringOutcome FinalizeOutcome(
    std::vector<std::vector<ocb::Oid>> clusters,
    const ocb::ObjectBase& base, const storage::Placement& current);

}  // namespace voodb::cluster
