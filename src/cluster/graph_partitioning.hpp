/// \file graph_partitioning.hpp
/// \brief Trace-driven greedy graph partitioning clustering.
///
/// The paper's related work discusses CLAB (Tsangaris & Naughton,
/// SIGMOD '92), "designed to compare graph partitioning algorithms
/// applied to object clustering".  This module provides such an
/// algorithm as a third interchangeable Clustering Manager module:
///
/// * **observation** builds an *undirected* co-access graph: the weight
///   of edge {a, b} counts how often a and b were accessed consecutively
///   in a transaction (either direction — partitioning, unlike DSTC's
///   ordered fragments, is symmetric);
/// * **partitioning** runs the classic greedy edge-merge (Kruskal-style):
///   edges are visited by decreasing weight and their endpoints'
///   partitions merged with a union-find, subject to a per-partition
///   *byte* budget (a disk page) — the textbook "greedy graph
///   partitioning" (GGP) heuristic;
/// * **ordering** inside a partition is a BFS over the co-access graph
///   from the partition's hottest member, approximating traversal order.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/dense_stats.hpp"
#include "cluster/policy.hpp"

namespace voodb::cluster {

/// Tunables of the graph-partitioning policy.
struct GraphPartitioningParameters {
  /// Transactions between trigger evaluations.
  uint32_t observation_period = 100;
  /// Minimum edge weight for an edge to participate in partitioning.
  uint32_t min_edge_weight = 2;
  /// Byte budget per partition; 0 means "one disk page" (set from the
  /// placement's page size at Recluster time).
  uint64_t partition_byte_budget = 0;

  void Validate() const;
};

/// Greedy graph partitioning (GGP) policy.
class GraphPartitioningPolicy final : public ClusteringPolicy {
 public:
  explicit GraphPartitioningPolicy(GraphPartitioningParameters params = {});

  const char* name() const override { return "GRAPH_PARTITIONING"; }

  void OnTransactionStart() override;
  void OnObjectAccess(ocb::Oid oid, bool is_write) override;
  void OnTransactionEnd() override;

  bool ShouldTrigger() const override;

  ClusteringOutcome Recluster(const ocb::ObjectBase& base,
                              const storage::Placement& current) override;

  void Reset() override;

  uint64_t TrackedEdges() const { return stats_.TrackedLinks(); }
  const GraphPartitioningParameters& params() const { return params_; }

 private:
  GraphPartitioningParameters params_;
  /// Dense per-object frequencies plus the undirected co-access edges
  /// (stored smaller-endpoint-first in the pooled adjacency).
  DenseStats stats_;
  ocb::Oid previous_in_txn_ = ocb::kNullOid;
  uint64_t transactions_since_eval_ = 0;
};

}  // namespace voodb::cluster
