#include "cluster/policy.hpp"

#include "util/check.hpp"

namespace voodb::cluster {

double ClusteringOutcome::MeanClusterSize() const {
  if (clusters.empty()) return 0.0;
  uint64_t total = 0;
  for (const auto& c : clusters) total += c.size();
  return static_cast<double>(total) / static_cast<double>(clusters.size());
}

ClusteringOutcome FinalizeOutcome(
    std::vector<std::vector<ocb::Oid>> clusters, const ocb::ObjectBase& base,
    const storage::Placement& current) {
  ClusteringOutcome outcome;
  outcome.clusters = std::move(clusters);
  if (outcome.clusters.empty()) return outcome;
  outcome.reorganized = true;

  const uint64_t no = base.NumObjects();
  std::vector<char> in_cluster(no, 0);
  outcome.new_order.reserve(no);
  for (const auto& cluster : outcome.clusters) {
    VOODB_CHECK_MSG(cluster.size() >= 2, "clusters must have >= 2 objects");
    for (ocb::Oid oid : cluster) {
      VOODB_CHECK_MSG(oid < no, "cluster oid out of range");
      VOODB_CHECK_MSG(!in_cluster[oid], "object in two clusters");
      in_cluster[oid] = 1;
      outcome.new_order.push_back(oid);
    }
  }
  // Remaining objects keep their current relative order.
  for (storage::PageId page = 0; page < current.NumPages(); ++page) {
    for (ocb::Oid oid : current.ObjectsOn(page)) {
      if (!in_cluster[oid]) outcome.new_order.push_back(oid);
    }
  }
  VOODB_CHECK_MSG(outcome.new_order.size() == no,
                  "new order must be a permutation of all OIDs");

  // Moved set: exactly the clustered objects.  A logical-OID system
  // relocates cluster fragments into fresh pages and leaves unclustered
  // objects where they are; a physical-OID system additionally rewrites
  // every page to patch references (charged by the host, not here).
  for (const auto& cluster : outcome.clusters) {
    outcome.moved_objects.insert(outcome.moved_objects.end(), cluster.begin(),
                                 cluster.end());
  }
  return outcome;
}

}  // namespace voodb::cluster
