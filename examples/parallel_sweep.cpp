/// \file parallel_sweep.cpp
/// \brief The experiment farm in ~60 lines: declare a cartesian sweep
/// grid over VOODB parameters, run every (cell × replication) work item
/// concurrently on all cores, and export machine-readable results.
///
/// The farm is bit-deterministic: rerun this with --threads=1 and the
/// table is identical, digit for digit (same seeds, same ordered
/// reduction — see src/exp/farm.hpp).
///
/// Build & run:
///   cmake -B build -S . && cmake --build build -j
///   ./build/parallel_sweep [--threads=N]
#include <iostream>

#include "exp/executor.hpp"
#include "exp/grid.hpp"
#include "exp/report.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace voodb;

  util::CliArgs args(argc, argv);
  const auto threads = static_cast<size_t>(args.GetInt("threads", 0));
  const auto replications =
      static_cast<uint64_t>(args.GetInt("replications", 10));
  args.RejectUnknown();

  // 1. The experiment every cell shares: a centralized system under the
  //    OCB mixed workload (shrunk base for a fast demo).
  core::ExperimentConfig ec;
  ec.system.system_class = core::SystemClass::kCentralized;
  ec.workload.num_classes = 20;
  ec.workload.num_objects = 5000;
  ec.workload.hot_transactions = 300;
  ec.replications = replications;
  ec.base_seed = 42;

  // 2. The sweep: buffer size × multiprogramming level, by name.
  exp::SweepGrid grid;
  grid.Axis("buffer_pages", {120, 500, 2000})
      .Axis("multiprogramming_level", {1, 4, 8});

  // 3. Run all 9 cells × replications work items on one thread pool.
  std::cout << "Running " << grid.NumPoints() << " cells x " << replications
            << " replications on "
            << (threads == 0 ? exp::ThreadPool::HardwareThreads() : threads)
            << " threads...\n";
  const std::vector<exp::GridCell> cells =
      exp::RunExperimentGrid(ec, grid, threads);

  // 4. Human-readable summary...
  util::TextTable table(
      {"Cell", "Mean I/Os", "±CI", "Hit rate", "Resp (ms)"});
  for (const exp::GridCell& cell : cells) {
    const desp::ConfidenceInterval ci = cell.result.Interval("total_ios");
    table.AddRow({cell.point.Label(), util::FormatDouble(ci.mean, 1),
                  util::FormatDouble(ci.half_width, 1),
                  util::FormatDouble(cell.result.Metric("hit_rate").mean(), 3),
                  util::FormatDouble(
                      cell.result.Metric("mean_response_ms").mean(), 2)});
  }
  table.Print(std::cout);

  // 5. ...and the machine-readable export (manifest + every metric).
  exp::RunManifest manifest;
  manifest.name = "parallel_sweep_demo";
  manifest.base_seed = ec.base_seed;
  manifest.replications = replications;
  manifest.threads = threads;
  manifest.notes.emplace_back("workload", "OCB NC=20 NO=5000 HOTN=300");
  exp::WriteFile("parallel_sweep.json", exp::GridToJson(manifest, cells));
  exp::WriteFile("parallel_sweep.csv", exp::GridToCsv(cells, 0.95));
  std::cout << "Wrote parallel_sweep.json and parallel_sweep.csv\n";
  return 0;
}
