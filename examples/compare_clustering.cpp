/// \file compare_clustering.cpp
/// \brief The paper's headline use case: comparing object clustering
/// techniques *a priori*, without implementing them in a real OODB.
///
/// Runs the same hot traversal workload on a simulated Texas store under
/// three interchangeable Clustering Manager modules (CLUSTP): None, DSTC
/// (Bullat & Schneider '96) and a Gay-Gruenwald-style structural policy
/// ([Gay97], the paper's future-work candidate), then compares usage
/// before/after reorganization and the reorganization overhead.
#include <iostream>
#include <memory>

#include "cluster/dstc.hpp"
#include "cluster/gay_gruenwald.hpp"
#include "desp/random.hpp"
#include "ocb/workload.hpp"
#include "util/table.hpp"
#include "voodb/catalog.hpp"
#include "voodb/system.hpp"

namespace {

struct Row {
  const char* name;
  std::unique_ptr<voodb::cluster::ClusteringPolicy> policy;
};

}  // namespace

int main() {
  using namespace voodb;

  // The DSTC experiment conditions of §4.4: depth-3 hierarchy traversals
  // over a hot set of roots, on the mid-sized base (scaled down 4x here
  // to keep the example snappy).
  ocb::OcbParameters workload;
  workload.num_classes = 50;
  workload.num_objects = 5000;
  workload.hierarchy_depth = 3;
  workload.root_region = 12;
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(workload);

  Row rows[3];
  rows[0] = {"None", nullptr};
  rows[1] = {"DSTC", std::make_unique<cluster::DstcPolicy>()};
  rows[2] = {"Gay-Gruenwald",
             std::make_unique<cluster::GayGruenwaldPolicy>()};

  util::TextTable table({"Clustering", "Pre I/Os", "Overhead", "Post I/Os",
                         "Gain", "Clusters", "Mean size"});
  for (Row& row : rows) {
    core::VoodbConfig config = core::SystemCatalog::Texas();
    core::VoodbSystem system(config, &base, std::move(row.policy), 7);
    ocb::WorkloadGenerator generator(&base, desp::RandomStream(7));

    // Phase 1: usage before clustering (the policy observes).
    const core::PhaseMetrics pre = system.RunTransactionsOfKind(
        generator, ocb::TransactionKind::kHierarchyTraversal, 500);
    // Phase 2: the Users demand a reorganization (external trigger).
    const core::ClusteringMetrics reorg = system.TriggerClustering();
    // Phase 3: usage on the reorganized base, from a cold start.
    system.DropBuffer();
    const core::PhaseMetrics post = system.RunTransactionsOfKind(
        generator, ocb::TransactionKind::kHierarchyTraversal, 500);

    const double gain =
        post.total_ios > 0
            ? static_cast<double>(pre.total_ios) /
                  static_cast<double>(post.total_ios)
            : 1.0;
    table.AddRow({row.name, std::to_string(pre.total_ios),
                  std::to_string(reorg.overhead_ios),
                  std::to_string(post.total_ios),
                  util::FormatDouble(gain, 2),
                  std::to_string(reorg.num_clusters),
                  util::FormatDouble(reorg.mean_cluster_size, 1)});
  }
  table.Print(std::cout);
  std::cout << "\nReading: 'Gain' is pre/post usage I/Os; a technique is "
               "worthwhile when the gain amortizes the overhead over the "
               "workload's lifetime.\n";
  return 0;
}
