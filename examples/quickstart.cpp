/// \file quickstart.cpp
/// \brief VOODB in ~40 lines: generate an OCB object base, instantiate
/// the generic evaluation model as a page server, run transactions, and
/// read the performance metrics.
///
/// Build & run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart
#include <iostream>

#include "desp/random.hpp"
#include "ocb/workload.hpp"
#include "voodb/system.hpp"

int main() {
  using namespace voodb;

  // 1. Describe the object base and workload (OCB parameters).  The
  //    defaults follow the paper; we shrink the base for a fast demo.
  ocb::OcbParameters workload;
  workload.num_classes = 20;    // NC
  workload.num_objects = 5000;  // NO
  workload.seed = 1999;

  // 2. Generate the database: schema, instances, reference graph.
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(workload);
  std::cout << "Object base: " << base.NumObjects() << " objects, "
            << base.TotalBytes() / 1024 << " KiB payload, mean fanout "
            << base.MeanFanout() << "\n";

  // 3. Configure the system under evaluation (Table 3 parameters).
  core::VoodbConfig config;
  config.system_class = core::SystemClass::kPageServer;
  config.buffer_pages = 500;  // BUFFSIZE
  config.page_replacement = storage::ReplacementPolicy::kLru;

  // 4. Wire the model (no clustering module) and run 1000 transactions.
  core::VoodbSystem system(config, &base, /*policy=*/nullptr, /*seed=*/42);
  ocb::WorkloadGenerator generator(&base, desp::RandomStream(42));
  const core::PhaseMetrics metrics = system.RunTransactions(generator, 1000);

  // 5. Read the results.
  std::cout << "Transactions:      " << metrics.transactions << "\n"
            << "Object accesses:   " << metrics.object_accesses << "\n"
            << "Mean I/Os (total): " << metrics.total_ios << " ("
            << metrics.reads << " reads, " << metrics.writes << " writes)\n"
            << "Buffer hit rate:   " << metrics.HitRate() << "\n"
            << "Simulated time:    " << metrics.sim_time_ms / 1000.0 << " s\n"
            << "Mean response:     " << metrics.mean_response_ms << " ms\n"
            << "Throughput:        " << metrics.ThroughputTps() << " tps\n";
  return 0;
}
