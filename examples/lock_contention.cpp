/// \file lock_contention.cpp
/// \brief The concurrency-control extension (paper §5): real object-level
/// two-phase locks with wait-die deadlock handling, under a write-hot
/// multi-user workload.  Shows throughput, restart rate and response-time
/// percentiles as concurrency grows.
#include <iostream>

#include "desp/random.hpp"
#include "ocb/workload.hpp"
#include "util/table.hpp"
#include "voodb/system.hpp"

int main() {
  using namespace voodb;

  // A contended workload: hot roots, half the accesses are updates.
  ocb::OcbParameters workload;
  workload.num_classes = 10;
  workload.num_objects = 1000;
  workload.p_update = 0.5;
  workload.root_region = 8;
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(workload);

  util::TextTable table({"Users", "Throughput (tps)", "Restarts",
                         "Lock waits", "p50 (ms)", "p95 (ms)", "p99 (ms)"});
  for (const uint32_t users : {1u, 2u, 4u, 8u, 16u}) {
    core::VoodbConfig config;
    config.system_class = core::SystemClass::kCentralized;
    config.buffer_pages = 256;
    config.num_users = users;
    config.multiprogramming_level = users;
    config.use_lock_manager = true;  // the §5 extension
    core::VoodbSystem system(config, &base, nullptr, 31);
    ocb::WorkloadGenerator generator(&base, desp::RandomStream(31));
    const core::PhaseMetrics m = system.RunTransactions(generator, 400);

    const desp::LogHistogram& h =
        system.transaction_manager().response_histogram();
    const core::LockManager* lm = system.transaction_manager().lock_manager();
    table.AddRow({std::to_string(users),
                  util::FormatDouble(m.ThroughputTps(), 2),
                  std::to_string(m.transaction_restarts),
                  std::to_string(lm->stats().waits),
                  util::FormatDouble(h.Quantile(0.5), 1),
                  util::FormatDouble(h.Quantile(0.95), 1),
                  util::FormatDouble(h.Quantile(0.99), 1)});
  }
  table.Print(std::cout);
  std::cout << "\nReading: wait-die keeps the contended workload live "
               "(restarts instead of deadlocks), but tail latencies (p99) "
               "grow much faster than the median as users pile onto the "
               "hot objects.\n";
  return 0;
}
