/// \file failure_recovery.cpp
/// \brief The random-hazards extension (paper §5): "observe how the
/// studied OODB behaves and recovers in critical conditions".  Injects
/// transient disk faults and full system crashes while a workload runs,
/// and reports the cost of each hazard class.
#include <iostream>

#include "desp/random.hpp"
#include "ocb/workload.hpp"
#include "util/table.hpp"
#include "voodb/system.hpp"

int main() {
  using namespace voodb;

  ocb::OcbParameters workload;
  workload.num_classes = 10;
  workload.num_objects = 2000;
  workload.p_update = 0.2;
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(workload);

  struct Scenario {
    const char* name;
    double mtbf_ms;
    double fault_prob;
  };
  const Scenario scenarios[] = {
      {"healthy", 0.0, 0.0},
      {"flaky disk (2% transient faults)", 0.0, 0.02},
      {"crashes (MTBF 4 sim-seconds)", 4000.0, 0.0},
      {"both hazards", 4000.0, 0.02},
  };

  util::TextTable table({"Scenario", "I/Os", "Sim time (s)", "p99 (ms)",
                         "Crashes", "Recovery (s)", "Disk faults"});
  for (const Scenario& s : scenarios) {
    core::VoodbConfig config;
    config.system_class = core::SystemClass::kCentralized;
    config.buffer_pages = 512;
    config.failure_mtbf_ms = s.mtbf_ms;
    config.recovery_base_ms = 800.0;
    config.recovery_per_dirty_page_ms = 3.0;
    config.disk_fault_prob = s.fault_prob;
    core::VoodbSystem system(config, &base, nullptr, 37);
    ocb::WorkloadGenerator generator(&base, desp::RandomStream(37));
    const core::PhaseMetrics m = system.RunTransactions(generator, 500);

    const auto* injector = system.failure_injector();
    const auto& h = system.transaction_manager().response_histogram();
    table.AddRow(
        {s.name, std::to_string(m.total_ios),
         util::FormatDouble(m.sim_time_ms / 1000.0, 1),
         util::FormatDouble(h.Quantile(0.99), 0),
         std::to_string(injector ? injector->stats().crashes : 0),
         util::FormatDouble(
             injector ? injector->stats().total_recovery_ms / 1000.0 : 0.0,
             2),
         std::to_string(system.io_subsystem().transient_faults())});
  }
  table.Print(std::cout);
  std::cout << "\nReading: transient faults stretch time without changing "
               "the I/O count; crashes add both — every crash drops the "
               "buffer (lost pages must be re-read) and stalls the disk "
               "for base + per-dirty-page recovery.  Tail latency (p99) "
               "is the early-warning metric in both cases.\n";
  return 0;
}
