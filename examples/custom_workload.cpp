/// \file custom_workload.cpp
/// \brief Authoring a custom OCB workload and running it as a replicated
/// experiment with confidence intervals — the paper's §4.2.2 protocol
/// (pilot study, n* = n.(h/h*)^2, Student-t intervals) through the
/// high-level Experiment API.
///
/// The scenario: an update-heavy CAD-like application with a skewed
/// working set, evaluated a priori on the O2 configuration — "estimate
/// whether a given system is able to handle a given workload" (§1).
#include <iostream>

#include "voodb/catalog.hpp"
#include "voodb/experiment.hpp"

int main() {
  using namespace voodb;

  core::ExperimentConfig experiment;

  // The system under evaluation: O2 as validated in §4, with a smaller
  // server cache than the default installation and a force-at-commit
  // policy so updates hit the disk.
  experiment.system = core::SystemCatalog::O2WithCache(8.0);
  experiment.system.flush_on_commit = true;

  // A custom workload: smaller base, Zipf-skewed roots (a hot working
  // set), long stochastic walks, and 20 % updates.
  experiment.workload.num_classes = 30;
  experiment.workload.num_objects = 8000;
  experiment.workload.root_distribution = ocb::Distribution::kZipf;
  experiment.workload.zipf_skew = 0.9;
  experiment.workload.p_set = 0.10;
  experiment.workload.p_simple = 0.20;
  experiment.workload.p_hierarchy = 0.20;
  experiment.workload.p_stochastic = 0.50;
  experiment.workload.stochastic_depth = 80;
  experiment.workload.p_update = 0.20;
  experiment.workload.cold_transactions = 100;  // COLDN: warm-up
  experiment.workload.hot_transactions = 500;   // HOTN: measured
  experiment.replications = 20;

  const desp::ReplicationResult result = core::Experiment::Run(experiment);

  std::cout << "Replications: " << result.replications() << "\n\n";
  for (const std::string& metric :
       {std::string("total_ios"), std::string("writes"),
        std::string("hit_rate"), std::string("mean_response_ms"),
        std::string("throughput_tps")}) {
    const desp::ConfidenceInterval ci = result.Interval(metric, 0.95);
    std::cout << metric << ": " << ci.mean << " +- " << ci.half_width
              << "  (95% CI [" << ci.lower() << ", " << ci.upper() << "])\n";
  }

  // The paper's precision rule: are we within 5% of the sample mean with
  // 95% confidence on the headline metric?
  const desp::ConfidenceInterval ios = result.Interval("total_ios", 0.95);
  const bool precise = ios.half_width <= 0.05 * ios.mean;
  std::cout << "\nWithin 5% of the sample mean with 95% confidence: "
            << (precise ? "yes" : "no — raise --replications") << "\n";
  if (!precise && ios.half_width > 0.0) {
    const auto extra = desp::AdditionalReplications(
        result.replications(), ios.half_width, 0.05 * ios.mean);
    std::cout << "Pilot rule n* = n.(h/h*)^2 suggests " << extra
              << " additional replications.\n";
  }
  return 0;
}
