/// \file buffer_policies.cpp
/// \brief "Adjust the parameters of a buffering technique" (§1): sweeps
/// the Buffering Manager's replacement policy (PGREP) and buffer size
/// (BUFFSIZE) on one workload, the classic a-priori tuning question.
#include <iostream>

#include "desp/random.hpp"
#include "ocb/workload.hpp"
#include "util/table.hpp"
#include "voodb/system.hpp"

int main() {
  using namespace voodb;

  ocb::OcbParameters workload;
  workload.num_classes = 20;
  workload.num_objects = 8000;
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(workload);

  util::TextTable table({"PGREP", "BUFFSIZE (pages)", "Mean I/Os",
                         "Hit rate", "Mean response (ms)"});
  for (const storage::ReplacementPolicy policy :
       {storage::ReplacementPolicy::kRandom, storage::ReplacementPolicy::kFifo,
        storage::ReplacementPolicy::kLfu, storage::ReplacementPolicy::kLru,
        storage::ReplacementPolicy::kLruK, storage::ReplacementPolicy::kClock,
        storage::ReplacementPolicy::kGclock}) {
    for (const uint64_t pages : {100u, 400u}) {
      core::VoodbConfig config;
      config.system_class = core::SystemClass::kCentralized;
      config.page_replacement = policy;
      config.buffer_pages = pages;
      config.lru_k = 2;
      core::VoodbSystem system(config, &base, nullptr, 23);
      ocb::WorkloadGenerator generator(&base, desp::RandomStream(23));
      const core::PhaseMetrics m = system.RunTransactions(generator, 800);
      table.AddRow({ToString(policy), std::to_string(pages),
                    std::to_string(m.total_ios),
                    util::FormatDouble(m.HitRate(), 3),
                    util::FormatDouble(m.mean_response_ms, 2)});
    }
  }
  table.Print(std::cout);
  std::cout << "\nReading: the policy gap narrows as BUFFSIZE grows — "
               "replacement quality matters most when memory is scarce.\n";
  return 0;
}
