/// \file architecture_comparison.cpp
/// \brief "To determine the best architecture for a given purpose" (§5):
/// instantiates the generic model as each of the four system classes and
/// sweeps the number of concurrent users, showing how architecture and
/// network shape throughput and response time while server I/Os stay
/// identical.
#include <iostream>

#include "desp/random.hpp"
#include "ocb/workload.hpp"
#include "util/table.hpp"
#include "voodb/system.hpp"

int main() {
  using namespace voodb;

  ocb::OcbParameters workload;
  workload.num_classes = 20;
  workload.num_objects = 3000;
  workload.think_time_ms = 50.0;  // interactive users
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(workload);

  util::TextTable table({"SYSCLASS", "Users", "Throughput (tps)",
                         "Response (ms)", "Server I/Os", "Net KiB"});
  for (const core::SystemClass sysclass :
       {core::SystemClass::kCentralized, core::SystemClass::kObjectServer,
        core::SystemClass::kPageServer, core::SystemClass::kDbServer}) {
    for (const uint32_t users : {1u, 4u, 16u}) {
      core::VoodbConfig config;
      config.system_class = sysclass;
      config.network_throughput_mbps = 1.0;  // Table 3 default LAN
      config.buffer_pages = 800;
      config.num_users = users;
      config.multiprogramming_level = 10;
      core::VoodbSystem system(config, &base, nullptr, 11);
      ocb::WorkloadGenerator generator(&base, desp::RandomStream(11));
      const core::PhaseMetrics m = system.RunTransactions(generator, 600);
      table.AddRow({ToString(sysclass), std::to_string(users),
                    util::FormatDouble(m.ThroughputTps(), 1),
                    util::FormatDouble(m.mean_response_ms, 1),
                    std::to_string(m.total_ios),
                    std::to_string(m.network_bytes / 1024)});
    }
  }
  table.Print(std::cout);
  std::cout << "\nReading: server-side I/Os barely move across classes "
               "(same buffer, same placement), but the bytes a class "
               "ships — pages vs objects vs results — dominate response "
               "time on a slow network, and queueing amplifies it as "
               "users grow.\n";
  return 0;
}
