/// \file micro_parallel.hpp
/// \brief The conservative parallel kernel's micro bench as a catalog
/// scenario.
///
/// A multi-partition event workload (per-partition self-rescheduling
/// chains plus cross-partition pings under a fixed lookahead) executed
/// serially and on thread pools of increasing size.  Every pooled run is
/// digest-checked against the serial reference — the scenario *fails* on
/// any divergence, so the speedup column can never be bought with a
/// correctness bug.  Results land in BENCH_parallel.json through the
/// shared recorder (`bench_micro_parallel` wrapper / `voodb run
/// micro_parallel`).
///
/// Wall-clock speedup requires free hardware parallelism: on a
/// single-core box every cell times out at ~1x and only the identity
/// check is meaningful (it holds everywhere).
///
/// Protocol-knob mapping (micro benches have no model config):
///   --transactions=N   chains per partition, N*120 events each trial
///   --replications=N   timed trials per cell
#pragma once

#include "exp/scenario.hpp"

namespace voodb::bench {

/// Run hook of the `micro_parallel` scenario.
exp::ScenarioResult RunMicroParallelScenario(const exp::ScenarioContext& ctx);

}  // namespace voodb::bench
