/// \file sweeps.hpp
/// \brief The actual experiment sweeps behind each figure/table scenario.
///
/// Every function takes the workload and simulation config from the
/// caller (the scenario catalog resolves them, including `--set`
/// overrides) instead of hard-wiring them, and returns the measured
/// estimates so parity tests and the driver can compare runs without
/// scraping stdout.  Printing and BENCH_<name>.json recording still
/// happen inside.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness.hpp"
#include "ocb/parameters.hpp"
#include "voodb/config.hpp"

namespace voodb::bench {

/// Which validated system a sweep targets.
enum class TargetSystem { kO2, kTexas };

/// One evaluated sweep point: the x label plus the replicated estimates
/// of both series.
struct FigurePoint {
  std::string x;
  Estimate bench;  ///< direct-execution emulator
  Estimate sim;    ///< VOODB discrete-event model
};

/// The six NO points of Figures 6/7/9/10.
const std::vector<double>& InstancePoints();
/// The six memory points (MB) of Figures 8/11.
const std::vector<double>& MemoryPoints();

/// Figures 6/7 (O2) and 9/10 (Texas): mean number of I/Os as the number
/// of instances NO varies for a fixed schema.  `workload` is the
/// template whose `num_objects` is overridden per point; `sim_config` is
/// the simulated system; `memory_mb` feeds the emulator.  `paper_bench`
/// / `paper_sim` carry the paper's series for the points.
std::vector<FigurePoint> RunInstanceSweep(
    const RunOptions& options, TargetSystem system,
    const ocb::OcbParameters& workload, double memory_mb,
    const core::VoodbConfig& sim_config,
    const std::vector<double>& instance_points, const char* title,
    const std::vector<double>& paper_bench,
    const std::vector<double>& paper_sim);

/// Figure 8 (O2 cache size) and Figure 11 (Texas main memory): mean
/// number of I/Os as the memory budget varies on a fixed base.
/// `sim_base`'s buffer is rescaled per point via the system catalog.
std::vector<FigurePoint> RunMemorySweep(
    const RunOptions& options, TargetSystem system,
    const ocb::OcbParameters& workload, const core::VoodbConfig& sim_base,
    const std::vector<double>& memory_points, const char* title,
    const std::vector<double>& paper_bench,
    const std::vector<double>& paper_sim);

/// Tables 6-8: the DSTC experiment.  Runs pure depth-3 hierarchy
/// traversals over a hot set of roots, triggers DSTC, and measures
/// pre-clustering usage, clustering overhead, post-clustering usage and
/// cluster statistics on both the Texas emulator (physical OIDs) and the
/// VOODB simulation (logical OIDs).
struct DstcAggregate {
  Estimate pre;
  Estimate overhead;
  Estimate post;
  Estimate gain;
  Estimate clusters;
  Estimate cluster_size;
};

struct DstcComparison {
  DstcAggregate bench;
  DstcAggregate sim;
};

/// \param memory_mb 64 for the mid-size experiment (Tables 6/7), 8 for
///   the "large" one (Table 8).
DstcComparison RunDstcExperiment(const RunOptions& options, double memory_mb,
                                 const ocb::OcbParameters& workload,
                                 const core::VoodbConfig& sim_base);

}  // namespace voodb::bench
