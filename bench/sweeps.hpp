/// \file sweeps.hpp
/// \brief The actual experiment sweeps behind each figure/table harness.
#pragma once

#include <cstdint>
#include <vector>

#include "harness.hpp"

namespace voodb::bench {

/// Which validated system a sweep targets.
enum class TargetSystem { kO2, kTexas };

/// Figures 6/7 (O2) and 9/10 (Texas): mean number of I/Os as the number
/// of instances NO varies (500..20000) for a fixed number of classes NC.
/// `paper_bench` / `paper_sim` carry the paper's series for the six
/// standard NO points.
void RunInstanceSweep(const RunOptions& options, TargetSystem system,
                      uint32_t num_classes, const char* title,
                      const std::vector<double>& paper_bench,
                      const std::vector<double>& paper_sim);

/// Figure 8 (O2 cache size) and Figure 11 (Texas main memory): mean
/// number of I/Os as the memory budget varies (8..64 MB) on the fixed
/// NC=50 / NO=20000 base.
void RunMemorySweep(const RunOptions& options, TargetSystem system,
                    const char* title,
                    const std::vector<double>& paper_bench,
                    const std::vector<double>& paper_sim);

/// Tables 6-8: the DSTC experiment.  Runs pure depth-3 hierarchy
/// traversals over a hot set of roots, triggers DSTC, and measures
/// pre-clustering usage, clustering overhead, post-clustering usage and
/// cluster statistics on both the Texas emulator (physical OIDs) and the
/// VOODB simulation (logical OIDs).
struct DstcAggregate {
  Estimate pre;
  Estimate overhead;
  Estimate post;
  Estimate gain;
  Estimate clusters;
  Estimate cluster_size;
};

struct DstcComparison {
  DstcAggregate bench;
  DstcAggregate sim;
};

/// \param memory_mb 64 for the mid-size experiment (Tables 6/7), 8 for
///   the "large" one (Table 8).
DstcComparison RunDstcExperiment(const RunOptions& options, double memory_mb);

}  // namespace voodb::bench
