/// \file bench_ablation_placement.cpp
/// \brief Thin wrapper over the "ablation_placement" catalog scenario (INITPL placement ablation);
/// equivalent to `voodb run ablation_placement` with the same flags.
#include "harness.hpp"

int main(int argc, char** argv) {
  return voodb::bench::RunScenarioMain("ablation_placement", argc, argv);
}
