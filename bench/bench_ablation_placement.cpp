/// \file bench_ablation_placement.cpp
/// \brief Ablation of Table 3's INITPL: initial placement policy
/// (Sequential vs OptimizedSequential vs ReferenceDfs) under the OCB
/// mixed workload on both validated configurations.
#include <iostream>

#include "desp/random.hpp"
#include "harness.hpp"
#include "ocb/workload.hpp"
#include "voodb/catalog.hpp"
#include "voodb/system.hpp"

int main(int argc, char** argv) {
  using namespace voodb;
  using namespace voodb::bench;
  const RunOptions options = ParseOptions(
      argc, argv, "Ablation — initial object placement policy (INITPL)");

  ocb::OcbParameters wl;
  wl.num_classes = 50;
  wl.num_objects = 20000;
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(wl);

  util::TextTable table({"System", "INITPL", "Mean I/Os", "Hit rate"});
  for (const bool o2 : {true, false}) {
    for (const storage::PlacementPolicy placement :
         {storage::PlacementPolicy::kSequential,
          storage::PlacementPolicy::kOptimizedSequential,
          storage::PlacementPolicy::kReferenceDfs}) {
      const auto metrics = ReplicateMetrics(
          options, options.seed, [&](uint64_t seed, desp::MetricSink& sink) {
            core::VoodbConfig cfg = o2 ? core::SystemCatalog::O2()
                                       : core::SystemCatalog::Texas();
            cfg.event_queue = options.event_queue;
            cfg.initial_placement = placement;
            core::VoodbSystem sys(cfg, &base, nullptr, seed);
            ocb::WorkloadGenerator gen(&base,
                                       desp::RandomStream(seed).Derive(1));
            const core::PhaseMetrics m =
                sys.RunTransactions(gen, options.transactions);
            sink.Observe("total_ios", static_cast<double>(m.total_ios));
            sink.Observe("hit_rate", m.HitRate());
          });
      const Estimate ios = metrics.at("total_ios");
      const std::string x =
          std::string(o2 ? "O2 " : "Texas ") + ToString(placement);
      RecordEstimate("initpl", x, "total_ios", ios);
      RecordEstimate("initpl", x, "hit_rate", metrics.at("hit_rate"));
      table.AddRow({o2 ? "O2" : "Texas", ToString(placement), WithCi(ios),
                    util::FormatDouble(metrics.at("hit_rate").mean, 3)});
    }
  }
  std::cout << "== Ablation: initial placement (INITPL) ==\n";
  if (options.csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  std::cout << "Expectation: when the base fits in memory (Texas), "
               "ReferenceDfs — an idealized static clustering — beats "
               "OptimizedSequential, which is what leaves room for dynamic "
               "clustering to win in Tables 6-8; under heavy thrashing "
               "(O2's 16 MB cache vs a ~26 MB base) placement differences "
               "compress because most accesses miss regardless.\n";
  return 0;
}
