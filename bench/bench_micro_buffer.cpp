/// \file bench_micro_buffer.cpp
/// \brief Microbenchmarks of the Buffering Manager across replacement
/// policies (Table 3 PGREP).  Reports both throughput and the achieved
/// hit rate on a Zipf-skewed page trace as counters.
#include <benchmark/benchmark.h>

#include "desp/random.hpp"
#include "storage/buffer_manager.hpp"

namespace {

using voodb::desp::RandomStream;
using voodb::storage::BufferManager;
using voodb::storage::PageId;
using voodb::storage::ReplacementPolicy;

constexpr ReplacementPolicy kPolicies[] = {
    ReplacementPolicy::kRandom, ReplacementPolicy::kFifo,
    ReplacementPolicy::kLfu,    ReplacementPolicy::kLru,
    ReplacementPolicy::kLruK,   ReplacementPolicy::kClock,
    ReplacementPolicy::kGclock,
};

void BM_BufferAccess(benchmark::State& state) {
  const ReplacementPolicy policy = kPolicies[state.range(0)];
  constexpr uint64_t kCapacity = 1024;
  constexpr int64_t kPageSpace = 8192;
  BufferManager buffer(kCapacity, policy, RandomStream(7));
  RandomStream rng(11);
  // Pre-generate the trace so only buffer work is timed.
  std::vector<PageId> trace(1 << 16);
  for (auto& p : trace) p = static_cast<PageId>(rng.Zipf(kPageSpace, 0.9));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(buffer.Access(trace[i], false).hit);
    i = (i + 1) % trace.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["hit_rate"] = buffer.stats().HitRate();
  state.SetLabel(ToString(policy));
}
BENCHMARK(BM_BufferAccess)->DenseRange(0, 6);

void BM_BufferThrashing(benchmark::State& state) {
  // Working set far beyond capacity: eviction-dominated path.
  const ReplacementPolicy policy = kPolicies[state.range(0)];
  BufferManager buffer(64, policy, RandomStream(7));
  RandomStream rng(13);
  for (auto _ : state) {
    const auto page = static_cast<PageId>(rng.UniformInt(0, 100000));
    benchmark::DoNotOptimize(buffer.Access(page, rng.Bernoulli(0.2)).hit);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.SetLabel(ToString(policy));
}
BENCHMARK(BM_BufferThrashing)->DenseRange(0, 6);

}  // namespace

BENCHMARK_MAIN();
