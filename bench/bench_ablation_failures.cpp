/// \file bench_ablation_failures.cpp
/// \brief Ablation of the random-hazards extension: availability cost of
/// crashes as a function of MTBF, and of transient disk faults as a
/// function of the fault probability.
#include <iostream>

#include "desp/random.hpp"
#include "harness.hpp"
#include "ocb/workload.hpp"
#include "voodb/system.hpp"

int main(int argc, char** argv) {
  using namespace voodb;
  using namespace voodb::bench;
  const RunOptions options = ParseOptions(
      argc, argv, "Ablation — random hazards (crash MTBF, disk faults)");

  ocb::OcbParameters wl;
  wl.num_classes = 10;
  wl.num_objects = 2000;
  wl.p_update = 0.2;
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(wl);

  util::TextTable crash_table({"MTBF (s)", "Sim time (s)", "Crashes",
                               "Recovery (s)", "Extra I/Os vs healthy"});
  double healthy_ios = 0.0;
  for (const double mtbf_s : {0.0, 60.0, 20.0, 5.0}) {
    const auto metrics = ReplicateMetrics(
        options, options.seed, [&](uint64_t seed, desp::MetricSink& sink) {
          core::VoodbConfig cfg;
          cfg.event_queue = options.event_queue;
          cfg.system_class = core::SystemClass::kCentralized;
          cfg.buffer_pages = 512;
          cfg.failure_mtbf_ms = mtbf_s * 1000.0;
          core::VoodbSystem sys(cfg, &base, nullptr, seed);
          ocb::WorkloadGenerator gen(&base,
                                     desp::RandomStream(seed).Derive(1));
          const core::PhaseMetrics m =
              sys.RunTransactions(gen, options.transactions / 2);
          const auto* injector = sys.failure_injector();
          sink.Observe("sim_s", m.sim_time_ms / 1000.0);
          sink.Observe("crashes",
                       injector
                           ? static_cast<double>(injector->stats().crashes)
                           : 0.0);
          sink.Observe(
              "recovery_s",
              injector ? injector->stats().total_recovery_ms / 1000.0 : 0.0);
          sink.Observe("total_ios", static_cast<double>(m.total_ios));
        });
    const double ios = metrics.at("total_ios").mean;
    if (mtbf_s == 0.0) healthy_ios = ios;
    const std::string x = mtbf_s == 0.0 ? "inf"
                                        : util::FormatDouble(mtbf_s, 0);
    for (const auto& [name, estimate] : metrics) {
      RecordEstimate("crash_mtbf", x, name, estimate);
    }
    crash_table.AddRow(
        {x, WithCi(metrics.at("sim_s"), 2),
         util::FormatDouble(metrics.at("crashes").mean, 1),
         util::FormatDouble(metrics.at("recovery_s").mean, 2),
         util::FormatDouble(ios - healthy_ios, 0)});
  }
  std::cout << "== Ablation: crash MTBF ==\n";
  if (options.csv) {
    crash_table.PrintCsv(std::cout);
  } else {
    crash_table.Print(std::cout);
  }

  util::TextTable fault_table({"Fault prob", "Sim time (s)", "Faults",
                               "I/Os"});
  for (const double prob : {0.0, 0.01, 0.05, 0.2}) {
    const auto metrics = ReplicateMetrics(
        options, options.seed, [&](uint64_t seed, desp::MetricSink& sink) {
          core::VoodbConfig cfg;
          cfg.event_queue = options.event_queue;
          cfg.system_class = core::SystemClass::kCentralized;
          cfg.buffer_pages = 512;
          cfg.disk_fault_prob = prob;
          core::VoodbSystem sys(cfg, &base, nullptr, seed);
          ocb::WorkloadGenerator gen(&base,
                                     desp::RandomStream(seed).Derive(1));
          const core::PhaseMetrics m =
              sys.RunTransactions(gen, options.transactions / 2);
          sink.Observe("sim_s", m.sim_time_ms / 1000.0);
          sink.Observe("faults", static_cast<double>(
                                     sys.io_subsystem().transient_faults()));
          sink.Observe("total_ios", static_cast<double>(m.total_ios));
        });
    const std::string x = util::FormatDouble(prob, 2);
    for (const auto& [name, estimate] : metrics) {
      RecordEstimate("disk_faults", x, name, estimate);
    }
    fault_table.AddRow({x, WithCi(metrics.at("sim_s"), 2),
                        util::FormatDouble(metrics.at("faults").mean, 0),
                        util::FormatDouble(metrics.at("total_ios").mean, 0)});
  }
  std::cout << "\n== Ablation: transient disk faults ==\n";
  if (options.csv) {
    fault_table.PrintCsv(std::cout);
  } else {
    fault_table.Print(std::cout);
  }
  std::cout << "Expectation: crashes add I/Os (lost buffer re-reads) and "
               "downtime; transient faults stretch time while the I/O "
               "count stays constant.\n";
  return 0;
}
