/// \file bench_ablation_failures.cpp
/// \brief Thin wrapper over the "ablation_failures" catalog scenario (random-hazards ablation);
/// equivalent to `voodb run ablation_failures` with the same flags.
#include "harness.hpp"

int main(int argc, char** argv) {
  return voodb::bench::RunScenarioMain("ablation_failures", argc, argv);
}
