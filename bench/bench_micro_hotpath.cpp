/// \file bench_micro_hotpath.cpp
/// \brief Thin wrapper over the `micro_hotpath` catalog scenario (see
/// bench/micro_hotpath.hpp).  Writes BENCH_hotpath.json; exits non-zero
/// if the fast lane's executed event trace ever diverges from the
/// embedded heap-only baseline.
#include "harness.hpp"

int main(int argc, char** argv) {
  return voodb::bench::RunScenarioMain("micro_hotpath", argc, argv,
                                       "hotpath");
}
