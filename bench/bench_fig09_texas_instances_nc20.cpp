/// \file bench_fig09_texas_instances_nc20.cpp
/// \brief Reproduces Figure 9: Texas, mean number of I/Os vs number of
/// instances (500..20000), 20-class schema, 64 MB host.
#include "sweeps.hpp"

int main(int argc, char** argv) {
  using namespace voodb::bench;
  const RunOptions options = ParseOptions(
      argc, argv,
      "Figure 9 — mean number of I/Os depending on number of instances "
      "(Texas, 20 classes)");
  RunInstanceSweep(options, TargetSystem::kTexas, 20,
                   "Figure 9: Texas, NC=20, I/Os vs NO",
                   /*paper_bench=*/{150, 280, 500, 950, 1600, 2400},
                   /*paper_sim=*/{140, 260, 470, 900, 1500, 2300});
  return 0;
}
