/// \file bench_fig09_texas_instances_nc20.cpp
/// \brief Thin wrapper over the "fig09" catalog scenario (Figure 9: Texas, I/Os vs instances, NC=20);
/// equivalent to `voodb run fig09` with the same flags.
#include "harness.hpp"

int main(int argc, char** argv) {
  return voodb::bench::RunScenarioMain("fig09", argc, argv);
}
