#include "explain_tool.hpp"

#include <iostream>
#include <string>
#include <vector>

#include "desp/random.hpp"
#include "exp/report.hpp"
#include "exp/scenario.hpp"
#include "obs/spans.hpp"
#include "ocb/workload.hpp"
#include "scenarios.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "voodb/param_registry.hpp"
#include "voodb/sharded.hpp"
#include "voodb/system.hpp"

namespace voodb::bench {

namespace {

void ExplainUsage(std::ostream& os) {
  os << "usage:\n"
        "  voodb explain <scenario> [--top=K] [--transactions=N] "
        "[--seed=N]\n"
        "                [--set name=value ...] [--trace=PATH]\n\n"
        "Runs one fixed-seed simulation with causal span tracing and "
        "explains the\ntail: the critical-path decomposition of response "
        "time (lock wait, IO,\nnetwork, CPU, abort/retry), then the K "
        "slowest transactions' full span\ntrees as text breakdowns and as "
        "Perfetto/Chrome-trace JSON (\"off\"\ndisables the file).\n";
}

void AddComponentRow(util::TextTable* table, const char* name,
                     const desp::LogHistogram& h, double total_response) {
  const double share =
      total_response > 0.0 ? 100.0 * h.sum() / total_response : 0.0;
  table->AddRow({name, std::to_string(h.count()),
                 util::FormatDouble(h.mean(), 3),
                 util::FormatDouble(h.Quantile(0.50), 3),
                 util::FormatDouble(h.Quantile(0.95), 3),
                 util::FormatDouble(h.Quantile(0.99), 3),
                 util::FormatDouble(h.max(), 3),
                 util::FormatDouble(share, 1) + "%"});
}

int Explain(const std::string& scenario_name, int argc,
            const char* const* argv) {
  const exp::Scenario& scenario =
      exp::ScenarioRegistry::Instance().At(scenario_name);
  util::CliArgs args(argc, argv);
  const auto transactions = static_cast<uint64_t>(
      args.GetInt("transactions", 1000, "transactions to run"));
  const auto seed =
      static_cast<uint64_t>(args.GetInt("seed", 42, "RNG seed"));
  const auto top = static_cast<uint32_t>(
      args.GetInt("top", 8, "slowest-K exemplar span trees to retain"));
  const std::vector<std::string> sets = args.GetList(
      "set", "override a model parameter (name=value, repeatable)");
  const std::string trace_path = args.GetString(
      "trace", "EXPLAIN_" + scenario_name + ".trace.json",
      "Perfetto/Chrome-trace exemplar output; \"off\" disables");
  if (args.help_requested()) {
    std::cout << scenario.title << "\n\n";
    ExplainUsage(std::cout);
    std::cout << "\n" << args.Help();
    return 0;
  }
  args.RejectUnknown();
  VOODB_CHECK_MSG(top >= 1, "--top must be >= 1");
  VOODB_CHECK_MSG(scenario.system_config_used,
                  "scenario '" << scenario_name
                               << "' runs the direct-execution emulator "
                                  "only; span tracing needs the VOODB "
                                  "simulation (pick a sim scenario from "
                                  "`voodb list`)");

  core::ExperimentConfig config = scenario.base;
  const core::ParamRegistry& registry = core::ParamRegistry::Instance();
  for (const std::string& assignment : sets) {
    const size_t eq = assignment.find('=');
    VOODB_CHECK_MSG(eq != std::string::npos && eq > 0,
                    "--set expects name=value, got '" << assignment << "'");
    registry.Set(
        core::ParamTarget{&config.system, &config.workload},
        assignment.substr(0, eq), assignment.substr(eq + 1));
  }
  config.system.trace_spans = true;
  config.system.trace_exemplars = top;
  config.system.Validate();
  config.workload.Validate();

  const ocb::ObjectBase base = ocb::ObjectBase::Generate(config.workload);
  core::PhaseMetrics metrics;
  std::vector<obs::Exemplar> exemplars;
  if (config.system.shards > 1) {
    core::ShardedVoodb sharded(config.system, &base, seed);
    metrics = sharded.Run(transactions);
    exemplars = sharded.MergedExemplars();
  } else {
    core::VoodbSystem sys(config.system, &base, nullptr, seed);
    ocb::WorkloadGenerator gen(&base, desp::RandomStream(seed).Derive(1));
    metrics = sys.RunTransactions(gen, transactions);
    exemplars = sys.span_tracer()->exemplars();
  }

  // The subsystem's contract, re-checked at the reporting boundary: each
  // exemplar's components sum to its recorded response time bit-exactly.
  for (const obs::Exemplar& e : exemplars) {
    VOODB_CHECK_MSG(e.path.Sum() == e.response_ms,
                    "critical-path components of txn " << e.global_id
                        << " sum to " << e.path.Sum() << " ms, not its "
                        << e.response_ms << " ms response");
  }

  std::cout << "explained " << metrics.transactions << " transactions of '"
            << scenario_name << "' (seed " << seed << "): "
            << util::FormatDouble(metrics.sim_time_ms, 1)
            << " ms simulated, mean response "
            << util::FormatDouble(metrics.mean_response_ms, 2) << " ms, p99 "
            << util::FormatDouble(metrics.ResponseQuantileMs(0.99), 2)
            << " ms\n\n";

  const obs::ComponentHistograms& c = metrics.component_histograms;
  const double total_response = c.lock_wait.sum() + c.io.sum() +
                                c.net.sum() + c.cpu.sum() + c.retry.sum() +
                                c.other.sum();
  util::TextTable components({"Component", "Count", "Mean", "p50", "p95",
                              "p99", "Max", "Share"});
  AddComponentRow(&components, "lock_wait (ms)", c.lock_wait, total_response);
  AddComponentRow(&components, "io (ms)", c.io, total_response);
  AddComponentRow(&components, "net (ms)", c.net, total_response);
  AddComponentRow(&components, "cpu (ms)", c.cpu, total_response);
  AddComponentRow(&components, "retry (ms)", c.retry, total_response);
  AddComponentRow(&components, "other (ms)", c.other, total_response);
  std::cout << "== response time by critical-path component ==\n";
  components.Print(std::cout);

  std::cout << "\n== " << exemplars.size()
            << " slowest transactions (span trees) ==\n";
  for (const obs::Exemplar& e : exemplars) {
    std::cout << "\n";
    obs::SpanTracer::WriteBreakdown(std::cout, e);
  }

  if (!(trace_path == "off" || trace_path == "none")) {
    exp::WriteFile(trace_path, obs::SpanTracer::PerfettoJson(exemplars));
    std::cout << "\nwrote exemplar Perfetto trace to " << trace_path
              << " (load in chrome://tracing or ui.perfetto.dev)\n";
  }
  return 0;
}

}  // namespace

int RunExplainCommand(int argc, const char* const* argv) {
  if (argc < 2) {
    ExplainUsage(std::cerr);
    return 2;
  }
  const std::string scenario = argv[1];
  if (scenario == "--help" || scenario == "-h" || scenario == "help") {
    ExplainUsage(std::cout);
    return 0;
  }
  if (scenario.rfind("--", 0) == 0) {
    std::cerr << "error: `voodb explain` needs a scenario name before "
                 "flags (see `voodb list`)\n";
    return 2;
  }
  try {
    return Explain(scenario, argc - 1, argv + 1);
  } catch (const util::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace voodb::bench
