#include "micro_storage.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "desp/random.hpp"
#include "desp/stats.hpp"
#include "harness.hpp"
#include "ocb/object_base.hpp"
#include "storage/buffer_manager.hpp"
#include "storage/placement.hpp"
#include "util/check.hpp"
#include "util/table.hpp"

namespace voodb::bench {

namespace {

using ocb::Oid;
using storage::PageId;
using storage::PageSpan;

// --- The pre-refactor structures, verbatim modulo naming --------------------

/// The old object layout: one heap vector of reference slots per object.
struct LegacyObject {
  Oid id = ocb::kNullOid;
  ocb::ClassId cls = 0;
  uint32_t size = 0;
  std::vector<Oid> references;
};

/// The old object base: an array-of-structures graph.  Built as an exact
/// copy of the CSR base so both sides traverse identical topology, and
/// accessed through the old bounds-checked Object() accessor the
/// pre-refactor traversals used.
class LegacyObjectGraph {
 public:
  explicit LegacyObjectGraph(const ocb::ObjectBase& base) {
    objects_.resize(base.NumObjects());
    for (Oid oid = 0; oid < base.NumObjects(); ++oid) {
      LegacyObject& obj = objects_[oid];
      obj.id = oid;
      obj.cls = base.ClassOf(oid);
      obj.size = base.SizeOf(oid);
      const ocb::OidSpan refs = base.References(oid);
      obj.references.assign(refs.begin(), refs.end());
    }
  }
  const LegacyObject& Object(Oid oid) const {
    VOODB_CHECK_MSG(oid < objects_.size(), "oid " << oid << " out of range");
    return objects_[oid];
  }
  const std::vector<Oid>& References(Oid oid) const {
    return Object(oid).references;
  }
  uint64_t NumObjects() const { return objects_.size(); }

 private:
  std::vector<LegacyObject> objects_;
};

/// The old replacement-algorithm protocol (virtual dispatch per access,
/// exactly as the pre-refactor BufferManager paid it).
class LegacyReplacementAlgo {
 public:
  virtual ~LegacyReplacementAlgo() = default;
  virtual void OnAdmit(PageId page) = 0;
  virtual void OnAccess(PageId page) = 0;
  virtual PageId PickVictim() = 0;
  virtual void OnEvict(PageId page) = 0;
};

/// The old LRU list (std::list + iterator map).
class LegacyLruAlgo final : public LegacyReplacementAlgo {
 public:
  void OnAdmit(PageId page) override {
    order_.push_front(page);
    where_[page] = order_.begin();
  }
  void OnAccess(PageId page) override {
    order_.splice(order_.begin(), order_, where_.at(page));
  }
  PageId PickVictim() override { return order_.back(); }
  void OnEvict(PageId page) override {
    const auto it = where_.find(page);
    order_.erase(it->second);
    where_.erase(it);
  }

 private:
  std::list<PageId> order_;
  std::unordered_map<PageId, std::list<PageId>::iterator> where_;
};

/// The old CLOCK sweep (its own frame vector + slot map).
class LegacyClockAlgo final : public LegacyReplacementAlgo {
 public:
  void OnAdmit(PageId page) override {
    size_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
      frames_[slot] = ClockFrame{page, 1, true};
    } else {
      slot = frames_.size();
      frames_.push_back(ClockFrame{page, 1, true});
    }
    where_[page] = slot;
  }
  void OnAccess(PageId page) override { frames_[where_.at(page)].weight = 1; }
  PageId PickVictim() override {
    while (true) {
      if (hand_ >= frames_.size()) hand_ = 0;
      ClockFrame& f = frames_[hand_];
      if (!f.occupied) {
        ++hand_;
        continue;
      }
      if (f.weight == 0) return f.page;
      --f.weight;
      ++hand_;
    }
  }
  void OnEvict(PageId page) override {
    const auto it = where_.find(page);
    frames_[it->second].occupied = false;
    free_slots_.push_back(it->second);
    where_.erase(it);
  }

 private:
  struct ClockFrame {
    PageId page = storage::kNullPage;
    uint32_t weight = 0;
    bool occupied = false;
  };
  std::vector<ClockFrame> frames_;
  std::vector<size_t> free_slots_;
  std::unordered_map<PageId, size_t> where_;
  size_t hand_ = 0;
};

/// Cache counters compared between the two sides.
struct CacheCounts {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;

  bool operator==(const CacheCounts& o) const {
    return hits == o.hits && misses == o.misses && evictions == o.evictions;
  }
};

/// The old map-based page cache, verbatim modulo naming: an
/// unordered_map<PageId, dirty> residency index, a virtual replacement
/// algorithm, and an AccessOutcome whose ios vector is filled (and
/// allocated) on every miss — exactly the costs the flat-frame refactor
/// removed.
template <typename Algo>
class LegacyBufferManager {
 public:
  explicit LegacyBufferManager(uint64_t capacity)
      : capacity_(capacity), algo_(new Algo()) {}

  /// One access through the legacy API: the outcome (and its ios vector)
  /// is constructed per call, exactly as the old cache returned it.
  /// Returns the number of physical ios implied.
  uint64_t AccessCount(PageId page, bool write) {
    return Access(page, write).ios.size();
  }

  storage::AccessOutcome Access(PageId page, bool write) {
    storage::AccessOutcome outcome;
    const auto it = resident_.find(page);
    if (it != resident_.end()) {
      ++counts_.hits;
      outcome.hit = true;
      it->second = it->second || write;
      algo_->OnAccess(page);
      return outcome;
    }
    ++counts_.misses;
    while (resident_.size() >= capacity_) {
      const PageId victim = algo_->PickVictim();
      const auto victim_it = resident_.find(victim);
      if (victim_it->second) {
        outcome.ios.push_back(
            storage::PageIo{storage::PageIo::Kind::kWrite, victim});
      }
      algo_->OnEvict(victim);
      resident_.erase(victim_it);
      ++counts_.evictions;
    }
    resident_.emplace(page, write);
    algo_->OnAdmit(page);
    outcome.ios.push_back(storage::PageIo{storage::PageIo::Kind::kRead, page});
    return outcome;
  }

  const CacheCounts& counts() const { return counts_; }

 private:
  uint64_t capacity_;
  std::unique_ptr<LegacyReplacementAlgo> algo_;
  std::unordered_map<PageId, bool> resident_;
  CacheCounts counts_;
};

/// Adapter giving the flat-frame BufferManager the same interface and
/// counter view as the legacy baseline.  Uses the allocation-free
/// AccessInto path with a reused scratch buffer — the API the emulators
/// run on.
class FlatCache {
 public:
  FlatCache(uint64_t capacity, storage::ReplacementPolicy policy)
      : buffer_(capacity, policy) {}

  uint64_t AccessCount(PageId page, bool write) {
    scratch_.clear();
    buffer_.AccessInto(page, write, scratch_);
    return scratch_.size();
  }

  CacheCounts counts() const {
    return CacheCounts{buffer_.stats().hits, buffer_.stats().misses,
                       buffer_.stats().evictions};
  }

 private:
  storage::BufferManager buffer_;
  std::vector<storage::PageIo> scratch_;
};

// --- Workloads --------------------------------------------------------------

/// The one traversal definition both workload variants share:
/// depth-first visit-once walks from strided roots, `visit(oid)` called
/// on every first visit.  Identical visit order for any graph with the
/// same topology.
template <typename Graph, typename Visit>
void ForEachTraversalVisit(const Graph& graph, uint64_t traversals,
                           uint32_t depth, Visit visit) {
  const uint64_t no = graph.NumObjects();
  std::vector<uint32_t> stamp(no, 0);
  uint32_t epoch = 0;
  std::vector<std::pair<Oid, uint32_t>> stack;
  for (uint64_t t = 0; t < traversals; ++t) {
    const Oid root = (t * 9973) % no;
    ++epoch;
    stamp[root] = epoch;
    visit(root);
    stack.clear();
    stack.emplace_back(root, 0);
    while (!stack.empty()) {
      const auto [oid, level] = stack.back();
      stack.pop_back();
      if (level >= depth) continue;
      for (Oid ref : graph.References(oid)) {
        if (ref == ocb::kNullOid || stamp[ref] == epoch) continue;
        stamp[ref] = epoch;
        visit(ref);
        stack.emplace_back(ref, level + 1);
      }
    }
  }
}

/// Materializes the object-access trace the traversals produce (same
/// topology on both graphs -> same trace), so the replay workload can
/// time the storage engine alone.
std::vector<Oid> TraversalTrace(const ocb::ObjectBase& base,
                                uint64_t traversals, uint32_t depth) {
  std::vector<Oid> trace;
  ForEachTraversalVisit(base, traversals, depth,
                        [&trace](Oid oid) { trace.push_back(oid); });
  return trace;
}

/// Resolves a traversal-generated object trace into the page trace the
/// cache sees (Oid -> span through the flat span array — identical
/// work in both engines, so it happens once, outside the timed region).
std::vector<PageId> ResolvePageTrace(const std::vector<Oid>& object_trace,
                                     const storage::Placement& placement) {
  const PageSpan* spans = placement.spans().data();
  std::vector<PageId> pages;
  pages.reserve(object_trace.size());
  for (Oid oid : object_trace) {
    const PageSpan span = spans[oid];
    for (uint32_t i = 0; i < span.count; ++i) pages.push_back(span.first + i);
  }
  return pages;
}

/// The simulation model's full hot path (graph row walk -> placement
/// span -> cache access), driven by the shared traversal definition;
/// returns the number of page accesses performed.
template <typename Graph, typename Cache>
uint64_t TraversalWorkload(const Graph& graph,
                           const storage::Placement& placement, Cache& cache,
                           uint64_t traversals, uint32_t depth) {
  uint64_t accesses = 0;
  uint64_t io_count = 0;  // consumes the outcome like the emulators do
  const PageSpan* spans = placement.spans().data();
  ForEachTraversalVisit(graph, traversals, depth, [&](Oid oid) {
    const PageSpan span = spans[oid];
    for (uint32_t i = 0; i < span.count; ++i) {
      io_count += cache.AccessCount(span.first + i, false);
      ++accesses;
    }
  });
  return accesses + (io_count & 1);  // data-depend on the outcomes
}

/// Raw page trace against the cache alone.
template <typename Cache>
uint64_t TraceWorkload(const std::vector<PageId>& trace, Cache& cache) {
  uint64_t io_count = 0;
  for (size_t i = 0; i < trace.size(); ++i) {
    io_count += cache.AccessCount(trace[i], (i & 15) == 0);
  }
  return trace.size() + (io_count & 1);
}

struct Measurement {
  double mean_maps = 0.0;  ///< mean million page accesses per second
  double half_width = 0.0;
  CacheCounts counts;
};

struct PairedMeasurement {
  Measurement legacy;
  Measurement flat;
  double speedup = 0.0;     ///< mean of per-trial flat/legacy ratios
  double speedup_hw = 0.0;  ///< 95 % CI half-width of the ratio
};

Measurement Finish(const desp::Tally& rates, CacheCounts counts) {
  Measurement m;
  m.mean_maps = rates.mean();
  m.counts = counts;
  if (rates.count() >= 2 && rates.stddev() > 0.0) {
    m.half_width = desp::StudentConfidenceInterval(rates, 0.95).half_width;
  }
  return m;
}

/// Paired design: each trial times the legacy engine and the flat
/// engine back to back on the same trace and records the per-trial
/// throughput ratio, so slow drift in machine load cancels out of the
/// speedup.  One untimed warm-up run per side populates the caches'
/// counters for the identity check.  `make_*()` builds a fresh cache
/// per run; `*_body(cache)` returns the number of accesses performed.
template <typename MakeLegacy, typename LegacyBody, typename MakeFlat,
          typename FlatBody>
PairedMeasurement MeasurePair(uint64_t trials, MakeLegacy make_legacy,
                              LegacyBody legacy_body, MakeFlat make_flat,
                              FlatBody flat_body) {
  const auto timed = [](auto& cache, auto& body) {
    const auto start = std::chrono::steady_clock::now();
    const uint64_t accesses = body(cache);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return static_cast<double>(accesses) / secs / 1e6;
  };
  PairedMeasurement pm;
  {
    auto legacy = make_legacy();
    timed(legacy, legacy_body);  // warm-up, untimed
    pm.legacy.counts = legacy.counts();
    auto flat = make_flat();
    timed(flat, flat_body);
    pm.flat.counts = flat.counts();
  }
  desp::Tally legacy_rates, flat_rates, ratios;
  for (uint64_t t = 0; t < trials; ++t) {
    auto legacy = make_legacy();
    const double legacy_rate = timed(legacy, legacy_body);
    auto flat = make_flat();
    const double flat_rate = timed(flat, flat_body);
    legacy_rates.Add(legacy_rate);
    flat_rates.Add(flat_rate);
    ratios.Add(legacy_rate > 0.0 ? flat_rate / legacy_rate : 0.0);
  }
  pm.legacy = Finish(legacy_rates, pm.legacy.counts);
  pm.flat = Finish(flat_rates, pm.flat.counts);
  pm.speedup = ratios.mean();
  if (ratios.count() >= 2 && ratios.stddev() > 0.0) {
    pm.speedup_hw =
        desp::StudentConfidenceInterval(ratios, 0.95).half_width;
  }
  return pm;
}

}  // namespace

exp::ScenarioResult RunMicroStorageScenario(const exp::ScenarioContext& ctx) {
  const ocb::OcbParameters workload = ctx.config.workload;
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(workload);
  const LegacyObjectGraph legacy_graph(base);
  const storage::Placement placement = storage::Placement::Build(
      base, 4096, storage::PlacementPolicy::kOptimizedSequential);

  // Cache sized well under the base so the traversal working set spills
  // and the eviction path stays hot.
  const uint64_t cache_pages =
      std::max<uint64_t>(64, placement.NumPages() / 32);
  const uint64_t traversals = std::max<uint64_t>(1, ctx.options.transactions);
  const uint32_t depth = workload.hierarchy_depth;
  const uint64_t trials = std::max<uint64_t>(2, ctx.options.replications);

  // Pre-generated Zipf trace (deterministic in the scenario seed).
  desp::RandomStream trace_rng(ctx.options.seed);
  std::vector<PageId> trace(traversals * 64);
  const auto page_space = static_cast<int64_t>(placement.NumPages());
  for (PageId& p : trace) {
    p = static_cast<PageId>(trace_rng.Zipf(page_space, 0.9));
  }

  struct Row {
    std::string workload;
    std::string engine;
    Measurement result;
    double speedup_vs_legacy = 0.0;
    double speedup_hw = 0.0;
  };
  std::vector<Row> rows;

  const auto compare = [&rows](const std::string& workload,
                               const PairedMeasurement& pm) {
    VOODB_CHECK_MSG(
        pm.legacy.counts == pm.flat.counts,
        "flat-frame cache diverged from the legacy baseline on '"
            << workload << "': hits " << pm.flat.counts.hits << " vs "
            << pm.legacy.counts.hits << ", misses " << pm.flat.counts.misses
            << " vs " << pm.legacy.counts.misses << ", evictions "
            << pm.flat.counts.evictions << " vs "
            << pm.legacy.counts.evictions);
    rows.push_back({workload, "legacy", pm.legacy, 1.0, 0.0});
    rows.push_back({workload, "flat", pm.flat, pm.speedup, pm.speedup_hw});
  };

  const std::vector<PageId> traversal_pages =
      ResolvePageTrace(TraversalTrace(base, traversals, depth), placement);
  const auto make_legacy_lru = [&] {
    return LegacyBufferManager<LegacyLruAlgo>(cache_pages);
  };
  const auto make_legacy_clock = [&] {
    return LegacyBufferManager<LegacyClockAlgo>(cache_pages);
  };
  const auto make_flat_lru = [&] {
    return FlatCache(cache_pages, storage::ReplacementPolicy::kLru);
  };
  const auto make_flat_clock = [&] {
    return FlatCache(cache_pages, storage::ReplacementPolicy::kClock);
  };
  const auto replay = [&](auto& cache) {
    return TraceWorkload(traversal_pages, cache);
  };
  const auto zipf = [&](auto& cache) { return TraceWorkload(trace, cache); };

  compare("traversal", MeasurePair(trials, make_legacy_lru, replay,
                                   make_flat_lru, replay));
  compare("traversal_live",
          MeasurePair(
              trials, make_legacy_lru,
              [&](auto& cache) {
                return TraversalWorkload(legacy_graph, placement, cache,
                                         traversals, depth);
              },
              make_flat_lru,
              [&](auto& cache) {
                return TraversalWorkload(base, placement, cache, traversals,
                                         depth);
              }));
  compare("zipf_pages_lru",
          MeasurePair(trials, make_legacy_lru, zipf, make_flat_lru, zipf));
  compare("zipf_pages_clock", MeasurePair(trials, make_legacy_clock, zipf,
                                          make_flat_clock, zipf));

  util::TextTable table(
      {"Workload", "Engine", "Maccesses/s", "±95%", "vs legacy", "Hit rate"});
  exp::ScenarioResult result;
  for (const Row& row : rows) {
    const double hit_rate =
        static_cast<double>(row.result.counts.hits) /
        static_cast<double>(row.result.counts.hits + row.result.counts.misses);
    table.AddRow({row.workload, row.engine,
                  util::FormatDouble(row.result.mean_maps, 2),
                  util::FormatDouble(row.result.half_width, 2),
                  util::FormatDouble(row.speedup_vs_legacy, 2) + "x",
                  util::FormatDouble(hit_rate, 3)});
    const Estimate throughput{row.result.mean_maps, row.result.half_width};
    RecordEstimate("micro_storage", row.workload, row.engine, throughput);
    result["micro_storage/" + row.workload + "/" + row.engine + "/mean"] =
        throughput.mean;
    if (row.engine == "flat") {
      RecordEstimate("micro_storage", row.workload, "speedup",
                     Estimate{row.speedup_vs_legacy, row.speedup_hw});
      result["micro_storage/" + row.workload + "/speedup/mean"] =
          row.speedup_vs_legacy;
    }
  }
  std::cout << "== Storage engine throughput (CSR graph + flat-frame cache "
               "vs legacy map-based baseline) ==\n";
  if (ctx.options.csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  std::cout << "(hit/miss/eviction counters verified identical to the "
               "embedded legacy baseline)\n";
  return result;
}

}  // namespace voodb::bench
