/// \file micro_hotpath.hpp
/// \brief The zero-delay fast-lane hot-path micro bench as a catalog
/// scenario.
///
/// Measures the contention-regime hot path of `desp::Scheduler` — the
/// zero-delay continuation storms the concurrency-control stack emits
/// (lock grant -> operation -> release at one timestamp) — against an
/// embedded verbatim copy of the pre-fast-lane heap-only scheduler, so
/// the speedup column is measured against the real predecessor, not
/// remembered.  Two legs:
///
///   storm    ~94% zero-delay continuations (every 16th hop is an I/O
///            completion that advances the clock) — the lane's target
///   control  strictly positive delays — the lane never engages and the
///            bench gates on "no regression"
///
/// Every cell is digest-checked (SetTraceHook FNV-1a over executed
/// event keys) across baseline / lane-off / lane-on before timing; the
/// scenario fails on divergence.  Speedups are paired per trial
/// (baseline and lane timed back-to-back, ratio tallied), so machine
/// noise cancels instead of inflating the CI.  Runs through the
/// scenario path: `voodb run micro_hotpath` and the thin
/// `bench_micro_hotpath` wrapper both resolve here, and results land in
/// BENCH_hotpath.json.
///
/// Protocol-knob mapping (micro benches have no model config):
///   --transactions=N   N concurrent users, N*200 events per trial
///                      (default 1000 = a 200k-event storm)
///   --replications=N   paired timed trials per leg
#pragma once

#include "exp/scenario.hpp"

namespace voodb::bench {

/// Run hook of the `micro_hotpath` scenario.
exp::ScenarioResult RunMicroHotpathScenario(const exp::ScenarioContext& ctx);

}  // namespace voodb::bench
