/// \file scenarios.hpp
/// \brief Registration of every paper figure/table/ablation as a named
/// scenario in the `exp::ScenarioRegistry`.
///
/// The catalog covers the paper's whole evaluation section: the O2 and
/// Texas validation figures (fig06..fig11), the DSTC clustering tables
/// (table6..table8), and the Table 3 / §5 ablations.  Each scenario's
/// base `ExperimentConfig` carries the exact parameter values the old
/// hand-wired bench binaries froze in code, so `voodb run <name>` is
/// bit-identical to the legacy binaries under identical seeds — and
/// `--set` can now steer every registered parameter.
#pragma once

namespace voodb::bench {

/// Registers the full catalog (idempotent; cheap after the first call).
void RegisterBenchScenarios();

}  // namespace voodb::bench
