/// \file harness.hpp
/// \brief Shared machinery for the figure/table reproduction harnesses.
///
/// Every bench binary regenerates one figure or table of the paper's
/// evaluation section (§4).  The "Benchmark" series is produced by the
/// direct-execution emulators (src/emu), the "Simulation" series by the
/// VOODB discrete-event model (src/voodb); the paper's own numbers are
/// embedded for side-by-side comparison (values read off the published
/// figures are approximate and labelled as such).
///
/// Replications run on the exp/ replication farm: all worker threads by
/// default, bit-identical results at any thread count.  Unless disabled,
/// every bench also drops a machine-readable `BENCH_<name>.json` (per
/// point/metric mean, CI half-width, replication count, wall clock) so the
/// performance trajectory can be tracked across PRs.
///
/// Common flags (every harness):
///   --replications=N   independent replications per point (default 10;
///                      the paper used 100 — pass --replications=100 to
///                      match, at ~10x the runtime)
///   --transactions=N   transactions per replication (default 1000, HOTN)
///   --seed=N           base RNG seed
///   --threads=N        farm worker threads (default 0 = all cores;
///                      results are identical at any value)
///   --event-queue=K    kernel event-list backend (binary | quaternary |
///                      calendar; results are identical at any value)
///   --csv              emit CSV instead of an aligned table
///   --json=PATH        result file (default BENCH_<name>.json; "off"
///                      disables)
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "desp/event_queue.hpp"
#include "desp/replication.hpp"
#include "desp/stats.hpp"
#include "exp/scenario.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace voodb::bench {

/// Options shared by all harnesses.
struct RunOptions {
  uint64_t replications = 10;
  uint64_t transactions = 1000;
  uint64_t seed = 42;
  size_t threads = 0;  ///< farm workers; 0 = all hardware threads
  /// Kernel event-list backend for the simulation runs; results are
  /// bit-identical across backends, only wall clock changes.
  desp::EventQueueKind event_queue = desp::EventQueueKind::kBinaryHeap;
  /// Zero-delay fast-lane state (`fast_lane` parameter); like the
  /// backend choice it is a pure wall-clock knob, recorded into the
  /// report so perf numbers are attributable to a kernel configuration.
  bool fast_lane = true;
  bool csv = false;
  std::string bench_name;  ///< derived from argv[0] ("fig06_...")
  std::string json;        ///< output path; empty = disabled
};

/// Parses the common flags; prints usage (generated from the flag
/// declarations) and exits on --help.
RunOptions ParseOptions(int argc, const char* const* argv,
                        const std::string& description);

/// The harness view of a resolved scenario context (replication /
/// protocol knobs from the options, event queue from the config).
RunOptions ToRunOptions(const exp::ScenarioContext& ctx);

/// The shared entry point behind every per-figure wrapper binary and
/// `voodb run <scenario>`: parses the common flags plus repeatable
/// `--set name=value` parameter overrides, configures the
/// BENCH_<name>.json recorder, and runs the named catalog scenario.
/// `bench_name` overrides the json/bench identity (the driver passes the
/// scenario name; wrappers pass nullptr to keep their argv[0]-derived
/// legacy name).  Returns a process exit code; configuration errors are
/// reported on stderr rather than thrown.
int RunScenarioMain(const std::string& scenario_name, int argc,
                    const char* const* argv,
                    const char* bench_name = nullptr);

/// A replicated estimate: sample mean and 95 % CI half-width.
struct Estimate {
  double mean = 0.0;
  double half_width = 0.0;
};

/// Runs `model` on the replication farm (options.threads workers, seeds
/// derived from `base_seed`) and aggregates the returned scalar.
Estimate Replicate(const RunOptions& options, uint64_t base_seed,
                   const std::function<double(uint64_t seed)>& model);

/// Multi-metric variant: the model observes any number of named metrics
/// into the sink; returns one Estimate per metric.  This replaces the old
/// pattern of smuggling secondary metrics out of the model through
/// captured locals, which would race on a parallel farm.
std::map<std::string, Estimate> ReplicateMetrics(
    const RunOptions& options, uint64_t base_seed,
    const desp::ReplicationRunner::Model& model);

/// Full-result variant: returns the reduced ReplicationResult itself so
/// callers can also read farm-merged LogHistograms (observed via
/// `sink.ObserveHistogram`).  The reduction runs in replication order, so
/// scalars *and* histograms are bit-identical at any thread count.
desp::ReplicationResult ReplicateResult(
    const RunOptions& options, uint64_t base_seed,
    const desp::ReplicationRunner::Model& model);

/// One Estimate per scalar metric of a reduced result.
std::map<std::string, Estimate> EstimatesOf(
    const desp::ReplicationResult& result);

/// mean + 95 % half-width of a tally (0 half-width below 2 observations).
Estimate EstimateOf(const desp::Tally& tally);

/// Formats "mean ±hw".
std::string WithCi(const Estimate& e, int precision = 1);

/// Records an estimate into this bench's BENCH_<name>.json (grouped as
/// section -> point x -> series).  No-op before ParseOptions or when the
/// JSON report is disabled.  FigureReport records its points itself;
/// hand-rolled tables call this directly.
void RecordEstimate(const std::string& section, const std::string& x,
                    const std::string& series, const Estimate& e);

/// Prints the standard five-column comparison row layout used by the
/// figure harnesses and renders the table.
class FigureReport {
 public:
  /// \param x_label the sweep axis ("Instances", "Cache (MB)", ...)
  FigureReport(std::string title, std::string x_label);

  void AddPoint(const std::string& x, const Estimate& bench,
                const Estimate& sim, double paper_bench, double paper_sim);

  /// Renders to stdout (aligned text or CSV per options).
  void Print(const RunOptions& options) const;

 private:
  std::string title_;
  util::TextTable table_;
};

/// Tail-latency table: one row per point with the end-to-end p50 / p95 /
/// p99 / p999 (and max) of a farm-merged LogHistogram.  Every row's
/// percentiles are also recorded into BENCH_<name>.json under `title` as
/// series p50/p95/p99/p999/max, so the latency trajectory is tracked
/// alongside the mean-I/O one.  Percentiles come from the merged
/// distribution (bucket-exact reduction), not from averaging
/// per-replication percentiles — and are therefore bit-identical at any
/// farm thread count.
class LatencyReport {
 public:
  LatencyReport(std::string title, std::string x_label);

  void AddPoint(const std::string& x, const desp::LogHistogram& histogram);

  /// Renders to stdout (aligned text or CSV per options).
  void Print(const RunOptions& options) const;

 private:
  std::string title_;
  util::TextTable table_;
};

}  // namespace voodb::bench
