/// \file harness.hpp
/// \brief Shared machinery for the figure/table reproduction harnesses.
///
/// Every bench binary regenerates one figure or table of the paper's
/// evaluation section (§4).  The "Benchmark" series is produced by the
/// direct-execution emulators (src/emu), the "Simulation" series by the
/// VOODB discrete-event model (src/voodb); the paper's own numbers are
/// embedded for side-by-side comparison (values read off the published
/// figures are approximate and labelled as such).
///
/// Common flags (every harness):
///   --replications=N   independent replications per point (default 10;
///                      the paper used 100 — pass --replications=100 to
///                      match, at ~10x the runtime)
///   --transactions=N   transactions per replication (default 1000, HOTN)
///   --seed=N           base RNG seed
///   --csv              emit CSV instead of an aligned table
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "desp/stats.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace voodb::bench {

/// Options shared by all harnesses.
struct RunOptions {
  uint64_t replications = 10;
  uint64_t transactions = 1000;
  uint64_t seed = 42;
  bool csv = false;
};

/// Parses the common flags; prints usage and exits on --help.
RunOptions ParseOptions(int argc, const char* const* argv,
                        const std::string& description);

/// A replicated estimate: sample mean and 95 % CI half-width.
struct Estimate {
  double mean = 0.0;
  double half_width = 0.0;
};

/// Runs `model` for `n` replications with derived seeds and aggregates.
Estimate Replicate(uint64_t n, uint64_t base_seed,
                   const std::function<double(uint64_t seed)>& model);

/// Formats "mean ±hw".
std::string WithCi(const Estimate& e, int precision = 1);

/// Prints the standard five-column comparison row layout used by the
/// figure harnesses and renders the table.
class FigureReport {
 public:
  /// \param x_label the sweep axis ("Instances", "Cache (MB)", ...)
  FigureReport(std::string title, std::string x_label);

  void AddPoint(const std::string& x, const Estimate& bench,
                const Estimate& sim, double paper_bench, double paper_sim);

  /// Renders to stdout (aligned text or CSV per options).
  void Print(const RunOptions& options) const;

 private:
  std::string title_;
  util::TextTable table_;
};

}  // namespace voodb::bench
