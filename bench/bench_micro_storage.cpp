/// \file bench_micro_storage.cpp
/// \brief Thin wrapper over the `micro_storage` catalog scenario (see
/// bench/micro_storage.hpp).  Writes BENCH_storage.json; exits non-zero
/// when the flat-frame cache's counters diverge from the embedded legacy
/// baseline (the CI regression gate).
#include "harness.hpp"

int main(int argc, char** argv) {
  return voodb::bench::RunScenarioMain("micro_storage", argc, argv,
                                       "storage");
}
