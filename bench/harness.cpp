#include "harness.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <utility>

#include "exp/farm.hpp"
#include "exp/report.hpp"
#include "scenarios.hpp"
#include "util/check.hpp"

namespace voodb::bench {

namespace {

/// "path/to/bench_fig06_o2" -> "fig06_o2".
std::string BenchNameFromArgv0(const char* argv0) {
  std::string name = argv0 == nullptr ? "" : argv0;
  const size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  if (name.rfind("bench_", 0) == 0) name = name.substr(6);
  return name.empty() ? "unnamed" : name;
}

/// Accumulates every recorded estimate and writes BENCH_<name>.json once,
/// at process exit (so a bench with several tables/figures lands in one
/// file with one wall clock).
class BenchRecorder {
 public:
  static BenchRecorder& Instance() {
    static BenchRecorder recorder;
    return recorder;
  }

  void Configure(const RunOptions& options) {
    std::lock_guard<std::mutex> lock(mu_);
    options_ = options;
    configured_ = true;
    start_ = std::chrono::steady_clock::now();
    if (!registered_) {
      registered_ = true;
      std::atexit([] { BenchRecorder::Instance().Flush(); });
    }
  }

  void Record(const std::string& section, const std::string& x,
              const std::string& series, const Estimate& e) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!configured_ || options_.json.empty()) return;
    entries_.push_back({section, x, series, e});
  }

  void Flush() {
    std::lock_guard<std::mutex> lock(mu_);
    if (!configured_ || flushed_ || options_.json.empty()) return;
    flushed_ = true;
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start_)
            .count();
    exp::JsonWriter w;
    w.BeginObject();
    w.Key("bench").Value(options_.bench_name);
    w.Key("base_seed").Value(options_.seed);
    w.Key("replications").Value(options_.replications);
    w.Key("transactions").Value(options_.transactions);
    w.Key("threads").Value(static_cast<uint64_t>(options_.threads));
    // The kernel configuration the numbers were measured under.  Both
    // knobs are bit-identity-preserving, so identity diffs may strip
    // them alongside wall_clock_ms — but a perf number without them is
    // unattributable.
    w.Key("event_queue").Value(desp::ToString(options_.event_queue));
    w.Key("fast_lane").Value(options_.fast_lane);
    w.Key("ci_level").Value(0.95);
    w.Key("wall_clock_ms").Value(wall_ms);
    w.Key("sections").BeginArray();
    // Group by section, then by x within the section, both in
    // first-appearance order.  Grouping must tolerate non-contiguous
    // entries: benches like the DSTC tables record a whole series at a
    // time, revisiting each x once per series.
    std::vector<std::string> sections;
    for (const Entry& entry : entries_) {
      if (std::find(sections.begin(), sections.end(), entry.section) ==
          sections.end()) {
        sections.push_back(entry.section);
      }
    }
    for (const std::string& section : sections) {
      w.BeginObject();
      w.Key("name").Value(section);
      w.Key("points").BeginArray();
      std::vector<std::string> xs;
      for (const Entry& entry : entries_) {
        if (entry.section == section &&
            std::find(xs.begin(), xs.end(), entry.x) == xs.end()) {
          xs.push_back(entry.x);
        }
      }
      for (const std::string& x : xs) {
        w.BeginObject();
        w.Key("x").Value(x);
        w.Key("series").BeginObject();
        for (const Entry& entry : entries_) {
          if (entry.section == section && entry.x == x) {
            w.Key(entry.series).BeginObject();
            w.Key("mean").Value(entry.estimate.mean);
            w.Key("ci_half_width").Value(entry.estimate.half_width);
            w.EndObject();
          }
        }
        w.EndObject();
        w.EndObject();
      }
      w.EndArray();
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    try {
      exp::WriteFile(options_.json, w.str());
    } catch (const util::Error& e) {
      std::fprintf(stderr, "warning: %s\n", e.what());
    }
  }

 private:
  struct Entry {
    std::string section;
    std::string x;
    std::string series;
    Estimate estimate;
  };

  std::mutex mu_;
  RunOptions options_;
  bool configured_ = false;
  bool flushed_ = false;
  bool registered_ = false;
  std::chrono::steady_clock::time_point start_;
  std::vector<Entry> entries_;
};

}  // namespace

namespace {

/// Declares the common harness flags on `args` (their declarations feed
/// the generated --help text) and fills a RunOptions.  `event_queue_set`
/// reports whether --event-queue was passed explicitly (the scenario
/// path only overrides the config when it was).
RunOptions DeclareRunFlags(util::CliArgs& args, const std::string& bench_name,
                           bool* event_queue_set = nullptr) {
  RunOptions options;
  options.bench_name = bench_name;
  options.replications = static_cast<uint64_t>(args.GetInt(
      "replications", 10, "replications per point; paper used 100"));
  options.transactions = static_cast<uint64_t>(
      args.GetInt("transactions", 1000, "transactions per replication"));
  options.seed =
      static_cast<uint64_t>(args.GetInt("seed", 42, "base RNG seed"));
  options.threads = static_cast<size_t>(
      args.GetInt("threads", 0, "farm worker threads; 0 = all cores"));
  const std::string queue = args.GetString(
      "event-queue", "binary_heap",
      "kernel event list (binary_heap | quaternary_heap | calendar_queue)");
  options.event_queue = desp::ParseEventQueueKind(queue);
  if (event_queue_set != nullptr) {
    *event_queue_set = args.Provided("event-queue");
  }
  options.csv = args.GetBool("csv", false, "CSV output");
  const std::string json = args.GetString(
      "json", "BENCH_" + bench_name + ".json",
      "result file; \"off\" disables");
  options.json = (json == "off" || json == "none") ? "" : json;
  return options;
}

}  // namespace

RunOptions ParseOptions(int argc, const char* const* argv,
                        const std::string& description) {
  util::CliArgs args(argc, argv);
  RunOptions options = DeclareRunFlags(
      args, BenchNameFromArgv0(argc > 0 ? argv[0] : nullptr));
  if (args.help_requested()) {
    std::cout << description << "\n\n" << args.Help();
    std::exit(0);
  }
  args.RejectUnknown();
  VOODB_CHECK_MSG(options.replications >= 2,
                  "need at least 2 replications for confidence intervals");
  BenchRecorder::Instance().Configure(options);
  return options;
}

RunOptions ToRunOptions(const exp::ScenarioContext& ctx) {
  RunOptions options;
  options.replications = ctx.options.replications;
  options.transactions = ctx.options.transactions;
  options.seed = ctx.options.seed;
  options.threads = ctx.options.threads;
  options.event_queue = ctx.config.system.event_queue;
  options.fast_lane = ctx.config.system.fast_lane;
  options.csv = ctx.options.csv;
  if (ctx.scenario != nullptr) options.bench_name = ctx.scenario->name;
  return options;
}

int RunScenarioMain(const std::string& scenario_name, int argc,
                    const char* const* argv, const char* bench_name) {
  try {
    RegisterBenchScenarios();
    const exp::Scenario& scenario =
        exp::ScenarioRegistry::Instance().At(scenario_name);
    util::CliArgs args(argc, argv);
    bool event_queue_set = false;
    RunOptions options = DeclareRunFlags(
        args,
        bench_name != nullptr ? std::string(bench_name)
                              : BenchNameFromArgv0(argc > 0 ? argv[0]
                                                            : nullptr),
        &event_queue_set);
    const std::vector<std::string> sets = args.GetList(
        "set",
        "override a model parameter (name=value, repeatable; enum values "
        "by name; see `voodb params`)");
    if (args.help_requested()) {
      std::cout << scenario.title << "\n" << scenario.description << "\n\n"
                << args.Help();
      return 0;
    }
    args.RejectUnknown();
    VOODB_CHECK_MSG(options.replications >= 2,
                    "need at least 2 replications for confidence intervals");

    std::vector<exp::ParamOverride> overrides;
    if (event_queue_set && scenario.system_config_used) {
      // An emulator-only scenario has no simulation kernel: accept the
      // shared --event-queue flag as the legacy binaries did (results
      // are identical at any value) instead of rejecting it as a
      // discarded system override.
      overrides.emplace_back(
          "event_queue",
          ToString(desp::ParseEventQueueKind(
              args.GetString("event-queue", "binary_heap"))));
    }
    for (const std::string& assignment : sets) {
      const size_t eq = assignment.find('=');
      VOODB_CHECK_MSG(eq != std::string::npos && eq > 0,
                      "--set expects name=value, got '" << assignment << "'");
      overrides.emplace_back(assignment.substr(0, eq),
                             assignment.substr(eq + 1));
    }

    // Resolve the kernel knobs the run will actually execute under
    // (scenario base + --set overrides; RunScenario itself validates the
    // overrides, this is presentation only) so the run header and the
    // report metadata name the configuration the numbers belong to.
    desp::EventQueueKind kernel_queue = scenario.base.system.event_queue;
    bool kernel_lane = scenario.base.system.fast_lane;
    for (const auto& [name, value] : overrides) {
      if (name == "event_queue") {
        kernel_queue = desp::ParseEventQueueKind(value);
      } else if (name == "fast_lane") {
        std::string lower = value;
        std::transform(lower.begin(), lower.end(), lower.begin(),
                       [](unsigned char c) { return std::tolower(c); });
        kernel_lane = lower == "true" || lower == "yes" || lower == "on" ||
                      lower == "1";
      }
    }
    options.event_queue = kernel_queue;
    options.fast_lane = kernel_lane;
    std::cout << "[kernel] event_queue=" << desp::ToString(kernel_queue)
              << " fast_lane=" << (kernel_lane ? "on" : "off") << "\n";

    BenchRecorder::Instance().Configure(options);
    exp::ScenarioOptions scenario_options;
    scenario_options.replications = options.replications;
    scenario_options.transactions = options.transactions;
    scenario_options.seed = options.seed;
    scenario_options.threads = options.threads;
    scenario_options.csv = options.csv;
    RunScenario(scenario, scenario_options, overrides);
    return 0;
  } catch (const util::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

Estimate EstimateOf(const desp::Tally& tally) {
  Estimate e;
  e.mean = tally.mean();
  if (tally.count() >= 2 && tally.stddev() > 0.0) {
    e.half_width = desp::StudentConfidenceInterval(tally, 0.95).half_width;
  }
  return e;
}

Estimate Replicate(const RunOptions& options, uint64_t base_seed,
                   const std::function<double(uint64_t)>& model) {
  const auto metrics = ReplicateMetrics(
      options, base_seed, [&model](uint64_t seed, desp::MetricSink& sink) {
        sink.Observe("value", model(seed));
      });
  return metrics.at("value");
}

desp::ReplicationResult ReplicateResult(
    const RunOptions& options, uint64_t base_seed,
    const desp::ReplicationRunner::Model& model) {
  exp::FarmOptions farm_options;
  farm_options.threads = options.threads;
  farm_options.base_seed = base_seed;
  return exp::ReplicationFarm(model, farm_options).Run(options.replications);
}

std::map<std::string, Estimate> EstimatesOf(
    const desp::ReplicationResult& result) {
  std::map<std::string, Estimate> estimates;
  for (const std::string& name : result.MetricNames()) {
    estimates[name] = EstimateOf(result.Metric(name));
  }
  return estimates;
}

std::map<std::string, Estimate> ReplicateMetrics(
    const RunOptions& options, uint64_t base_seed,
    const desp::ReplicationRunner::Model& model) {
  return EstimatesOf(ReplicateResult(options, base_seed, model));
}

void RecordEstimate(const std::string& section, const std::string& x,
                    const std::string& series, const Estimate& e) {
  BenchRecorder::Instance().Record(section, x, series, e);
}

std::string WithCi(const Estimate& e, int precision) {
  return util::FormatDouble(e.mean, precision) + " ±" +
         util::FormatDouble(e.half_width, precision);
}

FigureReport::FigureReport(std::string title, std::string x_label)
    : title_(std::move(title)),
      table_({std::move(x_label), "Benchmark(emu)", "Simulation(VOODB)",
              "Sim/Bench", "Paper bench*", "Paper sim*"}) {}

void FigureReport::AddPoint(const std::string& x, const Estimate& bench,
                            const Estimate& sim, double paper_bench,
                            double paper_sim) {
  RecordEstimate(title_, x, "benchmark", bench);
  RecordEstimate(title_, x, "simulation", sim);
  table_.AddRow({x, WithCi(bench), WithCi(sim),
                 util::FormatDouble(bench.mean > 0 ? sim.mean / bench.mean
                                                   : 0.0,
                                    3),
                 util::FormatDouble(paper_bench, 0),
                 util::FormatDouble(paper_sim, 0)});
}

LatencyReport::LatencyReport(std::string title, std::string x_label)
    : title_(std::move(title)),
      table_({std::move(x_label), "Count", "p50", "p95", "p99", "p999",
              "Max"}) {}

void LatencyReport::AddPoint(const std::string& x,
                             const desp::LogHistogram& histogram) {
  const double p50 = histogram.Quantile(0.50);
  const double p95 = histogram.Quantile(0.95);
  const double p99 = histogram.Quantile(0.99);
  const double p999 = histogram.Quantile(0.999);
  RecordEstimate(title_, x, "p50", {p50, 0.0});
  RecordEstimate(title_, x, "p95", {p95, 0.0});
  RecordEstimate(title_, x, "p99", {p99, 0.0});
  RecordEstimate(title_, x, "p999", {p999, 0.0});
  RecordEstimate(title_, x, "max", {histogram.max(), 0.0});
  table_.AddRow({x, std::to_string(histogram.count()),
                 util::FormatDouble(p50, 2), util::FormatDouble(p95, 2),
                 util::FormatDouble(p99, 2), util::FormatDouble(p999, 2),
                 util::FormatDouble(histogram.max(), 2)});
}

void LatencyReport::Print(const RunOptions& options) const {
  std::cout << "== " << title_ << " ==\n";
  if (options.csv) {
    table_.PrintCsv(std::cout);
  } else {
    table_.Print(std::cout);
  }
  std::cout << "\n";
}

void FigureReport::Print(const RunOptions& options) const {
  std::cout << "== " << title_ << " ==\n";
  if (options.csv) {
    table_.PrintCsv(std::cout);
  } else {
    table_.Print(std::cout);
  }
  std::cout << "(*) paper series read off the published figure; "
               "approximate.  Shapes, not absolute values, are the "
               "reproduction target (see EXPERIMENTS.md).\n\n";
}

}  // namespace voodb::bench
