#include "harness.hpp"

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "desp/random.hpp"
#include "util/check.hpp"

namespace voodb::bench {

RunOptions ParseOptions(int argc, const char* const* argv,
                        const std::string& description) {
  util::CliArgs args(argc, argv);
  RunOptions options;
  options.replications =
      static_cast<uint64_t>(args.GetInt("replications", 10));
  options.transactions =
      static_cast<uint64_t>(args.GetInt("transactions", 1000));
  options.seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  options.csv = args.GetBool("csv", false);
  if (args.help_requested()) {
    std::cout << description << "\n\n"
              << "Flags:\n"
                 "  --replications=N  replications per point (default 10;"
                 " paper used 100)\n"
                 "  --transactions=N  transactions per replication"
                 " (default 1000)\n"
                 "  --seed=N          base RNG seed (default 42)\n"
                 "  --csv             CSV output\n";
    std::exit(0);
  }
  args.RejectUnknown();
  VOODB_CHECK_MSG(options.replications >= 2,
                  "need at least 2 replications for confidence intervals");
  return options;
}

Estimate Replicate(uint64_t n, uint64_t base_seed,
                   const std::function<double(uint64_t)>& model) {
  desp::Tally tally;
  uint64_t sm = base_seed;
  for (uint64_t i = 0; i < n; ++i) {
    tally.Add(model(desp::SplitMix64(sm)));
  }
  Estimate e;
  e.mean = tally.mean();
  if (tally.count() >= 2 && tally.stddev() > 0.0) {
    e.half_width = desp::StudentConfidenceInterval(tally, 0.95).half_width;
  }
  return e;
}

std::string WithCi(const Estimate& e, int precision) {
  return util::FormatDouble(e.mean, precision) + " ±" +
         util::FormatDouble(e.half_width, precision);
}

FigureReport::FigureReport(std::string title, std::string x_label)
    : title_(std::move(title)),
      table_({std::move(x_label), "Benchmark(emu)", "Simulation(VOODB)",
              "Sim/Bench", "Paper bench*", "Paper sim*"}) {}

void FigureReport::AddPoint(const std::string& x, const Estimate& bench,
                            const Estimate& sim, double paper_bench,
                            double paper_sim) {
  table_.AddRow({x, WithCi(bench), WithCi(sim),
                 util::FormatDouble(bench.mean > 0 ? sim.mean / bench.mean
                                                   : 0.0,
                                    3),
                 util::FormatDouble(paper_bench, 0),
                 util::FormatDouble(paper_sim, 0)});
}

void FigureReport::Print(const RunOptions& options) const {
  std::cout << "== " << title_ << " ==\n";
  if (options.csv) {
    table_.PrintCsv(std::cout);
  } else {
    table_.Print(std::cout);
  }
  std::cout << "(*) paper series read off the published figure; "
               "approximate.  Shapes, not absolute values, are the "
               "reproduction target (see EXPERIMENTS.md).\n\n";
}

}  // namespace voodb::bench
