/// \file bench_fig07_o2_instances_nc50.cpp
/// \brief Thin wrapper over the "fig07" catalog scenario (Figure 7: O2, I/Os vs instances, NC=50);
/// equivalent to `voodb run fig07` with the same flags.
#include "harness.hpp"

int main(int argc, char** argv) {
  return voodb::bench::RunScenarioMain("fig07", argc, argv);
}
