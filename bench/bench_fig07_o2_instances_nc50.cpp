/// \file bench_fig07_o2_instances_nc50.cpp
/// \brief Reproduces Figure 7: O2, mean number of I/Os vs number of
/// instances (500..20000), 50-class schema, 16 MB server cache.
#include "sweeps.hpp"

int main(int argc, char** argv) {
  using namespace voodb::bench;
  const RunOptions options = ParseOptions(
      argc, argv,
      "Figure 7 — mean number of I/Os depending on number of instances "
      "(O2, 50 classes)");
  RunInstanceSweep(options, TargetSystem::kO2, 50,
                   "Figure 7: O2, NC=50, I/Os vs NO",
                   /*paper_bench=*/{420, 800, 1450, 2700, 4200, 6400},
                   /*paper_sim=*/{380, 740, 1350, 2500, 3900, 6000});
  return 0;
}
