/// \file micro_trace.hpp
/// \brief The trace-subsystem scenarios: MRC analytics and the micro
/// bench.
///
/// Three catalog entries exercise the trace pipeline end to end:
///
///   trace_mrc   records one fixed-seed VOODB simulation run, replays it
///               to verify the recorded counters are reproduced
///               bit-exactly, and prints the one-pass Mattson analytics
///               (hit-ratio curve, working set, reuse distances, class
///               skew).
///   fig08_mrc   Figure 8's cache-size curve computed from ONE recorded
///               O2 run: a single Mattson pass yields the exact LRU hit
///               count at every swept cache size, cross-checked (exact
///               equality enforced) against a trace replay AND a fresh
///               emulator simulation per size; reports the
///               MRC-vs-N-simulations speedup.
///   micro_trace the trace micro bench behind bench_micro_trace /
///               BENCH_trace.json: record overhead vs an untraced run,
///               replay throughput, and the single-pass-MRC speedup over
///               per-size replays and per-size simulations.
#pragma once

#include "exp/scenario.hpp"

namespace voodb::bench {

exp::ScenarioResult RunTraceMrcScenario(const exp::ScenarioContext& ctx);
exp::ScenarioResult RunFig08MrcScenario(const exp::ScenarioContext& ctx);
exp::ScenarioResult RunMicroTraceScenario(const exp::ScenarioContext& ctx);

}  // namespace voodb::bench
