#include "micro_trace.hpp"

#include <algorithm>
#include <chrono>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "desp/random.hpp"
#include "emu/o2_emulator.hpp"
#include "harness.hpp"
#include "ocb/workload.hpp"
#include "sweeps.hpp"
#include "trace/mrc.hpp"
#include "trace/reader.hpp"
#include "trace/recorder.hpp"
#include "trace/replayer.hpp"
#include "trace/writer.hpp"
#include "trace_tools.hpp"
#include "util/check.hpp"
#include "util/table.hpp"

namespace voodb::bench {

namespace {

using exp::ScenarioContext;
using exp::ScenarioResult;

double MsSince(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Records one O2-emulator run over `base` into `out`.
void RecordFixedRun(const ScenarioContext& ctx, const ocb::ObjectBase& base,
                    double cache_mb, std::stringstream& out) {
  emu::O2Config cfg;
  cfg.cache_pages =
      static_cast<uint64_t>(cache_mb * 1024 * 1024 / cfg.page_size);
  RecordO2Trace(cfg, base, ctx.options.transactions, ctx.options.seed, out);
}

void NoteExact(ScenarioResult& result, const std::string& section,
               const std::string& x, const std::string& series,
               double value) {
  const Estimate e{value, 0.0};
  RecordEstimate(section, x, series, e);
  result[section + "/" + x + "/" + series + "/mean"] = value;
}

}  // namespace

ScenarioResult RunTraceMrcScenario(const ScenarioContext& ctx) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(ctx.config.workload);
  const std::string path = ctx.config.system.trace_path.empty()
                               ? "trace_mrc.vtrc"
                               : ctx.config.system.trace_path;
  core::VoodbConfig cfg = ctx.config.system;
  cfg.trace_path.clear();  // RecordSimulationTrace sets record+path
  const trace::TraceCounters recorded = RecordSimulationTrace(
      cfg, base, ctx.options.transactions, ctx.options.seed, path);

  // Replay must reproduce the recorded run bit-exactly before the
  // analytics mean anything (skipped for configurations whose buffer
  // events fall outside the page stream, e.g. --set
  // flush_on_commit=true).
  trace::Reader replay_reader(path);
  const bool verifiable =
      trace::ReplayVerifiable(replay_reader.header().flags);
  if (verifiable) {
    const trace::ReplayStats replayed = trace::ReplayPages(replay_reader);
    VOODB_CHECK_MSG(replayed.Matches(recorded),
                    "trace replay diverged from the recorded counters");
  }

  trace::Reader reader(path);
  trace::MrcAnalyzer analyzer(reader.header().num_classes);
  analyzer.Consume(reader);
  const trace::MrcResult mrc = analyzer.Finish();

  ScenarioResult result;
  NoteExact(result, "trace", "recorded", "accesses",
            static_cast<double>(recorded.accesses));
  NoteExact(result, "trace", "recorded", "hits",
            static_cast<double>(recorded.hits));
  NoteExact(result, "trace", "recorded", "replay_matches",
            verifiable ? 1.0 : 0.0);
  NoteExact(result, "locality", "working_set", "pages",
            static_cast<double>(mrc.working_set_pages));
  NoteExact(result, "locality", "reuse", "mean_distance",
            mrc.MeanReuseDistance());

  util::TextTable curve({"Cache (pages)", "Hit ratio"});
  for (const double fraction : {0.05, 0.1, 0.25, 0.5, 0.75, 1.0}) {
    const auto pages = static_cast<uint64_t>(
        fraction * static_cast<double>(mrc.working_set_pages));
    if (pages < 1) continue;
    const double ratio = mrc.HitRatioAt(pages);
    NoteExact(result, "mrc", std::to_string(pages), "hit_ratio", ratio);
    curve.AddRow({std::to_string(pages), util::FormatDouble(ratio, 4)});
  }
  std::cout << "== Trace MRC: one recorded run, exact LRU curve ==\n"
            << "recorded " << mrc.transactions << " transactions ("
            << mrc.page_accesses << " page accesses, working set "
            << mrc.working_set_pages << " pages) to " << path
            << (verifiable
                    ? "; replay reproduced the recorded counters "
                      "bit-exactly\n"
                    : "; counter verification skipped (buffer events "
                      "outside the page stream)\n");
  if (ctx.options.csv) {
    curve.PrintCsv(std::cout);
  } else {
    curve.Print(std::cout);
  }
  return result;
}

ScenarioResult RunFig08MrcScenario(const ScenarioContext& ctx) {
  // One recorded run serves every cache size: the logical page stream
  // does not depend on hits or misses.
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(ctx.config.workload);
  std::stringstream trace_stream(std::ios::in | std::ios::out |
                                 std::ios::binary);
  RecordFixedRun(ctx, base, 16.0, trace_stream);

  const auto t_mrc = std::chrono::steady_clock::now();
  trace::Reader mrc_reader(&trace_stream);
  trace::MrcAnalyzer analyzer(mrc_reader.header().num_classes);
  analyzer.Consume(mrc_reader);
  const trace::MrcResult mrc = analyzer.Finish();
  const double mrc_ms = MsSince(t_mrc);

  const std::vector<double>& memory_points = MemoryPoints();
  const uint32_t page_size = mrc_reader.header().page_size;

  ScenarioResult result;
  util::TextTable table({"Cache (MB)", "Pages", "MRC hits", "Replay hits",
                         "Sim hits", "Hit ratio"});
  double replay_ms = 0.0;
  double sim_ms = 0.0;
  for (const double mb : memory_points) {
    const auto pages =
        static_cast<uint64_t>(mb * 1024 * 1024 / page_size);
    const uint64_t mrc_hits = mrc.HitsAt(pages);

    // Full LRU buffer simulation over the same stream (the N-runs path
    // the single Mattson pass replaces).
    const auto t_replay = std::chrono::steady_clock::now();
    mrc_reader.Rewind();
    trace::ReplayConfig replay_config;
    replay_config.buffer_pages = pages;
    replay_config.policy =
        static_cast<int>(storage::ReplacementPolicy::kLru);
    const trace::ReplayStats replayed =
        trace::ReplayPages(mrc_reader, replay_config);
    replay_ms += MsSince(t_replay);

    // And a fresh end-to-end emulator run at this cache size.
    const auto t_sim = std::chrono::steady_clock::now();
    emu::O2Config cfg;
    cfg.cache_pages = pages;
    emu::O2Emulator o2(cfg, &base, ctx.options.seed);
    ocb::WorkloadGenerator gen(&base,
                               desp::RandomStream(ctx.options.seed));
    o2.RunTransactions(gen, ctx.options.transactions);
    sim_ms += MsSince(t_sim);
    const uint64_t sim_hits = o2.cache().stats().hits;

    VOODB_CHECK_MSG(
        mrc_hits == replayed.hits && mrc_hits == sim_hits,
        "fig08_mrc divergence at " << mb << " MB: Mattson " << mrc_hits
                                   << ", replay " << replayed.hits
                                   << ", simulation " << sim_hits);
    const std::string x = util::FormatDouble(mb, 0);
    NoteExact(result, "figure", x, "mrc_hits",
              static_cast<double>(mrc_hits));
    NoteExact(result, "figure", x, "sim_hits",
              static_cast<double>(sim_hits));
    NoteExact(result, "figure", x, "hit_ratio", mrc.HitRatioAt(pages));
    table.AddRow({x, std::to_string(pages), std::to_string(mrc_hits),
                  std::to_string(replayed.hits), std::to_string(sim_hits),
                  util::FormatDouble(mrc.HitRatioAt(pages), 4)});
  }

  const double speedup_vs_sims = mrc_ms > 0.0 ? sim_ms / mrc_ms : 0.0;
  const double speedup_vs_replays = mrc_ms > 0.0 ? replay_ms / mrc_ms : 0.0;
  NoteExact(result, "timing", "mrc", "ms", mrc_ms);
  NoteExact(result, "timing", "replays", "ms", replay_ms);
  NoteExact(result, "timing", "simulations", "ms", sim_ms);
  NoteExact(result, "timing", "speedup", "mrc_vs_simulations",
            speedup_vs_sims);
  NoteExact(result, "timing", "speedup", "mrc_vs_replays",
            speedup_vs_replays);

  std::cout << "== Figure 8 from one trace pass (Mattson MRC) ==\n";
  if (ctx.options.csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  std::cout << "exact-match check passed at every cache size.\n"
            << "one Mattson pass: " << util::FormatDouble(mrc_ms, 1)
            << " ms vs " << util::FormatDouble(replay_ms, 1)
            << " ms for 6 replays ("
            << util::FormatDouble(speedup_vs_replays, 1) << "x) and "
            << util::FormatDouble(sim_ms, 1) << " ms for 6 simulations ("
            << util::FormatDouble(speedup_vs_sims, 1) << "x)\n";
  return result;
}

ScenarioResult RunMicroTraceScenario(const ScenarioContext& ctx) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(ctx.config.workload);
  const uint64_t transactions = ctx.options.transactions;
  const uint64_t trials = std::max<uint64_t>(2, ctx.options.replications);
  ScenarioResult result;

  // --- record overhead: traced vs untraced emulator runs ------------------
  // Both legs time exactly the drive loop (plus, in the traced leg, the
  // recorder flush/finish that recording implies); emulator, generator
  // and writer construction stay outside both timed regions so the
  // overhead number reports tracing cost, not setup cost.
  emu::O2Config cfg;  // default 16 MB cache
  double untraced_ms = 0.0;
  double traced_ms = 0.0;
  uint64_t accesses = 0;
  for (uint64_t t = 0; t < trials; ++t) {
    {
      emu::O2Emulator o2(cfg, &base, ctx.options.seed + t);
      ocb::WorkloadGenerator gen(
          &base, desp::RandomStream(ctx.options.seed + t));
      const auto start = std::chrono::steady_clock::now();
      o2.RunTransactions(gen, transactions);
      untraced_ms += MsSince(start);
      accesses = o2.cache().stats().accesses;
    }
    {
      emu::O2Emulator o2(cfg, &base, ctx.options.seed + t);
      ocb::WorkloadGenerator gen(
          &base, desp::RandomStream(ctx.options.seed + t));
      std::stringstream sink(std::ios::in | std::ios::out |
                             std::ios::binary);
      trace::Writer writer(
          &sink,
          O2TraceHeader(cfg, base, o2.NumPages(), ctx.options.seed + t));
      trace::Recorder recorder(&writer);
      o2.SetRecorder(&recorder);
      const auto start = std::chrono::steady_clock::now();
      o2.RunTransactions(gen, transactions);
      recorder.Flush();
      writer.Finish(o2.TraceCountersNow());
      traced_ms += MsSince(start);
    }
  }
  const double overhead =
      untraced_ms > 0.0 ? (traced_ms - untraced_ms) / untraced_ms : 0.0;
  NoteExact(result, "record", "overhead", "untraced_ms",
            untraced_ms / static_cast<double>(trials));
  NoteExact(result, "record", "overhead", "traced_ms",
            traced_ms / static_cast<double>(trials));
  NoteExact(result, "record", "overhead", "relative", overhead);

  // --- replay throughput ---------------------------------------------------
  std::stringstream trace_stream(std::ios::in | std::ios::out |
                                 std::ios::binary);
  RecordO2Trace(cfg, base, transactions, ctx.options.seed, trace_stream);
  trace::Reader reader(&trace_stream);
  double replay_total_ms = 0.0;
  for (uint64_t t = 0; t < trials; ++t) {
    reader.Rewind();
    const auto start = std::chrono::steady_clock::now();
    trace::ReplayPages(reader);
    replay_total_ms += MsSince(start);
  }
  const double replay_ms = replay_total_ms / static_cast<double>(trials);
  const double pages_per_s =
      replay_ms > 0.0
          ? static_cast<double>(reader.header().page_records) * 1000.0 /
                replay_ms
          : 0.0;
  NoteExact(result, "replay", "throughput", "pages_per_s", pages_per_s);
  NoteExact(result, "replay", "throughput", "ms", replay_ms);

  // --- MRC speedup: one pass vs per-size replays vs per-size runs ---------
  const auto t_mrc = std::chrono::steady_clock::now();
  reader.Rewind();
  trace::MrcAnalyzer analyzer(reader.header().num_classes);
  analyzer.Consume(reader);
  const trace::MrcResult mrc = analyzer.Finish();
  const double mrc_ms = MsSince(t_mrc);

  double sweep_replay_ms = 0.0;
  double sweep_sim_ms = 0.0;
  const std::vector<double>& memory_points = MemoryPoints();
  for (const double mb : memory_points) {
    const auto pages = static_cast<uint64_t>(
        mb * 1024 * 1024 / reader.header().page_size);
    trace::ReplayConfig replay_config;
    replay_config.buffer_pages = pages;
    replay_config.policy =
        static_cast<int>(storage::ReplacementPolicy::kLru);
    reader.Rewind();
    auto start = std::chrono::steady_clock::now();
    const trace::ReplayStats replayed =
        trace::ReplayPages(reader, replay_config);
    sweep_replay_ms += MsSince(start);
    VOODB_CHECK_MSG(replayed.hits == mrc.HitsAt(pages),
                    "micro_trace: Mattson hits diverged from replay at "
                        << mb << " MB");
    start = std::chrono::steady_clock::now();
    emu::O2Config point_cfg;
    point_cfg.cache_pages = pages;
    emu::O2Emulator o2(point_cfg, &base, ctx.options.seed);
    ocb::WorkloadGenerator gen(&base,
                               desp::RandomStream(ctx.options.seed));
    o2.RunTransactions(gen, transactions);
    sweep_sim_ms += MsSince(start);
  }
  NoteExact(result, "mrc", "sweep", "mrc_ms", mrc_ms);
  NoteExact(result, "mrc", "sweep", "replays_ms", sweep_replay_ms);
  NoteExact(result, "mrc", "sweep", "simulations_ms", sweep_sim_ms);
  NoteExact(result, "mrc", "sweep", "speedup_vs_simulations",
            mrc_ms > 0.0 ? sweep_sim_ms / mrc_ms : 0.0);
  NoteExact(result, "mrc", "sweep", "speedup_vs_replays",
            mrc_ms > 0.0 ? sweep_replay_ms / mrc_ms : 0.0);

  util::TextTable table({"Metric", "Value"});
  table.AddRow({"record overhead",
                util::FormatDouble(overhead * 100.0, 1) + " % over " +
                    util::FormatDouble(untraced_ms / trials, 1) +
                    " ms untraced (" + std::to_string(accesses) +
                    " page accesses)"});
  table.AddRow({"replay throughput",
                util::FormatDouble(pages_per_s / 1e6, 2) + " M pages/s"});
  table.AddRow({"MRC pass", util::FormatDouble(mrc_ms, 1) + " ms for " +
                                std::to_string(mrc.page_accesses) +
                                " accesses"});
  table.AddRow({"MRC vs 6 replays",
                util::FormatDouble(
                    mrc_ms > 0.0 ? sweep_replay_ms / mrc_ms : 0.0, 1) +
                    "x"});
  table.AddRow({"MRC vs 6 simulations",
                util::FormatDouble(
                    mrc_ms > 0.0 ? sweep_sim_ms / mrc_ms : 0.0, 1) +
                    "x"});
  std::cout << "== Micro: trace record / replay / MRC analytics ==\n";
  if (ctx.options.csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  return result;
}

}  // namespace voodb::bench
