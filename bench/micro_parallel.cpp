#include "micro_parallel.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "desp/parallel_scheduler.hpp"
#include "desp/random.hpp"
#include "exp/executor.hpp"
#include "harness.hpp"
#include "util/check.hpp"
#include "util/table.hpp"

namespace voodb::bench {

namespace {

using desp::EventKey;
using desp::ParallelScheduler;
using desp::RandomStream;

constexpr double kLookaheadMs = 2.0;

/// FNV-1a over executed event keys — the identity witness.
struct Digest {
  uint64_t h = 0xcbf29ce484222325ull;

  void Fold(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xFF;
      h *= 0x100000001b3ull;
    }
  }

  static void Hook(void* ctx, const EventKey& key) {
    auto* d = static_cast<Digest*>(ctx);
    uint64_t bits;
    std::memcpy(&bits, &key.time, sizeof(bits));
    d->Fold(bits);
    d->Fold(static_cast<uint64_t>(static_cast<int64_t>(key.priority)));
    d->Fold(key.seq);
  }
};

struct RunOutcome {
  uint64_t executed = 0;
  uint64_t windows = 0;
  uint64_t cross = 0;
  uint64_t digest = 0;
  double wall_ms = 0.0;
};

/// The workload: per partition, `chains` self-rescheduling chains of
/// `depth` hops with pseudo-random sub-lookahead delays; every fourth
/// hop also pings the next partition round-robin with a super-lookahead
/// delay.  Event actions carry a small live payload so each fire does
/// real work (matching the actor hot path, not an empty lambda).
RunOutcome RunWorkload(size_t partitions, size_t threads, uint64_t chains,
                       uint64_t depth) {
  ParallelScheduler::Options options;
  options.partitions = partitions;
  ParallelScheduler kernel(options);
  if (partitions > 1) kernel.SetUniformEdgeDelay(kLookaheadMs);

  std::vector<Digest> digests(partitions);
  for (size_t p = 0; p < partitions; ++p) {
    kernel.partition(p).SetTraceHook(&Digest::Hook, &digests[p]);
  }

  struct Chain {
    ParallelScheduler* kernel;
    size_t partition;
    size_t partitions;
    uint64_t remaining;
    uint64_t id;
    RandomStream rng;
    uint64_t acc = 0;

    void Hop() {
      acc += id * remaining;
      if (--remaining == 0) return;
      const double delay = rng.Uniform(0.1, 1.9);
      if (remaining % 4 == 0 && partitions > 1) {
        const size_t next = (partition + 1) % partitions;
        kernel->SendTo(partition, next, kLookaheadMs + delay,
                       [this] { acc += 1; });
      }
      kernel->partition(partition).Schedule(delay, [this] { Hop(); });
    }
  };

  std::vector<std::unique_ptr<Chain>> state;
  state.reserve(partitions * chains);
  for (size_t p = 0; p < partitions; ++p) {
    for (uint64_t c = 0; c < chains; ++c) {
      auto chain = std::make_unique<Chain>();
      chain->kernel = &kernel;
      chain->partition = p;
      chain->partitions = partitions;
      chain->remaining = depth;
      chain->id = p * chains + c;
      chain->rng = RandomStream(0xC0FFEE).Derive(chain->id);
      Chain* raw = chain.get();
      kernel.partition(p).Schedule(raw->rng.Uniform(0.0, 1.0),
                                   [raw] { raw->Hop(); });
      state.push_back(std::move(chain));
    }
  }

  RunOutcome outcome;
  const auto start = std::chrono::steady_clock::now();
  if (threads > 1) {
    exp::ThreadPool pool({threads});
    outcome.executed = kernel.Run(&pool);
  } else {
    outcome.executed = kernel.Run();
  }
  outcome.wall_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  outcome.windows = kernel.Windows();
  outcome.cross = kernel.CrossEvents();
  Digest fold;
  for (const Digest& d : digests) fold.Fold(d.h);
  outcome.digest = fold.h;
  return outcome;
}

}  // namespace

exp::ScenarioResult RunMicroParallelScenario(
    const exp::ScenarioContext& ctx) {
  const uint64_t chains = std::max<uint64_t>(1, ctx.options.transactions / 8);
  constexpr uint64_t kDepth = 120;
  const uint64_t trials = std::max<uint64_t>(2, ctx.options.replications);
  constexpr size_t kPartitions = 8;

  util::TextTable table({"Partitions", "Threads", "Events", "Windows",
                         "Cross", "Wall (ms)", "Speedup", "Identical"});
  exp::ScenarioResult result;

  // Serial reference: partitions decomposed but executed on the calling
  // thread.  Best-of-trials wall clock (micro benches measure the fast
  // path, not scheduler noise).
  RunOutcome serial;
  double serial_ms = 0.0;
  for (uint64_t t = 0; t < trials; ++t) {
    const RunOutcome r = RunWorkload(kPartitions, 1, chains, kDepth);
    if (t == 0 || r.wall_ms < serial_ms) serial_ms = r.wall_ms;
    serial = r;
  }
  table.AddRow({std::to_string(kPartitions), "1",
                std::to_string(serial.executed),
                std::to_string(serial.windows), std::to_string(serial.cross),
                util::FormatDouble(serial_ms, 1), "1.00x", "ref"});
  RecordEstimate("parallel", std::to_string(kPartitions) + "p_1t", "wall_ms",
                 Estimate{serial_ms, 0.0});

  for (size_t threads : {2u, 4u, 8u}) {
    RunOutcome pooled;
    double pooled_ms = 0.0;
    for (uint64_t t = 0; t < trials; ++t) {
      const RunOutcome r = RunWorkload(kPartitions, threads, chains, kDepth);
      if (t == 0 || r.wall_ms < pooled_ms) pooled_ms = r.wall_ms;
      pooled = r;
    }
    // The contract the whole PR rests on: pooled == serial, bit for bit.
    VOODB_CHECK_MSG(pooled.digest == serial.digest &&
                        pooled.executed == serial.executed &&
                        pooled.windows == serial.windows &&
                        pooled.cross == serial.cross,
                    "parallel kernel diverged from the serial reference at "
                        << threads << " threads");
    const double speedup = pooled_ms > 0.0 ? serial_ms / pooled_ms : 0.0;
    const std::string cell =
        std::to_string(kPartitions) + "p_" + std::to_string(threads) + "t";
    table.AddRow({std::to_string(kPartitions), std::to_string(threads),
                  std::to_string(pooled.executed),
                  std::to_string(pooled.windows),
                  std::to_string(pooled.cross),
                  util::FormatDouble(pooled_ms, 1),
                  util::FormatDouble(speedup, 2) + "x", "yes"});
    RecordEstimate("parallel", cell, "wall_ms", Estimate{pooled_ms, 0.0});
    RecordEstimate("parallel", cell, "speedup", Estimate{speedup, 0.0});
    result["parallel/" + cell + "/speedup/mean"] = speedup;
  }
  result["parallel/events/executed/mean"] =
      static_cast<double>(serial.executed);

  std::cout << "== Conservative parallel kernel (" << kPartitions
            << " partitions, " << chains << " chains x " << kDepth
            << " hops each, best of " << trials << " trials; "
            << exp::ThreadPool::HardwareThreads()
            << " hardware threads) ==\n";
  if (ctx.options.csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  std::cout << "Speedup needs free cores; the digest identity check is "
               "machine-independent.\n";
  return result;
}

}  // namespace voodb::bench
