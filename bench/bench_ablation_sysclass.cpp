/// \file bench_ablation_sysclass.cpp
/// \brief Ablation of Table 3's SYSCLASS: the four Client-Server
/// architectures of the generic model under identical workload and a
/// finite network, reporting I/Os, network traffic and response time.
#include <iostream>

#include "desp/random.hpp"
#include "harness.hpp"
#include "ocb/workload.hpp"
#include "voodb/system.hpp"

int main(int argc, char** argv) {
  using namespace voodb;
  using namespace voodb::bench;
  const RunOptions options = ParseOptions(
      argc, argv, "Ablation — system class (SYSCLASS) comparison");

  ocb::OcbParameters wl;
  wl.num_classes = 20;
  wl.num_objects = 5000;
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(wl);

  util::TextTable table({"SYSCLASS", "Mean I/Os", "Net MB", "Resp (ms)",
                         "Throughput (tps)"});
  for (const core::SystemClass sc :
       {core::SystemClass::kCentralized, core::SystemClass::kObjectServer,
        core::SystemClass::kPageServer, core::SystemClass::kDbServer}) {
    const auto metrics = ReplicateMetrics(
        options, options.seed, [&](uint64_t seed, desp::MetricSink& sink) {
          core::VoodbConfig cfg;
          cfg.event_queue = options.event_queue;
          cfg.system_class = sc;
          cfg.network_throughput_mbps = 1.0;  // Table 3 default
          cfg.buffer_pages = 1500;
          core::VoodbSystem sys(cfg, &base, nullptr, seed);
          ocb::WorkloadGenerator gen(&base,
                                     desp::RandomStream(seed).Derive(1));
          const core::PhaseMetrics m =
              sys.RunTransactions(gen, options.transactions);
          sink.Observe("total_ios", static_cast<double>(m.total_ios));
          sink.Observe("network_mb",
                       static_cast<double>(m.network_bytes) /
                           (1024.0 * 1024.0));
          sink.Observe("mean_response_ms", m.mean_response_ms);
          sink.Observe("throughput_tps", m.ThroughputTps());
        });
    for (const auto& [name, estimate] : metrics) {
      RecordEstimate("sysclass", ToString(sc), name, estimate);
    }
    table.AddRow({ToString(sc), WithCi(metrics.at("total_ios")),
                  util::FormatDouble(metrics.at("network_mb").mean, 2),
                  util::FormatDouble(metrics.at("mean_response_ms").mean, 2),
                  util::FormatDouble(metrics.at("throughput_tps").mean, 2)});
  }
  std::cout << "== Ablation: system class (SYSCLASS) ==\n";
  if (options.csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  std::cout << "Expectation: identical server I/Os (same buffer and "
               "placement) but network traffic PageServer > ObjectServer > "
               "DbServer > Centralized, reflected in response times.\n";
  return 0;
}
