/// \file bench_ablation_sysclass.cpp
/// \brief Thin wrapper over the "ablation_sysclass" catalog scenario (SYSCLASS architecture ablation);
/// equivalent to `voodb run ablation_sysclass` with the same flags.
#include "harness.hpp"

int main(int argc, char** argv) {
  return voodb::bench::RunScenarioMain("ablation_sysclass", argc, argv);
}
