/// \file bench_table6_dstc_midsize.cpp
/// \brief Thin wrapper over the "table6" catalog scenario (Table 6: DSTC effects, mid-sized base);
/// equivalent to `voodb run table6` with the same flags.
#include "harness.hpp"

int main(int argc, char** argv) {
  return voodb::bench::RunScenarioMain("table6", argc, argv);
}
