/// \file bench_table6_dstc_midsize.cpp
/// \brief Reproduces Table 6: effects of DSTC on the performances of
/// Texas (mean number of I/Os), mid-sized base (NC=50, NO=20000, 64 MB).
///
/// The "Benchmark" column runs the Texas emulator, whose *physical OIDs*
/// force a full database scan plus reference patching during the
/// reorganization; the "Simulation" column runs VOODB with logical OIDs.
/// The paper analyses exactly this asymmetry: usage numbers agree, while
/// the clustering overhead differs by a factor ~36 (ours: see the
/// printed ratio and EXPERIMENTS.md).
#include <iostream>

#include "sweeps.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace voodb::bench;
  const RunOptions options = ParseOptions(
      argc, argv,
      "Table 6 — effects of DSTC on the performances (mean number of "
      "I/Os), mid-sized base");
  const DstcComparison cmp = RunDstcExperiment(options, /*memory_mb=*/64.0);

  voodb::util::TextTable table(
      {"Row", "Bench.", "Sim.", "Ratio", "Paper bench", "Paper sim",
       "Paper ratio"});
  auto ratio = [](const Estimate& a, const Estimate& b) {
    return b.mean > 0.0 ? a.mean / b.mean : 0.0;
  };
  table.AddRow({"Pre-clustering usage", WithCi(cmp.bench.pre),
                WithCi(cmp.sim.pre),
                voodb::util::FormatDouble(ratio(cmp.bench.pre, cmp.sim.pre), 4),
                "1890.70", "1878.80", "1.0063"});
  table.AddRow({"Clustering overhead", WithCi(cmp.bench.overhead),
                WithCi(cmp.sim.overhead),
                voodb::util::FormatDouble(
                    ratio(cmp.bench.overhead, cmp.sim.overhead), 4),
                "12799.60", "354.50", "36.1060"});
  table.AddRow({"Post-clustering usage", WithCi(cmp.bench.post),
                WithCi(cmp.sim.post),
                voodb::util::FormatDouble(ratio(cmp.bench.post, cmp.sim.post),
                                          4),
                "330.60", "350.50", "0.9432"});
  table.AddRow({"Gain", WithCi(cmp.bench.gain),
                WithCi(cmp.sim.gain),
                voodb::util::FormatDouble(ratio(cmp.bench.gain, cmp.sim.gain),
                                          4),
                "5.71", "5.36", "1.0652"});
  std::cout << "== Table 6: Effects of DSTC on the performances (mean "
               "number of I/Os) - mid-sized base ==\n";
  if (options.csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  std::cout << "Reproduction targets: usage rows bench~sim (ratio ~1); "
               "overhead bench >> sim (physical vs logical OIDs); gain "
               "substantially > 1.\n";
  return 0;
}
