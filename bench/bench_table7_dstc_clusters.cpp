/// \file bench_table7_dstc_clusters.cpp
/// \brief Reproduces Table 7: DSTC clustering statistics — number of
/// clusters built and mean objects per cluster, real system (emulator)
/// vs simulation.
#include <iostream>

#include "sweeps.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace voodb::bench;
  const RunOptions options =
      ParseOptions(argc, argv, "Table 7 — DSTC clustering statistics");
  const DstcComparison cmp = RunDstcExperiment(options, /*memory_mb=*/64.0);

  voodb::util::TextTable table({"Row", "Bench.", "Sim.", "Ratio",
                                "Paper bench", "Paper sim", "Paper ratio"});
  auto ratio = [](const Estimate& a, const Estimate& b) {
    return b.mean > 0.0 ? a.mean / b.mean : 0.0;
  };
  table.AddRow({"Mean number of clusters", WithCi(cmp.bench.clusters),
                WithCi(cmp.sim.clusters),
                voodb::util::FormatDouble(
                    ratio(cmp.bench.clusters, cmp.sim.clusters), 4),
                "82.23", "84.01", "0.9788"});
  table.AddRow({"Mean number of obj./clust.",
                WithCi(cmp.bench.cluster_size),
                WithCi(cmp.sim.cluster_size),
                voodb::util::FormatDouble(
                    ratio(cmp.bench.cluster_size, cmp.sim.cluster_size), 4),
                "12.83", "13.73", "0.9344"});
  std::cout << "== Table 7: DSTC clustering ==\n";
  if (options.csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  std::cout << "Reproduction target: benchmark and simulation agree "
               "(ratio ~1), demonstrating the simulated Clustering "
               "Manager behaves like the real module.\n";
  return 0;
}
