/// \file bench_table7_dstc_clusters.cpp
/// \brief Thin wrapper over the "table7" catalog scenario (Table 7: DSTC clustering statistics);
/// equivalent to `voodb run table7` with the same flags.
#include "harness.hpp"

int main(int argc, char** argv) {
  return voodb::bench::RunScenarioMain("table7", argc, argv);
}
