/// \file bench_fig08_o2_cache_size.cpp
/// \brief Reproduces Figure 8: O2, mean number of I/Os vs server cache
/// size (8..64 MB) on the NC=50 / NO=20000 base (~28 MB in O2): linear
/// degradation once the base outgrows the cache.
#include "sweeps.hpp"

int main(int argc, char** argv) {
  using namespace voodb::bench;
  const RunOptions options = ParseOptions(
      argc, argv,
      "Figure 8 — mean number of I/Os depending on cache size (O2)");
  RunMemorySweep(options, TargetSystem::kO2,
                 "Figure 8: O2, I/Os vs cache size (MB)",
                 /*paper_bench=*/{52000, 45000, 38000, 26000, 15000, 7000},
                 /*paper_sim=*/{50000, 43000, 36000, 24000, 14000, 6500});
  return 0;
}
