/// \file bench_fig08_o2_cache_size.cpp
/// \brief Thin wrapper over the "fig08" catalog scenario (Figure 8: O2, I/Os vs server cache size);
/// equivalent to `voodb run fig08` with the same flags.
#include "harness.hpp"

int main(int argc, char** argv) {
  return voodb::bench::RunScenarioMain("fig08", argc, argv);
}
