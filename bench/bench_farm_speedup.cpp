/// \file bench_farm_speedup.cpp
/// \brief Thin wrapper over the "farm_speedup" catalog scenario
/// (replication-farm wall-clock speedup with a bitwise identity check);
/// equivalent to `voodb run farm_speedup` with the same flags, but keeps
/// the BENCH_farm.json identity.
#include "harness.hpp"

int main(int argc, char** argv) {
  return voodb::bench::RunScenarioMain("farm_speedup", argc, argv, "farm");
}
