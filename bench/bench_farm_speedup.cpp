/// \file bench_farm_speedup.cpp
/// \brief Wall-clock speedup of the parallel replication farm vs the
/// serial path on a non-trivial VOODB workload, with a bitwise identity
/// check between the two runs.
///
/// The paper's protocol is ~100 replications per experiment; they are
/// independent, so an 8-thread farm should approach 8x on 8 free cores
/// (expect >= 3x with scheduling overhead and shared caches).  The
/// printed numbers depend on the machine's free parallelism: on a
/// single-core box both runs take the same time — the identity check
/// still proves the farm is safe to use everywhere.
#include <chrono>
#include <iostream>

#include "exp/executor.hpp"
#include "exp/farm.hpp"
#include "harness.hpp"
#include "voodb/experiment.hpp"

namespace {

double WallMs(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace voodb;
  using namespace voodb::bench;
  const RunOptions options = ParseOptions(
      argc, argv,
      "Farm speedup — parallel vs serial replications of a VOODB "
      "experiment (identical results, wall-clock ratio)");

  core::ExperimentConfig ec;
  ec.system.system_class = core::SystemClass::kCentralized;
  ec.system.event_queue = options.event_queue;
  ec.system.buffer_pages = 600;
  ec.workload.num_classes = 20;
  ec.workload.num_objects = 5000;
  ec.workload.hot_transactions = static_cast<uint32_t>(options.transactions);
  ec.replications = options.replications;
  ec.base_seed = options.seed;
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(ec.workload);
  const size_t threads =
      options.threads == 0 ? 8 : options.threads;  // headline point: 8

  desp::ReplicationResult serial;
  desp::ReplicationResult parallel;
  const double serial_ms = WallMs([&] {
    ec.threads = 1;
    serial = core::Experiment::RunOnBase(ec, base);
  });
  const double parallel_ms = WallMs([&] {
    ec.threads = threads;
    parallel = core::Experiment::RunOnBase(ec, base);
  });

  bool identical = serial.replications() == parallel.replications();
  for (const std::string& name : serial.MetricNames()) {
    const desp::Tally& a = serial.Metric(name);
    const desp::Tally& b = parallel.Metric(name);
    identical = identical && a.count() == b.count() && a.mean() == b.mean() &&
                a.variance() == b.variance() && a.min() == b.min() &&
                a.max() == b.max();
  }

  const double speedup = parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0;
  util::TextTable table({"Path", "Threads", "Wall (ms)", "Mean I/Os"});
  table.AddRow({"serial", "1", util::FormatDouble(serial_ms, 1),
                util::FormatDouble(serial.Metric("total_ios").mean(), 1)});
  table.AddRow({"farm", std::to_string(threads),
                util::FormatDouble(parallel_ms, 1),
                util::FormatDouble(parallel.Metric("total_ios").mean(), 1)});
  std::cout << "== Farm speedup (" << options.replications
            << " replications) ==\n";
  if (options.csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  std::cout << "Speedup: " << util::FormatDouble(speedup, 2) << "x at "
            << threads << " threads ("
            << exp::ThreadPool::HardwareThreads()
            << " hardware threads); results bitwise identical: "
            << (identical ? "yes" : "NO — BUG") << "\n";

  Estimate speedup_estimate;
  speedup_estimate.mean = speedup;
  RecordEstimate("farm_speedup", std::to_string(threads) + "_threads",
                 "speedup", speedup_estimate);
  return identical ? 0 : 1;
}
