/// \file bench_ablation_vm_model.cpp
/// \brief Thin wrapper over the "ablation_vm_model" catalog scenario (Texas VM-model-knob ablation);
/// equivalent to `voodb run ablation_vm_model` with the same flags.
#include "harness.hpp"

int main(int argc, char** argv) {
  return voodb::bench::RunScenarioMain("ablation_vm_model", argc, argv);
}
