/// \file bench_ablation_vm_model.cpp
/// \brief Ablation of the Texas virtual-memory model's behavioural knobs:
/// reserve-on-swizzle on/off, reservation LRU insertion hot/cold, and
/// dirty-on-load on/off.  Justifies the modelling choices documented in
/// DESIGN.md (the hot/reserving/dirtying combination is what produces
/// Figure 11's exponential degradation).
#include <iostream>

#include "desp/random.hpp"
#include "emu/texas_emulator.hpp"
#include "harness.hpp"
#include "ocb/workload.hpp"

int main(int argc, char** argv) {
  using namespace voodb;
  using namespace voodb::bench;
  const RunOptions options = ParseOptions(
      argc, argv, "Ablation — Texas virtual-memory model knobs");

  ocb::OcbParameters wl;
  wl.num_classes = 50;
  wl.num_objects = 20000;
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(wl);

  struct Variant {
    const char* name;
    bool reserve;
    bool hot;
    bool dirty;
  };
  const Variant variants[] = {
      {"full model (reserve, hot, dirty)", true, true, true},
      {"cold reservations", true, false, true},
      {"no reservations", false, false, true},
      {"clean loads (no swizzle dirty)", true, true, false},
      {"plain demand paging", false, false, false},
  };

  util::TextTable table({"Variant", "I/Os @8MB", "I/Os @16MB", "I/Os @64MB",
                         "8MB/64MB"});
  for (const Variant& v : variants) {
    double at[3] = {0, 0, 0};
    const double memories[3] = {8.0, 16.0, 64.0};
    for (int i = 0; i < 3; ++i) {
      const Estimate e = Replicate(
          options, options.seed, [&](uint64_t seed) {
            emu::TexasConfig cfg;
            cfg.memory_pages =
                emu::TexasConfig::FramesForMemory(memories[i], 4096);
            cfg.reserve_references = v.reserve;
            cfg.reservations_enter_hot = v.hot;
            cfg.dirty_on_load = v.dirty;
            emu::TexasEmulator texas(cfg, &base, seed);
            ocb::WorkloadGenerator gen(&base, desp::RandomStream(seed));
            return static_cast<double>(
                texas.RunTransactions(gen, options.transactions).total_ios);
          });
      RecordEstimate("vm_model", v.name,
                     "ios_at_" + util::FormatDouble(memories[i], 0) + "mb",
                     e);
      at[i] = e.mean;
    }
    table.AddRow({v.name, util::FormatDouble(at[0], 0),
                  util::FormatDouble(at[1], 0), util::FormatDouble(at[2], 0),
                  util::FormatDouble(at[2] > 0 ? at[0] / at[2] : 0, 1)});
  }
  std::cout << "== Ablation: Texas VM model knobs (Figure 11 mechanism) ==\n";
  if (options.csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  std::cout << "Expectation: the degradation factor under memory pressure "
               "collapses as each Texas behaviour is removed; plain demand "
               "paging is the O2-like linear baseline.\n";
  return 0;
}
