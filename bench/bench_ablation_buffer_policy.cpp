/// \file bench_ablation_buffer_policy.cpp
/// \brief Thin wrapper over the "ablation_buffer_policy" catalog scenario (PGREP page-replacement ablation);
/// equivalent to `voodb run ablation_buffer_policy` with the same flags.
#include "harness.hpp"

int main(int argc, char** argv) {
  return voodb::bench::RunScenarioMain("ablation_buffer_policy", argc, argv);
}
