/// \file bench_ablation_buffer_policy.cpp
/// \brief Ablation of Table 3's PGREP: buffer page replacement strategies
/// under the OCB workload with a buffer smaller than the base — the
/// paper's §5 notes buffering strategies "influence the performances of
/// OODBs a lot".
#include <iostream>

#include "desp/random.hpp"
#include "harness.hpp"
#include "ocb/workload.hpp"
#include "voodb/system.hpp"

int main(int argc, char** argv) {
  using namespace voodb;
  using namespace voodb::bench;
  const RunOptions options = ParseOptions(
      argc, argv, "Ablation — buffer page replacement strategy (PGREP)");

  ocb::OcbParameters wl;
  wl.num_classes = 50;
  wl.num_objects = 20000;
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(wl);

  util::TextTable table({"PGREP", "Mean I/Os", "Hit rate"});
  for (const storage::ReplacementPolicy policy :
       {storage::ReplacementPolicy::kRandom, storage::ReplacementPolicy::kFifo,
        storage::ReplacementPolicy::kLfu, storage::ReplacementPolicy::kLru,
        storage::ReplacementPolicy::kLruK, storage::ReplacementPolicy::kClock,
        storage::ReplacementPolicy::kGclock}) {
    const auto metrics = ReplicateMetrics(
        options, options.seed, [&](uint64_t seed, desp::MetricSink& sink) {
          core::VoodbConfig cfg;
          cfg.event_queue = options.event_queue;
          cfg.system_class = core::SystemClass::kCentralized;
          cfg.buffer_pages = 1200;  // ~1/4 of the base
          cfg.page_replacement = policy;
          cfg.lru_k = 2;
          core::VoodbSystem sys(cfg, &base, nullptr, seed);
          ocb::WorkloadGenerator gen(&base,
                                     desp::RandomStream(seed).Derive(1));
          const core::PhaseMetrics m =
              sys.RunTransactions(gen, options.transactions);
          sink.Observe("total_ios", static_cast<double>(m.total_ios));
          sink.Observe("hit_rate", m.HitRate());
        });
    const Estimate ios = metrics.at("total_ios");
    RecordEstimate("pgrep", ToString(policy), "total_ios", ios);
    RecordEstimate("pgrep", ToString(policy), "hit_rate",
                   metrics.at("hit_rate"));
    table.AddRow({ToString(policy), WithCi(ios),
                  util::FormatDouble(metrics.at("hit_rate").mean, 3)});
  }
  std::cout << "== Ablation: page replacement (PGREP) ==\n";
  if (options.csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  std::cout << "Expectation: recency-aware policies (LRU, LRU-K, CLOCK, "
               "GCLOCK) beat RANDOM/FIFO on the traversal-heavy OCB mix.\n";
  return 0;
}
