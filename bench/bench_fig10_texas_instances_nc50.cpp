/// \file bench_fig10_texas_instances_nc50.cpp
/// \brief Reproduces Figure 10: Texas, mean number of I/Os vs number of
/// instances (500..20000), 50-class schema, 64 MB host.
#include "sweeps.hpp"

int main(int argc, char** argv) {
  using namespace voodb::bench;
  const RunOptions options = ParseOptions(
      argc, argv,
      "Figure 10 — mean number of I/Os depending on number of instances "
      "(Texas, 50 classes)");
  RunInstanceSweep(options, TargetSystem::kTexas, 50,
                   "Figure 10: Texas, NC=50, I/Os vs NO",
                   /*paper_bench=*/{280, 520, 950, 1900, 3100, 4700},
                   /*paper_sim=*/{260, 490, 900, 1800, 2900, 4500});
  return 0;
}
