/// \file bench_fig10_texas_instances_nc50.cpp
/// \brief Thin wrapper over the "fig10" catalog scenario (Figure 10: Texas, I/Os vs instances, NC=50);
/// equivalent to `voodb run fig10` with the same flags.
#include "harness.hpp"

int main(int argc, char** argv) {
  return voodb::bench::RunScenarioMain("fig10", argc, argv);
}
