/// \file bench_micro_parallel.cpp
/// \brief Thin wrapper over the "micro_parallel" catalog scenario (the
/// conservative parallel kernel's speedup + identity bench); equivalent
/// to `voodb run micro_parallel` with the same flags, but keeps the
/// legacy BENCH_parallel.json identity.
#include "harness.hpp"

int main(int argc, char** argv) {
  return voodb::bench::RunScenarioMain("micro_parallel", argc, argv,
                                       "parallel");
}
