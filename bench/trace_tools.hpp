/// \file trace_tools.hpp
/// \brief The `voodb trace record|replay|analyze` subcommands.
///
/// The trace workflow the driver exposes:
///
///   voodb trace record --out=run.vtrc [--scenario=fig08] [--set k=v ...]
///       records one fixed-seed run — the VOODB simulation by default,
///       or either direct-execution emulator via --system=o2|texas —
///       into a compact columnar trace.
///   voodb trace replay --in=run.vtrc [--buffer-pages=N] [--policy=lru]
///       feeds the recorded page stream through a fresh buffer manager
///       under any replacement policy / capacity; --verify exits
///       non-zero unless the recorded run's hit/miss/eviction/write-back
///       counters are reproduced bit-exactly.
///   voodb trace analyze --in=run.vtrc [--sizes=256,1024,4096]
///       one-pass Mattson stack-distance analytics: the exact LRU
///       hit-ratio curve at every cache size, the reuse-distance
///       histogram, working-set size and per-class access skew.
///
/// Shared helpers used by the trace scenarios (`trace_mrc`,
/// `fig08_mrc`, `micro_trace`) live here too, so the subcommands and the
/// catalog entries exercise the same code.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "emu/o2_emulator.hpp"
#include "trace/format.hpp"
#include "voodb/config.hpp"

namespace voodb::bench {

/// Entry point for `voodb trace ...`; `argv` starts after the "trace"
/// word.  Returns a process exit code.
int RunTraceCommand(int argc, const char* const* argv);

/// Header describing an O2-emulator recording (`num_pages` from the
/// built emulator's placement).  Shared by the record subcommand, the
/// micro bench's hand-rolled timing loops, and RecordO2Trace.
trace::Header O2TraceHeader(const emu::O2Config& config,
                            const ocb::ObjectBase& base, uint64_t num_pages,
                            uint64_t seed);

/// Records `transactions` fixed-seed transactions of the O2 emulator
/// (built from `config` over `base`) onto `os` and finishes the trace
/// with the emulator's cache counters.  The recorded page stream is
/// independent of the cache size, so one recording serves every
/// replayed configuration.
void RecordO2Trace(const emu::O2Config& config, const ocb::ObjectBase& base,
                   uint64_t transactions, uint64_t seed, std::ostream& os);

/// Records a VOODB simulation run to `path` by running `transactions`
/// transactions over `base` with `system` (trace_record / trace_path
/// are set here).  Returns the finished trace's counters.
trace::TraceCounters RecordSimulationTrace(core::VoodbConfig system,
                                           const ocb::ObjectBase& base,
                                           uint64_t transactions,
                                           uint64_t seed,
                                           const std::string& path);

}  // namespace voodb::bench
