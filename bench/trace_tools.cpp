#include "trace_tools.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "desp/random.hpp"
#include "emu/texas_emulator.hpp"
#include "exp/scenario.hpp"
#include "ocb/workload.hpp"
#include "scenarios.hpp"
#include "trace/counters.hpp"
#include "trace/mrc.hpp"
#include "trace/reader.hpp"
#include "trace/recorder.hpp"
#include "trace/replayer.hpp"
#include "trace/writer.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "voodb/param_registry.hpp"
#include "voodb/system.hpp"

namespace voodb::bench {

namespace {

using core::ParamRegistry;
using core::ParamTarget;

/// Applies repeated `--set name=value` assignments onto a config pair.
void ApplySets(const std::vector<std::string>& sets,
               core::VoodbConfig* system, ocb::OcbParameters* workload) {
  const ParamRegistry& registry = ParamRegistry::Instance();
  for (const std::string& assignment : sets) {
    const size_t eq = assignment.find('=');
    VOODB_CHECK_MSG(eq != std::string::npos && eq > 0,
                    "--set expects name=value, got '" << assignment << "'");
    registry.Set(ParamTarget{system, workload}, assignment.substr(0, eq),
                 assignment.substr(eq + 1));
  }
}

trace::Header EmulatorHeader(uint32_t page_size, uint64_t buffer_pages,
                             storage::ReplacementPolicy policy,
                             const ocb::ObjectBase& base, uint64_t num_pages,
                             uint64_t seed) {
  trace::Header h;
  h.page_size = page_size;
  h.buffer_pages = buffer_pages;
  h.replacement_policy = static_cast<uint8_t>(policy);
  h.lru_k = 2;
  h.num_classes = base.params().num_classes;
  h.num_objects = base.NumObjects();
  h.num_pages = num_pages;
  h.seed = seed;
  return h;
}

void PrintCounters(const char* label, const trace::TraceCounters& c) {
  util::TextTable table({"Counter", "Value"});
  table.AddRow({"accesses", std::to_string(c.accesses)});
  table.AddRow({"hits", std::to_string(c.hits)});
  table.AddRow({"misses", std::to_string(c.misses)});
  table.AddRow({"evictions", std::to_string(c.evictions)});
  table.AddRow({"writebacks", std::to_string(c.writebacks)});
  std::cout << label << "\n";
  table.Print(std::cout);
}

int TraceRecord(int argc, const char* const* argv) {
  util::CliArgs args(argc, argv);
  const std::string out =
      args.GetString("out", "", "output trace file (required)");
  const std::string scenario_name = args.GetString(
      "scenario", "",
      "take base parameters from this catalog scenario (default: model "
      "defaults)");
  const std::string system_kind = args.GetString(
      "system", "sim",
      "what executes the workload: sim (VOODB simulation) | o2 | texas");
  const auto transactions = static_cast<uint64_t>(
      args.GetInt("transactions", 1000, "transactions to record"));
  const auto seed =
      static_cast<uint64_t>(args.GetInt("seed", 42, "RNG seed"));
  const double memory_mb = args.GetDouble(
      "memory-mb", 0.0,
      "emulator memory budget in MB (default: 16 for o2, 64 for texas)");
  const std::vector<std::string> sets = args.GetList(
      "set", "override a model parameter (name=value, repeatable)");
  if (args.help_requested()) {
    std::cout << "Record one fixed-seed run as an access trace.\n\n"
              << args.Help();
    return 0;
  }
  args.RejectUnknown();
  VOODB_CHECK_MSG(!out.empty(), "trace record needs --out=PATH");

  core::ExperimentConfig base_config;
  if (!scenario_name.empty()) {
    base_config = exp::ScenarioRegistry::Instance().At(scenario_name).base;
  }
  ApplySets(sets, &base_config.system, &base_config.workload);
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(base_config.workload);

  if (system_kind == "sim") {
    // Serial recording (one user) keeps the transaction markers nested,
    // so the trace replays as a workload, not just a page stream.
    core::VoodbConfig cfg = base_config.system;
    if (cfg.num_users > 1) {
      std::cout << "note: recording with num_users=1 so transaction "
                   "markers nest (was "
                << cfg.num_users << ")\n";
      cfg.num_users = 1;
    }
    const trace::TraceCounters counters =
        RecordSimulationTrace(cfg, base, transactions, seed, out);
    std::cout << "recorded " << transactions << " simulated transactions to "
              << out << "\n";
    PrintCounters("buffer counters of the recorded run:", counters);
    return 0;
  }
  if (system_kind == "o2") {
    emu::O2Config cfg;
    if (memory_mb > 0.0) {
      cfg.cache_pages =
          static_cast<uint64_t>(memory_mb * 1024 * 1024 / cfg.page_size);
    }
    std::ofstream os(out, std::ios::binary | std::ios::trunc);
    VOODB_CHECK_MSG(os.is_open(), "cannot open '" << out << "'");
    RecordO2Trace(cfg, base, transactions, seed, os);
    std::cout << "recorded " << transactions << " O2-emulator transactions "
              << "to " << out << "\n";
    return 0;
  }
  if (system_kind == "texas") {
    emu::TexasConfig cfg;
    if (memory_mb > 0.0) {
      cfg.memory_pages =
          emu::TexasConfig::FramesForMemory(memory_mb, cfg.page_size);
    }
    emu::TexasEmulator texas(cfg, &base, seed);
    trace::Header header = EmulatorHeader(
        cfg.page_size, cfg.memory_pages, storage::ReplacementPolicy::kLru,
        base, texas.NumPages(), seed);
    header.flags |= trace::kFlagVirtualMemory;
    trace::Writer writer(out, header);
    trace::Recorder recorder(&writer);
    texas.SetRecorder(&recorder);
    ocb::WorkloadGenerator gen(&base, desp::RandomStream(seed));
    texas.RunTransactions(gen, transactions);
    recorder.Flush();
    writer.Finish(trace::CountersFrom(texas.vm().stats()));
    std::cout << "recorded " << transactions
              << " Texas-emulator transactions to " << out
              << " (VM model: page stream + locality analytics; replay "
                 "verification applies to database-buffer traces)\n";
    return 0;
  }
  VOODB_CHECK_MSG(false, "unknown --system '" << system_kind
                                              << "'; valid: sim | o2 | "
                                                 "texas");
  return 2;
}

int TraceReplay(int argc, const char* const* argv) {
  util::CliArgs args(argc, argv);
  const std::string in =
      args.GetString("in", "", "input trace file (required)");
  const auto buffer_pages = static_cast<uint64_t>(args.GetInt(
      "buffer-pages", 0, "buffer capacity override (0 = recorded value)"));
  const std::string policy_name = args.GetString(
      "policy", "", "replacement policy override (see `voodb params`)");
  const auto lru_k = static_cast<uint32_t>(
      args.GetInt("lru-k", 0, "LRU-K depth override (0 = recorded value)"));
  const bool verify = args.GetBool(
      "verify", false,
      "fail unless the recorded counters are reproduced bit-exactly");
  if (args.help_requested()) {
    std::cout << "Replay a recorded page stream through a fresh buffer "
                 "manager.\n\n"
              << args.Help();
    return 0;
  }
  args.RejectUnknown();
  VOODB_CHECK_MSG(!in.empty(), "trace replay needs --in=PATH");

  trace::Reader reader(in);
  trace::ReplayConfig config;
  config.buffer_pages = buffer_pages;
  config.lru_k = lru_k;
  if (!policy_name.empty()) {
    config.policy = static_cast<int>(ParamRegistry::Instance().ParseValue(
        "page_replacement", policy_name));
  }
  const trace::ReplayStats stats = trace::ReplayPages(reader, config);

  util::TextTable table({"Counter", "Replayed", "Recorded"});
  const trace::TraceCounters& rec = reader.header().counters;
  table.AddRow({"accesses", std::to_string(stats.accesses),
                std::to_string(rec.accesses)});
  table.AddRow({"hits", std::to_string(stats.hits),
                std::to_string(rec.hits)});
  table.AddRow({"misses", std::to_string(stats.misses),
                std::to_string(rec.misses)});
  table.AddRow({"evictions", std::to_string(stats.evictions),
                std::to_string(rec.evictions)});
  table.AddRow({"writebacks", std::to_string(stats.writebacks),
                std::to_string(rec.writebacks)});
  table.Print(std::cout);
  std::cout << "replayed I/Os: " << stats.reads << " reads, " << stats.writes
            << " writes; hit rate " << stats.HitRate() << "\n";
  if (verify) {
    VOODB_CHECK_MSG(trace::ReplayVerifiable(reader.header().flags),
                    "--verify applies to plain database-buffer traces; "
                    "this one was recorded under the VM model, with "
                    "flush_on_commit, or with the crash hazard armed, so "
                    "its counters include buffer events outside the page "
                    "stream");
    if (!stats.Matches(rec)) {
      std::cerr << "error: replay diverged from the recorded counters\n";
      return 1;
    }
    std::cout << "verify: replay reproduced the recorded counters "
                 "bit-exactly\n";
  }
  return 0;
}

int TraceAnalyze(int argc, const char* const* argv) {
  util::CliArgs args(argc, argv);
  const std::string in =
      args.GetString("in", "", "input trace file (required)");
  const std::string sizes_arg = args.GetString(
      "sizes", "",
      "comma-separated cache sizes in pages for the hit-ratio curve "
      "(default: a sweep up to the working set)");
  const bool csv = args.GetBool("csv", false, "CSV output");
  if (args.help_requested()) {
    std::cout << "One-pass Mattson miss-ratio-curve analytics over a "
                 "recorded trace.\n\n"
              << args.Help();
    return 0;
  }
  args.RejectUnknown();
  VOODB_CHECK_MSG(!in.empty(), "trace analyze needs --in=PATH");

  trace::Reader reader(in);
  trace::MrcAnalyzer analyzer(reader.header().num_classes);
  analyzer.Consume(reader);
  const trace::MrcResult mrc = analyzer.Finish();

  std::cout << "trace: " << mrc.transactions << " transactions, "
            << mrc.object_accesses << " object accesses, "
            << mrc.page_accesses << " page accesses\n"
            << "working set: " << mrc.working_set_pages << " pages ("
            << (mrc.working_set_pages * reader.header().page_size) /
                   (1024 * 1024)
            << " MB); mean reuse distance "
            << util::FormatDouble(mrc.MeanReuseDistance(), 1) << " pages\n";

  std::vector<uint64_t> sizes;
  if (!sizes_arg.empty()) {
    std::stringstream ss(sizes_arg);
    std::string item;
    while (std::getline(ss, item, ',')) {
      char* end = nullptr;
      errno = 0;
      const unsigned long long value = std::strtoull(item.c_str(), &end, 10);
      // A leading digit is required explicitly: strtoull would accept
      // "-5" by wrapping it to a huge unsigned value.
      VOODB_CHECK_MSG(!item.empty() && std::isdigit(
                          static_cast<unsigned char>(item[0])) &&
                          end != nullptr && *end == '\0' && errno == 0,
                      "--sizes expects comma-separated page counts, got '"
                          << item << "'");
      sizes.push_back(static_cast<uint64_t>(value));
    }
  } else {
    for (const double fraction : {0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0}) {
      const auto pages = static_cast<uint64_t>(
          fraction * static_cast<double>(mrc.working_set_pages));
      if (pages >= 1) sizes.push_back(pages);
    }
  }
  util::TextTable curve({"Cache (pages)", "Hits", "Misses", "Hit ratio"});
  for (const uint64_t pages : sizes) {
    curve.AddRow({std::to_string(pages), std::to_string(mrc.HitsAt(pages)),
                  std::to_string(mrc.MissesAt(pages)),
                  util::FormatDouble(mrc.HitRatioAt(pages), 4)});
  }
  std::cout << "exact LRU hit-ratio curve (one Mattson pass):\n";
  if (csv) {
    curve.PrintCsv(std::cout);
  } else {
    curve.Print(std::cout);
  }

  if (!mrc.class_accesses.empty() && mrc.object_accesses > 0) {
    // Access skew: the few hottest classes against the schema size.
    std::vector<std::pair<uint64_t, size_t>> ranked;
    for (size_t c = 0; c < mrc.class_accesses.size(); ++c) {
      ranked.emplace_back(mrc.class_accesses[c], c);
    }
    std::sort(ranked.rbegin(), ranked.rend());
    util::TextTable skew({"Class", "Accesses", "Share"});
    const size_t top = std::min<size_t>(8, ranked.size());
    for (size_t i = 0; i < top; ++i) {
      skew.AddRow({std::to_string(ranked[i].second),
                   std::to_string(ranked[i].first),
                   util::FormatDouble(
                       static_cast<double>(ranked[i].first) /
                           static_cast<double>(mrc.object_accesses),
                       4)});
    }
    std::cout << "hottest classes (of " << mrc.class_accesses.size()
              << "):\n";
    if (csv) {
      skew.PrintCsv(std::cout);
    } else {
      skew.Print(std::cout);
    }
  }
  return 0;
}

}  // namespace

trace::Header O2TraceHeader(const emu::O2Config& config,
                            const ocb::ObjectBase& base, uint64_t num_pages,
                            uint64_t seed) {
  return EmulatorHeader(config.page_size, config.cache_pages,
                        config.replacement, base, num_pages, seed);
}

void RecordO2Trace(const emu::O2Config& config, const ocb::ObjectBase& base,
                   uint64_t transactions, uint64_t seed, std::ostream& os) {
  emu::O2Emulator o2(config, &base, seed);
  trace::Writer writer(&os,
                       O2TraceHeader(config, base, o2.NumPages(), seed));
  trace::Recorder recorder(&writer);
  o2.SetRecorder(&recorder);
  ocb::WorkloadGenerator gen(&base, desp::RandomStream(seed));
  o2.RunTransactions(gen, transactions);
  recorder.Flush();
  writer.Finish(o2.TraceCountersNow());
}

trace::TraceCounters RecordSimulationTrace(core::VoodbConfig system,
                                           const ocb::ObjectBase& base,
                                           uint64_t transactions,
                                           uint64_t seed,
                                           const std::string& path) {
  system.trace_record = true;
  system.trace_path = path;
  core::VoodbSystem sys(system, &base, nullptr, seed);
  ocb::WorkloadGenerator gen(&base, desp::RandomStream(seed).Derive(1));
  sys.RunTransactions(gen, transactions);
  const trace::TraceCounters counters =
      sys.buffering_manager().TraceCountersNow();
  sys.FinishTrace();
  return counters;
}

int RunTraceCommand(int argc, const char* const* argv) {
  const auto usage = [](std::ostream& os) {
    os << "usage:\n"
          "  voodb trace record  --out=PATH [--scenario=NAME] [--system="
          "sim|o2|texas]\n"
          "                      [--transactions=N] [--seed=N] "
          "[--memory-mb=X] [--set k=v ...]\n"
          "  voodb trace replay  --in=PATH [--buffer-pages=N] "
          "[--policy=P] [--lru-k=K] [--verify]\n"
          "  voodb trace analyze --in=PATH [--sizes=a,b,c] [--csv]\n";
  };
  if (argc < 2) {
    usage(std::cerr);
    return 2;
  }
  const std::string sub = argv[1];
  const int rest_argc = argc - 1;
  const char* const* rest_argv = argv + 1;
  try {
    if (sub == "record") return TraceRecord(rest_argc, rest_argv);
    if (sub == "replay") return TraceReplay(rest_argc, rest_argv);
    if (sub == "analyze") return TraceAnalyze(rest_argc, rest_argv);
    if (sub == "--help" || sub == "-h" || sub == "help") {
      usage(std::cout);
      return 0;
    }
  } catch (const util::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  std::cerr << "unknown trace subcommand '" << sub << "'\n";
  usage(std::cerr);
  return 2;
}

}  // namespace voodb::bench
