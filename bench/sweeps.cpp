#include "sweeps.hpp"

#include <iostream>

#include "cluster/dstc.hpp"
#include "desp/random.hpp"
#include "emu/o2_emulator.hpp"
#include "emu/texas_emulator.hpp"
#include "util/check.hpp"
#include "voodb/catalog.hpp"
#include "voodb/system.hpp"

namespace voodb::bench {

const std::vector<double>& InstancePoints() {
  static const std::vector<double> points = {500,  1000,  2000,
                                             5000, 10000, 20000};
  return points;
}

const std::vector<double>& MemoryPoints() {
  static const std::vector<double> points = {8, 12, 16, 24, 32, 64};
  return points;
}

namespace {

double RunEmulator(TargetSystem system, const ocb::ObjectBase& base,
                   double memory_mb, uint64_t transactions, uint64_t seed) {
  ocb::WorkloadGenerator gen(&base, desp::RandomStream(seed));
  if (system == TargetSystem::kO2) {
    emu::O2Config cfg;
    cfg.cache_pages = static_cast<uint64_t>(memory_mb * 1024 * 1024 / 4096);
    emu::O2Emulator o2(cfg, &base, seed);
    return static_cast<double>(o2.RunTransactions(gen, transactions).total_ios);
  }
  emu::TexasConfig cfg;
  cfg.memory_pages = emu::TexasConfig::FramesForMemory(memory_mb, 4096);
  emu::TexasEmulator texas(cfg, &base, seed);
  return static_cast<double>(texas.RunTransactions(gen, transactions).total_ios);
}

core::PhaseMetrics RunSimulation(const core::VoodbConfig& sim_config,
                                 const ocb::ObjectBase& base,
                                 uint64_t transactions, uint64_t seed,
                                 desp::EventQueueKind event_queue) {
  core::VoodbConfig cfg = sim_config;
  cfg.event_queue = event_queue;
  core::VoodbSystem sys(cfg, &base, nullptr, seed);
  ocb::WorkloadGenerator gen(&base, desp::RandomStream(seed).Derive(1));
  return sys.RunTransactions(gen, transactions);
}

/// One replicated simulation series: the headline scalar (total I/Os)
/// plus the end-to-end latency distributions, farm-merged.
desp::ReplicationResult ReplicateSimulation(
    const RunOptions& options, const core::VoodbConfig& sim_config,
    const ocb::ObjectBase& base) {
  return ReplicateResult(
      options, options.seed ^ 0x5151,
      [&](uint64_t seed, desp::MetricSink& sink) {
        const core::PhaseMetrics m = RunSimulation(
            sim_config, base, options.transactions, seed,
            options.event_queue);
        sink.Observe("value", static_cast<double>(m.total_ios));
        sink.ObserveHistogram("response_ms", m.response_histogram);
        sink.ObserveHistogram("disk_service_ms", m.disk_service_histogram);
      });
}

}  // namespace

std::vector<FigurePoint> RunInstanceSweep(
    const RunOptions& options, TargetSystem system,
    const ocb::OcbParameters& workload, double memory_mb,
    const core::VoodbConfig& sim_config,
    const std::vector<double>& instance_points, const char* title,
    const std::vector<double>& paper_bench,
    const std::vector<double>& paper_sim) {
  VOODB_CHECK(paper_bench.size() == instance_points.size());
  VOODB_CHECK(paper_sim.size() == instance_points.size());
  FigureReport report(title, "Instances");
  LatencyReport latency(std::string(title) + " — response time (ms, sim)",
                        "Instances");
  std::vector<FigurePoint> points;
  points.reserve(instance_points.size());
  for (size_t i = 0; i < instance_points.size(); ++i) {
    const auto no = static_cast<uint64_t>(instance_points[i]);
    ocb::OcbParameters point_workload = workload;
    point_workload.num_objects = no;
    const ocb::ObjectBase base = ocb::ObjectBase::Generate(point_workload);
    const Estimate bench =
        Replicate(options, options.seed, [&](uint64_t seed) {
          return RunEmulator(system, base, memory_mb, options.transactions,
                             seed);
        });
    const desp::ReplicationResult sim_result =
        ReplicateSimulation(options, sim_config, base);
    const Estimate sim = EstimateOf(sim_result.Metric("value"));
    report.AddPoint(std::to_string(no), bench, sim, paper_bench[i],
                    paper_sim[i]);
    latency.AddPoint(std::to_string(no), sim_result.Histogram("response_ms"));
    points.push_back({std::to_string(no), bench, sim});
  }
  report.Print(options);
  latency.Print(options);
  return points;
}

std::vector<FigurePoint> RunMemorySweep(
    const RunOptions& options, TargetSystem system,
    const ocb::OcbParameters& workload, const core::VoodbConfig& sim_base,
    const std::vector<double>& memory_points, const char* title,
    const std::vector<double>& paper_bench,
    const std::vector<double>& paper_sim) {
  VOODB_CHECK(paper_bench.size() == memory_points.size());
  VOODB_CHECK(paper_sim.size() == memory_points.size());
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(workload);
  const char* x_label =
      system == TargetSystem::kO2 ? "Cache (MB)" : "Memory (MB)";
  FigureReport report(title, x_label);
  LatencyReport latency(std::string(title) + " — response time (ms, sim)",
                        x_label);
  std::vector<FigurePoint> points;
  points.reserve(memory_points.size());
  for (size_t i = 0; i < memory_points.size(); ++i) {
    const double mb = memory_points[i];
    core::VoodbConfig sim_config = sim_base;
    if (system == TargetSystem::kO2) {
      core::SystemCatalog::SetO2Cache(sim_config, mb);
    } else {
      core::SystemCatalog::SetTexasMemory(sim_config, mb);
    }
    const Estimate bench =
        Replicate(options, options.seed, [&](uint64_t seed) {
          return RunEmulator(system, base, mb, options.transactions, seed);
        });
    const desp::ReplicationResult sim_result =
        ReplicateSimulation(options, sim_config, base);
    const Estimate sim = EstimateOf(sim_result.Metric("value"));
    report.AddPoint(util::FormatDouble(mb, 0), bench, sim, paper_bench[i],
                    paper_sim[i]);
    latency.AddPoint(util::FormatDouble(mb, 0),
                     sim_result.Histogram("response_ms"));
    points.push_back({util::FormatDouble(mb, 0), bench, sim});
  }
  report.Print(options);
  latency.Print(options);
  return points;
}

namespace {

/// One replication of the DSTC experiment on either path.
struct DstcRun {
  double pre = 0.0;
  double overhead = 0.0;
  double post = 0.0;
  double clusters = 0.0;
  double cluster_size = 0.0;
  /// Transaction response-time distributions of the two usage phases
  /// (simulation path only; the direct-execution emulator has no
  /// simulated clock).
  desp::LogHistogram response_pre;
  desp::LogHistogram response_post;
  double Gain() const { return post > 0.0 ? pre / post : 0.0; }
};

DstcRun DstcOnEmulator(const ocb::ObjectBase& base, double memory_mb,
                       uint64_t transactions, uint64_t seed) {
  emu::TexasConfig cfg;
  cfg.memory_pages = emu::TexasConfig::FramesForMemory(memory_mb, 4096);
  emu::TexasEmulator texas(cfg, &base, seed);
  texas.SetClusteringPolicy(std::make_unique<cluster::DstcPolicy>());
  ocb::WorkloadGenerator gen(&base, desp::RandomStream(seed));
  DstcRun run;
  run.pre = static_cast<double>(
      texas
          .RunTransactionsOfKind(
              gen, ocb::TransactionKind::kHierarchyTraversal, transactions)
          .total_ios);
  const emu::TexasClusteringMetrics cm = texas.PerformClustering();
  run.overhead = static_cast<double>(cm.overhead_ios);
  run.clusters = static_cast<double>(cm.num_clusters);
  run.cluster_size = cm.mean_cluster_size;
  texas.DropMemory();
  run.post = static_cast<double>(
      texas
          .RunTransactionsOfKind(
              gen, ocb::TransactionKind::kHierarchyTraversal, transactions)
          .total_ios);
  return run;
}

DstcRun DstcOnSimulation(const ocb::ObjectBase& base,
                         const core::VoodbConfig& sim_base,
                         uint64_t transactions, uint64_t seed,
                         desp::EventQueueKind event_queue) {
  core::VoodbConfig cfg = sim_base;
  cfg.event_queue = event_queue;
  core::VoodbSystem sys(cfg, &base, std::make_unique<cluster::DstcPolicy>(),
                        seed);
  ocb::WorkloadGenerator gen(&base, desp::RandomStream(seed).Derive(1));
  DstcRun run;
  const core::PhaseMetrics pre = sys.RunTransactionsOfKind(
      gen, ocb::TransactionKind::kHierarchyTraversal, transactions);
  run.pre = static_cast<double>(pre.total_ios);
  run.response_pre = pre.response_histogram;
  const core::ClusteringMetrics cm = sys.TriggerClustering();
  run.overhead = static_cast<double>(cm.overhead_ios);
  run.clusters = static_cast<double>(cm.num_clusters);
  run.cluster_size = cm.mean_cluster_size;
  sys.DropBuffer();
  const core::PhaseMetrics post = sys.RunTransactionsOfKind(
      gen, ocb::TransactionKind::kHierarchyTraversal, transactions);
  run.post = static_cast<double>(post.total_ios);
  run.response_post = post.response_histogram;
  return run;
}

void ObserveDstcRun(const DstcRun& run, desp::MetricSink& sink) {
  sink.Observe("pre", run.pre);
  sink.Observe("overhead", run.overhead);
  sink.Observe("post", run.post);
  sink.Observe("gain", run.Gain());
  sink.Observe("clusters", run.clusters);
  sink.Observe("cluster_size", run.cluster_size);
}

DstcAggregate Aggregate(const std::map<std::string, Estimate>& metrics) {
  DstcAggregate agg;
  agg.pre = metrics.at("pre");
  agg.overhead = metrics.at("overhead");
  agg.post = metrics.at("post");
  agg.gain = metrics.at("gain");
  agg.clusters = metrics.at("clusters");
  agg.cluster_size = metrics.at("cluster_size");
  return agg;
}

void RecordDstcAggregate(const std::string& series, const DstcAggregate& a) {
  const std::string section = "dstc";
  RecordEstimate(section, "pre_clustering_ios", series, a.pre);
  RecordEstimate(section, "clustering_overhead_ios", series, a.overhead);
  RecordEstimate(section, "post_clustering_ios", series, a.post);
  RecordEstimate(section, "gain", series, a.gain);
  RecordEstimate(section, "clusters", series, a.clusters);
  RecordEstimate(section, "mean_cluster_size", series, a.cluster_size);
}

}  // namespace

DstcComparison RunDstcExperiment(const RunOptions& options, double memory_mb,
                                 const ocb::OcbParameters& workload,
                                 const core::VoodbConfig& sim_base) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(workload);
  // Two farm runs over the same seed chain: replication i exercises the
  // emulator and the simulation with the same seed, exactly as the old
  // serial pairing did.
  DstcComparison cmp;
  cmp.bench = Aggregate(ReplicateMetrics(
      options, options.seed, [&](uint64_t seed, desp::MetricSink& sink) {
        ObserveDstcRun(
            DstcOnEmulator(base, memory_mb, options.transactions, seed),
            sink);
      }));
  const desp::ReplicationResult sim_result = ReplicateResult(
      options, options.seed, [&](uint64_t seed, desp::MetricSink& sink) {
        const DstcRun run = DstcOnSimulation(
            base, sim_base, options.transactions, seed, options.event_queue);
        ObserveDstcRun(run, sink);
        sink.ObserveHistogram("response_pre_ms", run.response_pre);
        sink.ObserveHistogram("response_post_ms", run.response_post);
      });
  cmp.sim = Aggregate(EstimatesOf(sim_result));
  RecordDstcAggregate("benchmark", cmp.bench);
  RecordDstcAggregate("simulation", cmp.sim);
  LatencyReport latency("dstc — response time (ms, sim)", "Phase");
  latency.AddPoint("pre_clustering", sim_result.Histogram("response_pre_ms"));
  latency.AddPoint("post_clustering",
                   sim_result.Histogram("response_post_ms"));
  latency.Print(options);
  return cmp;
}

}  // namespace voodb::bench
