#include "sweeps.hpp"

#include <iostream>

#include "cluster/dstc.hpp"
#include "desp/random.hpp"
#include "emu/o2_emulator.hpp"
#include "emu/texas_emulator.hpp"
#include "util/check.hpp"
#include "voodb/catalog.hpp"
#include "voodb/system.hpp"

namespace voodb::bench {

namespace {

/// The six NO points of Figures 6/7/9/10.
const std::vector<uint64_t> kInstancePoints = {500,  1000,  2000,
                                               5000, 10000, 20000};
/// The six memory points (MB) of Figures 8/11.
const std::vector<double> kMemoryPoints = {8, 12, 16, 24, 32, 64};

ocb::OcbParameters FigureWorkload(uint32_t num_classes, uint64_t num_objects) {
  ocb::OcbParameters p;  // Table 5 defaults (PSET..STODEPTH = OCB values)
  p.num_classes = num_classes;
  p.num_objects = num_objects;
  return p;
}

double RunEmulator(TargetSystem system, const ocb::ObjectBase& base,
                   double memory_mb, uint64_t transactions, uint64_t seed) {
  ocb::WorkloadGenerator gen(&base, desp::RandomStream(seed));
  if (system == TargetSystem::kO2) {
    emu::O2Config cfg;
    cfg.cache_pages = static_cast<uint64_t>(memory_mb * 1024 * 1024 / 4096);
    emu::O2Emulator o2(cfg, &base, seed);
    return static_cast<double>(o2.RunTransactions(gen, transactions).total_ios);
  }
  emu::TexasConfig cfg;
  cfg.memory_pages = emu::TexasConfig::FramesForMemory(memory_mb, 4096);
  emu::TexasEmulator texas(cfg, &base, seed);
  return static_cast<double>(texas.RunTransactions(gen, transactions).total_ios);
}

double RunSimulation(TargetSystem system, const ocb::ObjectBase& base,
                     double memory_mb, uint64_t transactions, uint64_t seed,
                     desp::EventQueueKind event_queue) {
  core::VoodbConfig cfg = system == TargetSystem::kO2
                              ? core::SystemCatalog::O2WithCache(memory_mb)
                              : core::SystemCatalog::TexasWithMemory(memory_mb);
  cfg.event_queue = event_queue;
  core::VoodbSystem sys(cfg, &base, nullptr, seed);
  ocb::WorkloadGenerator gen(&base, desp::RandomStream(seed).Derive(1));
  return static_cast<double>(
      sys.RunTransactions(gen, transactions).total_ios);
}

}  // namespace

void RunInstanceSweep(const RunOptions& options, TargetSystem system,
                      uint32_t num_classes, const char* title,
                      const std::vector<double>& paper_bench,
                      const std::vector<double>& paper_sim) {
  VOODB_CHECK(paper_bench.size() == kInstancePoints.size());
  VOODB_CHECK(paper_sim.size() == kInstancePoints.size());
  // Default memory budgets of §4.2.1: O2's 16 MB server cache, Texas' 64 MB
  // host.
  const double memory_mb = system == TargetSystem::kO2 ? 16.0 : 64.0;
  FigureReport report(title, "Instances");
  for (size_t i = 0; i < kInstancePoints.size(); ++i) {
    const uint64_t no = kInstancePoints[i];
    const ocb::ObjectBase base =
        ocb::ObjectBase::Generate(FigureWorkload(num_classes, no));
    const Estimate bench =
        Replicate(options, options.seed, [&](uint64_t seed) {
          return RunEmulator(system, base, memory_mb, options.transactions,
                             seed);
        });
    const Estimate sim =
        Replicate(options, options.seed ^ 0x5151,
                  [&](uint64_t seed) {
                    return RunSimulation(system, base, memory_mb,
                                         options.transactions, seed,
                                         options.event_queue);
                  });
    report.AddPoint(std::to_string(no), bench, sim, paper_bench[i],
                    paper_sim[i]);
  }
  report.Print(options);
}

void RunMemorySweep(const RunOptions& options, TargetSystem system,
                    const char* title,
                    const std::vector<double>& paper_bench,
                    const std::vector<double>& paper_sim) {
  VOODB_CHECK(paper_bench.size() == kMemoryPoints.size());
  VOODB_CHECK(paper_sim.size() == kMemoryPoints.size());
  const ocb::ObjectBase base =
      ocb::ObjectBase::Generate(FigureWorkload(50, 20000));
  FigureReport report(title, system == TargetSystem::kO2
                                 ? "Cache (MB)"
                                 : "Memory (MB)");
  for (size_t i = 0; i < kMemoryPoints.size(); ++i) {
    const double mb = kMemoryPoints[i];
    const Estimate bench =
        Replicate(options, options.seed, [&](uint64_t seed) {
          return RunEmulator(system, base, mb, options.transactions, seed);
        });
    const Estimate sim =
        Replicate(options, options.seed ^ 0x5151,
                  [&](uint64_t seed) {
                    return RunSimulation(system, base, mb,
                                         options.transactions, seed,
                                         options.event_queue);
                  });
    report.AddPoint(util::FormatDouble(mb, 0), bench, sim, paper_bench[i],
                    paper_sim[i]);
  }
  report.Print(options);
}

namespace {

/// One replication of the DSTC experiment on either path.
struct DstcRun {
  double pre = 0.0;
  double overhead = 0.0;
  double post = 0.0;
  double clusters = 0.0;
  double cluster_size = 0.0;
  double Gain() const { return post > 0.0 ? pre / post : 0.0; }
};

ocb::OcbParameters DstcWorkload() {
  // §4.4: "very characteristic transactions (namely, depth-3 hierarchy
  // traversals)" in favorable conditions — a hot set of repeatedly
  // traversed roots over the mid-sized NC=50 / NO=20000 base.
  ocb::OcbParameters p;
  p.num_classes = 50;
  p.num_objects = 20000;
  p.hierarchy_depth = 3;
  p.root_region = 30;
  return p;
}

DstcRun DstcOnEmulator(const ocb::ObjectBase& base, double memory_mb,
                       uint64_t transactions, uint64_t seed) {
  emu::TexasConfig cfg;
  cfg.memory_pages = emu::TexasConfig::FramesForMemory(memory_mb, 4096);
  emu::TexasEmulator texas(cfg, &base, seed);
  texas.SetClusteringPolicy(std::make_unique<cluster::DstcPolicy>());
  ocb::WorkloadGenerator gen(&base, desp::RandomStream(seed));
  DstcRun run;
  run.pre = static_cast<double>(
      texas
          .RunTransactionsOfKind(
              gen, ocb::TransactionKind::kHierarchyTraversal, transactions)
          .total_ios);
  const emu::TexasClusteringMetrics cm = texas.PerformClustering();
  run.overhead = static_cast<double>(cm.overhead_ios);
  run.clusters = static_cast<double>(cm.num_clusters);
  run.cluster_size = cm.mean_cluster_size;
  texas.DropMemory();
  run.post = static_cast<double>(
      texas
          .RunTransactionsOfKind(
              gen, ocb::TransactionKind::kHierarchyTraversal, transactions)
          .total_ios);
  return run;
}

DstcRun DstcOnSimulation(const ocb::ObjectBase& base, double memory_mb,
                         uint64_t transactions, uint64_t seed,
                         desp::EventQueueKind event_queue) {
  core::VoodbConfig cfg = core::SystemCatalog::TexasWithMemory(memory_mb);
  cfg.event_queue = event_queue;
  core::VoodbSystem sys(cfg, &base, std::make_unique<cluster::DstcPolicy>(),
                        seed);
  ocb::WorkloadGenerator gen(&base, desp::RandomStream(seed).Derive(1));
  DstcRun run;
  run.pre = static_cast<double>(
      sys.RunTransactionsOfKind(gen, ocb::TransactionKind::kHierarchyTraversal,
                                transactions)
          .total_ios);
  const core::ClusteringMetrics cm = sys.TriggerClustering();
  run.overhead = static_cast<double>(cm.overhead_ios);
  run.clusters = static_cast<double>(cm.num_clusters);
  run.cluster_size = cm.mean_cluster_size;
  sys.DropBuffer();
  run.post = static_cast<double>(
      sys.RunTransactionsOfKind(gen, ocb::TransactionKind::kHierarchyTraversal,
                                transactions)
          .total_ios);
  return run;
}

void ObserveDstcRun(const DstcRun& run, desp::MetricSink& sink) {
  sink.Observe("pre", run.pre);
  sink.Observe("overhead", run.overhead);
  sink.Observe("post", run.post);
  sink.Observe("gain", run.Gain());
  sink.Observe("clusters", run.clusters);
  sink.Observe("cluster_size", run.cluster_size);
}

DstcAggregate Aggregate(const std::map<std::string, Estimate>& metrics) {
  DstcAggregate agg;
  agg.pre = metrics.at("pre");
  agg.overhead = metrics.at("overhead");
  agg.post = metrics.at("post");
  agg.gain = metrics.at("gain");
  agg.clusters = metrics.at("clusters");
  agg.cluster_size = metrics.at("cluster_size");
  return agg;
}

void RecordDstcAggregate(const std::string& series, const DstcAggregate& a) {
  const std::string section = "dstc";
  RecordEstimate(section, "pre_clustering_ios", series, a.pre);
  RecordEstimate(section, "clustering_overhead_ios", series, a.overhead);
  RecordEstimate(section, "post_clustering_ios", series, a.post);
  RecordEstimate(section, "gain", series, a.gain);
  RecordEstimate(section, "clusters", series, a.clusters);
  RecordEstimate(section, "mean_cluster_size", series, a.cluster_size);
}

}  // namespace

DstcComparison RunDstcExperiment(const RunOptions& options,
                                 double memory_mb) {
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(DstcWorkload());
  // Two farm runs over the same seed chain: replication i exercises the
  // emulator and the simulation with the same seed, exactly as the old
  // serial pairing did.
  DstcComparison cmp;
  cmp.bench = Aggregate(ReplicateMetrics(
      options, options.seed, [&](uint64_t seed, desp::MetricSink& sink) {
        ObserveDstcRun(
            DstcOnEmulator(base, memory_mb, options.transactions, seed),
            sink);
      }));
  cmp.sim = Aggregate(ReplicateMetrics(
      options, options.seed, [&](uint64_t seed, desp::MetricSink& sink) {
        ObserveDstcRun(DstcOnSimulation(base, memory_mb, options.transactions,
                                        seed, options.event_queue),
                       sink);
      }));
  RecordDstcAggregate("benchmark", cmp.bench);
  RecordDstcAggregate("simulation", cmp.sim);
  return cmp;
}

}  // namespace voodb::bench
