/// \file voodb_main.cpp
/// \brief The single `voodb` driver over the scenario catalog and the
/// parameter registry.
///
///   voodb list                      scenario catalog (name + title)
///   voodb describe <scenario>       base parameters, grid axes, protocol
///   voodb params [--markdown|--csv] the full parameter table
///   voodb run <scenario> [flags]    run a scenario; `--set name=value`
///                                   overrides any registered parameter
///                                   (enum values by name), repeatable
///
/// `voodb run fig08` is bit-identical to the legacy bench_fig08_* binary
/// under identical seeds: both resolve through the same catalog entry.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "exp/scenario.hpp"
#include "explain_tool.hpp"
#include "harness.hpp"
#include "profile_tool.hpp"
#include "scenarios.hpp"
#include "trace_tools.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "voodb/param_registry.hpp"

namespace {

using voodb::core::ConstParamTarget;
using voodb::core::ParamDescriptor;
using voodb::core::ParamRegistry;

int Usage(std::ostream& os, int code) {
  os << "VOODB scenario driver — one binary for every paper figure, "
        "table and ablation.\n\n"
        "Usage:\n"
        "  voodb list                     list the scenario catalog\n"
        "  voodb describe <scenario>      show a scenario's parameters\n"
        "  voodb params [--markdown|--csv]\n"
        "                                 print the parameter registry\n"
        "  voodb run <scenario> [--set name=value ...] [--replications=N]\n"
        "            [--transactions=N] [--seed=N] [--threads=N]\n"
        "            [--event-queue=K] [--csv] [--json=PATH]\n"
        "  voodb trace record|replay|analyze [flags]\n"
        "                                 access traces: record a run,\n"
        "                                 replay it under any buffer, or\n"
        "                                 compute its exact LRU hit-ratio\n"
        "                                 curve in one pass\n"
        "  voodb profile <scenario> [--set name=value ...] [flags]\n"
        "                                 profile one fixed-seed run:\n"
        "                                 per-actor simulated-time\n"
        "                                 breakdown, latency percentiles,\n"
        "                                 chrome://tracing timeline and\n"
        "                                 metric-snapshot JSON\n"
        "  voodb explain <scenario> [--top K] [--set name=value ...]\n"
        "                                 explain tail latency: critical-\n"
        "                                 path breakdown per component,\n"
        "                                 plus the K slowest transactions'\n"
        "                                 span trees (text + Perfetto)\n\n"
        "Run `voodb run <scenario> --help` for the run flags, `voodb "
        "trace --help` for the trace workflow, `voodb profile --help` "
        "for the profiler, `voodb explain --help` for tail analysis.\n";
  return code;
}

int ListScenarios() {
  voodb::util::TextTable table({"Scenario", "Title"});
  for (const voodb::exp::Scenario& s :
       voodb::exp::ScenarioRegistry::Instance().scenarios()) {
    table.AddRow({s.name, s.title});
  }
  table.Print(std::cout);
  std::cout << "\nRun `voodb describe <scenario>` for parameters, "
               "`voodb run <scenario>` to execute.\n";
  return 0;
}

int DescribeScenario(const std::string& name) {
  const voodb::exp::Scenario& s =
      voodb::exp::ScenarioRegistry::Instance().At(name);
  std::cout << s.name << " — " << s.title << "\n\n" << s.description
            << "\n\n";
  if (s.grid.NumAxes() > 0) {
    std::cout << "Sweep axes:\n";
    for (const auto& [axis, values] : s.grid.axes()) {
      std::cout << "  " << axis << " =";
      for (const double v : values) std::cout << " " << v;
      std::cout << "\n";
    }
    std::cout << "\n";
  }
  if (!s.swept.empty()) {
    std::cout << "Swept by the scenario itself (not --set-overridable):";
    for (const std::string& name : s.swept) std::cout << " " << name;
    std::cout << "\n\n";
  }
  if (!s.system_config_used) {
    std::cout << "Runs the direct-execution emulator only: system "
                 "parameters cannot be overridden.\n\n";
  }
  // Base parameters that differ from the model defaults: the scenario's
  // whole identity, and exactly what `--set` can override.
  const ParamRegistry& registry = ParamRegistry::Instance();
  const ConstParamTarget target{&s.base.system, &s.base.workload};
  voodb::util::TextTable table({"Parameter", "Value", "Default"});
  for (const ParamDescriptor& d : registry.descriptors()) {
    if (registry.IsDefault(target, d)) continue;
    table.AddRow({d.name, registry.GetText(target, d.name),
                  registry.DefaultText(d)});
  }
  std::cout << "Base parameters differing from model defaults (override "
               "any registered parameter with --set):\n";
  table.Print(std::cout);
  return 0;
}

int PrintParams(int argc, const char* const* argv) {
  voodb::util::CliArgs args(argc, argv);
  const bool markdown =
      args.GetBool("markdown", false, "emit a Markdown table (README)");
  const bool csv = args.GetBool("csv", false, "emit CSV");
  if (args.help_requested()) {
    std::cout << "Print every registered parameter (name, domain, type, "
                 "default, range, doc).\n\n"
              << args.Help();
    return 0;
  }
  args.RejectUnknown();
  const ParamRegistry& registry = ParamRegistry::Instance();
  if (markdown) {
    // '|' inside a cell (enum choice lists, "true | false") must be
    // escaped or it splits the Markdown table column.
    auto escape = [](const std::string& cell) {
      std::string out;
      for (const char ch : cell) {
        if (ch == '|') out += '\\';
        out += ch;
      }
      return out;
    };
    std::cout << "| Parameter | Domain | Type | Default | Range | "
                 "Description |\n";
    std::cout << "|---|---|---|---|---|---|\n";
    for (const ParamDescriptor& d : registry.descriptors()) {
      std::cout << "| `" << d.name << "` | " << ToString(d.domain) << " | "
                << ToString(d.type) << " | `" << registry.DefaultText(d)
                << "` | " << escape(d.RangeText()) << " | " << escape(d.doc)
                << " |\n";
    }
    return 0;
  }
  voodb::util::TextTable table(
      {"Parameter", "Domain", "Type", "Default", "Range", "Description"});
  for (const ParamDescriptor& d : registry.descriptors()) {
    table.AddRow({d.name, ToString(d.domain), ToString(d.type),
                  registry.DefaultText(d), d.RangeText(), d.doc});
  }
  if (csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  voodb::bench::RegisterBenchScenarios();
  if (argc < 2) return Usage(std::cerr, 2);
  const std::string command = argv[1];
  try {
    if (command == "--help" || command == "-h" || command == "help") {
      return Usage(std::cout, 0);
    }
    if (command == "list") return ListScenarios();
    if (command == "describe") {
      if (argc < 3) {
        std::cerr << "usage: voodb describe <scenario>\n";
        return 2;
      }
      return DescribeScenario(argv[2]);
    }
    if (command == "params") return PrintParams(argc - 1, argv + 1);
    if (command == "trace") {
      return voodb::bench::RunTraceCommand(argc - 1, argv + 1);
    }
    if (command == "profile") {
      return voodb::bench::RunProfileCommand(argc - 1, argv + 1);
    }
    if (command == "explain") {
      return voodb::bench::RunExplainCommand(argc - 1, argv + 1);
    }
    if (command == "run") {
      if (argc < 3 || std::string(argv[2]).rfind("--", 0) == 0) {
        std::cerr << "usage: voodb run <scenario> [flags]  (see `voodb "
                     "list`)\n";
        return 2;
      }
      const std::string scenario = argv[2];
      // Re-point argv at the remaining flags for the shared harness path;
      // the json default becomes BENCH_<scenario>.json.
      std::vector<const char*> rest;
      rest.push_back(argv[0]);
      for (int i = 3; i < argc; ++i) rest.push_back(argv[i]);
      return voodb::bench::RunScenarioMain(
          scenario, static_cast<int>(rest.size()), rest.data(),
          scenario.c_str());
    }
    std::cerr << "unknown command '" << command << "'\n\n";
    return Usage(std::cerr, 2);
  } catch (const voodb::util::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
