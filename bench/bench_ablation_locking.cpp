/// \file bench_ablation_locking.cpp
/// \brief Ablation of the concurrency-control extension: the fixed
/// GETLOCK-delay model of the paper vs the real 2PL lock manager with
/// wait-die, across update ratios.  Quantifies what the simpler model
/// misses (blocking, restarts, tail latency).
#include <iostream>

#include "desp/random.hpp"
#include "harness.hpp"
#include "ocb/workload.hpp"
#include "voodb/system.hpp"

int main(int argc, char** argv) {
  using namespace voodb;
  using namespace voodb::bench;
  const RunOptions options = ParseOptions(
      argc, argv, "Ablation — fixed-delay locks vs real 2PL (wait-die)");

  util::TextTable table({"PUPDATE", "Lock model", "Throughput (tps)",
                         "Restarts", "p50 (ms)", "p99 (ms)"});
  for (const double p_update : {0.0, 0.2, 0.5}) {
    ocb::OcbParameters wl;
    wl.num_classes = 10;
    wl.num_objects = 1000;
    wl.p_update = p_update;
    wl.root_region = 8;
    const ocb::ObjectBase base = ocb::ObjectBase::Generate(wl);
    for (const bool real_locks : {false, true}) {
      const auto metrics = ReplicateMetrics(
          options, options.seed, [&](uint64_t seed, desp::MetricSink& sink) {
            core::VoodbConfig cfg;
            cfg.event_queue = options.event_queue;
            cfg.system_class = core::SystemClass::kCentralized;
            cfg.buffer_pages = 256;
            cfg.num_users = 8;
            cfg.multiprogramming_level = 8;
            cfg.use_lock_manager = real_locks;
            core::VoodbSystem sys(cfg, &base, nullptr, seed);
            ocb::WorkloadGenerator gen(&base,
                                       desp::RandomStream(seed).Derive(1));
            const core::PhaseMetrics m =
                sys.RunTransactions(gen, options.transactions / 2);
            const auto& h =
                sys.transaction_manager().response_histogram();
            sink.Observe("throughput_tps", m.ThroughputTps());
            sink.Observe("restarts",
                         static_cast<double>(m.transaction_restarts));
            sink.Observe("p50_ms", h.Quantile(0.5));
            sink.Observe("p99_ms", h.Quantile(0.99));
          });
      const std::string x = util::FormatDouble(p_update, 1) +
                            (real_locks ? " 2PL" : " fixed");
      for (const auto& [name, estimate] : metrics) {
        RecordEstimate("lock_model", x, name, estimate);
      }
      table.AddRow({util::FormatDouble(p_update, 1),
                    real_locks ? "2PL wait-die" : "fixed delay",
                    WithCi(metrics.at("throughput_tps"), 2),
                    util::FormatDouble(metrics.at("restarts").mean, 0),
                    util::FormatDouble(metrics.at("p50_ms").mean, 1),
                    util::FormatDouble(metrics.at("p99_ms").mean, 1)});
    }
  }
  std::cout << "== Ablation: lock model ==\n";
  if (options.csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  std::cout << "Expectation: the models agree on read-only workloads; as "
               "PUPDATE grows, real locking shows restarts, lower "
               "throughput and a stretched p99 that the fixed-delay model "
               "cannot see.\n";
  return 0;
}
