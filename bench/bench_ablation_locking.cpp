/// \file bench_ablation_locking.cpp
/// \brief Thin wrapper over the "ablation_locking" catalog scenario (lock-model ablation);
/// equivalent to `voodb run ablation_locking` with the same flags.
#include "harness.hpp"

int main(int argc, char** argv) {
  return voodb::bench::RunScenarioMain("ablation_locking", argc, argv);
}
