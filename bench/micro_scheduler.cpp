#include "micro_scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <iostream>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "desp/event_queue.hpp"
#include "desp/scheduler.hpp"
#include "desp/stats.hpp"
#include "harness.hpp"
#include "util/table.hpp"

namespace voodb::bench {

namespace {

using desp::EventQueueKind;
using desp::Scheduler;
using desp::SimTime;
using desp::Tally;

// --- The pre-refactor kernel, verbatim modulo naming -----------------------

class LegacyScheduler {
 public:
  using Action = std::function<void()>;

  struct State {
    SimTime time = 0.0;
    int priority = 0;
    uint64_t seq = 0;
    Action action;
    bool cancelled = false;
    bool fired = false;
  };

  struct Handle {
    std::shared_ptr<State> state;
    bool pending() const {
      return state != nullptr && !state->cancelled && !state->fired;
    }
  };

  Handle Schedule(SimTime delay, Action action, int priority = 0) {
    auto state = std::make_shared<State>();
    state->time = now_ + delay;
    state->priority = priority;
    state->seq = next_seq_++;
    state->action = std::move(action);
    queue_.push(Entry{state});
    return Handle{std::move(state)};
  }

  bool Cancel(Handle& handle) {
    if (!handle.pending()) return false;
    handle.state->cancelled = true;
    handle.state->action = nullptr;
    return true;
  }

  bool Step() {
    while (!queue_.empty()) {
      Entry entry = queue_.top();
      queue_.pop();
      if (entry.state->cancelled) continue;
      now_ = entry.state->time;
      entry.state->fired = true;
      Action action = std::move(entry.state->action);
      ++executed_;
      action();
      return true;
    }
    return false;
  }

  void Run() {
    while (Step()) {
    }
  }

  SimTime Now() const { return now_; }
  uint64_t ExecutedEvents() const { return executed_; }

 private:
  struct Entry {
    std::shared_ptr<State> state;
  };
  struct Compare {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.state->time != b.state->time) return a.state->time > b.state->time;
      if (a.state->priority != b.state->priority) {
        return a.state->priority < b.state->priority;
      }
      return a.state->seq > b.state->seq;
    }
  };

  SimTime now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Compare> queue_;
};

// --- Workloads --------------------------------------------------------------

/// Actor-sized event payload: the typical hot-path capture is an object
/// pointer plus a continuation-sized state block, which overflows
/// std::function's two-word inline buffer (the old kernel allocated for
/// it) but fits the new kernel's small-buffer callable.
struct Payload {
  uint64_t a, b, c, d;
};

/// N independent events with scattered times, drained in one Run().
template <typename Kernel>
uint64_t ScheduleDrain(Kernel& kernel, uint64_t events) {
  uint64_t sum = 0;
  for (uint64_t i = 0; i < events; ++i) {
    Payload p{i, i ^ 0x9E3779B9u, i * 3, i * 7};
    kernel.Schedule(static_cast<double>((i * 37) % 997),
                    [&sum, p] { sum += p.a + p.b + p.c + p.d; },
                    static_cast<int>(i % 3));
  }
  kernel.Run();
  return sum;
}

/// `chains` concurrent self-rescheduling chains of `depth` events each.
template <typename Kernel>
uint64_t EventChains(Kernel& kernel, uint64_t chains, uint64_t depth) {
  uint64_t fired = 0;
  std::vector<uint64_t> remaining(chains, depth);
  std::vector<std::function<void()>> steps(chains);
  for (uint64_t c = 0; c < chains; ++c) {
    steps[c] = [&kernel, &fired, &remaining, &steps, c] {
      ++fired;
      if (--remaining[c] > 0) {
        kernel.Schedule(1.0 + static_cast<double>(c % 7), steps[c]);
      }
    };
    kernel.Schedule(1.0 + static_cast<double>(c % 7), steps[c]);
  }
  kernel.Run();
  return fired;
}

/// N events, two of every three cancelled before they can fire (past
/// the cancelled > live threshold, so the new kernel's compaction runs).
template <typename Kernel, typename Handle>
uint64_t ScheduleCancel(Kernel& kernel, uint64_t events) {
  uint64_t fired = 0;
  std::vector<Handle> handles;
  handles.reserve(events);
  for (uint64_t i = 0; i < events; ++i) {
    Handle h = kernel.Schedule(static_cast<double>((i * 131) % 1009),
                               [&fired] { ++fired; });
    if (i % 3 != 0) handles.push_back(std::move(h));
  }
  for (Handle& h : handles) kernel.Cancel(h);
  kernel.Run();
  return fired;
}

// --- Harness ----------------------------------------------------------------

struct Measurement {
  double mean_meps = 0.0;  ///< mean million events (scheduled) per second
  double half_width = 0.0;
};

/// Runs `body` `trials` times and reports throughput in million
/// schedule+fire operations/s.
template <typename Body>
Measurement Measure(uint64_t trials, uint64_t events_per_trial, Body body) {
  Tally rates;
  for (uint64_t t = 0; t < trials; ++t) {
    const auto start = std::chrono::steady_clock::now();
    body();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    rates.Add(static_cast<double>(events_per_trial) / secs / 1e6);
  }
  Measurement m;
  m.mean_meps = rates.mean();
  if (rates.count() >= 2 && rates.stddev() > 0.0) {
    m.half_width =
        desp::StudentConfidenceInterval(rates, 0.95).half_width;
  }
  return m;
}

}  // namespace

exp::ScenarioResult RunMicroSchedulerScenario(
    const exp::ScenarioContext& ctx) {
  // Protocol mapping: one "transaction" is one chain of 200 events, so
  // the default (1000 transactions) reproduces the legacy bench's
  // 200k-event / 1000-chain workload.
  const uint64_t chains = std::max<uint64_t>(1, ctx.options.transactions);
  constexpr uint64_t kDepth = 200;
  const uint64_t events = chains * kDepth;
  const uint64_t trials = std::max<uint64_t>(2, ctx.options.replications);

  const std::vector<EventQueueKind> kinds = {EventQueueKind::kBinaryHeap,
                                             EventQueueKind::kQuaternaryHeap,
                                             EventQueueKind::kCalendar};
  struct Row {
    std::string workload;
    std::string kernel;
    Measurement result;
    double speedup_vs_legacy = 0.0;
  };
  std::vector<Row> rows;

  const auto run_workload = [&](const std::string& workload,
                                uint64_t per_trial, auto legacy_body,
                                auto modern_body) {
    const Measurement legacy = Measure(trials, per_trial, legacy_body);
    rows.push_back({workload, "legacy", legacy, 1.0});
    for (EventQueueKind kind : kinds) {
      const Measurement m =
          Measure(trials, per_trial, [&] { modern_body(kind); });
      rows.push_back({workload, desp::ToString(kind), m,
                      legacy.mean_meps > 0.0 ? m.mean_meps / legacy.mean_meps
                                             : 0.0});
    }
  };

  run_workload(
      "schedule_drain", events,
      [&] {
        LegacyScheduler kernel;
        ScheduleDrain(kernel, events);
      },
      [&](EventQueueKind kind) {
        Scheduler kernel(kind);
        ScheduleDrain(kernel, events);
      });
  run_workload(
      "event_chain", chains * kDepth,
      [&] {
        LegacyScheduler kernel;
        EventChains(kernel, chains, kDepth);
      },
      [&](EventQueueKind kind) {
        Scheduler kernel(kind);
        EventChains(kernel, chains, kDepth);
      });
  run_workload(
      "schedule_cancel", events,
      [&] {
        LegacyScheduler kernel;
        ScheduleCancel<LegacyScheduler, LegacyScheduler::Handle>(kernel,
                                                                 events);
      },
      [&](EventQueueKind kind) {
        Scheduler kernel(kind);
        ScheduleCancel<Scheduler, desp::EventHandle>(kernel, events);
      });

  util::TextTable table(
      {"Workload", "Kernel", "Mevents/s", "±95%", "vs legacy"});
  exp::ScenarioResult result;
  for (const Row& row : rows) {
    table.AddRow({row.workload, row.kernel,
                  util::FormatDouble(row.result.mean_meps, 2),
                  util::FormatDouble(row.result.half_width, 2),
                  util::FormatDouble(row.speedup_vs_legacy, 2) + "x"});
    const Estimate throughput{row.result.mean_meps, row.result.half_width};
    const Estimate speedup{row.speedup_vs_legacy, 0.0};
    RecordEstimate("micro_scheduler", row.workload, row.kernel, throughput);
    result["micro_scheduler/" + row.workload + "/" + row.kernel + "/mean"] =
        throughput.mean;
    if (row.kernel != "legacy") {
      RecordEstimate("micro_scheduler", row.workload,
                     row.kernel + "_speedup", speedup);
      result["micro_scheduler/" + row.workload + "/" + row.kernel +
             "_speedup/mean"] = speedup.mean;
    }
  }
  std::cout << "== DESP kernel event throughput (" << events
            << " events/trial, " << trials << " trials) ==\n";
  if (ctx.options.csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  return result;
}

}  // namespace voodb::bench
