/// \file bench_ablation_multiprog.cpp
/// \brief Ablation of Table 3's MULTILVL: multiprogramming level under a
/// multi-user workload — throughput rises with admitted concurrency until
/// the disk saturates.
#include <iostream>

#include "desp/random.hpp"
#include "harness.hpp"
#include "ocb/workload.hpp"
#include "voodb/system.hpp"

int main(int argc, char** argv) {
  using namespace voodb;
  using namespace voodb::bench;
  const RunOptions options = ParseOptions(
      argc, argv, "Ablation — multiprogramming level (MULTILVL)");

  ocb::OcbParameters wl;
  wl.num_classes = 20;
  wl.num_objects = 5000;
  wl.think_time_ms = 5.0;
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(wl);

  util::TextTable table({"MULTILVL", "Throughput (tps)", "Resp (ms)",
                         "Disk util", "Mean I/Os"});
  for (const uint32_t multilvl : {1u, 2u, 4u, 8u, 16u}) {
    const auto metrics = ReplicateMetrics(
        options, options.seed, [&](uint64_t seed, desp::MetricSink& sink) {
          core::VoodbConfig cfg;
          cfg.event_queue = options.event_queue;
          cfg.system_class = core::SystemClass::kCentralized;
          cfg.buffer_pages = 120;  // scarce memory: disk-bound regime
          cfg.multiprogramming_level = multilvl;
          cfg.num_users = 32;
          core::VoodbSystem sys(cfg, &base, nullptr, seed);
          ocb::WorkloadGenerator gen(&base,
                                     desp::RandomStream(seed).Derive(1));
          const core::PhaseMetrics m =
              sys.RunTransactions(gen, options.transactions);
          sink.Observe("throughput_tps", m.ThroughputTps());
          sink.Observe("mean_response_ms", m.mean_response_ms);
          sink.Observe("disk_util", sys.io_subsystem().DiskUtilization());
          sink.Observe("total_ios", static_cast<double>(m.total_ios));
        });
    for (const auto& [name, estimate] : metrics) {
      RecordEstimate("multilvl", std::to_string(multilvl), name, estimate);
    }
    table.AddRow({std::to_string(multilvl),
                  WithCi(metrics.at("throughput_tps"), 2),
                  util::FormatDouble(metrics.at("mean_response_ms").mean, 1),
                  util::FormatDouble(metrics.at("disk_util").mean, 3),
                  util::FormatDouble(metrics.at("total_ios").mean, 0)});
  }
  std::cout << "== Ablation: multiprogramming level (MULTILVL) ==\n";
  if (options.csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  std::cout << "Expectation: throughput grows with MULTILVL while the disk "
               "has headroom, peaks, then *degrades* under over-admission "
               "as concurrent transactions' working sets thrash the shared "
               "buffer (watch Mean I/Os rise) — the classic reason the "
               "database scheduler caps the multiprogramming level.\n";
  return 0;
}
