/// \file bench_ablation_multiprog.cpp
/// \brief Thin wrapper over the "ablation_multiprog" catalog scenario (MULTILVL ablation);
/// equivalent to `voodb run ablation_multiprog` with the same flags.
#include "harness.hpp"

int main(int argc, char** argv) {
  return voodb::bench::RunScenarioMain("ablation_multiprog", argc, argv);
}
