/// \file micro_cc.hpp
/// \brief Concurrency-control protocol micro bench as a catalog scenario.
///
/// A synthetic contended lock workload (fixed user count, fixed accesses
/// per transaction, small hot oid space, restart-on-abort with
/// exponential backoff) driven directly on a `desp::Scheduler` through
/// each `cc::Protocol` — and through a verbatim embedded copy of the
/// pre-subsystem wait-die `LockManager` (the PR-7 baseline).  The
/// scenario *fails* unless the wait_die protocol reproduces the legacy
/// manager's commit/restart/lock counters exactly, so the "current
/// behavior is one protocol among peers" refactor claim is enforced on
/// every run.  Per-protocol wall-clock overhead lands in BENCH_cc.json.
///
/// The scenario also asserts the Transaction Manager's pooled in-flight
/// scheme: a two-phase contended system run must not grow the slot pool
/// after warm-up (capacity is bounded by concurrency, not transactions
/// run) and must leave zero live slots — the allocation witness for the
/// `shared_ptr<InFlight>` replacement.
///
/// Protocol-knob mapping (micro benches have no model config):
///   --transactions=N   transactions per synthetic user
///   --replications=N   timed trials per protocol
#pragma once

#include "exp/scenario.hpp"

namespace voodb::bench {

/// Run hook of the `micro_cc` scenario.
exp::ScenarioResult RunMicroCcScenario(const exp::ScenarioContext& ctx);

}  // namespace voodb::bench
