/// \file bench_fig06_o2_instances_nc20.cpp
/// \brief Reproduces Figure 6: O2, mean number of I/Os vs number of
/// instances (500..20000), 20-class schema, 16 MB server cache.
#include "sweeps.hpp"

int main(int argc, char** argv) {
  using namespace voodb::bench;
  const RunOptions options = ParseOptions(
      argc, argv,
      "Figure 6 — mean number of I/Os depending on number of instances "
      "(O2, 20 classes)");
  RunInstanceSweep(options, TargetSystem::kO2, 20,
                   "Figure 6: O2, NC=20, I/Os vs NO",
                   /*paper_bench=*/{260, 480, 840, 1600, 2700, 4300},
                   /*paper_sim=*/{230, 450, 800, 1500, 2500, 4000});
  return 0;
}
