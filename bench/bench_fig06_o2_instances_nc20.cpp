/// \file bench_fig06_o2_instances_nc20.cpp
/// \brief Thin wrapper over the "fig06" catalog scenario (Figure 6: O2, I/Os vs instances, NC=20);
/// equivalent to `voodb run fig06` with the same flags.
#include "harness.hpp"

int main(int argc, char** argv) {
  return voodb::bench::RunScenarioMain("fig06", argc, argv);
}
