/// \file micro_scheduler.hpp
/// \brief The event-kernel throughput micro bench as a catalog scenario.
///
/// Measures schedule+fire throughput of every EventQueue backend against
/// an embedded copy of the pre-refactor kernel (heap-allocated
/// shared_ptr/std::function events on a std::priority_queue), so the
/// speedup column is measured, not remembered.  Runs through the PR 3
/// scenario path: `voodb run micro_scheduler` and the thin
/// `bench_micro_scheduler` wrapper both resolve here, and the results
/// land in BENCH_*.json through the shared recorder.
///
/// Protocol-knob mapping (micro benches have no model config):
///   --transactions=N   N chains, N*200 events per trial (default 1000
///                      transactions = the legacy 200k-event default)
///   --replications=N   timed trials per cell
#pragma once

#include "exp/scenario.hpp"

namespace voodb::bench {

/// Run hook of the `micro_scheduler` scenario.
exp::ScenarioResult RunMicroSchedulerScenario(const exp::ScenarioContext& ctx);

}  // namespace voodb::bench
