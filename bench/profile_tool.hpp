/// \file profile_tool.hpp
/// \brief The `voodb profile <scenario>` subcommand.
///
///   voodb profile fig08 [--transactions=N] [--seed=N] [--set k=v ...]
///       runs one fixed-seed simulation of the scenario's base
///       configuration with the observability layer attached and prints
///       the per-actor simulated-time breakdown (where does simulated
///       time go: transaction manager, I/O subsystem, lock waits, ...),
///       the end-to-end response-time percentiles, and the full metric
///       snapshot.  It also writes
///         * a Chrome-trace timeline (load in chrome://tracing or Perfetto)
///         * the metric snapshot as JSON
///       unless the respective --trace/--metrics flag is "off".
#pragma once

namespace voodb::bench {

/// Entry point for `voodb profile ...`; `argv` starts after the
/// "profile" word.  Returns a process exit code.
int RunProfileCommand(int argc, const char* const* argv);

}  // namespace voodb::bench
