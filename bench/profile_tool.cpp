#include "profile_tool.hpp"

#include <iostream>
#include <string>
#include <vector>

#include "desp/random.hpp"
#include "exp/report.hpp"
#include "exp/scenario.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "ocb/workload.hpp"
#include "scenarios.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "voodb/param_registry.hpp"
#include "voodb/system.hpp"

namespace voodb::bench {

namespace {

void ProfileUsage(std::ostream& os) {
  os << "usage:\n"
        "  voodb profile <scenario> [--transactions=N] [--seed=N]\n"
        "                [--set name=value ...] [--trace=PATH] "
        "[--metrics=PATH]\n\n"
        "Runs one fixed-seed simulation of the scenario's base "
        "configuration with\nthe observability layer attached: prints the "
        "per-actor simulated-time\nbreakdown and response-time "
        "percentiles, writes a chrome://tracing\ntimeline and the metric "
        "snapshot as JSON (\"off\" disables either file).\n";
}

int Profile(const std::string& scenario_name, int argc,
            const char* const* argv) {
  const exp::Scenario& scenario =
      exp::ScenarioRegistry::Instance().At(scenario_name);
  util::CliArgs args(argc, argv);
  const auto transactions = static_cast<uint64_t>(
      args.GetInt("transactions", 1000, "transactions to profile"));
  const auto seed =
      static_cast<uint64_t>(args.GetInt("seed", 42, "RNG seed"));
  const std::vector<std::string> sets = args.GetList(
      "set", "override a model parameter (name=value, repeatable)");
  const std::string trace_path = args.GetString(
      "trace", "PROFILE_" + scenario_name + ".trace.json",
      "Chrome-trace output (chrome://tracing); \"off\" disables; an "
      "explicit --set profile_path wins when --trace is not given");
  const std::string metrics_path = args.GetString(
      "metrics", "PROFILE_" + scenario_name + ".metrics.json",
      "metric-snapshot JSON output; \"off\" disables");
  if (args.help_requested()) {
    std::cout << scenario.title << "\n\n";
    ProfileUsage(std::cout);
    std::cout << "\n" << args.Help();
    return 0;
  }
  args.RejectUnknown();
  VOODB_CHECK_MSG(scenario.system_config_used,
                  "scenario '" << scenario_name
                               << "' runs the direct-execution emulator "
                                  "only; the profiler needs the VOODB "
                                  "simulation (pick a sim scenario from "
                                  "`voodb list`)");

  core::ExperimentConfig config = scenario.base;
  const core::ParamRegistry& registry = core::ParamRegistry::Instance();
  for (const std::string& assignment : sets) {
    const size_t eq = assignment.find('=');
    VOODB_CHECK_MSG(eq != std::string::npos && eq > 0,
                    "--set expects name=value, got '" << assignment << "'");
    registry.Set(
        core::ParamTarget{&config.system, &config.workload},
        assignment.substr(0, eq), assignment.substr(eq + 1));
  }
  config.system.observe = true;
  // Compose with `--set profile_path=...` (and any scenario base value):
  // the --trace flag only overrides when explicitly given, and "off"
  // disables the timeline regardless of where the path came from.
  if (trace_path == "off" || trace_path == "none") {
    config.system.profile_path.clear();
  } else if (args.Provided("trace") || config.system.profile_path.empty()) {
    config.system.profile_path = trace_path;
  }
  config.system.Validate();
  config.workload.Validate();

  const ocb::ObjectBase base = ocb::ObjectBase::Generate(config.workload);
  core::VoodbSystem sys(config.system, &base, nullptr, seed);
  ocb::WorkloadGenerator gen(&base, desp::RandomStream(seed).Derive(1));
  const core::PhaseMetrics metrics = sys.RunTransactions(gen, transactions);

  std::cout << "profiled " << transactions << " transactions of '"
            << scenario_name << "' (seed " << seed << "): "
            << util::FormatDouble(metrics.sim_time_ms, 1)
            << " ms simulated, " << sys.scheduler().ExecutedEvents()
            << " events\n\n";
  std::cout << "== simulated time by actor ==\n";
  sys.profiler()->Table().Print(std::cout);

  util::TextTable latency({"Metric", "p50", "p95", "p99", "p999", "Max"});
  latency.AddRow(
      {"response (ms)",
       util::FormatDouble(metrics.ResponseQuantileMs(0.50), 2),
       util::FormatDouble(metrics.ResponseQuantileMs(0.95), 2),
       util::FormatDouble(metrics.ResponseQuantileMs(0.99), 2),
       util::FormatDouble(metrics.ResponseQuantileMs(0.999), 2),
       util::FormatDouble(metrics.max_response_ms, 2)});
  std::cout << "\n== end-to-end latency ==\n";
  latency.Print(std::cout);

  if (!(metrics_path == "off" || metrics_path == "none")) {
    exp::WriteFile(metrics_path, sys.metric_registry().Snapshot().ToJson());
    std::cout << "\nwrote metric snapshot to " << metrics_path << "\n";
  }
  sys.FinishProfile();
  if (!config.system.profile_path.empty()) {
    std::cout << "wrote Chrome trace to " << config.system.profile_path
              << " (load in chrome://tracing or ui.perfetto.dev)\n";
  }
  return 0;
}

}  // namespace

int RunProfileCommand(int argc, const char* const* argv) {
  if (argc < 2) {
    ProfileUsage(std::cerr);
    return 2;
  }
  const std::string scenario = argv[1];
  if (scenario == "--help" || scenario == "-h" || scenario == "help") {
    ProfileUsage(std::cout);
    return 0;
  }
  if (scenario.rfind("--", 0) == 0) {
    std::cerr << "error: `voodb profile` needs a scenario name before "
                 "flags (see `voodb list`)\n";
    return 2;
  }
  try {
    return Profile(scenario, argc - 1, argv + 1);
  } catch (const util::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace voodb::bench
