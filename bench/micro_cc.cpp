#include "micro_cc.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cc/protocol.hpp"
#include "desp/random.hpp"
#include "desp/scheduler.hpp"
#include "harness.hpp"
#include "ocb/object_base.hpp"
#include "ocb/parameters.hpp"
#include "ocb/types.hpp"
#include "ocb/workload.hpp"
#include "util/check.hpp"
#include "util/table.hpp"
#include "voodb/lock_manager.hpp"
#include "voodb/system.hpp"

namespace voodb::bench {

namespace legacy_cc {

// ---------------------------------------------------------------------------
// The PR-7 wait-die LockManager, embedded verbatim (modulo the metrics
// registration and debug dump, which the bench does not exercise).  This
// is the baseline the wait_die protocol must reproduce bit for bit; it
// must NOT track upstream changes to src/voodb/lock_manager.cpp.
// ---------------------------------------------------------------------------

using core::LockMode;

struct LegacyStats {
  uint64_t requests = 0;
  uint64_t immediate_grants = 0;
  uint64_t waits = 0;
  uint64_t deadlock_aborts = 0;
  uint64_t upgrades = 0;
};

class LegacyLockManager {
 public:
  explicit LegacyLockManager(desp::Scheduler* scheduler)
      : scheduler_(scheduler) {
    VOODB_CHECK_MSG(scheduler_ != nullptr, "lock manager needs a scheduler");
  }

  LegacyLockManager(const LegacyLockManager&) = delete;
  LegacyLockManager& operator=(const LegacyLockManager&) = delete;

  void BeginTransaction(uint64_t txn, double timestamp) {
    auto [it, inserted] = transactions_.emplace(txn, TxnState{timestamp, {}});
    (void)it;
    VOODB_CHECK_MSG(inserted, "transaction " << txn << " already active");
  }

  void Acquire(uint64_t txn, ocb::Oid oid, LockMode mode,
               std::function<void()> granted, std::function<void()> died) {
    VOODB_CHECK_MSG(static_cast<bool>(granted) && static_cast<bool>(died),
                    "Acquire needs both continuations");
    const auto txn_it = transactions_.find(txn);
    VOODB_CHECK_MSG(txn_it != transactions_.end(),
                    "transaction " << txn << " not begun");
    ++stats_.requests;
    LockEntry& entry = table_[oid];

    if (Holds(txn, oid, mode)) {
      ++stats_.immediate_grants;
      scheduler_->Schedule(0.0, std::move(granted));
      return;
    }
    bool is_upgrade = false;
    for (const Holder& h : entry.holders) {
      if (h.txn == txn) {
        is_upgrade = true;
        break;
      }
    }
    const bool may_grant_now =
        Compatible(entry, txn, mode) && (is_upgrade || entry.waiters.empty());
    if (may_grant_now) {
      const bool strengthened = is_upgrade && mode == LockMode::kExclusive;
      Grant(entry, txn, mode);
      txn_it->second.held.push_back(oid);
      ++stats_.immediate_grants;
      scheduler_->Schedule(0.0, std::move(granted));
      if (strengthened) EnforceWaitDie(oid);
      return;
    }
    if (!MayWait(entry, txn, mode, entry.waiters.size())) {
      ++stats_.deadlock_aborts;
      scheduler_->Schedule(0.0, std::move(died));
      return;
    }
    ++stats_.waits;
    Waiter waiter{txn, mode, scheduler_->Now(), std::move(granted),
                  std::move(died)};
    if (is_upgrade) {
      entry.waiters.push_front(std::move(waiter));
    } else {
      entry.waiters.push_back(std::move(waiter));
    }
  }

  void ReleaseAll(uint64_t txn) {
    const auto txn_it = transactions_.find(txn);
    VOODB_CHECK_MSG(txn_it != transactions_.end(),
                    "transaction " << txn << " not active");
    std::vector<ocb::Oid> held = std::move(txn_it->second.held);
    transactions_.erase(txn_it);
    std::sort(held.begin(), held.end());
    held.erase(std::unique(held.begin(), held.end()), held.end());
    for (ocb::Oid oid : held) {
      const auto entry_it = table_.find(oid);
      if (entry_it == table_.end()) continue;
      auto& holders = entry_it->second.holders;
      holders.erase(std::remove_if(holders.begin(), holders.end(),
                                   [txn](const Holder& h) {
                                     return h.txn == txn;
                                   }),
                    holders.end());
      WakeWaiters(oid);
      if (entry_it->second.holders.empty() &&
          entry_it->second.waiters.empty()) {
        table_.erase(entry_it);
      }
    }
    std::vector<ocb::Oid> purged;
    for (auto& [other_oid, entry] : table_) {
      auto& waiters = entry.waiters;
      const size_t before = waiters.size();
      waiters.erase(std::remove_if(waiters.begin(), waiters.end(),
                                   [txn](const Waiter& w) {
                                     return w.txn == txn;
                                   }),
                    waiters.end());
      if (waiters.size() != before) purged.push_back(other_oid);
    }
    for (ocb::Oid oid : purged) WakeWaiters(oid);
  }

  const LegacyStats& stats() const { return stats_; }

 private:
  struct Holder {
    uint64_t txn;
    LockMode mode;
  };
  struct Waiter {
    uint64_t txn;
    LockMode mode;
    double enqueued_at;
    std::function<void()> granted;
    std::function<void()> died;
  };
  struct LockEntry {
    std::vector<Holder> holders;
    std::deque<Waiter> waiters;
  };
  struct TxnState {
    double timestamp = 0.0;
    std::vector<ocb::Oid> held;
  };

  bool Holds(uint64_t txn, ocb::Oid oid, LockMode mode) const {
    const auto entry_it = table_.find(oid);
    if (entry_it == table_.end()) return false;
    for (const Holder& h : entry_it->second.holders) {
      if (h.txn != txn) continue;
      return mode == LockMode::kShared || h.mode == LockMode::kExclusive;
    }
    return false;
  }

  bool Compatible(const LockEntry& entry, uint64_t txn,
                  LockMode mode) const {
    for (const Holder& h : entry.holders) {
      if (h.txn == txn) continue;
      if (mode == LockMode::kExclusive || h.mode == LockMode::kExclusive) {
        return false;
      }
    }
    return true;
  }

  bool MayWait(const LockEntry& entry, uint64_t txn, LockMode mode,
               size_t ahead_count) const {
    const auto requester = transactions_.find(txn);
    VOODB_CHECK_MSG(requester != transactions_.end(),
                    "unknown transaction " << txn);
    const double ts = requester->second.timestamp;
    auto conflicting = [mode](LockMode other) {
      return mode == LockMode::kExclusive || other == LockMode::kExclusive;
    };
    for (const Holder& h : entry.holders) {
      if (h.txn == txn || !conflicting(h.mode)) continue;
      const auto holder = transactions_.find(h.txn);
      VOODB_CHECK_MSG(holder != transactions_.end(), "holder vanished");
      if (ts >= holder->second.timestamp) {
        return false;
      }
    }
    size_t position = 0;
    for (const Waiter& w : entry.waiters) {
      if (position++ >= ahead_count) break;
      if (w.txn == txn || !conflicting(w.mode)) continue;
      const auto ahead = transactions_.find(w.txn);
      if (ahead == transactions_.end()) continue;
      if (ts >= ahead->second.timestamp) {
        return false;
      }
    }
    return true;
  }

  void Grant(LockEntry& entry, uint64_t txn, LockMode mode) {
    for (Holder& h : entry.holders) {
      if (h.txn == txn) {
        if (mode == LockMode::kExclusive && h.mode == LockMode::kShared) {
          h.mode = LockMode::kExclusive;
          ++stats_.upgrades;
        }
        return;
      }
    }
    entry.holders.push_back(Holder{txn, mode});
  }

  void WakeWaiters(ocb::Oid oid) {
    const auto entry_it = table_.find(oid);
    if (entry_it == table_.end()) return;
    LockEntry& entry = entry_it->second;
    bool granted_any = false;
    while (!entry.waiters.empty()) {
      Waiter& head = entry.waiters.front();
      const auto txn_it = transactions_.find(head.txn);
      if (txn_it == transactions_.end()) {
        entry.waiters.pop_front();
        continue;
      }
      if (!Compatible(entry, head.txn, head.mode)) break;
      Grant(entry, head.txn, head.mode);
      txn_it->second.held.push_back(oid);
      scheduler_->Schedule(0.0, std::move(head.granted));
      entry.waiters.pop_front();
      granted_any = true;
    }
    if (granted_any) EnforceWaitDie(oid);
  }

  void EnforceWaitDie(ocb::Oid oid) {
    const auto entry_it = table_.find(oid);
    if (entry_it == table_.end()) return;
    LockEntry& entry = entry_it->second;
    auto& waiters = entry.waiters;
    size_t position = 0;
    for (auto it = waiters.begin(); it != waiters.end();) {
      const auto txn_it = transactions_.find(it->txn);
      if (txn_it == transactions_.end()) {
        it = waiters.erase(it);
        continue;
      }
      if (MayWait(entry, it->txn, it->mode, position)) {
        ++it;
        ++position;
        continue;
      }
      ++stats_.deadlock_aborts;
      scheduler_->Schedule(0.0, std::move(it->died));
      it = waiters.erase(it);
    }
  }

  desp::Scheduler* scheduler_;
  std::unordered_map<ocb::Oid, LockEntry> table_;
  std::unordered_map<uint64_t, TxnState> transactions_;
  LegacyStats stats_;
};

}  // namespace legacy_cc

namespace {

// ---------------------------------------------------------------------------
// Synthetic contended workload driver
// ---------------------------------------------------------------------------

/// Type-erased CC hooks so one driver exercises the legacy manager and
/// every protocol identically (the std::function cost is paid uniformly
/// by every cell, including the baseline).
struct CcHooks {
  std::function<void(uint64_t txn, uint64_t age)> begin;
  std::function<void(uint64_t txn, ocb::Oid oid, bool write,
                     std::function<void()> granted,
                     std::function<void()> aborted)>
      access;
  std::function<bool(uint64_t txn)> validate;
  std::function<void(uint64_t txn)> commit;
  std::function<void(uint64_t txn)> abort;
};

struct DriverParams {
  uint64_t users = 24;
  uint64_t txns_per_user = 40;
  uint64_t accesses_per_txn = 6;
  uint64_t oid_space = 48;  ///< small on purpose: hot, contended
  double p_write = 0.5;
  double hold_ms = 1.0;     ///< simulated work while the lock is held
  double backoff_ms = 5.0;  ///< mean restart backoff
  uint64_t seed = 42;
};

struct DriverStats {
  uint64_t committed = 0;
  uint64_t restarts = 0;
  double sim_time_ms = 0.0;
};

/// One synthetic user: runs `txns_per_user` transactions back to back,
/// regenerating its access list per transaction and retrying aborted
/// attempts with the original age stamp (wait-die no-starvation).
struct SyntheticUser {
  desp::Scheduler* sched = nullptr;
  const CcHooks* cc = nullptr;
  const DriverParams* params = nullptr;
  DriverStats* stats = nullptr;
  uint64_t* next_txn_id = nullptr;
  uint64_t* next_age = nullptr;
  desp::RandomStream rng{0};
  desp::RandomStream backoff_rng{0};
  uint64_t remaining = 0;
  uint64_t txn_id = 0;
  uint64_t age = 0;
  size_t cursor = 0;
  std::vector<ocb::ObjectAccess> accesses;

  void StartTransaction() {
    accesses.clear();
    for (uint64_t i = 0; i < params->accesses_per_txn; ++i) {
      const auto oid = static_cast<ocb::Oid>(
          rng.UniformInt(1, static_cast<int64_t>(params->oid_space)));
      accesses.push_back(ocb::ObjectAccess{oid, rng.Bernoulli(params->p_write)});
    }
    age = (*next_age)++;
    BeginAttempt();
  }

  void BeginAttempt() {
    txn_id = (*next_txn_id)++;
    cursor = 0;
    cc->begin(txn_id, age);
    Step();
  }

  void Step() {
    if (cursor >= accesses.size()) {
      if (!cc->validate(txn_id)) {
        Abort();
        return;
      }
      cc->commit(txn_id);
      ++stats->committed;
      if (--remaining > 0) StartTransaction();
      return;
    }
    const ocb::ObjectAccess access = accesses[cursor++];
    cc->access(
        txn_id, access.oid, access.is_write,
        [this]() { sched->Schedule(params->hold_ms, [this]() { Step(); }); },
        [this]() { Abort(); });
  }

  void Abort() {
    cc->abort(txn_id);
    ++stats->restarts;
    const double backoff = backoff_rng.Exponential(params->backoff_ms);
    sched->Schedule(backoff, [this]() { BeginAttempt(); });
  }
};

DriverStats RunSynthetic(desp::Scheduler& sched, const CcHooks& cc,
                         const DriverParams& params) {
  DriverStats stats;
  uint64_t next_txn_id = 1;
  uint64_t next_age = 1;
  std::vector<SyntheticUser> users(params.users);
  for (uint64_t u = 0; u < params.users; ++u) {
    SyntheticUser& user = users[u];
    user.sched = &sched;
    user.cc = &cc;
    user.params = &params;
    user.stats = &stats;
    user.next_txn_id = &next_txn_id;
    user.next_age = &next_age;
    user.rng = desp::RandomStream(params.seed).Derive(100 + u);
    user.backoff_rng = desp::RandomStream(params.seed).Derive(200 + u);
    user.remaining = params.txns_per_user;
    // Staggered starts so admissions do not all collide at t=0.
    sched.Schedule(0.01 * static_cast<double>(u),
                   [&user]() { user.StartTransaction(); });
  }
  sched.Run();
  stats.sim_time_ms = sched.Now();
  return stats;
}

CcHooks HooksFor(cc::Protocol& protocol) {
  CcHooks hooks;
  hooks.begin = [&protocol](uint64_t txn, uint64_t age) {
    protocol.Begin(txn, age);
  };
  hooks.access = [&protocol](uint64_t txn, ocb::Oid oid, bool write,
                             std::function<void()> granted,
                             std::function<void()> aborted) {
    protocol.Access(txn, oid, write, std::move(granted), std::move(aborted));
  };
  hooks.validate = [&protocol](uint64_t txn) {
    return protocol.ValidateCommit(txn);
  };
  hooks.commit = [&protocol](uint64_t txn) { protocol.Commit(txn); };
  hooks.abort = [&protocol](uint64_t txn) { protocol.Abort(txn); };
  return hooks;
}

CcHooks HooksFor(legacy_cc::LegacyLockManager& lm) {
  CcHooks hooks;
  hooks.begin = [&lm](uint64_t txn, uint64_t age) {
    lm.BeginTransaction(txn, static_cast<double>(age));
  };
  hooks.access = [&lm](uint64_t txn, ocb::Oid oid, bool write,
                       std::function<void()> granted,
                       std::function<void()> aborted) {
    lm.Acquire(txn, oid,
               write ? core::LockMode::kExclusive : core::LockMode::kShared,
               std::move(granted), std::move(aborted));
  };
  hooks.validate = [](uint64_t) { return true; };
  hooks.commit = [&lm](uint64_t txn) { lm.ReleaseAll(txn); };
  hooks.abort = [&lm](uint64_t txn) { lm.ReleaseAll(txn); };
  return hooks;
}

double WallMs(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

/// The pooled in-flight assertion: a contended two-phase system run must
/// reach a steady pool size during warm-up and never grow past it, with
/// zero live slots once drained.
void AssertInFlightPooling(util::TextTable& table) {
  ocb::OcbParameters wl;
  wl.num_classes = 8;
  wl.num_objects = 300;
  wl.root_region = 6;
  wl.p_update = 0.5;
  wl.seed = 111;
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(wl);

  core::VoodbConfig cfg;
  cfg.system_class = core::SystemClass::kCentralized;
  cfg.page_size = 1024;
  cfg.buffer_pages = 128;
  cfg.multiprogramming_level = 8;
  cfg.num_users = 8;
  cfg.use_lock_manager = true;
  cfg.get_lock_ms = 0.2;
  cfg.release_lock_ms = 0.2;

  core::VoodbSystem sys(cfg, &base, nullptr, /*seed=*/7);
  ocb::WorkloadGenerator gen(&base, desp::RandomStream(7).Derive(1));
  sys.RunTransactions(gen, 200);  // warm-up: the pool reaches steady state
  const core::TransactionManagerActor& tm = sys.transaction_manager();
  const size_t after_warmup = tm.inflight_pool_capacity();
  sys.RunTransactions(gen, 200);  // steady state: no further allocation
  const size_t after_steady = tm.inflight_pool_capacity();

  VOODB_CHECK_MSG(after_warmup > 0 && after_warmup <= cfg.num_users,
                  "in-flight pool should be bounded by the user count, got "
                      << after_warmup << " slots for " << cfg.num_users
                      << " users");
  VOODB_CHECK_MSG(after_steady == after_warmup,
                  "in-flight pool grew after warm-up ("
                      << after_warmup << " -> " << after_steady
                      << " slots): per-transaction allocation regressed");
  VOODB_CHECK_MSG(tm.inflight_pool_live() == 0,
                  "in-flight slots leaked: " << tm.inflight_pool_live());
  table.AddRow({"inflight_pool", std::to_string(after_warmup) + " slots",
                "400 txns", "-", "-", "ok"});
}

/// The span-tracer overhead gate: the same contended two-phase system run
/// untraced and traced (sample rate 1).  Tracing is pure metadata, so the
/// simulation outputs must be identical (enforced) and the wall-clock
/// ratio must stay small (recorded; CI gates it at 1.03x).  Returns the
/// best-of-trials traced/untraced ratio.
double MeasureTracingOverhead(util::TextTable& table, uint64_t trials) {
  ocb::OcbParameters wl;
  wl.num_classes = 8;
  wl.num_objects = 300;
  wl.root_region = 6;
  wl.p_update = 0.5;
  wl.seed = 111;
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(wl);

  core::VoodbConfig cfg;
  cfg.system_class = core::SystemClass::kCentralized;
  cfg.page_size = 1024;
  cfg.buffer_pages = 128;
  cfg.multiprogramming_level = 8;
  cfg.num_users = 8;
  cfg.use_lock_manager = true;
  cfg.get_lock_ms = 0.2;
  cfg.release_lock_ms = 0.2;

  constexpr uint64_t kTxns = 2000;
  auto run = [&](bool traced, core::PhaseMetrics* out) {
    core::VoodbConfig cell = cfg;
    cell.trace_spans = traced;
    cell.trace_sample_rate = 1.0;
    core::VoodbSystem sys(cell, &base, nullptr, /*seed=*/7);
    ocb::WorkloadGenerator gen(&base, desp::RandomStream(7).Derive(1));
    return WallMs([&] { *out = sys.RunTransactions(gen, kTxns); });
  };

  double untraced_wall = 0.0;
  double traced_wall = 0.0;
  core::PhaseMetrics untraced;
  core::PhaseMetrics traced;
  for (uint64_t t = 0; t < trials; ++t) {
    core::PhaseMetrics m;
    const double off = run(false, &m);
    if (t == 0 || off < untraced_wall) untraced_wall = off;
    untraced = m;
    const double on = run(true, &m);
    if (t == 0 || on < traced_wall) traced_wall = on;
    traced = m;
  }
  VOODB_CHECK_MSG(
      traced.sim_time_ms == untraced.sim_time_ms &&
          traced.transactions == untraced.transactions &&
          traced.transaction_restarts == untraced.transaction_restarts &&
          traced.total_ios == untraced.total_ios,
      "span tracing perturbed the simulation: traced "
          << traced.sim_time_ms << " ms / " << traced.total_ios
          << " IOs vs untraced " << untraced.sim_time_ms << " ms / "
          << untraced.total_ios << " IOs");
  const double ratio =
      untraced_wall <= 0.0 ? 1.0 : traced_wall / untraced_wall;
  RecordEstimate("tracing", "micro_cc", "untraced_wall_ms",
                 Estimate{untraced_wall, 0.0});
  RecordEstimate("tracing", "micro_cc", "traced_wall_ms",
                 Estimate{traced_wall, 0.0});
  RecordEstimate("tracing", "micro_cc", "wall_ratio", Estimate{ratio, 0.0});
  table.AddRow({"span_tracing", util::FormatDouble(traced_wall, 2),
                std::to_string(traced.transactions), "-",
                util::FormatDouble(traced.sim_time_ms, 1),
                util::FormatDouble(ratio, 3) + "x"});
  return ratio;
}

}  // namespace

exp::ScenarioResult RunMicroCcScenario(const exp::ScenarioContext& ctx) {
  const RunOptions options = ToRunOptions(ctx);
  exp::ScenarioResult result;

  DriverParams params;
  params.txns_per_user = std::max<uint64_t>(5, options.transactions / 24);
  params.seed = options.seed;

  const uint64_t trials = std::max<uint64_t>(2, options.replications);

  util::TextTable table({"Protocol", "Wall (ms)", "Committed", "Restarts",
                         "Sim (ms)", "Baseline"});

  // The embedded PR-7 baseline first: wall time and the counters the
  // wait_die protocol must reproduce.
  double legacy_wall = 0.0;
  DriverStats legacy_stats;
  legacy_cc::LegacyStats legacy_lock_stats;
  for (uint64_t t = 0; t < trials; ++t) {
    desp::Scheduler sched;
    legacy_cc::LegacyLockManager lm(&sched);
    const CcHooks hooks = HooksFor(lm);
    DriverStats stats;
    const double ms = WallMs([&] { stats = RunSynthetic(sched, hooks, params); });
    if (t == 0 || ms < legacy_wall) legacy_wall = ms;
    legacy_stats = stats;
    legacy_lock_stats = lm.stats();
  }
  RecordEstimate("overhead", "legacy_wait_die", "wall_ms",
                 Estimate{legacy_wall, 0.0});
  result["overhead/legacy_wait_die/wall_ms/mean"] = legacy_wall;
  table.AddRow({"legacy_wait_die", util::FormatDouble(legacy_wall, 2),
                std::to_string(legacy_stats.committed),
                std::to_string(legacy_stats.restarts),
                util::FormatDouble(legacy_stats.sim_time_ms, 1), "ref"});

  const uint64_t expected_txns = params.users * params.txns_per_user;
  VOODB_CHECK_MSG(legacy_stats.committed == expected_txns,
                  "legacy baseline lost transactions: "
                      << legacy_stats.committed << " of " << expected_txns);

  for (const cc::ProtocolKind kind :
       {cc::ProtocolKind::kNoWait, cc::ProtocolKind::kWaitDie,
        cc::ProtocolKind::kDeadlockDetect, cc::ProtocolKind::kMvcc,
        cc::ProtocolKind::kOcc}) {
    double best_wall = 0.0;
    DriverStats stats;
    cc::CcStats cc_stats;
    const core::LockStats* lock_stats = nullptr;
    core::LockStats wait_die_lock_stats;
    for (uint64_t t = 0; t < trials; ++t) {
      desp::Scheduler sched;
      const auto protocol = cc::MakeProtocol(kind, &sched);
      const CcHooks hooks = HooksFor(*protocol);
      DriverStats trial_stats;
      const double ms =
          WallMs([&] { trial_stats = RunSynthetic(sched, hooks, params); });
      if (t == 0 || ms < best_wall) best_wall = ms;
      stats = trial_stats;
      cc_stats = protocol->stats();
      if (protocol->lock_manager() != nullptr) {
        wait_die_lock_stats = protocol->lock_manager()->stats();
        lock_stats = &wait_die_lock_stats;
      }
    }
    const std::string name = cc::ToString(kind);
    VOODB_CHECK_MSG(stats.committed == expected_txns,
                    name << " lost transactions: " << stats.committed
                         << " of " << expected_txns);
    if (kind == cc::ProtocolKind::kWaitDie) {
      // The identity gate: the wrapped manager must match the embedded
      // PR-7 baseline counter for counter on the same workload.
      VOODB_CHECK_MSG(lock_stats != nullptr, "wait_die lost its manager");
      VOODB_CHECK_MSG(
          stats.committed == legacy_stats.committed &&
              stats.restarts == legacy_stats.restarts &&
              stats.sim_time_ms == legacy_stats.sim_time_ms &&
              lock_stats->requests == legacy_lock_stats.requests &&
              lock_stats->immediate_grants ==
                  legacy_lock_stats.immediate_grants &&
              lock_stats->waits == legacy_lock_stats.waits &&
              lock_stats->deadlock_aborts ==
                  legacy_lock_stats.deadlock_aborts &&
              lock_stats->upgrades == legacy_lock_stats.upgrades,
          "wait_die diverged from the embedded PR-7 baseline: "
              << stats.committed << "/" << stats.restarts << " vs "
              << legacy_stats.committed << "/" << legacy_stats.restarts);
    }
    if (kind != cc::ProtocolKind::kWaitDie) {
      // The cause-attributed abort counters must account for every
      // restart the driver performed (wait-die keeps its counters in the
      // wrapped LockManager instead).
      VOODB_CHECK_MSG(cc_stats.TotalAborts() == stats.restarts,
                      name << " abort accounting off: "
                           << cc_stats.TotalAborts() << " counted vs "
                           << stats.restarts << " restarts");
    }
    RecordEstimate("overhead", name, "wall_ms", Estimate{best_wall, 0.0});
    RecordEstimate("overhead", name, "restarts",
                   Estimate{static_cast<double>(stats.restarts), 0.0});
    result["overhead/" + name + "/wall_ms/mean"] = best_wall;
    result["overhead/" + name + "/restarts/mean"] =
        static_cast<double>(stats.restarts);
    table.AddRow({name, util::FormatDouble(best_wall, 2),
                  std::to_string(stats.committed),
                  std::to_string(stats.restarts),
                  util::FormatDouble(stats.sim_time_ms, 1),
                  kind == cc::ProtocolKind::kWaitDie ? "match" : "-"});
  }

  AssertInFlightPooling(table);
  result["pooling/inflight/ok/mean"] = 1.0;
  result["tracing/micro_cc/wall_ratio/mean"] =
      MeasureTracingOverhead(table, trials);

  std::cout << "== Concurrency-control protocol overhead (" << params.users
            << " users x " << params.txns_per_user << " txns, "
            << params.accesses_per_txn << " accesses over "
            << params.oid_space << " hot oids, best of " << trials
            << " trials) ==\n";
  if (ctx.options.csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  std::cout << "Baseline=match: the wait_die protocol reproduced the "
               "embedded pre-subsystem LockManager's commits, restarts, "
               "simulated time and lock counters exactly (enforced — the "
               "scenario throws otherwise).  Wall times are best-of-trials; "
               "inflight_pool is the Transaction Manager slot-pool witness "
               "(bounded by concurrency, zero live after drain); "
               "span_tracing is the traced/untraced wall-clock ratio on an "
               "identical system run (same simulation outputs enforced; CI "
               "gates the ratio).\n";
  return result;
}

}  // namespace voodb::bench
