/// \file bench_micro_trace.cpp
/// \brief The trace-subsystem micro bench: record overhead, replay
/// throughput and the single-pass-MRC speedup over per-size runs.
/// Thin wrapper over the `micro_trace` catalog scenario; writes
/// BENCH_trace.json.
#include "harness.hpp"

int main(int argc, char** argv) {
  return voodb::bench::RunScenarioMain("micro_trace", argc, argv, "trace");
}
