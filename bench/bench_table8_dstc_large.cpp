/// \file bench_table8_dstc_large.cpp
/// \brief Thin wrapper over the "table8" catalog scenario (Table 8: DSTC effects, 'large' base);
/// equivalent to `voodb run table8` with the same flags.
#include "harness.hpp"

int main(int argc, char** argv) {
  return voodb::bench::RunScenarioMain("table8", argc, argv);
}
