/// \file bench_table8_dstc_large.cpp
/// \brief Reproduces Table 8: effects of DSTC on the performances of
/// Texas, "large" base — the mid-sized base with main memory reduced
/// from 64 MB to 8 MB so the base no longer fits.  The clustering gain
/// rises dramatically (paper: from ~5.7 to ~29.5) because under memory
/// pressure unclustered pages are evicted almost immediately.
#include <iostream>

#include "sweeps.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace voodb::bench;
  const RunOptions options = ParseOptions(
      argc, argv,
      "Table 8 — effects of DSTC on the performances, 'large' base "
      "(8 MB memory)");
  const DstcComparison cmp = RunDstcExperiment(options, /*memory_mb=*/8.0);

  voodb::util::TextTable table({"Row", "Bench.", "Sim.", "Ratio",
                                "Paper bench", "Paper sim", "Paper ratio"});
  auto ratio = [](const Estimate& a, const Estimate& b) {
    return b.mean > 0.0 ? a.mean / b.mean : 0.0;
  };
  table.AddRow({"Pre-clustering usage", WithCi(cmp.bench.pre),
                WithCi(cmp.sim.pre),
                voodb::util::FormatDouble(ratio(cmp.bench.pre, cmp.sim.pre), 4),
                "12504.60", "12547.80", "0.9965"});
  table.AddRow({"Post-clustering usage", WithCi(cmp.bench.post),
                WithCi(cmp.sim.post),
                voodb::util::FormatDouble(ratio(cmp.bench.post, cmp.sim.post),
                                          4),
                "424.30", "441.50", "0.9610"});
  table.AddRow({"Gain", WithCi(cmp.bench.gain), WithCi(cmp.sim.gain),
                voodb::util::FormatDouble(ratio(cmp.bench.gain, cmp.sim.gain),
                                          4),
                "29.47", "28.42", "1.0369"});
  std::cout << "== Table 8: Effects of DSTC on the performances (mean "
               "number of I/Os) - 'large' base ==\n";
  if (options.csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  std::cout << "Reproduction targets: bench~sim on every row; gain far "
               "larger than the mid-sized case of Table 6.\n";
  return 0;
}
