/// \file bench_fig11_texas_memory_size.cpp
/// \brief Reproduces Figure 11: Texas, mean number of I/Os vs available
/// main memory (8..64 MB) on the NC=50 / NO=20000 base (~21 MB):
/// *exponential* degradation caused by Texas' reserve-on-swizzle object
/// loading policy, unlike the linear O2 curve of Figure 8.
#include "sweeps.hpp"

int main(int argc, char** argv) {
  using namespace voodb::bench;
  const RunOptions options = ParseOptions(
      argc, argv,
      "Figure 11 — mean number of I/Os depending on memory size (Texas)");
  RunMemorySweep(options, TargetSystem::kTexas,
                 "Figure 11: Texas, I/Os vs main memory (MB)",
                 /*paper_bench=*/{103000, 55000, 30000, 13000, 7000, 5000},
                 /*paper_sim=*/{100000, 52000, 28000, 12000, 6500, 5000});
  return 0;
}
