/// \file bench_fig11_texas_memory_size.cpp
/// \brief Thin wrapper over the "fig11" catalog scenario (Figure 11: Texas, I/Os vs main memory);
/// equivalent to `voodb run fig11` with the same flags.
#include "harness.hpp"

int main(int argc, char** argv) {
  return voodb::bench::RunScenarioMain("fig11", argc, argv);
}
