/// \file bench_ablation_clustering.cpp
/// \brief Ablation of Table 3's CLUSTP: interchangeable clustering
/// modules (None / DSTC / Gay-Gruenwald) on the DSTC workload — the
/// paper's stated end-goal ("the ultimate goal is to compare different
/// clustering strategies").
#include <iostream>
#include <memory>

#include "cluster/dstc.hpp"
#include "cluster/gay_gruenwald.hpp"
#include "desp/random.hpp"
#include "harness.hpp"
#include "ocb/workload.hpp"
#include "voodb/catalog.hpp"
#include "voodb/system.hpp"

namespace {

std::unique_ptr<voodb::cluster::ClusteringPolicy> MakePolicy(int which) {
  switch (which) {
    case 1:
      return std::make_unique<voodb::cluster::DstcPolicy>();
    case 2:
      return std::make_unique<voodb::cluster::GayGruenwaldPolicy>();
    default:
      return nullptr;  // None
  }
}

const char* PolicyName(int which) {
  switch (which) {
    case 1:
      return "DSTC";
    case 2:
      return "GAY_GRUENWALD";
    default:
      return "NONE";
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace voodb;
  using namespace voodb::bench;
  const RunOptions options = ParseOptions(
      argc, argv, "Ablation — clustering policy (CLUSTP) comparison");

  ocb::OcbParameters wl;
  wl.num_classes = 50;
  wl.num_objects = 20000;
  wl.hierarchy_depth = 3;
  wl.root_region = 30;
  const ocb::ObjectBase base = ocb::ObjectBase::Generate(wl);

  util::TextTable table({"CLUSTP", "Pre I/Os", "Overhead I/Os", "Post I/Os",
                         "Gain", "Clusters"});
  for (const int which : {0, 1, 2}) {
    const auto metrics = ReplicateMetrics(
        options, options.seed, [&](uint64_t seed, desp::MetricSink& sink) {
          core::VoodbConfig cfg = core::SystemCatalog::Texas();
          cfg.event_queue = options.event_queue;
          core::VoodbSystem sys(cfg, &base, MakePolicy(which), seed);
          ocb::WorkloadGenerator gen(&base,
                                     desp::RandomStream(seed).Derive(1));
          const double pre_ios = static_cast<double>(
              sys.RunTransactionsOfKind(
                     gen, ocb::TransactionKind::kHierarchyTraversal,
                     options.transactions)
                  .total_ios);
          const core::ClusteringMetrics cm = sys.TriggerClustering();
          sys.DropBuffer();
          const double post_ios = static_cast<double>(
              sys.RunTransactionsOfKind(
                     gen, ocb::TransactionKind::kHierarchyTraversal,
                     options.transactions)
                  .total_ios);
          sink.Observe("pre_ios", pre_ios);
          sink.Observe("overhead", static_cast<double>(cm.overhead_ios));
          sink.Observe("clusters", static_cast<double>(cm.num_clusters));
          sink.Observe("post_ios", post_ios);
          sink.Observe("gain", post_ios > 0.0 ? pre_ios / post_ios : 0.0);
        });
    const Estimate pre = metrics.at("pre_ios");
    for (const auto& [name, estimate] : metrics) {
      RecordEstimate("clustp", PolicyName(which), name, estimate);
    }
    table.AddRow({PolicyName(which), WithCi(pre),
                  util::FormatDouble(metrics.at("overhead").mean, 0),
                  util::FormatDouble(metrics.at("post_ios").mean, 0),
                  util::FormatDouble(metrics.at("gain").mean, 2),
                  util::FormatDouble(metrics.at("clusters").mean, 0)});
  }
  std::cout << "== Ablation: clustering policy (CLUSTP) ==\n";
  if (options.csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  std::cout << "Expectation: NONE shows gain ~1 and zero overhead; both "
               "dynamic policies pay a reorganization but repay it with "
               "post-clustering usage well below pre-clustering usage.\n";
  return 0;
}
