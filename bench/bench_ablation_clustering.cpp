/// \file bench_ablation_clustering.cpp
/// \brief Thin wrapper over the "ablation_clustering" catalog scenario (CLUSTP clustering-policy ablation);
/// equivalent to `voodb run ablation_clustering` with the same flags.
#include "harness.hpp"

int main(int argc, char** argv) {
  return voodb::bench::RunScenarioMain("ablation_clustering", argc, argv);
}
