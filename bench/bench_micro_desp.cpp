/// \file bench_micro_desp.cpp
/// \brief Microbenchmarks of the DESP simulation kernel.
///
/// The paper's motivation for DESP-C++ was raw kernel speed (QNAP2 made
/// experiments "8 hours to more than one week long"; DESP-C++ was 20 to
/// 1000x faster).  These benchmarks track the cost of the kernel
/// primitives so regressions are visible.
#include <benchmark/benchmark.h>

#include "desp/random.hpp"
#include "desp/replication.hpp"
#include "desp/resource.hpp"
#include "desp/scheduler.hpp"

namespace {

using voodb::desp::MetricSink;
using voodb::desp::RandomStream;
using voodb::desp::ReplicationRunner;
using voodb::desp::Resource;
using voodb::desp::Scheduler;

void BM_ScheduleAndRun(benchmark::State& state) {
  // Second arg sweeps the event-list backend (0 binary / 1 quaternary /
  // 2 calendar); results are identical, only throughput differs.
  const auto events = static_cast<uint64_t>(state.range(0));
  const auto kind = static_cast<voodb::desp::EventQueueKind>(state.range(1));
  for (auto _ : state) {
    Scheduler sched(kind);
    uint64_t sum = 0;
    for (uint64_t i = 0; i < events; ++i) {
      sched.Schedule(static_cast<double>(i % 97), [&sum, i] { sum += i; });
    }
    sched.Run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(events));
}
BENCHMARK(BM_ScheduleAndRun)
    ->ArgsProduct({{1000, 10000, 100000}, {0, 1, 2}});

void BM_EventChain(benchmark::State& state) {
  // Self-scheduling chain: the common pattern of actors re-arming.
  const auto depth = static_cast<uint64_t>(state.range(0));
  const auto kind = static_cast<voodb::desp::EventQueueKind>(state.range(1));
  for (auto _ : state) {
    Scheduler sched(kind);
    uint64_t remaining = depth;
    std::function<void()> step = [&] {
      if (--remaining > 0) sched.Schedule(1.0, step);
    };
    sched.Schedule(1.0, step);
    sched.Run();
    benchmark::DoNotOptimize(remaining);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(depth));
}
BENCHMARK(BM_EventChain)->ArgsProduct({{1000, 100000}, {0, 1, 2}});

void BM_ResourceContention(benchmark::State& state) {
  const auto clients = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    Scheduler sched;
    Resource server(&sched, "server", 4);
    uint64_t completed = 0;
    for (uint64_t i = 0; i < clients; ++i) {
      sched.Schedule(static_cast<double>(i % 13), [&] {
        server.AcquireFor(5.0, [&] { ++completed; });
      });
    }
    sched.Run();
    benchmark::DoNotOptimize(completed);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(clients));
}
BENCHMARK(BM_ResourceContention)->Arg(1000)->Arg(10000);

void BM_RandomStreamU64(benchmark::State& state) {
  RandomStream rng(42);
  uint64_t sum = 0;
  for (auto _ : state) {
    sum += rng.NextU64();
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_RandomStreamU64);

void BM_RandomStreamZipf(benchmark::State& state) {
  RandomStream rng(42);
  int64_t sum = 0;
  for (auto _ : state) {
    sum += rng.Zipf(20000, 1.0);
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_RandomStreamZipf);

void BM_ReplicationRunner(benchmark::State& state) {
  for (auto _ : state) {
    ReplicationRunner runner([](uint64_t seed, MetricSink& sink) {
      RandomStream rng(seed);
      double acc = 0.0;
      for (int i = 0; i < 100; ++i) acc += rng.Exponential(1.0);
      sink.Observe("x", acc);
    });
    benchmark::DoNotOptimize(runner.Run(10).Metric("x").mean());
  }
}
BENCHMARK(BM_ReplicationRunner);

}  // namespace

BENCHMARK_MAIN();
