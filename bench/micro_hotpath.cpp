#include "micro_hotpath.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "desp/event_queue.hpp"
#include "desp/scheduler.hpp"
#include "desp/stats.hpp"
#include "harness.hpp"
#include "util/check.hpp"
#include "util/table.hpp"

namespace voodb::bench {

namespace {

using desp::EventKey;
using desp::EventQueue;
using desp::EventQueueKind;
using desp::MakeEventQueue;
using desp::QueuedEvent;
using desp::Scheduler;
using desp::SimTime;
using desp::SmallFunction;
using desp::Tally;

// --- The pre-fast-lane kernel, verbatim modulo naming -----------------------
//
// This is the heap-only `desp::Scheduler` exactly as it stood before the
// zero-delay lane landed: same slab arena, same SmallFunction actions,
// same pluggable EventQueue, same lazy-cancel compaction — every event,
// zero-delay or not, goes through the heap.  Only the profile-tag string
// interning is dropped (the per-event uint16 tag store and dispatch
// branch, which are the hot-path costs, are kept).  Any speedup the fast
// lane shows against this baseline is therefore the lane itself, not
// drift in the surrounding machinery.

class BaselineScheduler {
 public:
  using Action = SmallFunction;

  struct Handle {
    BaselineScheduler* scheduler = nullptr;
    uint32_t slot = 0;
    uint32_t generation = 0;
  };

  explicit BaselineScheduler(EventQueueKind kind = EventQueueKind::kBinaryHeap)
      : queue_(MakeEventQueue(kind)) {}
  BaselineScheduler(const BaselineScheduler&) = delete;
  BaselineScheduler& operator=(const BaselineScheduler&) = delete;

  Handle Schedule(SimTime delay, Action action, int priority = 0) {
    return ScheduleAt(now_ + delay, std::move(action), priority);
  }

  Handle ScheduleAt(SimTime when, Action action, int priority = 0) {
    const uint32_t slot = AllocSlot();
    EventRecord& record = arena_[slot];
    record.key = EventKey{when, priority, next_seq_++};
    record.action = std::move(action);
    record.cancelled = false;
    record.in_queue = true;
    record.tag = current_tag_;
    queue_->Push(QueuedEvent{record.key, slot});
    ++pending_;
    return Handle{this, slot, record.generation};
  }

  bool Cancel(Handle& handle) {
    if (handle.scheduler != this ||
        !IsPending(handle.slot, handle.generation)) {
      return false;
    }
    EventRecord& record = arena_[handle.slot];
    record.cancelled = true;
    record.action.Reset();
    --pending_;
    ++cancelled_in_queue_;
    if (cancelled_in_queue_ * 2 > queue_->Size()) Compact();
    return true;
  }

  bool Step() {
    for (;;) {
      if (queue_->Empty()) return false;
      const QueuedEvent event = queue_->PopMin();
      EventRecord& record = arena_[event.slot];
      if (record.cancelled) {
        FreeSlot(event.slot);
        --cancelled_in_queue_;
        continue;
      }
      --pending_;
      now_ = event.key.time;
      const uint16_t tag = record.tag;
      current_tag_ = tag;
      Action action = std::move(record.action);
      FreeSlot(event.slot);
      if (trace_ != nullptr) trace_(trace_ctx_, event.key);
      ++executed_;
      action();
      return true;
    }
  }

  void Run() {
    while (Step()) {
    }
  }

  SimTime Now() const { return now_; }
  uint64_t ExecutedEvents() const { return executed_; }

  using TraceFn = void (*)(void* ctx, const EventKey& key);
  void SetTraceHook(TraceFn fn, void* ctx) {
    trace_ = fn;
    trace_ctx_ = ctx;
  }

 private:
  struct EventRecord {
    EventKey key;
    Action action;
    uint32_t generation = 0;
    bool cancelled = false;
    bool in_queue = false;
    uint16_t tag = 0;
    uint32_t next_free = 0;
  };

  static constexpr uint32_t kNoSlot = UINT32_MAX;

  uint32_t AllocSlot() {
    if (free_head_ != kNoSlot) {
      const uint32_t slot = free_head_;
      free_head_ = arena_[slot].next_free;
      return slot;
    }
    arena_.emplace_back();
    return static_cast<uint32_t>(arena_.size() - 1);
  }

  void FreeSlot(uint32_t slot) {
    EventRecord& record = arena_[slot];
    record.action.Reset();
    record.in_queue = false;
    ++record.generation;
    record.next_free = free_head_;
    free_head_ = slot;
  }

  bool IsPending(uint32_t slot, uint32_t generation) const {
    if (slot >= arena_.size()) return false;
    const EventRecord& record = arena_[slot];
    return record.in_queue && record.generation == generation &&
           !record.cancelled;
  }

  void Compact() {
    std::vector<QueuedEvent> live;
    live.reserve(pending_);
    while (!queue_->Empty()) {
      const QueuedEvent event = queue_->PopMin();
      if (arena_[event.slot].cancelled) {
        FreeSlot(event.slot);
      } else {
        live.push_back(event);
      }
    }
    cancelled_in_queue_ = 0;
    for (const QueuedEvent& event : live) queue_->Push(event);
  }

  SimTime now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  size_t pending_ = 0;
  size_t cancelled_in_queue_ = 0;
  std::unique_ptr<EventQueue> queue_;
  std::vector<EventRecord> arena_;
  uint32_t free_head_ = kNoSlot;
  TraceFn trace_ = nullptr;
  void* trace_ctx_ = nullptr;
  uint16_t current_tag_ = 0;
};

// --- Workloads --------------------------------------------------------------

/// The contention-regime storm: `users` concurrent continuation chains
/// of `depth` hops.  Hops are same-timestamp continuations (delay 0,
/// like a lock grant chained into the operation and the release) except
/// every 16th, which models an I/O completion advancing the clock —
/// roughly the zero-delay fraction a saturated cc_abyss run schedules.
/// Priorities cycle through {-1, 0, 1} so the lane's per-priority rings
/// are exercised, not just the common priority-0 ring.
template <typename Kernel>
uint64_t ContinuationStorm(Kernel& kernel, uint64_t users, uint64_t depth) {
  uint64_t fired = 0;
  std::vector<uint64_t> remaining(users, depth);
  std::vector<std::function<void()>> steps(users);
  for (uint64_t u = 0; u < users; ++u) {
    steps[u] = [&kernel, &fired, &remaining, &steps, u] {
      ++fired;
      const uint64_t left = --remaining[u];
      if (left == 0) return;
      const bool io_boundary = left % 16 == 0;
      kernel.Schedule(io_boundary ? 1.0 + static_cast<double>(u % 5) : 0.0,
                      steps[u], static_cast<int>((left + u) % 3) - 1);
    };
    kernel.Schedule(0.0, steps[u], static_cast<int>(u % 3) - 1);
  }
  kernel.Run();
  return fired;
}

/// The control: identical chain structure but strictly positive delays,
/// so the fast lane never engages and the whole run goes through the
/// heap in both kernels.  Gates that the lane's bookkeeping (one branch
/// per schedule, the merged pop) costs nothing when it has no work.
template <typename Kernel>
uint64_t MixedDelayControl(Kernel& kernel, uint64_t users, uint64_t depth) {
  uint64_t fired = 0;
  std::vector<uint64_t> remaining(users, depth);
  std::vector<std::function<void()>> steps(users);
  for (uint64_t u = 0; u < users; ++u) {
    steps[u] = [&kernel, &fired, &remaining, &steps, u] {
      ++fired;
      const uint64_t left = --remaining[u];
      if (left == 0) return;
      kernel.Schedule(0.25 + static_cast<double>((left * 37 + u) % 7),
                      steps[u], static_cast<int>((left + u) % 3) - 1);
    };
    kernel.Schedule(0.25 + static_cast<double>(u % 7), steps[u],
                    static_cast<int>(u % 3) - 1);
  }
  kernel.Run();
  return fired;
}

// --- Identity witness -------------------------------------------------------

/// FNV-1a over executed event keys, in execution order.
struct Digest {
  uint64_t h = 0xcbf29ce484222325ull;

  void Fold(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xFF;
      h *= 0x100000001b3ull;
    }
  }

  static void Hook(void* ctx, const EventKey& key) {
    auto* d = static_cast<Digest*>(ctx);
    uint64_t bits;
    std::memcpy(&bits, &key.time, sizeof(bits));
    d->Fold(bits);
    d->Fold(static_cast<uint64_t>(static_cast<int64_t>(key.priority)));
    d->Fold(key.seq);
  }
};

struct Leg {
  std::string name;
  uint64_t (*baseline)(BaselineScheduler&, uint64_t, uint64_t);
  uint64_t (*modern)(Scheduler&, uint64_t, uint64_t);
};

}  // namespace

exp::ScenarioResult RunMicroHotpathScenario(const exp::ScenarioContext& ctx) {
  const uint64_t users = std::max<uint64_t>(1, ctx.options.transactions);
  constexpr uint64_t kDepth = 200;
  const uint64_t events = users * kDepth;
  const uint64_t trials = std::max<uint64_t>(2, ctx.options.replications);

  const std::vector<Leg> legs = {
      {"storm", &ContinuationStorm<BaselineScheduler>,
       &ContinuationStorm<Scheduler>},
      {"control", &MixedDelayControl<BaselineScheduler>,
       &MixedDelayControl<Scheduler>},
  };

  util::TextTable table({"Leg", "Baseline Mev/s", "Lane Mev/s", "Speedup",
                         "±95%", "Lane pops", "Identical"});
  exp::ScenarioResult result;

  for (const Leg& leg : legs) {
    // Identity first: the executed event-key trace must be bit-identical
    // across the embedded baseline, the lane disabled, and the lane
    // enabled.  Timing a kernel that reorders events would be cheating.
    Digest base_digest, off_digest, on_digest;
    uint64_t base_fired = 0, off_fired = 0, on_fired = 0;
    {
      BaselineScheduler kernel;
      kernel.SetTraceHook(&Digest::Hook, &base_digest);
      base_fired = leg.baseline(kernel, users, kDepth);
    }
    {
      Scheduler kernel;
      kernel.SetLaneEnabled(false);
      kernel.SetTraceHook(&Digest::Hook, &off_digest);
      off_fired = leg.modern(kernel, users, kDepth);
    }
    uint64_t lane_pops = 0;
    {
      Scheduler kernel;
      kernel.Reserve(users * 2);
      kernel.SetTraceHook(&Digest::Hook, &on_digest);
      on_fired = leg.modern(kernel, users, kDepth);
      lane_pops = kernel.queue_stats().lane_pops;
    }
    VOODB_CHECK_MSG(base_digest.h == on_digest.h &&
                        off_digest.h == on_digest.h &&
                        base_fired == on_fired && off_fired == on_fired,
                    "fast lane diverged from the heap-only baseline on the "
                        << leg.name << " leg");
    // The storm leg must actually exercise the lane, or the speedup
    // would be measuring nothing.
    if (leg.name == "storm") {
      VOODB_CHECK_MSG(lane_pops > events / 2,
                      "storm leg routed too few events through the lane ("
                          << lane_pops << " of " << events << ")");
    }

    // Paired trials: baseline and lane timed back-to-back per trial and
    // the ratio tallied, so slow-machine noise hits both sides of each
    // division instead of widening the interval.
    Tally base_rate, lane_rate, speedups;
    for (uint64_t t = 0; t < trials; ++t) {
      const auto b0 = std::chrono::steady_clock::now();
      {
        BaselineScheduler kernel;
        leg.baseline(kernel, users, kDepth);
      }
      const double base_s = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - b0)
                                .count();
      const auto l0 = std::chrono::steady_clock::now();
      {
        Scheduler kernel;
        kernel.Reserve(users * 2);
        leg.modern(kernel, users, kDepth);
      }
      const double lane_s = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - l0)
                                .count();
      base_rate.Add(static_cast<double>(events) / base_s / 1e6);
      lane_rate.Add(static_cast<double>(events) / lane_s / 1e6);
      if (lane_s > 0.0) speedups.Add(base_s / lane_s);
    }
    Estimate speedup{speedups.mean(), 0.0};
    if (speedups.count() >= 2 && speedups.stddev() > 0.0) {
      speedup.half_width =
          desp::StudentConfidenceInterval(speedups, 0.95).half_width;
    }

    table.AddRow({leg.name, util::FormatDouble(base_rate.mean(), 2),
                  util::FormatDouble(lane_rate.mean(), 2),
                  util::FormatDouble(speedup.mean, 2) + "x",
                  util::FormatDouble(speedup.half_width, 2),
                  std::to_string(lane_pops), "yes"});
    RecordEstimate("micro_hotpath", leg.name, "baseline_meps",
                   Estimate{base_rate.mean(), 0.0});
    RecordEstimate("micro_hotpath", leg.name, "lane_meps",
                   Estimate{lane_rate.mean(), 0.0});
    RecordEstimate("micro_hotpath", leg.name, "speedup", speedup);
    RecordEstimate("micro_hotpath", leg.name, "lane_pops",
                   Estimate{static_cast<double>(lane_pops), 0.0});
    result["micro_hotpath/" + leg.name + "/speedup/mean"] = speedup.mean;
    result["micro_hotpath/" + leg.name + "/digest_match/mean"] = 1.0;
  }

  std::cout << "== Zero-delay fast-lane hot path (" << users << " users x "
            << kDepth << " hops = " << events << " events/trial, " << trials
            << " paired trials) ==\n";
  if (ctx.options.csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  return result;
}

}  // namespace voodb::bench
