/// \file bench_micro_scheduler.cpp
/// \brief Thin wrapper over the `micro_scheduler` catalog scenario (see
/// bench/micro_scheduler.hpp).  Keeps the legacy BENCH_scheduler.json
/// identity so the kernel's perf trajectory stays comparable across PRs.
#include "harness.hpp"

int main(int argc, char** argv) {
  return voodb::bench::RunScenarioMain("micro_scheduler", argc, argv,
                                       "scheduler");
}
