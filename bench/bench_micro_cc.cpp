/// \file bench_micro_cc.cpp
/// \brief Thin wrapper over the "micro_cc" catalog scenario (the
/// concurrency-control protocol overhead bench + wait-die parity gate);
/// equivalent to `voodb run micro_cc` with the same flags, but keeps a
/// stable BENCH_cc.json identity.
#include "harness.hpp"

int main(int argc, char** argv) {
  return voodb::bench::RunScenarioMain("micro_cc", argc, argv, "cc");
}
