/// \file explain_tool.hpp
/// \brief The `voodb explain <scenario>` subcommand.
///
///   voodb explain cc_abyss [--top K] [--transactions=N] [--seed=N]
///                 [--set k=v ...]
///       runs one fixed-seed simulation of the scenario's base
///       configuration with causal span tracing on and explains where
///       the tail's response time went: the per-component critical-path
///       table (lock wait, IO, network, CPU, abort/retry), then the K
///       slowest transactions' full span trees as text breakdowns, plus
///       a Perfetto/Chrome-trace JSON export of those exemplars.
#pragma once

namespace voodb::bench {

/// Entry point for `voodb explain ...`; `argv` starts after the
/// "explain" word.  Returns a process exit code.
int RunExplainCommand(int argc, const char* const* argv);

}  // namespace voodb::bench
